// Determinism regression tests pinning the simulator trace and the trained
// model weights to golden fingerprints captured before the hot-path
// performance pass (object pooling, scratch buffers, parallel training).
//
// The goldens encode two contracts:
//
//  1. Object pooling in the simulator (event free-lists, request pools,
//     extent-map scratch buffers) must not change simulated behaviour: a run
//     produces a byte-identical DXT trace to the pre-pool implementation.
//  2. The nn scratch-buffer scheme must not change arithmetic: the default
//     serial training path produces bit-identical weights to the
//     pre-scratch implementation.
//
// Regenerate the goldens with:
//
//	UPDATE_GOLDEN=1 go test -run TestGolden .
package quanterference_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	quant "quanterference"
	"quanterference/internal/ml"
	"quanterference/internal/trace"
	"quanterference/internal/workload/io500"
)

// goldenScenario exercises the pooled hot paths end to end: metadata ops,
// striped writes with write-back caching, reads with readahead, a competing
// interference stream, and a fault episode perturbing the block queue.
func goldenScenario() quant.Scenario {
	faults, err := quant.ParseFaultSpecs("disk-slow:ost1:2:3:4,ost-stall:ost2:1:2")
	if err != nil {
		panic(err)
	}
	return quant.Scenario{
		Target: quant.TargetSpec{
			Gen: io500.New(io500.IorEasyWrite, io500.Params{
				Dir: "/golden", Ranks: 2, EasyFileBytes: 8 << 20}),
			Nodes: []string{"c0", "c1"},
			Ranks: 2,
		},
		Interference: []quant.InterferenceSpec{{
			Gen: io500.New(io500.IorEasyRead, io500.Params{
				Dir: "/noise", Ranks: 2, EasyFileBytes: 8 << 20}),
			Nodes: []string{"c2"},
			Ranks: 2,
		}},
		Faults: faults,
	}
}

// encodeTrace renders a run's client-side records in DXT text form.
func encodeTrace(res *quant.RunResult) string {
	var b strings.Builder
	w := trace.NewWriter(&b)
	for _, rec := range res.Records {
		w.Write(rec)
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return b.String()
}

func goldenCompare(t *testing.T, path, got string) {
	t.Helper()
	full := filepath.Join("testdata", path)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with UPDATE_GOLDEN=1): %v", full, err)
	}
	if string(want) != got {
		t.Fatalf("%s: output diverged from golden (%d vs %d bytes)\n"+
			"pooling or scratch-buffer reuse changed simulated behaviour",
			full, len(got), len(want))
	}
}

// TestGoldenTrace pins the full simulator stack (engine, block queues, disks,
// network, Lustre servers, fault injection) to a byte-identical DXT trace.
func TestGoldenTrace(t *testing.T) {
	res, err := quant.RunE(goldenScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("golden run truncated")
	}
	goldenCompare(t, "golden_run.dxt", encodeTrace(res))
}

// TestGoldenTraceRepeatedRuns verifies pooled state carries nothing across
// runs: two fresh clusters produce identical traces.
func TestGoldenTraceRepeatedRuns(t *testing.T) {
	a, err := quant.RunE(goldenScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := quant.RunE(goldenScenario())
	if err != nil {
		t.Fatal(err)
	}
	if encodeTrace(a) != encodeTrace(b) {
		t.Fatal("two identical scenarios produced different traces")
	}
}

// weightsFingerprint hashes every parameter's float64 bit pattern in order.
func weightsFingerprint(m ml.Model) string {
	h := sha256.New()
	var buf [8]byte
	for _, p := range m.Params() {
		for _, w := range p.W {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenSerialWeights pins the serial training path's arithmetic: the
// scratch-buffer scheme must yield bit-identical weights to the
// pre-scratch implementation.
func TestGoldenSerialWeights(t *testing.T) {
	ds := syntheticDataset(96)
	m := ml.NewKernelModel(ml.KernelConfig{NTargets: 7, NFeat: 34, Classes: 2, Seed: 11})
	loss := ml.Train(m, ds, ml.TrainConfig{Epochs: 4, Seed: 23, BalanceClasses: true})
	got := fmt.Sprintf("weights %s\nloss %x\n", weightsFingerprint(m), math.Float64bits(loss))
	goldenCompare(t, "golden_weights.txt", got)
}
