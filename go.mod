module quanterference

go 1.22
