// Package quanterference is a Go reproduction of "Understanding and
// Predicting Cross-Application I/O Interference in HPC Storage Systems"
// (Egersdoerfer et al., SC 2024).
//
// It bundles a deterministic discrete-event simulator of a Lustre-like
// parallel file system (rotational disks, block request queues, fair-share
// network, MDS/OSS/OST servers with write-back caching and client
// readahead), generators for the paper's workloads (IO500, DLIO, and
// Enzo/AMReX/OpenPMD emulations), the paper's client- and server-side
// monitors, the §III-D labelling pipeline, and a from-scratch kernel-based
// neural network that predicts per-time-window interference severity.
//
// This root package re-exports the high-level API; the implementation lives
// in internal/ packages. Typical use:
//
//	// Measure a workload under interference.
//	res, err := quanterference.RunE(quanterference.Scenario{ ... })
//
//	// The same scenario on NVMe-class storage (hardware profiles bundle
//	// disk, network, burst-buffer, and server parameters; the zero value
//	// is the paper's testbed).
//	res, err = quanterference.RunE(scenario,
//		quanterference.WithHardware(quanterference.NVMeProfile()))
//
//	// Collect a labelled dataset (§III-D) and train the model.
//	ds, err := quanterference.CollectDatasetE(base, variants,
//		quanterference.CollectorConfig{}, quanterference.WithBaselineSamples(true))
//	fw, confusion, err := quanterference.TrainFrameworkE(ds, quanterference.FrameworkConfig{})
//
//	// Predict online.
//	class, probs := fw.Predict(windowMatrix)
//
//	// Observe the simulator itself: metrics + Chrome trace-event export.
//	sink := quanterference.NewSink()
//	sink.EnableTrace(0)
//	res, err = quanterference.RunE(scenario, quanterference.WithSink(sink))
//	_ = sink.WriteTrace(file) // open in about:tracing / Perfetto
//
// Every entry point also has a context-aware form (RunCtx, CollectDatasetCtx,
// TrainFrameworkCtx) that observes cancellation and deadlines, returning an
// error matching both ErrCanceled and the context's own error. The original
// panic-on-error entry points (Run, CollectDataset, TrainFramework) have been
// removed; use the error-returning forms above.
//
// A trained framework can also be served over HTTP with cmd/quantserve,
// which batches concurrent predictions deterministically and hot-reloads
// the model file without dropping requests; see internal/serve and the
// README's "Serving" section.
//
// # Determinism
//
// Everything here is reproducible by construction. A simulation is one
// single-threaded discrete-event engine with (time, sequence)-ordered
// dispatch and seeded RNGs: the same Scenario and seed produce
// byte-identical traces and metrics on every run and every machine.
// Training is deterministic too, including the data-parallel path: the
// trainer shards each mini-batch into a fixed partition and reduces
// gradients in a fixed order, so trained weights are bit-identical for
// every worker count. Both properties are regression-tested against
// committed goldens; ARCHITECTURE.md states the exact contracts.
//
// The experiment drivers that regenerate every table and figure of the
// paper are exposed as TableI, Figure1a/b, TableII, Figure3a/b, Figure4,
// Figure5, and the Ablation* functions; cmd/figures wraps them all.
package quanterference

import (
	"context"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/experiments"
	"quanterference/internal/fault"
	"quanterference/internal/hw"
	"quanterference/internal/label"
	"quanterference/internal/lustre"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// Simulation building blocks.
type (
	// Cluster is one simulated system: engine, network, file system.
	Cluster = core.Cluster
	// Scenario describes a measurement run.
	Scenario = core.Scenario
	// TargetSpec places the measured application.
	TargetSpec = core.TargetSpec
	// InterferenceSpec places one looping background workload.
	InterferenceSpec = core.InterferenceSpec
	// RunResult is a completed run's trace and windows.
	RunResult = core.RunResult
	// Variant is one interference configuration during data collection.
	Variant = core.Variant
	// CollectorConfig controls training-data generation.
	CollectorConfig = core.CollectorConfig
	// Framework is the trained prediction service.
	Framework = core.Framework
	// FrameworkConfig controls model training.
	FrameworkConfig = core.FrameworkConfig
	// LiveMonitor emits per-window matrices from a live run.
	LiveMonitor = core.LiveMonitor

	// Topology is the cluster layout; Config the file-system tunables.
	Topology = lustre.Topology
	Config   = lustre.Config

	// HardwareProfile bundles the simulated storage hardware — disk model,
	// NIC speed/latency, optional client burst buffers, and server-side
	// costs — as one serializable value (Scenario.Hardware, WithHardware).
	// The zero value, like PaperProfile, is the paper's testbed.
	HardwareProfile = hw.Profile

	// Bins discretizes degradation levels into classes.
	Bins = label.Bins
	// Dataset is a labelled sample collection.
	Dataset = dataset.Dataset
	// Confusion is an evaluation confusion matrix.
	Confusion = ml.Confusion

	// Time is a simulated timestamp/duration in nanoseconds.
	Time = sim.Time

	// Sink is the observability layer: a metrics registry plus a trace
	// collector with Chrome trace-event export. Attach one with WithSink.
	Sink = obs.Sink
	// Stats is a point-in-time metrics snapshot (RunResult.Stats).
	Stats = obs.Snapshot
	// Option tunes RunE/CollectDatasetE/TrainFrameworkE.
	Option = core.Option

	// FaultSpec declares one degraded-mode episode (Scenario.Faults): a
	// fail-slow disk, OST stall, cache squeeze, MDS storm, or NIC collapse,
	// injected deterministically at a chosen simulated time.
	FaultSpec = fault.Spec
	// FaultKind enumerates the fault classes.
	FaultKind = fault.Kind
	// CollectReport is CollectDatasetE's per-variant completion accounting
	// (WithCollectReport).
	CollectReport = core.CollectReport
	// SkippedVariant records one variant run dropped during collection.
	SkippedVariant = core.SkippedVariant
)

// Fault classes for FaultSpec.Kind.
const (
	DiskSlow         = fault.DiskSlow
	OSTStall         = fault.OSTStall
	OSTCachePressure = fault.OSTCachePressure
	MDSStorm         = fault.MDSStorm
	NetCollapse      = fault.NetCollapse
)

// ParseFaultSpecs parses a comma-separated episode list in the CLI syntax,
// each "kind:target:start:duration[:severity]" with times in seconds, e.g.
// "disk-slow:ost0:10:5:4,mds-storm:mdt:0:20:8".
func ParseFaultSpecs(s string) ([]FaultSpec, error) { return fault.ParseSpecs(s) }

// Typed errors returned by the error-returning API; match with errors.Is.
var (
	ErrInvalidScenario    = core.ErrInvalidScenario
	ErrInvalidTopology    = core.ErrInvalidTopology
	ErrBaselineUnfinished = core.ErrBaselineUnfinished
	ErrVariantUnfinished  = core.ErrVariantUnfinished
	ErrAllVariantsFailed  = core.ErrAllVariantsFailed
	ErrEmptyDataset       = core.ErrEmptyDataset
	ErrBadFrameworkFile   = core.ErrBadFrameworkFile
	// ErrWarmStartMismatch marks a WithWarmStart framework whose shape does
	// not match the dataset being retrained on.
	ErrWarmStartMismatch = core.ErrWarmStartMismatch
	// ErrCanceled marks errors from the *Ctx entry points whose context was
	// done; the error also matches the context's own error (context.Canceled
	// or context.DeadlineExceeded).
	ErrCanceled = core.ErrCanceled
	// ErrUnknownProfile marks a ProfileByName lookup with a name outside
	// ProfileNames.
	ErrUnknownProfile = hw.ErrUnknownProfile
)

// NewSink returns an empty observability sink.
func NewSink() *Sink { return obs.New() }

// Hardware profiles. PaperProfile is the testbed every zero-valued Scenario
// simulates — bit-identical to the behaviour before profiles existed (the
// golden-trace tests pin this). The other constructors swap in alternative
// storage subsystems; ProfileNames/ProfileByName map the CLI names.
func PaperProfile() HardwareProfile       { return hw.PaperProfile() }
func NVMeProfile() HardwareProfile        { return hw.NVMeProfile() }
func FastNICProfile() HardwareProfile     { return hw.FastNICProfile() }
func BurstBufferProfile() HardwareProfile { return hw.BurstBufferProfile() }

// ProfileNames lists every named profile's ByName key.
func ProfileNames() []string { return hw.Names() }

// ProfileByName returns the named profile, or an error wrapping
// ErrUnknownProfile.
func ProfileByName(name string) (HardwareProfile, error) { return hw.ByName(name) }

// Options
//
// The functional options below tune the error-returning and context-aware
// entry points. Each option states which entry points it applies to; an
// option passed to an entry point it does not apply to is silently ignored.
//
//	WithSink             RunE/Ctx, CollectDatasetE/Ctx — instrument on a shared sink
//	WithHardware         RunE/Ctx, CollectDatasetE/Ctx — default hardware profile
//	WithBins             CollectDatasetE/Ctx, TrainFrameworkE/Ctx — degradation bins
//	WithMinOpsPerWindow  CollectDatasetE/Ctx — window labelling threshold
//	WithBaselineSamples  CollectDatasetE/Ctx — include label-0 baseline windows
//	WithCollectReport    CollectDatasetE/Ctx — per-variant completion accounting
//	WithWarmStart        TrainFrameworkE/Ctx — retrain from an incumbent framework

// WithSink attaches an observability sink to every cluster the call builds;
// RunResult.Stats snapshots it, and parallel collection runs aggregate on it.
func WithSink(s *Sink) Option { return core.WithSink(s) }

// WithHardware runs scenarios on the given hardware profile when the
// scenario's own Hardware field is zero (an explicit Scenario.Hardware wins).
// In CollectDatasetE the profile covers the baseline and every variant run
// and is recorded in the dataset header.
func WithHardware(p HardwareProfile) Option { return core.WithHardware(p) }

// WithBins selects the degradation bins (default: the paper's binary >=2x).
func WithBins(b Bins) Option { return core.WithBins(b) }

// WithMinOpsPerWindow sets the minimum matched operations a window needs to
// be labelled (default 3).
func WithMinOpsPerWindow(n int) Option { return core.WithMinOpsPerWindow(n) }

// WithBaselineSamples includes the baseline run's own windows as label-0
// samples, teaching the model what "no interference" looks like.
func WithBaselineSamples(on bool) Option { return core.WithBaselineSamples(on) }

// WithCollectReport fills r with per-variant completion accounting after
// CollectDatasetE returns.
func WithCollectReport(r *CollectReport) Option { return core.WithCollectReport(r) }

// WithWarmStart makes TrainFrameworkE/TrainFrameworkCtx retrain incrementally
// from an incumbent framework (cloned weights, reused scaler and bins) instead
// of fresh random weights — the continuous-learning loop's retraining mode
// (internal/online).
func WithWarmStart(fw *Framework) Option { return core.WithWarmStart(fw) }

// NewCluster builds a fresh simulated cluster.
func NewCluster(topo Topology, cfg Config) *Cluster { return core.NewCluster(topo, cfg) }

// RunE executes a scenario on a fresh cluster, returning typed errors
// (ErrInvalidScenario, ErrInvalidTopology) instead of panicking. The
// cluster is instrumented on WithSink's sink (or a private one), so
// RunResult.Stats is always populated.
func RunE(s Scenario, opts ...Option) (*RunResult, error) { return core.RunE(s, opts...) }

// RunCtx is RunE with cancellation: the simulation loop observes ctx at
// every window boundary; when the context is done the run is abandoned with
// an error matching both ErrCanceled and ctx.Err().
func RunCtx(ctx context.Context, s Scenario, opts ...Option) (*RunResult, error) {
	return core.RunCtx(ctx, s, opts...)
}

// CollectDatasetE implements §III-D data generation, returning
// ErrBaselineUnfinished (wrapped) when the baseline hits MaxTime and
// scenario-validation errors instead of panicking. Options override the
// config's ambiguous zero values (WithBins, WithMinOpsPerWindow,
// WithBaselineSamples); WithSink aggregates metrics across all runs.
func CollectDatasetE(base Scenario, variants []Variant, cfg CollectorConfig, opts ...Option) (*Dataset, error) {
	return core.CollectDatasetE(base, variants, cfg, opts...)
}

// CollectDatasetCtx is CollectDatasetE with cancellation: the baseline and
// every parallel variant run observe ctx, and a done context aborts the
// collection with an error matching both ErrCanceled and ctx.Err().
func CollectDatasetCtx(ctx context.Context, base Scenario, variants []Variant, cfg CollectorConfig, opts ...Option) (*Dataset, error) {
	return core.CollectDatasetCtx(ctx, base, variants, cfg, opts...)
}

// TrainFrameworkE trains the kernel-based model with the paper's 80/20
// split and returns the framework plus the held-out confusion matrix. It
// returns ErrEmptyDataset on nil/empty input and rejects malformed configs
// with an error.
func TrainFrameworkE(ds *Dataset, cfg FrameworkConfig, opts ...Option) (*Framework, *Confusion, error) {
	return core.TrainFrameworkE(ds, cfg, opts...)
}

// TrainFrameworkCtx is TrainFrameworkE with cancellation: the epoch loop
// observes ctx and a done context stops training with an error matching
// both ErrCanceled and ctx.Err().
func TrainFrameworkCtx(ctx context.Context, ds *Dataset, cfg FrameworkConfig, opts ...Option) (*Framework, *Confusion, error) {
	return core.TrainFrameworkCtx(ctx, ds, cfg, opts...)
}

// WindowMatrix is one time window's per-server feature vectors.
type WindowMatrix = window.Matrix

// AttachLive starts runtime monitoring on a cluster (Figure 2's online path).
func AttachLive(cl *Cluster, windowSize Time, onWindow func(idx int, mat WindowMatrix)) *LiveMonitor {
	return core.AttachLive(cl, windowSize, onWindow)
}

// PaperTopology is the evaluation cluster of §IV.
func PaperTopology() Topology { return lustre.PaperTopology() }

// BinaryBins is the paper's binary >=2x setting; SeverityBins the 3-class one.
func BinaryBins() Bins   { return label.BinaryBins() }
func SeverityBins() Bins { return label.SeverityBins() }

// Seconds converts seconds to simulated Time.
func Seconds(s float64) Time { return sim.Seconds(s) }

// LoadFramework restores a framework persisted with Framework.Save.
func LoadFramework(path string) (*Framework, error) { return core.LoadFramework(path) }

// Experiment drivers (one per paper table/figure); see cmd/figures.
var (
	TableI               = experiments.TableI
	Figure1a             = experiments.Figure1a
	Figure1b             = experiments.Figure1b
	TableII              = experiments.TableII
	Figure3a             = experiments.Figure3a
	Figure3b             = experiments.Figure3b
	Figure4              = experiments.Figure4
	Figure5              = experiments.Figure5
	IO500Dataset         = experiments.IO500Dataset
	DLIODataset          = experiments.DLIODataset
	AppDataset           = experiments.AppDataset
	AblationArchitecture = experiments.AblationArchitecture
	AblationFeatures     = experiments.AblationFeatures
	AblationWindow       = experiments.AblationWindow
	// Extensions beyond the paper.
	ExtensionArchitectures = experiments.ExtensionArchitectures
	ExtensionRegression    = experiments.ExtensionRegression
	CaseStudyMitigation    = experiments.CaseStudyMitigation
	PhaseStudy             = experiments.PhaseStudy
	Robustness             = experiments.Robustness
	// TransferStudy measures cross-profile model transfer: per-profile
	// interference matrices, zero-shot accuracy of a model moved between
	// hardware profiles, and warm-started fine-tuning (cmd/figures -only
	// transfer).
	TransferStudy = experiments.TransferStudy
)
