// Tests of the public facade: everything a downstream user touches, wired
// through the root package exactly as README shows.
package quanterference_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	quant "quanterference"
	"quanterference/internal/workload/io500"
)

func facadeTarget(bytes int64) quant.TargetSpec {
	return quant.TargetSpec{
		Gen: io500.New(io500.IorEasyWrite, io500.Params{
			Dir: "/t", Ranks: 2, EasyFileBytes: bytes}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}
}

func TestFacadeRun(t *testing.T) {
	res, err := quant.RunE(quant.Scenario{Target: facadeTarget(16 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || len(res.Records) == 0 {
		t.Fatalf("run failed: %+v", res)
	}
}

func TestFacadeRunCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := quant.RunCtx(ctx, quant.Scenario{Target: facadeTarget(16 << 20)})
	if !errors.Is(err, quant.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

func TestFacadeCollectTrainPredictPersist(t *testing.T) {
	variants := []quant.Variant{
		{Name: "light"},
		{Name: "heavy", Interference: []quant.InterferenceSpec{{
			Gen: io500.New(io500.IorEasyRead, io500.Params{
				Dir: "/bg", Ranks: 6, EasyFileBytes: 16 << 20}),
			Nodes: []string{"c1", "c2"},
			Ranks: 6,
		}}},
	}
	ds, err := quant.CollectDatasetE(quant.Scenario{Target: facadeTarget(48 << 20)},
		variants, quant.CollectorConfig{IncludeBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("no samples")
	}
	fw, cm, err := quant.TrainFrameworkE(ds, quant.FrameworkConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() == 0 {
		t.Fatal("no evaluation")
	}
	class, probs := fw.Predict(ds.Samples[0].Vectors)
	if class < 0 || class > 1 || len(probs) != 2 {
		t.Fatalf("prediction %d %v", class, probs)
	}
	// Batched inference through the facade matches one-at-a-time Predict.
	mats := []quant.WindowMatrix{ds.Samples[0].Vectors, ds.Samples[len(ds.Samples)-1].Vectors}
	cls, batchProbs := fw.PredictBatch(mats)
	if cls[0] != class || len(batchProbs) != 2 {
		t.Fatalf("PredictBatch disagrees: %v vs %d", cls, class)
	}
	// Persistence round trip through the facade.
	path := filepath.Join(t.TempDir(), "fw.json")
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := quant.LoadFramework(path)
	if err != nil {
		t.Fatal(err)
	}
	gc, _ := got.Predict(ds.Samples[0].Vectors)
	if gc != class {
		t.Fatal("reloaded framework disagrees")
	}
}

func TestFacadeLiveMonitor(t *testing.T) {
	cl := quant.NewCluster(quant.PaperTopology(), quant.Config{})
	windows := 0
	mon := quant.AttachLive(cl, quant.Seconds(1), func(idx int, mat quant.WindowMatrix) {
		windows++
		if len(mat) != cl.FS.NumTargets() {
			t.Fatalf("bad matrix shape %d", len(mat))
		}
	})
	cl.Eng.RunUntil(quant.Seconds(3) + quant.Seconds(0.5))
	mon.Stop()
	if windows != 3 {
		t.Fatalf("windows=%d", windows)
	}
}

func TestFacadeBins(t *testing.T) {
	if quant.BinaryBins().Classes() != 2 || quant.SeverityBins().Classes() != 3 {
		t.Fatal("bins wrong")
	}
	if quant.SeverityBins().Label(3) != 1 {
		t.Fatal("labeling wrong")
	}
}
