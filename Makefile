GO ?= go

.PHONY: build test tier1 verify bench trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the roadmap's acceptance gate.
tier1: build test

# verify adds static analysis and the race detector — required before any
# change to internal/obs or the instrumentation hot paths, since a shared
# Sink is mutated from par.Map worker goroutines. The focused -count=1 race
# pass re-runs the concurrency-critical packages uncached (par's fan-out,
# obs's shared sink, fault's injection across parallel variant runs).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/par ./internal/obs ./internal/fault

bench:
	$(GO) test -bench BenchmarkRun -benchmem -count 5 -run '^$$'

# trace produces a sample Chrome trace-event file; open trace.json in
# about:tracing or https://ui.perfetto.dev.
trace:
	$(GO) run ./cmd/simrun -target ior-easy-write -scale 0.2 \
		-interference ior-easy-read -instances 2 \
		-trace-events trace.json -stats

clean:
	rm -f trace.json
	rm -rf out/
