GO ?= go

.PHONY: build test tier1 verify bench bench-json docs-check trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the roadmap's acceptance gate.
tier1: build test

# verify adds static analysis and the race detector — required before any
# change to internal/obs or the instrumentation hot paths, since a shared
# Sink is mutated from par.Map worker goroutines. The focused -count=1 race
# pass re-runs the concurrency-critical packages uncached (par's fan-out,
# obs's shared sink, fault's injection across parallel variant runs).
verify: docs-check
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/par ./internal/obs ./internal/fault ./internal/ml

bench:
	$(GO) test -bench BenchmarkRun -benchmem -count 5 -run '^$$'

# bench-json runs the whole benchmark suite through cmd/bench and writes a
# machine-readable BENCH_<date>.json for committing alongside perf changes.
bench-json:
	$(GO) run ./cmd/bench

# docs-check gates formatting, static analysis, and documentation integrity:
# every relative markdown link and internal/... path reference in the repo's
# *.md files must point at something that exists.
docs-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck .

# trace produces a sample Chrome trace-event file; open trace.json in
# about:tracing or https://ui.perfetto.dev.
trace:
	$(GO) run ./cmd/simrun -target ior-easy-write -scale 0.2 \
		-interference ior-easy-read -instances 2 \
		-trace-events trace.json -stats

clean:
	rm -f trace.json
	rm -rf out/
