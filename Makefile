GO ?= go

.PHONY: build test tier1 verify bench bench-json docs-check serve-smoke online-smoke profile-smoke forecast-smoke mitigate-smoke fleet-smoke shadow-smoke trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the roadmap's acceptance gate.
tier1: build test

# verify adds static analysis and the race detector — required before any
# change to internal/obs or the instrumentation hot paths, since a shared
# Sink is mutated from par.Map worker goroutines. The focused -count=1 race
# pass re-runs the concurrency-critical packages uncached (par's fan-out,
# obs's shared sink, fault's injection across parallel variant runs, online's
# loop promoting through the live server under concurrent predictions).
verify: docs-check serve-smoke online-smoke profile-smoke forecast-smoke mitigate-smoke fleet-smoke shadow-smoke
	$(GO) vet ./...
	$(GO) test -race -timeout 30m ./...
	$(GO) test -race -count=1 ./internal/par ./internal/obs ./internal/fault ./internal/ml ./internal/serve ./internal/online ./internal/mitigate ./internal/fleet ./internal/shadow

bench:
	$(GO) test -bench BenchmarkRun -benchmem -count 5 -run '^$$'

# bench-json runs the whole benchmark suite through cmd/bench and writes a
# machine-readable BENCH_<date>.json for committing alongside perf changes.
bench-json:
	$(GO) run ./cmd/bench

# docs-check gates formatting, static analysis, and documentation integrity:
# every relative markdown link and internal/... path reference in the repo's
# *.md files must point at something that exists.
docs-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck .

# serve-smoke boots quantserve on a synthetic model, exercises /healthz and
# /predict over real HTTP, and checks it exits cleanly on SIGTERM — an
# end-to-end probe of the serving binary that needs no model file.
SERVE_SMOKE_ADDR ?= 127.0.0.1:18123
serve-smoke:
	@mkdir -p out
	$(GO) build -o out/quantserve ./cmd/quantserve
	@./out/quantserve -smoke -addr $(SERVE_SMOKE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	ok=0; for i in $$(seq 1 50); do \
		curl -sf http://$(SERVE_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; \
		sleep 0.1; done; \
	[ $$ok = 1 ] || { echo "serve-smoke: server never came up"; exit 1; }; \
	curl -sf http://$(SERVE_SMOKE_ADDR)/healthz | grep -q '"status":"ok"' || \
		{ echo "serve-smoke: bad /healthz"; exit 1; }; \
	curl -sf -X POST http://$(SERVE_SMOKE_ADDR)/predict \
		-d '{"matrix":[[0,0,0,0,0],[0,0,0,0,0],[0,0,0,0,0]]}' | grep -q '"class"' || \
		{ echo "serve-smoke: bad /predict"; exit 1; }; \
	curl -sf http://$(SERVE_SMOKE_ADDR)/stats | grep -q 'serve/requests' || \
		{ echo "serve-smoke: bad /stats"; exit 1; }; \
	curl -sf -X POST http://$(SERVE_SMOKE_ADDR)/forecast \
		-d '{"history":[[[0,0,0,0,0],[0,0,0,0,0],[0,0,0,0,0]],[[0,0,0,0,0],[0,0,0,0,0],[0,0,0,0,0]],[[0,0,0,0,0],[0,0,0,0,0],[0,0,0,0,0]]]}' \
		| grep -q '"lead_windows"' || { echo "serve-smoke: bad /forecast"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "serve-smoke: unclean exit"; exit 1; }; \
	trap - EXIT; echo "serve-smoke: OK"

# online-smoke runs the deterministic continuous-learning episode end to end:
# drift detected on a fault-injected stream, warm-started retrain, gated
# promotion through the server's hot-reload under concurrent load, and a
# forced rejection with rollback.
online-smoke:
	$(GO) run ./cmd/quantonline -smoke

# profile-smoke runs the cross-profile transfer study end to end at tiny
# scale: per-profile datasets on three hardware backends, in-domain training,
# zero-shot and warm-started fine-tune transfer, plus a per-profile mini
# interference matrix — an acceptance probe for the HardwareProfile API.
profile-smoke:
	@mkdir -p out/profile-smoke
	$(GO) run ./cmd/figures -only transfer -scale 0.08 -epochs 6 \
		-out out/profile-smoke
	@grep -q 'zero_shot' out/profile-smoke/transfer.csv || \
		{ echo "profile-smoke: transfer.csv missing zero-shot rows"; exit 1; }
	@echo "profile-smoke: OK"

# forecast-smoke runs the lead-time study end to end at tiny scale: collect
# a long-window stream with delayed interference arrivals, train the k=0
# classifier and one forecast head per horizon, and check the emitted curve
# has the baseline row, every horizon, and the determinism digest.
forecast-smoke:
	@mkdir -p out/forecast-smoke
	$(GO) run ./cmd/figures -only leadtime -scale 0.08 -epochs 6 \
		-profiles paper -out out/forecast-smoke
	@grep -q '^paper,0,' out/forecast-smoke/leadtime.csv || \
		{ echo "forecast-smoke: leadtime.csv missing baseline row"; exit 1; }
	@for k in 1 2 4; do grep -q "^paper,$$k," out/forecast-smoke/leadtime.csv || \
		{ echo "forecast-smoke: leadtime.csv missing horizon $$k"; exit 1; }; done
	@grep -q '^digest,paper,' out/forecast-smoke/leadtime.csv || \
		{ echo "forecast-smoke: leadtime.csv missing weights digest"; exit 1; }
	@echo "forecast-smoke: OK"

# mitigate-smoke runs the policy × fault × workload actuation study end to
# end at tiny scale and compares the emitted CSV byte-for-byte against the
# committed golden (internal/experiments/testdata/mitigation_golden.csv) —
# the determinism pin for the whole predict → forecast → policy → actuate
# loop. The flags here MUST match tinyMitigationConfig in
# internal/experiments/mitigation_test.go; refresh the golden with
# UPDATE_GOLDEN=1 go test ./internal/experiments -run TestMitigationDeterministic.
mitigate-smoke:
	@mkdir -p out/mitigate-smoke
	$(GO) run ./cmd/figures -only mitigation -scale 0.08 -epochs 6 -seed 3 \
		-reps 1 -out out/mitigate-smoke
	@cmp out/mitigate-smoke/mitigation.csv \
		internal/experiments/testdata/mitigation_golden.csv || \
		{ echo "mitigate-smoke: CSV diverged from golden"; exit 1; }
	@echo "mitigate-smoke: OK"

# fleet-smoke runs the deterministic 3-replica fleet episode twice and
# byte-compares the outputs: rendezvous routing with failover across a
# mid-episode kill (zero dropped requests), a failed rolling promotion that
# rolls back to the incumbent digest, a restart with reservoir restore, the
# order-independent merged retrain, and a clean fleet-wide rollout. The
# printed timeline carries replica names and weight digests only, so any
# nondeterminism in routing, merging, or training shows up as a byte diff.
fleet-smoke:
	@mkdir -p out/fleet-smoke
	$(GO) run ./cmd/quantfleet -smoke > out/fleet-smoke/run1.txt
	$(GO) run ./cmd/quantfleet -smoke > out/fleet-smoke/run2.txt
	@cmp out/fleet-smoke/run1.txt out/fleet-smoke/run2.txt || \
		{ echo "fleet-smoke: episode diverged between runs"; exit 1; }
	@grep -q 'dropped 0' out/fleet-smoke/run1.txt || \
		{ echo "fleet-smoke: requests were dropped"; exit 1; }
	@grep -q 'order-independent: ok' out/fleet-smoke/run1.txt || \
		{ echo "fleet-smoke: merge order changed the corpus digest"; exit 1; }
	@echo "fleet-smoke: OK"

# shadow-smoke runs the shadow-evaluation episode twice and byte-compares
# the outputs: one weak champion served by three replicas with a shared
# mirror tap, three challengers scored on the mirrored live traffic, the
# N-way gate promoting exactly the margin-winning challenger fleet-wide, and
# a forced-reject drill epoch that keeps the new incumbent. Scores, digests,
# and the routing timeline are all in the output, so any nondeterminism in
# mirroring, scoring, or gating shows up as a byte diff.
shadow-smoke:
	@mkdir -p out/shadow-smoke
	$(GO) run ./cmd/quantfleet -shadow > out/shadow-smoke/run1.txt
	$(GO) run ./cmd/quantfleet -shadow > out/shadow-smoke/run2.txt
	@cmp out/shadow-smoke/run1.txt out/shadow-smoke/run2.txt || \
		{ echo "shadow-smoke: episode diverged between runs"; exit 1; }
	@grep -q '^verdict: promote ' out/shadow-smoke/run1.txt || \
		{ echo "shadow-smoke: no challenger was promoted"; exit 1; }
	@grep -q '^shadow-promote ' out/shadow-smoke/run1.txt || \
		{ echo "shadow-smoke: promotion missing from the timeline"; exit 1; }
	@grep -q '^verdict: keep incumbent' out/shadow-smoke/run1.txt || \
		{ echo "shadow-smoke: forced-reject drill did not keep the incumbent"; exit 1; }
	@grep -q 'dropped 0 labeled 192 unmatched 0' out/shadow-smoke/run1.txt || \
		{ echo "shadow-smoke: mirror shed or missed traffic"; exit 1; }
	@echo "shadow-smoke: OK"

# trace produces a sample Chrome trace-event file; open trace.json in
# about:tracing or https://ui.perfetto.dev.
trace:
	$(GO) run ./cmd/simrun -target ior-easy-write -scale 0.2 \
		-interference ior-easy-read -instances 2 \
		-trace-events trace.json -stats

clean:
	rm -f trace.json
	rm -rf out/
