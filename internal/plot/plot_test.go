package plot

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLineChartWellFormedAndComplete(t *testing.T) {
	svg := LineChart("Figure 1(a)", "op index", "latency (ms)", []Series{
		{Name: "baseline", Ys: []float64{1, 2, 1.5, 3}},
		{Name: "3x write", Ys: []float64{5, 9, 7, 12}},
	}, 640, 360)
	wellFormed(t, svg)
	for _, want := range []string{"Figure 1(a)", "baseline", "3x write", "op index", "latency (ms)", "<path"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestLineChartHandlesDegenerateInput(t *testing.T) {
	wellFormed(t, LineChart("t", "x", "y", nil, 320, 200))
	wellFormed(t, LineChart("t", "x", "y", []Series{{Name: "flat", Ys: []float64{0, 0}}}, 320, 200))
	wellFormed(t, LineChart("t", "x", "y", []Series{{Name: "one", Ys: []float64{5}}}, 320, 200))
}

func TestHeatmapCellsAndLabels(t *testing.T) {
	svg := Heatmap("Table I", []string{"r0", "r1"}, []string{"c0", "c1"},
		[][]float64{{1, 40.9}, {4.4, 1.2}}, 480, 300)
	wellFormed(t, svg)
	for _, want := range []string{"Table I", "r0", "c1", "40.9", "4.4"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// The 40.9x cell must be darker (lower green) than the 1.2x cell.
	if !strings.Contains(svg, heatColor(1.0)) {
		t.Fatal("max cell not at full heat")
	}
}

func TestConfusionSharesAndCounts(t *testing.T) {
	svg := Confusion("Figure 3(a)", []string{"<2x", ">=2x"}, [][]int{{46, 0}, {4, 112}})
	wellFormed(t, svg)
	for _, want := range []string{"112", "46", "&lt;2x", "&gt;=2x", "true \\ predicted"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestConfusionZeroRowSafe(t *testing.T) {
	svg := Confusion("empty", []string{"a", "b"}, [][]int{{0, 0}, {1, 1}})
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestNiceTicksProperties(t *testing.T) {
	f := func(loRaw, spanRaw uint16) bool {
		lo := float64(loRaw) / 7
		hi := lo + float64(spanRaw%5000)/3 + 0.1
		ticks := niceTicks(lo, hi, 5)
		if len(ticks) == 0 || len(ticks) > 12 {
			return false
		}
		for i, v := range ticks {
			if v < lo-1e-9 || v > hi+1e-6 {
				return false
			}
			if i > 0 && v <= ticks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEscape(t *testing.T) {
	if escape("a<b>&c") != "a&lt;b&gt;&amp;c" {
		t.Fatalf("escape: %q", escape("a<b>&c"))
	}
}

func TestHeatColorRange(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.5, 1, 2} {
		c := heatColor(v)
		if len(c) != 7 || c[0] != '#' {
			t.Fatalf("bad color %q", c)
		}
	}
	if heatColor(0) != "#ffffff" {
		t.Fatalf("zero heat should be white: %s", heatColor(0))
	}
}
