// Package plot renders the experiment results as standalone SVG files —
// the equivalent of the original artifact's generate_eval_results.py
// producing .png figures — using only the standard library.
//
// Three chart types cover every element of the paper: line charts for
// Figure 1's per-operation latency series, heatmaps for Table I's slowdown
// matrix, and shaded confusion matrices for Figures 3-5.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line in a line chart.
type Series struct {
	Name string
	Ys   []float64
}

// palette holds distinguishable line colours.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
}

const (
	marginL = 64
	marginR = 16
	marginT = 36
	marginB = 44
)

type canvas struct {
	b    strings.Builder
	w, h int
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *canvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (c *canvas) line(x1, y1, x2, y2 float64, color string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

func (c *canvas) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#ccc" stroke-width="0.5"/>`+"\n",
		x, y, w, h, fill)
}

func (c *canvas) path(points []point, color string) {
	var d strings.Builder
	for i, p := range points {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&d, "%s%.1f %.1f ", cmd, p.x, p.y)
	}
	fmt.Fprintf(&c.b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
		strings.TrimSpace(d.String()), color)
}

func (c *canvas) done() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

type point struct{ x, y float64 }

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

// niceTicks picks ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e6; v += step {
		out = append(out, v)
	}
	return out
}

// LineChart renders one panel with X = sample index.
func LineChart(title, xlabel, ylabel string, series []Series, w, h int) string {
	c := newCanvas(w, h)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	maxY, maxN := 0.0, 0
	for _, s := range series {
		if len(s.Ys) > maxN {
			maxN = len(s.Ys)
		}
		for _, y := range s.Ys {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	if maxN < 2 {
		maxN = 2
	}
	xOf := func(i int) float64 {
		return marginL + plotW*float64(i)/float64(maxN-1)
	}
	yOf := func(v float64) float64 {
		return marginT + plotH*(1-v/maxY)
	}

	// Axes, ticks, grid.
	c.text(float64(w)/2, 20, 14, "middle", title)
	c.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	c.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	for _, tv := range niceTicks(0, maxY, 5) {
		y := yOf(tv)
		c.line(marginL, y, marginL+plotW, y, "#eee", 1)
		c.text(marginL-6, y+4, 10, "end", trimFloat(tv))
	}
	for _, tv := range niceTicks(0, float64(maxN-1), 6) {
		x := xOf(int(tv))
		c.text(x, marginT+plotH+14, 10, "middle", trimFloat(tv))
	}
	c.text(float64(w)/2, float64(h)-8, 11, "middle", xlabel)
	c.text(14, marginT-10, 11, "start", ylabel)

	// Series and legend.
	for si, s := range series {
		color := palette[si%len(palette)]
		pts := make([]point, len(s.Ys))
		for i, y := range s.Ys {
			pts[i] = point{x: xOf(i), y: yOf(y)}
		}
		c.path(pts, color)
		lx := marginL + 10 + float64(si%3)*plotW/3
		ly := marginT + 14 + float64(si/3)*14
		c.line(lx, ly-4, lx+18, ly-4, color, 2)
		c.text(lx+22, ly, 10, "start", s.Name)
	}
	return c.done()
}

// heatColor maps t in [0,1] from white to deep red.
func heatColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	r := 255
	g := int(255 * (1 - 0.85*t))
	b := int(255 * (1 - 0.9*t))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// Heatmap renders a labelled matrix; cell colour follows log2(value) so
// both 1.2x and 40x cells are readable, and each cell carries its number.
func Heatmap(title string, rowLabels, colLabels []string, values [][]float64, w, h int) string {
	c := newCanvas(w, h)
	const left = 128
	plotW := float64(w-left-marginR) / float64(len(colLabels))
	plotH := float64(h-marginT-marginB) / float64(len(rowLabels))
	maxLog := 0.0
	for _, row := range values {
		for _, v := range row {
			if lv := math.Log2(math.Max(v, 1)); lv > maxLog {
				maxLog = lv
			}
		}
	}
	if maxLog == 0 {
		maxLog = 1
	}
	c.text(float64(w)/2, 20, 14, "middle", title)
	for i, rl := range rowLabels {
		y := marginT + plotH*float64(i)
		c.text(left-6, y+plotH/2+4, 10, "end", rl)
		for j := range colLabels {
			x := left + plotW*float64(j)
			v := values[i][j]
			c.rect(x, y, plotW, plotH, heatColor(math.Log2(math.Max(v, 1))/maxLog))
			c.text(x+plotW/2, y+plotH/2+4, 10, "middle", fmt.Sprintf("%.1f", v))
		}
	}
	for j, cl := range colLabels {
		x := left + plotW*(float64(j)+0.5)
		c.text(x, float64(h)-marginB+16, 9, "middle", cl)
	}
	return c.done()
}

// Confusion renders a confusion matrix like the paper's Figures 3-5: cells
// shaded by row-normalized share, counts printed.
func Confusion(title string, classNames []string, m [][]int) string {
	n := len(classNames)
	size := 96*n + 160
	c := newCanvas(size, 96*n+96)
	const left = 96
	cell := 96.0
	c.text(float64(size)/2, 20, 13, "middle", title)
	for i := 0; i < n; i++ {
		rowTotal := 0
		for j := 0; j < n; j++ {
			rowTotal += m[i][j]
		}
		y := marginT + cell*float64(i)
		c.text(left-6, y+cell/2+4, 11, "end", classNames[i])
		for j := 0; j < n; j++ {
			x := left + cell*float64(j)
			share := 0.0
			if rowTotal > 0 {
				share = float64(m[i][j]) / float64(rowTotal)
			}
			c.rect(x, y, cell, cell, heatColor(share))
			c.text(x+cell/2, y+cell/2+5, 14, "middle", fmt.Sprintf("%d", m[i][j]))
		}
	}
	for j := 0; j < n; j++ {
		x := left + cell*(float64(j)+0.5)
		c.text(x, marginT+cell*float64(n)+18, 11, "middle", classNames[j])
	}
	c.text(10, marginT-10, 10, "start", "true \\ predicted")
	return c.done()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}
