package hw

import (
	"encoding/json"
	"errors"
	"testing"

	"quanterference/internal/sim"
)

// TestJSONRoundTrip serializes every named profile and checks the decoded
// value is identical — Profile is the unit of persistence for scenario
// configs and dataset headers.
func TestJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %s: %v", name, err)
		}
		var got Profile
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", name, err)
		}
		if got != p {
			t.Errorf("%s: round trip changed profile:\n  in  %+v\n  out %+v", name, p, got)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
		if p.IsZero() {
			t.Errorf("ByName(%q) returned the zero profile", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("named profile %s invalid: %v", name, err)
		}
	}
	if _, err := ByName("quantum"); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("ByName(quantum) = %v, want ErrUnknownProfile", err)
	}
	if _, err := ByName(""); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("ByName(\"\") = %v, want ErrUnknownProfile", err)
	}
}

// TestPaperProfileOnlyNamed pins the guarantee the golden-trace tests rely
// on: PaperProfile carries no overrides, just the name.
func TestPaperProfileOnlyNamed(t *testing.T) {
	p := PaperProfile()
	p.Name = ""
	if !p.IsZero() {
		t.Fatalf("PaperProfile carries overrides beyond its name: %+v", PaperProfile())
	}
}

func TestIsZeroAndDisplayName(t *testing.T) {
	var z Profile
	if !z.IsZero() {
		t.Error("zero profile: IsZero() = false")
	}
	if z.DisplayName() != "custom" {
		t.Errorf("zero profile DisplayName = %q, want custom", z.DisplayName())
	}
	if PaperProfile().IsZero() {
		t.Error("PaperProfile: IsZero() = true")
	}
	if got := NVMeProfile().DisplayName(); got != "nvme" {
		t.Errorf("NVMeProfile DisplayName = %q", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Profile{
		{Net: NetConfig{NICBps: -1}},
		{Net: NetConfig{Latency: -sim.Microsecond}},
		{Server: ServerConfig{MDSOpCPU: -1}},
		{Server: ServerConfig{WritebackLimit: -1}},
		{BB: BurstBufferConfig{Enabled: true, CapacityBytes: -1}},
		{BB: BurstBufferConfig{IngestBps: -2e9}},
	}
	bad = append(bad, func() Profile {
		p := NVMeProfile()
		p.Disk.FlatAccess = -sim.Microsecond
		return p
	}())
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d (%+v): Validate() = nil", i, p)
		}
	}
	if err := (Profile{}).Validate(); err != nil {
		t.Errorf("zero profile: Validate() = %v", err)
	}
}
