// Package hw defines first-class hardware profiles: serializable bundles of
// the simulator's device-level parameters — disk geometry/latency model,
// per-node NIC bandwidth and fabric latency, optional node-local burst
// buffers, and server-side costs (MDS op CPU, OST write-back cache) — that
// select which storage subsystem a Scenario simulates.
//
// The zero Profile (and the named PaperProfile) reproduces the paper's
// testbed bit-for-bit: 7200 RPM SATA disks, 1 GB/s NICs, no burst buffer,
// Lustre 2.12 server defaults. The other named profiles model alternative
// subsystems in the spirit of Xu et al. ("ML-based Modeling to Predict I/O
// Performance on Different Storage Sub-systems"): NVMe-class flat-latency
// devices, a 10 GB/s fabric, and burst-buffer tiering. Cross-profile model
// transfer lives in internal/experiments.
package hw

import (
	"errors"
	"fmt"

	"quanterference/internal/disk"
	"quanterference/internal/sim"
)

// NetConfig is the profile's fabric description.
type NetConfig struct {
	// NICBps is the per-direction NIC bandwidth in bytes/second applied to
	// every node the scenario registers. 0 keeps the topology's own value
	// (PaperTopology: 1 GB/s).
	NICBps float64 `json:"nic_bps,omitempty"`
	// Latency is the fixed one-way message latency. 0 keeps the network
	// default (100 µs).
	Latency sim.Time `json:"latency_ns,omitempty"`
}

// BurstBufferConfig attaches a node-local fast tier in front of every
// client: writes complete at local ingest speed and drain to the PFS
// asynchronously (internal/bb).
type BurstBufferConfig struct {
	// Enabled turns the tier on; the remaining fields then size it
	// (0 = internal/bb defaults: 256 MiB, 2 GB/s, 4 drain RPCs).
	Enabled          bool    `json:"enabled,omitempty"`
	CapacityBytes    int64   `json:"capacity_bytes,omitempty"`
	IngestBps        float64 `json:"ingest_bps,omitempty"`
	DrainConcurrency int     `json:"drain_concurrency,omitempty"`
}

// ServerConfig carries the server-side cost parameters a profile may
// override. Each 0 keeps the matching lustre.Config default.
type ServerConfig struct {
	// MDSOpCPU is the CPU time per metadata operation (default 200 µs).
	MDSOpCPU sim.Time `json:"mds_op_cpu_ns,omitempty"`
	// OSSOpCPU is the CPU time an OSS thread spends per bulk RPC
	// (default 50 µs).
	OSSOpCPU sim.Time `json:"oss_op_cpu_ns,omitempty"`
	// WritebackLimit is the per-OST dirty-data cap in bytes (default 16 MiB).
	WritebackLimit int64 `json:"writeback_limit_bytes,omitempty"`
	// InodeCacheEntries sizes the MDS inode/dentry cache (default 4096).
	InodeCacheEntries int `json:"inode_cache_entries,omitempty"`
}

// Profile is one storage subsystem: every device-level knob the simulator
// exposes, bundled as a value that serializes to JSON and threads through
// Scenario.Hardware. Profile is comparable; the zero value means "the
// paper's testbed" everywhere.
//
// Per-field semantics are "0 keeps the layer's own default", so a profile
// only has to state what it changes. Disk.Seed is ignored: per-target disk
// seeds always derive from lustre.Config.Seed so that reseeding a scenario
// reseeds every device coherently.
type Profile struct {
	// Name identifies the profile in datasets, reports, and CLIs. Named
	// constructors fill it; hand-built profiles may leave it "" (rendered
	// as "custom" in reports).
	Name string `json:"name"`
	// Disk is the storage-device model shared by every OST and the MDT.
	// The zero value is the paper's 1 TB 7200 RPM SATA drive; set
	// FlatAccess for NVMe-class flat-latency devices.
	Disk disk.Config `json:"disk"`
	// Net is the cluster fabric.
	Net NetConfig `json:"net"`
	// BB optionally fronts every client with a node-local burst buffer.
	BB BurstBufferConfig `json:"burst_buffer"`
	// Server overrides server-side cost parameters.
	Server ServerConfig `json:"server"`
}

// IsZero reports whether the profile is the zero value (no name, no
// overrides) — the condition under which Scenario defaulting substitutes
// PaperProfile.
func (p Profile) IsZero() bool { return p == Profile{} }

// DisplayName returns Name, or "custom" for unnamed hand-built profiles.
func (p Profile) DisplayName() string {
	if p.Name == "" {
		return "custom"
	}
	return p.Name
}

// Validate rejects parameter values the simulator layers would otherwise
// panic on mid-run. The zero profile is always valid.
func (p Profile) Validate() error {
	if p.Disk.TotalSectors < 0 {
		return fmt.Errorf("hw: profile %s: negative disk capacity %d sectors",
			p.DisplayName(), p.Disk.TotalSectors)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"disk RPM", p.Disk.RPM},
		{"disk transfer rate", p.Disk.TransferBps},
		{"NIC bandwidth", p.Net.NICBps},
		{"burst-buffer ingest rate", p.BB.IngestBps},
	} {
		if f.v < 0 {
			return fmt.Errorf("hw: profile %s: negative %s %g", p.DisplayName(), f.name, f.v)
		}
	}
	for _, t := range []struct {
		name string
		v    sim.Time
	}{
		{"disk seek-min", p.Disk.SeekMin},
		{"disk seek-max", p.Disk.SeekMax},
		{"disk flat-access time", p.Disk.FlatAccess},
		{"net latency", p.Net.Latency},
		{"MDS op CPU", p.Server.MDSOpCPU},
		{"OSS op CPU", p.Server.OSSOpCPU},
	} {
		if t.v < 0 {
			return fmt.Errorf("hw: profile %s: negative %s %d ns", p.DisplayName(), t.name, t.v)
		}
	}
	if p.Server.WritebackLimit < 0 || p.Server.InodeCacheEntries < 0 {
		return fmt.Errorf("hw: profile %s: negative server cache sizing", p.DisplayName())
	}
	if p.BB.CapacityBytes < 0 || p.BB.DrainConcurrency < 0 {
		return fmt.Errorf("hw: profile %s: negative burst-buffer sizing", p.DisplayName())
	}
	return nil
}

// PaperProfile is the paper's §IV testbed: 7200 RPM SATA disks behind each
// OST and the MDT, 1 GB/s NICs (from PaperTopology), no burst buffer. Every
// override field is zero, so a scenario carrying it is bit-identical to one
// with no profile at all — the committed golden traces guard this.
func PaperProfile() Profile { return Profile{Name: "paper"} }

// NVMeProfile swaps the rotational drives for NVMe-class flash: flat 20 µs
// access latency regardless of address (no seek, no rotation) and a
// 2.5 GB/s sustained media rate. Interference no longer degenerates
// sequential streams into seek-bound access, so the paper's dominant
// mechanism largely disappears and contention shifts to the NICs and server
// CPUs.
func NVMeProfile() Profile {
	return Profile{
		Name: "nvme",
		Disk: disk.Config{
			FlatAccess:  20 * sim.Microsecond,
			TransferBps: 2.5e9,
		},
	}
}

// FastNICProfile keeps the rotational disks but upgrades the fabric to
// 10 GB/s per-node NICs with 20 µs latency — the disks become an even
// stronger bottleneck, concentrating interference at the block layer.
func FastNICProfile() Profile {
	return Profile{
		Name: "fastnic",
		Net:  NetConfig{NICBps: 1e10, Latency: 20 * sim.Microsecond},
	}
}

// BurstBufferProfile keeps the paper's disks and NICs but fronts every
// client with a node-local NVMe-class burst buffer (256 MiB at 2 GB/s):
// write latency decouples from PFS contention while bursts fit the buffer,
// the mitigation regime of the paper's references [11][12].
func BurstBufferProfile() Profile {
	return Profile{
		Name: "burstbuffer",
		BB:   BurstBufferConfig{Enabled: true},
	}
}

// ErrUnknownProfile marks a ByName lookup for a name no named constructor
// claims; match with errors.Is.
var ErrUnknownProfile = errors.New("hw: unknown hardware profile")

// Names lists the named profiles in registry order.
func Names() []string { return []string{"paper", "nvme", "fastnic", "burstbuffer"} }

// ByName resolves a named profile ("paper", "nvme", "fastnic",
// "burstbuffer"), returning ErrUnknownProfile (wrapped) otherwise.
func ByName(name string) (Profile, error) {
	switch name {
	case "paper":
		return PaperProfile(), nil
	case "nvme":
		return NVMeProfile(), nil
	case "fastnic":
		return FastNICProfile(), nil
	case "burstbuffer":
		return BurstBufferProfile(), nil
	}
	return Profile{}, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownProfile, name, Names())
}
