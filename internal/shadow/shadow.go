// Package shadow is the live-traffic shadow-evaluation layer of the
// predict → score → promote control loop: it scores up to N challenger
// frameworks against the serving champion on the traffic the champion
// actually answers, and turns those scores into an N-way
// champion/challenger gate verdict (online.EvaluateShadowGate) that the
// fleet coordinator consumes before a fleet-wide rollout.
//
// The design constraint is that the champion's hot path must not notice the
// shadow at all:
//
//   - Mirror is the serving layer's tap. It is a single non-blocking send of
//     a small struct into a pre-allocated channel — no locks, no
//     allocations, never a stall. When the queue is full the event is
//     dropped and counted (drop-counting backpressure); a slow or wedged
//     evaluator can therefore cost mirror coverage, never champion latency.
//
//   - All real work — joining delayed labels to mirrored events, running the
//     challengers' predictions, scoring — happens on the labeling caller's
//     goroutine (Label/Verdict), exactly like online.Loop's single-goroutine
//     contract. Challenger inference is as expensive as N extra Predicts,
//     but it is paid off the serving path.
//
//   - Labels join mirrored events by matrix content hash, so the label feed
//     needs no request IDs from the serving layer. Only traffic that was
//     actually mirrored is scored: a label whose matrix was never served (or
//     whose mirror event was dropped) counts as unmatched, keeping every
//     candidate judged on the same live sample set.
//
// Determinism: per-candidate scores are cumulative totals (permutation
// invariant in the mirrored set), labels are scored in the caller's feed
// order, and the gate's tie-breaking is seeded — so same-seed episodes with
// the same served traffic and label feed produce byte-identical verdict
// timelines even when the mirror events arrived from dozens of concurrent
// serving goroutines.
//
// Concurrency: every method is safe for concurrent use — Mirror is called
// from serving batcher goroutines, Status and Sync from /v1/shadow handler
// goroutines. But verdict *determinism* additionally requires a single label
// feeder: Label/Verdict interleavings from multiple goroutines would make
// the scoreboard's sample sets race-order dependent, so keep the label feed
// on one goroutine (the episode driver or continuous-learning loop that
// owns the evaluator), like online.Loop.
package shadow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"quanterference/internal/core"
	"quanterference/internal/monitor/window"
	"quanterference/internal/obs"
	"quanterference/internal/online"
	"quanterference/internal/serve"
)

// *Evaluator is the canonical serve.ShadowEvaluator.
var _ serve.ShadowEvaluator = (*Evaluator)(nil)

// Sentinel errors. Match with errors.Is.
var (
	// ErrDuplicateChallenger reports an AddChallenger name already in use.
	ErrDuplicateChallenger = errors.New("shadow: duplicate challenger name")

	// ErrShapeMismatch reports a challenger whose input shape or class count
	// differs from the champion's — it could never serve the same traffic.
	ErrShapeMismatch = errors.New("shadow: challenger shape mismatch")

	// ErrTooManyChallengers reports an AddChallenger beyond Config.MaxChallengers.
	ErrTooManyChallengers = errors.New("shadow: too many challengers")
)

// Config tunes an Evaluator. The zero value is usable: every field defaults
// to the values quantfleet -shadow ships with.
type Config struct {
	// Seed drives the gate's deterministic tie-breaking.
	Seed int64
	// QueueCap bounds the async mirror queue (default 1024). Offers beyond
	// it are dropped and counted, never blocked on.
	QueueCap int
	// PendingCap bounds the label-join table of mirrored-but-unlabeled
	// events (default 4096); the oldest pending event is evicted first.
	PendingCap int
	// MaxChallengers caps the challenger set (default 8).
	MaxChallengers int
	// MinSamples is how many labeled samples the champion and the winning
	// challenger each need before a verdict can promote (default 32).
	MinSamples int
	// Margin is how much live accuracy the winning challenger must beat the
	// champion by to be promoted (default 0.01). A margin above 1 is an
	// impossible bar that force-rejects every challenger — the rollback
	// drill knob quantfleet -shadow exercises.
	Margin float64
	// Sink receives the evaluator's counters and gauges. Pass the serving
	// layer's sink to surface them on /v1/stats; nil allocates a private
	// sink so Stats always works.
	Sink *obs.Sink
}

func (c *Config) applyDefaults() {
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.PendingCap <= 0 {
		c.PendingCap = 4096
	}
	if c.MaxChallengers <= 0 {
		c.MaxChallengers = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.Margin == 0 {
		c.Margin = 0.01
	}
	if c.Sink == nil {
		c.Sink = obs.New()
	}
}

// event is one mirrored champion reply: the served matrix and the class the
// champion answered with. Matrices are held by reference — the HTTP serving
// path allocates a fresh matrix per request, and in-process callers must not
// mutate a matrix after handing it to Predict.
type event struct {
	mat   window.Matrix
	class int
}

// pend is one mirrored event awaiting its delayed label.
type pend struct {
	hash     uint64
	ev       event
	consumed bool
}

// score accumulates one candidate's outcomes on the labeled mirror stream.
type score struct {
	samples int
	hits    int
	ceSum   float64
}

func (s *score) observe(correct bool, ce float64) {
	s.samples++
	if correct {
		s.hits++
	}
	s.ceSum += ce
}

func (s *score) accuracy() float64 {
	if s.samples == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.samples)
}

func (s *score) meanCE() float64 {
	if s.samples == 0 {
		return 0
	}
	return s.ceSum / float64(s.samples)
}

func (s *score) candidate(name string) online.CandidateScore {
	return online.CandidateScore{
		Name:     name,
		Accuracy: s.accuracy(),
		CE:       s.meanCE(),
		Samples:  s.samples,
	}
}

type challenger struct {
	name string
	fw   *core.Framework // private evaluation clone, owned by the evaluator
	sc   score
}

// Evaluator scores a champion and its challengers on mirrored live traffic.
// Create with New, tap it into a serving layer (serve.Config.Shadow), feed
// delayed labels with Label, and read verdicts with Verdict.
type Evaluator struct {
	cfg   Config
	queue chan event

	// Offer-side counters are atomics: Mirror must never take the mutex.
	mirrored atomic.Uint64
	dropped  atomic.Uint64

	mu          sync.Mutex
	champion    *core.Framework // private evaluation clone of the served champion
	champ       score
	challengers []*challenger
	pending     map[uint64][]*pend
	fifo        []*pend
	head        int
	live        int // unconsumed events awaiting a label
	dead        int // consumed events still occupying fifo slots past head
	labeled     uint64
	unmatched   uint64
	evicted     uint64
	mismatches  uint64
	verdicts    uint64

	mMirrored   *obs.Counter
	mDropped    *obs.Counter
	mLabeled    *obs.Counter
	mUnmatched  *obs.Counter
	mEvicted    *obs.Counter
	mMismatches *obs.Counter
	mVerdicts   *obs.Counter
	gQueueDepth *obs.Gauge
	gPending    *obs.Gauge
}

// New builds an evaluator around the serving champion. The evaluator clones
// the champion for private scoring (Predict reuses scratch and the served
// instance belongs to its batcher), so the caller may keep serving it.
func New(champion *core.Framework, cfg Config) (*Evaluator, error) {
	cfg.applyDefaults()
	clone, err := champion.Clone()
	if err != nil {
		return nil, fmt.Errorf("shadow: cloning champion: %w", err)
	}
	return &Evaluator{
		cfg:      cfg,
		queue:    make(chan event, cfg.QueueCap),
		champion: clone,
		pending:  make(map[uint64][]*pend),

		mMirrored:   cfg.Sink.Counter("shadow", "", "mirrored"),
		mDropped:    cfg.Sink.Counter("shadow", "", "mirror_drops"),
		mLabeled:    cfg.Sink.Counter("shadow", "", "labeled"),
		mUnmatched:  cfg.Sink.Counter("shadow", "", "labels_unmatched"),
		mEvicted:    cfg.Sink.Counter("shadow", "", "pending_evicted"),
		mMismatches: cfg.Sink.Counter("shadow", "", "mirror_mismatches"),
		mVerdicts:   cfg.Sink.Counter("shadow", "", "verdicts"),
		gQueueDepth: cfg.Sink.Gauge("shadow", "", "mirror_queue_depth"),
		gPending:    cfg.Sink.Gauge("shadow", "", "pending"),
	}, nil
}

// AddChallenger registers one challenger under a unique name. The framework
// is cloned (the evaluator owns its copy; the caller keeps the original for
// the eventual promotion) and must read the champion's input shape and class
// count.
func (e *Evaluator) AddChallenger(name string, fw *core.Framework) error {
	if name == "" {
		return errors.New("shadow: empty challenger name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.challengers) >= e.cfg.MaxChallengers {
		return fmt.Errorf("%w: %d registered, cap %d", ErrTooManyChallengers, len(e.challengers), e.cfg.MaxChallengers)
	}
	for _, c := range e.challengers {
		if c.name == name {
			return fmt.Errorf("%w: %q", ErrDuplicateChallenger, name)
		}
	}
	ct, cf := e.champion.Dims()
	nt, nf := fw.Dims()
	if nt != ct || nf != cf || fw.Classes() != e.champion.Classes() {
		return fmt.Errorf("%w: %q is %dx%d/%d classes, champion is %dx%d/%d classes",
			ErrShapeMismatch, name, nt, nf, fw.Classes(), ct, cf, e.champion.Classes())
	}
	clone, err := fw.Clone()
	if err != nil {
		return fmt.Errorf("shadow: cloning challenger %q: %w", name, err)
	}
	e.challengers = append(e.challengers, &challenger{name: name, fw: clone})
	return nil
}

// Challengers returns the registered challenger names in registration order.
func (e *Evaluator) Challengers() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, len(e.challengers))
	for i, c := range e.challengers {
		names[i] = c.name
	}
	return names
}

// Mirror feeds one served reply into the async mirror queue — the serving
// layer's tap, called by the batcher right before it answers the caller. It
// is one non-blocking channel send: when the queue is full the event is
// dropped and counted, and the champion's reply is never delayed. Safe for
// any number of concurrent callers.
func (e *Evaluator) Mirror(mat window.Matrix, class int) {
	select {
	case e.queue <- event{mat: mat, class: class}:
		e.mirrored.Add(1)
		e.mMirrored.Inc()
		e.gQueueDepth.Set(float64(len(e.queue)))
	default:
		e.dropped.Add(1)
		e.mDropped.Inc()
	}
}

// matHash is the label-join key: fnv64a over the matrix's float64 bits with
// row separators, so ([a b],[c]) and ([a],[b c]) hash apart.
func matHash(mat window.Matrix) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, row := range mat {
		b[0] = 0xff // row separator
		h.Write(b[:1])
		for _, v := range row {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// drainLocked moves everything queued into the pending join table, evicting
// the oldest pending events beyond PendingCap. Caller holds e.mu.
func (e *Evaluator) drainLocked() {
	for {
		select {
		case ev := <-e.queue:
			p := &pend{hash: matHash(ev.mat), ev: ev}
			e.pending[p.hash] = append(e.pending[p.hash], p)
			e.fifo = append(e.fifo, p)
			e.live++
		default:
			e.evictLocked()
			e.gQueueDepth.Set(float64(len(e.queue)))
			e.gPending.Set(float64(e.pendingLenLocked()))
			return
		}
	}
}

func (e *Evaluator) pendingLenLocked() int { return e.live }

func (e *Evaluator) evictLocked() {
	for e.live > e.cfg.PendingCap && e.head < len(e.fifo) {
		p := e.fifo[e.head]
		e.fifo[e.head] = nil
		e.head++
		if p.consumed {
			e.dead--
			continue
		}
		e.removePendingLocked(p)
		e.live--
		e.evicted++
		e.mEvicted.Inc()
	}
	// Compact once dropped-prefix and consumed slots dominate, so a long
	// episode never grows the slice without bound: live entries are the only
	// ones kept, and a labeled stream that keeps up stays near-empty.
	if e.head+e.dead >= len(e.fifo)/2 && e.head+e.dead > 0 {
		kept := e.fifo[:0]
		for _, p := range e.fifo[e.head:] {
			if p != nil && !p.consumed {
				kept = append(kept, p)
			}
		}
		for i := len(kept); i < len(e.fifo); i++ {
			e.fifo[i] = nil
		}
		e.fifo, e.head, e.dead = kept, 0, 0
	}
}

func (e *Evaluator) removePendingLocked(p *pend) {
	list := e.pending[p.hash]
	for i, q := range list {
		if q == p {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(e.pending, p.hash)
	} else {
		e.pending[p.hash] = list
	}
}

// Sync drains the mirror queue into the join table without scoring
// anything. Callers that need every already-answered request joinable (the
// determinism tests, an episode driver about to read a verdict) call Sync
// after their replies arrive: the batcher mirrors before it answers, so a
// received reply guarantees the event is either queued or already dropped.
func (e *Evaluator) Sync() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.drainLocked()
}

// Label joins one delayed ground-truth outcome to its mirrored event and
// scores every candidate on it. The matrix must be the one that was served;
// degradation is the measured slowdown, binned under the champion's label
// bins. Returns true when the label matched a mirrored event; false (and an
// unmatched count) when the traffic was never mirrored — dropped, evicted,
// or never served — so candidates are only ever compared on the same
// samples.
func (e *Evaluator) Label(mat window.Matrix, degradation float64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.drainLocked()

	h := matHash(mat)
	var p *pend
	for _, q := range e.pending[h] {
		if !q.consumed {
			p = q
			break
		}
	}
	if p == nil {
		e.unmatched++
		e.mUnmatched.Inc()
		return false
	}
	p.consumed = true
	e.removePendingLocked(p)
	e.live--
	e.dead++
	e.gPending.Set(float64(e.pendingLenLocked()))

	truth := e.champion.Bins.Label(degradation)
	cls, probs := e.champion.Predict(p.ev.mat)
	if cls != p.ev.class {
		// The mirrored reply disagrees with our champion clone: the serving
		// layer promoted a new champion without a Reset. Count it — a
		// mounting mismatch rate means the scoreboard is judging the wrong
		// incumbent.
		e.mismatches++
		e.mMismatches.Inc()
	}
	e.champ.observe(cls == truth, crossEntropy(probs, truth))
	for _, c := range e.challengers {
		ccls, cprobs := c.fw.Predict(p.ev.mat)
		c.sc.observe(ccls == truth, crossEntropy(cprobs, truth))
	}
	e.labeled++
	e.mLabeled.Inc()
	return true
}

func crossEntropy(probs []float64, truth int) float64 {
	return -math.Log(math.Max(probs[truth], 1e-12))
}

// SetMargin adjusts the promotion margin between verdicts — the knob the
// forced-reject drill uses (see Config.Margin).
func (e *Evaluator) SetMargin(m float64) {
	e.mu.Lock()
	e.cfg.Margin = m
	e.mu.Unlock()
}

// Verdict evaluates the N-way champion/challenger gate at the current
// scoreboard: the ranked challengers against the champion, under the
// configured margin and minimum sample count. The result is a pure function
// of (seed, labeled outcomes), so same-seed replays of the same stream emit
// identical verdicts.
func (e *Evaluator) Verdict() online.GateResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	scores := make([]online.CandidateScore, len(e.challengers))
	for i, c := range e.challengers {
		scores[i] = c.sc.candidate(c.name)
	}
	g := online.EvaluateShadowGate(e.cfg.Seed, e.champ.candidate("champion"), scores, e.cfg.Margin, e.cfg.MinSamples)
	e.verdicts++
	e.mVerdicts.Inc()
	return g
}

// Reset starts a new evaluation epoch around a freshly promoted champion:
// the challenger set, every score, and the pending join table are cleared,
// and the champion clone is replaced. Queued mirror events from the old
// epoch are discarded.
func (e *Evaluator) Reset(champion *core.Framework) error {
	clone, err := champion.Clone()
	if err != nil {
		return fmt.Errorf("shadow: cloning champion: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		select {
		case <-e.queue:
		default:
			e.champion = clone
			e.champ = score{}
			e.challengers = nil
			e.pending = make(map[uint64][]*pend)
			e.fifo, e.head, e.live, e.dead = nil, 0, 0, 0
			e.gQueueDepth.Set(0)
			e.gPending.Set(0)
			return nil
		}
	}
}

// Status snapshots the scoreboard and counters as the /v1/shadow wire shape
// (the serving layer owns the API surface, so the type lives there). Safe
// for any goroutine.
func (e *Evaluator) Status() serve.ShadowStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := serve.ShadowStatus{
		Champion:   candidateStatus(e.champ.candidate("champion")),
		Mirrored:   e.mirrored.Load(),
		Dropped:    e.dropped.Load(),
		QueueDepth: len(e.queue),
		Pending:    e.pendingLenLocked(),
		Labeled:    e.labeled,
		Unmatched:  e.unmatched,
		Evicted:    e.evicted,
		Mismatches: e.mismatches,
		Verdicts:   e.verdicts,
		MinSamples: e.cfg.MinSamples,
		Margin:     e.cfg.Margin,
	}
	for _, c := range e.challengers {
		st.Challengers = append(st.Challengers, candidateStatus(c.sc.candidate(c.name)))
	}
	return st
}

func candidateStatus(cs online.CandidateScore) serve.ShadowCandidate {
	return serve.ShadowCandidate{Name: cs.Name, Samples: cs.Samples, Accuracy: cs.Accuracy, CE: cs.CE}
}

// Stats snapshots the evaluator's obs metrics (its private sink unless
// Config.Sink shared one).
func (e *Evaluator) Stats() *obs.Snapshot { return e.cfg.Sink.Snapshot() }
