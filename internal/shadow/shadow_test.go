package shadow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/online"
	"quanterference/internal/serve"
	"quanterference/internal/sim"
)

const (
	testTargets = 3
	testFeat    = 5
)

// trainedFramework trains a small 2-class framework; seed varies the weights
// and epochs varies the quality, so tests can build weak champions and
// strong challengers from the same data distribution.
func trainedFramework(tb testing.TB, seed int64, epochs int) *core.Framework {
	tb.Helper()
	names := make([]string, testFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, testTargets, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < 64; i++ {
		vecs := make([][]float64, testTargets)
		for t := range vecs {
			v := make([]float64, testFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + 2*float64(i%2)
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1 + 2*float64(i%2), Vectors: vecs})
	}
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{Seed: seed, Train: ml.TrainConfig{Epochs: epochs}})
	if err != nil {
		tb.Fatal(err)
	}
	return fw
}

// labeledStream generates n (matrix, degradation) pairs from the training
// distribution: even indices are healthy (degradation 1 → class 0), odd are
// degraded (degradation 3 → class 1) under the default binary bins.
func labeledStream(rng *sim.RNG, n int) ([]window.Matrix, []float64) {
	mats := make([]window.Matrix, n)
	degs := make([]float64, n)
	for i := range mats {
		mat := make(window.Matrix, testTargets)
		for t := range mat {
			row := make([]float64, testFeat)
			for f := range row {
				row[f] = rng.NormFloat64() + 2*float64(i%2)
			}
			mat[t] = row
		}
		mats[i] = mat
		degs[i] = 1 + 2*float64(i%2)
	}
	return mats, degs
}

// TestScoringCorrectness pins the scoreboard arithmetic: a challenger with
// the champion's exact weights scores identically to the champion, accuracy
// matches a hand count against the true bins, and the labeled/verdict
// counters line up.
func TestScoringCorrectness(t *testing.T) {
	champ := trainedFramework(t, 1, 5)
	ev, err := New(champ, Config{Seed: 1, MinSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("twin", champ); err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("weak", trainedFramework(t, 2, 1)); err != nil {
		t.Fatal(err)
	}

	mats, degs := labeledStream(sim.NewRNG(9), 32)
	hits := 0
	for i, mat := range mats {
		cls, _ := champ.Predict(mat)
		ev.Mirror(mat, cls)
		if cls == champ.Bins.Label(degs[i]) {
			hits++
		}
	}
	for i, mat := range mats {
		if !ev.Label(mat, degs[i]) {
			t.Fatalf("label %d found no mirrored event", i)
		}
	}

	st := ev.Status()
	wantAcc := float64(hits) / float64(len(mats))
	if st.Champion.Samples != 32 || st.Champion.Accuracy != wantAcc {
		t.Fatalf("champion score %+v, want %d samples at %.4f", st.Champion, 32, wantAcc)
	}
	twin := serve.ShadowCandidate{Name: "twin", Samples: st.Champion.Samples,
		Accuracy: st.Champion.Accuracy, CE: st.Champion.CE}
	if st.Challengers[0] != twin {
		t.Fatalf("twin scored %+v, champion %+v — identical weights must score identically", st.Challengers[0], st.Champion)
	}
	if st.Labeled != 32 || st.Unmatched != 0 || st.Mismatches != 0 || st.Pending != 0 {
		t.Fatalf("counters %+v", st)
	}

	// A label whose matrix was never served is unmatched, not scored.
	stray, strayDeg := labeledStream(sim.NewRNG(77), 1)
	if ev.Label(stray[0], strayDeg[0]) {
		t.Fatal("label for never-served traffic claimed a match")
	}
	if st := ev.Status(); st.Unmatched != 1 || st.Champion.Samples != 32 {
		t.Fatalf("unmatched label perturbed the scoreboard: %+v", st)
	}
}

// TestAddChallengerValidation pins the registration guards: duplicate names,
// shape mismatches, and the challenger cap are all refused.
func TestAddChallengerValidation(t *testing.T) {
	champ := trainedFramework(t, 3, 2)
	ev, err := New(champ, Config{MaxChallengers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("c0", champ); err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("c0", champ); !errors.Is(err, ErrDuplicateChallenger) {
		t.Fatalf("duplicate name = %v", err)
	}
	if err := ev.AddChallenger("", champ); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := ev.AddChallenger("c1", champ); err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("c2", champ); !errors.Is(err, ErrTooManyChallengers) {
		t.Fatalf("over-cap registration = %v", err)
	}
}

// TestMirrorDropPath pins the backpressure contract: a full queue sheds
// offers without blocking, counts every drop, and the mirrored/dropped split
// is exact.
func TestMirrorDropPath(t *testing.T) {
	champ := trainedFramework(t, 4, 2)
	ev, err := New(champ, Config{QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	mats, _ := labeledStream(sim.NewRNG(5), 10)
	for _, mat := range mats {
		ev.Mirror(mat, 0) // nobody drains: everything past QueueCap drops
	}
	st := ev.Status()
	if st.Mirrored != 2 || st.Dropped != 8 || st.QueueDepth != 2 {
		t.Fatalf("mirrored %d dropped %d depth %d, want 2/8/2", st.Mirrored, st.Dropped, st.QueueDepth)
	}
}

// TestPendingEviction pins the bounded join table: pending events beyond
// PendingCap evict oldest-first, an evicted event's label comes back
// unmatched, and the newest events stay joinable.
func TestPendingEviction(t *testing.T) {
	champ := trainedFramework(t, 6, 2)
	ev, err := New(champ, Config{PendingCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	mats, degs := labeledStream(sim.NewRNG(8), 10)
	for _, mat := range mats {
		ev.Mirror(mat, 0)
	}
	ev.Sync()
	if st := ev.Status(); st.Pending != 4 || st.Evicted != 6 {
		t.Fatalf("pending %d evicted %d, want 4/6", st.Pending, st.Evicted)
	}
	if ev.Label(mats[0], degs[0]) {
		t.Fatal("evicted event still labeled")
	}
	if !ev.Label(mats[9], degs[9]) {
		t.Fatal("newest event lost to eviction")
	}
}

// TestVerdictMarginAndForceReject walks the gate end to end on real scores:
// a strong challenger against a weak champion promotes, and the forced-reject
// margin keeps the incumbent on the same scoreboard.
func TestVerdictMarginAndForceReject(t *testing.T) {
	champ := trainedFramework(t, 10, 1) // barely trained champion
	ev, err := New(champ, Config{Seed: 10, MinSamples: 16, Margin: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("strong", trainedFramework(t, 11, 8)); err != nil {
		t.Fatal(err)
	}

	mats, degs := labeledStream(sim.NewRNG(12), 64)
	for _, mat := range mats {
		cls, _ := champ.Predict(mat)
		ev.Mirror(mat, cls)
	}
	for i, mat := range mats {
		ev.Label(mat, degs[i])
	}

	g := ev.Verdict()
	if !g.Promote || g.Winner != "strong" {
		t.Fatalf("verdict %+v, want strong promoted (champion %.3f vs %.3f)", g, g.IncumbentAccuracy, g.CandidateAccuracy)
	}

	ev.SetMargin(2) // forced-reject drill: impossible bar
	if g := ev.Verdict(); g.Promote || g.Winner != "" {
		t.Fatalf("forced-reject verdict still promoted: %+v", g)
	}
	if st := ev.Status(); st.Verdicts != 2 {
		t.Fatalf("verdict counter %d, want 2", st.Verdicts)
	}
}

// TestResetStartsNewEpoch pins the promotion handoff: Reset clears the
// challenger set, every score, and the join table, and scores the new
// champion from zero.
func TestResetStartsNewEpoch(t *testing.T) {
	champ := trainedFramework(t, 13, 2)
	ev, err := New(champ, Config{MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("c0", champ); err != nil {
		t.Fatal(err)
	}
	mats, degs := labeledStream(sim.NewRNG(14), 8)
	for i, mat := range mats {
		cls, _ := champ.Predict(mat)
		ev.Mirror(mat, cls)
		ev.Label(mat, degs[i])
	}
	ev.Mirror(mats[0], 0) // queued but undrained: Reset must discard it

	next := trainedFramework(t, 15, 4)
	if err := ev.Reset(next); err != nil {
		t.Fatal(err)
	}
	st := ev.Status()
	if st.Champion.Samples != 0 || len(st.Challengers) != 0 || st.Pending != 0 || st.QueueDepth != 0 {
		t.Fatalf("post-reset state %+v, want an empty epoch", st)
	}
	if g := ev.Verdict(); g.Promote || g.Scores != nil {
		t.Fatalf("post-reset verdict %+v", g)
	}
	// The old epoch's queued event is gone: its label is unmatched now.
	if ev.Label(mats[0], degs[0]) {
		t.Fatal("pre-reset mirror event survived the epoch change")
	}
}

// TestDeterminismConcurrentMirror is the same-seed determinism suite: two
// evaluators fed the same events by 16 concurrent mirror goroutines each
// (racing Status probes included), then labeled by a single feeder in one
// order, must agree bit-for-bit on scoreboard and verdict. Run under -race.
func TestDeterminismConcurrentMirror(t *testing.T) {
	champ := trainedFramework(t, 20, 1)
	strong := trainedFramework(t, 21, 8)
	mid := trainedFramework(t, 22, 3)
	mats, degs := labeledStream(sim.NewRNG(23), 96)
	classes := make([]int, len(mats))
	for i, mat := range mats {
		classes[i], _ = champ.Predict(mat)
	}

	run := func() (serve.ShadowStatus, online.GateResult) {
		ev, err := New(champ, Config{Seed: 20, QueueCap: 256, MinSamples: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.AddChallenger("strong", strong); err != nil {
			t.Fatal(err)
		}
		if err := ev.AddChallenger("mid", mid); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(mats); i += 16 {
					ev.Mirror(mats[i], classes[i])
				}
				ev.Status() // racing reads must not perturb anything
			}(g)
		}
		wg.Wait()
		for i, mat := range mats {
			if !ev.Label(mat, degs[i]) {
				t.Fatalf("label %d unmatched; queue sized to hold the whole episode", i)
			}
		}
		return ev.Status(), ev.Verdict()
	}

	st1, g1 := run()
	st2, g2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("same-seed scoreboards diverged:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(g1, g2) {
		t.Fatalf("same-seed verdicts diverged:\n%+v\n%+v", g1, g2)
	}
}

// TestServeMirrorTapAndEndpoint drives the full serving integration: traffic
// predicted over HTTP is mirrored and scoreable, /v1/shadow serves the
// scoreboard through the typed client, and a server without an evaluator
// answers with ErrNoShadow.
func TestServeMirrorTapAndEndpoint(t *testing.T) {
	ctx := context.Background()
	champ := trainedFramework(t, 30, 2)
	served, err := champ.Clone()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(champ, Config{Seed: 30, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddChallenger("c0", trainedFramework(t, 31, 4)); err != nil {
		t.Fatal(err)
	}

	s := serve.New(served, serve.Config{Shadow: ev})
	defer s.Shutdown(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := serve.NewClient(ts.URL)

	mats, degs := labeledStream(sim.NewRNG(32), 16)
	for _, mat := range mats {
		if _, err := c.Predict(ctx, mat); err != nil {
			t.Fatal(err)
		}
	}
	for i, mat := range mats {
		if !ev.Label(mat, degs[i]) {
			t.Fatalf("served request %d not joinable: the batcher mirrors before answering", i)
		}
	}

	st, err := c.ShadowStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mirrored != 16 || st.Labeled != 16 || st.Champion.Samples != 16 {
		t.Fatalf("shadow status over HTTP %+v", st)
	}
	if len(st.Challengers) != 1 || st.Challengers[0].Name != "c0" || st.Challengers[0].Samples != 16 {
		t.Fatalf("challenger row %+v", st.Challengers)
	}

	// No evaluator attached: typed 404.
	bare := serve.New(served, serve.Config{})
	defer bare.Shutdown(ctx)
	bareTS := httptest.NewServer(bare.Handler())
	defer bareTS.Close()
	if _, err := serve.NewClient(bareTS.URL).ShadowStatus(ctx); !errors.Is(err, serve.ErrNoShadow) {
		t.Fatalf("shadowless server = %v, want ErrNoShadow", err)
	}
}

// TestDropsNeverPerturbChampion is the hot-path isolation suite: a server
// whose shadow queue is one slot deep (almost every mirror drops) must
// answer 16 concurrent clients bit-identically to a shadowless server with
// the same weights. Run under -race.
func TestDropsNeverPerturbChampion(t *testing.T) {
	ctx := context.Background()
	champ := trainedFramework(t, 40, 3)
	fwA, err := champ.Clone()
	if err != nil {
		t.Fatal(err)
	}
	fwB, err := champ.Clone()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(champ, Config{QueueCap: 1}) // nobody drains: mirrors drop
	if err != nil {
		t.Fatal(err)
	}

	withShadow := serve.New(fwA, serve.Config{Shadow: ev})
	defer withShadow.Shutdown(ctx)
	tsA := httptest.NewServer(withShadow.Handler())
	defer tsA.Close()
	without := serve.New(fwB, serve.Config{})
	defer without.Shutdown(ctx)
	tsB := httptest.NewServer(without.Handler())
	defer tsB.Close()
	cA, cB := serve.NewClient(tsA.URL), serve.NewClient(tsB.URL)

	mats, _ := labeledStream(sim.NewRNG(41), 8)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				mat := mats[(g+i)%len(mats)]
				ra, err := cA.Predict(ctx, mat)
				if err != nil {
					errs <- err
					return
				}
				rb, err := cB.Predict(ctx, mat)
				if err != nil {
					errs <- err
					return
				}
				if ra.Class != rb.Class || len(ra.Probs) != len(rb.Probs) {
					errs <- fmt.Errorf("shadowed reply diverged: %+v vs %+v", ra, rb)
					return
				}
				for p := range ra.Probs {
					if math.Float64bits(ra.Probs[p]) != math.Float64bits(rb.Probs[p]) {
						errs <- fmt.Errorf("prob %d diverged: %x vs %x", p, ra.Probs[p], rb.Probs[p])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := ev.Status()
	if st.Dropped == 0 {
		t.Fatal("drop path never exercised; shrink the queue")
	}
	if st.Mirrored+st.Dropped != 16*8 {
		t.Fatalf("mirror accounting %d+%d, want %d offers", st.Mirrored, st.Dropped, 16*8)
	}
}
