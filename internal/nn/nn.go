// Package nn is a small from-scratch neural-network library: dense layers,
// ReLU, softmax cross-entropy, and the Adam optimizer — everything the
// paper's kernel-based classification model needs, with hand-written
// backpropagation and no external dependencies.
//
// Layers cache forward inputs on an internal stack, so a layer (or a whole
// Sequential) can be applied several times within one computation — exactly
// what the kernel-based model does when it applies the same shared network
// to each per-server vector — as long as Backward calls happen in reverse
// order of the Forwards.
package nn

import (
	"fmt"
	"math"

	"quanterference/internal/sim"
)

// Param couples a weight slice with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the output for x and caches what Backward needs.
	Forward(x []float64) []float64
	// Backward consumes the most recent cached forward state (LIFO),
	// accumulates parameter gradients, and returns dLoss/dx.
	Backward(dy []float64) []float64
	// Params exposes trainable parameters with their gradients.
	Params() []Param
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out int
	W, B    []float64
	GW, GB  []float64

	inputs [][]float64 // forward cache stack
}

// NewDense creates a dense layer with He-normal initialization.
func NewDense(in, out int, rng *sim.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		GW: make([]float64, in*out),
		GB: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, len(x)))
	}
	d.inputs = append(d.inputs, x)
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In : (o+1)*d.In]
		s := d.B[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(d.inputs) == 0 {
		panic("nn: dense backward without forward")
	}
	x := d.inputs[len(d.inputs)-1]
	d.inputs = d.inputs[:len(d.inputs)-1]
	dx := make([]float64, d.In)
	for o, g := range dy {
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.GW[o*d.In : (o+1)*d.In]
		d.GB[o] += g
		for i, xi := range x {
			grow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{W: d.W, G: d.GW}, {W: d.B, G: d.GB}}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	masks [][]bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	y := make([]float64, len(x))
	mask := make([]bool, len(x))
	for i, v := range x {
		if v > 0 {
			y[i] = v
			mask[i] = true
		}
	}
	r.masks = append(r.masks, mask)
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy []float64) []float64 {
	if len(r.masks) == 0 {
		panic("nn: relu backward without forward")
	}
	mask := r.masks[len(r.masks)-1]
	r.masks = r.masks[:len(r.masks)-1]
	dx := make([]float64, len(dy))
	for i, g := range dy {
		if mask[i] {
			dx[i] = g
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// MLP builds Dense+ReLU stacks with the given sizes; the final Dense has no
// activation. sizes must have at least two entries (input, output).
func MLP(rng *sim.RNG, sizes ...int) *Sequential {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewDense(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			layers = append(layers, &ReLU{})
		}
	}
	return NewSequential(layers...)
}

// Forward implements Layer.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(dy []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params implements Layer.
func (s *Sequential) Params() []Param {
	var out []Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Softmax returns the normalized class distribution for logits.
func Softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SoftmaxCE returns the cross-entropy loss for the true label, and the
// gradient with respect to the logits, optionally scaled by weight.
func SoftmaxCE(logits []float64, label int, weight float64) (float64, []float64) {
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("nn: label %d out of range %d", label, len(logits)))
	}
	probs := Softmax(logits)
	p := probs[label]
	if p < 1e-15 {
		p = 1e-15
	}
	loss := -math.Log(p) * weight
	grad := make([]float64, len(logits))
	for i, q := range probs {
		grad[i] = q * weight
	}
	grad[label] -= weight
	return loss, grad
}

// Adam is the Adam optimizer.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam creates an optimizer with standard defaults for unset fields.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to the parameters using their accumulated
// gradients multiplied by scale (e.g. 1/batchSize), then zeroes gradients.
func (a *Adam) Step(params []Param, scale float64) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.W))
			a.v[i] = make([]float64, len(p.W))
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.G[j] * scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			p.W[j] -= a.LR * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.Eps)
			p.G[j] = 0
		}
	}
}

// ZeroGrads clears accumulated gradients without an update.
func ZeroGrads(params []Param) {
	for _, p := range params {
		for j := range p.G {
			p.G[j] = 0
		}
	}
}
