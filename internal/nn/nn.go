// Package nn is a small from-scratch neural-network library: dense layers,
// ReLU, softmax cross-entropy, and the Adam optimizer — everything the
// paper's kernel-based classification model needs, with hand-written
// backpropagation and no external dependencies.
//
// Layers cache forward inputs on an internal stack, so a layer (or a whole
// Sequential) can be applied several times within one computation — exactly
// what the kernel-based model does when it applies the same shared network
// to each per-server vector — as long as Backward calls happen in reverse
// order of the Forwards.
//
// # Buffer reuse
//
// Layers recycle their forward-output and backward-gradient buffers through
// depth-indexed pools instead of allocating per call, which removes every
// per-sample allocation from the training hot loop. The contract callers get
// is exactly what the LIFO cache discipline already implies:
//
//   - A Forward result is valid until the Backward that consumes the same
//     stack depth has run and the layer is Forwarded at that depth again.
//   - A Backward result is valid until the layer's next Backward at the same
//     stack depth — in a training loop, until the next sample.
//
// Every model in internal/ml (kernel, flat, attention, regressor) satisfies
// this by construction. Buffer reuse changes no arithmetic: serial training
// produces bit-identical weights to the pre-pooling implementation.
//
// # Replicas
//
// Data-parallel training (internal/ml's TrainConfig.Workers) runs one model
// replica per gradient shard. Dense.Replica, ReLU.Replica, and
// Sequential.Replica return layers that share the trainable weight slices
// with the original but own private gradient accumulators, caches, and
// scratch pools, so replicas may run forward/backward concurrently as long
// as weights are only updated between batches.
package nn

import (
	"fmt"
	"math"

	"quanterference/internal/sim"
)

// Param couples a weight slice with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the output for x and caches what Backward needs.
	Forward(x []float64) []float64
	// Backward consumes the most recent cached forward state (LIFO),
	// accumulates parameter gradients, and returns dLoss/dx.
	Backward(dy []float64) []float64
	// Params exposes trainable parameters with their gradients.
	Params() []Param
}

// LayerReplicator is the extension hook for custom layers that support
// weight-sharing replicas; the built-in layers are handled directly by
// ReplicaLayer.
type LayerReplicator interface {
	// ReplicaLayer returns a layer sharing this layer's trainable weights
	// but owning private gradient accumulators and caches.
	ReplicaLayer() Layer
}

// ReplicaLayer returns a weight-sharing replica of any supported layer (the
// built-ins, or anything implementing LayerReplicator). It panics on layers
// that cannot be replicated.
func ReplicaLayer(l Layer) Layer {
	switch t := l.(type) {
	case *Dense:
		return t.Replica()
	case *ReLU:
		return t.Replica()
	case *Sequential:
		return t.Replica()
	}
	if r, ok := l.(LayerReplicator); ok {
		return r.ReplicaLayer()
	}
	panic(fmt.Sprintf("nn: layer %T does not support replicas", l))
}

// bufPool recycles float64 buffers by forward-stack depth: the buffer used
// at depth k is handed out again the next time the layer runs at depth k,
// which the LIFO cache discipline guarantees is after the previous consumer
// finished with it. Buffers come back with stale contents; callers must
// overwrite (or clear) them fully.
type bufPool struct {
	bufs [][]float64
}

func (p *bufPool) get(depth, n int) []float64 {
	for len(p.bufs) <= depth {
		p.bufs = append(p.bufs, nil)
	}
	b := p.bufs[depth]
	if cap(b) < n {
		b = make([]float64, n)
		p.bufs[depth] = b
	}
	return b[:n]
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out int
	W, B    []float64
	GW, GB  []float64

	inputs   [][]float64 // forward cache stack
	outs     bufPool     // forward output buffers, by stack depth
	dxs      bufPool     // backward input-gradient buffers, by stack depth
	inferOut []float64   // Infer's output buffer (no cache stack)
}

// NewDense creates a dense layer with He-normal initialization.
func NewDense(in, out int, rng *sim.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		GW: make([]float64, in*out),
		GB: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// Replica returns a Dense sharing W and B with d but owning fresh gradient
// accumulators, caches, and scratch buffers (see the package comment).
func (d *Dense) Replica() *Dense {
	return &Dense{
		In: d.In, Out: d.Out,
		W: d.W, B: d.B,
		GW: make([]float64, len(d.GW)),
		GB: make([]float64, len(d.GB)),
	}
}

// Forward implements Layer. The returned slice is pooled; see the package
// comment for its lifetime.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, len(x)))
	}
	y := d.outs.get(len(d.inputs), d.Out)
	d.inputs = append(d.inputs, x)
	d.apply(x, y)
	return y
}

// Infer computes exactly Forward's output but caches nothing, so no Backward
// pass is needed to pop state afterwards — that halves the cost of an
// inference-only evaluation. Both paths funnel through the same apply kernel,
// so their outputs are bit-identical. The returned slice is the layer's
// dedicated inference buffer, valid until its next Infer call.
func (d *Dense) Infer(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, len(x)))
	}
	if cap(d.inferOut) < d.Out {
		d.inferOut = make([]float64, d.Out)
	}
	y := d.inferOut[:d.Out]
	d.apply(x, y)
	return y
}

// apply writes Wx + b into y (shared by Forward and Infer).
func (d *Dense) apply(x, y []float64) {
	n := d.In
	x = x[:n] // pin the length so the inner loops need no bounds checks
	// Four output rows at a time: each accumulator still sums its products
	// in ascending-i order (so results are bit-identical to the row-at-a-time
	// loop), but the four dependency chains overlap instead of serializing on
	// FP-add latency.
	o := 0
	for ; o+3 < d.Out; o += 4 {
		// Two-step slicing makes each row's length provably n, so the inner
		// loop compiles without bounds checks.
		r0 := d.W[(o+0)*n:][:n]
		r1 := d.W[(o+1)*n:][:n]
		r2 := d.W[(o+2)*n:][:n]
		r3 := d.W[(o+3)*n:][:n]
		s0, s1, s2, s3 := d.B[o], d.B[o+1], d.B[o+2], d.B[o+3]
		for i := range x {
			xi := x[i]
			s0 += r0[i] * xi
			s1 += r1[i] * xi
			s2 += r2[i] * xi
			s3 += r3[i] * xi
		}
		y[o], y[o+1], y[o+2], y[o+3] = s0, s1, s2, s3
	}
	for ; o < d.Out; o++ {
		row := d.W[o*n : o*n+n]
		s := d.B[o]
		for i := range row {
			s += row[i] * x[i]
		}
		y[o] = s
	}
}

// Backward implements Layer. The returned slice is pooled; see the package
// comment for its lifetime.
func (d *Dense) Backward(dy []float64) []float64 {
	return d.backward(dy, true)
}

// BackwardNoDX is Backward for an input-adjacent layer: it accumulates
// parameter gradients and pops the cache but skips computing the gradient
// with respect to the input, which the caller is going to discard.
func (d *Dense) BackwardNoDX(dy []float64) {
	d.backward(dy, false)
}

func (d *Dense) backward(dy []float64, needDX bool) []float64 {
	if len(d.inputs) == 0 {
		panic("nn: dense backward without forward")
	}
	x := d.inputs[len(d.inputs)-1]
	d.inputs = d.inputs[:len(d.inputs)-1]
	n := d.In
	x = x[:n]
	// Both paths process four output rows per pass, like Forward. Gradient
	// elements are each touched once per call, and dx[i] accumulates its four
	// contributions as separate statements in ascending-o order, so blocking
	// changes no floating-point summation order.
	if !needDX {
		o := 0
		for ; o+3 < len(dy); o += 4 {
			g0, g1, g2, g3 := dy[o], dy[o+1], dy[o+2], dy[o+3]
			d.GB[o] += g0
			d.GB[o+1] += g1
			d.GB[o+2] += g2
			d.GB[o+3] += g3
			w0 := d.GW[(o+0)*n:][:n]
			w1 := d.GW[(o+1)*n:][:n]
			w2 := d.GW[(o+2)*n:][:n]
			w3 := d.GW[(o+3)*n:][:n]
			for i := range x {
				xi := x[i]
				w0[i] += g0 * xi
				w1[i] += g1 * xi
				w2[i] += g2 * xi
				w3[i] += g3 * xi
			}
		}
		for ; o < len(dy); o++ {
			g := dy[o]
			grow := d.GW[o*n : o*n+n]
			d.GB[o] += g
			for i := range grow {
				grow[i] += g * x[i]
			}
		}
		return nil
	}
	dx := d.dxs.get(len(d.inputs), n)[:n]
	clear(dx)
	o := 0
	for ; o+3 < len(dy); o += 4 {
		g0, g1, g2, g3 := dy[o], dy[o+1], dy[o+2], dy[o+3]
		d.GB[o] += g0
		d.GB[o+1] += g1
		d.GB[o+2] += g2
		d.GB[o+3] += g3
		r0 := d.W[(o+0)*n:][:n]
		r1 := d.W[(o+1)*n:][:n]
		r2 := d.W[(o+2)*n:][:n]
		r3 := d.W[(o+3)*n:][:n]
		w0 := d.GW[(o+0)*n:][:n]
		w1 := d.GW[(o+1)*n:][:n]
		w2 := d.GW[(o+2)*n:][:n]
		w3 := d.GW[(o+3)*n:][:n]
		for i := range x {
			xi := x[i]
			w0[i] += g0 * xi
			w1[i] += g1 * xi
			w2[i] += g2 * xi
			w3[i] += g3 * xi
			v := dx[i]
			v += g0 * r0[i]
			v += g1 * r1[i]
			v += g2 * r2[i]
			v += g3 * r3[i]
			dx[i] = v
		}
	}
	for ; o < len(dy); o++ {
		g := dy[o]
		row := d.W[o*n : o*n+n]
		grow := d.GW[o*n : o*n+n]
		d.GB[o] += g
		for i := range row {
			xi := x[i]
			grow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{W: d.W, G: d.GW}, {W: d.B, G: d.GB}}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	// cached forward outputs double as the mask: out[i] > 0 iff the unit
	// was active.
	cache    [][]float64
	outs     bufPool
	dxs      bufPool
	inferOut []float64 // Infer's output buffer (no cache stack)
}

// Replica returns a fresh ReLU (the activation has no weights to share).
func (r *ReLU) Replica() *ReLU { return &ReLU{} }

// Forward implements Layer. The returned slice is pooled; see the package
// comment for its lifetime.
func (r *ReLU) Forward(x []float64) []float64 {
	y := r.outs.get(len(r.cache), len(x))
	for i, v := range x {
		// Branchless: activation signs are data-dependent, so an if/else
		// here mispredicts constantly. max maps -0 to +0 like the branch
		// did; it differs only on NaN, which means training has already
		// diverged.
		y[i] = max(v, 0)
	}
	r.cache = append(r.cache, y)
	return y
}

// Infer is Forward without the cache push; see Dense.Infer for the contract.
func (r *ReLU) Infer(x []float64) []float64 {
	if cap(r.inferOut) < len(x) {
		r.inferOut = make([]float64, len(x))
	}
	y := r.inferOut[:len(x)]
	for i, v := range x {
		y[i] = max(v, 0) // same branchless clamp as Forward
	}
	return y
}

// Backward implements Layer. The returned slice is pooled; see the package
// comment for its lifetime.
func (r *ReLU) Backward(dy []float64) []float64 {
	if len(r.cache) == 0 {
		panic("nn: relu backward without forward")
	}
	y := r.cache[len(r.cache)-1]
	r.cache = r.cache[:len(r.cache)-1]
	dx := r.dxs.get(len(r.cache), len(dy))
	for i, g := range dy {
		// Forward clamps to +0, so y[i] is never negative or -0: the unit
		// was active iff y[i]'s bits are nonzero. b|-b has its sign bit set
		// exactly when b != 0, making the mask branchless (the branch form
		// mispredicts on data-dependent activation signs).
		b := math.Float64bits(y[i])
		m := uint64(int64(b|-b) >> 63)
		dx[i] = math.Float64frombits(math.Float64bits(g) & m)
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Replica returns a Sequential whose layers are weight-sharing replicas of
// s's layers (see the package comment).
func (s *Sequential) Replica() *Sequential {
	layers := make([]Layer, len(s.Layers))
	for i, l := range s.Layers {
		layers[i] = ReplicaLayer(l)
	}
	return &Sequential{Layers: layers}
}

// MLP builds Dense+ReLU stacks with the given sizes; the final Dense has no
// activation. sizes must have at least two entries (input, output).
func MLP(rng *sim.RNG, sizes ...int) *Sequential {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewDense(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			layers = append(layers, &ReLU{})
		}
	}
	return NewSequential(layers...)
}

// Forward implements Layer.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Inferer is a layer with an inference-only evaluation path: Infer must
// produce output bit-identical to Forward's without caching backward state.
// Dense, ReLU, and Sequential implement it; custom layers may opt in.
type Inferer interface {
	Infer(x []float64) []float64
}

// Infer runs the stack without caching backward state — the inference hot
// path of the online predictor. Outputs are bit-identical to Forward's (each
// built-in layer shares one compute kernel between the two paths), but no
// Backward/BackwardNoDX is needed afterwards, roughly halving the cost of an
// inference-only evaluation. Every layer must be a Dense, ReLU, Sequential,
// or Inferer; Infer panics otherwise. The returned slice is owned by the
// final layer and valid until that layer's next Infer call.
func (s *Sequential) Infer(x []float64) []float64 {
	for _, l := range s.Layers {
		switch t := l.(type) {
		case *Dense:
			x = t.Infer(x)
		case *ReLU:
			x = t.Infer(x)
		case *Sequential:
			x = t.Infer(x)
		case Inferer:
			x = t.Infer(x)
		default:
			panic(fmt.Sprintf("nn: layer %T does not support Infer", l))
		}
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(dy []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// BackwardNoDX is Backward for an input-adjacent stack: the gradient with
// respect to the stack's input is discarded, letting a first Dense layer
// skip computing it. Parameter gradients are identical to Backward's.
func (s *Sequential) BackwardNoDX(dy []float64) {
	for i := len(s.Layers) - 1; i >= 1; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	if d, ok := s.Layers[0].(*Dense); ok {
		d.BackwardNoDX(dy)
		return
	}
	s.Layers[0].Backward(dy)
}

// Params implements Layer.
func (s *Sequential) Params() []Param {
	var out []Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SoftmaxInto writes the normalized class distribution for logits into dst,
// which must have the same length as logits, and returns dst.
func SoftmaxInto(dst, logits []float64) []float64 {
	if len(dst) != len(logits) {
		panic(fmt.Sprintf("nn: softmax dst %d != logits %d", len(dst), len(logits)))
	}
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		dst[i] = math.Exp(v - maxv)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// Softmax returns the normalized class distribution for logits in a freshly
// allocated slice. Hot loops should hold a CEScratch (or call SoftmaxInto
// with a reused buffer) instead.
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(make([]float64, len(logits)), logits)
}

// CEScratch holds reusable buffers for softmax cross-entropy so the training
// hot loop allocates nothing per sample. The zero value is ready to use.
// A CEScratch must not be shared between goroutines; data-parallel training
// gives each model replica its own.
type CEScratch struct {
	probs []float64
	grad  []float64
}

// SoftmaxCE returns the cross-entropy loss for the true label and the
// gradient with respect to the logits, optionally scaled by weight. The
// returned gradient aliases the scratch and is valid until the next call.
func (s *CEScratch) SoftmaxCE(logits []float64, label int, weight float64) (float64, []float64) {
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("nn: label %d out of range %d", label, len(logits)))
	}
	if cap(s.probs) < len(logits) {
		s.probs = make([]float64, len(logits))
		s.grad = make([]float64, len(logits))
	}
	probs := SoftmaxInto(s.probs[:len(logits)], logits)
	p := probs[label]
	if p < 1e-15 {
		p = 1e-15
	}
	loss := -math.Log(p) * weight
	grad := s.grad[:len(logits)]
	for i, q := range probs {
		grad[i] = q * weight
	}
	grad[label] -= weight
	return loss, grad
}

// SoftmaxCE returns the cross-entropy loss for the true label, and the
// gradient with respect to the logits, optionally scaled by weight. Both
// returned values are freshly allocated; hot loops should use CEScratch.
func SoftmaxCE(logits []float64, label int, weight float64) (float64, []float64) {
	var s CEScratch
	return s.SoftmaxCE(logits, label, weight)
}

// Adam is the Adam optimizer.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam creates an optimizer with standard defaults for unset fields.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to the parameters using their accumulated
// gradients multiplied by scale (e.g. 1/batchSize), then zeroes gradients.
func (a *Adam) Step(params []Param, scale float64) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.W))
			a.v[i] = make([]float64, len(p.W))
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.G[j] * scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			p.W[j] -= a.LR * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.Eps)
			p.G[j] = 0
		}
	}
}

// ZeroGrads clears accumulated gradients without an update.
func ZeroGrads(params []Param) {
	for _, p := range params {
		clear(p.G)
	}
}

// AccumulateGrads adds src's gradient accumulators into dst's, pairwise.
// Parameter lists must be congruent (same layout), as produced by Replica.
// The addition order is fixed by the parameter layout, so a reduction built
// from AccumulateGrads calls in a deterministic sequence is bit-reproducible.
func AccumulateGrads(dst, src []Param) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: accumulate %d params into %d", len(src), len(dst)))
	}
	for i := range dst {
		dg, sg := dst[i].G, src[i].G
		if len(dg) != len(sg) {
			panic(fmt.Sprintf("nn: param %d size mismatch: %d vs %d", i, len(dg), len(sg)))
		}
		for j := range dg {
			dg[j] += sg[j]
		}
	}
}
