package nn

import (
	"math"
	"testing"

	"quanterference/internal/sim"
)

func TestDenseForwardShapeAndAffine(t *testing.T) {
	d := NewDense(2, 3, sim.NewRNG(1))
	// Set known weights: W = [[1,2],[3,4],[5,6]], b = [1,1,1].
	copy(d.W, []float64{1, 2, 3, 4, 5, 6})
	copy(d.B, []float64{1, 1, 1})
	y := d.Forward([]float64{1, -1})
	want := []float64{0, 0, 0}
	want[0] = 1*1 + 2*-1 + 1
	want[1] = 3*1 + 4*-1 + 1
	want[2] = 5*1 + 6*-1 + 1
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y=%v, want %v", y, want)
		}
	}
}

func TestDenseWrongInputPanics(t *testing.T) {
	d := NewDense(2, 1, sim.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Forward([]float64{1, 2, 3})
}

func snapshotGrads(params []Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.G...)
	}
	return out
}

// numericalGrad estimates dLoss/dw for a scalar loss function.
func numericalGrad(w *float64, loss func() float64) float64 {
	const h = 1e-6
	orig := *w
	*w = orig + h
	lp := loss()
	*w = orig - h
	lm := loss()
	*w = orig
	return (lp - lm) / (2 * h)
}

// TestGradCheckMLP verifies hand-written backprop against finite
// differences on a small MLP with softmax CE loss.
func TestGradCheckMLP(t *testing.T) {
	rng := sim.NewRNG(3)
	mlp := MLP(rng, 4, 5, 3)
	x := []float64{0.5, -1.2, 2.0, 0.1}
	label := 2
	lossFn := func() float64 {
		out := mlp.Forward(x)
		l, _ := SoftmaxCE(out, label, 1)
		// Drop the caches this evaluation pushed.
		_, _ = l, mlp.Backward(make([]float64, 3))
		ZeroGrads(mlp.Params())
		return l
	}
	// Analytic gradients, snapshotted before lossFn (which zeroes them).
	out := mlp.Forward(x)
	_, dlogits := SoftmaxCE(out, label, 1)
	mlp.Backward(dlogits)
	analyticGrads := snapshotGrads(mlp.Params())
	for pi, p := range mlp.Params() {
		for j := range p.W {
			analytic := analyticGrads[pi][j]
			numeric := numericalGrad(&p.W[j], lossFn)
			if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: analytic %g vs numeric %g", pi, j, analytic, numeric)
			}
		}
	}
}

// TestGradCheckSharedApplication verifies gradient accumulation when the
// same network is applied multiple times before backward (the kernel-model
// pattern): backward must run in reverse forward order.
func TestGradCheckSharedApplication(t *testing.T) {
	rng := sim.NewRNG(9)
	kernel := MLP(rng, 3, 4, 1)
	xs := [][]float64{{1, 0, -1}, {0.5, 2, 0}, {-2, 1, 1}}
	// Loss: sum of squares of the three kernel outputs.
	lossFn := func() float64 {
		var l float64
		for _, x := range xs {
			y := kernel.Forward(x)[0]
			l += y * y
		}
		for range xs {
			kernel.Backward([]float64{0})
		}
		ZeroGrads(kernel.Params())
		return l
	}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = kernel.Forward(x)[0]
	}
	for i := len(xs) - 1; i >= 0; i-- {
		kernel.Backward([]float64{2 * ys[i]})
	}
	analyticGrads := snapshotGrads(kernel.Params())
	for pi, p := range kernel.Params() {
		for j := range p.W {
			analytic := analyticGrads[pi][j]
			numeric := numericalGrad(&p.W[j], lossFn)
			if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("shared param %d[%d]: analytic %g vs numeric %g", pi, j, analytic, numeric)
			}
		}
	}
}

func TestReLUMasksNegatives(t *testing.T) {
	r := &ReLU{}
	y := r.Forward([]float64{-1, 0, 2})
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Fatalf("relu forward %v", y)
	}
	dx := r.Backward([]float64{5, 5, 5})
	if dx[0] != 0 || dx[1] != 0 || dx[2] != 5 {
		t.Fatalf("relu backward %v", dx)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatalf("prob out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum=%f", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("ordering: %v", p)
	}
	// Numerical stability with huge logits.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsInf(p[1], 0) {
		t.Fatalf("unstable softmax: %v", p)
	}
}

func TestSoftmaxCEGradientSigns(t *testing.T) {
	loss, grad := SoftmaxCE([]float64{0, 0}, 1, 1)
	if loss <= 0 {
		t.Fatalf("loss=%f", loss)
	}
	if grad[1] >= 0 || grad[0] <= 0 {
		t.Fatalf("gradient direction wrong: %v", grad)
	}
	// Weight scales both loss and grad.
	loss2, grad2 := SoftmaxCE([]float64{0, 0}, 1, 2)
	if math.Abs(loss2-2*loss) > 1e-12 || math.Abs(grad2[0]-2*grad[0]) > 1e-12 {
		t.Fatal("weight not applied")
	}
}

func TestAdamLearnsXOR(t *testing.T) {
	rng := sim.NewRNG(5)
	mlp := MLP(rng, 2, 8, 2)
	opt := NewAdam(0.01)
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	for epoch := 0; epoch < 500; epoch++ {
		for i, x := range data {
			out := mlp.Forward(x)
			_, dl := SoftmaxCE(out, labels[i], 1)
			mlp.Backward(dl)
		}
		opt.Step(mlp.Params(), 1.0/4)
	}
	for i, x := range data {
		out := mlp.Forward(x)
		pred := 0
		if out[1] > out[0] {
			pred = 1
		}
		mlp.Backward(make([]float64, 2)) // drain cache
		ZeroGrads(mlp.Params())
		if pred != labels[i] {
			t.Fatalf("XOR not learned at %v: logits %v", x, out)
		}
	}
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	d := NewDense(1, 1, sim.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Backward([]float64{1})
}

func TestMLPTooFewSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MLP(sim.NewRNG(1), 4)
}
