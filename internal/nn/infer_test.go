package nn

import (
	"math"
	"testing"

	"quanterference/internal/sim"
)

// TestInferMatchesForward asserts the bit-identity contract: for any MLP,
// Infer produces exactly Forward's output (same float bits), leaves no cached
// state behind, and keeps working when interleaved with training passes.
func TestInferMatchesForward(t *testing.T) {
	rng := sim.NewRNG(7)
	net := MLP(rng, 34, 32, 16, 1)
	in := sim.NewRNG(8)
	for iter := 0; iter < 50; iter++ {
		x := make([]float64, 34)
		for i := range x {
			x[i] = in.NormFloat64()
		}
		want := append([]float64(nil), net.Forward(x)...)
		net.BackwardNoDX([]float64{0}) // pop the forward cache
		ZeroGrads(net.Params())
		got := net.Infer(x)
		if len(got) != len(want) {
			t.Fatalf("iter %d: Infer len %d, Forward len %d", iter, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("iter %d out %d: Infer %v != Forward %v (bits differ)",
					iter, i, got[i], want[i])
			}
		}
	}
}

// TestInferLeavesNoCache verifies an Infer pass does not disturb the LIFO
// forward-cache discipline: a Forward/Backward cycle after Infer behaves as
// if the Infer never happened.
func TestInferLeavesNoCache(t *testing.T) {
	rng := sim.NewRNG(9)
	net := MLP(rng, 4, 8, 2)
	x := []float64{1, -2, 3, -4}
	net.Infer(x)
	// If Infer had pushed caches, this Forward/Backward pair would pop the
	// wrong entry or leave a stale one behind, and the second cycle would
	// panic or corrupt gradients.
	for i := 0; i < 2; i++ {
		net.Forward(x)
		net.BackwardNoDX([]float64{1, 1})
	}
	ZeroGrads(net.Params())
	// A lone Backward now must panic (empty cache) — proving Infer cached
	// nothing.
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after Infer-only pass did not panic; Infer left cached state")
		}
	}()
	net.Backward([]float64{1, 1})
}

// TestDenseInferBufferReuse pins the allocation contract: after the first
// call, Infer allocates nothing and returns the same backing buffer.
func TestDenseInferBufferReuse(t *testing.T) {
	d := NewDense(3, 5, sim.NewRNG(3))
	x := []float64{1, 2, 3}
	a := d.Infer(x)
	b := d.Infer(x)
	if &a[0] != &b[0] {
		t.Fatal("Infer reallocated its output buffer")
	}
	allocs := testing.AllocsPerRun(100, func() { d.Infer(x) })
	if allocs != 0 {
		t.Fatalf("Infer allocates %v per call, want 0", allocs)
	}
}
