package nn

import "fmt"

// SnapshotParams copies every parameter tensor's weights, in Params order,
// into freshly allocated slices. Together with RestoreParams it is the
// weight-level save/restore primitive behind model serialization
// (internal/ml's Snapshot/Restore) and warm-started retraining
// (internal/online): a snapshot taken between optimizer steps captures the
// exact bits, so restoring it reproduces the model's predictions identically.
// Gradient accumulators are not captured; they are transient within a batch.
func SnapshotParams(params []Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.W...)
	}
	return out
}

// RestoreParams copies a SnapshotParams result back into the parameter
// tensors. Shapes must match exactly: the tensor count and every tensor's
// length. Nothing is written on error, so a failed restore leaves the model
// untouched.
func RestoreParams(params []Param, weights [][]float64) error {
	if len(params) != len(weights) {
		return fmt.Errorf("nn: weight count %d, model has %d tensors", len(weights), len(params))
	}
	for i, p := range params {
		if len(p.W) != len(weights[i]) {
			return fmt.Errorf("nn: tensor %d has %d weights, snapshot has %d",
				i, len(p.W), len(weights[i]))
		}
	}
	for i, p := range params {
		copy(p.W, weights[i])
	}
	return nil
}
