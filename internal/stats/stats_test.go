package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSumMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Sum(xs), 40) {
		t.Fatalf("sum=%f", Sum(xs))
	}
	if !almost(Mean(xs), 5) {
		t.Fatalf("mean=%f", Mean(xs))
	}
	if !almost(Std(xs), 2) {
		t.Fatalf("std=%f", Std(xs))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Sum(nil) != 0 || Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input should give zeros")
	}
	if Std([]float64{42}) != 0 {
		t.Fatal("singleton std should be 0")
	}
}

func TestMovingAverageFlatSignal(t *testing.T) {
	xs := []float64{3, 3, 3, 3, 3}
	for i, v := range MovingAverage(xs, 3) {
		if !almost(v, 3) {
			t.Fatalf("flat signal changed at %d: %f", i, v)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	xs := []float64{0, 10, 0, 10, 0, 10}
	sm := MovingAverage(xs, 3)
	// Interior points become the local mean.
	if !almost(sm[2], 20.0/3) && !almost(sm[2], 10.0/3) {
		// window [10,0,10] -> 20/3
		t.Fatalf("smoothed[2]=%f", sm[2])
	}
	if MovingAverage(xs, 1)[1] != 10 {
		t.Fatal("width<2 must copy")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 1), 5) {
		t.Fatal("extremes wrong")
	}
	if !almost(Percentile(xs, 0.5), 3) {
		t.Fatalf("median=%f", Percentile(xs, 0.5))
	}
	if !almost(Percentile(xs, 0.25), 2) {
		t.Fatalf("q1=%f", Percentile(xs, 0.25))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatalf("geomean=%f", GeoMean([]float64{1, 4}))
	}
}

// Property: moving average preserves bounds and overall mean approximately.
func TestPropertyMovingAverageBounds(t *testing.T) {
	f := func(raw []uint8, width uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		for _, v := range MovingAverage(xs, int(width%9)) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		sort.Float64s(xs)
		last := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := Percentile(xs, p)
			if v < last-1e-9 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
