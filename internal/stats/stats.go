// Package stats provides the small set of summary statistics used by the
// monitors (per-window sum/mean/std over per-second samples) and the
// moving-window smoothing applied to Figure 1's per-operation latencies.
package stats

import "math"

// Sum returns the total of xs (0 for empty input).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the average of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Std returns the population standard deviation of xs (0 for fewer than two
// samples).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MovingAverage smooths xs with a centred window of the given width
// (clamped at the edges). Width < 2 returns a copy.
func MovingAverage(xs []float64, width int) []float64 {
	out := make([]float64, len(xs))
	if width < 2 {
		copy(out, xs)
		return out
	}
	half := width / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		out[i] = Mean(xs[lo:hi])
	}
	return out
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation. xs must be sorted ascending; empty input returns 0.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GeoMean returns the geometric mean of xs (which must all be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
