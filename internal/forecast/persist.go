package forecast

import (
	"encoding/json"
	"fmt"
	"os"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
)

// Format tags forecaster files so unrelated JSON is rejected with a
// descriptive error instead of being decoded into garbage weights —
// the forecaster sibling of core.FrameworkFormat.
const Format = "quanterference.forecaster"

// FormatVersion is bumped whenever the on-disk layout changes incompatibly.
// Version history:
//
//	1 — format/version header; history, threshold, bins, per-horizon heads.
const FormatVersion = 1

type headSpec struct {
	Horizon int             `json:"horizon"`
	Model   *ml.ModelSpec   `json:"model"`
	Scaler  *dataset.Scaler `json:"scaler"`
}

type forecasterSpec struct {
	Format     string     `json:"format"`
	Version    int        `json:"version"`
	History    int        `json:"history"`
	Threshold  int        `json:"threshold"`
	Thresholds []float64  `json:"thresholds"` // label.Bins
	Heads      []headSpec `json:"heads"`
}

// Save persists the forecaster (per-horizon weights, scalers, bins) as JSON
// so forecasting can run in a later process (quantserve -forecast).
func (f *Forecaster) Save(path string) error {
	spec := forecasterSpec{
		Format:     Format,
		Version:    FormatVersion,
		History:    f.History,
		Threshold:  f.Threshold,
		Thresholds: f.Bins.Thresholds,
	}
	for _, h := range f.Heads {
		ms, err := ml.Snapshot(h.Model)
		if err != nil {
			return err
		}
		spec.Heads = append(spec.Heads, headSpec{Horizon: h.Horizon, Model: ms, Scaler: h.Scaler})
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return json.NewEncoder(file).Encode(spec)
}

// Load restores a forecaster written by Save. Files without the format
// header or with a version this build does not read return an error
// wrapping ErrBadSpec.
func Load(path string) (*Forecaster, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var spec forecasterSpec
	if err := json.NewDecoder(file).Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSpec, path, err)
	}
	if spec.Format != Format {
		return nil, fmt.Errorf("%w: %s: format %q, want %q", ErrBadSpec, path, spec.Format, Format)
	}
	if spec.Version != FormatVersion {
		return nil, fmt.Errorf("%w: %s: format version %d, this build reads version %d",
			ErrBadSpec, path, spec.Version, FormatVersion)
	}
	if spec.History < 1 || len(spec.Heads) == 0 {
		return nil, fmt.Errorf("%w: %s: history %d with %d heads",
			ErrBadSpec, path, spec.History, len(spec.Heads))
	}
	f := &Forecaster{
		History:   spec.History,
		Threshold: spec.Threshold,
		Bins:      label.Bins{Thresholds: spec.Thresholds},
	}
	for _, hs := range spec.Heads {
		m, err := ml.Restore(hs.Model)
		if err != nil {
			return nil, err
		}
		f.Heads = append(f.Heads, &Head{Horizon: hs.Horizon, Model: m, Scaler: hs.Scaler})
	}
	return f, nil
}
