package forecast

import (
	"errors"
	"path/filepath"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.ApplyDefaults()
	if c.History != 4 || c.Threshold != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	if len(c.Horizons) != 3 || c.Horizons[0] != 1 || c.Horizons[1] != 2 || c.Horizons[2] != 4 {
		t.Fatalf("default horizons %v", c.Horizons)
	}

	c = Config{History: 2, Horizons: []int{4, 1, 4, 2, 1}, Threshold: 2}
	c.ApplyDefaults()
	if len(c.Horizons) != 3 || c.Horizons[0] != 1 || c.Horizons[1] != 2 || c.Horizons[2] != 4 {
		t.Fatalf("normalized horizons %v", c.Horizons)
	}
	if c.History != 2 || c.Threshold != 2 {
		t.Fatalf("explicit fields clobbered: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{
		{History: 0, Horizons: []int{1}},
		{History: 4, Horizons: []int{0}},
		{History: 4, Horizons: []int{-1, 2}},
		{History: 4, Horizons: []int{1}, Threshold: -1},
	} {
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %+v: err=%v, want ErrBadConfig", c, err)
		}
	}
	good := Config{History: 4, Horizons: []int{1, 2}, Threshold: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPool(t *testing.T) {
	mat := window.Matrix{
		{1, 10},
		{3, -2},
		{2, 4},
	}
	got := Pool(mat)
	want := []float64{2, 3, 4, 10} // f0: mean 2 max 3; f1: mean 4 max 10
	if len(got) != len(want) {
		t.Fatalf("pooled width %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled[%d]=%g, want %g (full %v)", i, got[i], want[i], got)
		}
	}
	names := PoolNames([]string{"iops", "lat"})
	wantNames := []string{"iops_mean", "iops_max", "lat_mean", "lat_max"}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Fatalf("names %v", names)
		}
	}
}

// windowDS builds a window-labeled dataset like CollectDatasetCtx's output:
// one run of n consecutive windows, 2 targets x 2 features, where window w's
// vectors encode w (so lag tests can check which window landed where) and the
// label is 1 iff w is in degraded.
func windowDS(n int, degraded map[int]bool) *dataset.Dataset {
	d := dataset.New([]string{"f0", "f1"}, 2, 2)
	d.Profile = "paper"
	for w := 0; w < n; w++ {
		lbl, deg := 0, 1.0
		if degraded[w] {
			lbl, deg = 1, 3.0
		}
		d.Add(&dataset.Sample{
			Workload: "ior", Run: "r0", Window: w,
			Degradation: deg, Label: lbl,
			Vectors: [][]float64{
				{float64(w), float64(w) * 10},
				{float64(w) + 1, float64(w) * 10},
			},
		})
	}
	return d
}

func TestBuildLaggedShapesAndLabels(t *testing.T) {
	ds := windowDS(8, map[int]bool{6: true})
	lag := BuildLagged(ds, 3, 2)

	// Origins need windows w-2..w and w+2: w in 2..5 -> 4 samples.
	if lag.Len() != 4 {
		t.Fatalf("lagged len %d, want 4", lag.Len())
	}
	if lag.NTargets != 3 || lag.Classes != 2 || lag.Profile != "paper" {
		t.Fatalf("schema %d targets %d classes profile %q", lag.NTargets, lag.Classes, lag.Profile)
	}
	if len(lag.FeatureNames) != 4 || lag.FeatureNames[0] != "f0_mean" {
		t.Fatalf("feature names %v", lag.FeatureNames)
	}

	for _, s := range lag.Samples {
		// Label comes from the lead window.
		wantLbl := 0
		if s.Window+2 == 6 {
			wantLbl = 1
		}
		if s.Label != wantLbl {
			t.Fatalf("origin %d label %d, want %d", s.Window, s.Label, wantLbl)
		}
		// Vectors are the pooled history oldest-first: row i is window
		// s.Window-2+i, whose f0 mean is that window index + 0.5.
		for i, vec := range s.Vectors {
			if want := float64(s.Window-2+i) + 0.5; vec[0] != want {
				t.Fatalf("origin %d row %d f0_mean=%g, want %g", s.Window, i, vec[0], want)
			}
		}
	}
}

func TestBuildLaggedGapBreaksStretch(t *testing.T) {
	ds := windowDS(8, nil)
	// Drop window 3 (as the collector's min-ops filter would).
	kept := ds.Samples[:0]
	for _, s := range ds.Samples {
		if s.Window != 3 {
			kept = append(kept, s)
		}
	}
	ds.Samples = kept

	lag := BuildLagged(ds, 3, 1)
	// Full data would give origins 2..6. Window 3 missing kills origins
	// 2 (lead missing path is fine but 3 is inside no origin's lead; it is a
	// history member of 3,4,5) and any origin needing it: 3,4,5 as history,
	// and origin 2 whose lead is 3. Survivor: origin 6 only.
	if lag.Len() != 1 || lag.Samples[0].Window != 6 {
		got := []int{}
		for _, s := range lag.Samples {
			got = append(got, s.Window)
		}
		t.Fatalf("surviving origins %v, want [6]", got)
	}
}

func TestBuildLaggedDeterministic(t *testing.T) {
	ds := windowDS(10, map[int]bool{4: true, 9: true})
	a, b := BuildLagged(ds, 4, 1), BuildLagged(ds, 4, 1)
	if a.Len() != b.Len() {
		t.Fatalf("lens differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Samples {
		if a.Samples[i].Window != b.Samples[i].Window {
			t.Fatal("same input, different sample order")
		}
	}
}

func TestBuildLaggedPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildLagged(windowDS(4, nil), 0, 1)
}

// testForecaster builds a small untrained forecaster directly: identity
// scalers and freshly seeded kernel heads over nFeat raw features.
func testForecaster(history, nFeat, classes int, horizons []int) *Forecaster {
	f := &Forecaster{History: history, Threshold: 1, Bins: label.BinaryBins()}
	for _, k := range horizons {
		scaler := &dataset.Scaler{
			Mean: make([]float64, 2*nFeat),
			Std:  make([]float64, 2*nFeat),
		}
		for j := range scaler.Std {
			scaler.Std[j] = 1
		}
		f.Heads = append(f.Heads, &Head{
			Horizon: k,
			Model: ml.NewKernelModel(ml.KernelConfig{
				NTargets: history, NFeat: 2 * nFeat, Classes: classes,
				Seed: 11 + int64(k),
			}),
			Scaler: scaler,
		})
	}
	return f
}

func histWindows(history, targets, nFeat int) []window.Matrix {
	hist := make([]window.Matrix, history)
	for i := range hist {
		mat := make(window.Matrix, targets)
		for t := range mat {
			row := make([]float64, nFeat)
			for j := range row {
				row[j] = float64(i*7+t*3+j) / 5
			}
			mat[t] = row
		}
		hist[i] = mat
	}
	return hist
}

func TestPredictValidatesHistory(t *testing.T) {
	f := testForecaster(3, 2, 2, []int{1, 2})
	if h, nf := f.Dims(); h != 3 || nf != 2 {
		t.Fatalf("Dims = %d,%d", h, nf)
	}

	if _, err := f.Predict(histWindows(2, 2, 2)); !errors.Is(err, ErrBadHistory) {
		t.Fatalf("short history: %v", err)
	}
	if _, err := f.Predict(histWindows(3, 2, 5)); !errors.Is(err, ErrBadHistory) {
		t.Fatalf("wide rows: %v", err)
	}
	bad := histWindows(3, 2, 2)
	bad[1] = window.Matrix{}
	if _, err := f.Predict(bad); !errors.Is(err, ErrBadHistory) {
		t.Fatalf("empty window: %v", err)
	}
}

func TestPredictShapeAndDeterminism(t *testing.T) {
	f := testForecaster(3, 2, 2, []int{1, 2, 4})
	hist := histWindows(3, 4, 2) // row count need not match training targets

	p1, err := f.Predict(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Horizons) != 3 || len(p1.Classes) != 3 || len(p1.Probs) != 3 {
		t.Fatalf("prediction shape %+v", p1)
	}
	for i, probs := range p1.Probs {
		if len(probs) != 2 {
			t.Fatalf("head %d probs %v", i, probs)
		}
		sum := probs[0] + probs[1]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("head %d probs do not sum to 1: %v", i, probs)
		}
	}
	// LeadWindows is the first (smallest) horizon whose class passes the
	// threshold, and 0 means "no degradation predicted".
	if p1.Degrading() {
		found := 0
		for i, c := range p1.Classes {
			if c >= f.Threshold {
				found = p1.Horizons[i]
				break
			}
		}
		if p1.LeadWindows != found {
			t.Fatalf("LeadWindows %d, first tripping horizon %d", p1.LeadWindows, found)
		}
	} else {
		for _, c := range p1.Classes {
			if c >= f.Threshold {
				t.Fatalf("class %d passes threshold but Degrading is false", c)
			}
		}
	}

	p2, err := f.Predict(hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Probs {
		for c := range p1.Probs[i] {
			if p1.Probs[i][c] != p2.Probs[i][c] {
				t.Fatal("same history, different probabilities")
			}
		}
	}
	if &p1.Probs[0][0] == &p2.Probs[0][0] {
		t.Fatal("predictions share prob storage")
	}
}

func TestTrackerWindowing(t *testing.T) {
	f := testForecaster(3, 2, 2, []int{1})
	tr := NewTracker(f)
	if tr.Ready() {
		t.Fatal("empty tracker ready")
	}
	mats := histWindows(5, 2, 2)
	for i, m := range mats {
		tr.Offer(m)
		if want := i >= 2; tr.Ready() != want {
			t.Fatalf("after %d offers Ready=%v", i+1, tr.Ready())
		}
	}
	// Tracker holds the last 3 windows: predictions must match a direct
	// Predict over mats[2:5].
	pt, err := tr.Predict()
	if err != nil {
		t.Fatal(err)
	}
	pd, err := f.Predict(mats[2:5])
	if err != nil {
		t.Fatal(err)
	}
	for i := range pt.Probs {
		for c := range pt.Probs[i] {
			if pt.Probs[i][c] != pd.Probs[i][c] {
				t.Fatal("tracker kept the wrong windows")
			}
		}
	}
	tr.Reset()
	if tr.Ready() {
		t.Fatal("ready after reset")
	}
}

func TestCloneIsIndependentAndWeightEqual(t *testing.T) {
	f := testForecaster(2, 2, 2, []int{1, 3})
	c, err := f.Clone()
	if err != nil {
		t.Fatal(err)
	}
	wf, wc := f.ExportWeights(), c.ExportWeights()
	if len(wf) == 0 || len(wf) != len(wc) {
		t.Fatalf("weight tensor counts %d vs %d", len(wf), len(wc))
	}
	for i := range wf {
		for j := range wf[i] {
			if wf[i][j] != wc[i][j] {
				t.Fatal("clone weights differ")
			}
		}
	}
	hist := histWindows(2, 2, 2)
	pf, _ := f.Predict(hist)
	pc, _ := c.Predict(hist)
	for i := range pf.Probs {
		for j := range pf.Probs[i] {
			if pf.Probs[i][j] != pc.Probs[i][j] {
				t.Fatal("clone predicts differently")
			}
		}
	}

	// Mutating the clone's scaler must not reach the original.
	c.Heads[0].Scaler.Mean[0] = 99
	if f.Heads[0].Scaler.Mean[0] == 99 {
		t.Fatal("clone shares scaler storage")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := testForecaster(3, 2, 2, []int{1, 2})
	path := filepath.Join(t.TempDir(), "forecaster.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.History != 3 || got.Threshold != 1 || len(got.Heads) != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if got.Bins.Classes() != 2 {
		t.Fatalf("bins lost: %v", got.Bins)
	}
	hist := histWindows(3, 2, 2)
	p1, err := f.Predict(hist)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := got.Predict(hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Probs {
		for c := range p1.Probs[i] {
			if p1.Probs[i][c] != p2.Probs[i][c] {
				t.Fatal("round trip changed predictions")
			}
		}
	}
}

func TestLoadRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()

	ds := windowDS(4, nil)
	dsPath := filepath.Join(dir, "ds.json")
	if err := ds.Save(dsPath); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dsPath); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("dataset file accepted as forecaster: %v", err)
	}

	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
