package forecast

import (
	"fmt"
	"math"

	"quanterference/internal/dataset"
	"quanterference/internal/monitor/window"
)

// Pool collapses one window matrix to its per-window summary row: for each
// feature, the mean and the max across targets. The mean matches how
// FitScaler and the drift detector pool targets; the max keeps the hottest
// server visible after aggregation (interference often saturates one OST
// before it moves the mean).
func Pool(mat window.Matrix) []float64 {
	return PoolInto(make([]float64, 2*len(mat[0])), mat)
}

// PoolInto is Pool writing into caller-owned scratch (len 2*features);
// returns dst.
func PoolInto(dst []float64, mat window.Matrix) []float64 {
	nf := len(mat[0])
	for j := 0; j < nf; j++ {
		sum, max := 0.0, math.Inf(-1)
		for _, row := range mat {
			x := row[j]
			sum += x
			if x > max {
				max = x
			}
		}
		dst[2*j] = sum / float64(len(mat))
		dst[2*j+1] = max
	}
	return dst
}

// PoolNames derives the pooled schema from the raw feature names, in
// PoolInto's layout: mean and max adjacent per feature.
func PoolNames(features []string) []string {
	out := make([]string, 0, 2*len(features))
	for _, f := range features {
		out = append(out, f+"_mean", f+"_max")
	}
	return out
}

// BuildLagged turns a window-labeled dataset (core.CollectDatasetCtx's
// output) into the lead-labeled lagged dataset one forecast head trains on:
// for every stretch of history consecutive windows within one (workload,
// run) whose window horizon steps past the stretch is also present, it emits
// one sample whose vectors are the history pooled window rows (oldest first,
// so the sequence reads forward) and whose label and degradation come from
// the future window. Windows dropped by the collector's min-ops filter break
// stretches rather than silently bridging a gap, so every emitted sample is
// a temporally honest "past H windows -> window +k" pair.
//
// Samples are emitted in the source dataset's order (keyed by the stretch's
// last window), so the builder is deterministic for a deterministic input.
func BuildLagged(ds *dataset.Dataset, history, horizon int) *dataset.Dataset {
	if history < 1 || horizon < 1 {
		panic(fmt.Sprintf("forecast: bad lag shape history=%d horizon=%d", history, horizon))
	}
	out := dataset.New(PoolNames(ds.FeatureNames), history, ds.Classes)
	out.Profile = ds.Profile

	type runKey struct{ workload, run string }
	byWindow := make(map[runKey]map[int]*dataset.Sample)
	for _, s := range ds.Samples {
		k := runKey{s.Workload, s.Run}
		if byWindow[k] == nil {
			byWindow[k] = make(map[int]*dataset.Sample)
		}
		byWindow[k][s.Window] = s
	}

	for _, s := range ds.Samples {
		run := byWindow[runKey{s.Workload, s.Run}]
		lead, ok := run[s.Window+horizon]
		if !ok {
			continue
		}
		vectors := make([][]float64, 0, history)
		for w := s.Window - history + 1; w <= s.Window; w++ {
			past, ok := run[w]
			if !ok {
				break
			}
			vectors = append(vectors, Pool(past.Vectors))
		}
		if len(vectors) != history {
			continue
		}
		out.Add(&dataset.Sample{
			Workload:    s.Workload,
			Run:         s.Run,
			Window:      s.Window, // forecast origin; the label is horizon ahead
			Degradation: lead.Degradation,
			Label:       lead.Label,
			Vectors:     vectors,
		})
	}
	return out
}
