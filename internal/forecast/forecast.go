// Package forecast turns the window stream the serving layer already
// watches into an early-warning signal: instead of classifying the current
// window's slowdown (core.Framework), a Forecaster reads the last History
// window matrices and predicts the slowdown class k windows ahead for every
// horizon k in its set, plus a time-to-degradation derived from those heads
// (the smallest horizon whose predicted class reaches the threshold).
//
// Each horizon is one Head: a standard ml kernel network whose input is the
// [History x pooled-features] matrix of per-window summaries — Pool
// collapses a raw [targets x features] window matrix to per-feature mean and
// max across targets, so the sequence positions play the role the per-server
// rows play in the classifier, and the shared kernel becomes a weight-shared
// temporal encoder. Reusing the ml stack means every head inherits Replica
// (data-parallel training), warm starts, ExportWeights, and CloneModel, so
// the continuous-learning loop can retrain and hot-promote forecasters
// exactly like frameworks.
//
// Determinism contract: BuildLagged emits samples in the source dataset's
// order, training is seeded, and Predict is pure arithmetic — same seed and
// same dataset produce bit-identical forecaster weights and predictions.
package forecast

import (
	"errors"
	"fmt"
	"sort"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
)

// Sentinel errors. Match with errors.Is.
var (
	// ErrBadConfig reports a Config whose shape cannot train (non-positive
	// history or horizons, negative threshold).
	ErrBadConfig = errors.New("forecast: invalid config")

	// ErrBadHistory reports a Predict call whose window history does not
	// match the forecaster: wrong window count, or rows whose feature width
	// differs from what the heads were trained on.
	ErrBadHistory = errors.New("forecast: window history does not match forecaster")

	// ErrBadSpec reports a forecaster file that is not in this build's
	// persistence format.
	ErrBadSpec = errors.New("forecast: unrecognized forecaster file")
)

// Config fixes a forecaster's temporal shape. The zero value is usable:
// every field defaults to the values the lead-time study ships with.
type Config struct {
	// History is how many consecutive windows the sequence head reads
	// (default 4).
	History int
	// Horizons are the lead distances predicted, in windows (default
	// 1, 2, 4). ApplyDefaults sorts ascending and deduplicates, so
	// Prediction.LeadWindows can scan heads in order.
	Horizons []int
	// Threshold is the first class that counts as "degrading" when deriving
	// time-to-degradation (default 1 — the paper's >=2x bin under binary
	// labels).
	Threshold int
}

// ApplyDefaults fills zero fields and normalizes Horizons (sorted,
// deduplicated).
func (c *Config) ApplyDefaults() {
	if c.History == 0 {
		c.History = 4
	}
	if len(c.Horizons) == 0 {
		c.Horizons = []int{1, 2, 4}
	}
	sort.Ints(c.Horizons)
	uniq := c.Horizons[:0]
	for _, k := range c.Horizons {
		if len(uniq) == 0 || uniq[len(uniq)-1] != k {
			uniq = append(uniq, k)
		}
	}
	c.Horizons = uniq
	if c.Threshold == 0 {
		c.Threshold = 1
	}
}

// Validate rejects shapes that cannot train, wrapping ErrBadConfig.
func (c *Config) Validate() error {
	if c.History < 1 {
		return fmt.Errorf("%w: history %d", ErrBadConfig, c.History)
	}
	for _, k := range c.Horizons {
		if k < 1 {
			return fmt.Errorf("%w: horizon %d (leads are >= 1 window)", ErrBadConfig, k)
		}
	}
	if c.Threshold < 0 {
		return fmt.Errorf("%w: negative threshold %d", ErrBadConfig, c.Threshold)
	}
	return nil
}

// Head is one horizon's model: a kernel network over the pooled
// [History x pooled-features] matrix, with the per-feature scaler fitted on
// that horizon's training split. All three fields must be populated — the
// zero value has no model to run.
type Head struct {
	Horizon int
	Model   ml.Model
	Scaler  *dataset.Scaler
}

// Forecaster is the trained sequence head: one Head per horizon (ascending),
// sharing the history length, degradation bins, and threshold. Like
// core.Framework, Predict reuses per-forecaster scratch and must not be
// called from multiple goroutines at once; internal/serve funnels it through
// a single batcher goroutine.
//
// The zero value is not usable — a Forecaster needs at least one fully
// populated Head. Build one with core.TrainForecasterCtx, restore one with
// Load, or (in tests) assemble the fields by hand. Predict is pure
// arithmetic over the head weights: the same Forecaster given the same
// history always returns an identical Prediction.
type Forecaster struct {
	History   int
	Threshold int
	Bins      label.Bins
	Heads     []*Head // ascending by Horizon

	pooled [][]float64 // raw pooled rows, one per history window
	scaled [][]float64 // per-head standardized view of pooled
}

// Prediction is one forecast: the predicted class and class distribution per
// horizon, plus the derived time-to-degradation.
type Prediction struct {
	// Horizons, Classes, and Probs are parallel: Classes[i] is the predicted
	// slowdown class Horizons[i] windows ahead, Probs[i] its distribution.
	Horizons []int
	Classes  []int
	Probs    [][]float64
	// LeadWindows is the forecast time-to-degradation: the smallest horizon
	// whose predicted class reaches the threshold, or 0 when no horizon
	// predicts degradation. It is a lower bound quantized to the horizon set
	// — a forecaster with horizons {1,2,4} reports 4 for anything it first
	// sees at its longest lead.
	LeadWindows int
}

// Degrading reports whether any horizon predicts a class at or past the
// threshold. The zero-value Prediction (LeadWindows 0) reports false — "no
// degradation in sight" is the zero state.
func (p *Prediction) Degrading() bool { return p.LeadWindows > 0 }

// Horizons returns the ascending horizon set, one per head.
func (f *Forecaster) Horizons() []int {
	ks := make([]int, len(f.Heads))
	for i, h := range f.Heads {
		ks[i] = h.Horizon
	}
	return ks
}

// Classes returns the per-horizon class count.
func (f *Forecaster) Classes() int {
	if _, _, cls, ok := ml.Dims(f.Heads[0].Model); ok {
		return cls
	}
	return f.Bins.Classes()
}

// Dims reports the raw input shape Predict expects: History window matrices
// whose rows are nFeat features wide (any row count per window — pooling
// collapses the target dimension).
func (f *Forecaster) Dims() (history, nFeat int) {
	return f.History, len(f.Heads[0].Scaler.Mean) / 2
}

// Predict forecasts from the last History window matrices, oldest first.
// The returned Prediction is freshly allocated and the caller's to keep.
func (f *Forecaster) Predict(history []window.Matrix) (*Prediction, error) {
	if len(history) != f.History {
		return nil, fmt.Errorf("%w: %d windows, need %d", ErrBadHistory, len(history), f.History)
	}
	_, nFeat := f.Dims()
	if f.pooled == nil {
		f.pooled = make([][]float64, f.History)
		f.scaled = make([][]float64, f.History)
		for i := range f.pooled {
			f.pooled[i] = make([]float64, 2*nFeat)
			f.scaled[i] = make([]float64, 2*nFeat)
		}
	}
	for i, mat := range history {
		if len(mat) == 0 {
			return nil, fmt.Errorf("%w: window %d is empty", ErrBadHistory, i)
		}
		for _, row := range mat {
			if len(row) != nFeat {
				return nil, fmt.Errorf("%w: window %d row has %d features, trained on %d",
					ErrBadHistory, i, len(row), nFeat)
			}
		}
		PoolInto(f.pooled[i], mat)
	}

	classes := f.Classes()
	p := &Prediction{
		Horizons: make([]int, len(f.Heads)),
		Classes:  make([]int, len(f.Heads)),
		Probs:    make([][]float64, len(f.Heads)),
	}
	for h, head := range f.Heads {
		for i, row := range f.pooled {
			dst := f.scaled[i]
			for j := range row {
				dst[j] = (row[j] - head.Scaler.Mean[j]) / head.Scaler.Std[j]
			}
		}
		probs := make([]float64, classes)
		if bp, ok := head.Model.(ml.BatchPredictor); ok {
			bp.ProbsInto(probs, f.scaled)
		} else {
			copy(probs, head.Model.Probs(f.scaled))
		}
		class := 0
		for c := range probs {
			if probs[c] > probs[class] {
				class = c
			}
		}
		p.Horizons[h] = head.Horizon
		p.Classes[h] = class
		p.Probs[h] = probs
		if p.LeadWindows == 0 && class >= f.Threshold {
			p.LeadWindows = head.Horizon
		}
	}
	return p, nil
}

// Clone returns an independent deep copy — weight-equal heads with private
// scratch — so one forecaster can serve while another copy is evaluated or
// retrained, mirroring core.Framework.Clone.
func (f *Forecaster) Clone() (*Forecaster, error) {
	out := &Forecaster{
		History:   f.History,
		Threshold: f.Threshold,
		Bins:      label.Bins{Thresholds: append([]float64(nil), f.Bins.Thresholds...)},
	}
	for _, h := range f.Heads {
		m, err := ml.CloneModel(h.Model)
		if err != nil {
			return nil, err
		}
		out.Heads = append(out.Heads, &Head{
			Horizon: h.Horizon,
			Model:   m,
			Scaler: &dataset.Scaler{
				Mean: append([]float64(nil), h.Scaler.Mean...),
				Std:  append([]float64(nil), h.Scaler.Std...),
			},
		})
	}
	return out, nil
}

// ExportWeights snapshots every head's weight tensors bit-exactly, heads in
// horizon order — what the determinism tests compare across same-seed runs.
func (f *Forecaster) ExportWeights() [][]float64 {
	var out [][]float64
	for _, h := range f.Heads {
		out = append(out, ml.ExportWeights(h.Model)...)
	}
	return out
}

// Tracker feeds a live window stream into a Forecaster: it keeps the last
// History matrices (shared read-only with the caller, like the online
// loop's reservoir) and predicts once warm. Single-goroutine, like the
// Forecaster it drives.
type Tracker struct {
	f    *Forecaster
	hist []window.Matrix
}

// NewTracker builds an empty tracker over f.
func NewTracker(f *Forecaster) *Tracker {
	return &Tracker{f: f, hist: make([]window.Matrix, 0, f.History)}
}

// Offer appends one live window, evicting the oldest once History is held.
func (t *Tracker) Offer(mat window.Matrix) {
	if len(t.hist) == t.f.History {
		copy(t.hist, t.hist[1:])
		t.hist = t.hist[:len(t.hist)-1]
	}
	t.hist = append(t.hist, mat)
}

// Ready reports whether a full history has been observed.
func (t *Tracker) Ready() bool { return len(t.hist) == t.f.History }

// Predict forecasts from the tracked history; call only once Ready (before
// that the partial history fails the forecaster's shape check with
// ErrBadHistory).
func (t *Tracker) Predict() (*Prediction, error) { return t.f.Predict(t.hist) }

// Reset drops the tracked history (e.g. when the stream restarts).
func (t *Tracker) Reset() { t.hist = t.hist[:0] }
