package lustre

import (
	"testing"
	"testing/quick"

	"quanterference/internal/sim"
)

func newTestOST(t *testing.T) (*sim.Engine, *OST) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := &Config{}
	cfg.applyDefaults()
	oss := &OSS{Node: "oss", Threads: sim.NewResource(eng, 4)}
	return eng, newOST(eng, cfg, 0, oss, 7)
}

// cloneRuns copies mapRange's scratch-backed result so a test can hold it
// across a subsequent mapRange call.
func cloneRuns(rs []run) []run { return append([]run(nil), rs...) }

func TestMapRangeSequentialIsContiguous(t *testing.T) {
	_, o := newTestOST(t)
	a := cloneRuns(o.mapRange(1, 0, 100))
	b := o.mapRange(1, 100, 100)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("runs a=%v b=%v", a, b)
	}
	if a[0].sector+a[0].length != b[0].sector {
		t.Fatalf("sequential logical ranges not physically adjacent: %v %v", a, b)
	}
	// The object should hold a single merged extent now.
	if n := len(o.object(1).extents); n != 1 {
		t.Fatalf("extents=%d, want merged 1", n)
	}
}

func TestMapRangeOverwriteReusesSectors(t *testing.T) {
	_, o := newTestOST(t)
	first := cloneRuns(o.mapRange(1, 0, 64))
	again := o.mapRange(1, 0, 64)
	if first[0] != again[0] {
		t.Fatalf("overwrite moved data: %v vs %v", first, again)
	}
}

func TestMapRangeInterleavedObjectsFragment(t *testing.T) {
	_, o := newTestOST(t)
	a1 := cloneRuns(o.mapRange(1, 0, 64))
	b1 := cloneRuns(o.mapRange(2, 0, 64))
	a2 := o.mapRange(1, 64, 64)
	// Object 1's second chunk cannot be adjacent to its first: object 2
	// allocated in between (the fragmentation mechanism behind the
	// mdt-hard-write interference row).
	if a1[0].sector+a1[0].length == a2[0].sector {
		t.Fatal("interleaved allocation should fragment")
	}
	if b1[0].sector != a1[0].sector+a1[0].length {
		t.Fatalf("allocation not append-ordered: %v after %v", b1, a1)
	}
}

func TestMapRangePartialOverlap(t *testing.T) {
	_, o := newTestOST(t)
	o.mapRange(1, 0, 100)
	runs := o.mapRange(1, 50, 100) // 50 allocated + 50 hole
	if len(runs) != 2 {
		t.Fatalf("runs=%v", runs)
	}
	if runs[0].length != 50 || runs[1].length != 50 {
		t.Fatalf("split wrong: %v", runs)
	}
}

// Property: for any sequence of ranges over a handful of objects, mapRange
// returns runs covering exactly the requested length, stable translations
// for repeated queries, and no two objects share physical sectors.
func TestPropertyMapRangeInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		_, o := newTestOST(t)
		type q struct {
			obj      uint64
			start, n int64
		}
		var queries []q
		for _, raw := range ops {
			queries = append(queries, q{
				obj:   uint64(raw%3) + 1,
				start: int64(raw/3) % 500,
				n:     int64(raw%97) + 1,
			})
		}
		// ownership tracks which object owns each physical sector.
		owner := map[int64]uint64{}
		for _, qu := range queries {
			runs := cloneRuns(o.mapRange(qu.obj, qu.start, qu.n))
			var covered int64
			for _, r := range runs {
				if r.length <= 0 {
					return false
				}
				covered += r.length
				for s := r.sector; s < r.sector+r.length; s++ {
					if prev, ok := owner[s]; ok && prev != qu.obj {
						return false // cross-object aliasing
					}
					owner[s] = qu.obj
				}
			}
			if covered != qu.n {
				return false
			}
			// Repeat query must translate to the same physical bytes
			// (segmentation may differ once extents merge).
			if !sameCoverage(runs, o.mapRange(qu.obj, qu.start, qu.n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: extents stay sorted, non-overlapping, and physically in-bounds.
func TestPropertyExtentListWellFormed(t *testing.T) {
	f := func(ops []uint16) bool {
		_, o := newTestOST(t)
		for _, raw := range ops {
			o.mapRange(uint64(raw%2)+1, int64(raw)%1000, int64(raw%61)+1)
		}
		for id := uint64(1); id <= 2; id++ {
			exts := o.object(id).extents
			for i, e := range exts {
				if e.length <= 0 || e.sector < 0 || e.sector+e.length > o.nextSector {
					return false
				}
				if i > 0 {
					prev := exts[i-1]
					if prev.logOff+prev.length > e.logOff {
						return false // overlap or disorder
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// sameCoverage reports whether two run lists describe the same physical
// sector sequence.
func sameCoverage(a, b []run) bool {
	flat := func(rs []run) []int64 {
		var out []int64
		for _, r := range rs {
			for s := r.sector; s < r.sector+r.length; s++ {
				out = append(out, s)
			}
		}
		return out
	}
	fa, fb := flat(a), flat(b)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

func TestWriteWaitersServedFIFO(t *testing.T) {
	eng, o := newTestOST(t)
	o.cfg.WritebackLimit = 1 << 20
	var order []int
	// Fill the cache, then queue three writes of different sizes.
	o.write(1, 0, 1<<20, func() {})
	o.write(1, 1<<20, 512<<10, func() { order = append(order, 0) }) // waits
	o.write(2, 0, 1024, func() { order = append(order, 1) })        // small, must still wait
	o.write(1, 2<<20, 256<<10, func() { order = append(order, 2) })
	if o.ThrottledWrites() != 3 {
		t.Fatalf("throttled=%d, want 3", o.ThrottledWrites())
	}
	eng.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
	if o.DirtyBytes() != 0 {
		t.Fatalf("dirty=%d after drain", o.DirtyBytes())
	}
}
