package lustre

import (
	"testing"

	"quanterference/internal/netsim"
	"quanterference/internal/sim"
)

func newFS(cfg Config) (*sim.Engine, *FS) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), cfg)
	return eng, fs
}

func TestTopologyAssembly(t *testing.T) {
	_, fs := newFS(Config{})
	if fs.NumOSTs() != 6 {
		t.Fatalf("OSTs=%d, want 6", fs.NumOSTs())
	}
	if fs.NumTargets() != 7 || fs.MDTIndex() != 6 {
		t.Fatalf("targets=%d mdt=%d", fs.NumTargets(), fs.MDTIndex())
	}
	if fs.TargetName(0) != "ost0" || fs.TargetName(6) != "mdt" {
		t.Fatalf("bad target names")
	}
	if len(fs.OSSs()) != 3 {
		t.Fatalf("OSSs=%d", len(fs.OSSs()))
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	eng, fs := newFS(Config{})
	c := fs.Client("c0")
	var phases []string
	c.Create("/f", 1, func(h *Handle) {
		phases = append(phases, "create")
		c.Write(h, 0, 1<<20, func() {
			phases = append(phases, "write")
			c.Read(h, 0, 1<<20, func() {
				phases = append(phases, "read")
				c.Close(h, func() { phases = append(phases, "close") })
			})
		})
	})
	eng.Run()
	want := []string{"create", "write", "read", "close"}
	if len(phases) != len(want) {
		t.Fatalf("phases %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases %v, want %v", phases, want)
		}
	}
	if got := fs.MDS().Lookup("/f"); got == nil || got.Size != 1<<20 {
		t.Fatalf("inode %+v", got)
	}
}

func TestStripingSpreadsAcrossOSTs(t *testing.T) {
	eng, fs := newFS(Config{})
	c := fs.Client("c0")
	var h *Handle
	c.Create("/striped", 6, func(hh *Handle) { h = hh })
	eng.Run()
	if len(h.Ino.OSTs) != 6 {
		t.Fatalf("stripe count %d, want 6", len(h.Ino.OSTs))
	}
	targets := h.Targets(0, 6<<20)
	if len(targets) != 6 {
		t.Fatalf("6 MiB over 6 stripes should hit 6 OSTs, got %v", targets)
	}
	// A single stripe-unit range hits exactly one OST.
	if got := h.Targets(0, 1<<20); len(got) != 1 {
		t.Fatalf("1 MiB range targets %v", got)
	}
	// Second unit goes to the next stripe.
	if a, b := h.Targets(0, 1)[0], h.Targets(1<<20, 1)[0]; a == b {
		t.Fatalf("consecutive units on same OST %d", a)
	}
}

func TestChunkOffsetsRAID0(t *testing.T) {
	_, fs := newFS(Config{})
	ino := fs.Populate("/r0", 8<<20, 2)
	h := &Handle{Ino: ino}
	// Units 0,2,4.. are on OSTs[0] at object offsets 0,1MiB,2MiB...
	chs := h.chunks(2<<20, 1<<20) // unit 2 -> stripe 0, object unit 1
	if len(chs) != 1 || chs[0].ost != ino.OSTs[0] || chs[0].objOff != 1<<20 {
		t.Fatalf("chunks %+v (osts %v)", chs, ino.OSTs)
	}
	// Unaligned range crossing a boundary splits.
	chs = h.chunks(1<<20-512, 1024)
	if len(chs) != 2 || chs[0].length != 512 || chs[1].length != 512 {
		t.Fatalf("boundary chunks %+v", chs)
	}
}

func TestRoundRobinOSTAssignment(t *testing.T) {
	eng, fs := newFS(Config{})
	c := fs.Client("c0")
	seen := map[int]int{}
	for i := 0; i < 12; i++ {
		path := string(rune('a'+i)) + "/f"
		c.Create(path, 1, func(h *Handle) { seen[h.Ino.OSTs[0]]++ })
	}
	eng.Run()
	for ost := 0; ost < 6; ost++ {
		if seen[ost] != 2 {
			t.Fatalf("round robin uneven: %v", seen)
		}
	}
}

func TestMetadataCacheHitVsMiss(t *testing.T) {
	eng, fs := newFS(Config{InodeCacheEntries: 4})
	c := fs.Client("c0")
	for i := 0; i < 8; i++ {
		fs.Populate(pathN(i), 4096, 1)
	}
	// Stat 8 files: all cold misses. Then stat #7 again: hit.
	var stats int
	var next func(i int)
	next = func(i int) {
		if i >= 9 {
			return
		}
		p := pathN(i % 8)
		if i == 8 {
			p = pathN(7)
		}
		c.Stat(p, func() { stats++; next(i + 1) })
	}
	next(0)
	eng.Run()
	ms := fs.MDS().Stats()
	if ms.CacheMisses != 8 || ms.CacheHits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/8", ms.CacheHits, ms.CacheMisses)
	}
}

func pathN(i int) string { return "/d/f" + string(rune('0'+i)) }

func TestUnlinkRemovesFromNamespace(t *testing.T) {
	eng, fs := newFS(Config{})
	fs.Populate("/gone", 4096, 1)
	c := fs.Client("c0")
	c.Unlink("/gone", func() {})
	eng.Run()
	if fs.MDS().Lookup("/gone") != nil {
		t.Fatal("unlink left the inode")
	}
}

func TestOpenMissingPanics(t *testing.T) {
	eng, fs := newFS(Config{})
	c := fs.Client("c0")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Open("/missing", func(*Handle) {})
	eng.Run()
}

func TestSequentialWriteThroughputDiskBound(t *testing.T) {
	// One client streaming 1 MiB writes: the 1 GB/s NIC is not the
	// bottleneck; observed throughput is the 150 MB/s disk drain plus the
	// write-back cache absorbing the first WritebackLimit bytes.
	eng, fs := newFS(Config{})
	c := fs.Client("c0")
	const total = 64 << 20
	var doneAt sim.Time
	c.Create("/big", 1, func(h *Handle) {
		var writeNext func(off int64)
		writeNext = func(off int64) {
			if off >= total {
				doneAt = eng.Now()
				return
			}
			c.Write(h, off, 1<<20, func() { writeNext(off + 1<<20) })
		}
		writeNext(0)
	})
	eng.Run()
	mbps := float64(total) / 1e6 / sim.ToSeconds(doneAt)
	if mbps < 130 || mbps > 260 {
		t.Fatalf("write throughput %.1f MB/s, want disk-bound ~150-210", mbps)
	}
}

func TestWritebackAbsorbsBurst(t *testing.T) {
	// A burst smaller than the write-back limit completes at NIC speed,
	// long before the disk finishes flushing.
	eng, fs := newFS(Config{WritebackLimit: 64 << 20})
	c := fs.Client("c0")
	var acceptedAt sim.Time
	c.Create("/burst", 1, func(h *Handle) {
		remaining := 16
		for i := 0; i < 16; i++ {
			c.Write(h, int64(i)<<20, 1<<20, func() {
				remaining--
				if remaining == 0 {
					acceptedAt = eng.Now()
				}
			})
		}
	})
	eng.Run()
	ostID := fs.MDS().Lookup("/burst").OSTs[0]
	if fs.OST(ostID).DirtyBytes() != 0 {
		t.Fatal("dirty data never flushed")
	}
	// 16 MiB at 125 MB/s NIC is ~0.13 s; acceptance should be close.
	if acceptedAt > sim.Seconds(0.3) {
		t.Fatalf("burst accepted at %.3fs, want <0.3s", sim.ToSeconds(acceptedAt))
	}
	if eng.Now() <= acceptedAt {
		t.Fatal("flush should continue after acceptance")
	}
}

func TestWriteThrottlingAtDirtyLimit(t *testing.T) {
	// With a tiny write-back limit, sustained writes must throttle.
	eng, fs := newFS(Config{WritebackLimit: 2 << 20})
	c := fs.Client("c0")
	c.Create("/throttle", 1, func(h *Handle) {
		for i := 0; i < 32; i++ {
			c.Write(h, int64(i)<<20, 1<<20, func() {})
		}
	})
	eng.Run()
	ostID := fs.MDS().Lookup("/throttle").OSTs[0]
	if fs.OST(ostID).ThrottledWrites() == 0 {
		t.Fatal("expected write throttling at the dirty limit")
	}
}

func TestReadVsWriteAsymmetry(t *testing.T) {
	// The paper's Table I asymmetry: background writes barely slow a
	// reader (duplex NIC + read-priority disk + write-back), while
	// background reads substantially slow a writer (cache drain starved).
	// Write-back limit small relative to the streamed size so sustained
	// writes must track the disk drain rate, as on a real system.
	cfg := Config{WritebackLimit: 8 << 20}
	soloRead := measureStream(t, cfg, false, nil)
	readVsWrites := measureStream(t, cfg, false, func(fs *FS, stop *bool) {
		hammerWrites(fs, "c1", 4, stop)
	})
	soloWrite := measureStream(t, cfg, true, nil)
	writeVsReads := measureStream(t, cfg, true, func(fs *FS, stop *bool) {
		hammerReads(fs, "c1", 4, stop)
	})
	readSlow := float64(readVsWrites) / float64(soloRead)
	writeSlow := float64(writeVsReads) / float64(soloWrite)
	t.Logf("read slowdown under writes: %.2fx; write slowdown under reads: %.2fx",
		readSlow, writeSlow)
	if writeSlow < 1.5 {
		t.Fatalf("writes should suffer under read interference, got %.2fx", writeSlow)
	}
	if readSlow > writeSlow {
		t.Fatalf("asymmetry inverted: reads %.2fx vs writes %.2fx", readSlow, writeSlow)
	}
}

// measureStream times a 32 MiB sequential stream on OST of file /target
// from c0, optionally with background interference.
func measureStream(t *testing.T, cfg Config, write bool, bg func(*FS, *bool)) sim.Time {
	t.Helper()
	eng, fs := newFS(cfg)
	c := fs.Client("c0")
	const total = 32 << 20
	fs.Populate("/target", total, 1)
	stop := false
	if bg != nil {
		bg(fs, &stop)
	}
	var start, end sim.Time
	c.Open("/target", func(h *Handle) {
		start = eng.Now()
		var next func(off int64)
		next = func(off int64) {
			if off >= total {
				end = eng.Now()
				stop = true
				return
			}
			op := c.Read
			if write {
				op = c.Write
			}
			op(h, off, 1<<20, func() { next(off + 1<<20) })
		}
		next(0)
	})
	eng.RunUntil(sim.Seconds(120))
	if end == 0 {
		t.Fatal("stream did not finish in 120 simulated seconds")
	}
	return end - start
}

// hammerWrites runs `streams` parallel sequential 1 MiB write loops against
// the target's OST from another node, mimicking one interference instance
// with several ranks.
func hammerWrites(fs *FS, node string, streams int, stop *bool) {
	c := fs.Client(node)
	target := fs.MDS().Lookup("/target")
	for s := 0; s < streams; s++ {
		ino := fs.Populate("/bgw"+string(rune('0'+s)), 1, 1)
		// Force the background file onto the same OST as the target.
		ino.OSTs = append([]int(nil), target.OSTs...)
		h := &Handle{c: c, Ino: ino}
		var next func(off int64)
		next = func(off int64) {
			if *stop {
				return
			}
			c.Write(h, off%(64<<20), 1<<20, func() { next(off + 1<<20) })
		}
		next(0)
	}
}

// hammerReads runs `streams` parallel sequential 1 MiB read loops against
// the target's OST from another node.
func hammerReads(fs *FS, node string, streams int, stop *bool) {
	c := fs.Client(node)
	target := fs.MDS().Lookup("/target")
	for s := 0; s < streams; s++ {
		ino := fs.Populate("/bgr"+string(rune('0'+s)), 64<<20, 1)
		ino.OSTs = append([]int(nil), target.OSTs...)
		h := &Handle{c: c, Ino: ino}
		var next func(off int64)
		next = func(off int64) {
			if *stop {
				return
			}
			c.Read(h, off%(64<<20), 1<<20, func() { next(off + 1<<20) })
		}
		next(0)
	}
}

func TestTwoReadersSlowEachOther(t *testing.T) {
	solo := measureStream(t, Config{}, false, nil)
	contended := measureStream(t, Config{}, false, func(fs *FS, stop *bool) {
		hammerReads(fs, "c1", 4, stop)
	})
	slow := float64(contended) / float64(solo)
	t.Logf("read-vs-read slowdown: %.2fx", slow)
	if slow < 2.5 {
		t.Fatalf("competing readers should slow each other, got %.2fx", slow)
	}
}

func TestMDSContention(t *testing.T) {
	// Time 200 stats alone vs with a metadata-hammering neighbour.
	run := func(withBG bool) sim.Time {
		eng, fs := newFS(Config{InodeCacheEntries: 64})
		for i := 0; i < 512; i++ {
			fs.Populate(pathN(i%8)+string(rune('A'+i/8)), 4096, 1)
		}
		stop := false
		if withBG {
			// Background: createa stream of new files (journal writes).
			c1 := fs.Client("c1")
			var loop func(i int)
			loop = func(i int) {
				if stop {
					return
				}
				c1.Create("/bgmeta/f"+string(rune('0'+i%10))+string(rune('a'+(i/10)%26))+string(rune('a'+i/260)), 1,
					func(*Handle) { loop(i + 1) })
			}
			loop(0)
		}
		c := fs.Client("c0")
		var start, end sim.Time
		start = 0
		var next func(i int)
		next = func(i int) {
			if i >= 200 {
				end = eng.Now()
				stop = true
				return
			}
			c.Stat(pathN(i%8)+string(rune('A'+(i*7)%64)), func() { next(i + 1) })
		}
		next(0)
		eng.RunUntil(sim.Seconds(300))
		if end == 0 {
			t.Fatal("stats did not finish")
		}
		return end - start
	}
	solo := run(false)
	contended := run(true)
	slow := float64(contended) / float64(solo)
	t.Logf("metadata slowdown under metadata interference: %.2fx", slow)
	if slow < 1.2 {
		t.Fatalf("MDS contention should slow stats, got %.2fx", slow)
	}
}

func TestPopulateThenReadNoAllocationSurprises(t *testing.T) {
	eng, fs := newFS(Config{})
	fs.Populate("/pre", 8<<20, 2)
	c := fs.Client("c2")
	doneOps := 0
	c.Open("/pre", func(h *Handle) {
		for i := 0; i < 8; i++ {
			c.Read(h, int64(i)<<20, 1<<20, func() { doneOps++ })
		}
	})
	eng.Run()
	if doneOps != 8 {
		t.Fatalf("reads completed %d/8", doneOps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() sim.Time {
		eng, fs := newFS(Config{Seed: 321})
		c := fs.Client("c0")
		c.Create("/d", 2, func(h *Handle) {
			var next func(off int64)
			next = func(off int64) {
				if off >= 8<<20 {
					return
				}
				c.Write(h, off, 1<<20, func() { next(off + 1<<20) })
			}
			next(0)
		})
		eng.Run()
		return eng.Now()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

func TestUnlinkDestroysOSTObjects(t *testing.T) {
	eng, fs := newFS(Config{})
	ino := fs.Populate("/victim", 4<<20, 2)
	for _, ostID := range ino.OSTs {
		if _, ok := fs.OST(ostID).objects[ino.ObjID]; !ok {
			t.Fatalf("object missing on ost%d before unlink", ostID)
		}
	}
	c := fs.Client("c0")
	c.Unlink("/victim", func() {})
	eng.Run()
	for _, ostID := range ino.OSTs {
		if _, ok := fs.OST(ostID).objects[ino.ObjID]; ok {
			t.Fatalf("object survived unlink on ost%d", ostID)
		}
	}
}

func TestFailSlowOSTVisibleInQueueMetrics(t *testing.T) {
	// A fail-slow OST must surface as inflated queue time on that target
	// only — what the server-side monitor (and hence the model) sees.
	run := func(inject bool) (healthyQT, slowQT sim.Time) {
		eng, fs := newFS(Config{})
		fs.Populate("/fs0", 16<<20, 1) // ost0
		fs.Populate("/fs1", 16<<20, 1) // ost1
		if inject {
			fs.InjectFailSlow(0, 8)
		}
		c := fs.Client("c0")
		read := func(path string) {
			c.Open(path, func(h *Handle) {
				var next func(off int64)
				next = func(off int64) {
					if off >= 16<<20 {
						return
					}
					c.Read(h, off, 1<<20, func() { next(off + 1<<20) })
				}
				next(0)
			})
		}
		read("/fs0")
		read("/fs1")
		eng.RunUntil(sim.Seconds(120))
		c0 := fs.OST(0).Queue().Counters()
		c1 := fs.OST(1).Queue().Counters()
		return c1.ReadTime, c0.ReadTime
	}
	healthyQT, slowQT := run(true)
	if slowQT < 4*healthyQT {
		t.Fatalf("fail-slow OST queue time %v not >> healthy %v", slowQT, healthyQT)
	}
}
