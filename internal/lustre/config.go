// Package lustre implements a discrete-event model of a Lustre-like parallel
// file system: a metadata server (MDS) with its metadata target (MDT), object
// storage servers (OSS) each holding object storage targets (OSTs), and
// clients that stripe file data across OSTs and issue RPCs over the shared
// network.
//
// The model reproduces the mechanisms behind the paper's observed
// interference patterns:
//
//   - competing streams on one OST turn sequential disk access into
//     seek-bound access (Table I, read-vs-read);
//   - OSS write-back caching with read-priority dispatch makes reads hurt
//     writes far more than writes hurt reads (Table I asymmetry);
//   - metadata-heavy workloads contend on MDS service threads, the MDT
//     journal, and the server inode cache (Table I, mdt rows/columns);
//   - all bulk data shares per-node NIC bandwidth max-min fairly.
package lustre

import (
	"quanterference/internal/disk"
	"quanterference/internal/sim"
)

// Config holds file-system-wide tunables. The zero value models the paper's
// testbed: Lustre 2.12 defaults on 7200 RPM SATA disks and 1 Gb/s Ethernet.
type Config struct {
	// Disk is the device model every storage target (each OST and the MDT)
	// is built on — the hardware-profile threading point for the storage
	// tier. The zero value is the paper's 1 TB 7200 RPM SATA drive; the
	// per-target Seed is always overridden with a seed derived from
	// Config.Seed so reseeding a scenario reseeds every device coherently.
	Disk disk.Config
	// StripeSize is the striping unit (default 1 MiB).
	StripeSize int64
	// DefaultStripeCount is the number of OSTs a new file is striped over
	// when Create does not override it (default 1, the Lustre default).
	DefaultStripeCount int
	// MaxRPCBytes caps the bulk payload of a single OST RPC
	// (default 1 MiB, matching max_pages_per_rpc).
	MaxRPCBytes int64
	// MaxRPCsInFlight limits concurrent RPCs per client per target
	// (default 8, matching max_rpcs_in_flight).
	MaxRPCsInFlight int
	// OSSThreads is the service-thread count per OSS (default 16).
	OSSThreads int
	// MDSThreads is the effective metadata-service parallelism (default 4,
	// matching the testbed MDS's physical cores — metadata handling is
	// CPU-bound, so cores, not Lustre's nominal thread count, set the
	// real concurrency).
	MDSThreads int
	// OSSOpCPU is the CPU time an OSS thread spends per bulk RPC
	// (default 50 µs).
	OSSOpCPU sim.Time
	// MDSOpCPU is the CPU time per metadata operation (default 200 µs).
	MDSOpCPU sim.Time
	// MDTJournalSectors is the journal write size per namespace-mutating
	// metadata op (default 8 sectors = 4 KiB).
	MDTJournalSectors int64
	// InodeCacheEntries sizes the MDS inode/dentry cache (default 4096).
	// Misses cost a random MDT read.
	InodeCacheEntries int
	// InodeReadSectors is the MDT read size on a cache miss (default 8).
	InodeReadSectors int64
	// WritebackLimit is the per-OST dirty-data cap in bytes (default
	// 16 MiB). Writes beyond it throttle to the disk drain rate. The
	// default is scaled to this package's scaled-down workloads the same
	// way real servers' dirty limits relate to real IO500 volumes
	// (roughly a tenth of what one benchmark phase writes).
	WritebackLimit int64
	// FlushBatch is how many dirty extents the flusher keeps outstanding
	// in the block queue (default 16), enabling merging.
	FlushBatch int
	// ReadAheadChunks is how many stripe-size chunks the client prefetches
	// ahead of a detected sequential read stream (default 4, standing in
	// for Lustre's max_read_ahead_mb; -1 disables). Readahead keeps
	// several RPCs in flight per stream, which is what makes competing
	// sequential readers saturate the disks.
	ReadAheadChunks int
	// CacheHitTime is the client-side cost of serving a read from already-
	// prefetched data (default 100 µs: page-cache copy + syscall).
	CacheHitTime sim.Time
	// ReqMsgBytes is the size of RPC request/response headers (default 1 KiB).
	ReqMsgBytes int64
	// RPCTimeout arms per-bulk-RPC timeouts on the clients (cf. Lustre's
	// obd_timeout): an RPC outstanding longer than this is abandoned and
	// resent after a backoff. 0 (the default) disables timeouts — the
	// healthy-cluster model — so it is typically set alongside fault
	// injection. Metadata RPCs are never resent (a replayed unlink or
	// create is not idempotent in this model).
	RPCTimeout sim.Time
	// RPCRetryLimit bounds resends per bulk RPC (default 4 when RPCTimeout
	// is set). The final attempt rides to completion without a timeout, so
	// operations always finish eventually.
	RPCRetryLimit int
	// RPCBackoffBase is the first retry delay (default 50 ms); attempt k
	// waits base*2^k plus a deterministic jitter in [0, base*2^k) drawn
	// from the client's seed-derived RNG.
	RPCBackoffBase sim.Time
	// Seed feeds all derived RNGs.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.StripeSize == 0 {
		c.StripeSize = 1 << 20
	}
	if c.DefaultStripeCount == 0 {
		c.DefaultStripeCount = 1
	}
	if c.MaxRPCBytes == 0 {
		c.MaxRPCBytes = 1 << 20
	}
	if c.MaxRPCsInFlight == 0 {
		c.MaxRPCsInFlight = 8
	}
	if c.OSSThreads == 0 {
		c.OSSThreads = 16
	}
	if c.MDSThreads == 0 {
		c.MDSThreads = 4
	}
	if c.OSSOpCPU == 0 {
		c.OSSOpCPU = 50 * sim.Microsecond
	}
	if c.MDSOpCPU == 0 {
		c.MDSOpCPU = 200 * sim.Microsecond
	}
	if c.MDTJournalSectors == 0 {
		c.MDTJournalSectors = 8
	}
	if c.InodeCacheEntries == 0 {
		c.InodeCacheEntries = 4096
	}
	if c.InodeReadSectors == 0 {
		c.InodeReadSectors = 8
	}
	if c.WritebackLimit == 0 {
		c.WritebackLimit = 16 << 20
	}
	if c.FlushBatch == 0 {
		c.FlushBatch = 16
	}
	if c.ReadAheadChunks == 0 {
		c.ReadAheadChunks = 4
	}
	if c.ReadAheadChunks < 0 {
		c.ReadAheadChunks = 0
	}
	if c.CacheHitTime == 0 {
		c.CacheHitTime = 100 * sim.Microsecond
	}
	if c.ReqMsgBytes == 0 {
		c.ReqMsgBytes = 1024
	}
	if c.RPCTimeout < 0 {
		c.RPCTimeout = 0
	}
	if c.RPCRetryLimit == 0 {
		c.RPCRetryLimit = 4
	}
	if c.RPCRetryLimit < 0 {
		c.RPCRetryLimit = 0
	}
	if c.RPCBackoffBase <= 0 {
		c.RPCBackoffBase = 50 * sim.Millisecond
	}
}

// OSSSpec describes one object storage server.
type OSSSpec struct {
	Node string // network node name
	OSTs int    // number of object storage targets on this server
}

// Topology describes the cluster layout. The paper's testbed is the zero
// value returned by PaperTopology.
type Topology struct {
	MDSNode string
	OSS     []OSSSpec
	Clients []string
	// NICBps is the per-direction NIC speed for nodes this FS registers
	// on the network (0 = the network's default).
	NICBps float64
}

// PaperNICBps is the testbed's "1 GB/s network interface" (§IV). Table I's
// 29-41x slowdowns require the rotational disks (~150 MB/s), not the NICs,
// to be the contended resource, so this is one gigabyte per second.
const PaperNICBps = 1e9

// PaperTopology returns the evaluation cluster from §IV: one MGS/MDS node,
// three OSS nodes with two OSTs each, and seven client nodes.
func PaperTopology() Topology {
	return Topology{
		MDSNode: "mds",
		OSS: []OSSSpec{
			{Node: "oss0", OSTs: 2},
			{Node: "oss1", OSTs: 2},
			{Node: "oss2", OSTs: 2},
		},
		Clients: []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6"},
		NICBps:  PaperNICBps,
	}
}
