package lustre

import (
	"fmt"
	"sort"

	"quanterference/internal/blockqueue"
	"quanterference/internal/disk"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// extent maps a run of an object's logical sectors to physical sectors.
type extent struct {
	logOff int64 // logical start, in sectors
	length int64 // in sectors
	sector int64 // physical start
}

// object is one file's stripe component on an OST.
type object struct {
	extents []extent // sorted by logOff, non-overlapping
}

// run is a physical disk range.
type run struct {
	sector int64
	length int64
}

// dirtyExtent is write-back data awaiting flush.
type dirtyExtent struct {
	run
	bytes int64 // original payload bytes accounted against the dirty limit
}

type writeWaiter struct {
	bytes    int64
	runs     []run
	done     func()
	enqueued sim.Time
}

// OSS is one object storage server: a network node, a service-thread pool,
// and its OSTs.
type OSS struct {
	Node    string
	Threads *sim.Resource
	OSTs    []*OST
}

// OST is one object storage target: a disk with its request queue, an object
// allocator, and a write-back cache.
type OST struct {
	ID  int
	OSS *OSS

	eng *sim.Engine
	cfg *Config
	q   *blockqueue.Queue

	objects    map[uint64]*object
	nextSector int64
	// runsBuf is mapRange's reusable scratch; see mapRange for the aliasing
	// contract.
	runsBuf []run

	dirtyBytes    int64
	dirtyExtents  []dirtyExtent
	flushInFlight int
	waiters       []writeWaiter
	// cachePressure divides the effective write-back limit (1 = nominal),
	// a fault-injected memory squeeze on the server.
	cachePressure float64

	// Cumulative stats for monitors and tests.
	writesAdmitted  uint64
	writesThrottled uint64

	// Observability handles; nil unless instrument attached a sink.
	sink        *obs.Sink
	name        string
	cAdmitted   *obs.Counter
	cThrottled  *obs.Counter
	cFlushes    *obs.Counter
	cFlushedSec *obs.Counter
	gDirtyMax   *obs.Gauge
	hThrottleNS *obs.Histogram
}

func newOST(eng *sim.Engine, cfg *Config, id int, oss *OSS, seed int64) *OST {
	dc := cfg.Disk
	dc.Seed = seed
	d := disk.New(eng, dc)
	q := blockqueue.New(eng, d, blockqueue.Config{
		Scheduler:    blockqueue.Elevator,
		ReadPriority: true,
		// Favour reads strongly: real servers absorb writes in RAM and
		// flush opportunistically, which is why the paper's readers are
		// barely affected by write interference (Table I row 1).
		WriteStarveLimit: 8,
	})
	return &OST{
		ID: id, OSS: oss, eng: eng, cfg: cfg, q: q,
		objects: make(map[uint64]*object),
	}
}

// instrument registers write-back cache metrics under the target name
// ("ost3") and instruments the block queue + disk below it: writes admitted
// vs throttled (cache full), flush operations and sectors, the dirty-bytes
// high-water mark, and how long throttled writes waited for cache space.
// Flushes become trace spans, making write-back drains visible next to the
// foreground requests that contend with them.
func (o *OST) instrument(s *obs.Sink, name string) {
	o.q.Instrument(s, name)
	o.sink = s
	o.name = name
	o.cAdmitted = s.Counter("ost", name, "writes_admitted")
	o.cThrottled = s.Counter("ost", name, "writes_throttled")
	o.cFlushes = s.Counter("ost", name, "flushes")
	o.cFlushedSec = s.Counter("ost", name, "flushed_sectors")
	o.gDirtyMax = s.Gauge("ost", name, "max_dirty_bytes")
	o.hThrottleNS = s.Histogram("ost", name, "throttle_wait_ns", obs.TimeBuckets())
}

// Queue exposes the request queue for the server-side monitor.
func (o *OST) Queue() *blockqueue.Queue { return o.q }

// StallUntil freezes the OST's block-layer dispatch until t — a brown-out
// window: RPCs keep arriving and writes keep landing in the cache, but no
// request reaches the media until the stall lifts.
func (o *OST) StallUntil(t sim.Time) { o.q.FreezeUntil(t) }

// SetCachePressure divides the effective write-back limit by factor
// (factor 1 restores the configured limit). Lowering the limit makes
// subsequent writes throttle earlier; raising it back wakes any writes the
// squeeze stranded.
func (o *OST) SetCachePressure(factor float64) {
	if factor < 1 {
		factor = 1
	}
	prev := o.cachePressure
	if prev == 0 {
		prev = 1
	}
	o.cachePressure = factor
	if factor < prev {
		o.wakeWaiters()
	}
}

// writebackLimit is the effective dirty-data cap under current pressure.
func (o *OST) writebackLimit() int64 {
	if o.cachePressure <= 1 {
		return o.cfg.WritebackLimit
	}
	lim := int64(float64(o.cfg.WritebackLimit) / o.cachePressure)
	if lim < 1 {
		lim = 1
	}
	return lim
}

// DirtyBytes reports the current write-back cache occupancy.
func (o *OST) DirtyBytes() int64 { return o.dirtyBytes }

// ThrottledWrites reports how many write RPCs had to wait for cache space.
func (o *OST) ThrottledWrites() uint64 { return o.writesThrottled }

func (o *OST) object(id uint64) *object {
	obj, ok := o.objects[id]
	if !ok {
		obj = &object{}
		o.objects[id] = obj
	}
	return obj
}

// mapRange translates an object's logical sector range to physical runs,
// allocating space for any holes. Allocation is append-style (like ldiskfs
// block allocation under streaming writes): consecutive logical extents of
// one object land physically adjacent, while interleaved objects fragment.
//
// The returned slice aliases the OST's scratch buffer: it is valid only
// until the next mapRange call on this OST. Callers that retain runs past
// the current event (the write-throttle path) must copy them.
func (o *OST) mapRange(objID uint64, startSec, nSec int64) []run {
	if nSec <= 0 {
		panic(fmt.Sprintf("lustre: empty range on ost %d", o.ID))
	}
	obj := o.object(objID)
	runs := o.runsBuf[:0]
	cur := startSec
	end := startSec + nSec
	for cur < end {
		// Last extent starting at or before cur.
		i := sort.Search(len(obj.extents), func(k int) bool {
			return obj.extents[k].logOff > cur
		}) - 1
		if i >= 0 {
			e := obj.extents[i]
			if cur < e.logOff+e.length {
				// Inside an allocated extent: in-place.
				n := e.logOff + e.length - cur
				if cur+n > end {
					n = end - cur
				}
				runs = append(runs, run{sector: e.sector + (cur - e.logOff), length: n})
				cur += n
				continue
			}
		}
		// Hole: allocate up to the next extent or range end.
		gapEnd := end
		if i+1 < len(obj.extents) && obj.extents[i+1].logOff < gapEnd {
			gapEnd = obj.extents[i+1].logOff
		}
		n := gapEnd - cur
		phys := o.nextSector
		o.nextSector += n
		// Merge with predecessor when logically and physically contiguous.
		if i >= 0 {
			e := &obj.extents[i]
			if e.logOff+e.length == cur && e.sector+e.length == phys {
				e.length += n
				runs = append(runs, run{sector: phys, length: n})
				cur += n
				continue
			}
		}
		obj.extents = append(obj.extents, extent{})
		copy(obj.extents[i+2:], obj.extents[i+1:])
		obj.extents[i+1] = extent{logOff: cur, length: n, sector: phys}
		runs = append(runs, run{sector: phys, length: n})
		cur += n
	}
	o.runsBuf = runs
	return runs
}

// sectorRange converts a byte range to (startSector, sectorCount).
func sectorRange(off, length int64) (int64, int64) {
	start := off / disk.SectorSize
	end := (off + length + disk.SectorSize - 1) / disk.SectorSize
	return start, end - start
}

// write lands payload bytes for an object range: admit into the write-back
// cache (throttling if full), then complete; flushing happens in the
// background with read priority at the block queue. Admission is FIFO: once
// any write is waiting for cache space, later writes — however small — queue
// behind it, which is what lets saturating bulk writers starve small-file
// writers (Table I, mdt-hard-write row).
func (o *OST) write(objID uint64, off, length int64, done func()) {
	startSec, nSec := sectorRange(off, length)
	runs := o.mapRange(objID, startSec, nSec)
	if len(o.waiters) > 0 ||
		(o.dirtyBytes > 0 && o.dirtyBytes+length > o.writebackLimit()) {
		o.writesThrottled++
		o.cThrottled.Inc()
		// The waiter outlives this event, so it needs its own copy of the
		// scratch-backed runs.
		o.waiters = append(o.waiters, writeWaiter{
			bytes: length, runs: append([]run(nil), runs...),
			done: done, enqueued: o.eng.Now()})
		return
	}
	o.admit(length, runs, done)
}

// admit does the unconditional cache bookkeeping; callers check space.
func (o *OST) admit(bytes int64, runs []run, done func()) {
	o.writesAdmitted++
	o.cAdmitted.Inc()
	o.dirtyBytes += bytes
	o.gDirtyMax.Max(float64(o.dirtyBytes))
	per := bytes / int64(len(runs)) // attribute payload evenly across runs
	rem := bytes - per*int64(len(runs))
	for i, r := range runs {
		b := per
		if i == 0 {
			b += rem
		}
		o.dirtyExtents = append(o.dirtyExtents, dirtyExtent{run: r, bytes: b})
	}
	o.scheduleFlush()
	done()
}

func (o *OST) scheduleFlush() {
	for o.flushInFlight < o.cfg.FlushBatch && len(o.dirtyExtents) > 0 {
		ext := o.dirtyExtents[0]
		o.dirtyExtents = o.dirtyExtents[1:]
		o.flushInFlight++
		o.cFlushes.Inc()
		o.cFlushedSec.Add(uint64(ext.length))
		start := o.eng.Now()
		o.q.Submit(disk.Write, ext.sector, ext.length, func() {
			o.flushInFlight--
			o.dirtyBytes -= ext.bytes
			o.sink.Span("ost", o.name, "flush", start, o.eng.Now()-start)
			o.wakeWaiters()
			o.scheduleFlush()
		})
	}
}

func (o *OST) wakeWaiters() {
	for len(o.waiters) > 0 {
		w := o.waiters[0]
		if o.dirtyBytes > 0 && o.dirtyBytes+w.bytes > o.writebackLimit() {
			return
		}
		o.waiters = o.waiters[1:]
		o.hThrottleNS.Observe(float64(o.eng.Now() - w.enqueued))
		o.admit(w.bytes, w.runs, w.done)
	}
}

// read fetches an object range from disk, completing when all runs arrive.
func (o *OST) read(objID uint64, off, length int64, done func()) {
	startSec, nSec := sectorRange(off, length)
	runs := o.mapRange(objID, startSec, nSec)
	remaining := len(runs)
	for _, r := range runs {
		o.q.Submit(disk.Read, r.sector, r.length, func() {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// populate lays out an object's range instantly (no simulated time), for
// pre-creating files that read-only workloads consume.
func (o *OST) populate(objID uint64, off, length int64) {
	startSec, nSec := sectorRange(off, length)
	o.mapRange(objID, startSec, nSec)
}
