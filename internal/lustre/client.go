package lustre

import (
	"fmt"

	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// Client is a compute node's Lustre client. All operations are asynchronous:
// the completion callback fires when the operation finishes in simulated
// time. A single Client may carry many application ranks; per-target RPC
// concurrency is limited like the real client's max_rpcs_in_flight.
type Client struct {
	Node string

	fs    *FS
	slots []*sim.Resource // one per target (OSTs then MDT)
	// bucket throttles bulk data when a QoS rule is set (see SetRateLimit).
	bucket *tokenBucket
	// rng draws the retry-backoff jitter; derived from the scenario seed
	// and the node name, so runs are exactly reproducible.
	rng *sim.RNG

	// Degraded-mode counters (see Retries/Timeouts/DegradedOps).
	retries     uint64
	timeouts    uint64
	degradedOps uint64

	// Readahead-efficiency counters (the Darshan-style client view);
	// nil unless instrument attached a sink.
	cRAHit      *obs.Counter
	cRAWait     *obs.Counter
	cRAMiss     *obs.Counter
	cRAPrefetch *obs.Counter
	cRetries    *obs.Counter
	cTimeouts   *obs.Counter
	cDegraded   *obs.Counter
}

// Handle is an open file with its layout cached client-side, plus the
// per-stream readahead state (cf. Lustre's per-file read-ahead windows).
type Handle struct {
	c   *Client
	Ino *Inode

	lastReadEnd int64
	seqStreak   int
	ra          map[int64]*raChunk // key: chunk start byte offset
}

// raChunk tracks one prefetched stripe-size chunk.
type raChunk struct {
	done    bool
	end     int64
	waiters []func()
}

func newClient(fs *FS, node string) *Client {
	var nodeMix int64
	for _, b := range node {
		nodeMix = nodeMix*131 + int64(b)
	}
	c := &Client{Node: node, fs: fs, rng: sim.NewRNG(fs.cfg.Seed ^ 0xc11e27 ^ nodeMix)}
	c.slots = make([]*sim.Resource, fs.NumTargets())
	for i := range c.slots {
		c.slots[i] = sim.NewResource(fs.Eng, fs.cfg.MaxRPCsInFlight)
	}
	return c
}

// Retries reports how many bulk RPCs this client resent after a timeout.
func (c *Client) Retries() uint64 { return c.retries }

// Timeouts reports how many bulk-RPC timeouts this client observed.
func (c *Client) Timeouts() uint64 { return c.timeouts }

// DegradedOps reports how many bulk RPCs needed at least one resend to
// complete — the client's degraded-mode counter.
func (c *Client) DegradedOps() uint64 { return c.degradedOps }

// instrument registers readahead-efficiency counters under the client's
// node name: reads fully served from prefetched data (hit), reads that had
// to wait on an in-flight prefetch (wait), reads that bypassed the window
// entirely (miss), and chunks prefetched.
func (c *Client) instrument(s *obs.Sink) {
	c.cRAHit = s.Counter("client", c.Node, "ra_hits")
	c.cRAWait = s.Counter("client", c.Node, "ra_waits")
	c.cRAMiss = s.Counter("client", c.Node, "ra_misses")
	c.cRAPrefetch = s.Counter("client", c.Node, "ra_prefetches")
	c.cRetries = s.Counter("client", c.Node, "retries")
	c.cTimeouts = s.Counter("client", c.Node, "timeouts")
	c.cDegraded = s.Counter("client", c.Node, "degraded_ops")
}

// metaRPC performs a metadata round trip to the MDS.
func (c *Client) metaRPC(op MetaOp, path string, stripeCount int, done func(*Inode)) {
	slot := c.slots[c.fs.MDTIndex()]
	slot.Acquire(func() {
		c.fs.Net.Transfer(c.Node, c.fs.mds.Node, c.fs.cfg.ReqMsgBytes, func() {
			c.fs.mds.handle(op, path, stripeCount, func(ino *Inode) {
				c.fs.Net.Transfer(c.fs.mds.Node, c.Node, c.fs.cfg.ReqMsgBytes, func() {
					slot.Release()
					done(ino)
				})
			})
		})
	})
}

// Create makes (or truncate-opens) a file with the given stripe count
// (0 = file-system default) and returns an open handle.
func (c *Client) Create(path string, stripeCount int, done func(*Handle)) {
	c.metaRPC(MetaCreate, path, stripeCount, func(ino *Inode) {
		done(&Handle{c: c, Ino: ino})
	})
}

// Open opens an existing file.
func (c *Client) Open(path string, done func(*Handle)) {
	c.metaRPC(MetaOpen, path, 0, func(ino *Inode) {
		done(&Handle{c: c, Ino: ino})
	})
}

// Stat fetches attributes of an existing path.
func (c *Client) Stat(path string, done func()) {
	c.metaRPC(MetaStat, path, 0, func(*Inode) { done() })
}

// Close closes a handle.
func (c *Client) Close(h *Handle, done func()) {
	c.metaRPC(MetaClose, h.Ino.Path, 0, func(*Inode) { done() })
}

// Unlink removes a file.
func (c *Client) Unlink(path string, done func()) {
	c.metaRPC(MetaUnlink, path, 0, func(*Inode) { done() })
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, done func()) {
	c.metaRPC(MetaMkdir, path, 0, func(*Inode) { done() })
}

// chunk is one per-OST piece of a striped byte range.
type chunk struct {
	ost    int   // OST id
	objOff int64 // object-local byte offset
	length int64
}

// chunks splits a file byte range into per-OST object ranges (RAID0).
func (h *Handle) chunks(off, length int64) []chunk {
	ino := h.Ino
	if ino.Dir {
		panic("lustre: data op on directory " + ino.Path)
	}
	if off < 0 || length <= 0 {
		panic(fmt.Sprintf("lustre: bad range off=%d len=%d", off, length))
	}
	ss := ino.StripeSize
	n := int64(len(ino.OSTs))
	var out []chunk
	cur := off
	end := off + length
	for cur < end {
		unit := cur / ss        // global stripe unit index
		within := cur - unit*ss // offset inside the unit
		take := ss - within
		if cur+take > end {
			take = end - cur
		}
		stripe := unit % n
		objUnit := unit / n // unit index within the object
		out = append(out, chunk{
			ost:    ino.OSTs[stripe],
			objOff: objUnit*ss + within,
			length: take,
		})
		cur += take
	}
	return out
}

// Targets returns the distinct OST ids a byte range touches, in stripe order.
func (h *Handle) Targets(off, length int64) []int {
	seen := make(map[int]bool)
	var out []int
	for _, ch := range h.chunks(off, length) {
		if !seen[ch.ost] {
			seen[ch.ost] = true
			out = append(out, ch.ost)
		}
	}
	return out
}

// dataOp runs all chunks of a striped range concurrently, bounded by
// per-target RPC slots, and fires done when the last chunk completes.
func (c *Client) dataOp(h *Handle, off, length int64, write bool, done func()) {
	chunks := h.chunks(off, length)
	remaining := len(chunks)
	complete := func() {
		remaining--
		if remaining == 0 {
			if write && off+length > h.Ino.Size {
				h.Ino.Size = off + length
			}
			done()
		}
	}
	for _, ch := range chunks {
		ch := ch
		// Split chunks larger than the RPC size cap.
		for sent := int64(0); sent < ch.length; {
			take := ch.length - sent
			if take > c.fs.cfg.MaxRPCBytes {
				take = c.fs.cfg.MaxRPCBytes
			}
			if sent > 0 {
				remaining++
			}
			c.rpc(h.Ino, ch.ost, ch.objOff+sent, take, write, complete)
			sent += take
		}
	}
}

// rpc performs one bulk RPC to an OST.
func (c *Client) rpc(ino *Inode, ostID int, objOff, length int64, write bool, done func()) {
	if c.bucket != nil {
		c.bucket.acquire(length, func() {
			c.rpcUnthrottled(ino, ostID, objOff, length, write, done)
		})
		return
	}
	c.rpcUnthrottled(ino, ostID, objOff, length, write, done)
}

// rpcUnthrottled resolves one bulk RPC, with timeout/retry when the file
// system arms RPCTimeout. Each attempt is a full send (sendRPC); an attempt
// outstanding past the timeout is abandoned — its eventual completion is
// ignored, like a reply to a resent XID — and the RPC is resent after a
// bounded exponential backoff with deterministic seed-derived jitter. The
// final attempt carries no timeout, so the op always completes: degraded
// mode slows clients down, it never wedges them.
func (c *Client) rpcUnthrottled(ino *Inode, ostID int, objOff, length int64, write bool, done func()) {
	if c.fs.cfg.RPCTimeout <= 0 {
		c.sendRPC(ino, ostID, objOff, length, write, done)
		return
	}
	c.sendAttempt(ino, ostID, objOff, length, write, done, 0)
}

func (c *Client) sendAttempt(ino *Inode, ostID int, objOff, length int64, write bool, done func(), attempt int) {
	fs := c.fs
	settled := false
	c.sendRPC(ino, ostID, objOff, length, write, func() {
		if settled {
			return // abandoned attempt: a later resend owns this op now
		}
		settled = true
		if attempt > 0 {
			c.degradedOps++
			c.cDegraded.Inc()
		}
		done()
	})
	if attempt >= fs.cfg.RPCRetryLimit {
		return // last attempt rides to completion
	}
	fs.Eng.Schedule(fs.cfg.RPCTimeout, func() {
		if settled {
			return
		}
		settled = true
		c.timeouts++
		c.cTimeouts.Inc()
		backoff := fs.cfg.RPCBackoffBase << uint(attempt)
		backoff += c.rng.Int63n(backoff) // deterministic jitter in [0, backoff)
		fs.Eng.Schedule(backoff, func() {
			c.retries++
			c.cRetries.Inc()
			c.sendAttempt(ino, ostID, objOff, length, write, done, attempt+1)
		})
	})
}

// sendRPC performs one attempt of a bulk RPC: slot, network, OSS thread,
// OST data path, reply.
func (c *Client) sendRPC(ino *Inode, ostID int, objOff, length int64, write bool, done func()) {
	fs := c.fs
	ost := fs.osts[ostID]
	slot := c.slots[ostID]
	hdr := fs.cfg.ReqMsgBytes
	slot.Acquire(func() {
		finish := func() {
			slot.Release()
			done()
		}
		if write {
			// Bulk data travels with the request; reply is a header.
			fs.Net.Transfer(c.Node, ost.OSS.Node, hdr+length, func() {
				ost.OSS.Threads.Acquire(func() {
					fs.Eng.Schedule(fs.cfg.OSSOpCPU, func() {
						ost.OSS.Threads.Release()
						ost.write(ino.ObjID, objOff, length, func() {
							fs.Net.Transfer(ost.OSS.Node, c.Node, hdr, finish)
						})
					})
				})
			})
			return
		}
		// Read: small request, bulk reply after the disk fetch.
		fs.Net.Transfer(c.Node, ost.OSS.Node, hdr, func() {
			ost.OSS.Threads.Acquire(func() {
				fs.Eng.Schedule(fs.cfg.OSSOpCPU, func() {
					ost.read(ino.ObjID, objOff, length, func() {
						ost.OSS.Threads.Release()
						fs.Net.Transfer(ost.OSS.Node, c.Node, hdr+length, finish)
					})
				})
			})
		})
	})
}

// Write stores length bytes at off, completing when the data is accepted by
// every target's write-back cache (throttled when caches are full). Writing
// through a handle drops its readahead cache.
func (c *Client) Write(h *Handle, off, length int64, done func()) {
	h.ra = nil
	c.dataOp(h, off, length, true, done)
}

// Read fetches length bytes at off. Sequential streams (each read starting
// where the previous ended) trigger readahead: the next ReadAheadChunks
// stripe-size chunks are fetched in the background, and reads covered by
// prefetched data complete as soon as the prefetch RPC lands. This is what
// keeps several RPCs in flight per sequential stream, as on a real client.
func (c *Client) Read(h *Handle, off, length int64, done func()) {
	raChunks := int64(c.fs.cfg.ReadAheadChunks)
	if raChunks == 0 {
		c.dataOp(h, off, length, false, done)
		return
	}
	if off == h.lastReadEnd {
		h.seqStreak++
	} else {
		h.seqStreak = 0
	}
	h.lastReadEnd = off + length
	// Readahead arms only after two back-to-back sequential reads (a
	// ramp-up, like the kernel's), so a single accidental match — e.g.
	// the first op of a strided pattern — doesn't prefetch megabytes.
	sequential := h.seqStreak >= 1 && off > 0 || h.seqStreak >= 2

	cs := h.Ino.StripeSize
	firstChunk := (off / cs) * cs
	lastChunk := ((off + length - 1) / cs) * cs

	// Served by the readahead window?
	covered := h.ra != nil
	if covered {
		for chunk := firstChunk; chunk <= lastChunk; chunk += cs {
			e, ok := h.ra[chunk]
			if !ok || e.end < min64ra(chunk+cs, off+length) {
				covered = false
				break
			}
		}
	}
	finish := func() {
		h.trimRA(off + length)
		done()
	}
	if covered {
		pending := 0
		onChunk := func() {
			pending--
			if pending == 0 {
				finish()
			}
		}
		for chunk := firstChunk; chunk <= lastChunk; chunk += cs {
			if e := h.ra[chunk]; !e.done {
				pending++
				e.waiters = append(e.waiters, onChunk)
			}
		}
		if pending == 0 {
			c.cRAHit.Inc()
			// Entirely cache-resident: page-cache copy cost only.
			c.fs.Eng.Schedule(c.fs.cfg.CacheHitTime, finish)
		} else {
			c.cRAWait.Inc()
		}
	} else {
		c.cRAMiss.Inc()
		c.dataOp(h, off, length, false, finish)
	}
	if sequential {
		h.extendRA(lastChunk+cs, raChunks)
	}
}

func min64ra(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// extendRA issues prefetch RPCs for up to n chunks starting at from.
func (h *Handle) extendRA(from, n int64) {
	cs := h.Ino.StripeSize
	if h.ra == nil {
		h.ra = make(map[int64]*raChunk)
	}
	for k := int64(0); k < n; k++ {
		chunk := from + k*cs
		if chunk >= h.Ino.Size {
			return
		}
		if _, ok := h.ra[chunk]; ok {
			continue
		}
		length := cs
		if chunk+length > h.Ino.Size {
			length = h.Ino.Size - chunk
		}
		e := &raChunk{end: chunk + length}
		h.ra[chunk] = e
		h.c.cRAPrefetch.Inc()
		h.c.dataOp(h, chunk, length, false, func() {
			e.done = true
			for _, w := range e.waiters {
				w()
			}
			e.waiters = nil
		})
	}
}

// trimRA drops fully consumed chunks behind the stream position.
func (h *Handle) trimRA(consumed int64) {
	for chunk, e := range h.ra {
		if e.done && e.end <= consumed {
			delete(h.ra, chunk)
		}
	}
}
