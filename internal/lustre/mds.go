package lustre

import (
	"container/list"
	"fmt"

	"quanterference/internal/blockqueue"
	"quanterference/internal/disk"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// MetaOp enumerates metadata operation kinds.
type MetaOp int

const (
	MetaCreate MetaOp = iota
	MetaOpen
	MetaStat
	MetaClose
	MetaUnlink
	MetaMkdir
)

var metaOpNames = [...]string{"create", "open", "stat", "close", "unlink", "mkdir"}

func (m MetaOp) String() string { return metaOpNames[m] }

// Inode is a file or directory record. Clients cache Inodes in Handles so
// data RPCs can be routed without re-consulting the MDS.
type Inode struct {
	Path       string
	Dir        bool
	Size       int64
	StripeSize int64
	OSTs       []int  // stripe order
	ObjID      uint64 // per-OST object key

	inodeSector int64
}

// MDSStats are cumulative metadata-server counters.
type MDSStats struct {
	Ops         uint64
	CacheHits   uint64
	CacheMisses uint64
	JournalOps  uint64
}

// MDS is the metadata server with its metadata target (MDT).
type MDS struct {
	Node    string
	Threads *sim.Resource

	eng *sim.Engine
	cfg *Config
	q   *blockqueue.Queue

	namespace map[string]*Inode
	lru       *list.List               // most-recent at front; values are paths
	lruIndex  map[string]*list.Element // path -> element

	journalLen  int64
	journalHead int64
	tableBase   int64
	tableLen    int64
	nextInode   int64
	nextObj     uint64
	nextOST     int

	nOSTs int
	stats MDSStats
	// cpuFactor multiplies the per-op CPU cost (1 = nominal), a
	// fault-injected metadata latency storm.
	cpuFactor float64
	// destroyObjects releases a removed file's OST objects (set by FS).
	destroyObjects func(*Inode)

	// Observability handles; nil unless instrument attached a sink.
	sink     *obs.Sink
	cHits    *obs.Counter
	cMisses  *obs.Counter
	cJournal *obs.Counter
	hOpNS    [len(metaOpNames)]*obs.Histogram
}

func newMDS(eng *sim.Engine, cfg *Config, node string, nOSTs int, seed int64) *MDS {
	dc := cfg.Disk
	dc.Seed = seed
	d := disk.New(eng, dc)
	q := blockqueue.New(eng, d, blockqueue.Config{
		Scheduler:    blockqueue.Elevator,
		ReadPriority: true,
	})
	const journalLen = 512 << 10 // 256 MiB of journal in sectors
	return &MDS{
		Node:       node,
		Threads:    sim.NewResource(eng, cfg.MDSThreads),
		eng:        eng,
		cfg:        cfg,
		q:          q,
		namespace:  make(map[string]*Inode),
		lru:        list.New(),
		lruIndex:   make(map[string]*list.Element),
		journalLen: journalLen,
		tableBase:  journalLen,
		tableLen:   (int64(1) << 31) - journalLen,
		nOSTs:      nOSTs,
		cpuFactor:  1,
	}
}

// instrument registers metadata-server metrics and instruments the MDT's
// block queue + disk: inode-cache hit/miss counters, journal-write counts,
// and one service-latency histogram per metadata op kind (arrival at the
// server through reply, including thread-pool queueing — the MDS op latency
// the paper's mdt rows contend on). Each op becomes a trace span.
func (m *MDS) instrument(s *obs.Sink) {
	m.q.Instrument(s, "mdt")
	m.sink = s
	m.cHits = s.Counter("mds", "mdt", "cache_hits")
	m.cMisses = s.Counter("mds", "mdt", "cache_misses")
	m.cJournal = s.Counter("mds", "mdt", "journal_ops")
	for op, name := range metaOpNames {
		m.hOpNS[op] = s.Histogram("mds", "mdt", name+"_ns", obs.TimeBuckets())
	}
}

// Queue exposes the MDT request queue for the server-side monitor.
func (m *MDS) Queue() *blockqueue.Queue { return m.q }

// Stats returns cumulative counters.
func (m *MDS) Stats() MDSStats { return m.stats }

// SetOpCPUFactor multiplies the per-op CPU cost by factor (>= 1; factor 1
// restores nominal) — a metadata latency storm: every op holds its service
// thread longer, so the thread pool saturates at a fraction of the healthy
// op rate.
func (m *MDS) SetOpCPUFactor(factor float64) {
	if factor < 1 {
		factor = 1
	}
	m.cpuFactor = factor
}

// Lookup returns the inode for path, or nil. It does not simulate any time;
// use Client metadata ops for timed access.
func (m *MDS) Lookup(path string) *Inode { return m.namespace[path] }

// cacheTouch marks path as recently used, evicting the LRU entry if the
// cache is over capacity. Returns whether the path was already cached.
func (m *MDS) cacheTouch(path string) bool {
	if el, ok := m.lruIndex[path]; ok {
		m.lru.MoveToFront(el)
		return true
	}
	m.lruIndex[path] = m.lru.PushFront(path)
	for m.lru.Len() > m.cfg.InodeCacheEntries {
		back := m.lru.Back()
		m.lru.Remove(back)
		delete(m.lruIndex, back.Value.(string))
	}
	return false
}

func (m *MDS) cacheDrop(path string) {
	if el, ok := m.lruIndex[path]; ok {
		m.lru.Remove(el)
		delete(m.lruIndex, path)
	}
}

// journalWrite appends to the (circular) journal; sequential by design.
func (m *MDS) journalWrite(done func()) {
	m.stats.JournalOps++
	m.cJournal.Inc()
	sectors := m.cfg.MDTJournalSectors
	if m.journalHead+sectors > m.journalLen {
		m.journalHead = 0
	}
	at := m.journalHead
	m.journalHead += sectors
	m.q.Submit(disk.Write, at, sectors, done)
}

// inodeRead fetches an inode record from the table (a cache miss).
func (m *MDS) inodeRead(ino *Inode, done func()) {
	m.stats.CacheMisses++
	m.cMisses.Inc()
	m.q.Submit(disk.Read, ino.inodeSector, m.cfg.InodeReadSectors, done)
}

// allocInode creates a namespace entry with a striped layout.
func (m *MDS) allocInode(path string, dir bool, stripeCount int) *Inode {
	if stripeCount <= 0 {
		stripeCount = m.cfg.DefaultStripeCount
	}
	if stripeCount > m.nOSTs {
		stripeCount = m.nOSTs
	}
	m.nextInode++
	m.nextObj++
	ino := &Inode{
		Path:       path,
		Dir:        dir,
		StripeSize: m.cfg.StripeSize,
		ObjID:      m.nextObj,
		inodeSector: m.tableBase +
			(m.nextInode*m.cfg.InodeReadSectors)%m.tableLen,
	}
	if !dir {
		ino.OSTs = make([]int, stripeCount)
		for i := 0; i < stripeCount; i++ {
			ino.OSTs[i] = (m.nextOST + i) % m.nOSTs
		}
		m.nextOST = (m.nextOST + 1) % m.nOSTs
	}
	m.namespace[path] = ino
	return ino
}

// handle services one metadata RPC after it has arrived at the server.
// reply receives the resulting inode (nil for unlink).
func (m *MDS) handle(op MetaOp, path string, stripeCount int, reply func(*Inode)) {
	arrival := m.eng.Now()
	m.Threads.Acquire(func() {
		m.stats.Ops++
		finish := func(ino *Inode) {
			latency := m.eng.Now() - arrival
			m.hOpNS[op].Observe(float64(latency))
			m.sink.Span("mds", "mdt", op.String(), arrival, latency)
			m.Threads.Release()
			reply(ino)
		}
		opCPU := m.cfg.MDSOpCPU
		if m.cpuFactor > 1 {
			opCPU = sim.Time(float64(opCPU) * m.cpuFactor)
		}
		m.eng.Schedule(opCPU, func() {
			switch op {
			case MetaCreate, MetaMkdir:
				ino, ok := m.namespace[path]
				if !ok {
					ino = m.allocInode(path, op == MetaMkdir, stripeCount)
				}
				m.cacheTouch(path)
				m.journalWrite(func() { finish(ino) })
			case MetaOpen, MetaStat:
				ino, ok := m.namespace[path]
				if !ok {
					panic(fmt.Sprintf("lustre: %s of missing path %q", op, path))
				}
				if m.cacheTouch(path) {
					m.stats.CacheHits++
					m.cHits.Inc()
					finish(ino)
					return
				}
				m.inodeRead(ino, func() { finish(ino) })
			case MetaClose:
				// Attribute updates are asynchronous in Lustre; CPU only.
				finish(m.namespace[path])
			case MetaUnlink:
				ino, ok := m.namespace[path]
				if !ok {
					panic(fmt.Sprintf("lustre: unlink of missing path %q", path))
				}
				delete(m.namespace, path)
				m.cacheDrop(path)
				if m.destroyObjects != nil && !ino.Dir {
					m.destroyObjects(ino)
				}
				m.journalWrite(func() { finish(nil) })
			default:
				panic("lustre: unknown metadata op")
			}
		})
	})
}
