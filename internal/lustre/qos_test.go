package lustre

import (
	"testing"
	"testing/quick"

	"quanterference/internal/netsim"
	"quanterference/internal/sim"
)

// writeStream writes total bytes in 1 MiB ops and returns the finish time.
func writeStream(eng *sim.Engine, c *Client, path string, total int64) sim.Time {
	var finished sim.Time
	c.Create(path, 1, func(h *Handle) {
		var next func(off int64)
		next = func(off int64) {
			if off >= total {
				finished = eng.Now()
				return
			}
			c.Write(h, off, 1<<20, func() { next(off + 1<<20) })
		}
		next(0)
	})
	eng.RunUntil(sim.Seconds(600))
	return finished
}

func TestRateLimitCapsThroughput(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{})
	c := fs.Client("c0")
	c.SetRateLimit(10e6) // 10 MB/s
	finished := writeStream(eng, c, "/limited", 32<<20)
	if finished == 0 {
		t.Fatal("stream never finished")
	}
	mbps := float64(32<<20) / 1e6 / sim.ToSeconds(finished)
	if mbps > 12 || mbps < 8 {
		t.Fatalf("throughput %.1f MB/s, want ~10", mbps)
	}
}

func TestRateLimitRemovalRestoresSpeed(t *testing.T) {
	run := func(throttleFirst bool) sim.Time {
		eng := sim.NewEngine()
		net := netsim.New(eng, netsim.Config{})
		fs := New(eng, net, PaperTopology(), Config{})
		c := fs.Client("c0")
		if throttleFirst {
			c.SetRateLimit(5e6)
			// Remove the limit at t=1s.
			eng.Schedule(sim.Second, func() { c.SetRateLimit(0) })
		}
		return writeStream(eng, c, "/f", 64<<20)
	}
	unthrottled := run(false)
	recovered := run(true)
	if recovered < unthrottled {
		t.Fatal("impossible: throttled run faster")
	}
	// ~1 s throttled at 5 MB/s, then full speed: should finish well under
	// a fully throttled run (64 MiB at 5 MB/s ≈ 13.4 s).
	if recovered > sim.Seconds(3) {
		t.Fatalf("limit removal did not restore speed: %.2fs", sim.ToSeconds(recovered))
	}
}

func TestMetadataUnaffectedByRateLimit(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{})
	c := fs.Client("c0")
	c.SetRateLimit(1) // 1 byte/s: data would be frozen
	done := 0
	var loop func(i int)
	loop = func(i int) {
		if i >= 20 {
			return
		}
		c.Create(pathQ(i), 1, func(h *Handle) {
			c.Close(h, func() { done++; loop(i + 1) })
		})
	}
	loop(0)
	eng.RunUntil(sim.Seconds(5))
	if done != 20 {
		t.Fatalf("metadata ops blocked by data rate limit: %d/20", done)
	}
}

func pathQ(i int) string { return "/qos/f" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestRateLimitedReporting(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{})
	c := fs.Client("c0")
	if c.RateLimited() {
		t.Fatal("fresh client reports limited")
	}
	c.SetRateLimit(1e6)
	if !c.RateLimited() {
		t.Fatal("limit not reported")
	}
	c.SetRateLimit(0)
	if c.RateLimited() {
		t.Fatal("limit removal not reported")
	}
	_ = eng
}

func TestBucketFIFOUnderPressure(t *testing.T) {
	eng := sim.NewEngine()
	b := newTokenBucket(eng)
	b.setRate(1e6) // 1 MB/s
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		b.acquire(2<<20, func() { order = append(order, i) })
	}
	eng.RunUntil(sim.Seconds(30))
	if len(order) != 5 {
		t.Fatalf("granted %d/5", len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("grant order %v", order)
		}
	}
}

// Property: long-term admitted throughput matches the configured rate for
// any request-size mix, including requests larger than the burst capacity.
func TestPropertyBucketRateConservation(t *testing.T) {
	f := func(sizes []uint16, rateRaw uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 30 {
			sizes = sizes[:30]
		}
		rate := float64(rateRaw%20+1) * 1e6
		eng := sim.NewEngine()
		b := newTokenBucket(eng)
		b.setRate(rate)
		var total, maxN int64
		var lastGrant sim.Time
		granted := 0
		for _, sz := range sizes {
			n := int64(sz)*1000 + 1
			total += n
			if n > maxN {
				maxN = n
			}
			b.acquire(n, func() { granted++; lastGrant = eng.Now() })
		}
		eng.RunUntil(sim.Seconds(3600))
		if granted != len(sizes) {
			return false // starvation
		}
		// The last grant must not come before the rate allows. Slack: one
		// burst (capacity) plus one request of borrowing debt (oversized
		// requests are granted at a full bucket and pay afterwards).
		earliest := (float64(total) - b.capacity - float64(maxN)) / rate
		if earliest > 0 && sim.ToSeconds(lastGrant) < earliest-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
