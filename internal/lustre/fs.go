package lustre

import (
	"fmt"

	"quanterference/internal/netsim"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// FS is the assembled parallel file system.
type FS struct {
	Eng *sim.Engine
	Net *netsim.Network

	cfg     Config
	topo    Topology
	mds     *MDS
	osss    []*OSS
	osts    []*OST
	clients map[string]*Client
}

// New builds the file system over the given network, registering every node
// that is not already present.
func New(eng *sim.Engine, net *netsim.Network, topo Topology, cfg Config) *FS {
	cfg.applyDefaults()
	if topo.MDSNode == "" || len(topo.OSS) == 0 || len(topo.Clients) == 0 {
		panic("lustre: incomplete topology")
	}
	fs := &FS{
		Eng:     eng,
		Net:     net,
		cfg:     cfg,
		topo:    topo,
		clients: make(map[string]*Client),
	}
	ensure := func(node string) {
		if !net.HasNode(node) {
			net.AddNode(node, topo.NICBps)
		}
	}
	ensure(topo.MDSNode)
	rng := sim.NewRNG(cfg.Seed ^ 0x10557)
	ostID := 0
	for _, spec := range topo.OSS {
		ensure(spec.Node)
		oss := &OSS{Node: spec.Node, Threads: sim.NewResource(eng, cfg.OSSThreads)}
		for i := 0; i < spec.OSTs; i++ {
			ost := newOST(eng, &fs.cfg, ostID, oss, rng.Derive(int64(ostID)).Int63n(1<<62))
			oss.OSTs = append(oss.OSTs, ost)
			fs.osts = append(fs.osts, ost)
			ostID++
		}
		fs.osss = append(fs.osss, oss)
	}
	fs.mds = newMDS(eng, &fs.cfg, topo.MDSNode, len(fs.osts), rng.Derive(9999).Int63n(1<<62))
	// Unlink destroys the file's OST objects (asynchronous in real Lustre;
	// modelled as immediate metadata cleanup — sectors are not reclaimed,
	// like deferred ldiskfs truncation).
	fs.mds.destroyObjects = func(ino *Inode) {
		for _, ostID := range ino.OSTs {
			delete(fs.osts[ostID].objects, ino.ObjID)
		}
	}
	for _, cn := range topo.Clients {
		ensure(cn)
		fs.clients[cn] = newClient(fs, cn)
	}
	return fs
}

// Instrument registers observability metrics for every server and client on
// the sink: per-OST write-back cache and block-layer/disk metrics, MDS op
// latency histograms and cache counters, and per-client readahead
// efficiency. Instances are named after TargetName ("ost0".."ostN", "mdt")
// and client node names. Attach the sink before running workloads; events
// prior to instrumentation are not counted.
func (fs *FS) Instrument(s *obs.Sink) {
	for i, o := range fs.osts {
		o.instrument(s, fs.TargetName(i))
	}
	fs.mds.instrument(s)
	for _, cn := range fs.topo.Clients {
		if c, ok := fs.clients[cn]; ok {
			c.instrument(s)
		}
	}
}

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Topology returns the cluster layout.
func (fs *FS) Topology() Topology { return fs.topo }

// Client returns the client on the named compute node.
func (fs *FS) Client(node string) *Client {
	c, ok := fs.clients[node]
	if !ok {
		panic(fmt.Sprintf("lustre: no client on node %q", node))
	}
	return c
}

// NumOSTs returns the object storage target count.
func (fs *FS) NumOSTs() int { return len(fs.osts) }

// NumTargets returns OST count + 1 (the MDT).
func (fs *FS) NumTargets() int { return len(fs.osts) + 1 }

// MDTIndex is the target index of the metadata target.
func (fs *FS) MDTIndex() int { return len(fs.osts) }

// TargetName renders a target index for logs: "ost3" or "mdt".
func (fs *FS) TargetName(i int) string {
	if i == fs.MDTIndex() {
		return "mdt"
	}
	return fmt.Sprintf("ost%d", i)
}

// OST returns the i-th object storage target.
func (fs *FS) OST(i int) *OST { return fs.osts[i] }

// OSSs returns the object storage servers.
func (fs *FS) OSSs() []*OSS { return fs.osss }

// MDS returns the metadata server.
func (fs *FS) MDS() *MDS { return fs.mds }

// Populate instantly creates a file of the given size with data laid out on
// its OSTs, consuming no simulated time. Use it to pre-create the files that
// read-only workloads consume, standing in for data written in prior runs.
func (fs *FS) Populate(path string, size int64, stripeCount int) *Inode {
	ino, ok := fs.mds.namespace[path]
	if !ok {
		ino = fs.mds.allocInode(path, false, stripeCount)
	}
	// A just-written file is warm in the MDS cache, exactly as if the
	// preceding (unsimulated) write phase had created it.
	fs.mds.cacheTouch(path)
	if size > ino.Size {
		ino.Size = size
	}
	if size > 0 {
		h := &Handle{Ino: ino}
		for _, ch := range h.chunks(0, size) {
			fs.osts[ch.ost].populate(ino.ObjID, ch.objOff, ch.length)
		}
	}
	return ino
}

// InjectFailSlow degrades (or, with factor 1, heals) one OST's disk: every
// request is served factor times slower — the fail-slow condition whose
// severity classes (Lu et al.) the paper's bins are modelled on.
func (fs *FS) InjectFailSlow(ostID int, factor float64) {
	fs.osts[ostID].Queue().Device().SetSlowdown(factor)
}

// PopulateDir instantly creates a directory entry.
func (fs *FS) PopulateDir(path string) *Inode {
	ino, ok := fs.mds.namespace[path]
	if !ok {
		ino = fs.mds.allocInode(path, true, 0)
	}
	return ino
}
