package lustre

import (
	"quanterference/internal/sim"
)

// tokenBucket is a byte-rate limiter for a client's bulk data path,
// modelling the effect of a Lustre NRS token-bucket-filter rule applied to
// one client NID (Qian et al., the paper's reference [13]).
//
// Acquire never blocks the caller; callbacks run once enough tokens accrue,
// FIFO. Changing the rate re-schedules pending waiters.
type tokenBucket struct {
	eng *sim.Engine

	rate     float64 // bytes/sec; <= 0 means unlimited
	capacity float64 // burst size in bytes
	tokens   float64
	last     sim.Time

	waiters []bucketWaiter
	timer   uint64 // generation tag for the pending wakeup
}

type bucketWaiter struct {
	bytes float64
	fn    func()
}

func newTokenBucket(eng *sim.Engine) *tokenBucket {
	return &tokenBucket{eng: eng}
}

// refill accrues tokens up to now.
func (b *tokenBucket) refill() {
	now := b.eng.Now()
	if b.rate > 0 {
		b.tokens += b.rate * sim.ToSeconds(now-b.last)
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
	}
	b.last = now
}

// setRate configures the limit (bytesPerSec <= 0 disables). The burst
// capacity is one tenth of a second of traffic, at least one request.
func (b *tokenBucket) setRate(bytesPerSec float64) {
	b.refill()
	b.rate = bytesPerSec
	b.capacity = bytesPerSec / 10
	if b.capacity < 1<<20 {
		b.capacity = 1 << 20
	}
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	if bytesPerSec <= 0 {
		b.drainAll()
		return
	}
	b.arm()
}

// limited reports whether a rate is in force.
func (b *tokenBucket) limited() bool { return b.rate > 0 }

// acquire runs fn once n bytes of tokens are available (immediately when
// unlimited).
func (b *tokenBucket) acquire(n int64, fn func()) {
	if !b.limited() && len(b.waiters) == 0 {
		fn()
		return
	}
	b.refill()
	if len(b.waiters) == 0 && b.tokens >= b.need(float64(n)) {
		b.tokens -= float64(n)
		fn()
		return
	}
	b.waiters = append(b.waiters, bucketWaiter{bytes: float64(n), fn: fn})
	b.arm()
}

// drainAll releases every waiter (rate removed).
func (b *tokenBucket) drainAll() {
	waiters := b.waiters
	b.waiters = nil
	for _, w := range waiters {
		w := w
		b.eng.Schedule(0, w.fn)
	}
}

// need is the token level required to grant a waiter: requests larger than
// the burst capacity borrow — they are granted at a full bucket and push
// the level negative, preserving the long-term rate.
func (b *tokenBucket) need(bytes float64) float64 {
	if bytes > b.capacity {
		return b.capacity
	}
	return bytes
}

// arm schedules the wakeup for the head waiter.
func (b *tokenBucket) arm() {
	if len(b.waiters) == 0 || b.rate <= 0 {
		return
	}
	b.timer++
	gen := b.timer
	deficit := b.need(b.waiters[0].bytes) - b.tokens
	delay := sim.Time(1)
	if deficit > 0 {
		delay = sim.Time(deficit / b.rate * float64(sim.Second))
		if delay < 1 {
			delay = 1
		}
	}
	b.eng.Schedule(delay, func() {
		if gen != b.timer {
			return
		}
		b.release()
	})
}

// release grants as many head waiters as tokens allow, then re-arms.
func (b *tokenBucket) release() {
	b.refill()
	for len(b.waiters) > 0 {
		if b.limited() && b.tokens < b.need(b.waiters[0].bytes) {
			break
		}
		w := b.waiters[0]
		b.waiters = b.waiters[1:]
		if b.limited() {
			b.tokens -= w.bytes
		}
		w.fn()
	}
	b.arm()
}

// SetRateLimit throttles this client's bulk data RPCs to bytesPerSec
// (<= 0 removes the limit). Metadata RPCs are unaffected, like an NRS-TBF
// rule scoped to the data service.
func (c *Client) SetRateLimit(bytesPerSec float64) {
	if c.bucket == nil {
		c.bucket = newTokenBucket(c.fs.Eng)
	}
	c.bucket.setRate(bytesPerSec)
}

// RateLimited reports whether a limit is currently in force.
func (c *Client) RateLimited() bool {
	return c.bucket != nil && c.bucket.limited()
}
