package lustre

import (
	"testing"

	"quanterference/internal/netsim"
	"quanterference/internal/sim"
)

// readSeq reads the file sequentially in 1 MiB ops with an optional think
// gap between them, returning per-op times and the completion timestamp.
func readSeq(eng *sim.Engine, c *Client, path string, total int64, gap sim.Time) ([]sim.Time, sim.Time) {
	var times []sim.Time
	var finished sim.Time
	c.Open(path, func(h *Handle) {
		var next func(off int64)
		next = func(off int64) {
			if off >= total {
				finished = eng.Now()
				return
			}
			start := eng.Now()
			c.Read(h, off, 1<<20, func() {
				times = append(times, eng.Now()-start)
				if gap > 0 {
					eng.Schedule(gap, func() { next(off + 1<<20) })
				} else {
					next(off + 1<<20)
				}
			})
		}
		next(0)
	})
	eng.RunUntil(sim.Seconds(300))
	return times, finished
}

func TestReadaheadPipelinesSequentialStream(t *testing.T) {
	// With readahead a sequential stream approaches media speed; without
	// it every op pays a full network+disk round trip.
	run := func(ra int) sim.Time {
		eng := sim.NewEngine()
		net := netsim.New(eng, netsim.Config{})
		fs := New(eng, net, PaperTopology(), Config{ReadAheadChunks: ra})
		fs.Populate("/seq", 64<<20, 1)
		times, finished := readSeq(eng, fs.Client("c0"), "/seq", 64<<20, 0)
		if len(times) != 64 {
			t.Fatalf("reads=%d", len(times))
		}
		return finished
	}
	with := run(0) // 0 -> default (4)
	without := run(-1)
	// The gain is bounded here: the 1 GB/s NIC keeps the per-op round
	// trip small relative to the 7 ms media time, so pipelining only
	// hides the ~1.3 ms request/reply overhead per op.
	if float64(without) < 1.1*float64(with) {
		t.Fatalf("readahead should speed sequential reads: with=%v without=%v",
			with, without)
	}
}

func TestReadaheadServesLaterReadsFromCache(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{})
	fs.Populate("/seq", 16<<20, 1)
	times, _ := readSeq(eng, fs.Client("c0"), "/seq", 16<<20, 0)
	// Steady-state reads ride the prefetch pipeline: latency drops to the
	// pure media streaming time, below the cold first fetch (which pays
	// the request round trip and rotational positioning too).
	cold := times[0]
	fast := 0
	for _, tt := range times[2:] {
		if float64(tt) < 0.9*float64(cold) {
			fast++
		}
	}
	if fast < len(times)/2 {
		t.Fatalf("reads not pipelined: first=%v rest=%v", cold, times[1:5])
	}
}

func TestNoReadaheadForStridedPattern(t *testing.T) {
	// Strided reads (ior-hard style) must not trigger prefetch: every op
	// should hit the disk, visible as device reads ~= op count.
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{})
	fs.Populate("/strided", 64<<20, 1)
	c := fs.Client("c0")
	ops := 0
	c.Open("/strided", func(h *Handle) {
		var next func(i int64)
		next = func(i int64) {
			if i >= 32 {
				return
			}
			// Stride of 2 MiB: never sequential.
			c.Read(h, i*(2<<20), 47008, func() {
				ops++
				next(i + 1)
			})
		}
		next(0)
	})
	eng.Run()
	ino := fs.MDS().Lookup("/strided")
	reads := fs.OST(ino.OSTs[0]).Queue().Counters().ReadsCompleted
	if ops != 32 {
		t.Fatalf("ops=%d", ops)
	}
	if reads > 40 { // each op 1 request (+ merge slack); prefetch would add 4 MiB+
		t.Fatalf("strided pattern triggered prefetch: %d device reads for %d ops", reads, ops)
	}
}

func TestWriteInvalidatesReadahead(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{})
	fs.Populate("/rw", 16<<20, 1)
	c := fs.Client("c0")
	c.Open("/rw", func(h *Handle) {
		c.Read(h, 0, 1<<20, func() {
			c.Read(h, 1<<20, 1<<20, func() { // arms prefetch
				if len(h.ra) == 0 {
					t.Fatal("prefetch never armed")
				}
				c.Write(h, 2<<20, 4096, func() {
					if h.ra != nil {
						t.Fatal("write did not drop the readahead cache")
					}
				})
			})
		})
	})
	eng.Run()
}

func TestReadaheadStopsAtEOF(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{})
	fs.Populate("/small", 3<<20, 1)
	done := 0
	c := fs.Client("c0")
	c.Open("/small", func(h *Handle) {
		var next func(off int64)
		next = func(off int64) {
			if off >= 3<<20 {
				return
			}
			c.Read(h, off, 1<<20, func() { done++; next(off + 1<<20) })
		}
		next(0)
	})
	eng.Run()
	if done != 3 {
		t.Fatalf("reads=%d", done)
	}
	// Device must not have read beyond the file.
	ino := fs.MDS().Lookup("/small")
	sectors := fs.OST(ino.OSTs[0]).Queue().Counters().SectorsRead
	if sectors > (3<<20)/512+64 {
		t.Fatalf("read past EOF: %d sectors", sectors)
	}
}

func TestCacheHitCostsConfiguredTime(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := New(eng, net, PaperTopology(), Config{CacheHitTime: 10 * sim.Millisecond})
	fs.Populate("/hit", 32<<20, 1)
	// A think gap between reads lets the prefetcher run ahead, so later
	// reads find their chunk fully landed: a pure client cache hit.
	times, _ := readSeq(eng, fs.Client("c0"), "/hit", 32<<20, 20*sim.Millisecond)
	hits := 0
	for _, tt := range times {
		if tt == 10*sim.Millisecond {
			hits++
		}
	}
	if hits == 0 {
		t.Fatalf("no cache hits at configured cost; times=%v", times[:8])
	}
}
