// Package par runs independent simulations concurrently. Each simulated
// cluster is confined to one goroutine (the discrete-event engine is
// single-threaded by design), but whole runs share nothing, so experiment
// drivers fan out across cores — a Table I regeneration is 50 independent
// simulations.
package par

import (
	"runtime"
	"sync"
)

// Map invokes worker(i) for i in [0, n), running up to Workers() of them
// concurrently, and returns when all complete. Workers must not share
// mutable state except through their index-addressed result slots.
func Map(n int, worker func(i int)) {
	if n <= 0 {
		return
	}
	limit := Workers()
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			worker(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				worker(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Workers is the concurrency limit (GOMAXPROCS, at least 1).
func Workers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}
