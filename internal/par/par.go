// Package par runs independent simulations concurrently. Each simulated
// cluster is confined to one goroutine (the discrete-event engine is
// single-threaded by design), but whole runs share nothing, so experiment
// drivers fan out across cores — a Table I regeneration is 50 independent
// simulations.
//
// Worker panics are contained: a panic inside worker(i) does not kill the
// process or deadlock the feeder. Map re-panics on the caller's goroutine
// with the failing index and stack attached once every other index has
// drained; MapE converts panics to *PanicError values and keeps going.
package par

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError wraps a panic that escaped a worker, with the index of the
// failing call and the worker goroutine's stack at panic time.
type PanicError struct {
	Index int
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// call invokes worker(i), converting a panic to a *PanicError.
func call(i int, worker func(i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return worker(i)
}

// Map invokes worker(i) for i in [0, n), running up to Workers() of them
// concurrently, and returns when all complete. Workers must not share
// mutable state except through their index-addressed result slots. If any
// worker panics, the remaining indices still run, and Map re-panics on the
// caller's goroutine with the first failing index and its stack attached.
func Map(n int, worker func(i int)) {
	MapN(n, Workers(), worker)
}

// MapN is Map with an explicit concurrency limit: at most limit workers run
// at once (limit <= 1 runs every index on the calling goroutine, in order).
// Callers that need reproducible work placement — like the data-parallel
// trainer, which pins gradient shards to fixed index ranges — use MapN so
// the fan-out width is a configuration input rather than a property of the
// host machine.
func MapN(n, limit int, worker func(i int)) {
	err := mapBounded(n, limit, func(i int) error {
		worker(i)
		return nil
	})
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		panic(err)
	}
}

// MapE invokes worker(i) for i in [0, n) concurrently like Map, collecting
// failures instead of aborting: a worker returning an error or panicking
// does not disturb the other indices. Returns nil when every call succeeds,
// otherwise an error joining each failure in index order; panics surface as
// *PanicError values (match with errors.As) carrying the failing index.
func MapE(n int, worker func(i int) error) error {
	return mapBounded(n, Workers(), worker)
}

// mapBounded is the shared fan-out core behind Map, MapN, and MapE.
func mapBounded(n, limit int, worker func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(i, worker)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// call recovers panics, so this loop always drains next and
			// the feeder below can never block on a dead worker.
			for i := range next {
				errs[i] = call(i, worker)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// Errors unwraps the per-index failures joined by MapE (nil gives nil).
func Errors(err error) []error {
	if err == nil {
		return nil
	}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// Workers is the concurrency limit (GOMAXPROCS, at least 1).
func Workers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}
