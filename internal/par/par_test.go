package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapRunsAll(t *testing.T) {
	var count int64
	seen := make([]bool, 100)
	Map(100, func(i int) {
		atomic.AddInt64(&count, 1)
		seen[i] = true // index-addressed slot: no race
	})
	if count != 100 {
		t.Fatalf("ran %d/100", count)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d skipped", i)
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	ran := false
	Map(0, func(int) { ran = true })
	Map(-5, func(int) { ran = true })
	if ran {
		t.Fatal("worker ran for empty input")
	}
}

func TestMapSingle(t *testing.T) {
	got := -1
	Map(1, func(i int) { got = i })
	if got != 0 {
		t.Fatalf("got %d", got)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("workers < 1")
	}
}

// Property: results written to index-addressed slots are complete and
// correct for any n.
func TestPropertyMapCompleteness(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)
		out := make([]int, n)
		Map(n, func(i int) { out[i] = i * i })
		for i := 0; i < n; i++ {
			if out[i] != i*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
