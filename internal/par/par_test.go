package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapRunsAll(t *testing.T) {
	var count int64
	seen := make([]bool, 100)
	Map(100, func(i int) {
		atomic.AddInt64(&count, 1)
		seen[i] = true // index-addressed slot: no race
	})
	if count != 100 {
		t.Fatalf("ran %d/100", count)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d skipped", i)
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	ran := false
	Map(0, func(int) { ran = true })
	Map(-5, func(int) { ran = true })
	if ran {
		t.Fatal("worker ran for empty input")
	}
}

func TestMapSingle(t *testing.T) {
	got := -1
	Map(1, func(i int) { got = i })
	if got != 0 {
		t.Fatalf("got %d", got)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("workers < 1")
	}
}

// Regression: a worker panic used to escape its goroutine and kill the whole
// process mid-collection with no index attached. Map must now finish every
// other index and re-panic on the caller's goroutine with context.
func TestMapWorkerPanicIsRecoverable(t *testing.T) {
	var count int64
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Map did not re-panic after a worker panic")
		}
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", v, v)
		}
		if pe.Index != 7 {
			t.Errorf("PanicError.Index = %d, want 7", pe.Index)
		}
		if !strings.Contains(pe.Error(), "worker 7 panicked: boom") {
			t.Errorf("error %q missing index and panic value", pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Error("PanicError.Stack empty")
		}
		if got := atomic.LoadInt64(&count); got != 31 {
			t.Errorf("%d/31 non-panicking workers ran; the feeder lost some", got)
		}
	}()
	Map(32, func(i int) {
		if i == 7 {
			panic("boom")
		}
		atomic.AddInt64(&count, 1)
	})
}

func TestMapEErrorsAndPanicsDoNotAbortOthers(t *testing.T) {
	var count int64
	err := MapE(64, func(i int) error {
		switch i {
		case 3:
			return fmt.Errorf("worker %d failed", i)
		case 9:
			panic("kaboom")
		}
		atomic.AddInt64(&count, 1)
		return nil
	})
	if count != 62 {
		t.Fatalf("%d/62 healthy workers ran", count)
	}
	if err == nil {
		t.Fatal("MapE returned nil despite failures")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 9 {
		t.Errorf("no *PanicError with index 9 in %v", err)
	}
	if !strings.Contains(err.Error(), "worker 3 failed") {
		t.Errorf("error %q missing worker 3's failure", err)
	}
	if got := Errors(err); len(got) != 2 {
		t.Errorf("Errors(err) = %d entries, want 2", len(got))
	}
}

func TestMapESerialPathRecovers(t *testing.T) {
	// n == 1 forces the serial path regardless of GOMAXPROCS.
	err := MapE(1, func(int) error { panic("solo") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 0 {
		t.Fatalf("serial MapE: err = %v, want *PanicError index 0", err)
	}
}

func TestMapEAllHealthy(t *testing.T) {
	if err := MapE(16, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if err := MapE(0, func(int) error { panic("never") }); err != nil {
		t.Fatalf("n=0: err = %v", err)
	}
}

// Property: results written to index-addressed slots are complete and
// correct for any n.
func TestPropertyMapCompleteness(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)
		out := make([]int, n)
		Map(n, func(i int) { out[i] = i * i })
		for i := 0; i < n; i++ {
			if out[i] != i*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
