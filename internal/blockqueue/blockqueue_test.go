package blockqueue

import (
	"testing"
	"testing/quick"

	"quanterference/internal/disk"
	"quanterference/internal/sim"
)

func newQueue(cfg Config) (*sim.Engine, *Queue) {
	eng := sim.NewEngine()
	d := disk.New(eng, disk.Config{Seed: 11})
	return eng, New(eng, d, cfg)
}

func TestBackMergeContiguousWrites(t *testing.T) {
	eng, q := newQueue(Config{})
	// Occupy the device so submissions stay pending and can merge.
	q.Submit(disk.Write, 1<<20, 8, func() {})
	completions := 0
	for i := int64(0); i < 8; i++ {
		q.Submit(disk.Write, i*8, 8, func() { completions++ })
	}
	eng.Run()
	c := q.Counters()
	if completions != 8 {
		t.Fatalf("completions=%d", completions)
	}
	if c.WritesMerged != 7 {
		t.Fatalf("merged=%d, want 7", c.WritesMerged)
	}
	if c.WritesCompleted != 9 {
		t.Fatalf("completed=%d, want 9", c.WritesCompleted)
	}
	// 8 writes of 8 sectors merged into one device request.
	if q.DiskStats().Requests != 2 {
		t.Fatalf("device requests=%d, want 2", q.DiskStats().Requests)
	}
}

func TestFrontMerge(t *testing.T) {
	eng, q := newQueue(Config{})
	q.Submit(disk.Read, 1<<20, 8, func() {}) // busy the device
	q.Submit(disk.Read, 100, 10, func() {})
	q.Submit(disk.Read, 90, 10, func() {}) // front-merges onto [100,110)
	eng.Run()
	c := q.Counters()
	if c.ReadsMerged != 1 {
		t.Fatalf("merged=%d, want 1", c.ReadsMerged)
	}
	if c.SectorsRead != 8+20 {
		t.Fatalf("sectors=%d", c.SectorsRead)
	}
}

func TestNoMergeAcrossDirections(t *testing.T) {
	eng, q := newQueue(Config{})
	q.Submit(disk.Write, 1<<20, 8, func() {})
	q.Submit(disk.Read, 0, 8, func() {})
	q.Submit(disk.Write, 8, 8, func() {})
	eng.Run()
	c := q.Counters()
	if c.ReadsMerged+c.WritesMerged != 0 {
		t.Fatalf("unexpected merges: %+v", c)
	}
}

func TestMergeSizeCap(t *testing.T) {
	eng, q := newQueue(Config{MaxMergeSectors: 16})
	q.Submit(disk.Write, 1<<20, 8, func() {})
	q.Submit(disk.Write, 0, 12, func() {})
	q.Submit(disk.Write, 12, 12, func() {}) // would exceed 16
	eng.Run()
	if c := q.Counters(); c.WritesMerged != 0 {
		t.Fatalf("merge should have been capped: %+v", c)
	}
}

func TestElevatorOrdersBySector(t *testing.T) {
	eng, q := newQueue(Config{Scheduler: Elevator})
	var order []int64
	// First request busies the device at a low sector.
	q.Submit(disk.Read, 0, 8, func() {})
	for _, s := range []int64{9000, 3000, 6000} {
		s := s
		q.Submit(disk.Read, s, 8, func() { order = append(order, s) })
	}
	eng.Run()
	want := []int64{3000, 6000, 9000}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("elevator order %v, want %v", order, want)
		}
	}
}

func TestReadPriorityDispatchesReadsFirst(t *testing.T) {
	eng, q := newQueue(Config{ReadPriority: true})
	var order []string
	q.Submit(disk.Write, 1<<20, 8, func() {}) // busy device
	q.Submit(disk.Write, 0, 8, func() { order = append(order, "w") })
	q.Submit(disk.Read, 5000, 8, func() { order = append(order, "r") })
	eng.Run()
	if order[0] != "r" {
		t.Fatalf("read should dispatch before earlier write: %v", order)
	}
}

func TestWriteStarvationBounded(t *testing.T) {
	eng, q := newQueue(Config{ReadPriority: true, WriteStarveLimit: 3})
	writeDone := sim.Time(0)
	q.Submit(disk.Write, 4096, 8, func() { writeDone = eng.Now() })
	// Feed a continuous stream of reads: each completion enqueues another.
	reads := 0
	var feed func()
	feed = func() {
		if reads >= 50 {
			return
		}
		reads++
		q.Submit(disk.Read, int64(reads)*1000, 8, func() { feed() })
	}
	feed()
	feed()
	eng.Run()
	if writeDone == 0 {
		t.Fatal("write starved forever")
	}
	// The write must complete long before all 50 reads do.
	if writeDone == eng.Now() {
		t.Fatal("write only completed at the very end")
	}
}

func TestInFlightAccounting(t *testing.T) {
	eng, q := newQueue(Config{})
	for i := int64(0); i < 5; i++ {
		q.Submit(disk.Read, i*10000, 8, func() {})
	}
	if c := q.Counters(); c.InFlight != 5 {
		t.Fatalf("inflight=%d, want 5", c.InFlight)
	}
	eng.Run()
	c := q.Counters()
	if c.InFlight != 0 {
		t.Fatalf("inflight=%d after drain", c.InFlight)
	}
	if c.WeightedIOTime <= c.IOTime {
		t.Fatalf("weighted (%d) should exceed io time (%d) with queued requests",
			c.WeightedIOTime, c.IOTime)
	}
	if c.IOTime != eng.Now() {
		t.Fatalf("io time %d, want busy whole run %d", c.IOTime, eng.Now())
	}
}

func TestLatencyCountersGrowWithQueueDepth(t *testing.T) {
	// A deep queue should show much higher per-request ReadTime than a
	// serial submission of the same requests.
	deep := func() sim.Time {
		eng, q := newQueue(Config{})
		for i := int64(0); i < 20; i++ {
			q.Submit(disk.Read, i*100000, 8, func() {})
		}
		eng.Run()
		return q.Counters().ReadTime
	}()
	serial := func() sim.Time {
		eng, q := newQueue(Config{})
		var next func(i int64)
		next = func(i int64) {
			if i >= 20 {
				return
			}
			q.Submit(disk.Read, i*100000, 8, func() { next(i + 1) })
		}
		next(0)
		eng.Run()
		return q.Counters().ReadTime
	}()
	if deep < 3*serial {
		t.Fatalf("queued latency %d not >> serial %d", deep, serial)
	}
}

// Property: completions equal submissions, and sector counters match the
// sum of submitted sizes regardless of merging.
func TestPropertyConservation(t *testing.T) {
	f := func(seed uint8, sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 100 {
			sizes = sizes[:100]
		}
		eng, q := newQueue(Config{Scheduler: Elevator, ReadPriority: true})
		rng := sim.NewRNG(int64(seed))
		done := 0
		var wantRead, wantWrite uint64
		for _, sz := range sizes {
			n := int64(sz%64) + 1
			op := disk.Op(rng.Intn(2))
			if op == disk.Read {
				wantRead += uint64(n)
			} else {
				wantWrite += uint64(n)
			}
			q.Submit(op, rng.Int63n(1<<30), n, func() { done++ })
		}
		eng.Run()
		c := q.Counters()
		return done == len(sizes) &&
			c.SectorsRead == wantRead && c.SectorsWritten == wantWrite &&
			c.ReadsCompleted+c.WritesCompleted == uint64(len(sizes)) &&
			c.InFlight == 0 && q.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
