// Package blockqueue models the Linux block layer sitting in front of a
// rotational disk: a request queue with back/front merging of contiguous
// requests, a pluggable dispatch policy (FIFO, C-LOOK elevator, optional
// read priority with a write-starvation bound, like the deadline scheduler),
// and /proc/diskstats-style accounting.
//
// The counters exposed here are exactly the raw material for the paper's
// Table II server-side metrics: completed I/Os, merges, sectors moved, time
// spent queued, and the queue-depth integral ("weighted" time).
package blockqueue

import (
	"quanterference/internal/disk"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// Scheduler selects the dispatch order.
type Scheduler int

const (
	// FIFO dispatches in arrival order.
	FIFO Scheduler = iota
	// Elevator dispatches C-LOOK: ascending sector order from the current
	// head position, wrapping to the lowest pending sector.
	Elevator
)

// Config tunes the queue.
type Config struct {
	Scheduler Scheduler
	// MaxMergeSectors caps the size of a merged request (default 2048
	// sectors = 1 MiB, matching max_sectors_kb=1024).
	MaxMergeSectors int64
	// ReadPriority dispatches pending reads before writes, but after
	// WriteStarveLimit consecutive reads a write is dispatched anyway.
	ReadPriority bool
	// WriteStarveLimit bounds write starvation under ReadPriority
	// (default 4, cf. the deadline scheduler's writes_starved).
	WriteStarveLimit int
}

func (c *Config) applyDefaults() {
	if c.MaxMergeSectors == 0 {
		c.MaxMergeSectors = 2048
	}
	if c.WriteStarveLimit == 0 {
		c.WriteStarveLimit = 4
	}
}

// Counters mirrors the /proc/diskstats fields the server-side monitor
// samples once per second.
type Counters struct {
	ReadsCompleted  uint64
	WritesCompleted uint64
	ReadsMerged     uint64
	WritesMerged    uint64
	SectorsRead     uint64
	SectorsWritten  uint64
	// ReadTime / WriteTime sum, over completed requests, the full
	// queue-entry-to-completion latency (diskstats fields 4 and 8).
	ReadTime  sim.Time
	WriteTime sim.Time
	// InFlight is the instantaneous number of requests issued but not
	// completed (queued + on device).
	InFlight int
	// IOTime is the total wall time with at least one request in flight
	// (io_ticks).
	IOTime sim.Time
	// WeightedIOTime integrates InFlight over time (aveq).
	WeightedIOTime sim.Time
}

type ioReq struct {
	op      disk.Op
	sector  int64
	sectors int64
	arrival sim.Time
	dones   []func()
	merges  uint64 // number of requests merged into this one
}

func (r *ioReq) end() int64 { return r.sector + r.sectors }

// Queue is one device's request queue.
type Queue struct {
	eng *sim.Engine
	dev *disk.Disk
	cfg Config

	pending    []*ioReq
	dispatched *ioReq
	counters   Counters
	// free recycles completed ioReq structs; devReq/devDone are the single
	// reused device-level request and its prebound completion, so the
	// steady-state submit->dispatch->complete cycle allocates nothing beyond
	// the caller's done closure.
	free    []*ioReq
	devReq  disk.Request
	devDone func()
	// frozen suspends dispatch until the given time (a fault-injected
	// brown-out); submissions and merges continue, so the backlog and the
	// queue-time integrals keep accounting through the stall.
	frozen sim.Time

	lastAccount   sim.Time
	consecReads   int
	totalSubmits  uint64
	totalDispatch uint64

	// Observability handles; nil unless Instrument attached a sink.
	sink       *obs.Sink
	instance   string
	cSubmits   *obs.Counter
	cDispatch  *obs.Counter
	cMerges    *obs.Counter
	cFreezes   *obs.Counter
	gDepthMax  *obs.Gauge
	hLatencyNS *obs.Histogram
}

// New wraps a disk with a request queue.
func New(eng *sim.Engine, dev *disk.Disk, cfg Config) *Queue {
	cfg.applyDefaults()
	q := &Queue{eng: eng, dev: dev, cfg: cfg}
	q.devDone = func() { q.complete(q.dispatched) }
	return q
}

// Instrument registers block-layer metrics on the sink under the given
// instance name and instruments the underlying device with the same name:
// submit/dispatch/merge counters (the per-device iostat deltas behind the
// paper's Table II features), a backlog high-water gauge, and a
// queue-entry-to-completion latency histogram. Each completed request also
// becomes a trace span covering its queued + service time.
func (q *Queue) Instrument(s *obs.Sink, instance string) {
	q.dev.Instrument(s, instance)
	q.sink = s
	q.instance = instance
	q.cSubmits = s.Counter("blockqueue", instance, "submits")
	q.cDispatch = s.Counter("blockqueue", instance, "dispatches")
	q.cMerges = s.Counter("blockqueue", instance, "merges")
	q.cFreezes = s.Counter("blockqueue", instance, "freezes")
	q.gDepthMax = s.Gauge("blockqueue", instance, "max_backlog")
	q.hLatencyNS = s.Histogram("blockqueue", instance, "latency_ns", obs.TimeBuckets())
}

// account integrates queue-depth-over-time counters up to now.
func (q *Queue) account() {
	now := q.eng.Now()
	dt := now - q.lastAccount
	if dt > 0 && q.counters.InFlight > 0 {
		q.counters.WeightedIOTime += sim.Time(q.counters.InFlight) * dt
		q.counters.IOTime += dt
	}
	q.lastAccount = now
}

// Depth returns the number of requests waiting for dispatch.
func (q *Queue) Depth() int { return len(q.pending) }

// FreezeUntil suspends dispatch until t (a fault-injected brown-out or
// controller-cache stall): requests already on the device complete, queued
// and newly submitted requests wait, and dispatch resumes at t. Extending an
// active freeze is allowed; shortening one is ignored.
func (q *Queue) FreezeUntil(t sim.Time) {
	if t <= q.frozen || t <= q.eng.Now() {
		return
	}
	q.frozen = t
	q.cFreezes.Inc()
	q.eng.At(t, func() { q.maybeDispatch() })
}

// FrozenUntil reports the end of the current dispatch freeze (a time in the
// past means dispatch is live).
func (q *Queue) FrozenUntil() sim.Time { return q.frozen }

// Idle reports whether nothing is queued or on the device.
func (q *Queue) Idle() bool { return len(q.pending) == 0 && q.dispatched == nil }

// Counters returns a snapshot with time integrals brought up to now.
func (q *Queue) Counters() Counters {
	q.account()
	return q.counters
}

// DiskStats exposes the underlying device counters.
func (q *Queue) DiskStats() disk.Stats { return q.dev.Stats() }

// Device exposes the underlying device (e.g. for fail-slow injection).
func (q *Queue) Device() *disk.Disk { return q.dev }

// Submit enqueues an I/O. done runs when the request (or the merged request
// carrying it) completes on media.
func (q *Queue) Submit(op disk.Op, sector, sectors int64, done func()) {
	if sectors <= 0 {
		panic("blockqueue: non-positive request size")
	}
	if done == nil {
		panic("blockqueue: nil completion")
	}
	q.account()
	q.counters.InFlight++
	q.totalSubmits++
	q.cSubmits.Inc()

	// Try to merge with a pending request of the same direction.
	for _, p := range q.pending {
		if p.op != op || p.sectors+sectors > q.cfg.MaxMergeSectors {
			continue
		}
		if p.end() == sector { // back merge
			p.sectors += sectors
			p.dones = append(p.dones, done)
			p.merges++
			q.noteMerge(op)
			return
		}
		if sector+sectors == p.sector { // front merge
			p.sector = sector
			p.sectors += sectors
			p.dones = append(p.dones, done)
			p.merges++
			q.noteMerge(op)
			return
		}
	}

	var req *ioReq
	if n := len(q.free); n > 0 {
		req = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		req = &ioReq{}
	}
	req.op, req.sector, req.sectors = op, sector, sectors
	req.arrival, req.merges = q.eng.Now(), 0
	req.dones = append(req.dones[:0], done)
	q.pending = append(q.pending, req)
	q.gDepthMax.Max(float64(len(q.pending)))
	q.maybeDispatch()
}

func (q *Queue) noteMerge(op disk.Op) {
	q.cMerges.Inc()
	if op == disk.Read {
		q.counters.ReadsMerged++
	} else {
		q.counters.WritesMerged++
	}
}

// pickNext selects the index of the next request to dispatch.
func (q *Queue) pickNext() int {
	if len(q.pending) == 1 {
		return 0
	}
	// Read priority with bounded write starvation.
	candidates := q.pending
	restrictOp := disk.Op(-1)
	if q.cfg.ReadPriority {
		hasRead, hasWrite := false, false
		for _, p := range q.pending {
			if p.op == disk.Read {
				hasRead = true
			} else {
				hasWrite = true
			}
		}
		switch {
		case hasRead && hasWrite && q.consecReads >= q.cfg.WriteStarveLimit:
			restrictOp = disk.Write
		case hasRead:
			restrictOp = disk.Read
		}
	}
	best := -1
	switch q.cfg.Scheduler {
	case FIFO:
		for i, p := range candidates {
			if restrictOp >= 0 && p.op != restrictOp {
				continue
			}
			if best == -1 || p.arrival < candidates[best].arrival {
				best = i
			}
		}
	case Elevator:
		// C-LOOK: smallest sector >= head; else wrap to globally smallest.
		head := q.dev.Head()
		wrap := -1
		for i, p := range candidates {
			if restrictOp >= 0 && p.op != restrictOp {
				continue
			}
			if p.sector >= head {
				if best == -1 || p.sector < candidates[best].sector {
					best = i
				}
			}
			if wrap == -1 || p.sector < candidates[wrap].sector {
				wrap = i
			}
		}
		if best == -1 {
			best = wrap
		}
	}
	if best == -1 {
		best = 0
	}
	return best
}

func (q *Queue) maybeDispatch() {
	if q.dispatched != nil || len(q.pending) == 0 || q.dev.Busy() {
		return
	}
	if q.eng.Now() < q.frozen {
		return
	}
	i := q.pickNext()
	req := q.pending[i]
	q.pending = append(q.pending[:i], q.pending[i+1:]...)
	q.dispatched = req
	q.totalDispatch++
	q.cDispatch.Inc()
	if req.op == disk.Read {
		q.consecReads++
	} else {
		q.consecReads = 0
	}
	q.devReq = disk.Request{
		Op:      req.op,
		Sector:  req.sector,
		Sectors: req.sectors,
		Done:    q.devDone,
	}
	q.dev.Submit(&q.devReq)
}

func (q *Queue) complete(req *ioReq) {
	q.account()
	n := uint64(len(req.dones))
	latency := q.eng.Now() - req.arrival
	if req.op == disk.Read {
		q.counters.ReadsCompleted += n
		q.counters.SectorsRead += uint64(req.sectors)
		q.counters.ReadTime += latency * sim.Time(n)
	} else {
		q.counters.WritesCompleted += n
		q.counters.SectorsWritten += uint64(req.sectors)
		q.counters.WriteTime += latency * sim.Time(n)
	}
	q.counters.InFlight -= int(n)
	q.dispatched = nil
	q.hLatencyNS.Observe(float64(latency))
	q.sink.Span("blockqueue", q.instance, req.op.String(), req.arrival, latency)
	for _, d := range req.dones {
		d()
	}
	// Recycle after the completion callbacks: they may submit re-entrantly,
	// but any new request either merged into a pending one or came from the
	// free list / a fresh allocation — never this req, which left q.pending
	// at dispatch.
	for i := range req.dones {
		req.dones[i] = nil
	}
	req.dones = req.dones[:0]
	q.free = append(q.free, req)
	q.maybeDispatch()
}
