package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandler(t *testing.T) {
	sink := New()
	sink.Counter("disk", "d0", "requests").Add(42)
	srv := httptest.NewServer(DebugHandler(sink))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"# go runtime metrics", "/gc/heap/allocs:bytes", "# simulator metrics", "disk/d0/requests"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}
}
