package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"quanterference/internal/par"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	s := New()
	h := s.Histogram("c", "i", "lat", []float64{10, 100, 1000})
	// Bounds are inclusive upper bounds; above the last bound is overflow.
	for _, v := range []float64{5, 10, 10.5, 100, 1000, 1001} {
		h.Observe(v)
	}
	snap := s.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	want := []uint64{2, 2, 1, 1} // (<=10)x2, (<=100)x2, (<=1000)x1, overflow x1
	if len(hv.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(hv.Counts), len(want))
	}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hv.Counts[i], w)
		}
	}
	if hv.Count != 6 {
		t.Errorf("Count = %d, want 6", hv.Count)
	}
	if wantSum := 5 + 10 + 10.5 + 100 + 1000 + 1001.0; hv.Sum != wantSum {
		t.Errorf("Sum = %g, want %g", hv.Sum, wantSum)
	}
	if got := hv.Mean(); got != hv.Sum/6 {
		t.Errorf("Mean = %g, want %g", got, hv.Sum/6)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	tb := TimeBuckets()
	if len(tb) != 13 || tb[0] != 1e3 {
		t.Fatalf("TimeBuckets = %v", tb)
	}
	for i := 1; i < len(tb); i++ {
		if tb[i] <= tb[i-1] {
			t.Fatalf("TimeBuckets not increasing at %d: %v", i, tb)
		}
	}
}

// TestConcurrentMutation exercises the shared-sink path the experiment
// drivers rely on: many par.Map workers hammering the same handles. Run with
// -race; the assertions also verify no update is lost.
func TestConcurrentMutation(t *testing.T) {
	s := New()
	const workers, perWorker = 32, 1000
	par.Map(workers, func(i int) {
		// Each worker re-registers the handles, as concurrent RunE calls
		// sharing one sink do; registration must dedup to one handle.
		c := s.Counter("eng", "", "events")
		g := s.Gauge("eng", "", "depth")
		h := s.Histogram("eng", "", "lat", []float64{10, 100})
		for j := 0; j < perWorker; j++ {
			c.Inc()
			g.Max(float64(i*perWorker + j))
			h.Observe(float64(j % 150))
		}
	})
	snap := s.Snapshot()
	if v, ok := snap.Counter("eng", "", "events"); !ok || v != workers*perWorker {
		t.Errorf("counter = %d (ok=%v), want %d", v, ok, workers*perWorker)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != workers*perWorker-1 {
		t.Errorf("gauge max = %v, want %d", snap.Gauges, workers*perWorker-1)
	}
	if snap.Histograms[0].Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", snap.Histograms[0].Count, workers*perWorker)
	}
}

func TestSameKeySameHandle(t *testing.T) {
	s := New()
	if s.Counter("a", "b", "c") != s.Counter("a", "b", "c") {
		t.Error("same counter key returned distinct handles")
	}
	if s.Gauge("a", "b", "c") != s.Gauge("a", "b", "c") {
		t.Error("same gauge key returned distinct handles")
	}
	h1 := s.Histogram("a", "b", "c", []float64{1, 2})
	h2 := s.Histogram("a", "b", "c", []float64{5, 6, 7}) // bounds fixed at first registration
	if h1 != h2 {
		t.Error("same histogram key returned distinct handles")
	}
}

func TestNilSafety(t *testing.T) {
	var s *Sink
	c := s.Counter("x", "", "n")
	g := s.Gauge("x", "", "n")
	h := s.Histogram("x", "", "n", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil sink must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Max(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	s.EnableTrace(10)
	if s.TraceEnabled() {
		t.Error("nil sink cannot enable tracing")
	}
	s.Span("x", "", "op", 0, 1)
	if s.TraceSpans() != 0 || s.TraceDropped() != 0 {
		t.Error("nil sink must hold no spans")
	}
	if snap := s.Snapshot(); !snap.Empty() {
		t.Error("nil sink snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Errorf("WriteTrace on nil sink: %v", err)
	}
}

func TestTraceLimit(t *testing.T) {
	s := New()
	// Spans are dropped, not recorded, before EnableTrace.
	s.Span("c", "i", "early", 0, 1)
	if s.TraceSpans() != 0 {
		t.Fatal("span recorded before EnableTrace")
	}
	s.EnableTrace(2)
	if !s.TraceEnabled() {
		t.Fatal("TraceEnabled = false after EnableTrace")
	}
	for i := 0; i < 5; i++ {
		s.Span("c", "i", "op", int64(i), 1)
	}
	if s.TraceSpans() != 2 {
		t.Errorf("TraceSpans = %d, want 2", s.TraceSpans())
	}
	if s.TraceDropped() != 3 {
		t.Errorf("TraceDropped = %d, want 3", s.TraceDropped())
	}
}

// TestWriteTraceGolden pins the exact Chrome trace-event JSON byte output:
// metadata rows first (process, then one named thread per component/instance
// sorted), then complete events sorted by start time, timestamps in
// microseconds.
func TestWriteTraceGolden(t *testing.T) {
	s := New()
	s.EnableTrace(0)
	s.Span("disk", "sda", "write", 1000, 2000)
	s.Span("ost", "ost0", "flush", 500, 1500)
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"quanterference simulation"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"disk/sda"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":2,"args":{"name":"ost/ost0"}},` +
		`{"name":"flush","cat":"ost","ph":"X","ts":0.5,"dur":1.5,"pid":1,"tid":2},` +
		`{"name":"write","cat":"disk","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != golden {
		t.Errorf("trace JSON mismatch:\ngot:  %s\nwant: %s", got, golden)
	}
	// And it must round-trip as valid JSON for about:tracing.
	var decoded struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 5 {
		t.Errorf("events = %d, want 5", len(decoded.TraceEvents))
	}
}

func TestSnapshotHelpers(t *testing.T) {
	s := New()
	s.Counter("disk", "d0", "requests").Add(3)
	s.Counter("disk", "d1", "requests").Add(4)
	s.Counter("ost", "ost0", "flushes").Inc()
	snap := s.Snapshot()
	if snap.Empty() {
		t.Fatal("snapshot empty after registration")
	}
	if v, ok := snap.Counter("disk", "d1", "requests"); !ok || v != 4 {
		t.Errorf("Counter(disk,d1,requests) = %d, %v", v, ok)
	}
	if _, ok := snap.Counter("disk", "d2", "requests"); ok {
		t.Error("Counter found a key that was never registered")
	}
	if total := snap.CounterTotal("disk", "requests"); total != 7 {
		t.Errorf("CounterTotal = %d, want 7", total)
	}
	out := snap.Render()
	for _, want := range []string{"disk/d0/requests", "disk/d1/requests", "ost/ost0/flushes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering.
	if snap.Counters[0].Key.String() != "disk/d0/requests" {
		t.Errorf("first counter = %s, want disk/d0/requests", snap.Counters[0].Key)
	}
}

func TestLinearBuckets(t *testing.T) {
	b := LinearBuckets(1, 1, 4)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", b, want)
		}
	}
	for _, bad := range []func(){
		func() { LinearBuckets(0, 1, 0) },
		func() { LinearBuckets(0, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad bucket spec did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestSnapshotWriteJSON pins /stats' wire format: key-sorted maps for
// counters and gauges, histogram objects with bounds/counts/mean, and a
// valid empty document for a nil snapshot.
func TestSnapshotWriteJSON(t *testing.T) {
	s := New()
	s.Counter("serve", "", "requests").Add(7)
	s.Gauge("serve", "", "inflight").Set(3)
	h := s.Histogram("serve", "", "batch_size", LinearBuckets(1, 1, 4))
	h.Observe(1)
	h.Observe(3)
	h.Observe(9) // overflow

	var buf bytes.Buffer
	if err := s.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]uint64  `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms []struct {
			Key    string    `json:"key"`
			Bounds []float64 `json:"bounds"`
			Counts []uint64  `json:"counts"`
			Count  uint64    `json:"count"`
			Sum    float64   `json:"sum"`
			Mean   float64   `json:"mean"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["serve/requests"] != 7 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Gauges["serve/inflight"] != 3 {
		t.Fatalf("gauges = %v", doc.Gauges)
	}
	if len(doc.Histograms) != 1 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	hv := doc.Histograms[0]
	if hv.Key != "serve/batch_size" || hv.Count != 3 || hv.Sum != 13 {
		t.Fatalf("histogram = %+v", hv)
	}
	wantCounts := []uint64{1, 0, 1, 0, 1}
	for i := range wantCounts {
		if hv.Counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", hv.Counts, wantCounts)
		}
	}
	if hv.Mean != 13.0/3 {
		t.Fatalf("mean = %v", hv.Mean)
	}

	buf.Reset()
	var nilSnap *Snapshot
	if err := nilSnap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"counters": {}`) {
		t.Fatalf("nil snapshot JSON = %s", buf.String())
	}
}
