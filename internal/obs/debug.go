package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"sort"
)

// DebugHandler returns an http.Handler exposing:
//
//	/debug/pprof/...  — the standard Go profiling endpoints
//	/metrics          — Go runtime/metrics plus every sink metric, as text
//
// The sinks are optional; pass the run's Sink(s) to expose simulator
// counters next to the runtime's.
func DebugHandler(sinks ...*Sink) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeRuntimeMetrics(w)
		for _, s := range sinks {
			if snap := s.Snapshot(); !snap.Empty() {
				fmt.Fprintf(w, "\n# simulator metrics\n%s", snap.Render())
			}
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "quanterference debug server: /metrics, /debug/pprof/")
	})
	return mux
}

// ServeDebug starts the debug server on addr (e.g. "localhost:6060") and
// blocks; run it in a goroutine. Returns the http server error on failure.
func ServeDebug(addr string, sinks ...*Sink) error {
	return http.ListenAndServe(addr, DebugHandler(sinks...))
}

func writeRuntimeMetrics(w http.ResponseWriter) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	fmt.Fprintln(w, "# go runtime metrics")
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "%-60s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "%-60s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			fmt.Fprintf(w, "%-60s histogram n=%d\n", s.Name, n)
		}
	}
}
