package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// span is one completed simulation activity. Timestamps are simulated
// nanoseconds (sim.Time is an int64 alias, so obs needs no sim import).
type span struct {
	key   Key
	start int64
	dur   int64
	seq   uint64 // insertion order: tie-breaker for deterministic export
}

// traceBuf is a bounded buffer of spans. Appends past the limit are counted
// as dropped rather than growing without bound.
type traceBuf struct {
	mu      sync.Mutex
	limit   int
	seq     uint64
	spans   []span
	dropped uint64
}

// DefaultTraceLimit bounds the trace buffer when EnableTrace is called with
// a non-positive limit: 1M spans, ~50 MB in memory.
const DefaultTraceLimit = 1 << 20

// EnableTrace turns on span collection, keeping at most limit spans
// (DefaultTraceLimit when limit <= 0). No-op on a nil sink.
func (s *Sink) EnableTrace(limit int) {
	if s == nil {
		return
	}
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.trace == nil {
		s.trace = &traceBuf{limit: limit}
	} else {
		s.trace.limit = limit
	}
}

// TraceEnabled reports whether spans are being collected. Callers that must
// build span names dynamically (allocating) should check this first; spans
// with constant names can call Span unconditionally.
func (s *Sink) TraceEnabled() bool {
	return s != nil && s.trace != nil
}

// Span records one completed activity of a component instance: it started at
// simulated time start (ns) and lasted dur (ns). A no-op unless tracing is
// enabled; always safe on a nil sink.
func (s *Sink) Span(component, instance, name string, start, dur int64) {
	if s == nil || s.trace == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.seq++
	t.spans = append(t.spans, span{
		key:   Key{component, instance, name},
		start: start,
		dur:   dur,
		seq:   t.seq,
	})
	t.mu.Unlock()
}

// TraceDropped returns how many spans were discarded at the buffer limit.
func (s *Sink) TraceDropped() uint64 {
	if s == nil || s.trace == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.trace.dropped
}

// TraceSpans returns the number of collected spans.
func (s *Sink) TraceSpans() int {
	if s == nil || s.trace == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return len(s.trace.spans)
}

// traceEvent is one entry of the Chrome trace-event JSON format.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace-event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports collected spans as Chrome trace-event JSON, loadable in
// about:tracing or Perfetto. Each (component, instance) pair becomes one
// named thread row; spans become complete ("X") events with microsecond
// timestamps. The export is deterministic: rows are sorted by name, events
// by (start, insertion order).
func (s *Sink) WriteTrace(w io.Writer) error {
	file := traceFile{DisplayTimeUnit: "ms"}
	var spans []span
	if s != nil && s.trace != nil {
		s.trace.mu.Lock()
		spans = append(spans, s.trace.spans...)
		s.trace.mu.Unlock()
	}

	// Assign a thread id per (component, instance), sorted for determinism.
	type row struct {
		component, instance string
	}
	rowSet := map[row]struct{}{}
	for _, sp := range spans {
		rowSet[row{sp.key.Component, sp.key.Instance}] = struct{}{}
	}
	rows := make([]row, 0, len(rowSet))
	for r := range rowSet {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].component != rows[j].component {
			return rows[i].component < rows[j].component
		}
		return rows[i].instance < rows[j].instance
	})
	tids := make(map[row]int, len(rows))
	const pid = 1
	file.TraceEvents = append(file.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]string{"name": "quanterference simulation"},
	})
	for i, r := range rows {
		tid := i + 1
		tids[r] = tid
		name := r.component
		if r.instance != "" {
			name = r.component + "/" + r.instance
		}
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]string{"name": name},
		})
	}

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].seq < spans[j].seq
	})
	for _, sp := range spans {
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: sp.key.Name,
			Cat:  sp.key.Component,
			Ph:   "X",
			Ts:   float64(sp.start) / 1e3,
			Dur:  float64(sp.dur) / 1e3,
			Pid:  pid,
			Tid:  tids[row{sp.key.Component, sp.key.Instance}],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
