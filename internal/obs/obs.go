// Package obs is the simulator-wide observability layer: a metrics registry
// (counters, gauges, histograms keyed by component/instance/name) plus a
// structured simulation-event tracer with Chrome trace-event JSON export
// (load the file in about:tracing or https://ui.perfetto.dev).
//
// Design constraints, in order:
//
//  1. Nil safety. Every method works on a nil *Sink, nil *Counter, nil
//     *Gauge, and nil *Histogram, doing nothing. Instrumented components
//     keep metric handles that are simply nil when no sink is attached, so
//     the un-instrumented hot path costs exactly one branch per event.
//  2. Zero allocation on the hot path. Handles are registered once, at
//     Instrument time; Inc/Add/Set/Observe touch only pre-allocated atomics.
//     Trace spans append fixed-size structs to a bounded buffer.
//  3. Safe under concurrent simulations. Experiment drivers fan whole runs
//     out across cores (internal/par); a single Sink may be shared by many
//     engines, so all mutation is atomic or mutex-guarded.
//
// The metric names threaded through the simulator deliberately mirror the
// paper's monitoring substrate: the blockqueue/disk counters are the
// /proc/diskstats fields behind Table II's server-side features, the
// ost/mds counters are the Lustre server stats LASSi-style tools scrape,
// and the client readahead counters are the Darshan-style client view.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Key identifies one metric stream: a component kind ("disk", "ost",
// "netsim", ...), the instance within it ("ost3", "mdt", a node name; may be
// empty for singletons), and the metric name.
type Key struct {
	Component string
	Instance  string
	Name      string
}

func (k Key) String() string {
	if k.Instance == "" {
		return k.Component + "/" + k.Name
	}
	return k.Component + "/" + k.Instance + "/" + k.Name
}

func keyLess(a, b Key) bool {
	if a.Component != b.Component {
		return a.Component < b.Component
	}
	if a.Instance != b.Instance {
		return a.Instance < b.Instance
	}
	return a.Name < b.Name
}

// Counter is a monotonically increasing uint64. The zero value is usable;
// a nil Counter silently discards updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 cell with set/max semantics. A nil Gauge discards.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Max raises the gauge to v if v is larger than the current value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into buckets with inclusive upper bounds;
// values above the last bound land in an overflow bucket. A nil Histogram
// discards observations.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; overflow past the end.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially spaced bounds: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("obs: bad bucket spec start=%g factor=%g n=%d", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets are the default latency bounds in simulated nanoseconds:
// 1 µs up to ~16 s in powers of four (13 bounds + overflow).
func TimeBuckets() []float64 { return ExpBuckets(1e3, 4, 13) }

// LinearBuckets returns n evenly spaced bounds: start, start+step, ...
// Suited to small integer-valued distributions (batch sizes, queue depths)
// where exponential spacing would collapse everything into two buckets.
func LinearBuckets(start, step float64, n int) []float64 {
	if n <= 0 || step <= 0 {
		panic(fmt.Sprintf("obs: bad bucket spec start=%g step=%g n=%d", start, step, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// UnitBuckets are bounds for [0, 1]-valued observations (drift scores,
// accuracies, occupancy fractions): twenty 0.05-wide buckets plus overflow.
func UnitBuckets() []float64 { return LinearBuckets(0.05, 0.05, 20) }

// Sink is the metrics registry and trace collector. Obtain handles with
// Counter/Gauge/Histogram at instrumentation time; re-registering the same
// key returns the same handle, so a shared Sink aggregates across
// simulations. A nil *Sink is a valid no-op sink.
type Sink struct {
	mu         sync.Mutex
	counters   map[Key]*Counter
	gauges     map[Key]*Gauge
	histograms map[Key]*histEntry

	trace *traceBuf // nil until EnableTrace
}

type histEntry struct {
	h      *Histogram
	bounds []float64
}

// New returns an empty sink.
func New() *Sink {
	return &Sink{
		counters:   make(map[Key]*Counter),
		gauges:     make(map[Key]*Gauge),
		histograms: make(map[Key]*histEntry),
	}
}

// Counter registers (or retrieves) a counter. Returns nil on a nil sink.
func (s *Sink) Counter(component, instance, name string) *Counter {
	if s == nil {
		return nil
	}
	k := Key{component, instance, name}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[k]
	if !ok {
		c = &Counter{}
		s.counters[k] = c
	}
	return c
}

// Gauge registers (or retrieves) a gauge. Returns nil on a nil sink.
func (s *Sink) Gauge(component, instance, name string) *Gauge {
	if s == nil {
		return nil
	}
	k := Key{component, instance, name}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[k]
	if !ok {
		g = &Gauge{}
		s.gauges[k] = g
	}
	return g
}

// Histogram registers (or retrieves) a histogram with the given inclusive
// upper bounds. Returns nil on a nil sink. Bounds are fixed at first
// registration; later registrations of the same key reuse them.
func (s *Sink) Histogram(component, instance, name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs bounds")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted")
	}
	k := Key{component, instance, name}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.histograms[k]
	if !ok {
		b := append([]float64(nil), bounds...)
		e = &histEntry{
			h:      &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)},
			bounds: b,
		}
		s.histograms[k] = e
	}
	return e.h
}

// CounterValue reports a counter-metric snapshot.
type CounterValue struct {
	Key   Key
	Value uint64
}

// GaugeValue reports a gauge-metric snapshot.
type GaugeValue struct {
	Key   Key
	Value float64
}

// HistogramValue reports a histogram snapshot. Counts[i] holds observations
// with value <= Bounds[i]; Counts[len(Bounds)] is the overflow bucket.
type HistogramValue struct {
	Key    Key
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Mean returns the average observed value (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// (component, instance, name) so output is deterministic.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot copies out all metric values. Returns an empty snapshot on nil.
func (s *Sink) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, c := range s.counters {
		snap.Counters = append(snap.Counters, CounterValue{Key: k, Value: c.Value()})
	}
	for k, g := range s.gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{Key: k, Value: g.Value()})
	}
	for k, e := range s.histograms {
		hv := HistogramValue{
			Key:    k,
			Bounds: e.bounds,
			Counts: make([]uint64, len(e.h.counts)),
			Count:  e.h.Count(),
			Sum:    e.h.Sum(),
		}
		for i := range e.h.counts {
			hv.Counts[i] = e.h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, hv)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return keyLess(snap.Counters[i].Key, snap.Counters[j].Key) })
	sort.Slice(snap.Gauges, func(i, j int) bool { return keyLess(snap.Gauges[i].Key, snap.Gauges[j].Key) })
	sort.Slice(snap.Histograms, func(i, j int) bool { return keyLess(snap.Histograms[i].Key, snap.Histograms[j].Key) })
	return snap
}

// Empty reports whether the snapshot holds no metrics at all.
func (s *Snapshot) Empty() bool {
	return s == nil || len(s.Counters)+len(s.Gauges)+len(s.Histograms) == 0
}

// Counter returns one counter's value by key.
func (s *Snapshot) Counter(component, instance, name string) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	k := Key{component, instance, name}
	for _, c := range s.Counters {
		if c.Key == k {
			return c.Value, true
		}
	}
	return 0, false
}

// CounterTotal sums a counter across all instances of a component.
func (s *Snapshot) CounterTotal(component, name string) uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, c := range s.Counters {
		if c.Key.Component == component && c.Key.Name == name {
			total += c.Value
		}
	}
	return total
}

// WriteJSON writes the snapshot as one indented JSON object with "counters"
// and "gauges" maps keyed by the metric's component/instance/name string and
// a "histograms" list carrying bounds, per-bucket counts (the final count is
// the overflow bucket), totals, and the mean. Output is deterministic: maps
// marshal key-sorted and histograms keep the snapshot's sorted order. This is
// the wire format of the serving layer's /stats endpoint.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	type histJSON struct {
		Key    string    `json:"key"`
		Bounds []float64 `json:"bounds"`
		Counts []uint64  `json:"counts"`
		Count  uint64    `json:"count"`
		Sum    float64   `json:"sum"`
		Mean   float64   `json:"mean"`
	}
	out := struct {
		Counters   map[string]uint64  `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms []histJSON         `json:"histograms"`
	}{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: []histJSON{},
	}
	if s != nil {
		for _, c := range s.Counters {
			out.Counters[c.Key.String()] = c.Value
		}
		for _, g := range s.Gauges {
			out.Gauges[g.Key.String()] = g.Value
		}
		for _, h := range s.Histograms {
			out.Histograms = append(out.Histograms, histJSON{
				Key: h.Key.String(), Bounds: h.Bounds, Counts: h.Counts,
				Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Render formats the snapshot as an aligned table for terminal output.
func (s *Snapshot) Render() string {
	if s.Empty() {
		return "(no metrics)\n"
	}
	var b []byte
	line := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	if len(s.Counters) > 0 {
		line("%-44s %16s\n", "counter", "value")
		for _, c := range s.Counters {
			line("%-44s %16d\n", c.Key, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		line("%-44s %16s\n", "gauge", "value")
		for _, g := range s.Gauges {
			line("%-44s %16.3f\n", g.Key, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		line("%-44s %10s %14s %14s\n", "histogram", "count", "mean", "sum")
		for _, h := range s.Histograms {
			line("%-44s %10d %14.1f %14.0f\n", h.Key, h.Count, h.Mean(), h.Sum)
		}
	}
	return string(b)
}
