package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"quanterference/internal/obs"
)

// The tests below pin the shutdown edges around abandoned requests. The
// admission gate means Shutdown only closes the stop channel once every
// caller still inside Predict/Forecast has returned — so the requests a
// closing server finds mid-gather or queued are exactly those whose callers
// gave up (context canceled between enqueue and answer). Each one must still
// be answered into its buffered channel exactly once: a drop would leak the
// response a late reader expects, a double-send would block the batcher and
// hang Shutdown. Run under -race in make verify.

// histogram pulls one named serve histogram out of a snapshot.
func histogram(t *testing.T, snap *obs.Snapshot, name string) obs.HistogramValue {
	t.Helper()
	for _, hv := range snap.Histograms {
		if hv.Key.Component == "serve" && hv.Key.Name == name {
			return hv
		}
	}
	t.Fatalf("histogram serve/%s not in snapshot", name)
	return obs.HistogramValue{}
}

// TestShutdownFlushesPartialGather pins the stop-during-gather edge: with a
// batch window far longer than the test and fewer requests than MaxBatch,
// the batcher sits in gather holding a partial batch of abandoned requests
// when Shutdown closes stop. The flush must answer that batch exactly once —
// one response per request, one batch observed, no re-observe by drain.
func TestShutdownFlushesPartialGather(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	s := New(fw, Config{MaxBatch: 32, BatchWindow: time.Minute, MaxInflight: 64})

	// Abandoned requests, injected the way a ctx-canceled Predict leaves
	// them: enqueued, caller gone, not registered with the inflight gate.
	const n = 5
	reqs := make([]*request, n)
	for i := range reqs {
		reqs[i] = &request{mat: mats[i%len(mats)], resp: make(chan response, 1), enq: time.Now()}
		s.queue <- reqs[i]
	}
	// Wait until the batcher has pulled all n into its gather batch; the
	// minute-long window then parks it until stop.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("batcher never picked up the queue")
		}
		time.Sleep(time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	for i, req := range reqs {
		select {
		case r := <-req.resp:
			if len(r.probs) != 2 {
				t.Fatalf("request %d malformed response %+v", i, r)
			}
		default:
			t.Fatalf("request %d never answered", i)
		}
		select {
		case <-req.resp:
			t.Fatalf("request %d answered twice", i)
		default:
		}
	}
	hb := histogram(t, s.Stats(), "batch_size")
	if hb.Count != 1 || hb.Sum != n {
		t.Fatalf("batch_size count=%d sum=%g, want one batch of %d", hb.Count, hb.Sum, n)
	}
}

// TestShutdownDrainAnswersQueuedStragglers pins the drain edge: requests
// still sitting in the queue when stop closes (Shutdown racing the batcher's
// pickup) are answered by gather's flush and drain between them — every
// straggler exactly once, in MaxBatch-sized cuts.
func TestShutdownDrainAnswersQueuedStragglers(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	s := New(fw, Config{MaxBatch: 2, BatchWindow: time.Minute, MaxInflight: 64})

	const n = 7
	reqs := make([]*request, n)
	for i := range reqs {
		reqs[i] = &request{mat: mats[i%len(mats)], resp: make(chan response, 1), enq: time.Now()}
		s.queue <- reqs[i]
	}
	// Shut down immediately: no inflight callers, so stop closes while most
	// (racily, possibly all) of the queue is still unclaimed.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	for i, req := range reqs {
		select {
		case r := <-req.resp:
			if len(r.probs) != 2 {
				t.Fatalf("straggler %d malformed response %+v", i, r)
			}
		default:
			t.Fatalf("straggler %d never answered", i)
		}
		select {
		case <-req.resp:
			t.Fatalf("straggler %d answered twice", i)
		default:
		}
	}
	hb := histogram(t, s.Stats(), "batch_size")
	if hb.Sum != n {
		t.Fatalf("batch_size Sum = %g, want %d (each request observed exactly once)", hb.Sum, n)
	}
	// MaxBatch 2 forces ceil(7/2) = 4 cuts at minimum, however the
	// gather/drain race resolves.
	if hb.Count < 4 {
		t.Fatalf("batch_size Count = %d, want >= 4 cuts of <= 2", hb.Count)
	}
}

// TestShutdownForecastStragglers is the forecast-queue twin: abandoned
// forecast requests parked in the forecast batcher's gather are flushed
// exactly once with real predictions.
func TestShutdownForecastStragglers(t *testing.T) {
	fw, _ := trainedFramework(t, 3, 5)
	fc := testForecaster(4, 5, []int{1, 2})
	s := New(fw, Config{Forecaster: fc, MaxBatch: 32, BatchWindow: time.Minute, MaxInflight: 64})
	hists := testHistories(5, 4, 3, 5)

	reqs := make([]*frequest, len(hists))
	for i := range reqs {
		reqs[i] = &frequest{hist: hists[i], resp: make(chan fresponse, 1), enq: time.Now()}
		s.fqueue <- reqs[i]
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.fqueue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("forecast batcher never picked up the queue")
		}
		time.Sleep(time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	for i, req := range reqs {
		select {
		case r := <-req.resp:
			if r.err != nil || r.pred == nil || len(r.pred.Horizons) != 2 {
				t.Fatalf("forecast straggler %d: %+v", i, r)
			}
		default:
			t.Fatalf("forecast straggler %d never answered", i)
		}
		select {
		case <-req.resp:
			t.Fatalf("forecast straggler %d answered twice", i)
		default:
		}
	}
	hb := histogram(t, s.Stats(), "forecast_batch_size")
	if hb.Count != 1 || hb.Sum != float64(len(reqs)) {
		t.Fatalf("forecast_batch_size count=%d sum=%g, want one batch of %d", hb.Count, hb.Sum, len(reqs))
	}
}

// TestShutdownWithCanceledCallers drives the caller-side path end to end:
// callers whose contexts are already dead pass admission, enqueue, and
// return ctx.Err — and Shutdown still answers every orphaned request without
// hanging or double-observing.
func TestShutdownWithCanceledCallers(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	s := New(fw, Config{MaxBatch: 8, BatchWindow: time.Minute, MaxInflight: 64})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const abandoned = 6
	for i := 0; i < abandoned; i++ {
		if _, _, err := s.Predict(ctx, mats[i%len(mats)]); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled caller %d: %v", i, err)
		}
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	snap := s.Stats()
	hb := histogram(t, snap, "batch_size")
	// However the batcher's pickup raced the enqueues, each orphaned request
	// is observed exactly once across the gather flush and drain.
	if hb.Sum != abandoned {
		t.Fatalf("batch_size Sum = %g, want %d", hb.Sum, abandoned)
	}
	if v, _ := snap.Counter("serve", "", "requests"); v != abandoned {
		t.Fatalf("requests = %d, want %d", v, abandoned)
	}
	if _, _, err := s.Predict(context.Background(), mats[0]); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown Predict: %v", err)
	}
}
