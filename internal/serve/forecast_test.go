package serve

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
)

// testForecaster builds a small forecaster directly (identity scalers,
// seeded untrained kernel heads) — prediction determinism is all the serving
// tests need, not accuracy.
func testForecaster(history, nFeat int, horizons []int) *forecast.Forecaster {
	f := &forecast.Forecaster{History: history, Threshold: 1, Bins: label.BinaryBins()}
	for _, k := range horizons {
		scaler := &dataset.Scaler{Mean: make([]float64, 2*nFeat), Std: make([]float64, 2*nFeat)}
		for j := range scaler.Std {
			scaler.Std[j] = 1
		}
		f.Heads = append(f.Heads, &forecast.Head{
			Horizon: k,
			Model: ml.NewKernelModel(ml.KernelConfig{
				NTargets: history, NFeat: 2 * nFeat, Classes: 2, Seed: 31 + int64(k),
			}),
			Scaler: scaler,
		})
	}
	return f
}

// testHistories builds n distinct forecast inputs: history windows of
// [targets x nFeat] matrices.
func testHistories(n, history, targets, nFeat int) [][]window.Matrix {
	rng := sim.NewRNG(17)
	out := make([][]window.Matrix, n)
	for i := range out {
		hist := make([]window.Matrix, history)
		for w := range hist {
			mat := make(window.Matrix, targets)
			for t := range mat {
				row := make([]float64, nFeat)
				for f := range row {
					row[f] = rng.NormFloat64()
				}
				mat[t] = row
			}
			hist[w] = mat
		}
		out[i] = hist
	}
	return out
}

// TestForecastHTTPRoundTrip drives /forecast end to end: health advertises
// the forecaster shape, forecasts match a direct Forecaster.Predict
// bit-for-bit, and shape errors map to 400s.
func TestForecastHTTPRoundTrip(t *testing.T) {
	fw, _ := trainedFramework(t, 3, 5)
	fc := testForecaster(4, 5, []int{1, 2, 4})
	hists := testHistories(3, 4, 3, 5)
	want, err := fc.Predict(hists[0])
	if err != nil {
		t.Fatal(err)
	}

	s := New(fw, Config{Forecaster: fc})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ForecastHistory != 4 || len(h.ForecastHorizons) != 3 || h.ForecastHorizons[2] != 4 {
		t.Fatalf("health forecast shape = %+v", h)
	}

	resp, err := c.Forecast(ctx, hists[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Horizons) != 3 || len(resp.Labels) != 3 {
		t.Fatalf("forecast response %+v", resp)
	}
	for i := range want.Probs {
		if resp.Classes[i] != want.Classes[i] {
			t.Fatalf("horizon %d class %d, want %d", resp.Horizons[i], resp.Classes[i], want.Classes[i])
		}
		for j := range want.Probs[i] {
			if math.Float64bits(resp.Probs[i][j]) != math.Float64bits(want.Probs[i][j]) {
				t.Fatal("served probs differ from direct Predict")
			}
		}
	}
	if resp.LeadWindows != want.LeadWindows || resp.Degrading != want.Degrading() {
		t.Fatalf("lead %d/%v, want %d/%v", resp.LeadWindows, resp.Degrading, want.LeadWindows, want.Degrading())
	}

	// Wrong history length and wrong row width are 400s.
	if _, err := c.Forecast(ctx, hists[0][:2]); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short history: %v", err)
	}
	bad := testHistories(1, 4, 3, 7)[0]
	if _, err := c.Forecast(ctx, bad); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wide rows: %v", err)
	}
}

// TestForecastWithoutForecaster pins the disabled path: ErrNoForecaster
// locally, 404 with a typed code over HTTP, and no forecaster advertised in
// health.
func TestForecastWithoutForecaster(t *testing.T) {
	fw, _ := trainedFramework(t, 3, 5)
	s := New(fw, Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	if _, err := s.Forecast(ctx, testHistories(1, 4, 3, 5)[0]); !errors.Is(err, ErrNoForecaster) {
		t.Fatalf("local: %v", err)
	}
	c := NewClient(ts.URL)
	if _, err := c.Forecast(ctx, testHistories(1, 4, 3, 5)[0]); !errors.Is(err, ErrNoForecaster) {
		t.Fatalf("http: %v", err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ForecastHistory != 0 || h.ForecastHorizons != nil {
		t.Fatalf("health advertises a forecaster: %+v", h)
	}
}

// TestReloadForecaster: first load turns forecasting on, a shape-compatible
// swap changes answers for later requests only, and an incompatible shape is
// rejected with the old forecaster still serving.
func TestReloadForecaster(t *testing.T) {
	fw, _ := trainedFramework(t, 3, 5)
	s := New(fw, Config{})
	defer s.Shutdown(context.Background())
	ctx := context.Background()
	hist := testHistories(1, 4, 3, 5)[0]

	if err := s.ReloadForecaster(nil); err == nil {
		t.Fatal("nil forecaster accepted")
	}
	fc1 := testForecaster(4, 5, []int{1, 2})
	if err := s.ReloadForecaster(fc1); err != nil {
		t.Fatalf("first load: %v", err)
	}
	p1, err := s.Forecast(ctx, hist)
	if err != nil {
		t.Fatal(err)
	}

	// Different weights, same shape: accepted, answers change.
	fc2 := testForecaster(4, 5, []int{1, 2})
	fc2.Heads[0].Model = ml.NewKernelModel(ml.KernelConfig{
		NTargets: 4, NFeat: 10, Classes: 2, Seed: 999,
	})
	if err := s.ReloadForecaster(fc2); err != nil {
		t.Fatalf("compatible reload: %v", err)
	}
	p2, err := s.Forecast(ctx, hist)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range p1.Probs[0] {
		if p1.Probs[0][j] != p2.Probs[0][j] {
			same = false
		}
	}
	if same {
		t.Fatal("reload did not change served forecaster")
	}

	// Wrong shape: rejected, fc2 keeps serving.
	if err := s.ReloadForecaster(testForecaster(6, 5, []int{1})); err == nil {
		t.Fatal("history-mismatched forecaster accepted")
	}
	if err := s.ReloadForecaster(testForecaster(4, 9, []int{1})); err == nil {
		t.Fatal("feature-mismatched forecaster accepted")
	}
	if got := s.Forecaster(); got != fc2 {
		t.Fatal("failed reload disturbed the served forecaster")
	}
}

// TestForecastConcurrentDeterministic is the forecast twin of the batching
// correctness pin: concurrent forecasts and predictions interleave through
// their separate batchers, and every forecast matches the lone-call answer
// bit-for-bit. Run under -race in make verify.
func TestForecastConcurrentDeterministic(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	fc := testForecaster(4, 5, []int{1, 2})
	hists := testHistories(8, 4, 3, 5)
	want := make([]*forecast.Prediction, len(hists))
	for i, h := range hists {
		p, err := fc.Predict(h)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	s := New(fw, Config{
		Forecaster:  fc,
		MaxBatch:    8,
		BatchWindow: 200 * time.Microsecond,
		MaxInflight: 1024,
	})
	defer s.Shutdown(context.Background())

	const clients, iters = 16, 25
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 2*clients)
	for c := 0; c < clients; c++ {
		wg.Add(2)
		go func(c int) { // forecast load
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (c + it) % len(hists)
				p, err := s.Forecast(ctx, hists[i])
				if err != nil {
					errCh <- err
					return
				}
				for hi := range want[i].Probs {
					for j := range want[i].Probs[hi] {
						if math.Float64bits(p.Probs[hi][j]) != math.Float64bits(want[i].Probs[hi][j]) {
							errCh <- errors.New("forecast diverged under concurrency")
							return
						}
					}
				}
			}
		}(c)
		go func(c int) { // prediction load on the same server
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if _, _, err := s.Predict(ctx, mats[(c+it)%len(mats)]); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	snap := s.Stats()
	if v, _ := snap.Counter("serve", "", "forecasts"); v != clients*iters {
		t.Fatalf("forecasts = %d, want %d", v, clients*iters)
	}
	for _, hv := range snap.Histograms {
		if hv.Key.Name == "forecast_batch_size" && hv.Count >= uint64(clients*iters) {
			t.Fatalf("forecast batches = %d for %d requests: no batching happened", hv.Count, clients*iters)
		}
	}
}
