package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"quanterference/internal/monitor/window"
)

// PredictRequest is the /predict request body: one raw (unscaled) window
// matrix, [targets][features], exactly what core.Framework.Predict takes.
type PredictRequest struct {
	Matrix [][]float64 `json:"matrix"`
}

// PredictResponse is the /predict response body.
type PredictResponse struct {
	// Class is the predicted degradation class.
	Class int `json:"class"`
	// Label is the class's human-readable bin name (e.g. ">=2x").
	Label string `json:"label"`
	// Probs is the class probability distribution.
	Probs []float64 `json:"probs"`
}

// Health is the /healthz response body: liveness plus the loaded model's
// shape, enough for a client to validate inputs and reconstruct label.Bins.
type Health struct {
	Status string `json:"status"`
	// Targets and Features describe the expected matrix shape (Targets 0
	// means any row count).
	Targets  int `json:"targets"`
	Features int `json:"features"`
	Classes  int `json:"classes"`
	// Thresholds are the degradation bin edges (label.Bins.Thresholds).
	Thresholds []float64 `json:"thresholds"`
}

// retryAfterSeconds is the backoff hint attached to 503 responses (body and
// Retry-After header): the queue drains within one batch window at healthy
// load, so one second is a conservative round number.
const retryAfterSeconds = 1

// reloadRequest optionally overrides the reload path.
type reloadRequest struct {
	Path string `json:"path"`
}

// Error codes carried in error response bodies so typed clients can map an
// HTTP failure back to the server-side sentinel without parsing prose.
const (
	codeOverloaded   = "overloaded"
	codeShuttingDown = "shutting_down"
	codeBadInput     = "bad_input"
)

type errorResponse struct {
	Error string `json:"error"`
	// Code names the sentinel behind the failure (one of the code*
	// constants); empty for untyped errors.
	Code string `json:"code,omitempty"`
	// RetryAfterSeconds hints when a shed (503) request is worth retrying —
	// the body-level mirror of the Retry-After header, so clients that only
	// see the decoded JSON still get the hint.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST /predict       {"matrix": [[...], ...]} -> PredictResponse
//	GET  /healthz       -> Health
//	GET  /stats         -> obs snapshot JSON (counters, batch histogram, latencies)
//	POST /admin/reload  {"path": "..."} (optional body) -> {"reloaded": true}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/admin/reload", s.handleReload)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	class, probs, err := s.Predict(r.Context(), window.Matrix(req.Matrix))
	if err != nil {
		status := http.StatusInternalServerError
		body := errorResponse{Error: err.Error()}
		switch {
		case errors.Is(err, ErrBadInput):
			status = http.StatusBadRequest
			body.Code = codeBadInput
		case errors.Is(err, ErrOverloaded):
			status = http.StatusServiceUnavailable
			body.Code = codeOverloaded
			body.RetryAfterSeconds = retryAfterSeconds
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrShuttingDown):
			status = http.StatusServiceUnavailable
			body.Code = codeShuttingDown
			body.RetryAfterSeconds = retryAfterSeconds
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, body)
		return
	}
	fw := s.fw.Load()
	writeJSON(w, http.StatusOK, PredictResponse{
		Class: class, Label: fw.Bins.Name(class), Probs: probs,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fw := s.fw.Load()
	nTargets, nFeat := fw.Dims()
	writeJSON(w, http.StatusOK, Health{
		Status:     "ok",
		Targets:    nTargets,
		Features:   nFeat,
		Classes:    fw.Classes(),
		Thresholds: fw.Bins.Thresholds,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.Stats().WriteJSON(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req reloadRequest
	if r.Body != nil {
		// An empty body means "reload the configured path".
		_ = json.NewDecoder(r.Body).Decode(&req)
	}
	if err := s.Reload(req.Path); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"reloaded": true})
}
