package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"quanterference/internal/monitor/window"
)

// PredictRequest is the /predict request body: one raw (unscaled) window
// matrix, [targets][features], exactly what core.Framework.Predict takes.
type PredictRequest struct {
	Matrix [][]float64 `json:"matrix"`
}

// PredictResponse is the /predict response body.
type PredictResponse struct {
	// Class is the predicted degradation class.
	Class int `json:"class"`
	// Label is the class's human-readable bin name (e.g. ">=2x").
	Label string `json:"label"`
	// Probs is the class probability distribution.
	Probs []float64 `json:"probs"`
}

// ForecastRequest is the /forecast request body: the last History raw window
// matrices, oldest first — [windows][targets][features].
type ForecastRequest struct {
	History [][][]float64 `json:"history"`
}

// ForecastResponse is the /forecast response body: one predicted class and
// distribution per horizon, plus the derived time-to-degradation.
type ForecastResponse struct {
	// Horizons, Classes, Labels, and Probs are parallel: Classes[i] is the
	// predicted slowdown class Horizons[i] windows ahead.
	Horizons []int       `json:"horizons"`
	Classes  []int       `json:"classes"`
	Labels   []string    `json:"labels"`
	Probs    [][]float64 `json:"probs"`
	// LeadWindows is the smallest horizon predicting degradation (0 = none).
	LeadWindows int  `json:"lead_windows"`
	Degrading   bool `json:"degrading"`
}

// Health is the /healthz response body: liveness plus the loaded model's
// shape, enough for a client to validate inputs and reconstruct label.Bins.
type Health struct {
	Status string `json:"status"`
	// Targets and Features describe the expected matrix shape (Targets 0
	// means any row count).
	Targets  int `json:"targets"`
	Features int `json:"features"`
	Classes  int `json:"classes"`
	// Thresholds are the degradation bin edges (label.Bins.Thresholds).
	Thresholds []float64 `json:"thresholds"`
	// ForecastHistory and ForecastHorizons describe the loaded forecaster
	// (/forecast input shape); both absent when forecasting is disabled.
	ForecastHistory  int   `json:"forecast_history,omitempty"`
	ForecastHorizons []int `json:"forecast_horizons,omitempty"`
}

// retryAfterSeconds is the backoff hint attached to 503 responses (body and
// Retry-After header): the queue drains within one batch window at healthy
// load, so one second is a conservative round number.
const retryAfterSeconds = 1

// reloadRequest optionally overrides the reload path.
type reloadRequest struct {
	Path string `json:"path"`
}

// Error codes carried in error response bodies so typed clients can map an
// HTTP failure back to the server-side sentinel without parsing prose.
const (
	codeOverloaded   = "overloaded"
	codeShuttingDown = "shutting_down"
	codeBadInput     = "bad_input"
	codeNoForecaster = "no_forecaster"
)

type errorResponse struct {
	Error string `json:"error"`
	// Code names the sentinel behind the failure (one of the code*
	// constants); empty for untyped errors.
	Code string `json:"code,omitempty"`
	// RetryAfterSeconds hints when a shed (503) request is worth retrying —
	// the body-level mirror of the Retry-After header, so clients that only
	// see the decoded JSON still get the hint.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST /predict       {"matrix": [[...], ...]} -> PredictResponse
//	POST /forecast      {"history": [[[...], ...], ...]} -> ForecastResponse
//	GET  /healthz       -> Health
//	GET  /stats         -> obs snapshot JSON (counters, batch histogram, latencies)
//	POST /admin/reload  {"path": "..."} (optional body) -> {"reloaded": true}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/forecast", s.handleForecast)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/admin/reload", s.handleReload)
	return mux
}

// writeServeError maps a Predict/Forecast error to its HTTP status and typed
// body (the code constants clients rely on).
func writeServeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	body := errorResponse{Error: err.Error()}
	switch {
	case errors.Is(err, ErrBadInput):
		status = http.StatusBadRequest
		body.Code = codeBadInput
	case errors.Is(err, ErrNoForecaster):
		status = http.StatusNotFound
		body.Code = codeNoForecaster
	case errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
		body.Code = codeOverloaded
		body.RetryAfterSeconds = retryAfterSeconds
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
		body.Code = codeShuttingDown
		body.RetryAfterSeconds = retryAfterSeconds
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	class, probs, err := s.Predict(r.Context(), window.Matrix(req.Matrix))
	if err != nil {
		writeServeError(w, err)
		return
	}
	fw := s.fw.Load()
	writeJSON(w, http.StatusOK, PredictResponse{
		Class: class, Label: fw.Bins.Name(class), Probs: probs,
	})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req ForecastRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	hist := make([]window.Matrix, len(req.History))
	for i, mat := range req.History {
		hist[i] = window.Matrix(mat)
	}
	pred, err := s.Forecast(r.Context(), hist)
	if err != nil {
		writeServeError(w, err)
		return
	}
	fc := s.fc.Load()
	labels := make([]string, len(pred.Classes))
	for i, c := range pred.Classes {
		labels[i] = fc.Bins.Name(c)
	}
	writeJSON(w, http.StatusOK, ForecastResponse{
		Horizons:    pred.Horizons,
		Classes:     pred.Classes,
		Labels:      labels,
		Probs:       pred.Probs,
		LeadWindows: pred.LeadWindows,
		Degrading:   pred.Degrading(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fw := s.fw.Load()
	nTargets, nFeat := fw.Dims()
	h := Health{
		Status:     "ok",
		Targets:    nTargets,
		Features:   nFeat,
		Classes:    fw.Classes(),
		Thresholds: fw.Bins.Thresholds,
	}
	if fc := s.fc.Load(); fc != nil {
		h.ForecastHistory, _ = fc.Dims()
		h.ForecastHorizons = fc.Horizons()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.Stats().WriteJSON(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req reloadRequest
	if r.Body != nil {
		// An empty body means "reload the configured path".
		_ = json.NewDecoder(r.Body).Decode(&req)
	}
	if err := s.Reload(req.Path); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"reloaded": true})
}
