package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"quanterference/internal/monitor/window"
)

// APIVersion names the HTTP surface mounted under /v1/. Replicas advertise
// it on /v1/healthz; the fleet coordinator refuses to route to replicas
// whose version differs from the fleet's.
const APIVersion = "v1"

// PredictRequest is the /v1/predict request body: one raw (unscaled) window
// matrix, [targets][features], exactly what core.Framework.Predict takes.
type PredictRequest struct {
	Matrix [][]float64 `json:"matrix"`
}

// PredictResponse is the /v1/predict response body.
type PredictResponse struct {
	// Class is the predicted degradation class.
	Class int `json:"class"`
	// Label is the class's human-readable bin name (e.g. ">=2x").
	Label string `json:"label"`
	// Probs is the class probability distribution.
	Probs []float64 `json:"probs"`
	// ModelDigest identifies the framework weights that answered
	// (ml.WeightsDigest) — the consistency stamp the fleet layer checks.
	ModelDigest string `json:"model_digest"`
}

// ForecastRequest is the /v1/forecast request body: the last History raw
// window matrices, oldest first — [windows][targets][features].
type ForecastRequest struct {
	History [][][]float64 `json:"history"`
}

// ForecastResponse is the /v1/forecast response body: one predicted class
// and distribution per horizon, plus the derived time-to-degradation.
type ForecastResponse struct {
	// Horizons, Classes, Labels, and Probs are parallel: Classes[i] is the
	// predicted slowdown class Horizons[i] windows ahead.
	Horizons []int       `json:"horizons"`
	Classes  []int       `json:"classes"`
	Labels   []string    `json:"labels"`
	Probs    [][]float64 `json:"probs"`
	// LeadWindows is the smallest horizon predicting degradation (0 = none).
	LeadWindows int  `json:"lead_windows"`
	Degrading   bool `json:"degrading"`
	// ModelDigest identifies the forecaster weights that answered.
	ModelDigest string `json:"model_digest"`
}

// ShadowEvaluator is the slice of a shadow evaluator (internal/shadow's
// *Evaluator) the serving layer drives: the mirror tap the batcher calls
// right before answering each request, plus the scoreboard /v1/shadow
// serves. The interface lives here — rather than serve importing
// internal/shadow — because the evaluator layers above the serving layer
// exactly like the fleet coordinator does (and the continuous-learning
// layer, which the shadow gate builds on, already imports serve).
type ShadowEvaluator interface {
	// Mirror must be safe for concurrent callers and must never block: the
	// batcher calls it on the serving path.
	Mirror(mat window.Matrix, class int)
	// Sync drains the async mirror queue so the scoreboard reflects every
	// reply the caller has already received.
	Sync()
	// Status snapshots the champion/challenger scoreboard.
	Status() ShadowStatus
}

// ShadowCandidate is one candidate's row in the /v1/shadow scoreboard.
type ShadowCandidate struct {
	Name    string `json:"name"`
	Samples int    `json:"samples"`
	// Accuracy and CE are the candidate's cumulative accuracy and mean
	// cross-entropy over the labeled mirrored traffic this epoch.
	Accuracy float64 `json:"accuracy"`
	CE       float64 `json:"ce"`
}

// ShadowStatus is the /v1/shadow response body: the live
// champion/challenger scoreboard plus the mirror-plumbing counters.
type ShadowStatus struct {
	Champion    ShadowCandidate   `json:"champion"`
	Challengers []ShadowCandidate `json:"challengers,omitempty"`
	// Mirrored and Dropped count mirror offers accepted / shed by the
	// bounded queue; QueueDepth is the queue's current backlog.
	Mirrored   uint64 `json:"mirrored"`
	Dropped    uint64 `json:"dropped"`
	QueueDepth int    `json:"queue_depth"`
	// Pending counts mirrored events still awaiting their delayed label.
	Pending int `json:"pending"`
	// Labeled, Unmatched, and Evicted count labels scored, labels with no
	// mirrored event to join, and pending events evicted unlabeled.
	Labeled   uint64 `json:"labeled"`
	Unmatched uint64 `json:"unmatched"`
	Evicted   uint64 `json:"evicted"`
	// Mismatches counts labeled events whose mirrored reply disagreed with
	// the evaluator's champion clone (a stale-scoreboard signal).
	Mismatches uint64 `json:"mirror_mismatches"`
	// Verdicts counts gate evaluations this epoch.
	Verdicts uint64 `json:"verdicts"`
	// MinSamples and Margin are the gate's current promotion bar.
	MinSamples int     `json:"min_samples"`
	Margin     float64 `json:"margin"`
}

// Health is the /v1/healthz response body: liveness, the API version, the
// served weight digests, and the loaded model's shape — enough for a client
// to validate inputs, reconstruct label.Bins, and for a fleet coordinator to
// refuse mixed-version replicas.
type Health struct {
	Status string `json:"status"`
	// APIVersion is the route version this replica speaks (serve.APIVersion).
	APIVersion string `json:"api_version"`
	// ModelDigest / ForecasterDigest identify the served weights
	// (ml.WeightsDigest); ForecasterDigest is absent when forecasting is
	// disabled.
	ModelDigest      string `json:"model_digest"`
	ForecasterDigest string `json:"forecaster_digest,omitempty"`
	// Targets and Features describe the expected matrix shape (Targets 0
	// means any row count).
	Targets  int `json:"targets"`
	Features int `json:"features"`
	Classes  int `json:"classes"`
	// Thresholds are the degradation bin edges (label.Bins.Thresholds).
	Thresholds []float64 `json:"thresholds"`
	// ForecastHistory and ForecastHorizons describe the loaded forecaster
	// (/v1/forecast input shape); both absent when forecasting is disabled.
	ForecastHistory  int   `json:"forecast_history,omitempty"`
	ForecastHorizons []int `json:"forecast_horizons,omitempty"`
}

// retryAfterSeconds is the backoff hint attached to 503 responses (body and
// Retry-After header): the queue drains within one batch window at healthy
// load, so one second is a conservative round number.
const retryAfterSeconds = 1

// reloadRequest optionally overrides the reload path.
type reloadRequest struct {
	Path string `json:"path"`
}

// Error codes carried in error response bodies so typed clients can map an
// HTTP failure back to the server-side sentinel without parsing prose.
const (
	codeOverloaded   = "overloaded"
	codeShuttingDown = "shutting_down"
	codeBadInput     = "bad_input"
	codeNoForecaster = "no_forecaster"
	codeNoShadow     = "no_shadow"
)

type errorResponse struct {
	Error string `json:"error"`
	// Code names the sentinel behind the failure (one of the code*
	// constants); empty for untyped errors.
	Code string `json:"code,omitempty"`
	// RetryAfterSeconds hints when a shed (503) request is worth retrying —
	// the body-level mirror of the Retry-After header, so clients that only
	// see the decoded JSON still get the hint.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// Handler returns the server's versioned HTTP API:
//
//	POST /v1/predict       {"matrix": [[...], ...]} -> PredictResponse
//	POST /v1/forecast      {"history": [[[...], ...], ...]} -> ForecastResponse
//	GET  /v1/healthz       -> Health
//	GET  /v1/stats         -> obs snapshot JSON (counters, batch histogram, latencies)
//	GET  /v1/shadow        -> shadow.Status (champion/challenger scoreboard; 404 without a shadow evaluator)
//	POST /v1/admin/reload  {"path": "..."} (optional body) -> {"reloaded": true}
//
// Every route is also mounted at its original unversioned path as a
// deprecated shim for pre-v1 clients; shim responses carry a
// "Deprecation: true" header and behave identically otherwise. New clients
// (serve.Client included) speak /v1/ only.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"/predict":      s.handlePredict,
		"/forecast":     s.handleForecast,
		"/healthz":      s.handleHealthz,
		"/stats":        s.handleStats,
		"/shadow":       s.handleShadow,
		"/admin/reload": s.handleReload,
	}
	for path, h := range routes {
		mux.HandleFunc("/"+APIVersion+path, h)
		mux.HandleFunc(path, deprecatedShim(h))
	}
	return mux
}

// deprecatedShim marks an unversioned alias response as deprecated without
// changing its behavior.
func deprecatedShim(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</"+APIVersion+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// writeServeError maps a Predict/Forecast error to its HTTP status and typed
// body (the code constants clients rely on).
func writeServeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	body := errorResponse{Error: err.Error()}
	switch {
	case errors.Is(err, ErrBadInput):
		status = http.StatusBadRequest
		body.Code = codeBadInput
	case errors.Is(err, ErrNoForecaster):
		status = http.StatusNotFound
		body.Code = codeNoForecaster
	case errors.Is(err, ErrNoShadow):
		status = http.StatusNotFound
		body.Code = codeNoShadow
	case errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
		body.Code = codeOverloaded
		body.RetryAfterSeconds = retryAfterSeconds
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
		body.Code = codeShuttingDown
		body.RetryAfterSeconds = retryAfterSeconds
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	class, probs, err := s.Predict(r.Context(), window.Matrix(req.Matrix))
	if err != nil {
		writeServeError(w, err)
		return
	}
	fw := s.fw.Load()
	writeJSON(w, http.StatusOK, PredictResponse{
		Class: class, Label: fw.Bins.Name(class), Probs: probs,
		ModelDigest: s.ModelDigest(),
	})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req ForecastRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	hist := make([]window.Matrix, len(req.History))
	for i, mat := range req.History {
		hist[i] = window.Matrix(mat)
	}
	pred, err := s.Forecast(r.Context(), hist)
	if err != nil {
		writeServeError(w, err)
		return
	}
	fc := s.fc.Load()
	labels := make([]string, len(pred.Classes))
	for i, c := range pred.Classes {
		labels[i] = fc.Bins.Name(c)
	}
	writeJSON(w, http.StatusOK, ForecastResponse{
		Horizons:    pred.Horizons,
		Classes:     pred.Classes,
		Labels:      labels,
		Probs:       pred.Probs,
		LeadWindows: pred.LeadWindows,
		Degrading:   pred.Degrading(),
		ModelDigest: s.ForecasterDigest(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fw := s.fw.Load()
	nTargets, nFeat := fw.Dims()
	h := Health{
		Status:      "ok",
		APIVersion:  APIVersion,
		ModelDigest: s.ModelDigest(),
		Targets:     nTargets,
		Features:    nFeat,
		Classes:     fw.Classes(),
		Thresholds:  fw.Bins.Thresholds,
	}
	if fc := s.fc.Load(); fc != nil {
		h.ForecastHistory, _ = fc.Dims()
		h.ForecastHorizons = fc.Horizons()
		h.ForecasterDigest = s.ForecasterDigest()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleShadow(w http.ResponseWriter, r *http.Request) {
	ev := s.cfg.Shadow
	if ev == nil {
		writeServeError(w, ErrNoShadow)
		return
	}
	// Drain the mirror queue first so the scoreboard reflects every reply
	// the caller has already seen (the batcher mirrors before answering).
	ev.Sync()
	writeJSON(w, http.StatusOK, ev.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.Stats().WriteJSON(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req reloadRequest
	if r.Body != nil {
		// An empty body means "reload the configured path".
		_ = json.NewDecoder(r.Body).Decode(&req)
	}
	if err := s.Reload(req.Path); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"reloaded": true})
}
