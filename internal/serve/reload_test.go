package serve

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"quanterference/internal/monitor/window"
)

// TestReloadFrameworkPromotion pins the in-process hot-swap path the
// continuous-learning loop uses: a shape-compatible candidate replaces the
// served framework atomically, a mismatched one is rejected without
// disturbing service, and ownership of the promoted framework transfers.
func TestReloadFrameworkPromotion(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	candidate, err := fw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	wantClass, wantProbs := fw.Predict(mats[0])

	s := New(fw, Config{})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	if err := s.ReloadFramework(candidate); err != nil {
		t.Fatalf("compatible candidate rejected: %v", err)
	}
	if s.Framework() != candidate {
		t.Fatal("served framework is not the promoted candidate")
	}
	class, probs, err := s.Predict(ctx, mats[0])
	if err != nil {
		t.Fatal(err)
	}
	if class != wantClass {
		t.Fatalf("class %d after promotion, want %d", class, wantClass)
	}
	for i := range wantProbs {
		if math.Float64bits(probs[i]) != math.Float64bits(wantProbs[i]) {
			t.Fatalf("probs %v after promotion, want %v", probs, wantProbs)
		}
	}

	// Wrong input shape: rejected, incumbent keeps serving.
	wrong, _ := trainedFramework(t, 3, 7)
	if err := s.ReloadFramework(wrong); err == nil {
		t.Fatal("mismatched candidate accepted")
	}
	if err := s.ReloadFramework(nil); err == nil {
		t.Fatal("nil candidate accepted")
	}
	if s.Framework() != candidate {
		t.Fatal("failed reload replaced the served framework")
	}
	if _, _, err := s.Predict(ctx, mats[0]); err != nil {
		t.Fatalf("service disturbed by rejected reload: %v", err)
	}
}

// TestClientTypedErrors pins the client-side mapping of error bodies back to
// the server sentinels: 503 overloaded and shutting_down become
// OverloadedError (errors.Is-matching ErrOverloaded / ErrShuttingDown) with
// the body's retry-after hint, and 400 bad_input matches ErrBadInput.
func TestClientTypedErrors(t *testing.T) {
	var body errorResponse
	var status int
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, status, body)
	}))
	defer stub.Close()
	c := NewClient(stub.URL)
	ctx := context.Background()
	mat := window.Matrix{{1, 2, 3}}

	status = http.StatusServiceUnavailable
	body = errorResponse{Error: "queue full (256)", Code: codeOverloaded, RetryAfterSeconds: 2.5}
	_, err := c.Predict(ctx, mat)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded 503 = %v, want errors.Is ErrOverloaded", err)
	}
	if errors.Is(err, ErrShuttingDown) {
		t.Fatal("overloaded 503 also matched ErrShuttingDown")
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overloaded 503 = %T, want *OverloadedError", err)
	}
	if oe.RetryAfter != 2500*time.Millisecond || oe.ShuttingDown {
		t.Fatalf("OverloadedError = %+v, want RetryAfter 2.5s, not shutting down", oe)
	}
	if !strings.Contains(oe.Error(), "queue full") {
		t.Fatalf("error message lost the server detail: %q", oe.Error())
	}

	// No hint in the body: the client falls back to the protocol default.
	body = errorResponse{Error: "queue full", Code: codeOverloaded}
	_, err = c.Predict(ctx, mat)
	if !errors.As(err, &oe) || oe.RetryAfter != retryAfterSeconds*time.Second {
		t.Fatalf("default retry-after = %v, want %ds", err, retryAfterSeconds)
	}

	body = errorResponse{Error: "draining", Code: codeShuttingDown, RetryAfterSeconds: 1}
	_, err = c.Predict(ctx, mat)
	if !errors.Is(err, ErrShuttingDown) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("shutting-down 503 = %v, want errors.Is ErrShuttingDown only", err)
	}
	if !errors.As(err, &oe) || !oe.ShuttingDown {
		t.Fatalf("shutting-down 503 = %+v, want ShuttingDown set", err)
	}

	status = http.StatusBadRequest
	body = errorResponse{Error: "row 0 has 3 features", Code: codeBadInput}
	_, err = c.Predict(ctx, mat)
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad-input 400 = %v, want errors.Is ErrBadInput", err)
	}

	// Untyped failure bodies stay plain errors, no sentinel match.
	status = http.StatusInternalServerError
	body = errorResponse{Error: "boom"}
	_, err = c.Predict(ctx, mat)
	if err == nil || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrBadInput) {
		t.Fatalf("untyped 500 = %v, want plain error", err)
	}
}

// TestClientShuttingDownEndToEnd drives the real server: once Shutdown has
// begun, an HTTP predict comes back as a typed shutting-down error.
func TestClientShuttingDownEndToEnd(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	s := New(fw, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, err := NewClient(ts.URL).Predict(context.Background(), mats[0])
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("predict after shutdown = %v, want errors.Is ErrShuttingDown", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || !oe.ShuttingDown || oe.RetryAfter <= 0 {
		t.Fatalf("predict after shutdown = %+v, want ShuttingDown with retry hint", err)
	}
}
