package serve

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quanterference/internal/monitor/window"
)

// TestReloadFrameworkPromotion pins the in-process hot-swap path the
// continuous-learning loop uses: a shape-compatible candidate replaces the
// served framework atomically, a mismatched one is rejected without
// disturbing service, and ownership of the promoted framework transfers.
func TestReloadFrameworkPromotion(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	candidate, err := fw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	wantClass, wantProbs := fw.Predict(mats[0])

	s := New(fw, Config{})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	if err := s.ReloadFramework(candidate); err != nil {
		t.Fatalf("compatible candidate rejected: %v", err)
	}
	if s.Framework() != candidate {
		t.Fatal("served framework is not the promoted candidate")
	}
	class, probs, err := s.Predict(ctx, mats[0])
	if err != nil {
		t.Fatal(err)
	}
	if class != wantClass {
		t.Fatalf("class %d after promotion, want %d", class, wantClass)
	}
	for i := range wantProbs {
		if math.Float64bits(probs[i]) != math.Float64bits(wantProbs[i]) {
			t.Fatalf("probs %v after promotion, want %v", probs, wantProbs)
		}
	}

	// Wrong input shape: rejected, incumbent keeps serving.
	wrong, _ := trainedFramework(t, 3, 7)
	if err := s.ReloadFramework(wrong); err == nil {
		t.Fatal("mismatched candidate accepted")
	}
	if err := s.ReloadFramework(nil); err == nil {
		t.Fatal("nil candidate accepted")
	}
	if s.Framework() != candidate {
		t.Fatal("failed reload replaced the served framework")
	}
	if _, _, err := s.Predict(ctx, mats[0]); err != nil {
		t.Fatalf("service disturbed by rejected reload: %v", err)
	}
}

// TestClientTypedErrors pins the client-side mapping of error bodies back to
// the server sentinels: every non-200 becomes one *APIError carrying the
// status and server code, errors.Is-matching ErrOverloaded / ErrShuttingDown
// / ErrBadInput, with the body's retry-after hint on 503s.
func TestClientTypedErrors(t *testing.T) {
	var body errorResponse
	var status int
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, status, body)
	}))
	defer stub.Close()
	c := NewClient(stub.URL)
	ctx := context.Background()
	mat := window.Matrix{{1, 2, 3}}

	status = http.StatusServiceUnavailable
	body = errorResponse{Error: "queue full (256)", Code: codeOverloaded, RetryAfterSeconds: 2.5}
	_, err := c.Predict(ctx, mat)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded 503 = %v, want errors.Is ErrOverloaded", err)
	}
	if errors.Is(err, ErrShuttingDown) {
		t.Fatal("overloaded 503 also matched ErrShuttingDown")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("overloaded 503 = %T, want *APIError", err)
	}
	if ae.Status != http.StatusServiceUnavailable || ae.Code != codeOverloaded ||
		ae.RetryAfter != 2500*time.Millisecond {
		t.Fatalf("APIError = %+v, want 503/overloaded with RetryAfter 2.5s", ae)
	}
	if !strings.Contains(ae.Error(), "queue full") {
		t.Fatalf("error message lost the server detail: %q", ae.Error())
	}

	// No hint in the body: the client falls back to the protocol default.
	body = errorResponse{Error: "queue full", Code: codeOverloaded}
	_, err = c.Predict(ctx, mat)
	if !errors.As(err, &ae) || ae.RetryAfter != retryAfterSeconds*time.Second {
		t.Fatalf("default retry-after = %v, want %ds", err, retryAfterSeconds)
	}

	body = errorResponse{Error: "draining", Code: codeShuttingDown, RetryAfterSeconds: 1}
	_, err = c.Predict(ctx, mat)
	if !errors.Is(err, ErrShuttingDown) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("shutting-down 503 = %v, want errors.Is ErrShuttingDown only", err)
	}
	if !errors.As(err, &ae) || ae.Code != codeShuttingDown {
		t.Fatalf("shutting-down 503 = %+v, want Code shutting_down", err)
	}

	status = http.StatusBadRequest
	body = errorResponse{Error: "row 0 has 3 features", Code: codeBadInput}
	_, err = c.Predict(ctx, mat)
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad-input 400 = %v, want errors.Is ErrBadInput", err)
	}
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad-input 400 = %+v, want APIError with Status 400", err)
	}

	// Untyped failure bodies stay APIErrors with the status, no sentinel
	// match.
	status = http.StatusInternalServerError
	body = errorResponse{Error: "boom"}
	_, err = c.Predict(ctx, mat)
	if err == nil || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrBadInput) {
		t.Fatalf("untyped 500 = %v, want no sentinel match", err)
	}
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError || ae.Code != "" {
		t.Fatalf("untyped 500 = %+v, want bare APIError{Status: 500}", err)
	}
}

// TestClientRetry pins WithRetry: transient 503 overloaded sheds are
// retried with the configured gap (bounded by the server hint), draining
// servers are not.
func TestClientRetry(t *testing.T) {
	var mu sync.Mutex
	var calls int
	var failures int
	var code string
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= failures {
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "shed", Code: code, RetryAfterSeconds: 0.001})
			return
		}
		writeJSON(w, http.StatusOK, PredictResponse{Class: 1, Probs: []float64{0, 1}})
	}))
	defer stub.Close()
	ctx := context.Background()
	mat := window.Matrix{{1}}

	// Two sheds, then success: three attempts fit in WithRetry(2, ...).
	c := NewClient(stub.URL, WithRetry(2, time.Millisecond))
	mu.Lock()
	calls, failures, code = 0, 2, codeOverloaded
	mu.Unlock()
	resp, err := c.Predict(ctx, mat)
	if err != nil || resp.Class != 1 {
		t.Fatalf("retried predict = %+v, %v; want success after 2 sheds", resp, err)
	}
	if calls != 3 {
		t.Fatalf("server saw %d calls, want 3", calls)
	}

	// More sheds than retries: the final overloaded error surfaces.
	mu.Lock()
	calls, failures = 0, 5
	mu.Unlock()
	if _, err := c.Predict(ctx, mat); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded", err)
	}
	if calls != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", calls)
	}

	// Shutting down is not retryable: one attempt only.
	mu.Lock()
	calls, failures, code = 0, 5, codeShuttingDown
	mu.Unlock()
	if _, err := c.Predict(ctx, mat); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("draining server = %v, want ErrShuttingDown", err)
	}
	if calls != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry while draining)", calls)
	}
}

// TestClientShuttingDownEndToEnd drives the real server: once Shutdown has
// begun, an HTTP predict comes back as a typed shutting-down error.
func TestClientShuttingDownEndToEnd(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	s := New(fw, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, err := NewClient(ts.URL).Predict(context.Background(), mats[0])
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("predict after shutdown = %v, want errors.Is ErrShuttingDown", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != codeShuttingDown || ae.RetryAfter <= 0 {
		t.Fatalf("predict after shutdown = %+v, want shutting_down APIError with retry hint", err)
	}
}
