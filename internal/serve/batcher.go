package serve

import "time"

// batcher is the single goroutine with the right to touch a Framework's
// prediction scratch. It blocks for the first request, gathers more until
// MaxBatch or BatchWindow, and answers the whole batch from one PredictBatch
// call. On shutdown it drains whatever is still queued before exiting, so
// every admitted request is answered.
func (s *Server) batcher() {
	defer close(s.done)
	for {
		var first *request
		select {
		case first = <-s.queue:
		case <-s.stop:
			s.drain()
			return
		}
		batch := s.gather(first)
		s.runBatch(batch)
	}
}

// gather collects requests after the first until the batch is full, the
// batch window elapses, or shutdown begins (which flushes immediately —
// queued stragglers are answered by drain).
func (s *Server) gather(first *request) []*request {
	batch := append(make([]*request, 0, s.cfg.MaxBatch), first)
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case req := <-s.queue:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// drain answers everything still queued at shutdown, in full batches.
func (s *Server) drain() {
	for {
		batch := make([]*request, 0, s.cfg.MaxBatch)
		for len(batch) < s.cfg.MaxBatch {
			select {
			case req := <-s.queue:
				batch = append(batch, req)
			default:
				if len(batch) > 0 {
					s.runBatch(batch)
				}
				return
			}
		}
		s.runBatch(batch)
	}
}

// runBatch classifies one gathered batch. The framework pointer is loaded
// once per batch: a concurrent Reload affects only later batches, and each
// Framework owns its own scratch, so the swap is race-free.
func (s *Server) runBatch(batch []*request) {
	fw := s.fw.Load()
	mats := s.batchMats[:0]
	for _, req := range batch {
		mats = append(mats, req.mat)
		s.hQueueNS.Observe(float64(time.Since(req.enq)))
	}
	s.batchMats = mats[:0]

	start := time.Now()
	cls, probs := fw.PredictBatch(mats)
	s.hModelNS.Observe(float64(time.Since(start)))
	s.mBatches.Inc()
	s.hBatch.Observe(float64(len(batch)))

	for i, req := range batch {
		// Copy out: the framework reuses its probability rows on the next
		// batch, but the caller's slice must stay valid indefinitely.
		req.resp <- response{class: cls[i], probs: append([]float64(nil), probs[i]...)}
	}
}
