package serve

import "time"

// gatherQueue collects requests after the first until the batch is full, the
// batch window elapses, or shutdown begins (which flushes immediately —
// queued stragglers are answered by drainQueue). Generic so the prediction
// and forecast batchers share one gathering policy.
func gatherQueue[R any](queue <-chan R, first R, maxBatch int, window time.Duration, stop <-chan struct{}) []R {
	batch := append(make([]R, 0, maxBatch), first)
	timer := time.NewTimer(window)
	defer timer.Stop()
	for len(batch) < maxBatch {
		select {
		case req := <-queue:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		case <-stop:
			return batch
		}
	}
	return batch
}

// drainQueue answers everything still queued at shutdown, in full batches.
// Requests whose callers already gave up (context canceled between enqueue
// and gather) are still answered into their buffered channels, so no sender
// ever blocks and no request is dropped.
func drainQueue[R any](queue <-chan R, maxBatch int, run func([]R)) {
	for {
		batch := make([]R, 0, maxBatch)
		for len(batch) < maxBatch {
			select {
			case req := <-queue:
				batch = append(batch, req)
			default:
				if len(batch) > 0 {
					run(batch)
				}
				return
			}
		}
		run(batch)
	}
}

// batcher is the single goroutine with the right to touch a Framework's
// prediction scratch. It blocks for the first request, gathers more until
// MaxBatch or BatchWindow, and answers the whole batch from one PredictBatch
// call. On shutdown it drains whatever is still queued before exiting, so
// every admitted request is answered.
func (s *Server) batcher() {
	defer close(s.done)
	for {
		var first *request
		select {
		case first = <-s.queue:
		case <-s.stop:
			drainQueue(s.queue, s.cfg.MaxBatch, s.runBatch)
			return
		}
		s.runBatch(gatherQueue(s.queue, first, s.cfg.MaxBatch, s.cfg.BatchWindow, s.stop))
	}
}

// fbatcher is batcher's forecast twin: the single goroutine with the right
// to touch the Forecaster's pooling/scaling scratch. It runs even when no
// forecaster is loaded yet (admission rejects requests until one is), so a
// later ReloadForecaster needs no goroutine surgery.
func (s *Server) fbatcher() {
	defer close(s.fdone)
	for {
		var first *frequest
		select {
		case first = <-s.fqueue:
		case <-s.stop:
			drainQueue(s.fqueue, s.cfg.MaxBatch, s.runForecastBatch)
			return
		}
		s.runForecastBatch(gatherQueue(s.fqueue, first, s.cfg.MaxBatch, s.cfg.BatchWindow, s.stop))
	}
}

// runBatch classifies one gathered batch. The framework pointer is loaded
// once per batch: a concurrent Reload affects only later batches, and each
// Framework owns its own scratch, so the swap is race-free.
func (s *Server) runBatch(batch []*request) {
	fw := s.fw.Load()
	mats := s.batchMats[:0]
	for _, req := range batch {
		mats = append(mats, req.mat)
		s.hQueueNS.Observe(float64(time.Since(req.enq)))
	}
	s.batchMats = mats[:0]

	start := time.Now()
	cls, probs := fw.PredictBatch(mats)
	s.hModelNS.Observe(float64(time.Since(start)))
	s.mBatches.Inc()
	s.hBatch.Observe(float64(len(batch)))

	for i, req := range batch {
		// Mirror before answering: one non-blocking channel send (or a
		// counted drop), so a received reply guarantees the shadow evaluator
		// can already see the event — the happens-before edge the shadow
		// determinism suite leans on — while the champion path never waits.
		if s.cfg.Shadow != nil {
			s.cfg.Shadow.Mirror(req.mat, cls[i])
		}
		// Copy out: the framework reuses its probability rows on the next
		// batch, but the caller's slice must stay valid indefinitely.
		req.resp <- response{class: cls[i], probs: append([]float64(nil), probs[i]...)}
	}
}

// runForecastBatch answers one gathered forecast batch. There is no batched
// entry point on the Forecaster (each request carries a whole history), so
// the batch's value is serializing scratch access and amortizing wakeups;
// predictions are freshly allocated per request, so handing them to callers
// is safe.
func (s *Server) runForecastBatch(batch []*frequest) {
	fc := s.fc.Load()
	start := time.Now()
	for _, req := range batch {
		s.hQueueNS.Observe(float64(time.Since(req.enq)))
		if fc == nil {
			// Admitted before a concurrent forecaster teardown could not
			// happen (reload never clears the pointer), but stay defensive:
			// answer rather than strand the caller.
			req.resp <- fresponse{err: ErrNoForecaster}
			continue
		}
		pred, err := fc.Predict(req.hist)
		req.resp <- fresponse{pred: pred, err: err}
	}
	s.hModelNS.Observe(float64(time.Since(start)))
	s.mBatches.Inc()
	s.hFBatch.Observe(float64(len(batch)))
}
