// Package serve is the online inference service around a trained
// core.Framework — the deployment shape of the paper's Figure 2 runtime
// path, where one prediction service answers window-classification queries
// from many monitoring agents at once.
//
// Concurrency model: the Framework's Predict/PredictBatch reuse internal
// scratch and are not goroutine-safe, so the server funnels every request
// through a single batcher goroutine. Concurrent requests are gathered into
// one PredictBatch call, bounded by MaxBatch (size) and BatchWindow
// (latency). PredictBatch is bit-identical to per-input Predict, so batching
// composition never changes an answer — a property the tests pin down under
// -race with dozens of concurrent clients.
//
// Hot reload swaps an atomic framework pointer: in-flight batches keep the
// framework they loaded (each Framework owns its own scratch), so a reload
// never drops or corrupts a request. Shutdown closes an admission gate,
// waits for in-flight requests to drain through the batcher, then stops it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"quanterference/internal/core"
	"quanterference/internal/forecast"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/obs"
)

// Sentinel errors returned by Server.Predict (and mapped to HTTP statuses by
// the handler: 503, 503, 400 respectively). Match with errors.Is.
var (
	// ErrOverloaded reports that the request queue is full (backpressure);
	// the client should retry with backoff.
	ErrOverloaded = errors.New("serve: server overloaded")

	// ErrShuttingDown reports that the server no longer admits requests.
	ErrShuttingDown = errors.New("serve: server shutting down")

	// ErrBadInput reports a window matrix whose shape does not match the
	// loaded model.
	ErrBadInput = errors.New("serve: bad input matrix")

	// ErrNoForecaster reports a Forecast call on a server that has no
	// forecaster loaded (Config.Forecaster nil and no ReloadForecaster yet).
	ErrNoForecaster = errors.New("serve: no forecaster loaded")

	// ErrNoShadow reports a /v1/shadow request on a server that mirrors no
	// traffic (Config.Shadow nil).
	ErrNoShadow = errors.New("serve: no shadow evaluator attached")
)

// Config tunes the batching service. The zero value is usable: every field
// defaults to the values quantserve ships with.
type Config struct {
	// MaxBatch caps how many requests one PredictBatch call carries
	// (default 32).
	MaxBatch int
	// BatchWindow is how long the batcher waits for more requests after the
	// first one arrives (default 2ms). Smaller trades throughput for
	// latency.
	BatchWindow time.Duration
	// MaxInflight bounds the request queue; admissions beyond it fail fast
	// with ErrOverloaded (default 256).
	MaxInflight int
	// ModelPath is the framework file Reload() re-reads. Optional; reloads
	// may also name an explicit path.
	ModelPath string
	// Forecaster optionally serves /forecast alongside /predict: the
	// early-warning sequence head answering "slowdown in k windows?" from the
	// last History window matrices. Nil disables forecasting (requests get
	// ErrNoForecaster) until ReloadForecaster loads one. Like the framework,
	// ownership transfers to the server.
	Forecaster *forecast.Forecaster
	// Shadow optionally mirrors every answered prediction into a shadow
	// evaluator (*shadow.Evaluator in practice): the batcher taps Mirror —
	// one non-blocking channel send — right before it answers each request,
	// so challengers are scored on exactly the traffic the champion served
	// while the champion's latency and allocations stay untouched. Nil
	// disables mirroring; /v1/shadow then returns ErrNoShadow. Construct the
	// evaluator with this same Sink to surface its counters on /v1/stats.
	Shadow ShadowEvaluator
	// Sink receives serving metrics (request/error/reload counters, the
	// batch-size histogram, per-stage latency histograms). Nil allocates a
	// private sink so Stats always works.
	Sink *obs.Sink
}

func (c *Config) applyDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.Sink == nil {
		c.Sink = obs.New()
	}
}

// request is one enqueued prediction; resp is buffered so the batcher never
// blocks on a caller that gave up (context cancellation).
type request struct {
	mat  window.Matrix
	resp chan response
	enq  time.Time
}

type response struct {
	class int
	probs []float64
}

// frequest is one enqueued forecast: a whole window history rather than one
// matrix. Same buffered-resp discipline as request.
type frequest struct {
	hist []window.Matrix
	resp chan fresponse
	enq  time.Time
}

type fresponse struct {
	pred *forecast.Prediction
	err  error
}

// Server batches concurrent predictions through one framework. Create with
// New, serve HTTP via Handler, stop with Shutdown.
type Server struct {
	cfg Config

	fw     atomic.Pointer[core.Framework]
	fc     atomic.Pointer[forecast.Forecaster]
	queue  chan *request
	fqueue chan *frequest

	// fwDigest / fcDigest are the weight digests (ml.WeightsDigest) of the
	// served framework / forecaster, recomputed on every swap and stamped on
	// replies and /healthz so clients — and the fleet coordinator — can tell
	// exactly which model version answered. Stored separately from the model
	// pointers; each is updated before its pointer, so a reply can briefly
	// carry the digest of the model that is about to serve, never a stale one.
	fwDigest atomic.Pointer[string]
	fcDigest atomic.Pointer[string]

	gateMu   sync.RWMutex
	stopping bool
	inflight sync.WaitGroup
	stopOnce sync.Once
	stop     chan struct{} // closed by Shutdown once admissions drained
	done     chan struct{} // closed when the batcher exits
	fdone    chan struct{} // closed when the forecast batcher exits

	mRequests  *obs.Counter
	mForecasts *obs.Counter
	mErrors    *obs.Counter
	mReloads   *obs.Counter
	mBatches   *obs.Counter
	gInflight  *obs.Gauge
	gFInflight *obs.Gauge
	hBatch     *obs.Histogram
	hFBatch    *obs.Histogram
	hQueueNS   *obs.Histogram
	hModelNS   *obs.Histogram
	hTotalNS   *obs.Histogram

	batchMats []window.Matrix // batcher-only scratch
}

// New starts a serving loop around fw. The framework must not be used
// directly (Predict/PredictBatch) while the server owns it.
func New(fw *core.Framework, cfg Config) *Server {
	if fw == nil {
		panic("serve: nil framework")
	}
	cfg.applyDefaults()
	s := &Server{
		cfg:    cfg,
		queue:  make(chan *request, cfg.MaxInflight),
		fqueue: make(chan *frequest, cfg.MaxInflight),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		fdone:  make(chan struct{}),

		mRequests:  cfg.Sink.Counter("serve", "", "requests"),
		mForecasts: cfg.Sink.Counter("serve", "", "forecasts"),
		mErrors:    cfg.Sink.Counter("serve", "", "errors"),
		mReloads:   cfg.Sink.Counter("serve", "", "reloads"),
		mBatches:   cfg.Sink.Counter("serve", "", "batches"),
		gInflight:  cfg.Sink.Gauge("serve", "", "queue_depth"),
		gFInflight: cfg.Sink.Gauge("serve", "", "forecast_queue_depth"),
		hBatch:     cfg.Sink.Histogram("serve", "", "batch_size", obs.LinearBuckets(1, 1, cfg.MaxBatch)),
		hFBatch:    cfg.Sink.Histogram("serve", "", "forecast_batch_size", obs.LinearBuckets(1, 1, cfg.MaxBatch)),
		hQueueNS:   cfg.Sink.Histogram("serve", "", "queue_wait_ns", obs.TimeBuckets()),
		hModelNS:   cfg.Sink.Histogram("serve", "", "model_ns", obs.TimeBuckets()),
		hTotalNS:   cfg.Sink.Histogram("serve", "", "total_ns", obs.TimeBuckets()),

		batchMats: make([]window.Matrix, 0, cfg.MaxBatch),
	}
	s.setFramework(fw)
	if cfg.Forecaster != nil {
		s.setForecaster(cfg.Forecaster)
	}
	go s.batcher()
	go s.fbatcher()
	return s
}

// setFramework stamps the digest, then publishes the pointer (digest first,
// so a concurrent reader never pairs a new framework with an old digest).
func (s *Server) setFramework(fw *core.Framework) {
	d := ml.WeightsDigest(fw.ExportWeights())
	s.fwDigest.Store(&d)
	s.fw.Store(fw)
}

func (s *Server) setForecaster(f *forecast.Forecaster) {
	d := ml.WeightsDigest(f.ExportWeights())
	s.fcDigest.Store(&d)
	s.fc.Store(f)
}

// ModelDigest returns the served framework's weight digest — the model
// version identity stamped on every /v1/predict reply and /v1/healthz.
func (s *Server) ModelDigest() string { return *s.fwDigest.Load() }

// ForecasterDigest returns the served forecaster's weight digest, empty when
// forecasting is disabled.
func (s *Server) ForecasterDigest() string {
	if d := s.fcDigest.Load(); d != nil {
		return *d
	}
	return ""
}

// Framework returns the currently served framework (hot-reload aware).
func (s *Server) Framework() *core.Framework { return s.fw.Load() }

// Forecaster returns the currently served forecaster, nil when forecasting
// is not enabled.
func (s *Server) Forecaster() *forecast.Forecaster { return s.fc.Load() }

// Shadow returns the attached shadow evaluator, nil when the server mirrors
// no traffic.
func (s *Server) Shadow() ShadowEvaluator { return s.cfg.Shadow }

// Stats snapshots the serving metrics.
func (s *Server) Stats() *obs.Snapshot { return s.cfg.Sink.Snapshot() }

// Predict classifies one raw window matrix, transparently batched with
// whatever other requests are in flight. The returned probs slice is the
// caller's to keep. Safe for any number of concurrent callers.
func (s *Server) Predict(ctx context.Context, mat window.Matrix) (class int, probs []float64, err error) {
	start := time.Now()
	s.mRequests.Inc()
	if err := validate(s.fw.Load(), mat); err != nil {
		s.mErrors.Inc()
		return 0, nil, err
	}

	// Admission gate: taken read-side so Shutdown can atomically flip
	// stopping and then wait out everyone already admitted.
	s.gateMu.RLock()
	if s.stopping {
		s.gateMu.RUnlock()
		s.mErrors.Inc()
		return 0, nil, ErrShuttingDown
	}
	s.inflight.Add(1)
	s.gateMu.RUnlock()
	defer s.inflight.Done()

	req := &request{mat: mat, resp: make(chan response, 1), enq: start}
	select {
	case s.queue <- req:
		s.gInflight.Set(float64(len(s.queue)))
	default:
		s.mErrors.Inc()
		return 0, nil, fmt.Errorf("%w: queue full (%d)", ErrOverloaded, s.cfg.MaxInflight)
	}
	select {
	case r := <-req.resp:
		s.hTotalNS.Observe(float64(time.Since(start)))
		return r.class, r.probs, nil
	case <-ctx.Done():
		// The batcher will still answer into the buffered channel; we just
		// stop waiting.
		s.mErrors.Inc()
		return 0, nil, ctx.Err()
	}
}

// Forecast predicts slowdown ahead of time from the last History raw window
// matrices (oldest first), funneled through the forecast batcher the same way
// Predict funnels through the prediction batcher. The returned Prediction is
// the caller's to keep. Safe for any number of concurrent callers; returns
// ErrNoForecaster when the server has no forecaster loaded.
func (s *Server) Forecast(ctx context.Context, history []window.Matrix) (*forecast.Prediction, error) {
	start := time.Now()
	s.mForecasts.Inc()
	fc := s.fc.Load()
	if fc == nil {
		s.mErrors.Inc()
		return nil, ErrNoForecaster
	}
	if err := validateHistory(fc, history); err != nil {
		s.mErrors.Inc()
		return nil, err
	}

	s.gateMu.RLock()
	if s.stopping {
		s.gateMu.RUnlock()
		s.mErrors.Inc()
		return nil, ErrShuttingDown
	}
	s.inflight.Add(1)
	s.gateMu.RUnlock()
	defer s.inflight.Done()

	req := &frequest{hist: history, resp: make(chan fresponse, 1), enq: start}
	select {
	case s.fqueue <- req:
		s.gFInflight.Set(float64(len(s.fqueue)))
	default:
		s.mErrors.Inc()
		return nil, fmt.Errorf("%w: forecast queue full (%d)", ErrOverloaded, s.cfg.MaxInflight)
	}
	select {
	case r := <-req.resp:
		if r.err != nil {
			s.mErrors.Inc()
			return nil, r.err
		}
		s.hTotalNS.Observe(float64(time.Since(start)))
		return r.pred, nil
	case <-ctx.Done():
		s.mErrors.Inc()
		return nil, ctx.Err()
	}
}

// Reload atomically swaps in the framework at path (Config.ModelPath when
// empty) without disturbing in-flight requests: batches already cut keep the
// framework pointer they loaded. Invalid files leave the old framework
// serving.
func (s *Server) Reload(path string) error {
	if path == "" {
		path = s.cfg.ModelPath
	}
	if path == "" {
		return errors.New("serve: no model path to reload from")
	}
	fw, err := core.LoadFramework(path)
	if err != nil {
		return fmt.Errorf("serve: reload %s: %w", path, err)
	}
	return s.ReloadFramework(fw)
}

// ReloadFramework atomically swaps in an in-memory framework — the
// programmatic sibling of Reload's file-based path (SIGHUP, POST
// /admin/reload), used by the continuous-learning loop (internal/online) to
// promote a gated candidate without a disk round-trip. Like Reload, the swap
// never disturbs in-flight requests: batches already cut keep the framework
// pointer they loaded, and each Framework owns its own scratch.
//
// Ownership of fw transfers to the server; the caller must not call its
// Predict/PredictBatch afterwards (clone first if it needs an evaluation
// copy). A framework whose input shape differs from the currently served one
// is rejected, so a bad candidate can never strand the batcher mid-stream.
func (s *Server) ReloadFramework(fw *core.Framework) error {
	if fw == nil {
		return errors.New("serve: reload of nil framework")
	}
	oldT, oldF := s.fw.Load().Dims()
	newT, newF := fw.Dims()
	if oldT != newT || oldF != newF {
		return fmt.Errorf("serve: reload shape %dx%d does not match served %dx%d",
			newT, newF, oldT, oldF)
	}
	s.setFramework(fw)
	s.mReloads.Inc()
	return nil
}

// ReloadForecaster atomically swaps in a forecaster — what the
// continuous-learning loop calls to promote a retrained sequence head, and
// how a server started without one turns forecasting on. In-flight forecast
// batches keep the pointer they loaded, so the swap never disturbs them.
// Ownership of f transfers to the server. When a forecaster is already
// serving, the replacement must read the same history length and raw feature
// width; the first load is unconstrained.
func (s *Server) ReloadForecaster(f *forecast.Forecaster) error {
	if f == nil {
		return errors.New("serve: reload of nil forecaster")
	}
	if cur := s.fc.Load(); cur != nil {
		oldH, oldF := cur.Dims()
		newH, newF := f.Dims()
		if oldH != newH || oldF != newF {
			return fmt.Errorf("serve: forecaster shape %d windows x %d features does not match served %d x %d",
				newH, newF, oldH, oldF)
		}
	}
	s.setForecaster(f)
	s.mReloads.Inc()
	return nil
}

// Shutdown gracefully stops the server: new requests are refused with
// ErrShuttingDown, every admitted request is answered, then the batcher
// exits. Returns ctx.Err() if the context expires first (the batcher is
// left running so stragglers still get answers). Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gateMu.Lock()
	s.stopping = true
	s.gateMu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	for _, ch := range []<-chan struct{}{s.done, s.fdone} {
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// validate checks mat against the loaded model's expected shape.
func validate(fw *core.Framework, mat window.Matrix) error {
	nTargets, nFeat := fw.Dims()
	if len(mat) == 0 {
		return fmt.Errorf("%w: empty matrix", ErrBadInput)
	}
	if nTargets > 0 && len(mat) != nTargets {
		return fmt.Errorf("%w: %d rows, model expects %d targets", ErrBadInput, len(mat), nTargets)
	}
	for t, row := range mat {
		if len(row) != nFeat {
			return fmt.Errorf("%w: row %d has %d features, model expects %d",
				ErrBadInput, t, len(row), nFeat)
		}
	}
	return nil
}

// validateHistory checks a forecast history against the loaded forecaster's
// expected shape: History windows, each a non-empty matrix of nFeat-wide
// rows (any row count — pooling collapses targets).
func validateHistory(fc *forecast.Forecaster, history []window.Matrix) error {
	hLen, nFeat := fc.Dims()
	if len(history) != hLen {
		return fmt.Errorf("%w: %d windows, forecaster expects %d", ErrBadInput, len(history), hLen)
	}
	for i, mat := range history {
		if len(mat) == 0 {
			return fmt.Errorf("%w: window %d is empty", ErrBadInput, i)
		}
		for t, row := range mat {
			if len(row) != nFeat {
				return fmt.Errorf("%w: window %d row %d has %d features, forecaster expects %d",
					ErrBadInput, i, t, len(row), nFeat)
			}
		}
	}
	return nil
}
