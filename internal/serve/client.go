package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"quanterference/internal/monitor/window"
)

// Client is a typed HTTP client for a quantserve instance, so tools
// (cmd/quantpredict -server) can target a running service instead of
// loading a framework file themselves.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets base (e.g. "http://localhost:8080"). A trailing slash
// is tolerated.
func NewClient(base string) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// OverloadedError is the client-side form of a 503 shed by the server's
// backpressure (ErrOverloaded) or shutdown (ErrShuttingDown) path. It
// unwraps to the matching server sentinel, so errors.Is(err, ErrOverloaded)
// works across the HTTP boundary, and carries the server's retry-after hint.
type OverloadedError struct {
	// RetryAfter is the server's suggested backoff before retrying.
	RetryAfter time.Duration
	// ShuttingDown distinguishes a draining server (don't retry the same
	// instance) from transient queue pressure (do retry).
	ShuttingDown bool
	msg          string
}

func (e *OverloadedError) Error() string { return e.msg }

// Unwrap makes errors.Is match ErrOverloaded (or ErrShuttingDown when the
// server was draining rather than shedding).
func (e *OverloadedError) Unwrap() error {
	if e.ShuttingDown {
		return ErrShuttingDown
	}
	return ErrOverloaded
}

func (c *Client) do(req *http.Request, out interface{}) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			if resp.StatusCode == http.StatusServiceUnavailable &&
				(e.Code == codeOverloaded || e.Code == codeShuttingDown) {
				retry := time.Duration(e.RetryAfterSeconds * float64(time.Second))
				if retry <= 0 {
					retry = retryAfterSeconds * time.Second
				}
				return &OverloadedError{
					RetryAfter:   retry,
					ShuttingDown: e.Code == codeShuttingDown,
					msg: fmt.Sprintf("serve: %s %s: %s (HTTP %d, retry after %v)",
						req.Method, req.URL.Path, e.Error, resp.StatusCode, retry),
				}
			}
			if e.Code == codeBadInput {
				return fmt.Errorf("%w: %s %s: %s (HTTP %d)",
					ErrBadInput, req.Method, req.URL.Path, e.Error, resp.StatusCode)
			}
			if e.Code == codeNoForecaster {
				return fmt.Errorf("%w: %s %s: %s (HTTP %d)",
					ErrNoForecaster, req.Method, req.URL.Path, e.Error, resp.StatusCode)
			}
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", req.Method, req.URL.Path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Predict classifies one raw window matrix on the server.
func (c *Client) Predict(ctx context.Context, mat window.Matrix) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.post(ctx, "/predict", PredictRequest{Matrix: mat}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Forecast predicts slowdown ahead of time from the last History raw window
// matrices (oldest first). Servers without a forecaster return an error
// matching ErrNoForecaster.
func (c *Client) Forecast(ctx context.Context, history []window.Matrix) (*ForecastResponse, error) {
	hist := make([][][]float64, len(history))
	for i, mat := range history {
		hist[i] = mat
	}
	var out ForecastResponse
	if err := c.post(ctx, "/forecast", ForecastRequest{History: hist}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches liveness and the loaded model's shape.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.get(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reload asks the server to hot-swap its framework; an empty path reloads
// the server's configured model file.
func (c *Client) Reload(ctx context.Context, path string) error {
	return c.post(ctx, "/admin/reload", reloadRequest{Path: path}, nil)
}
