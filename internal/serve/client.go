package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"quanterference/internal/monitor/window"
)

// Client is a typed HTTP client for a quantserve instance, so tools
// (cmd/quantpredict -server, the fleet coordinator) can target a running
// service instead of loading a framework file themselves. It speaks the
// versioned /v1/ surface only.
type Client struct {
	base      string
	hc        *http.Client
	userAgent string
	retries   int
	retryGap  time.Duration
}

// ClientOption configures a Client at construction (NewClient).
type ClientOption func(*Client)

// WithTimeout bounds every HTTP round trip (default 30s). Zero or negative
// means no timeout.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithRetry retries a request up to n extra times when the transport fails
// or the server sheds it with 503 overloaded (not when it is shutting down —
// a draining instance will not recover; route elsewhere instead). gap is the
// pause between attempts; the server's retry-after hint is used instead when
// it is shorter. Default is no retries.
func WithRetry(n int, gap time.Duration) ClientOption {
	return func(c *Client) { c.retries, c.retryGap = n, gap }
}

// WithUserAgent sets the User-Agent header on every request — how fleet
// replicas distinguish coordinator traffic from direct clients in logs.
func WithUserAgent(ua string) ClientOption {
	return func(c *Client) { c.userAgent = ua }
}

// NewClient targets base (e.g. "http://localhost:8080"). A trailing slash
// is tolerated.
func NewClient(base string, opts ...ClientOption) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	c := &Client{
		base:      base,
		hc:        &http.Client{Timeout: 30 * time.Second},
		userAgent: "quanterference-client/" + APIVersion,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is the client-side form of every non-200 the server returns: the
// HTTP status, the server's error code (the code* constants behind
// errorResponse.Code, empty for untyped failures), and the retry-after hint
// on shed (503) responses. It unwraps to the matching server sentinel, so
// errors.Is(err, ErrOverloaded / ErrShuttingDown / ErrBadInput /
// ErrNoForecaster) works across the HTTP boundary.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code names the server-side sentinel ("overloaded", "shutting_down",
	// "bad_input", "no_forecaster"); empty for untyped errors.
	Code string
	// RetryAfter is the server's suggested backoff before retrying; zero
	// when the response carried no hint.
	RetryAfter time.Duration
	msg        string
}

func (e *APIError) Error() string { return e.msg }

// Unwrap maps the error code back to the server sentinel, so errors.Is
// matches the same sentinels server-side callers use.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case codeOverloaded:
		return ErrOverloaded
	case codeShuttingDown:
		return ErrShuttingDown
	case codeBadInput:
		return ErrBadInput
	case codeNoForecaster:
		return ErrNoForecaster
	case codeNoShadow:
		return ErrNoShadow
	}
	return nil
}

// retryable reports whether a failed attempt is worth repeating: transient
// queue pressure is, a draining server or a caller mistake is not.
func (e *APIError) retryable() bool { return e.Code == codeOverloaded }

// v1 prefixes a route with the versioned mount point.
func v1(path string) string { return "/" + APIVersion + path }

func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	var payload []byte
	if body != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	return c.roundTrip(ctx, http.MethodPost, path, payload, out)
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	return c.roundTrip(ctx, http.MethodGet, path, nil, out)
}

// roundTrip sends one logical request, retrying per WithRetry. The payload
// is kept as bytes so every attempt re-sends an identical body.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte, out interface{}) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(ctx, method, path, payload, out)
		if err == nil || attempt >= c.retries {
			return err
		}
		apiErr, ok := err.(*APIError)
		if ok && !apiErr.retryable() {
			return err
		}
		gap := c.retryGap
		if ok && apiErr.RetryAfter > 0 && apiErr.RetryAfter < gap {
			gap = apiErr.RetryAfter
		}
		if gap > 0 {
			select {
			case <-time.After(gap):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

func (c *Client) do(ctx context.Context, method, path string, payload []byte, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", c.userAgent)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode}
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			apiErr.Code = e.Code
			apiErr.RetryAfter = time.Duration(e.RetryAfterSeconds * float64(time.Second))
			if apiErr.RetryAfter <= 0 && resp.StatusCode == http.StatusServiceUnavailable {
				apiErr.RetryAfter = retryAfterSeconds * time.Second
			}
			apiErr.msg = fmt.Sprintf("serve: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
			return apiErr
		}
		apiErr.msg = fmt.Sprintf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Predict classifies one raw window matrix on the server.
func (c *Client) Predict(ctx context.Context, mat window.Matrix) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.post(ctx, v1("/predict"), PredictRequest{Matrix: mat}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Forecast predicts slowdown ahead of time from the last History raw window
// matrices (oldest first). Servers without a forecaster return an error
// matching ErrNoForecaster.
func (c *Client) Forecast(ctx context.Context, history []window.Matrix) (*ForecastResponse, error) {
	hist := make([][][]float64, len(history))
	for i, mat := range history {
		hist[i] = mat
	}
	var out ForecastResponse
	if err := c.post(ctx, v1("/forecast"), ForecastRequest{History: hist}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShadowStatus fetches the server's shadow-evaluation scoreboard: the
// champion's and every challenger's live accuracy/CE plus the mirror
// plumbing counters. Servers without a shadow evaluator return an error
// matching ErrNoShadow.
func (c *Client) ShadowStatus(ctx context.Context) (*ShadowStatus, error) {
	var out ShadowStatus
	if err := c.get(ctx, v1("/shadow"), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches liveness, the API version, the served weight digests, and
// the loaded model's shape.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.get(ctx, v1("/healthz"), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reload asks the server to hot-swap its framework; an empty path reloads
// the server's configured model file.
func (c *Client) Reload(ctx context.Context, path string) error {
	return c.post(ctx, v1("/admin/reload"), reloadRequest{Path: path}, nil)
}
