package serve

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/nn"
	"quanterference/internal/sim"
)

// trainedFramework builds a small framework on synthetic data (no simulator
// run) plus a set of distinct query matrices.
func trainedFramework(tb testing.TB, nTargets, nFeat int) (*core.Framework, []window.Matrix) {
	tb.Helper()
	names := make([]string, nFeat)
	for i := range names {
		names[i] = "f"
	}
	ds := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(21)
	for i := 0; i < 64; i++ {
		vecs := make([][]float64, nTargets)
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + float64(i%2)
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1, Vectors: vecs})
	}
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{Seed: 4, Train: ml.TrainConfig{Epochs: 5}})
	if err != nil {
		tb.Fatal(err)
	}
	rng2 := sim.NewRNG(22)
	mats := make([]window.Matrix, 8)
	for i := range mats {
		mat := make(window.Matrix, nTargets)
		for t := range mat {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng2.NormFloat64() * 2
			}
			mat[t] = v
		}
		mats[i] = mat
	}
	return fw, mats
}

// TestHTTPRoundTripWithReload drives the full HTTP surface: healthz shape,
// predict, hot reload from disk, predict again (identical answer), stats.
func TestHTTPRoundTripWithReload(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	path := t.TempDir() + "/fw.json"
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	wantClass, wantProbs := fw.Predict(mats[0])

	s := New(fw, Config{ModelPath: path})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL + "/") // trailing slash tolerated
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Targets != 3 || h.Features != 5 || h.Classes != 2 || len(h.Thresholds) != 1 {
		t.Fatalf("health = %+v", h)
	}

	check := func(stage string) {
		resp, err := c.Predict(ctx, mats[0])
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if resp.Class != wantClass {
			t.Fatalf("%s: class %d, want %d", stage, resp.Class, wantClass)
		}
		for i := range wantProbs {
			if math.Float64bits(resp.Probs[i]) != math.Float64bits(wantProbs[i]) {
				t.Fatalf("%s: probs %v, want %v", stage, resp.Probs, wantProbs)
			}
		}
		if resp.Label == "" {
			t.Fatalf("%s: empty label", stage)
		}
	}
	check("before reload")
	if err := c.Reload(ctx, ""); err != nil { // empty path = configured ModelPath
		t.Fatal(err)
	}
	check("after reload")

	// A bad reload must leave the old framework serving.
	if err := c.Reload(ctx, "/nonexistent/fw.json"); err == nil {
		t.Fatal("reload of missing file succeeded")
	}
	check("after failed reload")

	// Bad input shapes are 400s, not panics.
	if _, err := c.Predict(ctx, window.Matrix{{1, 2}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad shape error = %v", err)
	}
	if _, err := c.Predict(ctx, nil); err == nil {
		t.Fatal("empty matrix accepted")
	}

	// Stats reflect the traffic and render as JSON.
	snap := s.Stats()
	if v, ok := snap.Counter("serve", "", "requests"); !ok || v < 5 {
		t.Fatalf("requests counter = %d, %v", v, ok)
	}
	if v, ok := snap.Counter("serve", "", "reloads"); !ok || v != 1 {
		t.Fatalf("reloads counter = %d, %v", v, ok)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "serve/batch_size") {
		t.Fatalf("/stats = %d %s", rec.Code, rec.Body.String())
	}
}

// TestConcurrentClientsDeterministic is the batching correctness pin: 32
// clients hammering distinct inputs, with hot reloads interleaved, must each
// always get the exact answer a lone Predict gives, no matter how requests
// get grouped into batches. Run under -race in make verify.
func TestConcurrentClientsDeterministic(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	path := t.TempDir() + "/fw.json"
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	wantCls := make([]int, len(mats))
	wantProbs := make([][]float64, len(mats))
	for i, mat := range mats {
		wantCls[i], wantProbs[i] = fw.Predict(mat)
	}

	s := New(fw, Config{
		MaxBatch:    8,
		BatchWindow: 200 * time.Microsecond,
		MaxInflight: 1024,
		ModelPath:   path,
	})
	defer s.Shutdown(context.Background())

	const clients, iters = 32, 40
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (c + it) % len(mats)
				class, probs, err := s.Predict(ctx, mats[i])
				if err != nil {
					errCh <- err
					return
				}
				if class != wantCls[i] {
					errCh <- errors.New("class diverged under concurrency")
					return
				}
				for j := range probs {
					if math.Float64bits(probs[j]) != math.Float64bits(wantProbs[i][j]) {
						errCh <- errors.New("probs diverged under concurrency")
						return
					}
				}
			}
		}(c)
	}
	// Hot reloads racing the clients: in-flight requests must neither error
	// nor change answers (the reloaded file holds identical weights).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Reload(""); err != nil {
				errCh <- err
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	snap := s.Stats()
	if v, _ := snap.Counter("serve", "", "requests"); v != clients*iters {
		t.Fatalf("requests = %d, want %d", v, clients*iters)
	}
	if v, _ := snap.Counter("serve", "", "errors"); v != 0 {
		t.Fatalf("errors = %d, want 0", v)
	}
	batches, _ := snap.Counter("serve", "", "batches")
	if batches == 0 || batches >= clients*iters {
		t.Fatalf("batches = %d: no batching happened", batches)
	}
	t.Logf("%d requests served in %d batches", clients*iters, batches)
}

// TestGracefulShutdownUnderLoad: every request admitted before Shutdown gets
// a real answer; requests after are refused with ErrShuttingDown; Shutdown
// returns only when the batcher has drained.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	s := New(fw, Config{MaxBatch: 4, BatchWindow: time.Millisecond, MaxInflight: 1024})

	const clients = 16
	ctx := context.Background()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		answered int
		refused  int
	)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for it := 0; ; it++ {
				_, probs, err := s.Predict(ctx, mats[(c+it)%len(mats)])
				mu.Lock()
				switch {
				case err == nil && len(probs) == 2:
					answered++
				case errors.Is(err, ErrShuttingDown):
					refused++
					mu.Unlock()
					return
				default:
					mu.Unlock()
					t.Errorf("unexpected result: %v %v", probs, err)
					return
				}
				mu.Unlock()
			}
		}(c)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let load build
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if refused != clients {
		t.Fatalf("refused = %d, want %d (each client exits on ErrShuttingDown)", refused, clients)
	}
	if answered == 0 {
		t.Fatal("no requests answered before shutdown")
	}
	t.Logf("answered %d, then refused %d", answered, refused)

	// Idempotent, and still refusing.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if _, _, err := s.Predict(ctx, mats[0]); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown Predict err = %v", err)
	}
}

// slowModel stalls every Probs call. It deliberately does not implement
// ml.BatchPredictor, so it also exercises PredictBatch's fallback path for
// custom FrameworkConfig.NewModel architectures.
type slowModel struct {
	delay time.Duration
}

func (m slowModel) Predict(vectors [][]float64) int { return 0 }
func (m slowModel) Probs(vectors [][]float64) []float64 {
	time.Sleep(m.delay)
	return []float64{0.75, 0.25}
}
func (m slowModel) LossAndGrad(vectors [][]float64, label int, weight float64) float64 { return 0 }
func (m slowModel) Params() []nn.Param                                                 { return nil }

// TestBackpressure: with the batcher unable to keep up (slow model, tiny
// queue), excess admissions fail fast with ErrOverloaded instead of queueing
// unboundedly.
func TestBackpressure(t *testing.T) {
	_, mats := trainedFramework(t, 3, 5)
	fw := &core.Framework{
		Bins:   label.BinaryBins(),
		Model:  slowModel{delay: 2 * time.Millisecond},
		Scaler: &dataset.Scaler{Mean: make([]float64, 5), Std: []float64{1, 1, 1, 1, 1}},
	}
	s := New(fw, Config{MaxBatch: 2, BatchWindow: time.Millisecond, MaxInflight: 2})
	defer s.Shutdown(context.Background())

	ctx := context.Background()
	var wg sync.WaitGroup
	results := make(chan error, 32)
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, _, err := s.Predict(ctx, mats[c%len(mats)])
			results <- err
		}(c)
	}
	wg.Wait()
	close(results)
	var overloaded int
	for err := range results {
		if errors.Is(err, ErrOverloaded) {
			overloaded++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if overloaded == 0 {
		t.Fatal("no request hit backpressure despite a 2-deep queue")
	}
	t.Logf("%d/32 requests shed", overloaded)
}
