package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"quanterference/internal/ml"
)

// TestVersionedSurface pins the v1 API consolidation: every route answers
// under /v1/, the unversioned aliases still work but advertise deprecation,
// and /v1/healthz carries the API version plus the served weight digests.
func TestVersionedSurface(t *testing.T) {
	fw, mats := trainedFramework(t, 3, 5)
	wantDigest := ml.WeightsDigest(fw.ExportWeights())
	s := New(fw, Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)

	if got := s.ModelDigest(); got != wantDigest {
		t.Fatalf("ModelDigest = %s, want %s", got, wantDigest)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.APIVersion != APIVersion {
		t.Fatalf("health api_version = %q, want %q", h.APIVersion, APIVersion)
	}
	if h.ModelDigest != wantDigest {
		t.Fatalf("health model_digest = %q, want %q", h.ModelDigest, wantDigest)
	}
	if h.ForecasterDigest != "" {
		t.Fatalf("health forecaster_digest = %q on a forecast-less server", h.ForecasterDigest)
	}

	// Replies are stamped with the digest of the weights that answered.
	resp, err := c.Predict(ctx, mats[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelDigest != wantDigest {
		t.Fatalf("predict model_digest = %q, want %q", resp.ModelDigest, wantDigest)
	}

	// A promotion changes the digest the moment the new weights serve.
	cand, err := fw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	cand.Model.Params()[0].W[0] += 1 // genuinely different weights
	candDigest := ml.WeightsDigest(cand.ExportWeights())
	if candDigest == wantDigest {
		t.Fatal("perturbed candidate digests like the incumbent")
	}
	if err := s.ReloadFramework(cand); err != nil {
		t.Fatal(err)
	}
	if got := s.ModelDigest(); got != candDigest {
		t.Fatalf("post-promotion ModelDigest = %s, want %s", got, candDigest)
	}
	if resp, err = c.Predict(ctx, mats[0]); err != nil || resp.ModelDigest != candDigest {
		t.Fatalf("post-promotion predict stamp = %q (%v), want %q", resp.ModelDigest, err, candDigest)
	}

	// The unversioned alias still answers, flagged deprecated; the versioned
	// route is not.
	for _, tc := range []struct {
		path       string
		deprecated bool
	}{
		{"/healthz", true},
		{"/" + APIVersion + "/healthz", false},
	} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
			t.Fatalf("GET %s = %d %s", tc.path, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("Deprecation") == "true"; got != tc.deprecated {
			t.Fatalf("GET %s Deprecation header = %v, want %v", tc.path, got, tc.deprecated)
		}
	}

	// /v1/stats serves the same snapshot as the legacy /stats.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/"+APIVersion+"/stats", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "serve/requests") {
		t.Fatalf("/v1/stats = %d %s", rec.Code, rec.Body.String())
	}
}
