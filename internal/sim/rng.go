package sim

import "math/rand"

// RNG wraps math/rand with a tiny convenience surface used across the
// simulator. Every simulated component derives its own RNG from a root seed
// so that runs are reproducible and components are statistically decoupled.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded generator.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Derive returns a child generator whose seed mixes the parent stream with
// the supplied label, so distinct labels give independent streams.
func (g *RNG) Derive(label int64) *RNG {
	mix := uint64(g.r.Int63()) ^ (uint64(label) * 0x9e3779b97f4a7c15)
	return NewRNG(int64(mix >> 1))
}

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Uniform returns a uniform float in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Shuffle permutes a slice in place.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
