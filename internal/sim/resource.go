package sim

// Resource is a counting semaphore with a FIFO wait queue, used to model
// bounded server-side resources such as service-thread pools and per-target
// RPC-in-flight limits.
//
// Acquire never blocks the caller; instead the supplied callback runs once a
// unit of the resource has been granted (possibly synchronously, if one is
// free). Release hands the freed unit to the oldest waiter, running its
// callback via a zero-delay event so that deeply chained acquire/release
// sequences do not recurse unboundedly.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func()
	// peakQueue records the maximum number of simultaneous waiters,
	// which is handy for test assertions and debugging backlog.
	peakQueue int
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of queued acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) }

// PeakWaiting returns the largest observed wait-queue length.
func (r *Resource) PeakWaiting() int { return r.peakQueue }

// Acquire grants a unit to fn, either immediately or once one frees up.
func (r *Resource) Acquire(fn func()) {
	if fn == nil {
		panic("sim: nil acquire callback")
	}
	if r.inUse < r.capacity {
		r.inUse++
		fn()
		return
	}
	r.waiters = append(r.waiters, fn)
	if len(r.waiters) > r.peakQueue {
		r.peakQueue = len(r.waiters)
	}
}

// Release returns a unit. If anyone is waiting, the unit passes directly to
// the oldest waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of unheld resource")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		// Avoid retaining the popped callback.
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = nil
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.eng.Schedule(0, next)
		return
	}
	r.inUse--
}

// Ticker invokes a callback at a fixed period, used by the monitors for 1 Hz
// sampling. The callback receives the tick time. Stop cancels future ticks.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func(Time)
	stopped bool
}

// NewTicker starts a ticker whose first tick fires one period from now.
func NewTicker(eng *Engine, period Time, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.eng.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.eng.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker. Safe to call from within the tick callback.
func (t *Ticker) Stop() { t.stopped = true }
