// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every other simulated subsystem in this repository:
// disks, block queues, the network, and the Lustre-like file system are all
// implemented as callbacks scheduled on a single Engine. Time is modelled as
// int64 nanoseconds so that runs are exactly reproducible for a given seed.
//
// The engine is intentionally single-threaded: events run one at a time in
// (time, insertion) order. Simulated concurrency comes from interleaving
// events, not goroutines, which keeps runs deterministic and fast.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"quanterference/internal/obs"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time = int64

// Common durations, mirroring time.Duration constants but typed as sim.Time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// ToSeconds converts a Time to floating-point seconds.
func ToSeconds(t Time) float64 {
	return float64(t) / float64(Second)
}

// event is a single scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator clock and event queue.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// executed counts events that have run; useful for progress assertions.
	executed uint64
	// free recycles executed event structs: the steady-state hot loop
	// allocates no event objects, only the closures callers schedule. The
	// list grows to the peak queue depth and is never trimmed.
	free []*event

	// Observability handles; nil (one branch per event) unless Instrument
	// attached a sink.
	cEvents    *obs.Counter
	cScheduled *obs.Counter
	gQueueMax  *obs.Gauge
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Instrument registers the engine's metrics on the sink: events executed,
// events scheduled, and the maximum event-queue depth seen.
func (e *Engine) Instrument(s *obs.Sink) {
	e.cEvents = s.Counter("engine", "", "events_executed")
	e.cScheduled = s.Counter("engine", "", "events_scheduled")
	e.gQueueMax = s.Gauge("engine", "", "max_queue_depth")
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay. A zero delay schedules fn to run after all
// callbacks already queued for the current instant. Negative delays panic:
// they always indicate a modelling bug.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %d < now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	heap.Push(&e.events, ev)
	e.cScheduled.Inc()
	e.gQueueMax.Max(float64(len(e.events)))
}

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.executed++
	e.cEvents.Inc()
	fn := ev.fn
	// Recycle before running fn: the event is off the heap, so a callback
	// that schedules may reuse it immediately.
	ev.fn = nil
	e.free = append(e.free, ev)
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled for later remain queued.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop makes the current Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }
