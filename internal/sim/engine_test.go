package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock %d, want 30", e.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestZeroDelayRunsAfterCurrentEvent(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(1, func() {
		e.Schedule(0, func() { got = append(got, "child") })
		got = append(got, "parent")
	})
	e.Run()
	if len(got) != 2 || got[0] != "parent" || got[1] != "child" {
		t.Fatalf("got %v", got)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want 2 events", ran)
	}
	if e.Now() != 12 {
		t.Fatalf("clock %d, want 12", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("remaining events lost: %v", ran)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock %d, want 100", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i+1), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("ran %d events after Stop, want 3", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending %d, want 7", e.Pending())
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %d", Seconds(1.5))
	}
	if ToSeconds(2*Second) != 2.0 {
		t.Fatalf("ToSeconds = %f", ToSeconds(2*Second))
	}
}

// Property: executing any batch of scheduled events always yields
// non-decreasing timestamps.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of executed events equals the number scheduled.
func TestPropertyAllEventsRun(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		count := 0
		for _, d := range delays {
			e.Schedule(Time(d), func() { count++ })
		}
		e.Run()
		return count == len(delays) && e.Executed() == uint64(len(delays))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
