package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceImmediateGrant(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	granted := 0
	r.Acquire(func() { granted++ })
	r.Acquire(func() { granted++ })
	if granted != 2 || r.InUse() != 2 {
		t.Fatalf("granted=%d inUse=%d", granted, r.InUse())
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	r.Acquire(func() {}) // hold the only unit
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() { order = append(order, i); r.Release() })
	}
	if r.Waiting() != 5 {
		t.Fatalf("waiting=%d, want 5", r.Waiting())
	}
	r.Release()
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
	if r.InUse() != 0 {
		t.Fatalf("inUse=%d after all released", r.InUse())
	}
	if r.PeakWaiting() != 5 {
		t.Fatalf("peak=%d, want 5", r.PeakWaiting())
	}
}

func TestResourceReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewEngine(), 1).Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewEngine(), 0)
}

// Property: with capacity c and n holders each holding for a fixed time,
// concurrency never exceeds c and every acquirer eventually runs.
func TestPropertyResourceBounds(t *testing.T) {
	f := func(capRaw, nRaw uint8) bool {
		c := int(capRaw%8) + 1
		n := int(nRaw%64) + 1
		e := NewEngine()
		r := NewResource(e, c)
		active, peak, completed := 0, 0, 0
		for i := 0; i < n; i++ {
			e.Schedule(Time(i), func() {
				r.Acquire(func() {
					active++
					if active > peak {
						peak = active
					}
					e.Schedule(10, func() {
						active--
						completed++
						r.Release()
					})
				})
			})
		}
		e.Run()
		return peak <= c && completed == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(e, 100, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 4 {
			tk.Stop()
		}
	})
	e.RunUntil(10_000)
	if len(ticks) != 4 {
		t.Fatalf("ticks=%v, want 4", ticks)
	}
	for i, tt := range ticks {
		if tt != Time(100*(i+1)) {
			t.Fatalf("tick %d at %d, want %d", i, tt, 100*(i+1))
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(42).Derive(1)
	d := NewRNG(42).Derive(2)
	same := true
	for i := 0; i < 16; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("derived streams with different labels are identical")
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(3, 5)
		if v < 3 || v >= 5 {
			t.Fatalf("Uniform out of range: %f", v)
		}
	}
}
