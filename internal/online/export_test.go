package online

import (
	"errors"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/sim"
)

// TestBufferExportImportRoundTrip: an exported reservoir replayed into a
// fresh same-seed buffer reproduces the resident set bit-exactly, and the
// run stamp keeps per-instance exports distinct under the canonical merge.
func TestBufferExportImportRoundTrip(t *testing.T) {
	fw := trainedFramework(t, 7)
	p := &fakePromoter{fw: fw}
	l, err := NewLoop(p, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	for i := 0; i < 20; i++ {
		mat := driftedMatrix(rng)
		l.OfferWindow(mat)
		l.OfferLabeled(Example{Window: i, Matrix: mat, Degradation: 3})
	}

	exp := l.ExportBuffer("replica-a")
	if exp.Len() != l.BufferLen() {
		t.Fatalf("export has %d samples, buffer holds %d", exp.Len(), l.BufferLen())
	}
	if exp.Profile != "paper" {
		t.Fatalf("export profile = %q, want default %q", exp.Profile, "paper")
	}
	for _, s := range exp.Samples {
		if s.Run != "replica-a" {
			t.Fatalf("exported sample run = %q, want instance stamp", s.Run)
		}
	}

	// Disk round trip preserves the export bit-exactly.
	path := t.TempDir() + "/buffer.json"
	if err := exp.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != exp.Digest() {
		t.Fatal("export changed across the JSON round trip")
	}

	// Replaying into a fresh loop with the same seed reproduces the resident
	// set: export again and compare digests.
	l2, err := NewLoop(&fakePromoter{fw: fw}, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.ImportBuffer(back); err != nil {
		t.Fatal(err)
	}
	if l2.BufferLen() != l.BufferLen() {
		t.Fatalf("imported buffer holds %d, want %d", l2.BufferLen(), l.BufferLen())
	}
	if got := l2.ExportBuffer("replica-a").Digest(); got != exp.Digest() {
		t.Fatalf("re-export digest %s, want %s (replay is not deterministic)", got, exp.Digest())
	}

	// A mismatched schema is refused with the dataset sentinel.
	narrow := dataset.New([]string{"a"}, 1, 2)
	if err := l2.ImportBuffer(narrow); !errors.Is(err, dataset.ErrSchemaMismatch) {
		t.Fatalf("mismatched import err = %v, want ErrSchemaMismatch", err)
	}

	// Two instances exporting the same window indices stay distinct under
	// the canonical merge — the run stamp is the dedupe key's backbone.
	expB := l.ExportBuffer("replica-b")
	merged, err := dataset.MergeAll(exp, expB)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != exp.Len()+expB.Len() {
		t.Fatalf("merged %d samples, want %d (cross-instance windows must not dedupe)",
			merged.Len(), exp.Len()+expB.Len())
	}
}
