package online

import (
	"context"
	"sort"

	"quanterference/internal/core"
	"quanterference/internal/label"
	"quanterference/internal/monitor/window"
)

// Stream is a window sequence with its (delayed) ground truth — what a
// deployment would receive live, reconstructed from a finished simulation
// run so episodes are replayable and deterministic.
type Stream struct {
	// Windows maps window index to its assembled matrix.
	Windows map[int]window.Matrix
	// Degradations maps window index to its measured slowdown (windows with
	// too few matched operations are absent, exactly as in live labeling).
	Degradations map[int]float64
}

// StreamFromRun labels a run's windows against a baseline labeler.
func StreamFromRun(res *core.RunResult, lab *label.Labeler) Stream {
	return Stream{Windows: res.Windows, Degradations: lab.Degradations(res.Records)}
}

// Replay feeds the stream through the loop in ascending window order,
// modeling label latency: window i's matrix is offered immediately, its
// label only once the stream has advanced delay windows past it. Step runs
// after every window; the returned decisions parallel the stream's windows.
func (l *Loop) Replay(ctx context.Context, s Stream, delay int) ([]Decision, error) {
	if delay < 0 {
		delay = 0
	}
	idxs := make([]int, 0, len(s.Windows))
	for idx := range s.Windows {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)

	out := make([]Decision, 0, len(idxs))
	for _, idx := range idxs {
		l.OfferWindow(s.Windows[idx])
		if deg, ok := s.Degradations[idx-delay]; ok {
			if mat, ok := s.Windows[idx-delay]; ok {
				l.OfferLabeled(Example{Window: idx - delay, Matrix: mat, Degradation: deg})
			}
		}
		d, err := l.Step(ctx)
		if err != nil {
			return out, err
		}
		d.Window = idx
		out = append(out, d)
	}
	return out, nil
}
