package online

import (
	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/monitor/window"
)

// GateConfig tunes the candidate evaluation gate.
type GateConfig struct {
	// HoldFrac is the fraction of the example buffer held out of retraining
	// and used to score candidate vs incumbent (default 0.25). The holdout is
	// split off before training, so the candidate never sees it.
	HoldFrac float64
	// Margin is how much holdout accuracy the candidate may give up relative
	// to the incumbent and still be promoted: promote iff
	// candidate >= incumbent - Margin (default 0.02). A negative margin
	// demands the candidate *beat* the incumbent by |Margin|; anything below
	// -1 is an impossible bar that force-rejects every candidate (the
	// rollback drill knob cmd/quantonline exposes as -gate-margin).
	Margin float64
}

func (c *GateConfig) applyDefaults() {
	if c.HoldFrac == 0 {
		c.HoldFrac = 0.25
	}
	if c.Margin == 0 {
		c.Margin = 0.02
	}
}

// GateResult records one candidate evaluation.
type GateResult struct {
	// CandidateAccuracy and IncumbentAccuracy are holdout accuracies.
	CandidateAccuracy float64
	IncumbentAccuracy float64
	// Holdout is how many examples the decision rests on.
	Holdout int
	// Margin is the margin the decision used.
	Margin float64
	// Promote is the verdict: candidate >= incumbent - margin on a non-empty
	// holdout.
	Promote bool
}

// accuracyOn scores a framework on a raw (unscaled) dataset. The framework
// must be owned by the caller's goroutine (Predict is not goroutine-safe).
func accuracyOn(fw *core.Framework, ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	hits := 0
	for _, s := range ds.Samples {
		if class, _ := fw.Predict(window.Matrix(s.Vectors)); class == s.Label {
			hits++
		}
	}
	return float64(hits) / float64(ds.Len())
}

// evaluateGate compares a freshly trained candidate against the incumbent on
// a shared holdout neither trained on.
func evaluateGate(candidate, incumbent *core.Framework, holdout *dataset.Dataset, margin float64) GateResult {
	g := GateResult{
		CandidateAccuracy: accuracyOn(candidate, holdout),
		IncumbentAccuracy: accuracyOn(incumbent, holdout),
		Holdout:           holdout.Len(),
		Margin:            margin,
	}
	g.Promote = g.Holdout > 0 && g.CandidateAccuracy >= g.IncumbentAccuracy-margin
	return g
}
