package online

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/monitor/window"
)

// GateConfig tunes the candidate evaluation gate.
type GateConfig struct {
	// HoldFrac is the fraction of the example buffer held out of retraining
	// and used to score candidate vs incumbent (default 0.25). The holdout is
	// split off before training, so the candidate never sees it.
	HoldFrac float64
	// Margin is how much holdout accuracy the candidate may give up relative
	// to the incumbent and still be promoted: promote iff
	// candidate >= incumbent - Margin (default 0.02). A negative margin
	// demands the candidate *beat* the incumbent by |Margin|; anything below
	// -1 is an impossible bar that force-rejects every candidate (the
	// rollback drill knob cmd/quantonline exposes as -gate-margin).
	Margin float64
}

func (c *GateConfig) applyDefaults() {
	if c.HoldFrac == 0 {
		c.HoldFrac = 0.25
	}
	if c.Margin == 0 {
		c.Margin = 0.02
	}
}

// GateResult records one candidate evaluation — either the 2-way holdout
// gate of the continuous-learning loop (candidate vs incumbent on a shared
// holdout) or the N-way shadow gate (up to N challengers vs the champion on
// mirrored live traffic, EvaluateShadowGate). The 2-way fields keep their
// original meaning in both shapes; the N-way extension adds who won and the
// full per-candidate scoreboard.
type GateResult struct {
	// CandidateAccuracy and IncumbentAccuracy are holdout accuracies (2-way),
	// or the winning challenger's and the champion's live accuracy (N-way).
	CandidateAccuracy float64
	IncumbentAccuracy float64
	// Holdout is how many examples the decision rests on: the holdout size
	// (2-way) or the winning challenger's labeled sample count (N-way).
	Holdout int
	// Margin is the margin the decision used. The sign convention differs by
	// gate: the 2-way retrain gate promotes a candidate that gives up at most
	// Margin accuracy (candidate >= incumbent - Margin), while the N-way
	// shadow gate promotes only a challenger that *beats* the champion by at
	// least Margin (winner >= champion + Margin) — a model earns a fleet-wide
	// rollout, it is not granted one for breaking even.
	Margin float64
	// Promote is the verdict.
	Promote bool
	// Winner names the winning challenger in an N-way evaluation, "" when the
	// champion keeps its seat (and always "" from the 2-way holdout gate).
	Winner string
	// Scores is the N-way per-candidate scoreboard in ranked order (winner
	// first), nil from the 2-way holdout gate.
	Scores []CandidateScore
}

// CandidateScore is one model's online score in an N-way gate evaluation:
// cumulative accuracy and mean cross-entropy over the live labeled samples
// it has been judged on. Cumulative totals (not a sliding ring) keep the
// score a permutation-invariant function of the labeled set, so concurrent
// mirror arrival order can never change a verdict.
type CandidateScore struct {
	Name     string  `json:"name"`
	Accuracy float64 `json:"accuracy"`
	// CE is the mean cross-entropy on the true labels (lower is better) —
	// the tie-breaker when accuracies are equal.
	CE      float64 `json:"ce"`
	Samples int     `json:"samples"`
}

// rankScore is the deterministic seeded tie-break of last resort: two
// challengers identical on accuracy and CE are ordered by the fnv64a hash of
// (seed, name), so every same-seed evaluation agrees on the winner without
// favoring registration order.
func rankScore(seed int64, name string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(name))
	return h.Sum64()
}

// EvaluateShadowGate is the N-way generalization of the holdout gate: up to
// N challenger scores measured on live mirrored traffic are ranked against
// the champion's, and at most one challenger — the winner — is put up for
// promotion. Ranking is accuracy (higher wins), then mean CE (lower wins),
// then the seeded hash, then name; the ranking is a pure function of
// (seed, scores), so same-seed replays of the same labeled stream emit
// identical verdicts.
//
// The winner is promoted only when it earned the seat: at least minSamples
// labeled samples behind both its own score and the champion's, and an
// accuracy lead of at least margin over the champion. A margin above 1 is an
// impossible bar that force-rejects every challenger — the shadow
// equivalent of the 2-way gate's margin-below-minus-one rollback drill. With
// no challengers the champion trivially keeps its seat.
func EvaluateShadowGate(seed int64, champion CandidateScore, challengers []CandidateScore, margin float64, minSamples int) GateResult {
	g := GateResult{
		IncumbentAccuracy: champion.Accuracy,
		Margin:            margin,
	}
	if len(challengers) == 0 {
		return g
	}
	ranked := append([]CandidateScore(nil), challengers...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Accuracy != ranked[j].Accuracy {
			return ranked[i].Accuracy > ranked[j].Accuracy
		}
		if ranked[i].CE != ranked[j].CE {
			return ranked[i].CE < ranked[j].CE
		}
		hi, hj := rankScore(seed, ranked[i].Name), rankScore(seed, ranked[j].Name)
		if hi != hj {
			return hi < hj
		}
		return ranked[i].Name < ranked[j].Name
	})
	g.Scores = ranked
	top := ranked[0]
	g.CandidateAccuracy = top.Accuracy
	g.Holdout = top.Samples
	if top.Samples >= minSamples && champion.Samples >= minSamples &&
		top.Accuracy >= champion.Accuracy+margin {
		g.Winner = top.Name
		g.Promote = true
	}
	return g
}

// accuracyOn scores a framework on a raw (unscaled) dataset. The framework
// must be owned by the caller's goroutine (Predict is not goroutine-safe).
func accuracyOn(fw *core.Framework, ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	hits := 0
	for _, s := range ds.Samples {
		if class, _ := fw.Predict(window.Matrix(s.Vectors)); class == s.Label {
			hits++
		}
	}
	return float64(hits) / float64(ds.Len())
}

// evaluateGate compares a freshly trained candidate against the incumbent on
// a shared holdout neither trained on.
func evaluateGate(candidate, incumbent *core.Framework, holdout *dataset.Dataset, margin float64) GateResult {
	g := GateResult{
		CandidateAccuracy: accuracyOn(candidate, holdout),
		IncumbentAccuracy: accuracyOn(incumbent, holdout),
		Holdout:           holdout.Len(),
		Margin:            margin,
	}
	g.Promote = g.Holdout > 0 && g.CandidateAccuracy >= g.IncumbentAccuracy-margin
	return g
}
