package online

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quanterference/internal/core"
	"quanterference/internal/fault"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/serve"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// SmokeConfig sizes the end-to-end smoke episode.
type SmokeConfig struct {
	// Seed drives the whole episode (simulation, training, loop); two runs
	// with the same seed produce identical Timeline and PromotedWeights.
	Seed int64
	// Epochs and Workers configure both the initial training and every
	// retrain (defaults 25 and 2).
	Epochs  int
	Workers int
	// RejectMargin is the gate margin of the forced-reject phase; the
	// default -2 is an impossible bar (see GateConfig.Margin).
	RejectMargin float64
	// Hammer is how many concurrent clients pound the server during the
	// drift/promotion phase to prove reloads drop nothing (default 4).
	Hammer int
	// Log, when set, receives progress lines.
	Log func(format string, args ...interface{})
}

func (c *SmokeConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Epochs == 0 {
		c.Epochs = 25
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.RejectMargin == 0 {
		c.RejectMargin = -2
	}
	if c.Hammer == 0 {
		c.Hammer = 4
	}
	if c.Log == nil {
		c.Log = func(string, ...interface{}) {}
	}
}

// SmokeResult is the episode's audit trail.
type SmokeResult struct {
	// TrainAccuracy is the incumbent's holdout accuracy after initial
	// training.
	TrainAccuracy float64
	// Timeline is every phase's decisions rendered one per line
	// ("healthy w3 none", "drift w12 promote (...)"), the determinism
	// fingerprint same-seed runs must reproduce exactly.
	Timeline []string
	// Counts across all phases.
	DriftTrips, Retrains, Promotions, Rejections, Rollbacks int
	// PromotedWeights is the bit-exact weight snapshot of the last promoted
	// candidate.
	PromotedWeights [][]float64
	// HammerOK / HammerShed / HammerErr classify the concurrent predictions
	// issued while hot-reloads were happening: answered, shed with the typed
	// overload error, failed any other way (must be 0).
	HammerOK, HammerShed, HammerErr int64
}

func smokeTarget() core.TargetSpec {
	// 2 GiB x 2 ranks runs ~15 one-second windows healthy and ~8x that under
	// the fail-slow faults — enough stream for the detector's minimums while
	// the whole episode stays in simulated time.
	return core.TargetSpec{
		Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/tgt", Ranks: 2, EasyFileBytes: 2 << 30}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}
}

// firstWindows trims a stream to its first n windows in ascending order, so
// a long degraded run does not turn into a dozen back-to-back retrains.
func firstWindows(s Stream, n int) Stream {
	idxs := make([]int, 0, len(s.Windows))
	for idx := range s.Windows {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	if len(idxs) > n {
		idxs = idxs[:n]
	}
	out := Stream{
		Windows:      make(map[int]window.Matrix, len(idxs)),
		Degradations: make(map[int]float64, len(idxs)),
	}
	for _, idx := range idxs {
		out.Windows[idx] = s.Windows[idx]
		if deg, ok := s.Degradations[idx]; ok {
			out.Degradations[idx] = deg
		}
	}
	return out
}

func smokeRead(dir string, ranks int) []core.InterferenceSpec {
	return []core.InterferenceSpec{{
		Gen:   io500.New(io500.IorEasyRead, io500.Params{Dir: dir, Ranks: ranks, EasyFileBytes: 16 << 20}),
		Nodes: []string{"c1", "c2"},
		Ranks: ranks,
	}}
}

// smokeFaults degrades every OST disk by severity for the run's whole
// duration — the deterministic drift injection of the episode.
func smokeFaults(numOSTs int, severity float64) []fault.Spec {
	specs := make([]fault.Spec, 0, numOSTs)
	for i := 0; i < numOSTs; i++ {
		specs = append(specs, fault.Spec{
			Kind:     fault.DiskSlow,
			Target:   fmt.Sprintf("ost%d", i),
			Start:    0,
			Duration: 600 * sim.Second,
			Severity: severity,
		})
	}
	return specs
}

// SmokeEpisode runs the full continuous-learning story end to end on the
// simulator, deterministically:
//
//  1. collect a training dataset (baseline + read-interference variants) and
//     train the incumbent;
//  2. serve it (serve.Server) and wrap it in a Loop;
//  3. replay a healthy stream — no drift, no retrain;
//  4. inject fail-slow disks, replay the degraded stream — drift trips, a
//     warm-started candidate is retrained, gated, and hot-promoted while
//     concurrent clients hammer the server (nothing may drop);
//  5. force the gate impossible (RejectMargin) and replay degraded windows
//     again — the next candidate is rejected and the served model provably
//     unchanged (rollback).
//
// Any phase behaving out of character returns an error; the result carries
// the decision timeline and promoted weights for same-seed comparison.
func SmokeEpisode(ctx context.Context, cfg SmokeConfig) (*SmokeResult, error) {
	cfg.applyDefaults()
	res := &SmokeResult{}

	// Phase 0: train the incumbent exactly like the offline pipeline would.
	base := core.Scenario{Target: smokeTarget()}
	variants := []core.Variant{
		{Name: "read-light", Interference: smokeRead("/bgA", 2)},
		{Name: "read-heavy", Interference: smokeRead("/bgB", 6)},
	}
	cfg.Log("collecting training data (baseline + %d variants)", len(variants))
	ds, err := core.CollectDatasetCtx(ctx, base, variants,
		core.CollectorConfig{IncludeBaseline: true})
	if err != nil {
		return nil, fmt.Errorf("online: smoke collect: %w", err)
	}
	train := ml.TrainConfig{Epochs: cfg.Epochs, Workers: cfg.Workers}
	fw, conf, err := core.TrainFrameworkCtx(ctx, ds, core.FrameworkConfig{Seed: cfg.Seed, Train: train})
	if err != nil {
		return nil, fmt.Errorf("online: smoke train: %w", err)
	}
	res.TrainAccuracy = conf.Accuracy()
	cfg.Log("incumbent trained on %d samples, holdout accuracy %.3f", ds.Len(), res.TrainAccuracy)

	// The labeler needs the baseline trace; re-run the (deterministic)
	// baseline to get it.
	baseRes, err := core.RunCtx(ctx, core.Scenario{Target: smokeTarget()})
	if err != nil {
		return nil, fmt.Errorf("online: smoke baseline: %w", err)
	}
	labeler := label.New(baseRes.Records, sim.Second, 3)

	srv := serve.New(fw, serve.Config{})
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	loop, err := NewLoop(srv, Config{
		Seed:        cfg.Seed,
		RefAccuracy: res.TrainAccuracy,
		Train:       train,
		// The reference scaler is fit on the pooled training mix, so any
		// single healthy run already sits up to ~0.9 reference-std from the
		// pooled means. The fail-slow episode pushes several I/O-volume and
		// latency features past 1.5 std, so a 1.2-std effect floor with a
		// 10% feature quorum separates the two cleanly.
		Drift: DriftConfig{MinEffect: 1.2, FeatureFrac: 0.1},
	})
	if err != nil {
		return nil, err
	}

	record := func(phase string, ds []Decision) {
		for _, d := range ds {
			res.Timeline = append(res.Timeline, phase+" "+d.String())
			switch d.Action {
			case ActionPromote:
				res.Promotions++
				res.PromotedWeights = d.CandidateWeights
			case ActionReject:
				res.Rejections++
			}
			if d.Gate != nil {
				res.Retrains++
				res.DriftTrips++
			}
			if d.Rollback {
				res.Rollbacks++
			}
		}
	}
	const labelDelay = 2

	// Phase 1: a healthy stream (the light-interference mix the model was
	// trained on) must not trip anything.
	cfg.Log("phase 1: healthy replay")
	healthyRun, err := core.RunCtx(ctx, core.Scenario{Target: smokeTarget(), Interference: smokeRead("/bgA", 2)})
	if err != nil {
		return nil, fmt.Errorf("online: smoke healthy run: %w", err)
	}
	healthyDecisions, err := loop.Replay(ctx, StreamFromRun(healthyRun, labeler), labelDelay)
	if err != nil {
		return nil, err
	}
	record("healthy", healthyDecisions)
	for _, d := range healthyDecisions {
		if d.Action != ActionNone {
			return res, fmt.Errorf("online: smoke: healthy phase produced %v", d)
		}
	}

	// Phase 2: fail-slow disks. The stream drifts, a candidate is retrained
	// and promoted through the server's hot-reload — while concurrent
	// clients keep predicting. Nothing may fail with anything but the typed
	// overload shed.
	cfg.Log("phase 2: fail-slow disks (drift -> retrain -> promote)")
	faultRun, err := core.RunCtx(ctx, core.Scenario{
		Target:  smokeTarget(),
		MaxTime: 240 * sim.Second,
		Faults:  smokeFaults(baseRes.NTargets-1, 8),
	})
	if err != nil {
		return nil, fmt.Errorf("online: smoke fault run: %w", err)
	}
	faultStream := firstWindows(StreamFromRun(faultRun, labeler), 48)
	if len(faultStream.Windows) == 0 {
		return nil, errors.New("online: smoke fault run produced no windows")
	}

	var sample window.Matrix
	for _, mat := range baseRes.Windows {
		sample = mat
		break
	}
	hammerCtx, stopHammer := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Hammer; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for hammerCtx.Err() == nil {
				_, _, err := srv.Predict(hammerCtx, sample)
				switch {
				case err == nil:
					atomic.AddInt64(&res.HammerOK, 1)
				case errors.Is(err, context.Canceled):
				case errors.Is(err, serve.ErrOverloaded):
					atomic.AddInt64(&res.HammerShed, 1)
				default:
					atomic.AddInt64(&res.HammerErr, 1)
				}
			}
		}()
	}
	faultDecisions, rerr := loop.Replay(ctx, faultStream, labelDelay)
	stopHammer()
	wg.Wait()
	if rerr != nil {
		return nil, rerr
	}
	record("drift", faultDecisions)
	promoted := 0
	for _, d := range faultDecisions {
		if d.Action == ActionPromote {
			promoted++
		}
	}
	if promoted == 0 {
		return res, errors.New("online: smoke: fault phase promoted nothing")
	}
	if res.HammerErr > 0 {
		return res, fmt.Errorf("online: smoke: %d concurrent predictions failed hard during hot-reload", res.HammerErr)
	}
	if res.HammerOK == 0 {
		return res, errors.New("online: smoke: no concurrent predictions were answered")
	}
	cfg.Log("phase 2: %d promotion(s); hammer ok=%d shed=%d", promoted, res.HammerOK, res.HammerShed)

	// Phase 3: with an impossible gate margin, the same degraded stream must
	// produce a candidate that is trained, rejected, and never served.
	cfg.Log("phase 3: forced-reject drill (gate margin %g)", cfg.RejectMargin)
	loop.SetGateMargin(cfg.RejectMargin)
	servedBefore := srv.Framework()
	rejectDecisions, err := loop.Replay(ctx, faultStream, labelDelay)
	if err != nil {
		return nil, err
	}
	record("reject", rejectDecisions)
	rejected := 0
	for _, d := range rejectDecisions {
		if d.Action == ActionPromote {
			return res, fmt.Errorf("online: smoke: promotion %v through an impossible gate", d)
		}
		if d.Action == ActionReject {
			rejected++
		}
	}
	if rejected == 0 {
		return res, errors.New("online: smoke: forced-reject phase rejected nothing")
	}
	if srv.Framework() != servedBefore {
		return res, errors.New("online: smoke: served framework changed despite rejection")
	}
	cfg.Log("phase 3: %d rejection(s), served model unchanged", rejected)

	return res, nil
}
