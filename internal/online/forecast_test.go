package online

import (
	"context"
	"strings"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/sim"
)

// loopForecaster builds a small forecaster over the loop's test shape
// (testFeat raw features). Threshold 0 makes every prediction "degrading" at
// the first horizon, so the decision-annotation path is deterministic.
func loopForecaster(history, threshold int, horizons []int) *forecast.Forecaster {
	f := &forecast.Forecaster{History: history, Threshold: threshold, Bins: label.BinaryBins()}
	for _, k := range horizons {
		scaler := &dataset.Scaler{Mean: make([]float64, 2*testFeat), Std: make([]float64, 2*testFeat)}
		for j := range scaler.Std {
			scaler.Std[j] = 1
		}
		f.Heads = append(f.Heads, &forecast.Head{
			Horizon: k,
			Model: ml.NewKernelModel(ml.KernelConfig{
				NTargets: history, NFeat: 2 * testFeat, Classes: 2, Seed: 5 + int64(k),
			}),
			Scaler: scaler,
		})
	}
	return f
}

// TestLoopForecasts: a loop with a forecaster annotates every decision once
// the window history is warm — Forecast nil for the first History-1 steps,
// non-nil after, with the forecasts counter and lead gauge tracking it. With
// Threshold 0 the decision string cites the predicted lead.
func TestLoopForecasts(t *testing.T) {
	fw := trainedFramework(t, 1)
	cfg := quickConfig(7)
	cfg.Forecaster = loopForecaster(3, 0, []int{1, 2})
	l, err := NewLoop(&fakePromoter{fw: fw}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := sim.NewRNG(3)
	for i := 0; i < 6; i++ {
		l.OfferWindow(driftedMatrix(rng))
		d, err := l.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		warm := i >= 2 // 3-window history
		if got := d.Forecast != nil; got != warm {
			t.Fatalf("step %d: Forecast non-nil = %v, want %v", i, got, warm)
		}
		if !warm {
			continue
		}
		if len(d.Forecast.Horizons) != 2 || d.Forecast.LeadWindows != 1 {
			t.Fatalf("step %d forecast %+v", i, d.Forecast)
		}
		if !d.Forecast.Degrading() {
			t.Fatalf("step %d: threshold 0 must always predict degradation", i)
		}
		if s := d.String(); !strings.Contains(s, "degradation predicted in 1 window") {
			t.Fatalf("decision string %q does not cite the forecast", s)
		}
	}

	snap := l.Stats()
	if v, _ := snap.Counter("online", "", "forecasts"); v != 4 {
		t.Fatalf("forecasts counter = %d, want 4", v)
	}
	found := false
	for _, g := range snap.Gauges {
		if g.Key.Component == "online" && g.Key.Name == "forecast_lead_windows" {
			found = true
			if g.Value != 1 {
				t.Fatalf("lead gauge = %g, want 1", g.Value)
			}
		}
	}
	if !found {
		t.Fatal("forecast_lead_windows gauge not exported")
	}
}

// TestLoopWithoutForecaster pins the default: no forecaster, no Forecast on
// any decision, and the plain decision string is unchanged.
func TestLoopWithoutForecaster(t *testing.T) {
	fw := trainedFramework(t, 1)
	l, err := NewLoop(&fakePromoter{fw: fw}, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 5; i++ {
		l.OfferWindow(driftedMatrix(rng))
		d, err := l.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Forecast != nil {
			t.Fatalf("step %d grew a forecast without a forecaster", i)
		}
		if strings.Contains(d.String(), "degradation predicted") {
			t.Fatalf("decision string cites a forecast: %q", d.String())
		}
	}
}
