package online

import (
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/monitor/window"
)

// TestDetectorVarianceLargeOffset is the regression test for the
// catastrophic-cancellation bug in the streaming variance: with the old
// single-pass sumSq/n - mean^2 formula, features sitting on a large offset
// (byte/op counters around 1e9) square to ~1e18, where one float64 ulp is
// 128 — so a true variance of 16 computed as exactly 0 and the
// variance-ratio signal never fired. The construction below is exact in
// float64: values 1e9±4 square to 1e18±8e9 precisely (the +16 term is below
// the ulp and rounds away), so the old formula's sumSq/n and mean² are both
// exactly 1e18 while the Welford moments recover the true variance.
func TestDetectorVarianceLargeOffset(t *testing.T) {
	ref := &dataset.Scaler{Mean: []float64{1e9}, Std: []float64{0.5}}
	d := NewDetector(ref, 0, DriftConfig{})

	// Balanced ±4 pairs: stream mean is exactly the reference mean (the
	// mean-shift signal stays quiet), true variance is exactly 16 — a 64x
	// ratio over the reference variance 0.25, far past the default 16x trip.
	for w := 0; w < 8; w++ {
		d.ObserveWindow(window.Matrix{{1e9 + 4}, {1e9 - 4}})
	}

	s := d.Score()
	// The running mean re-centres on 1e9 up to Welford's rounding (~ulp(1e9)
	// per step); anything near the 0.75 effect gate would be a real bug.
	if s.MaxEffect > 1e-5 {
		t.Fatalf("mean drifted (effect %g); construction keeps the mean balanced", s.MaxEffect)
	}
	if !s.Drifted || s.Reason != "features" {
		t.Fatalf("variance-ratio signal did not trip: drifted=%v reason=%q frac=%g "+
			"(catastrophic cancellation regression)", s.Drifted, s.Reason, s.FeatureFrac)
	}
}

// TestDetectorVarianceMatchesDirect pins the streaming variance against a
// direct two-pass computation on ordinary-scale data: these values have
// population variance exactly 116/16 = 7.25 around a mean of exactly 5, so
// with a reference variance of 1 the ratio signal must trip at a 7.24x
// threshold and stay quiet at 7.26x.
func TestDetectorVarianceMatchesDirect(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	ref := &dataset.Scaler{Mean: []float64{5}, Std: []float64{1}}
	for _, tc := range []struct {
		ratio float64
		want  bool
	}{{7.24, true}, {7.26, false}} {
		d := NewDetector(ref, 0, DriftConfig{VarRatio: tc.ratio})
		for _, v := range vals {
			d.ObserveWindow(window.Matrix{{v}})
		}
		s := d.Score()
		if s.MaxEffect > 1e-9 {
			t.Fatalf("mean shifted (effect %g); values average to the reference", s.MaxEffect)
		}
		if s.Drifted != tc.want {
			t.Fatalf("VarRatio %g: drifted=%v, want %v (streaming variance should be 7.25)",
				tc.ratio, s.Drifted, tc.want)
		}
	}
}
