package online

import (
	"fmt"
	"math"

	"quanterference/internal/dataset"
	"quanterference/internal/monitor/window"
)

// DriftConfig tunes the Detector. The zero value is usable: every field
// defaults to the values the continuous-learning loop ships with.
type DriftConfig struct {
	// ZCrit is the per-feature z threshold on the streaming-mean test
	// (default 8). The z statistic grows with sqrt(observations), so the
	// effect-size gate below keeps tiny-but-significant shifts from tripping.
	ZCrit float64
	// MinEffect is the minimum standardized mean shift |mean-ref|/refStd a
	// feature needs to count as drifted (default 0.75 reference standard
	// deviations), so high-volume streams still need a material shift.
	MinEffect float64
	// VarRatio flags a feature whose streaming variance exceeds the training
	// variance by this factor (default 16). The test is high-side only: a
	// narrowing distribution (e.g. a quiet stretch of a pooled training mix)
	// is not actionable drift.
	VarRatio float64
	// FeatureFrac is the fraction of features that must drift to trip the
	// distribution signal (default 0.25).
	FeatureFrac float64
	// MinWindows is the number of observed windows before the distribution
	// test is live (default 8).
	MinWindows int
	// QualityWindow is the rolling window, in labeled samples, of the
	// prediction-quality signal (default 32).
	QualityWindow int
	// MinLabeled is the number of labeled samples before the quality test is
	// live (default 16).
	MinLabeled int
	// AccuracyDrop trips the quality signal when rolling accuracy falls this
	// far below the reference accuracy (default 0.2).
	AccuracyDrop float64
}

func (c *DriftConfig) applyDefaults() {
	if c.ZCrit == 0 {
		c.ZCrit = 8
	}
	if c.MinEffect == 0 {
		c.MinEffect = 0.75
	}
	if c.VarRatio == 0 {
		c.VarRatio = 16
	}
	if c.FeatureFrac == 0 {
		c.FeatureFrac = 0.25
	}
	if c.MinWindows == 0 {
		c.MinWindows = 8
	}
	if c.QualityWindow == 0 {
		c.QualityWindow = 32
	}
	if c.MinLabeled == 0 {
		c.MinLabeled = 16
	}
	if c.AccuracyDrop == 0 {
		c.AccuracyDrop = 0.2
	}
}

// Score is one drift evaluation: the two signals, their inputs, and the
// combined verdict. Scores are pure functions of the observed windows and
// labels, so same-seed runs produce identical Score sequences.
type Score struct {
	// Windows and Labeled count the observations behind each signal.
	Windows int
	Labeled int
	// FeatureFrac is the fraction of features currently drifted (mean z-test
	// with effect-size gate, or variance-ratio test); MaxZ and MaxEffect are
	// the largest per-feature statistics behind it.
	FeatureFrac float64
	MaxZ        float64
	MaxEffect   float64
	// RollingAccuracy and RollingCE summarize the labeled quality window
	// (accuracy 0 and CE 0 until anything is labeled).
	RollingAccuracy float64
	RollingCE       float64
	// Drifted is the combined verdict; Reason says which signal tripped
	// ("features", "quality", or "features+quality"; empty when healthy).
	Drifted bool
	Reason  string
}

// Detector is the drift detector of the continuous-learning loop. It
// combines two signals against a training-time reference:
//
//   - distribution shift: per-feature streaming mean/variance tested against
//     the incumbent's scaler snapshot (the training set's mean/std), with a
//     z-test gated by a minimum effect size;
//   - prediction-quality decay: rolling accuracy and cross-entropy over
//     delayed-labeled windows, compared to the reference (training holdout)
//     accuracy.
//
// A Detector is deterministic (pure arithmetic over its observations) and is
// not goroutine-safe; the Loop owns one and calls it from a single
// goroutine.
type Detector struct {
	cfg    DriftConfig
	refM   []float64 // training-time per-feature mean
	refS   []float64 // training-time per-feature std (>= 1e-12, scaler contract)
	refAcc float64

	// Streaming distribution state: every per-target row of every observed
	// window is one observation, matching how FitScaler pooled targets.
	// Moments are kept in Welford form (running mean + sum of squared
	// deviations M2) rather than raw sum/sumSq: the single-pass
	// sumSq/n - mean^2 formula cancels catastrophically for large-magnitude
	// features (byte/op counters around 1e9 square to 1e18, where one float64
	// ulp is 128 — any real variance below that computes as 0 or negative),
	// which silently disabled the variance-ratio drift signal on exactly the
	// high-volume counters it exists to watch.
	nWin int
	n    float64
	mean []float64
	m2   []float64 // per-feature sum of squared deviations from the mean

	// Rolling quality ring.
	correct []bool
	ces     []float64
	labeled int // total labeled seen; ring index = labeled % len
}

// NewDetector builds a detector against a training snapshot: ref carries the
// per-feature mean/std of the incumbent's training data (its fitted scaler),
// refAccuracy the incumbent's holdout accuracy at training time (0 disables
// the quality signal until Reset provides one).
func NewDetector(ref *dataset.Scaler, refAccuracy float64, cfg DriftConfig) *Detector {
	cfg.applyDefaults()
	d := &Detector{cfg: cfg}
	d.Reset(ref, refAccuracy)
	return d
}

// Reset re-references the detector — after a promotion (the new incumbent's
// scaler and gate accuracy become the baseline) or a rejection (clearing the
// streams enforces a re-accumulation cooldown before the next trip).
func (d *Detector) Reset(ref *dataset.Scaler, refAccuracy float64) {
	if ref == nil || len(ref.Mean) == 0 || len(ref.Mean) != len(ref.Std) {
		panic(fmt.Sprintf("online: bad detector reference scaler %+v", ref))
	}
	d.refM = append(d.refM[:0], ref.Mean...)
	d.refS = append(d.refS[:0], ref.Std...)
	d.refAcc = refAccuracy
	d.nWin, d.n = 0, 0
	d.mean = make([]float64, len(ref.Mean))
	d.m2 = make([]float64, len(ref.Mean))
	d.correct = d.correct[:0]
	d.ces = d.ces[:0]
	d.labeled = 0
}

// ObserveWindow feeds one live (unlabeled) window matrix into the
// distribution stream.
func (d *Detector) ObserveWindow(mat window.Matrix) {
	for _, row := range mat {
		if len(row) != len(d.refM) {
			panic(fmt.Sprintf("online: window row has %d features, reference has %d",
				len(row), len(d.refM)))
		}
		d.n++
		for f, x := range row {
			delta := x - d.mean[f]
			d.mean[f] += delta / d.n
			d.m2[f] += delta * (x - d.mean[f])
		}
	}
	d.nWin++
}

// ObserveLabeled feeds one delayed-labeled prediction outcome into the
// quality stream: whether the incumbent classified the window correctly, and
// its cross-entropy on the true label.
func (d *Detector) ObserveLabeled(correct bool, crossEntropy float64) {
	if len(d.correct) < d.cfg.QualityWindow {
		d.correct = append(d.correct, correct)
		d.ces = append(d.ces, crossEntropy)
	} else {
		i := d.labeled % d.cfg.QualityWindow
		d.correct[i] = correct
		d.ces[i] = crossEntropy
	}
	d.labeled++
}

// Score evaluates both signals at the current stream state.
func (d *Detector) Score() Score {
	s := Score{Windows: d.nWin, Labeled: d.labeled}

	if d.nWin >= d.cfg.MinWindows && d.n > 1 {
		drifted := 0
		for f := range d.refM {
			mean := d.mean[f]
			variance := d.m2[f] / d.n // population variance, like FitScaler
			effect := math.Abs(mean-d.refM[f]) / d.refS[f]
			z := effect * math.Sqrt(d.n)
			if z > s.MaxZ {
				s.MaxZ = z
			}
			if effect > s.MaxEffect {
				s.MaxEffect = effect
			}
			refVar := d.refS[f] * d.refS[f]
			ratio := (variance + 1e-12) / (refVar + 1e-12)
			if (z > d.cfg.ZCrit && effect > d.cfg.MinEffect) ||
				ratio > d.cfg.VarRatio {
				drifted++
			}
		}
		s.FeatureFrac = float64(drifted) / float64(len(d.refM))
	}

	if len(d.correct) > 0 {
		hits := 0
		var ce float64
		for i, ok := range d.correct {
			if ok {
				hits++
			}
			ce += d.ces[i]
		}
		s.RollingAccuracy = float64(hits) / float64(len(d.correct))
		s.RollingCE = ce / float64(len(d.ces))
	}

	features := s.FeatureFrac >= d.cfg.FeatureFrac
	quality := d.refAcc > 0 && d.labeled >= d.cfg.MinLabeled &&
		d.refAcc-s.RollingAccuracy > d.cfg.AccuracyDrop
	switch {
	case features && quality:
		s.Drifted, s.Reason = true, "features+quality"
	case features:
		s.Drifted, s.Reason = true, "features"
	case quality:
		s.Drifted, s.Reason = true, "quality"
	}
	return s
}
