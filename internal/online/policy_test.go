package online

import (
	"context"
	"strings"
	"testing"

	"quanterference/internal/mitigate"
	"quanterference/internal/sim"
)

// TestLoopPolicyVerdicts pins the loop→policy handoff: with a Config.Policy
// set, every Step after the first OfferWindow carries a Mitigation verdict,
// the engage-class-0 policy engages immediately, the decision string cites
// the mitigation, and the online stats export the engagement counter and
// gauge. Without a policy the field stays nil.
func TestLoopPolicyVerdicts(t *testing.T) {
	fw := trainedFramework(t, 1)
	cfg := quickConfig(7)
	pol, err := mitigate.NewReactiveThrottle(mitigate.WithEngageClass(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = pol
	l, err := NewLoop(&fakePromoter{fw: fw}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Before any window is offered there is nothing to judge.
	d, err := l.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mitigation != nil {
		t.Fatalf("verdict before first window: %+v", d.Mitigation)
	}

	rng := sim.NewRNG(3)
	for i := 0; i < 4; i++ {
		l.OfferWindow(driftedMatrix(rng))
		d, err = l.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if d.Mitigation == nil {
			t.Fatalf("step %d: no verdict with a policy configured", i)
		}
		if !d.Mitigation.Engaged() || !d.Mitigation.Throttle {
			t.Fatalf("step %d: engage-class-0 policy not engaged: %+v", i, d.Mitigation)
		}
	}
	if s := d.String(); !strings.Contains(s, "[mitigate: throttle") {
		t.Fatalf("decision string misses the verdict: %q", s)
	}

	snap := l.Stats()
	if got, _ := snap.Counter("online", "", "mitigation_engagements"); got != 4 {
		t.Fatalf("mitigation_engagements = %d, want 4", got)
	}
	found := false
	for _, g := range snap.Gauges {
		if g.Key.Component == "online" && g.Key.Name == "mitigation_engaged" {
			found = true
			if g.Value != 1 {
				t.Fatalf("mitigation_engaged gauge = %v, want 1", g.Value)
			}
		}
	}
	if !found {
		t.Fatal("mitigation_engaged gauge not exported")
	}

	// No policy → the field stays nil on the same stream.
	l2, err := NewLoop(&fakePromoter{fw: trainedFramework(t, 1)}, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	l2.OfferWindow(driftedMatrix(sim.NewRNG(3)))
	if d, err := l2.Step(ctx); err != nil || d.Mitigation != nil {
		t.Fatalf("policy-less loop produced a verdict: %+v err %v", d.Mitigation, err)
	}
}

// TestLoopPolicyUsesForecast pins the proactive path through the loop: a
// threshold-0 forecaster marks every warm window as degrading at horizon 1,
// so a proactive policy engages with a forecast reason even though the
// engage-class threshold alone would not trip on every window. The verdict
// timeline must be identical across same-seed loops — the loop-level
// statement of the policy determinism contract.
func TestLoopPolicyUsesForecast(t *testing.T) {
	run := func() []mitigate.Verdict {
		fw := trainedFramework(t, 1)
		cfg := quickConfig(7)
		cfg.Forecaster = loopForecaster(3, 0, []int{1, 2})
		pol, err := mitigate.NewProactiveThrottle(
			mitigate.WithLead(2), mitigate.WithEngageClass(3))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy = pol
		l, err := NewLoop(&fakePromoter{fw: fw}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		rng := sim.NewRNG(11)
		var verdicts []mitigate.Verdict
		for i := 0; i < 6; i++ {
			l.OfferWindow(driftedMatrix(rng))
			d, err := l.Step(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if d.Mitigation == nil {
				t.Fatalf("step %d: no verdict", i)
			}
			verdicts = append(verdicts, *d.Mitigation)
		}
		return verdicts
	}

	v1 := run()
	// EngageClass 3 is unreachable on a binary classifier, so any engagement
	// must come from the forecast; the forecaster warms after History=3
	// windows, and threshold 0 makes every warm prediction "degrading".
	engaged := 0
	for i, v := range v1 {
		if v.Engaged() {
			engaged++
			if !strings.Contains(v.Reason, "forecast") && !strings.Contains(v.Reason, "cooldown") {
				t.Fatalf("step %d: engagement not forecast-driven: %+v", i, v)
			}
		}
	}
	if engaged == 0 {
		t.Fatal("proactive policy never engaged on a degrading forecast stream")
	}

	v2 := run()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("same-seed verdict timelines diverged at step %d: %+v vs %+v", i, v1[i], v2[i])
		}
	}
}
