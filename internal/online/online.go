// Package online is the continuous-learning pipeline around a serving
// framework: it watches the live window stream for distribution drift and
// prediction-quality decay, keeps a bounded reservoir of delayed-labeled
// examples, retrains a candidate warm-started from the incumbent's weights
// when drift trips, and promotes the candidate through the serving layer's
// atomic hot-reload only if it clears an accuracy gate on a holdout neither
// model trained on — otherwise the incumbent keeps serving (rollback).
//
// Everything downstream of the window stream is deterministic: the example
// reservoir, the drift statistics, the holdout split, and the warm-started
// retrain are all seeded, so two same-seed replays of the same stream make
// identical drift decisions and promote bit-identical weights.
//
// Ownership: the serving layer owns the framework it serves (its
// Predict/PredictBatch reuse scratch and are funneled through one batcher
// goroutine), so the Loop never touches it. The Loop holds a private
// evaluation clone of the incumbent for labeling and gate scoring, hands a
// fresh candidate to the promoter on promotion, and re-clones it for its own
// use. The Loop itself is single-goroutine: feed it from one place.
package online

import (
	"context"
	"fmt"
	"math"
	"time"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/mitigate"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/obs"
)

// Promoter is where gated candidates go — the programmatic surface of
// serve.Server (Framework / ReloadFramework).
type Promoter interface {
	// Framework returns the currently served framework. The Loop only reads
	// its identity (rollback verification); it never predicts with it.
	Framework() *core.Framework
	// ReloadFramework atomically swaps the served framework; ownership of the
	// argument transfers to the promoter. An error means the swap was refused
	// and the old framework still serves.
	ReloadFramework(fw *core.Framework) error
}

// Config tunes the Loop. The zero value is usable everywhere except
// RefAccuracy, which should carry the incumbent's training holdout accuracy
// (0 leaves the quality-decay signal disabled until the first promotion).
type Config struct {
	// Seed drives every stochastic choice (reservoir, splits, retrain
	// shuffling); same seed + same stream = same decisions and weights.
	Seed int64
	// RefAccuracy is the incumbent's holdout accuracy at training time — the
	// baseline the quality-decay drift signal compares against.
	RefAccuracy float64
	// BufferCap bounds the labeled-example reservoir (default 256).
	BufferCap int
	// MinExamples is how many buffered examples a retrain needs; drift trips
	// below it stay pending until enough labels arrive (default 32).
	MinExamples int
	// Profile names the hardware profile the stream's windows come from
	// (default "paper"); retrain datasets assembled from the reservoir are
	// stamped with it, so online-retrained data merges cleanly with offline
	// collections instead of reading as unstamped.
	Profile string
	// Forecaster, when set, is fed every OfferWindow matrix through a
	// sliding history tracker; once warm, each Step's Decision carries its
	// latest Prediction, so drift decisions can cite "degradation predicted
	// in k windows". The Loop owns it (single-goroutine scratch) — clone
	// before sharing one with a serving layer.
	Forecaster *forecast.Forecaster
	// Policy, when set, closes the actuation loop from inside the learning
	// loop: each Step classifies the latest offered window with the
	// incumbent, hands the class plus the current forecast to the policy,
	// and reports its Verdict on the Decision (it does not actuate — wire
	// the verdict into a mitigate.Controller or scheduler to act on it).
	// The Loop owns the policy's hysteresis state; policies are
	// deterministic state machines, so same-seed replays produce the same
	// verdict timeline. Combine with Forecaster for proactive policies.
	Policy mitigate.Policy
	// Drift tunes the detector, Gate the promotion gate, Train the retrain
	// (epochs, LR, Workers — warm starts reuse the incumbent architecture).
	Drift DriftConfig
	Gate  GateConfig
	Train ml.TrainConfig
	// Sink receives the loop's counters and histograms. Nil allocates a
	// private sink so Stats always works.
	Sink *obs.Sink
}

func (c *Config) applyDefaults() {
	if c.BufferCap == 0 {
		c.BufferCap = 256
	}
	if c.MinExamples == 0 {
		c.MinExamples = 32
	}
	if c.Profile == "" {
		c.Profile = "paper"
	}
	c.Gate.applyDefaults()
	if c.Sink == nil {
		c.Sink = obs.New()
	}
}

// Action is what a Step did.
type Action int

const (
	// ActionNone: healthy, or drift pending more labeled examples.
	ActionNone Action = iota
	// ActionPromote: a retrained candidate cleared the gate and now serves.
	ActionPromote
	// ActionReject: a candidate was trained and discarded (gate failure or
	// refused reload); the incumbent keeps serving.
	ActionReject
)

func (a Action) String() string {
	switch a {
	case ActionPromote:
		return "promote"
	case ActionReject:
		return "reject"
	default:
		return "none"
	}
}

// Decision is one Step's outcome.
type Decision struct {
	// Window is the stream position, filled in by Replay (-1 from a bare
	// Step).
	Window int
	// Action is the verdict; Score the drift evaluation behind it.
	Action Action
	Score  Score
	// Forecast is the loop forecaster's latest prediction (nil when no
	// forecaster is configured or its window history is not yet warm): the
	// slowdown class k windows ahead per horizon, and the derived
	// time-to-degradation.
	Forecast *forecast.Prediction
	// Gate and CandidateWeights are set when a retrain ran: the gate verdict
	// and the candidate's bit-exact weight snapshot (the determinism tests
	// compare these across same-seed runs).
	Gate             *GateResult
	CandidateWeights [][]float64
	// Rollback marks a promotion the promoter refused (the candidate cleared
	// the gate but the reload failed); the incumbent was kept.
	Rollback bool
	// Mitigation is the configured policy's verdict on the latest window
	// (nil when no Config.Policy is set, or before the first OfferWindow):
	// what the actuation layer should be doing right now, with the policy's
	// deterministic reason string.
	Mitigation *mitigate.Verdict
}

// String renders the decision for logs.
func (d Decision) String() string {
	var s string
	if d.Gate == nil {
		if d.Score.Drifted {
			s = fmt.Sprintf("w%d none (drift %q pending examples)", d.Window, d.Score.Reason)
		} else {
			s = fmt.Sprintf("w%d none", d.Window)
		}
	} else {
		s = fmt.Sprintf("w%d %s (drift %q, cand %.3f vs inc %.3f on %d held out, margin %g)",
			d.Window, d.Action, d.Score.Reason,
			d.Gate.CandidateAccuracy, d.Gate.IncumbentAccuracy, d.Gate.Holdout, d.Gate.Margin)
		if d.Rollback {
			s += " [rollback: reload refused]"
		}
	}
	if d.Forecast != nil && d.Forecast.Degrading() {
		s += fmt.Sprintf(" [degradation predicted in %d window(s)]", d.Forecast.LeadWindows)
	}
	if d.Mitigation != nil && d.Mitigation.Engaged() {
		switch {
		case d.Mitigation.Defer:
			s += fmt.Sprintf(" [mitigate: defer (%s)]", d.Mitigation.Reason)
		default:
			s += fmt.Sprintf(" [mitigate: throttle (%s)]", d.Mitigation.Reason)
		}
	}
	return s
}

// Loop is the continuous-learning controller. Not goroutine-safe: one
// goroutine feeds windows/labels and calls Step; the promoter it drives may
// serve concurrently.
type Loop struct {
	cfg      Config
	promoter Promoter

	// incumbent is the Loop's private evaluation clone of whatever the
	// promoter serves: used for labeling outcomes and gate scoring without
	// touching the served instance.
	incumbent *core.Framework
	refAcc    float64
	det       *Detector
	buf       *Buffer
	tracker   *forecast.Tracker // nil unless Config.Forecaster is set
	retrains  int

	// lastWindow is the most recent OfferWindow matrix, kept so a configured
	// policy can be fed the incumbent's class for it at the next Step.
	lastWindow window.Matrix
	seenWin    int

	mWindows    *obs.Counter
	mLabeled    *obs.Counter
	mDriftTrips *obs.Counter
	mRetrains   *obs.Counter
	mPromotions *obs.Counter
	mRejections *obs.Counter
	mRollbacks  *obs.Counter
	mForecasts  *obs.Counter
	mMitEngage  *obs.Counter
	gBuffer     *obs.Gauge
	gLead       *obs.Gauge
	gMitEngaged *obs.Gauge
	hDriftFrac  *obs.Histogram
	hRollAcc    *obs.Histogram
	hGateAcc    *obs.Histogram
	hRetrainNS  *obs.Histogram
}

// NewLoop builds the controller around a promoter that is already serving an
// incumbent. The Loop clones that incumbent for private evaluation, so the
// promoter may keep serving it concurrently.
func NewLoop(p Promoter, cfg Config) (*Loop, error) {
	cfg.applyDefaults()
	inc, err := p.Framework().Clone()
	if err != nil {
		return nil, fmt.Errorf("online: cloning incumbent: %w", err)
	}
	l := &Loop{
		cfg:       cfg,
		promoter:  p,
		incumbent: inc,
		refAcc:    cfg.RefAccuracy,
		det:       NewDetector(inc.Scaler, cfg.RefAccuracy, cfg.Drift),
		buf:       NewBuffer(cfg.BufferCap, cfg.Seed^0xb0ffe4),

		mWindows:    cfg.Sink.Counter("online", "", "windows"),
		mLabeled:    cfg.Sink.Counter("online", "", "labeled"),
		mDriftTrips: cfg.Sink.Counter("online", "", "drift_trips"),
		mRetrains:   cfg.Sink.Counter("online", "", "retrains"),
		mPromotions: cfg.Sink.Counter("online", "", "promotions"),
		mRejections: cfg.Sink.Counter("online", "", "rejections"),
		mRollbacks:  cfg.Sink.Counter("online", "", "rollbacks"),
		mForecasts:  cfg.Sink.Counter("online", "", "forecasts"),
		mMitEngage:  cfg.Sink.Counter("online", "", "mitigation_engagements"),
		gBuffer:     cfg.Sink.Gauge("online", "", "buffer_fill"),
		gLead:       cfg.Sink.Gauge("online", "", "forecast_lead_windows"),
		gMitEngaged: cfg.Sink.Gauge("online", "", "mitigation_engaged"),
		hDriftFrac:  cfg.Sink.Histogram("online", "", "feature_drift_frac", obs.UnitBuckets()),
		hRollAcc:    cfg.Sink.Histogram("online", "", "rolling_accuracy", obs.UnitBuckets()),
		hGateAcc:    cfg.Sink.Histogram("online", "", "gate_candidate_accuracy", obs.UnitBuckets()),
		hRetrainNS:  cfg.Sink.Histogram("online", "", "retrain_ns", obs.TimeBuckets()),
	}
	if cfg.Forecaster != nil {
		l.tracker = forecast.NewTracker(cfg.Forecaster)
	}
	return l, nil
}

// Stats snapshots the loop's metrics.
func (l *Loop) Stats() *obs.Snapshot { return l.cfg.Sink.Snapshot() }

// Incumbent returns the Loop's private evaluation clone of the serving
// model. Callers may Predict on it only from the Loop's goroutine.
func (l *Loop) Incumbent() *core.Framework { return l.incumbent }

// BufferLen is the resident labeled-example count.
func (l *Loop) BufferLen() int { return l.buf.Len() }

// bufferSchema derives the dataset schema the reservoir exports and retrains
// under: the incumbent's dims, with synthesized names when the feature width
// is non-standard (ablations, tests).
func (l *Loop) bufferSchema() (names []string, nTargets, classes int) {
	nTargets, nFeat := l.incumbent.Dims()
	names = window.FeatureNames()
	if len(names) != nFeat {
		names = make([]string, nFeat)
		for i := range names {
			names[i] = fmt.Sprintf("f%d", i)
		}
	}
	return names, nTargets, l.incumbent.Classes()
}

// ExportBuffer snapshots the labeled-example reservoir as a dataset stamped
// with the loop's hardware profile and instance as the run name — the
// persistence/interchange hook the fleet layer uses: each replica exports
// under its own name, the coordinator merges the exports with
// dataset.MergeAll, and the merged history digests identically regardless of
// which replica answered first. Vectors are shared with the buffered
// matrices (read-only); Save the export for a disk round trip.
func (l *Loop) ExportBuffer(instance string) *dataset.Dataset {
	names, nTargets, classes := l.bufferSchema()
	return l.buf.DatasetAs(instance, names, nTargets, classes, l.cfg.Profile)
}

// ImportBuffer replays an exported reservoir dataset (another instance's
// ExportBuffer, or this one's reloaded after a restart) through the loop's
// reservoir in sample order, after checking it matches the incumbent's input
// schema. The buffer stays a deterministic function of its seed and the
// complete offer sequence.
func (l *Loop) ImportBuffer(ds *dataset.Dataset) error {
	names, nTargets, classes := l.bufferSchema()
	if ds.NTargets != nTargets || len(ds.FeatureNames) != len(names) || ds.Classes != classes {
		return fmt.Errorf("%w: import is %dx%d/%d classes, incumbent reads %dx%d/%d classes",
			dataset.ErrSchemaMismatch, ds.NTargets, len(ds.FeatureNames), ds.Classes,
			nTargets, len(names), classes)
	}
	l.buf.ImportDataset(ds)
	l.gBuffer.Set(float64(l.buf.Len()))
	return nil
}

// SetGateMargin adjusts the promotion gate between steps — the knob the
// rollback drill uses to force-reject the next candidate (see
// GateConfig.Margin).
func (l *Loop) SetGateMargin(m float64) { l.cfg.Gate.Margin = m }

// OfferWindow feeds one live window into the drift detector's distribution
// stream.
func (l *Loop) OfferWindow(mat window.Matrix) {
	l.det.ObserveWindow(mat)
	if l.tracker != nil {
		l.tracker.Offer(mat)
	}
	if l.cfg.Policy != nil {
		l.lastWindow = mat
	}
	l.seenWin++
	l.mWindows.Inc()
}

// OfferLabeled feeds one delayed-labeled window: the example enters the
// retraining reservoir, and the incumbent's prediction on it feeds the
// quality-decay drift signal. ex.Label is derived from ex.Degradation under
// the incumbent's bins.
func (l *Loop) OfferLabeled(ex Example) {
	ex.Label = l.incumbent.Bins.Label(ex.Degradation)
	l.buf.Offer(ex)
	l.gBuffer.Set(float64(l.buf.Len()))

	class, probs := l.incumbent.Predict(ex.Matrix)
	ce := -math.Log(math.Max(probs[ex.Label], 1e-12))
	l.det.ObserveLabeled(class == ex.Label, ce)
	l.mLabeled.Inc()
}

// Step evaluates drift and, when it trips with enough buffered examples,
// runs the full retrain → gate → promote/reject round. The error path is
// infrastructure only (cancellation, clone failure); gate rejections and
// refused reloads are reported in the Decision, not as errors.
func (l *Loop) Step(ctx context.Context) (Decision, error) {
	score := l.det.Score()
	l.hDriftFrac.Observe(score.FeatureFrac)
	if score.Labeled > 0 {
		l.hRollAcc.Observe(score.RollingAccuracy)
	}
	d := Decision{Window: -1, Action: ActionNone, Score: score}
	if l.tracker != nil && l.tracker.Ready() {
		p, err := l.tracker.Predict()
		if err != nil {
			return d, fmt.Errorf("online: forecast: %w", err)
		}
		d.Forecast = p
		l.mForecasts.Inc()
		l.gLead.Set(float64(p.LeadWindows))
	}
	if l.cfg.Policy != nil && l.lastWindow != nil {
		class, _ := l.incumbent.Predict(l.lastWindow)
		v := l.cfg.Policy.Decide(mitigate.Observation{
			Window: l.seenWin - 1, Class: class, Forecast: d.Forecast,
		})
		d.Mitigation = &v
		if v.Engaged() {
			l.gMitEngaged.Set(1)
			l.mMitEngage.Inc()
		} else {
			l.gMitEngaged.Set(0)
		}
	}
	if !score.Drifted || l.buf.Len() < l.cfg.MinExamples {
		return d, nil
	}
	l.mDriftTrips.Inc()

	start := time.Now()
	candidate, gate, err := l.retrain(ctx)
	l.hRetrainNS.Observe(float64(time.Since(start)))
	if err != nil {
		return d, err
	}
	l.mRetrains.Inc()
	d.Gate = &gate
	d.CandidateWeights = candidate.ExportWeights()

	if !gate.Promote {
		l.mRejections.Inc()
		d.Action = ActionReject
		// Reset starts a cooldown: the detector re-accumulates from scratch
		// before it can trip again, so a rejected candidate is not retried
		// on the very next window.
		l.det.Reset(l.incumbent.Scaler, l.refAcc)
		return d, nil
	}

	// Clone before handing over: ownership of candidate transfers to the
	// promoter, and the Loop needs its own evaluation copy.
	next, err := candidate.Clone()
	if err != nil {
		return d, fmt.Errorf("online: cloning candidate: %w", err)
	}
	if rerr := l.promoter.ReloadFramework(candidate); rerr != nil {
		// Rollback: the promoter refused the swap, the incumbent still
		// serves, and the loop keeps evaluating against it.
		l.mRollbacks.Inc()
		l.mRejections.Inc()
		d.Action = ActionReject
		d.Rollback = true
		l.det.Reset(l.incumbent.Scaler, l.refAcc)
		return d, nil
	}
	l.incumbent = next
	l.refAcc = gate.CandidateAccuracy
	l.mPromotions.Inc()
	d.Action = ActionPromote
	l.det.Reset(l.incumbent.Scaler, l.refAcc)
	return d, nil
}

// retrain trains a warm-started candidate on the reservoir (minus the gate
// holdout) and scores it against the incumbent.
func (l *Loop) retrain(ctx context.Context) (*core.Framework, GateResult, error) {
	l.retrains++
	// A fresh seed per round keeps rounds independent while staying a pure
	// function of (Config.Seed, round number).
	seed := l.cfg.Seed ^ int64(l.retrains)*0x9e3779b9

	names, nTargets, classes := l.bufferSchema()
	ds := l.buf.Dataset(names, nTargets, classes, l.cfg.Profile)
	trainDS, holdout := ds.Split(l.cfg.Gate.HoldFrac, seed^0x60a7)
	if trainDS.Len() == 0 || holdout.Len() == 0 {
		return nil, GateResult{}, fmt.Errorf("online: degenerate holdout split (%d train / %d held out of %d)",
			trainDS.Len(), holdout.Len(), ds.Len())
	}

	cfg := core.FrameworkConfig{Seed: seed, Train: l.cfg.Train}
	cfg.Train.Seed = seed ^ 0x7e57
	candidate, _, err := core.TrainFrameworkCtx(ctx, trainDS, cfg, core.WithWarmStart(l.incumbent))
	if err != nil {
		return nil, GateResult{}, fmt.Errorf("online: retrain: %w", err)
	}
	gate := evaluateGate(candidate, l.incumbent, holdout, l.cfg.Gate.Margin)
	l.hGateAcc.Observe(gate.CandidateAccuracy)
	return candidate, gate, nil
}
