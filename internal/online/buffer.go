package online

import (
	"quanterference/internal/dataset"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
)

// Example is one labeled window: the matrix the monitors emitted, the
// measured degradation once the delayed label arrived, and its class under
// the incumbent's bins.
type Example struct {
	// Window is the source window index (diagnostic only).
	Window int
	// Matrix is the raw (unscaled) per-server feature matrix. The buffer
	// shares it read-only with the caller; it must not be mutated after
	// OfferLabeled.
	Matrix window.Matrix
	// Degradation is the measured slowdown ratio; Label its class.
	Degradation float64
	Label       int
}

// Buffer is a bounded labeled-example reservoir. It keeps a uniform sample
// of everything ever offered (Vitter's Algorithm R) under a seeded RNG, so
// the retained set — and therefore every retrain — is a deterministic
// function of the seed and the offer sequence.
type Buffer struct {
	capacity int
	rng      *sim.RNG
	items    []Example
	seen     int
}

// NewBuffer builds a reservoir holding at most capacity examples.
func NewBuffer(capacity int, seed int64) *Buffer {
	if capacity <= 0 {
		panic("online: non-positive buffer capacity")
	}
	return &Buffer{capacity: capacity, rng: sim.NewRNG(seed)}
}

// Offer feeds one example through the reservoir: appended while the buffer
// has room, then replacing a uniformly chosen resident with probability
// capacity/seen.
func (b *Buffer) Offer(ex Example) {
	b.seen++
	if len(b.items) < b.capacity {
		b.items = append(b.items, ex)
		return
	}
	if j := b.rng.Intn(b.seen); j < b.capacity {
		b.items[j] = ex
	}
}

// Len is the resident example count; Seen the total ever offered.
func (b *Buffer) Len() int  { return len(b.items) }
func (b *Buffer) Seen() int { return b.seen }

// Dataset assembles the resident examples into a dataset with the given
// schema, in slot order (deterministic for a deterministic offer sequence).
// profile stamps the dataset with the hardware profile the stream runs on,
// so retrain datasets merge cleanly with offline ones instead of reading as
// unstamped. Vectors are shared with the buffered matrices, which stay
// read-only.
func (b *Buffer) Dataset(featureNames []string, nTargets, classes int, profile string) *dataset.Dataset {
	return b.DatasetAs("online", featureNames, nTargets, classes, profile)
}

// DatasetAs is Dataset with an explicit run stamp — what a fleet replica
// uses to export its reservoir under its own name, so merged exports from
// replicas that happened to label the same window indices of different
// streams stay distinct instead of deduplicating into one another.
func (b *Buffer) DatasetAs(run string, featureNames []string, nTargets, classes int, profile string) *dataset.Dataset {
	ds := dataset.New(featureNames, nTargets, classes)
	ds.Profile = profile
	for _, ex := range b.items {
		ds.Add(&dataset.Sample{
			Run:         run,
			Window:      ex.Window,
			Degradation: ex.Degradation,
			Label:       ex.Label,
			Vectors:     ex.Matrix,
		})
	}
	return ds
}

// ImportDataset replays a dataset (e.g. another instance's exported
// reservoir, or a persisted one reloaded after a restart) through the
// reservoir in sample order: every sample is Offered, so the resulting
// resident set stays a deterministic function of the buffer seed and the
// complete offer sequence, exactly as if the examples had arrived live.
// Matrices are shared with the dataset, which must stay read-only.
func (b *Buffer) ImportDataset(ds *dataset.Dataset) {
	for _, s := range ds.Samples {
		b.Offer(Example{
			Window:      s.Window,
			Matrix:      window.Matrix(s.Vectors),
			Degradation: s.Degradation,
			Label:       s.Label,
		})
	}
}
