package online

import "testing"

func cs(name string, acc, ce float64, n int) CandidateScore {
	return CandidateScore{Name: name, Accuracy: acc, CE: ce, Samples: n}
}

// TestShadowGateRanking pins the N-way ranking: accuracy first, mean CE as
// the tie-breaker, and the full ranked scoreboard on the result.
func TestShadowGateRanking(t *testing.T) {
	champ := cs("champion", 0.70, 0.5, 100)
	g := EvaluateShadowGate(1, champ, []CandidateScore{
		cs("a", 0.80, 0.9, 100),
		cs("b", 0.90, 0.4, 100),
		cs("c", 0.80, 0.3, 100), // beats a on CE at equal accuracy
	}, 0.05, 32)
	if !g.Promote || g.Winner != "b" {
		t.Fatalf("verdict %+v, want b promoted", g)
	}
	want := []string{"b", "c", "a"}
	for i, w := range want {
		if g.Scores[i].Name != w {
			t.Fatalf("rank %d = %s, want %s (scores %+v)", i, g.Scores[i].Name, w, g.Scores)
		}
	}
	if g.CandidateAccuracy != 0.90 || g.IncumbentAccuracy != 0.70 || g.Holdout != 100 {
		t.Fatalf("result fields %+v", g)
	}
}

// TestShadowGateMargin pins the promotion bar: the winner must beat the
// champion by at least margin, not merely match it.
func TestShadowGateMargin(t *testing.T) {
	// Dyadic values keep champion+margin exactly representable, so the
	// "exactly at the bar" case tests the gate, not float rounding.
	champ := cs("champion", 0.75, 0.5, 100)
	if g := EvaluateShadowGate(1, champ, []CandidateScore{cs("a", 0.8125, 0.5, 100)}, 0.125, 32); g.Promote {
		t.Fatalf("challenger 0.0625 ahead promoted past a 0.125 margin: %+v", g)
	}
	if g := EvaluateShadowGate(1, champ, []CandidateScore{cs("a", 0.875, 0.5, 100)}, 0.125, 32); !g.Promote || g.Winner != "a" {
		t.Fatalf("challenger exactly margin ahead not promoted: %+v", g)
	}
}

// TestShadowGateMinSamples pins the evidence bar: neither a thin challenger
// score nor a thin champion score can promote.
func TestShadowGateMinSamples(t *testing.T) {
	if g := EvaluateShadowGate(1, cs("champion", 0.5, 0.5, 100),
		[]CandidateScore{cs("a", 0.9, 0.1, 31)}, 0.05, 32); g.Promote {
		t.Fatalf("challenger with 31 samples promoted past minSamples 32: %+v", g)
	}
	if g := EvaluateShadowGate(1, cs("champion", 0.5, 0.5, 31),
		[]CandidateScore{cs("a", 0.9, 0.1, 100)}, 0.05, 32); g.Promote {
		t.Fatalf("champion with 31 samples lost its seat before the evidence was in: %+v", g)
	}
}

// TestShadowGateForceReject pins the drill knob: a margin above 1 is an
// impossible bar no challenger clears, even a perfect one.
func TestShadowGateForceReject(t *testing.T) {
	g := EvaluateShadowGate(1, cs("champion", 0.0, 9.9, 100),
		[]CandidateScore{cs("a", 1.0, 0.0, 1000)}, 2, 32)
	if g.Promote || g.Winner != "" {
		t.Fatalf("perfect challenger promoted past a forced-reject margin: %+v", g)
	}
	if len(g.Scores) != 1 || g.Scores[0].Name != "a" {
		t.Fatalf("forced reject dropped the scoreboard: %+v", g)
	}
}

// TestShadowGateNoChallengers pins the trivial case: the champion keeps its
// seat and the result carries no winner or scores.
func TestShadowGateNoChallengers(t *testing.T) {
	g := EvaluateShadowGate(1, cs("champion", 0.8, 0.5, 100), nil, 0.05, 32)
	if g.Promote || g.Winner != "" || g.Scores != nil {
		t.Fatalf("empty challenger set: %+v", g)
	}
}

// TestShadowGateSeededTieBreak pins the tie-break of last resort: two
// challengers identical on accuracy and CE order by the seeded hash — stable
// for a given seed, independent of input order, and seed-sensitive.
func TestShadowGateSeededTieBreak(t *testing.T) {
	tied := []CandidateScore{cs("a", 0.9, 0.2, 100), cs("b", 0.9, 0.2, 100)}
	flipped := []CandidateScore{tied[1], tied[0]}
	champ := cs("champion", 0.5, 0.5, 100)

	g1 := EvaluateShadowGate(7, champ, tied, 0.05, 32)
	g2 := EvaluateShadowGate(7, champ, flipped, 0.05, 32)
	if g1.Winner == "" || g1.Winner != g2.Winner {
		t.Fatalf("tie-break depends on input order: %q vs %q", g1.Winner, g2.Winner)
	}

	// Some seed must flip the winner, or the "seeded" break is vacuous.
	other := g1.Winner
	for seed := int64(0); seed < 64; seed++ {
		if g := EvaluateShadowGate(seed, champ, tied, 0.05, 32); g.Winner != g1.Winner {
			other = g.Winner
			break
		}
	}
	if other == g1.Winner {
		t.Fatalf("64 seeds all broke the tie the same way (%q); hash is suspect", g1.Winner)
	}
}
