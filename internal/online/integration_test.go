package online

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestSmokeEpisodeEndToEnd runs the full continuous-learning episode twice
// with the same seed and pins the whole contract at once:
//
//   - the healthy stream trips nothing (asserted inside SmokeEpisode);
//   - the fault-injected stream trips drift, retrains, and promotes through
//     the server's hot-reload while concurrent clients keep predicting with
//     zero hard failures;
//   - the forced-reject phase trains a candidate, rejects it, and leaves
//     the served framework untouched (rollback);
//   - both runs make identical drift decisions and promote bit-identical
//     weights (run under -race this also exercises the loop/server
//     concurrency boundary).
func TestSmokeEpisodeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full episode in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	run := func() *SmokeResult {
		t.Helper()
		res, err := SmokeEpisode(ctx, SmokeConfig{Seed: 42, Log: t.Logf})
		if err != nil {
			t.Fatalf("smoke episode: %v (timeline so far: %v)", err, res)
		}
		return res
	}
	a := run()

	if a.Promotions == 0 {
		t.Fatal("no promotions")
	}
	if a.Rejections == 0 {
		t.Fatal("no rejections")
	}
	if a.Retrains != a.DriftTrips || a.Retrains < a.Promotions+a.Rejections {
		t.Fatalf("inconsistent counts: %+v", a)
	}
	if a.HammerErr != 0 {
		t.Fatalf("%d concurrent predictions failed hard during hot-reloads", a.HammerErr)
	}
	if a.HammerOK == 0 {
		t.Fatal("no concurrent predictions answered during hot-reloads")
	}
	if len(a.PromotedWeights) == 0 {
		t.Fatal("no promoted weight snapshot")
	}
	if a.TrainAccuracy < 0.7 {
		t.Fatalf("incumbent too weak to make the episode meaningful: %.3f", a.TrainAccuracy)
	}

	b := run()
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatalf("same-seed decision timelines diverged:\n%v\n%v", a.Timeline, b.Timeline)
	}
	if !reflect.DeepEqual(a.PromotedWeights, b.PromotedWeights) {
		t.Fatal("same-seed promoted weights diverged")
	}
	if a.Promotions != b.Promotions || a.Rejections != b.Rejections || a.Rollbacks != b.Rollbacks {
		t.Fatalf("same-seed counts diverged: %+v vs %+v", a, b)
	}
}
