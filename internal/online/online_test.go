package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

const (
	testTargets = 3
	testFeat    = 5
)

// syntheticDataset builds a separable two-class problem: class 1 vectors sit
// `shift` above class 0.
func syntheticDataset(tb testing.TB, n int, seed int64, shift float64) *dataset.Dataset {
	tb.Helper()
	names := make([]string, testFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, testTargets, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		label := i % 2
		vecs := make([][]float64, testTargets)
		for t := range vecs {
			v := make([]float64, testFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + float64(label)*shift
			}
			vecs[t] = v
		}
		deg := 1.0
		if label == 1 {
			deg = 3.0 // class 1 under the default binary bins (>=2x)
		}
		ds.Add(&dataset.Sample{Label: label, Degradation: deg, Vectors: vecs})
	}
	return ds
}

func trainedFramework(tb testing.TB, seed int64) *core.Framework {
	tb.Helper()
	fw, _, err := core.TrainFrameworkE(syntheticDataset(tb, 80, seed, 3), core.FrameworkConfig{
		Seed: seed, Train: ml.TrainConfig{Epochs: 80},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return fw
}

// driftedMatrix produces a matrix far outside the training distribution with
// a class-1 shape.
func driftedMatrix(rng *sim.RNG) window.Matrix {
	mat := make(window.Matrix, testTargets)
	for t := range mat {
		v := make([]float64, testFeat)
		for f := range v {
			v[f] = rng.NormFloat64() + 8
		}
		mat[t] = v
	}
	return mat
}

type fakePromoter struct {
	fw      *core.Framework
	refuse  bool
	reloads int
}

func (p *fakePromoter) Framework() *core.Framework { return p.fw }

func (p *fakePromoter) ReloadFramework(fw *core.Framework) error {
	if p.refuse {
		return errors.New("fake: refused")
	}
	p.fw = fw
	p.reloads++
	return nil
}

// quickConfig trips fast on the synthetic drift stream.
func quickConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		RefAccuracy: 0.95,
		BufferCap:   64,
		MinExamples: 8,
		Drift:       DriftConfig{MinWindows: 4, MinLabeled: 4, MinEffect: 1.0, FeatureFrac: 0.3},
		Train:       ml.TrainConfig{Epochs: 10},
	}
}

// feedDrift pushes n drifted labeled windows through the loop, stepping
// after each, and returns every non-none decision.
func feedDrift(t *testing.T, l *Loop, rng *sim.RNG, n int) []Decision {
	t.Helper()
	var actions []Decision
	for i := 0; i < n; i++ {
		mat := driftedMatrix(rng)
		l.OfferWindow(mat)
		l.OfferLabeled(Example{Window: i, Matrix: mat, Degradation: 3})
		d, err := l.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionNone {
			actions = append(actions, d)
		}
	}
	return actions
}

func TestLoopPromotesOnDrift(t *testing.T) {
	fw := trainedFramework(t, 1)
	p := &fakePromoter{fw: fw}
	l, err := NewLoop(p, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}

	// Healthy stream first: in-distribution windows must not trip anything.
	healthy := syntheticDataset(t, 40, 99, 3)
	for i, s := range healthy.Samples {
		l.OfferWindow(window.Matrix(s.Vectors))
		l.OfferLabeled(Example{Window: i, Matrix: window.Matrix(s.Vectors), Degradation: s.Degradation})
		d, err := l.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionNone {
			t.Fatalf("healthy stream produced %v", d)
		}
	}

	actions := feedDrift(t, l, sim.NewRNG(3), 30)
	if len(actions) == 0 {
		t.Fatal("drifted stream never tripped")
	}
	promotes := 0
	for _, d := range actions {
		if d.Action == ActionPromote {
			promotes++
			if d.Gate == nil || !d.Gate.Promote {
				t.Fatalf("promotion without a passing gate: %v", d)
			}
			if len(d.CandidateWeights) == 0 {
				t.Fatalf("promotion without weights: %v", d)
			}
		}
	}
	if promotes == 0 {
		t.Fatalf("no promotion in %v", actions)
	}
	if p.reloads != promotes {
		t.Fatalf("promoter saw %d reloads, loop reported %d promotions", p.reloads, promotes)
	}
	if p.fw == fw {
		t.Fatal("promoter still serves the original framework")
	}
	// The loop's evaluation incumbent must be a distinct clone of the
	// promoted candidate, never the served instance itself.
	if l.Incumbent() == p.fw {
		t.Fatal("loop shares its evaluation framework with the promoter")
	}
}

func TestLoopForcedRejectKeepsIncumbent(t *testing.T) {
	fw := trainedFramework(t, 1)
	p := &fakePromoter{fw: fw}
	l, err := NewLoop(p, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	l.SetGateMargin(-2) // impossible bar: accuracy cannot exceed incumbent + 2

	actions := feedDrift(t, l, sim.NewRNG(3), 30)
	if len(actions) == 0 {
		t.Fatal("drifted stream never tripped")
	}
	for _, d := range actions {
		if d.Action != ActionReject {
			t.Fatalf("impossible gate let %v through", d)
		}
		if d.Gate.Promote {
			t.Fatalf("gate verdict inconsistent: %+v", d.Gate)
		}
	}
	if p.fw != fw || p.reloads != 0 {
		t.Fatal("rejected candidate reached the promoter")
	}
}

func TestLoopRollbackOnRefusedReload(t *testing.T) {
	fw := trainedFramework(t, 1)
	p := &fakePromoter{fw: fw, refuse: true}
	l, err := NewLoop(p, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}

	actions := feedDrift(t, l, sim.NewRNG(3), 30)
	if len(actions) == 0 {
		t.Fatal("drifted stream never tripped")
	}
	rollbacks := 0
	for _, d := range actions {
		if d.Action == ActionPromote {
			t.Fatalf("refused reload reported as promotion: %v", d)
		}
		if d.Rollback {
			rollbacks++
		}
	}
	if rollbacks == 0 {
		t.Fatalf("no rollback recorded in %v", actions)
	}
	if p.fw != fw {
		t.Fatal("framework swapped despite refusal")
	}
	if got, _ := l.Stats().Counter("online", "", "rollbacks"); got == 0 {
		t.Fatalf("rollback counter not incremented: %+v", l.Stats().Counters)
	}
}

// TestLoopDeterministic pins the continuous-learning determinism contract:
// same seed + same stream = identical decisions and bit-identical candidate
// weights, including through the parallel training path.
func TestLoopDeterministic(t *testing.T) {
	run := func(workers int) []Decision {
		fw := trainedFramework(t, 1)
		cfg := quickConfig(7)
		cfg.Train.Workers = workers
		l, err := NewLoop(&fakePromoter{fw: fw}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return feedDrift(t, l, sim.NewRNG(3), 30)
	}
	a, b := run(1), run(1)
	if len(a) == 0 {
		t.Fatal("no decisions to compare")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n%v\n%v", a, b)
	}
	c := run(4)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("Workers=4 diverged from Workers=1:\n%v\n%v", a, c)
	}
}

func TestLoopWaitsForExamples(t *testing.T) {
	fw := trainedFramework(t, 1)
	l, err := NewLoop(&fakePromoter{fw: fw}, quickConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	// Drifted windows but no labels: drift must be visible yet no retrain
	// can fire.
	rng := sim.NewRNG(3)
	sawDrift := false
	for i := 0; i < 10; i++ {
		l.OfferWindow(driftedMatrix(rng))
		d, err := l.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionNone {
			t.Fatalf("retrain without examples: %v", d)
		}
		if d.Score.Drifted {
			sawDrift = true
		}
	}
	if !sawDrift {
		t.Fatal("drift never became visible")
	}
}

func TestLoopObservability(t *testing.T) {
	fw := trainedFramework(t, 1)
	sink := obs.New()
	cfg := quickConfig(7)
	cfg.Sink = sink
	l, err := NewLoop(&fakePromoter{fw: fw}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedDrift(t, l, sim.NewRNG(3), 30)
	snap := sink.Snapshot()
	for _, name := range []string{"windows", "labeled", "drift_trips", "retrains"} {
		if got, ok := snap.Counter("online", "", name); !ok || got == 0 {
			t.Errorf("counter online/%s not incremented: %+v", name, snap.Counters)
		}
	}
}

func TestGateMath(t *testing.T) {
	fw := trainedFramework(t, 1)
	holdout := syntheticDataset(t, 20, 5, 3)
	g := evaluateGate(fw, fw, holdout, 0.02)
	if !g.Promote {
		t.Fatalf("equal accuracies with positive margin must promote: %+v", g)
	}
	if g.CandidateAccuracy != g.IncumbentAccuracy {
		t.Fatalf("same framework scored differently: %+v", g)
	}
	if g.Holdout != holdout.Len() {
		t.Fatalf("holdout size %d, want %d", g.Holdout, holdout.Len())
	}
	g = evaluateGate(fw, fw, holdout, -0.5)
	if g.Promote {
		t.Fatalf("negative margin with equal accuracies must reject: %+v", g)
	}
	empty := dataset.New(holdout.FeatureNames, testTargets, 2)
	if g := evaluateGate(fw, fw, empty, 0.02); g.Promote {
		t.Fatalf("empty holdout must reject: %+v", g)
	}
}

func TestBufferReservoir(t *testing.T) {
	mk := func(seed int64, n int) *Buffer {
		b := NewBuffer(16, seed)
		for i := 0; i < n; i++ {
			b.Offer(Example{Window: i, Degradation: float64(i)})
		}
		return b
	}
	b := mk(1, 10)
	if b.Len() != 10 || b.Seen() != 10 {
		t.Fatalf("len=%d seen=%d", b.Len(), b.Seen())
	}
	b = mk(1, 500)
	if b.Len() != 16 || b.Seen() != 500 {
		t.Fatalf("len=%d seen=%d", b.Len(), b.Seen())
	}
	// Same seed, same offer sequence: identical retained set.
	b2 := mk(1, 500)
	if !reflect.DeepEqual(b.items, b2.items) {
		t.Fatal("same-seed reservoirs diverged")
	}
	// A different seed keeps different survivors.
	b3 := mk(2, 500)
	if reflect.DeepEqual(b.items, b3.items) {
		t.Fatal("different seeds kept identical reservoirs (suspicious)")
	}
	// Retention is roughly uniform over the stream, not just the head or
	// tail: with cap 16 of 500, at least one survivor from each half.
	lo, hi := 0, 0
	for _, ex := range b.items {
		if ex.Window < 250 {
			lo++
		} else {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatalf("reservoir degenerate: %d early, %d late", lo, hi)
	}
}

func TestBufferDataset(t *testing.T) {
	b := NewBuffer(8, 1)
	mat := make(window.Matrix, testTargets)
	for t := range mat {
		mat[t] = make([]float64, testFeat)
	}
	for i := 0; i < 5; i++ {
		b.Offer(Example{Window: i, Matrix: mat, Degradation: 2.5, Label: 1})
	}
	names := []string{"a", "b", "c", "d", "e"}
	ds := b.Dataset(names, testTargets, 2, "nvme")
	if ds.Len() != 5 || ds.NTargets != testTargets || ds.Classes != 2 {
		t.Fatalf("dataset %d samples, %d targets, %d classes", ds.Len(), ds.NTargets, ds.Classes)
	}
	if ds.Profile != "nvme" {
		t.Fatalf("buffer dataset profile %q, want the loop's stamp", ds.Profile)
	}
	for i, s := range ds.Samples {
		if s.Window != i || s.Label != 1 {
			t.Fatalf("sample %d out of order or mislabeled: %+v", i, s)
		}
	}
}

func TestDetectorDistributionShift(t *testing.T) {
	ref := &dataset.Scaler{Mean: []float64{0, 0, 0}, Std: []float64{1, 1, 1}}
	cfg := DriftConfig{MinWindows: 4, FeatureFrac: 0.5, MinEffect: 1.0}
	d := NewDetector(ref, 0, cfg)

	inDist := window.Matrix{{0.1, -0.1, 0.05}, {-0.2, 0.1, 0}}
	for i := 0; i < 20; i++ {
		d.ObserveWindow(inDist)
	}
	if s := d.Score(); s.Drifted {
		t.Fatalf("in-distribution stream tripped: %+v", s)
	}

	d.Reset(ref, 0)
	shifted := window.Matrix{{3, 3, 0}, {3, 3, 0}} // 2 of 3 features shifted 3 std
	for i := 0; i < 20; i++ {
		d.ObserveWindow(shifted)
	}
	s := d.Score()
	if !s.Drifted || s.Reason != "features" {
		t.Fatalf("shifted stream did not trip: %+v", s)
	}
	if s.FeatureFrac < 0.5 || s.MaxEffect < 2.5 {
		t.Fatalf("unexpected score: %+v", s)
	}

	// Reset is a cooldown: the statistics are gone until MinWindows
	// re-accumulate.
	d.Reset(ref, 0)
	if s := d.Score(); s.Drifted || s.Windows != 0 {
		t.Fatalf("reset did not clear the stream: %+v", s)
	}
}

func TestDetectorVarianceExplosion(t *testing.T) {
	ref := &dataset.Scaler{Mean: []float64{0, 0}, Std: []float64{1, 1}}
	d := NewDetector(ref, 0, DriftConfig{MinWindows: 4, FeatureFrac: 0.5, VarRatio: 4})
	// Zero-mean but wildly spread: the mean z-test stays quiet, the
	// variance ratio must not.
	rng := sim.NewRNG(1)
	for i := 0; i < 50; i++ {
		x := rng.NormFloat64() * 10
		d.ObserveWindow(window.Matrix{{x, -x}, {-x, x}})
	}
	s := d.Score()
	if !s.Drifted {
		t.Fatalf("variance explosion not detected: %+v", s)
	}
}

func TestDetectorQualityDecay(t *testing.T) {
	ref := &dataset.Scaler{Mean: []float64{0}, Std: []float64{1}}
	cfg := DriftConfig{MinLabeled: 8, QualityWindow: 16, AccuracyDrop: 0.2}
	d := NewDetector(ref, 0.95, cfg)
	// Accurate labels first: no trip.
	for i := 0; i < 16; i++ {
		d.ObserveLabeled(true, 0.05)
	}
	if s := d.Score(); s.Drifted {
		t.Fatalf("accurate stream tripped: %+v", s)
	}
	// Then the model falls apart; the rolling window must trip.
	for i := 0; i < 16; i++ {
		d.ObserveLabeled(false, 3.0)
	}
	s := d.Score()
	if !s.Drifted || s.Reason != "quality" {
		t.Fatalf("quality decay not detected: %+v", s)
	}
	if s.RollingAccuracy > 0.05 || s.RollingCE < 1 {
		t.Fatalf("rolling stats wrong: %+v", s)
	}

	// With no reference accuracy the quality signal stays disabled.
	d2 := NewDetector(ref, 0, cfg)
	for i := 0; i < 16; i++ {
		d2.ObserveLabeled(false, 3.0)
	}
	if s := d2.Score(); s.Drifted {
		t.Fatalf("quality signal tripped without a reference: %+v", s)
	}
}

func TestDetectorScoreDeterministic(t *testing.T) {
	ref := &dataset.Scaler{Mean: []float64{0, 0}, Std: []float64{1, 1}}
	mk := func() Score {
		d := NewDetector(ref, 0.9, DriftConfig{})
		rng := sim.NewRNG(11)
		for i := 0; i < 30; i++ {
			d.ObserveWindow(window.Matrix{{rng.NormFloat64() + 2, rng.NormFloat64()}})
			d.ObserveLabeled(i%3 == 0, 0.7)
		}
		return d.Score()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("scores diverged:\n%+v\n%+v", a, b)
	}
	if math.IsNaN(a.FeatureFrac) || math.IsNaN(a.RollingCE) {
		t.Fatalf("NaN in score: %+v", a)
	}
}
