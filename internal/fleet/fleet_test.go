package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/online"
	"quanterference/internal/serve"
	"quanterference/internal/sim"
)

const (
	testTargets = 3
	testFeat    = 5
)

// trainedFramework trains a tiny 2-class framework on synthetic data; seed
// varies the weights, so two different seeds give two distinct digests.
func trainedFramework(tb testing.TB, seed int64) *core.Framework {
	tb.Helper()
	names := make([]string, testFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, testTargets, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < 64; i++ {
		vecs := make([][]float64, testTargets)
		for t := range vecs {
			v := make([]float64, testFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + 2*float64(i%2)
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1 + 2*float64(i%2), Vectors: vecs})
	}
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{Seed: seed, Train: ml.TrainConfig{Epochs: 5}})
	if err != nil {
		tb.Fatal(err)
	}
	return fw
}

func trainedForecaster(tb testing.TB, seed int64) *forecast.Forecaster {
	tb.Helper()
	names := make([]string, testFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, testTargets, 2)
	rng := sim.NewRNG(seed)
	for r := 0; r < 4; r++ {
		for w := 0; w < 16; w++ {
			degraded := w >= 10
			vecs := make([][]float64, testTargets)
			for t := range vecs {
				v := make([]float64, testFeat)
				for f := range v {
					v[f] = 0.2*float64(w) + rng.NormFloat64()
					if degraded {
						v[f] += 3
					}
				}
				vecs[t] = v
			}
			s := &dataset.Sample{Workload: "fleet", Run: fmt.Sprintf("r%d", r), Window: w,
				Degradation: 1, Vectors: vecs}
			if degraded {
				s.Label, s.Degradation = 1, 3
			}
			ds.Add(s)
		}
	}
	fc, _, err := core.TrainForecasterCtx(context.Background(), ds, core.ForecasterConfig{
		Forecast: forecast.Config{History: 3, Horizons: []int{1, 2}},
		Train:    ml.TrainConfig{Epochs: 5},
		Seed:     seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return fc
}

// testMatrix is a deterministic prediction input.
func testMatrix(rng *sim.RNG) window.Matrix {
	mat := make(window.Matrix, testTargets)
	for t := range mat {
		row := make([]float64, testFeat)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		mat[t] = row
	}
	return mat
}

// testFleet is the in-process multi-replica harness: n serve.Servers behind
// httptest listeners, each with an online loop, fronted by one coordinator.
type testFleet struct {
	c       *Coordinator
	servers []*serve.Server
	https   []*httptest.Server
	loops   []*online.Loop
	names   []string
}

// newTestFleet spins up n replicas all serving clones of the same trained
// framework (a consistent fleet), with per-replica online loops.
func newTestFleet(tb testing.TB, n int, seed int64) *testFleet {
	tb.Helper()
	master := trainedFramework(tb, seed)
	f := &testFleet{}
	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		fw, err := master.Clone()
		if err != nil {
			tb.Fatal(err)
		}
		s := serve.New(fw, serve.Config{})
		ts := httptest.NewServer(s.Handler())
		loop, err := online.NewLoop(s, online.Config{Seed: seed + int64(i)})
		if err != nil {
			tb.Fatal(err)
		}
		name := fmt.Sprintf("r%d", i)
		f.servers = append(f.servers, s)
		f.https = append(f.https, ts)
		f.loops = append(f.loops, loop)
		f.names = append(f.names, name)
		replicas[i] = NewReplica(name, s, serve.NewClient(ts.URL), loop)
	}
	c, err := New(Config{Seed: seed}, replicas...)
	if err != nil {
		tb.Fatal(err)
	}
	f.c = c
	tb.Cleanup(func() {
		for _, ts := range f.https {
			ts.Close()
		}
		for _, s := range f.servers {
			_ = s.Shutdown(context.Background())
		}
	})
	return f
}

// feedLoops offers nEach deterministic labeled examples to every loop.
func (f *testFleet) feedLoops(nEach int) {
	for i, l := range f.loops {
		rng := sim.NewRNG(1000 + int64(i))
		for w := 0; w < nEach; w++ {
			mat := testMatrix(rng)
			l.OfferWindow(mat)
			l.OfferLabeled(online.Example{Window: w, Matrix: mat, Degradation: 1 + 2*float64(w%2)})
		}
	}
}

// TestRoutingDeterministicSpread pins the rendezvous router: same seed ⇒
// identical timelines across two independent fleets, every replica owns a
// share of the keyspace, and repeated keys route to the same replica.
func TestRoutingDeterministicSpread(t *testing.T) {
	ctx := context.Background()
	a := newTestFleet(t, 3, 42)
	b := newTestFleet(t, 3, 42)
	rngA, rngB := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("w%02d", i)
		if _, err := a.c.Predict(ctx, key, testMatrix(rngA)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.c.Predict(ctx, key, testMatrix(rngB)); err != nil {
			t.Fatal(err)
		}
	}
	ta, tb := a.c.Timeline(), b.c.Timeline()
	if len(ta) != 30 {
		t.Fatalf("timeline has %d events, want 30 routes", len(ta))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("same-seed fleets diverged at event %d: %q vs %q", i, ta[i], tb[i])
		}
	}

	perReplica := map[string]int{}
	for _, ev := range ta {
		parts := strings.Fields(ev)
		if parts[0] != "route" {
			t.Fatalf("unexpected event %q in a healthy episode", ev)
		}
		perReplica[parts[2]]++
	}
	for _, name := range a.names {
		if perReplica[name] == 0 {
			t.Fatalf("replica %s owns no keys: distribution %v", name, perReplica)
		}
	}

	// Same key again routes to the same replica.
	resp1, err := a.c.Predict(ctx, "w00", testMatrix(sim.NewRNG(9)))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp1
	tl := a.c.Timeline()
	if tl[len(tl)-1] != ta[0] {
		t.Fatalf("key w00 routed %q, first episode routed %q", tl[len(tl)-1], ta[0])
	}
}

// TestFailoverDropsNothing kills one of three replicas and checks every
// request still lands: the killed replica's keys fail over deterministically
// and Dropped stays zero.
func TestFailoverDropsNothing(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 11)
	rng := sim.NewRNG(3)

	f.https[1].Close() // kill r1's listener: transport errors, not HTTP ones
	f.c.Note("kill r1")

	sawRetry := false
	for i := 0; i < 24; i++ {
		resp, err := f.c.Predict(ctx, fmt.Sprintf("w%02d", i), testMatrix(rng))
		if err != nil {
			t.Fatalf("request %d dropped: %v", i, err)
		}
		if resp.ModelDigest != f.servers[0].ModelDigest() {
			t.Fatalf("request %d answered with digest %s, fleet serves %s",
				i, resp.ModelDigest, f.servers[0].ModelDigest())
		}
	}
	for _, ev := range f.c.Timeline() {
		if strings.HasPrefix(ev, "retry w") {
			if !strings.Contains(ev, "r1 unreachable") {
				t.Fatalf("retry event %q does not blame the killed replica", ev)
			}
			sawRetry = true
		}
		if strings.HasPrefix(ev, "route") && strings.HasSuffix(ev, " r1") {
			t.Fatalf("killed replica still answered: %q", ev)
		}
	}
	if !sawRetry {
		t.Fatal("no key preferred the killed replica; routing spread is suspect")
	}
	if got := f.c.Accepted(); got != 24 {
		t.Fatalf("accepted %d of 24", got)
	}
	if got := f.c.Dropped(); got != 0 {
		t.Fatalf("dropped %d requests with two healthy replicas", got)
	}
}

// TestStatusAggregation pins the health view: a consistent fleet, then a
// killed replica (still consistent among the healthy), then a divergent
// model digest (inconsistent).
func TestStatusAggregation(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 5)

	st := f.c.Status(ctx)
	if st.Healthy != 3 || !st.Consistent {
		t.Fatalf("fresh fleet: healthy %d consistent %v", st.Healthy, st.Consistent)
	}
	if st.APIVersion != serve.APIVersion || st.ModelDigest != f.servers[0].ModelDigest() {
		t.Fatalf("status advertises %s/%s", st.APIVersion, st.ModelDigest)
	}
	if st.Targets != testTargets || st.Features != testFeat {
		t.Fatalf("status shape %dx%d, want %dx%d", st.Targets, st.Features, testTargets, testFeat)
	}

	f.https[2].Close()
	st = f.c.Status(ctx)
	if st.Healthy != 2 || !st.Consistent {
		t.Fatalf("after kill: healthy %d consistent %v", st.Healthy, st.Consistent)
	}
	if st.Replicas[2].Healthy || st.Replicas[2].Cause != "unreachable" {
		t.Fatalf("killed replica reported %+v", st.Replicas[2])
	}

	// Diverge r1's model: fleet no longer consistent.
	other := trainedFramework(t, 99)
	if err := f.servers[1].ReloadFramework(other); err != nil {
		t.Fatal(err)
	}
	st = f.c.Status(ctx)
	if st.Consistent {
		t.Fatal("fleet with mixed digests reported consistent")
	}
	if st.ModelDigest != "" {
		t.Fatalf("inconsistent fleet still advertises digest %q", st.ModelDigest)
	}
}

// TestMergedDatasetOrderIndependent pins the federated-retraining corpus:
// the coordinator's merge digests identically to a hand-rolled merge of the
// same exports in reverse order, and distinct replicas never dedupe into
// each other.
func TestMergedDatasetOrderIndependent(t *testing.T) {
	f := newTestFleet(t, 3, 21)
	f.feedLoops(12)

	merged, err := f.c.MergedDataset()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 3*12 {
		t.Fatalf("merged %d samples, want %d", merged.Len(), 3*12)
	}

	var reversed []*dataset.Dataset
	for i := len(f.loops) - 1; i >= 0; i-- {
		reversed = append(reversed, f.loops[i].ExportBuffer(f.names[i]))
	}
	back, err := dataset.MergeAll(reversed...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Digest() != back.Digest() {
		t.Fatalf("merge order changed the digest: %s vs %s", merged.Digest(), back.Digest())
	}
}

// TestSaveLoadBuffers pins reservoir persistence: a restarted replica that
// replays its saved export contributes the same samples to the fleet merge
// as before the restart.
func TestSaveLoadBuffers(t *testing.T) {
	f := newTestFleet(t, 3, 33)
	f.feedLoops(10)
	dir := t.TempDir()

	before, err := f.c.MergedDataset()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.c.SaveBuffers(dir); err != nil {
		t.Fatal(err)
	}

	// "Restart" r1: fresh server + empty loop under the same name.
	fw, err := f.servers[1].Framework().Clone()
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(fw, serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	loop, err := online.NewLoop(s, online.Config{Seed: 33 + 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.c.Rebind("r1", s, serve.NewClient(ts.URL), loop); err != nil {
		t.Fatal(err)
	}
	f.loops[1] = loop

	if _, err := f.c.MergedDataset(); err != nil {
		t.Fatal(err)
	}
	if err := f.c.LoadBuffers(dir); err != nil {
		t.Fatal(err)
	}
	after, err := f.c.MergedDataset()
	if err != nil {
		t.Fatal(err)
	}
	if after.Digest() != before.Digest() {
		t.Fatalf("restored fleet corpus digest %s, want pre-restart %s", after.Digest(), before.Digest())
	}

	// Rebinding an unknown name is refused.
	if err := f.c.Rebind("nope", s, serve.NewClient(ts.URL), nil); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("rebind of unknown replica = %v", err)
	}
}

// flakyAdmin wraps a replica's admin plane and fails reloads on demand —
// the injection point for rollback coverage.
type flakyAdmin struct {
	Admin
	failReload bool
}

var errInjected = errors.New("injected reload failure")

func (f *flakyAdmin) ReloadFramework(fw *core.Framework) error {
	if f.failReload {
		return errInjected
	}
	return f.Admin.ReloadFramework(fw)
}

func (f *flakyAdmin) ReloadForecaster(fc *forecast.Forecaster) error {
	if f.failReload {
		return errInjected
	}
	return f.Admin.ReloadForecaster(fc)
}

// TestPromoteRollsBack walks the rolling promotion through a mid-fleet
// failure: the already-promoted replica returns to the incumbent digest,
// the untouched replica never changes, and a later retry lands everywhere.
func TestPromoteRollsBack(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 55)
	incDigest := f.servers[0].ModelDigest()

	flaky := &flakyAdmin{Admin: f.servers[1], failReload: true}
	if err := f.c.Rebind("r1", flaky, serve.NewClient(f.https[1].URL), nil); err != nil {
		t.Fatal(err)
	}

	cand := trainedFramework(t, 56)
	candDigest := ml.WeightsDigest(cand.ExportWeights())
	if candDigest == incDigest {
		t.Fatal("candidate digests like the incumbent; test is vacuous")
	}

	err := f.c.Promote(ctx, cand)
	if !errors.Is(err, ErrPromotionFailed) {
		t.Fatalf("promotion with failing r1 = %v, want ErrPromotionFailed", err)
	}
	for i, s := range f.servers {
		if got := s.ModelDigest(); got != incDigest {
			t.Fatalf("replica r%d serves %s after rollback, want incumbent %s", i, got, incDigest)
		}
	}
	tl := f.c.Timeline()
	want := []string{
		"promote r0 " + candDigest,
		"promote-failed r1 reload",
		"rollback r0 " + incDigest,
	}
	// The Rebind event leads the timeline; compare the tail.
	if len(tl) < len(want) {
		t.Fatalf("timeline too short: %q", tl)
	}
	for i, w := range want {
		if got := tl[len(tl)-len(want)+i]; got != w {
			t.Fatalf("timeline[%d] = %q, want %q (full: %q)", i, got, w, tl)
		}
	}

	// Clear the fault: the retry promotes all three.
	flaky.failReload = false
	if err := f.c.Promote(ctx, cand); err != nil {
		t.Fatal(err)
	}
	for i, s := range f.servers {
		if got := s.ModelDigest(); got != candDigest {
			t.Fatalf("replica r%d serves %s after rollout, want %s", i, got, candDigest)
		}
	}
	// The candidate stays the caller's: promoting cloned per replica.
	if f.servers[0].Framework() == cand {
		t.Fatal("coordinator handed the caller's candidate to a replica instead of a clone")
	}
	if st := f.c.Status(ctx); !st.Consistent || st.ModelDigest != candDigest {
		t.Fatalf("post-rollout status %+v, want consistent on %s", st, candDigest)
	}
}

// TestPromoteRefusesUnreachable pins the preflight: a dead replica halts
// the rollout and earlier steps roll back, leaving digests untouched.
func TestPromoteRefusesUnreachable(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 77)
	incDigest := f.servers[0].ModelDigest()
	f.https[1].Close()

	err := f.c.Promote(ctx, trainedFramework(t, 78))
	if !errors.Is(err, ErrPromotionFailed) {
		t.Fatalf("promotion with dead r1 = %v, want ErrPromotionFailed", err)
	}
	for i, s := range f.servers {
		if got := s.ModelDigest(); got != incDigest {
			t.Fatalf("replica r%d serves %s, want incumbent %s", i, got, incDigest)
		}
	}
	tl := f.c.Timeline()
	if tl[len(tl)-2] != "promote-failed r1 unreachable" || tl[len(tl)-1] != "rollback r0 "+incDigest {
		t.Fatalf("timeline tail %q", tl[len(tl)-2:])
	}
}

// TestPromoteForecaster pins the forecaster rollout: a clean first load
// lands everywhere with one digest, and the sticky-first-load rollback
// asymmetry is reported rather than hidden.
func TestPromoteForecaster(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 91)
	cand := trainedForecaster(t, 92)
	candDigest := ml.WeightsDigest(cand.ExportWeights())

	if err := f.c.PromoteForecaster(ctx, cand); err != nil {
		t.Fatal(err)
	}
	for i, s := range f.servers {
		if got := s.ForecasterDigest(); got != candDigest {
			t.Fatalf("replica r%d forecaster %s, want %s", i, got, candDigest)
		}
	}
	if st := f.c.Status(ctx); !st.Consistent || st.ForecasterDigest != candDigest {
		t.Fatalf("status %+v, want consistent forecaster %s", st, candDigest)
	}

	// Second rollout that fails mid-fleet rolls the promoted replica back to
	// the previous forecaster (a real incumbent now exists).
	flaky := &flakyAdmin{Admin: f.servers[1], failReload: true}
	if err := f.c.Rebind("r1", flaky, serve.NewClient(f.https[1].URL), nil); err != nil {
		t.Fatal(err)
	}
	next := trainedForecaster(t, 93)
	err := f.c.PromoteForecaster(ctx, next)
	if !errors.Is(err, ErrPromotionFailed) {
		t.Fatalf("forecaster rollout with failing r1 = %v", err)
	}
	for i, s := range f.servers {
		if got := s.ForecasterDigest(); got != candDigest {
			t.Fatalf("replica r%d forecaster %s after rollback, want %s", i, got, candDigest)
		}
	}
}

// TestStatusLastFailure pins the degraded-replica diagnosis: a replica that
// lost routing turns carries its last failure cause in Status, and the label
// sticks through a restart under the same name — the answer to "why is r1
// degraded" survives the replica coming back.
func TestStatusLastFailure(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 17)
	rng := sim.NewRNG(4)

	f.https[1].Close()
	for i := 0; i < 12; i++ {
		if _, err := f.c.Predict(ctx, fmt.Sprintf("w%02d", i), testMatrix(rng)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.c.Status(ctx)
	if st.Replicas[1].LastFailure != "unreachable" {
		t.Fatalf("killed replica LastFailure = %q, want unreachable (status %+v)", st.Replicas[1].LastFailure, st.Replicas[1])
	}
	for _, i := range []int{0, 2} {
		if st.Replicas[i].LastFailure != "" {
			t.Fatalf("healthy replica %s carries LastFailure %q", st.Replicas[i].Name, st.Replicas[i].LastFailure)
		}
	}

	// "Restart" r1 under the same name: healthy again, but the last failure
	// cause is sticky — the degradation stays diagnosable after recovery.
	fw, err := f.servers[1].Framework().Clone()
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(fw, serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if err := f.c.Rebind("r1", s, serve.NewClient(ts.URL), nil); err != nil {
		t.Fatal(err)
	}
	st = f.c.Status(ctx)
	if !st.Replicas[1].Healthy || st.Replicas[1].LastFailure != "unreachable" {
		t.Fatalf("restarted replica = %+v, want healthy with sticky LastFailure", st.Replicas[1])
	}
}

// TestPromoteShadowed pins the shadow-gated rollout: a promoting verdict
// rolls exactly the winning candidate fleet-wide, a kept-champion verdict
// touches nothing and reports ErrShadowRejected, and a winner missing from
// the candidate map is a wiring error caught before any replica changes.
func TestPromoteShadowed(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 61)
	incDigest := f.servers[0].ModelDigest()

	winner := trainedFramework(t, 62)
	loser := trainedFramework(t, 63)
	winDigest := ml.WeightsDigest(winner.ExportWeights())
	cands := map[string]*core.Framework{"c-win": winner, "c-lose": loser}

	// Kept-champion verdict: nothing rolls out.
	kept := online.EvaluateShadowGate(61,
		online.CandidateScore{Name: "champion", Accuracy: 0.9, Samples: 64},
		[]online.CandidateScore{{Name: "c-win", Accuracy: 0.9, Samples: 64}},
		0.05, 32)
	if err := f.c.PromoteShadowed(ctx, kept, cands); !errors.Is(err, ErrShadowRejected) {
		t.Fatalf("kept-champion verdict = %v, want ErrShadowRejected", err)
	}
	for i, s := range f.servers {
		if s.ModelDigest() != incDigest {
			t.Fatalf("replica r%d changed digest on a rejected verdict", i)
		}
	}
	tl := f.c.Timeline()
	if tl[len(tl)-1] != "shadow-keep incumbent" {
		t.Fatalf("timeline tail %q, want shadow-keep incumbent", tl[len(tl)-1])
	}

	// Winner not in the candidate map: error before any replica is touched.
	ghost := online.EvaluateShadowGate(61,
		online.CandidateScore{Name: "champion", Accuracy: 0.5, Samples: 64},
		[]online.CandidateScore{{Name: "ghost", Accuracy: 0.9, Samples: 64}},
		0.05, 32)
	if err := f.c.PromoteShadowed(ctx, ghost, cands); err == nil || errors.Is(err, ErrShadowRejected) {
		t.Fatalf("unknown winner = %v, want a wiring error", err)
	}
	for i, s := range f.servers {
		if s.ModelDigest() != incDigest {
			t.Fatalf("replica r%d changed digest on an unknown winner", i)
		}
	}

	// Promoting verdict: exactly the winner rolls out fleet-wide.
	promote := online.EvaluateShadowGate(61,
		online.CandidateScore{Name: "champion", Accuracy: 0.5, Samples: 64},
		[]online.CandidateScore{
			{Name: "c-lose", Accuracy: 0.6, Samples: 64},
			{Name: "c-win", Accuracy: 0.9, Samples: 64},
		}, 0.05, 32)
	if promote.Winner != "c-win" {
		t.Fatalf("gate picked %q, want c-win", promote.Winner)
	}
	if err := f.c.PromoteShadowed(ctx, promote, cands); err != nil {
		t.Fatal(err)
	}
	for i, s := range f.servers {
		if got := s.ModelDigest(); got != winDigest {
			t.Fatalf("replica r%d serves %s, want winner %s", i, got, winDigest)
		}
	}
	tl = f.c.Timeline()
	want := []string{
		"shadow-promote c-win",
		"promote r0 " + winDigest,
		"promote r1 " + winDigest,
		"promote r2 " + winDigest,
	}
	if len(tl) < len(want) {
		t.Fatalf("timeline too short: %q", tl)
	}
	for i, w := range want {
		if got := tl[len(tl)-len(want)+i]; got != w {
			t.Fatalf("timeline[%d] = %q, want %q (full: %q)", i, got, w, tl)
		}
	}
}

// TestConcurrentRoutingDuringPromotion exercises the coordinator under
// -race: many goroutines predict through the fleet while a promotion and
// status probes run. Every request must land (no drops — replicas stay
// serving throughout a hot promotion).
func TestConcurrentRoutingDuringPromotion(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 13)
	cand := trainedFramework(t, 14)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := sim.NewRNG(int64(g))
			for i := 0; i < 20; i++ {
				if _, err := f.c.Predict(ctx, fmt.Sprintf("g%d-%d", g, i), testMatrix(rng)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f.c.Promote(ctx, cand); err != nil {
			errs <- err
		}
		f.c.Status(ctx)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := f.c.Dropped(); got != 0 {
		t.Fatalf("dropped %d requests during a hot promotion", got)
	}
}
