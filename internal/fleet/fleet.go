// Package fleet is the horizontal scaling layer over internal/serve: a
// coordinator that fronts N replica servers speaking the versioned /v1/ API,
// adding what a single quantserve cannot provide — routing, failover,
// fleet-wide health, federated retraining, and safe rollouts — without
// touching the serving layer's concurrency model.
//
//   - Routing is seeded rendezvous hashing: each request key ranks every
//     replica by a deterministic hash score, and the request walks that
//     preference order until a replica answers. Same seed + same replica
//     names = same ranking, so a fleet episode replays bit-identically. A
//     replica that is unreachable or draining simply loses its turn
//     (failover); the next-ranked replica absorbs its keys with no
//     coordinator state to reconverge.
//
//   - Health aggregation reads each replica's /v1/healthz shape
//     advertisement and reports whether the fleet is consistent: every
//     healthy replica on the same API version, model digest, forecaster
//     digest, and input shape. Mixed fleets are visible immediately and
//     refuse promotion.
//
//   - Model versioning rides on the weight digests the serving layer stamps
//     (ml.WeightsDigest): the coordinator compares the digest a replica
//     advertises over HTTP with the one its admin plane reports, so a
//     wrongly-wired replica (data plane and control plane pointing at
//     different processes) is caught before a rollout, not after.
//
//   - Federated retraining: each replica's online.Loop exports its labeled
//     reservoir under the replica's name, and MergedDataset folds the
//     exports through dataset.MergeAll — the canonical order-independent
//     merge — so the retrain corpus digests identically no matter which
//     replica reported first. SaveBuffers/LoadBuffers persist the reservoirs
//     per replica across restarts.
//
//   - Promotion is a rolling, all-or-nothing rollout: replicas are promoted
//     one at a time in registration order, each step preceded by a health +
//     version preflight, and the first failure rolls every already-promoted
//     replica back to its captured incumbent clone. The fleet lands on
//     either "everyone serves the candidate" or "everyone serves the
//     incumbent", never a torn version set (the one exception: a failed
//     first-time forecaster rollout cannot unload earlier replicas, and is
//     reported instead).
//
// Every routing, promotion, and rollback decision is appended to a timeline
// of plain strings — replica names and digests only, no ports or timestamps
// — which is byte-comparable across same-seed runs; make fleet-smoke pins
// exactly that.
//
// The coordinator is safe for concurrent Predict/Forecast/Status calls
// (promotions serialize internally), but the timeline's line order is only
// deterministic when requests are issued sequentially, and the reservoir
// operations (MergedDataset, SaveBuffers, LoadBuffers) must not race the
// goroutines feeding the replicas' loops — online.Loop itself is
// single-goroutine.
package fleet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/online"
	"quanterference/internal/serve"
)

// Sentinel errors. Match with errors.Is.
var (
	// ErrAllReplicasFailed reports a request no replica could answer.
	ErrAllReplicasFailed = errors.New("fleet: all replicas failed")

	// ErrPromotionFailed reports a rollout that halted and rolled back.
	ErrPromotionFailed = errors.New("fleet: promotion failed")

	// ErrNoAdmin reports a control-plane operation on a replica registered
	// without an admin handle (routing-only, e.g. quantfleet -status).
	ErrNoAdmin = errors.New("fleet: replica has no admin plane")

	// ErrUnknownReplica reports a Rebind naming no registered replica.
	ErrUnknownReplica = errors.New("fleet: unknown replica")

	// ErrShadowRejected reports a shadow verdict that kept the incumbent:
	// no challenger cleared the margin over the champion at the required
	// sample count, so nothing was rolled out.
	ErrShadowRejected = errors.New("fleet: shadow gate kept the incumbent")
)

// Admin is the control-plane surface of one replica — the in-process handle
// the coordinator promotes and rolls back through. *serve.Server satisfies
// it.
type Admin interface {
	Framework() *core.Framework
	Forecaster() *forecast.Forecaster
	ModelDigest() string
	ForecasterDigest() string
	ReloadFramework(*core.Framework) error
	ReloadForecaster(*forecast.Forecaster) error
}

// Replica is one serving instance as the coordinator sees it: a name (the
// identity used in routing hashes, timelines, and reservoir run stamps), a
// data plane (the /v1/ HTTP client), an optional admin plane (promotion),
// and an optional continuous-learning loop (labeled reservoir).
type Replica struct {
	name   string
	admin  Admin
	client *serve.Client
	loop   *online.Loop
}

// NewReplica registers a serving instance. admin may be nil for a
// routing-only replica (Status and Predict work; Promote refuses it), and
// loop may be nil when the replica keeps no labeled reservoir.
func NewReplica(name string, admin Admin, client *serve.Client, loop *online.Loop) *Replica {
	if name == "" {
		panic("fleet: empty replica name")
	}
	if client == nil {
		panic("fleet: nil replica client")
	}
	return &Replica{name: name, admin: admin, client: client, loop: loop}
}

// Name is the replica's fleet identity.
func (r *Replica) Name() string { return r.name }

// Config tunes the coordinator.
type Config struct {
	// Seed drives the rendezvous routing hash; same seed + same replica
	// names = same key → replica ranking.
	Seed int64
}

// Coordinator fronts a set of replicas. Create with New.
type Coordinator struct {
	seed int64

	mu       sync.Mutex
	replicas []*Replica
	timeline []string
	accepted int
	dropped  int
	lastFail map[string]string

	promoteMu sync.Mutex
}

// New builds a coordinator over the given replicas. Registration order is
// promotion order. Names must be unique.
func New(cfg Config, replicas ...*Replica) (*Coordinator, error) {
	if len(replicas) == 0 {
		return nil, errors.New("fleet: no replicas")
	}
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		if seen[r.name] {
			return nil, fmt.Errorf("fleet: duplicate replica name %q", r.name)
		}
		seen[r.name] = true
	}
	return &Coordinator{seed: cfg.Seed, replicas: replicas, lastFail: make(map[string]string)}, nil
}

// Replicas returns the registered replica names in registration order.
func (c *Coordinator) Replicas() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.replicas))
	for i, r := range c.replicas {
		names[i] = r.name
	}
	return names
}

// Rebind replaces the named replica's handles — how a killed replica
// rejoins the fleet after a restart under the same identity. The routing
// hash depends only on the name, so the restarted replica takes back
// exactly the keys it owned before.
func (c *Coordinator) Rebind(name string, admin Admin, client *serve.Client, loop *online.Loop) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, r := range c.replicas {
		if r.name == name {
			c.replicas[i] = NewReplica(name, admin, client, loop)
			c.timeline = append(c.timeline, "restart "+name)
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownReplica, name)
}

// Note appends an external event (e.g. "kill r1" from a test harness) to
// the decision timeline so byte-compared episodes can mark actions the
// coordinator itself cannot observe.
func (c *Coordinator) Note(msg string) {
	c.mu.Lock()
	c.timeline = append(c.timeline, msg)
	c.mu.Unlock()
}

// Timeline returns a copy of every routing/promotion/rollback decision so
// far, in order. Lines contain replica names and weight digests only —
// never ports or timestamps — so same-seed episodes byte-compare equal.
func (c *Coordinator) Timeline() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.timeline...)
}

// Accepted and Dropped count requests the fleet answered / failed outright.
func (c *Coordinator) Accepted() int { c.mu.Lock(); defer c.mu.Unlock(); return c.accepted }
func (c *Coordinator) Dropped() int  { c.mu.Lock(); defer c.mu.Unlock(); return c.dropped }

func (c *Coordinator) event(format string, args ...interface{}) {
	c.mu.Lock()
	c.timeline = append(c.timeline, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

// noteFail remembers the most recent routing-failure cause per replica, so
// Status can answer "why did r1 lose its turn" long after the retry line
// scrolled off the timeline. Sticky: a later success does not erase it.
func (c *Coordinator) noteFail(name, label string) {
	c.mu.Lock()
	c.lastFail[name] = label
	c.mu.Unlock()
}

// snapshot copies the replica slice so routing and promotion iterate a
// stable view while Rebind may swap entries.
func (c *Coordinator) snapshot() []*Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Replica(nil), c.replicas...)
}

// score is the rendezvous (highest-random-weight) hash of one (key,
// replica) pair under the coordinator seed.
func (c *Coordinator) score(key, name string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(c.seed))
	h.Write(seed[:])
	h.Write([]byte(key))
	h.Write([]byte{0}) // key/name separator: ("ab","c") must not hash like ("a","bc")
	h.Write([]byte(name))
	return h.Sum64()
}

// rank orders the replicas by descending rendezvous score for key, names
// breaking ties, so every coordinator with the same seed and replica set
// agrees on the full preference order — not just the winner — and failover
// stays deterministic too.
func (c *Coordinator) rank(key string) []*Replica {
	ranked := c.snapshot()
	scores := make(map[string]uint64, len(ranked))
	for _, r := range ranked {
		scores[r.name] = c.score(key, r.name)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i].name], scores[ranked[j].name]
		if si != sj {
			return si > sj
		}
		return ranked[i].name < ranked[j].name
	})
	return ranked
}

// cause maps a replica failure to a short deterministic label for the
// timeline (error strings carry ports and hosts; these never do).
func cause(err error) string {
	switch {
	case errors.Is(err, serve.ErrShuttingDown):
		return "draining"
	case errors.Is(err, serve.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, serve.ErrBadInput):
		return "bad-input"
	case errors.Is(err, serve.ErrNoForecaster):
		return "no-forecaster"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	}
	var ae *serve.APIError
	if errors.As(err, &ae) {
		return fmt.Sprintf("http-%d", ae.Status)
	}
	return "unreachable"
}

// Predict routes one window matrix by key: the rendezvous-ranked replicas
// are tried in order until one answers. A bad-input rejection is the
// caller's mistake and is not failed over. Every attempt lands on the
// timeline ("route key replica", with "retry key replica cause" lines for
// the replicas that lost their turn).
func (c *Coordinator) Predict(ctx context.Context, key string, mat window.Matrix) (*serve.PredictResponse, error) {
	var errs []error
	for _, r := range c.rank(key) {
		resp, err := r.client.Predict(ctx, mat)
		if err == nil {
			c.event("route %s %s", key, r.name)
			c.mu.Lock()
			c.accepted++
			c.mu.Unlock()
			return resp, nil
		}
		if errors.Is(err, serve.ErrBadInput) {
			c.event("reject %s bad-input", key)
			return nil, err
		}
		c.event("retry %s %s %s", key, r.name, cause(err))
		c.noteFail(r.name, cause(err))
		errs = append(errs, fmt.Errorf("%s: %w", r.name, err))
	}
	c.event("drop %s", key)
	c.mu.Lock()
	c.dropped++
	c.mu.Unlock()
	return nil, fmt.Errorf("%w for key %q: %w", ErrAllReplicasFailed, key, errors.Join(errs...))
}

// Forecast routes a window history the same way Predict routes a matrix.
func (c *Coordinator) Forecast(ctx context.Context, key string, history []window.Matrix) (*serve.ForecastResponse, error) {
	var errs []error
	for _, r := range c.rank(key) {
		resp, err := r.client.Forecast(ctx, history)
		if err == nil {
			c.event("route %s %s", key, r.name)
			c.mu.Lock()
			c.accepted++
			c.mu.Unlock()
			return resp, nil
		}
		if errors.Is(err, serve.ErrBadInput) || errors.Is(err, serve.ErrNoForecaster) {
			c.event("reject %s %s", key, cause(err))
			return nil, err
		}
		c.event("retry %s %s %s", key, r.name, cause(err))
		c.noteFail(r.name, cause(err))
		errs = append(errs, fmt.Errorf("%s: %w", r.name, err))
	}
	c.event("drop %s", key)
	c.mu.Lock()
	c.dropped++
	c.mu.Unlock()
	return nil, fmt.Errorf("%w for key %q: %w", ErrAllReplicasFailed, key, errors.Join(errs...))
}

// ReplicaStatus is one replica's health as the coordinator sees it.
type ReplicaStatus struct {
	Name    string
	Healthy bool
	// Cause is the failure label when unhealthy ("unreachable", "draining",
	// "http-500", ...), empty when healthy.
	Cause string
	// LastFailure is the most recent routing-failure cause this coordinator
	// recorded for the replica (the label from its last "retry" timeline
	// event). Sticky across later successes — a healthy replica with a
	// LastFailure was degraded at some point this run — and empty when the
	// replica never lost a turn.
	LastFailure string
	// Health is the replica's /v1/healthz advertisement, nil when unhealthy.
	Health *serve.Health
}

// Status is the aggregated fleet view.
type Status struct {
	// Replicas reports per-replica health in registration order.
	Replicas []ReplicaStatus
	// Healthy counts replicas that answered /v1/healthz ok.
	Healthy int
	// Consistent reports whether every healthy replica advertises the same
	// API version, model digest, forecaster digest, and input shape. A
	// fleet with zero healthy replicas is not consistent.
	Consistent bool
	// APIVersion, ModelDigest, ForecasterDigest, Targets, and Features are
	// the fleet-wide values when Consistent.
	APIVersion       string
	ModelDigest      string
	ForecasterDigest string
	Targets          int
	Features         int
}

// Status probes every replica's /v1/healthz and aggregates readiness: the
// fleet is consistent only when all healthy replicas agree on version,
// digests, and shape — the check that lets the coordinator refuse
// mixed-version fleets.
func (c *Coordinator) Status(ctx context.Context) Status {
	var st Status
	for _, r := range c.snapshot() {
		c.mu.Lock()
		lastFail := c.lastFail[r.name]
		c.mu.Unlock()
		h, err := r.client.Health(ctx)
		if err != nil {
			st.Replicas = append(st.Replicas, ReplicaStatus{Name: r.name, Cause: cause(err), LastFailure: lastFail})
			continue
		}
		if h.Status != "ok" {
			st.Replicas = append(st.Replicas, ReplicaStatus{Name: r.name, Cause: "status-" + h.Status, LastFailure: lastFail, Health: h})
			continue
		}
		st.Replicas = append(st.Replicas, ReplicaStatus{Name: r.name, Healthy: true, LastFailure: lastFail, Health: h})
		if st.Healthy == 0 {
			st.Consistent = true
			st.APIVersion = h.APIVersion
			st.ModelDigest = h.ModelDigest
			st.ForecasterDigest = h.ForecasterDigest
			st.Targets, st.Features = h.Targets, h.Features
		} else if h.APIVersion != st.APIVersion || h.ModelDigest != st.ModelDigest ||
			h.ForecasterDigest != st.ForecasterDigest ||
			h.Targets != st.Targets || h.Features != st.Features {
			st.Consistent = false
		}
		st.Healthy++
	}
	if st.Healthy == 0 {
		st.Consistent = false
	}
	if !st.Consistent {
		st.APIVersion, st.ModelDigest, st.ForecasterDigest = "", "", ""
		st.Targets, st.Features = 0, 0
	}
	return st
}

// preflight gates one promotion step: the replica must be reachable, ok,
// speaking this coordinator's API version, and its HTTP-advertised digest
// must match its admin plane's — a wrongly-wired replica (data and control
// planes pointing at different processes) fails here, before any reload.
func (c *Coordinator) preflight(ctx context.Context, r *Replica) error {
	if r.admin == nil {
		return ErrNoAdmin
	}
	h, err := r.client.Health(ctx)
	if err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("fleet: %s reports status %q", r.name, h.Status)
	}
	if h.APIVersion != serve.APIVersion {
		return fmt.Errorf("fleet: %s speaks API %q, coordinator requires %q", r.name, h.APIVersion, serve.APIVersion)
	}
	if h.ModelDigest != r.admin.ModelDigest() {
		return fmt.Errorf("fleet: %s data plane serves digest %s but admin plane holds %s",
			r.name, h.ModelDigest, r.admin.ModelDigest())
	}
	return nil
}

// promoted records one completed rollout step for rollback.
type promoted struct {
	r   *Replica
	inc *core.Framework      // incumbent clone captured before the step
	fc  *forecast.Forecaster // incumbent forecaster clone (nil = none was loaded)
}

// Promote rolls a candidate framework across the fleet replica by replica,
// in registration order. Each replica gets its own clone of the candidate
// (ownership transfers on reload; frameworks carry per-instance scratch)
// after a preflight health/version check. The first failure rolls every
// already-promoted replica back to the incumbent clone captured before its
// step — in reverse order — so the fleet never stays torn between versions.
// The candidate itself is never handed over; the caller keeps it.
func (c *Coordinator) Promote(ctx context.Context, cand *core.Framework) error {
	if cand == nil {
		return errors.New("fleet: nil candidate framework")
	}
	c.promoteMu.Lock()
	defer c.promoteMu.Unlock()

	digest := ml.WeightsDigest(cand.ExportWeights())
	var done []promoted
	for _, r := range c.snapshot() {
		if err := c.stepFramework(ctx, r, cand, digest, &done); err != nil {
			c.rollback(done)
			return fmt.Errorf("%w: halted at %s: %v (rolled back %d replica(s))",
				ErrPromotionFailed, r.name, err, len(done))
		}
	}
	return nil
}

func (c *Coordinator) stepFramework(ctx context.Context, r *Replica, cand *core.Framework, digest string, done *[]promoted) error {
	if err := c.preflight(ctx, r); err != nil {
		c.event("promote-failed %s %s", r.name, cause(err))
		return err
	}
	inc, err := r.admin.Framework().Clone()
	if err != nil {
		c.event("promote-failed %s clone", r.name)
		return err
	}
	clone, err := cand.Clone()
	if err != nil {
		c.event("promote-failed %s clone", r.name)
		return err
	}
	if err := r.admin.ReloadFramework(clone); err != nil {
		c.event("promote-failed %s reload", r.name)
		return err
	}
	c.event("promote %s %s", r.name, digest)
	*done = append(*done, promoted{r: r, inc: inc})
	return nil
}

// rollback restores already-promoted replicas to their incumbents, newest
// first. Best-effort: a replica that refuses its own incumbent back is
// recorded and skipped (Status will flag the fleet inconsistent).
func (c *Coordinator) rollback(done []promoted) {
	for i := len(done) - 1; i >= 0; i-- {
		d := done[i]
		if d.inc != nil {
			if err := d.r.admin.ReloadFramework(d.inc); err != nil {
				c.event("rollback-failed %s", d.r.name)
				continue
			}
			c.event("rollback %s %s", d.r.name, ml.WeightsDigest(d.inc.ExportWeights()))
			continue
		}
		// Forecaster rollout whose incumbent was "none": a loaded forecaster
		// cannot be unloaded, so the first load is sticky.
		c.event("rollback %s none", d.r.name)
	}
}

// PromoteShadowed turns a shadow-gate verdict (online.EvaluateShadowGate,
// typically via a shadow.Evaluator's Verdict) into a fleet action: when the
// gate promoted a winner, the matching candidate framework rolls out through
// Promote — same preflight, rolling order, and reverse rollback — and when
// the gate kept the champion, nothing is touched and ErrShadowRejected is
// returned so callers can tell "gate said no" from "rollout broke". The
// decision lands on the timeline either way ("shadow-promote <winner>" /
// "shadow-keep incumbent"), keeping same-seed episodes byte-comparable.
// candidates maps challenger names (as registered with the evaluator) to the
// frameworks that would roll out; a winning name missing from the map is a
// wiring error, reported before any replica is touched.
func (c *Coordinator) PromoteShadowed(ctx context.Context, verdict online.GateResult, candidates map[string]*core.Framework) error {
	if !verdict.Promote || verdict.Winner == "" {
		c.event("shadow-keep incumbent")
		return fmt.Errorf("%w (margin %.4g, best challenger %.4f vs champion %.4f on %d sample(s))",
			ErrShadowRejected, verdict.Margin, verdict.CandidateAccuracy, verdict.IncumbentAccuracy, verdict.Holdout)
	}
	cand, ok := candidates[verdict.Winner]
	if !ok || cand == nil {
		c.event("shadow-promote-failed %s unknown-candidate", verdict.Winner)
		return fmt.Errorf("fleet: shadow winner %q has no candidate framework", verdict.Winner)
	}
	c.event("shadow-promote %s", verdict.Winner)
	return c.Promote(ctx, cand)
}

// PromoteForecaster rolls a candidate forecaster across the fleet with the
// same preflight / per-replica clone / reverse rollback discipline as
// Promote. One asymmetry: a replica whose incumbent had no forecaster
// cannot be rolled back to "none" (the serving layer cannot unload), so a
// failed first-time rollout leaves earlier replicas on the candidate and
// records "rollback <name> none"; Status then reports the fleet
// inconsistent until a retry lands everywhere.
func (c *Coordinator) PromoteForecaster(ctx context.Context, cand *forecast.Forecaster) error {
	if cand == nil {
		return errors.New("fleet: nil candidate forecaster")
	}
	c.promoteMu.Lock()
	defer c.promoteMu.Unlock()

	digest := ml.WeightsDigest(cand.ExportWeights())
	var done []promoted
	for _, r := range c.snapshot() {
		if err := c.stepForecaster(ctx, r, cand, digest, &done); err != nil {
			c.rollbackForecasters(done)
			return fmt.Errorf("%w: halted at %s: %v (rolled back %d replica(s))",
				ErrPromotionFailed, r.name, err, len(done))
		}
	}
	return nil
}

func (c *Coordinator) stepForecaster(ctx context.Context, r *Replica, cand *forecast.Forecaster, digest string, done *[]promoted) error {
	if err := c.preflight(ctx, r); err != nil {
		c.event("promote-failed %s %s", r.name, cause(err))
		return err
	}
	var inc *forecast.Forecaster
	if cur := r.admin.Forecaster(); cur != nil {
		var err error
		if inc, err = cur.Clone(); err != nil {
			c.event("promote-failed %s clone", r.name)
			return err
		}
	}
	clone, err := cand.Clone()
	if err != nil {
		c.event("promote-failed %s clone", r.name)
		return err
	}
	if err := r.admin.ReloadForecaster(clone); err != nil {
		c.event("promote-failed %s reload", r.name)
		return err
	}
	c.event("promote %s %s", r.name, digest)
	*done = append(*done, promoted{r: r, fc: inc})
	return nil
}

func (c *Coordinator) rollbackForecasters(done []promoted) {
	for i := len(done) - 1; i >= 0; i-- {
		d := done[i]
		if d.fc == nil {
			c.event("rollback %s none", d.r.name)
			continue
		}
		if err := d.r.admin.ReloadForecaster(d.fc); err != nil {
			c.event("rollback-failed %s", d.r.name)
			continue
		}
		c.event("rollback %s %s", d.r.name, ml.WeightsDigest(d.fc.ExportWeights()))
	}
}

// MergedDataset exports every replica's labeled reservoir under its own
// name and folds them through dataset.MergeAll: the fleet's combined
// retraining history, digesting identically regardless of replica order.
// Replicas without a loop are skipped; at least one must have one.
func (c *Coordinator) MergedDataset() (*dataset.Dataset, error) {
	var sets []*dataset.Dataset
	for _, r := range c.snapshot() {
		if r.loop != nil {
			sets = append(sets, r.loop.ExportBuffer(r.name))
		}
	}
	if len(sets) == 0 {
		return nil, errors.New("fleet: no replica has a labeled reservoir")
	}
	return dataset.MergeAll(sets...)
}

// SaveBuffers persists each loop-bearing replica's reservoir export to
// dir/<name>.json, so a restarted replica can replay its labeled history.
func (c *Coordinator) SaveBuffers(dir string) error {
	for _, r := range c.snapshot() {
		if r.loop == nil {
			continue
		}
		if err := r.loop.ExportBuffer(r.name).Save(filepath.Join(dir, r.name+".json")); err != nil {
			return fmt.Errorf("fleet: saving %s buffer: %w", r.name, err)
		}
	}
	return nil
}

// LoadBuffers replays each dir/<name>.json export back into the matching
// replica's reservoir. Missing files are skipped (a replica that never
// saved has nothing to restore); schema mismatches are errors. Re-importing
// a replica's own live export only duplicates samples the canonical merge
// deduplicates again, so restore is idempotent at the fleet level.
func (c *Coordinator) LoadBuffers(dir string) error {
	for _, r := range c.snapshot() {
		if r.loop == nil {
			continue
		}
		path := filepath.Join(dir, r.name+".json")
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			continue
		}
		ds, err := dataset.Load(path)
		if err != nil {
			return fmt.Errorf("fleet: loading %s buffer: %w", r.name, err)
		}
		if err := r.loop.ImportBuffer(ds); err != nil {
			return fmt.Errorf("fleet: importing %s buffer: %w", r.name, err)
		}
	}
	return nil
}
