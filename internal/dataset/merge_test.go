package dataset

import (
	"errors"
	"fmt"
	"testing"
)

// mergeSample builds a deterministic sample keyed by (run, window).
func mergeSample(run string, win int, label int) *Sample {
	return &Sample{
		Workload:    "w",
		Run:         run,
		Window:      win,
		Degradation: 1 + float64(win)/10,
		Label:       label,
		Vectors:     [][]float64{{float64(win), float64(label)}},
	}
}

func mergeDataset(profile string, samples ...*Sample) *Dataset {
	d := New([]string{"a", "b"}, 1, 2)
	d.Profile = profile
	for _, s := range samples {
		d.Add(s)
	}
	return d
}

// TestMergeAllOrderIndependent pins the fleet-merge determinism contract:
// three reservoir exports merged in every permutation yield one digest.
func TestMergeAllOrderIndependent(t *testing.T) {
	a := mergeDataset("paper", mergeSample("r0", 0, 0), mergeSample("r0", 1, 1))
	b := mergeDataset("paper", mergeSample("r1", 0, 1), mergeSample("r1", 2, 0))
	c := mergeDataset("paper", mergeSample("r2", 5, 0), mergeSample("r2", 6, 1))

	perms := [][]*Dataset{
		{a, b, c}, {a, c, b}, {b, a, c}, {b, c, a}, {c, a, b}, {c, b, a},
	}
	var want string
	for i, p := range perms {
		m, err := MergeAll(p...)
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != 6 {
			t.Fatalf("perm %d: merged %d samples, want 6", i, m.Len())
		}
		got := m.Digest()
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("perm %d: digest %s, want %s (merge order leaked into the result)", i, got, want)
		}
	}

	// The canonical digest differs from an unsorted concatenation's: Digest
	// is order-sensitive by design, MergeAll is what canonicalizes.
	cat := mergeDataset("paper")
	cat.Merge(c)
	cat.Merge(a)
	cat.Merge(b)
	if cat.Digest() == want {
		t.Fatal("unsorted concatenation digests like the canonical merge — Sort is a no-op?")
	}
	cat.Sort()
	if cat.Digest() != want {
		t.Fatal("sorted concatenation does not match the canonical merge digest")
	}
}

// TestMergeAllDedupes: two replicas that both labeled the same (workload,
// run, window) contribute it once; distinct windows all survive.
func TestMergeAllDedupes(t *testing.T) {
	shared := mergeSample("r", 3, 1)
	dup := mergeSample("r", 3, 1) // same key, same content, distinct pointer
	a := mergeDataset("", shared, mergeSample("r", 1, 0))
	b := mergeDataset("", dup, mergeSample("r", 2, 0))

	m, err := MergeAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("merged %d samples, want 3 (window 3 deduplicated)", m.Len())
	}
	seen := map[int]int{}
	for _, s := range m.Samples {
		seen[s.Window]++
	}
	for w, n := range seen {
		if n != 1 {
			t.Fatalf("window %d appears %d times", w, n)
		}
	}

	// Same-key, different-content duplicates resolve deterministically to the
	// canonically-first sample, whichever side it arrives on.
	lo := mergeSample("r", 9, 0)
	hi := mergeSample("r", 9, 1)
	m1, _ := MergeAll(mergeDataset("", lo), mergeDataset("", hi))
	m2, _ := MergeAll(mergeDataset("", hi), mergeDataset("", lo))
	if m1.Digest() != m2.Digest() {
		t.Fatal("conflicting duplicate resolved differently depending on merge order")
	}
	var kept *Sample
	for _, s := range m1.Samples {
		if s.Window == 9 {
			kept = s
		}
	}
	if kept == nil || kept.Label != 0 {
		t.Fatalf("kept sample = %+v, want the canonically-first (label 0)", kept)
	}
}

// TestMergeAllProfiles: "mixed" only when profiles actually differ; empty
// stamps are wildcards; resolution is order-independent.
func TestMergeAllProfiles(t *testing.T) {
	cases := []struct {
		profiles []string
		want     string
	}{
		{[]string{"paper", "paper", "paper"}, "paper"},
		{[]string{"", "", ""}, ""},
		{[]string{"", "nvme", ""}, "nvme"},
		{[]string{"paper", "nvme", "paper"}, "mixed"},
		{[]string{"", "paper", "nvme"}, "mixed"},
	}
	for _, tc := range cases {
		sets := make([]*Dataset, len(tc.profiles))
		for i, p := range tc.profiles {
			sets[i] = mergeDataset(p, mergeSample(fmt.Sprintf("r%d", i), i, 0))
		}
		for pass := 0; pass < 2; pass++ {
			m, err := MergeAll(sets...)
			if err != nil {
				t.Fatal(err)
			}
			if m.Profile != tc.want {
				t.Fatalf("profiles %v (pass %d): stamp %q, want %q", tc.profiles, pass, m.Profile, tc.want)
			}
			// Reverse for the second pass: same resolution either way.
			for i, j := 0, len(sets)-1; i < j; i, j = i+1, j-1 {
				sets[i], sets[j] = sets[j], sets[i]
			}
		}
	}
}

// TestMergeAllSchemaMismatch: incompatible schemas are a typed error, not a
// panic, and nil inputs are skipped.
func TestMergeAllSchemaMismatch(t *testing.T) {
	a := mergeDataset("", mergeSample("r", 0, 0))
	narrow := New([]string{"a"}, 1, 2)
	if _, err := MergeAll(a, narrow); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("mismatched width err = %v, want ErrSchemaMismatch", err)
	}
	if _, err := MergeAll(nil, nil); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("all-nil err = %v, want ErrSchemaMismatch", err)
	}
	m, err := MergeAll(nil, a, nil)
	if err != nil || m.Len() != 1 {
		t.Fatalf("nil-skipping merge = %v, %d samples", err, m.Len())
	}
}
