package dataset

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestEmptyDatasetRoundTrip pins the zero-sample edge: a freshly created
// dataset must survive Save/Load with its schema intact and keep behaving
// (Split, FitScaler, Copy) without panicking on the empty sample slice.
func TestEmptyDatasetRoundTrip(t *testing.T) {
	d := New([]string{"f0", "f1", "f2"}, 4, 3)
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FeatureNames, d.FeatureNames) ||
		got.NTargets != d.NTargets || got.Classes != d.Classes {
		t.Fatalf("schema changed across round-trip: %+v", got)
	}
	if got.Len() != 0 {
		t.Fatalf("empty dataset loaded %d samples", got.Len())
	}

	train, test := got.Split(0.2, 1)
	if train.Len() != 0 || test.Len() != 0 {
		t.Fatalf("empty split produced samples: %d/%d", train.Len(), test.Len())
	}
	if counts := got.ClassCounts(); len(counts) != 3 {
		t.Fatalf("class counts = %v", counts)
	}
	// FitScaler on no data must fall back to identity stds, so Transform is
	// a no-op rather than a divide-by-zero.
	s := FitScaler(got)
	for f, std := range s.Std {
		if std != 1 || s.Mean[f] != 0 {
			t.Fatalf("empty-fit scaler = %+v, want zero mean / unit std", s)
		}
	}
	if got.Copy().Len() != 0 {
		t.Fatal("copy of empty dataset has samples")
	}
}

// TestDuplicateWindowAppend pins that Add performs no (run, window)
// de-duplication: two samples for the same window of the same run are both
// kept, in insertion order. Collectors rely on this when a variant re-runs —
// de-duplicating silently would hide the duplication bug upstream.
func TestDuplicateWindowAppend(t *testing.T) {
	d := New([]string{"f0"}, 1, 2)
	first := &Sample{Run: "r1", Window: 5, Label: 0, Degradation: 1, Vectors: [][]float64{{1}}}
	dup := &Sample{Run: "r1", Window: 5, Label: 1, Degradation: 3, Vectors: [][]float64{{2}}}
	d.Add(first)
	d.Add(dup)
	if d.Len() != 2 {
		t.Fatalf("duplicate window collapsed: %d samples", d.Len())
	}
	if d.Samples[0] != first || d.Samples[1] != dup {
		t.Fatal("samples reordered or replaced")
	}
	if counts := d.ClassCounts(); counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}

	// Round-trip keeps both, bit for bit.
	path := filepath.Join(t.TempDir(), "dup.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 ||
		got.Samples[0].Vectors[0][0] != 1 || got.Samples[1].Vectors[0][0] != 2 ||
		got.Samples[0].Window != 5 || got.Samples[1].Window != 5 {
		t.Fatalf("round-trip changed duplicate windows: %+v", got.Samples)
	}
}
