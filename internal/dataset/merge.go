package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSchemaMismatch reports an attempt to merge datasets whose schemas
// (target count, feature width, or class count) differ. Match with
// errors.Is.
var ErrSchemaMismatch = errors.New("dataset: merging incompatible schemas")

// less is the canonical sample ordering: identity key (workload, run,
// window) first, then content (degradation, label, vector bits) so that the
// order is total even across samples that share a key. A total order is what
// makes Sort — and therefore MergeAll's digest — independent of input order.
func less(a, b *Sample) bool {
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	if a.Run != b.Run {
		return a.Run < b.Run
	}
	if a.Window != b.Window {
		return a.Window < b.Window
	}
	if a.Degradation != b.Degradation {
		return a.Degradation < b.Degradation
	}
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	for t := range a.Vectors {
		if t >= len(b.Vectors) {
			return false
		}
		av, bv := a.Vectors[t], b.Vectors[t]
		for f := range av {
			if f >= len(bv) {
				return false
			}
			if av[f] != bv[f] {
				return av[f] < bv[f]
			}
		}
		if len(av) != len(bv) {
			return len(av) < len(bv)
		}
	}
	return len(a.Vectors) < len(b.Vectors)
}

// sameKey reports whether two samples describe the same (workload, run,
// window) — the identity the fleet's buffer merge deduplicates on: two
// replicas that both labeled window w of run r hold the same ground truth.
func sameKey(a, b *Sample) bool {
	return a.Workload == b.Workload && a.Run == b.Run && a.Window == b.Window
}

// Sort orders the samples canonically (see less) in place. Two datasets
// holding the same sample multiset render identically after Sort, whatever
// order the samples arrived in.
func (d *Dataset) Sort() {
	sort.Slice(d.Samples, func(i, j int) bool { return less(d.Samples[i], d.Samples[j]) })
}

// Dedupe sorts canonically and drops every sample that repeats an earlier
// sample's (workload, run, window) key, keeping the canonically-first one —
// deterministic regardless of arrival order because the content tiebreak in
// the sort is total. Returns the number of samples dropped.
func (d *Dataset) Dedupe() int {
	d.Sort()
	kept := d.Samples[:0]
	for _, s := range d.Samples {
		if len(kept) > 0 && sameKey(kept[len(kept)-1], s) {
			continue
		}
		kept = append(kept, s)
	}
	dropped := len(d.Samples) - len(kept)
	for i := len(kept); i < len(d.Samples); i++ {
		d.Samples[i] = nil // keep the tail collectable
	}
	d.Samples = kept
	return dropped
}

// Digest hashes the dataset bit-exactly — schema, profile, and every sample
// (strings length-prefixed, floats as little-endian IEEE bits) — and returns
// the first 16 hex digits of the sha256. Datasets that render differently
// digest differently; use after Sort (or via MergeAll) to get an
// order-independent identity for a sample multiset.
func (d *Dataset) Digest() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	writeFloat := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	writeInt(len(d.FeatureNames))
	for _, n := range d.FeatureNames {
		writeStr(n)
	}
	writeInt(d.NTargets)
	writeInt(d.Classes)
	writeStr(d.Profile)
	writeInt(len(d.Samples))
	for _, s := range d.Samples {
		writeStr(s.Workload)
		writeStr(s.Run)
		writeInt(s.Window)
		writeFloat(s.Degradation)
		writeInt(s.Label)
		writeInt(len(s.Vectors))
		for _, vec := range s.Vectors {
			writeInt(len(vec))
			for _, x := range vec {
				writeFloat(x)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// MergeAll combines any number of datasets into one canonical dataset: the
// union of all samples, deduplicated on (workload, run, window), in the
// canonical sort order. The result — and its Digest — is bit-identical
// regardless of the order the inputs are given in, which is what lets a
// fleet coordinator merge per-replica reservoir exports in whatever order
// replicas answer and still retrain identical weights.
//
// The profile stamp is resolved order-independently: empty stamps are
// wildcards, one distinct non-empty profile wins, more than one reads
// "mixed". Schema mismatches return ErrSchemaMismatch (wrapped) instead of
// panicking. Samples are shared with the inputs, not copied; nil inputs are
// skipped. At least one non-nil input is required.
func MergeAll(sets ...*Dataset) (*Dataset, error) {
	var first *Dataset
	for _, s := range sets {
		if s != nil {
			first = s
			break
		}
	}
	if first == nil {
		return nil, fmt.Errorf("%w: no datasets to merge", ErrSchemaMismatch)
	}
	out := New(first.FeatureNames, first.NTargets, first.Classes)
	profiles := map[string]bool{}
	for _, s := range sets {
		if s == nil {
			continue
		}
		if s.NTargets != out.NTargets || len(s.FeatureNames) != len(out.FeatureNames) ||
			s.Classes != out.Classes {
			return nil, fmt.Errorf("%w: %dx%d/%d classes vs %dx%d/%d classes",
				ErrSchemaMismatch, s.NTargets, len(s.FeatureNames), s.Classes,
				out.NTargets, len(out.FeatureNames), out.Classes)
		}
		if s.Profile != "" {
			profiles[s.Profile] = true
		}
		out.Samples = append(out.Samples, s.Samples...)
	}
	switch len(profiles) {
	case 0:
	case 1:
		for p := range profiles {
			out.Profile = p
		}
	default:
		out.Profile = "mixed"
	}
	out.Dedupe()
	return out, nil
}
