// Package dataset assembles labelled training samples — one per (run, time
// window) with a [targets × features] matrix and a degradation class — and
// provides the 80/20 split, per-feature standardization, and JSON
// (de)serialization used by the training tools.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"quanterference/internal/sim"
)

// Sample is one labelled time window.
type Sample struct {
	Workload    string      `json:"workload"`
	Run         string      `json:"run"`
	Window      int         `json:"window"`
	Degradation float64     `json:"degradation"`
	Label       int         `json:"label"`
	Vectors     [][]float64 `json:"vectors"` // [target][feature]
}

// Dataset is a labelled collection with its schema.
type Dataset struct {
	FeatureNames []string `json:"feature_names"`
	NTargets     int      `json:"n_targets"`
	Classes      int      `json:"classes"`
	// Profile names the hardware profile the samples were simulated on
	// ("paper", "nvme", ...; see internal/hw). Empty on datasets written
	// before profiles existed — readers treat that as "paper". Merging
	// datasets from different profiles sets it to "mixed".
	Profile string    `json:"profile,omitempty"`
	Samples []*Sample `json:"samples"`
}

// New creates an empty dataset with the given schema.
func New(featureNames []string, nTargets, classes int) *Dataset {
	return &Dataset{FeatureNames: featureNames, NTargets: nTargets, Classes: classes}
}

// Add validates and appends a sample.
func (d *Dataset) Add(s *Sample) {
	if len(s.Vectors) != d.NTargets {
		panic(fmt.Sprintf("dataset: sample has %d targets, want %d", len(s.Vectors), d.NTargets))
	}
	for _, v := range s.Vectors {
		if len(v) != len(d.FeatureNames) {
			panic(fmt.Sprintf("dataset: vector width %d, want %d", len(v), len(d.FeatureNames)))
		}
	}
	if s.Label < 0 || s.Label >= d.Classes {
		panic(fmt.Sprintf("dataset: label %d out of %d classes", s.Label, d.Classes))
	}
	d.Samples = append(d.Samples, s)
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// ClassCounts tallies samples per label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, s := range d.Samples {
		counts[s.Label]++
	}
	return counts
}

// clone returns a dataset with the same schema and no samples.
func (d *Dataset) clone() *Dataset {
	out := New(d.FeatureNames, d.NTargets, d.Classes)
	out.Profile = d.Profile
	return out
}

// Split randomly partitions the samples into train and test sets, reserving
// testFrac (e.g. 0.2 for the paper's 80/20 split) for testing.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	if testFrac < 0 || testFrac >= 1 {
		panic("dataset: testFrac must be in [0,1)")
	}
	train, test = d.clone(), d.clone()
	perm := sim.NewRNG(seed).Perm(len(d.Samples))
	nTest := int(math.Round(testFrac * float64(len(d.Samples))))
	for i, p := range perm {
		if i < nTest {
			test.Samples = append(test.Samples, d.Samples[p])
		} else {
			train.Samples = append(train.Samples, d.Samples[p])
		}
	}
	return train, test
}

// Merge appends all samples of other (schemas must match). Merging across
// two different hardware profiles marks the result "mixed"; an empty profile
// on either side is a wildcard (unstamped data), not a distinct profile, so
// the merge adopts whichever side is stamped instead of poisoning the result.
func (d *Dataset) Merge(other *Dataset) {
	if other.NTargets != d.NTargets || len(other.FeatureNames) != len(d.FeatureNames) ||
		other.Classes != d.Classes {
		panic("dataset: merging incompatible schemas")
	}
	switch {
	case other.Profile == d.Profile || other.Profile == "":
		// Same profile, or the other side is unstamped: keep ours.
	case d.Profile == "":
		d.Profile = other.Profile
	default:
		d.Profile = "mixed"
	}
	d.Samples = append(d.Samples, other.Samples...)
}

// Save writes the dataset as JSON.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	return enc.Encode(d)
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d Dataset
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

// Copy deep-copies the dataset (samples and vectors), so destructive
// operations like Scaler.Transform cannot touch the original.
func (d *Dataset) Copy() *Dataset {
	out := d.clone()
	for _, s := range d.Samples {
		c := *s
		c.Vectors = make([][]float64, len(s.Vectors))
		for t, vec := range s.Vectors {
			c.Vectors[t] = append([]float64(nil), vec...)
		}
		out.Samples = append(out.Samples, &c)
	}
	return out
}

// Rebin re-labels every sample from its stored degradation level using a
// different bin set (e.g. turning a binary dataset into the 3-class one
// without re-simulating). labelOf maps a degradation level to a class.
func (d *Dataset) Rebin(classes int, labelOf func(deg float64) int) *Dataset {
	out := New(d.FeatureNames, d.NTargets, classes)
	out.Profile = d.Profile
	for _, s := range d.Samples {
		c := *s
		c.Label = labelOf(s.Degradation)
		out.Add(&c)
	}
	return out
}

// SelectFeatures projects every vector onto the given feature indices (for
// the client-only / server-only feature ablation). Vectors are copied.
func (d *Dataset) SelectFeatures(idxs []int) *Dataset {
	names := make([]string, len(idxs))
	for i, f := range idxs {
		names[i] = d.FeatureNames[f]
	}
	out := New(names, d.NTargets, d.Classes)
	out.Profile = d.Profile
	for _, s := range d.Samples {
		c := *s
		c.Vectors = make([][]float64, len(s.Vectors))
		for t, vec := range s.Vectors {
			nv := make([]float64, len(idxs))
			for i, f := range idxs {
				nv[i] = vec[f]
			}
			c.Vectors[t] = nv
		}
		out.Add(&c)
	}
	return out
}

// Scaler standardizes features to zero mean and unit variance, fit on the
// training set only.
type Scaler struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// FitScaler computes per-feature statistics over all targets and samples.
func FitScaler(d *Dataset) *Scaler {
	nf := len(d.FeatureNames)
	s := &Scaler{Mean: make([]float64, nf), Std: make([]float64, nf)}
	n := 0
	for _, smp := range d.Samples {
		for _, vec := range smp.Vectors {
			for f, x := range vec {
				s.Mean[f] += x
			}
			n++
		}
	}
	if n == 0 {
		for f := range s.Std {
			s.Std[f] = 1
		}
		return s
	}
	for f := range s.Mean {
		s.Mean[f] /= float64(n)
	}
	for _, smp := range d.Samples {
		for _, vec := range smp.Vectors {
			for f, x := range vec {
				dlt := x - s.Mean[f]
				s.Std[f] += dlt * dlt
			}
		}
	}
	for f := range s.Std {
		s.Std[f] = math.Sqrt(s.Std[f] / float64(n))
		if s.Std[f] < 1e-12 {
			s.Std[f] = 1 // constant feature: leave centred only
		}
	}
	return s
}

// Transform standardizes every vector in place.
func (s *Scaler) Transform(d *Dataset) {
	for _, smp := range d.Samples {
		for _, vec := range smp.Vectors {
			for f := range vec {
				vec[f] = (vec[f] - s.Mean[f]) / s.Std[f]
			}
		}
	}
}

// SaveCSV writes a flat CSV view: one row per sample with metadata columns
// followed by every (target, feature) cell — consumable by external tools.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "workload,run,window,degradation,label")
	for t := 0; t < d.NTargets; t++ {
		for _, name := range d.FeatureNames {
			fmt.Fprintf(w, ",t%d_%s", t, name)
		}
	}
	fmt.Fprintln(w)
	for _, s := range d.Samples {
		fmt.Fprintf(w, "%s,%s,%d,%.6f,%d",
			csvEscape(s.Workload), csvEscape(s.Run), s.Window, s.Degradation, s.Label)
		for _, vec := range s.Vectors {
			for _, x := range vec {
				fmt.Fprintf(w, ",%.6g", x)
			}
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
