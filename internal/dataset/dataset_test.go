package dataset

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quanterference/internal/sim"
)

func mkDataset(n int) *Dataset {
	d := New([]string{"f0", "f1"}, 3, 2)
	rng := sim.NewRNG(1)
	for i := 0; i < n; i++ {
		vecs := make([][]float64, 3)
		for t := range vecs {
			vecs[t] = []float64{rng.Float64() * 10, rng.Float64()*2 - 1}
		}
		d.Add(&Sample{
			Workload: "w", Run: "r", Window: i,
			Degradation: 1 + rng.Float64()*5,
			Label:       i % 2,
			Vectors:     vecs,
		})
	}
	return d
}

func TestAddValidatesShape(t *testing.T) {
	d := New([]string{"a"}, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Add(&Sample{Vectors: [][]float64{{1}}, Label: 0}) // 1 target, want 2
}

func TestAddValidatesLabel(t *testing.T) {
	d := New([]string{"a"}, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Add(&Sample{Vectors: [][]float64{{1}}, Label: 5})
}

func TestSplitProportionsAndDisjoint(t *testing.T) {
	d := mkDataset(100)
	train, test := d.Split(0.2, 42)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split %d/%d", train.Len(), test.Len())
	}
	seen := map[*Sample]bool{}
	for _, s := range train.Samples {
		seen[s] = true
	}
	for _, s := range test.Samples {
		if seen[s] {
			t.Fatal("sample appears in both splits")
		}
	}
}

func TestSplitDeterministicBySeed(t *testing.T) {
	d := mkDataset(50)
	_, t1 := d.Split(0.2, 7)
	_, t2 := d.Split(0.2, 7)
	for i := range t1.Samples {
		if t1.Samples[i] != t2.Samples[i] {
			t.Fatal("same seed, different split")
		}
	}
	_, t3 := d.Split(0.2, 8)
	same := true
	for i := range t1.Samples {
		if t1.Samples[i] != t3.Samples[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical split")
	}
}

func TestClassCounts(t *testing.T) {
	d := mkDataset(10)
	counts := d.ClassCounts()
	if counts[0]+counts[1] != 10 || counts[0] != 5 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestScalerStandardizes(t *testing.T) {
	d := mkDataset(200)
	s := FitScaler(d)
	s.Transform(d)
	// After transform, each feature should be ~N(0,1) over all vectors.
	nf := len(d.FeatureNames)
	sum := make([]float64, nf)
	sumSq := make([]float64, nf)
	n := 0
	for _, smp := range d.Samples {
		for _, vec := range smp.Vectors {
			for f, x := range vec {
				sum[f] += x
				sumSq[f] += x * x
			}
			n++
		}
	}
	for f := 0; f < nf; f++ {
		mean := sum[f] / float64(n)
		variance := sumSq[f]/float64(n) - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-6 {
			t.Fatalf("feature %d mean=%g var=%g", f, mean, variance)
		}
	}
}

func TestScalerConstantFeatureSafe(t *testing.T) {
	d := New([]string{"const"}, 1, 2)
	for i := 0; i < 5; i++ {
		d.Add(&Sample{Vectors: [][]float64{{7}}, Label: 0})
	}
	s := FitScaler(d)
	s.Transform(d)
	for _, smp := range d.Samples {
		if v := smp.Vectors[0][0]; v != 0 || math.IsNaN(v) {
			t.Fatalf("constant feature transformed to %f", v)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := mkDataset(20)
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 20 || got.NTargets != 3 || got.Classes != 2 {
		t.Fatalf("loaded %+v", got)
	}
	for i := range got.Samples {
		if got.Samples[i].Label != d.Samples[i].Label {
			t.Fatal("labels differ after round trip")
		}
		for tt := range got.Samples[i].Vectors {
			for f := range got.Samples[i].Vectors[tt] {
				if got.Samples[i].Vectors[tt][f] != d.Samples[i].Vectors[tt][f] {
					t.Fatal("vectors differ after round trip")
				}
			}
		}
	}
}

func TestMergeChecksSchema(t *testing.T) {
	a := mkDataset(3)
	b := mkDataset(4)
	a.Merge(b)
	if a.Len() != 7 {
		t.Fatalf("merged len %d", a.Len())
	}
	c := New([]string{"x"}, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(c)
}

// TestMergeProfileStamps pins the profile algebra: equal profiles survive,
// an empty profile is a wildcard that adopts the stamped side (regression:
// it used to poison the merge to "mixed"), and genuinely different profiles
// still mix.
func TestMergeProfileStamps(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want string
	}{
		{"same", "paper", "paper", "paper"},
		{"left-unstamped-adopts", "", "nvme", "nvme"},
		{"right-unstamped-keeps", "nvme", "", "nvme"},
		{"both-unstamped", "", "", ""},
		{"different-mix", "paper", "nvme", "mixed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := mkDataset(2), mkDataset(2)
			a.Profile, b.Profile = tc.a, tc.b
			a.Merge(b)
			if a.Profile != tc.want {
				t.Fatalf("merge %q+%q stamped %q, want %q", tc.a, tc.b, a.Profile, tc.want)
			}
			if a.Len() != 4 {
				t.Fatalf("merged len %d", a.Len())
			}
		})
	}
}

func TestCopyIsDeep(t *testing.T) {
	d := mkDataset(5)
	c := d.Copy()
	c.Samples[0].Vectors[0][0] = 999
	if d.Samples[0].Vectors[0][0] == 999 {
		t.Fatal("copy shares vector storage")
	}
	if c.Len() != d.Len() {
		t.Fatal("copy lost samples")
	}
}

func TestRebinFromDegradation(t *testing.T) {
	d := New([]string{"x"}, 1, 2)
	for _, deg := range []float64{1, 3, 7} {
		lbl := 0
		if deg >= 2 {
			lbl = 1
		}
		d.Add(&Sample{Degradation: deg, Label: lbl, Vectors: [][]float64{{deg}}})
	}
	three := d.Rebin(3, func(deg float64) int {
		switch {
		case deg < 2:
			return 0
		case deg < 5:
			return 1
		default:
			return 2
		}
	})
	if got := three.ClassCounts(); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("rebin counts %v", got)
	}
	// Original untouched.
	if d.Classes != 2 || d.Samples[0].Label != 0 {
		t.Fatal("rebin mutated original")
	}
}

func TestSelectFeaturesProjects(t *testing.T) {
	d := New([]string{"a", "b", "c"}, 2, 2)
	d.Add(&Sample{Label: 0, Vectors: [][]float64{{1, 2, 3}, {4, 5, 6}}})
	p := d.SelectFeatures([]int{2, 0})
	if len(p.FeatureNames) != 2 || p.FeatureNames[0] != "c" {
		t.Fatalf("names %v", p.FeatureNames)
	}
	v := p.Samples[0].Vectors
	if v[0][0] != 3 || v[0][1] != 1 || v[1][0] != 6 {
		t.Fatalf("projection wrong: %v", v)
	}
	// Original untouched.
	if d.Samples[0].Vectors[0][0] != 1 {
		t.Fatal("projection mutated original")
	}
}

func TestSaveCSVShape(t *testing.T) {
	d := mkDataset(4)
	d.Samples[0].Workload = "with,comma"
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := d.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("lines=%d", len(lines))
	}
	header := strings.Split(lines[0], ",")
	// 5 metadata + 3 targets x 2 features.
	if len(header) != 5+6 {
		t.Fatalf("header cols=%d: %v", len(header), header)
	}
	if !strings.Contains(lines[0], "t2_f1") {
		t.Fatalf("header missing per-target feature names: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"with,comma"`) {
		t.Fatalf("comma not escaped: %s", lines[1])
	}
}
