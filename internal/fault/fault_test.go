package fault

import (
	"strings"
	"testing"

	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

func TestParseKindRoundTrip(t *testing.T) {
	for k := DiskSlow; k <= NetCollapse; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("disk-fast"); err == nil || !strings.Contains(err.Error(), "disk-slow") {
		t.Fatalf("unknown kind error %v should list valid kinds", err)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("disk-slow:ost0:10:5:4")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Kind: DiskSlow, Target: "ost0", Start: 10 * sim.Second,
		Duration: 5 * sim.Second, Severity: 4}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	// String renders back to parseable flag syntax.
	back, err := ParseSpec(spec.String())
	if err != nil || back != spec {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	// Fractional seconds.
	spec, err = ParseSpec("net-collapse:oss1:0.5:1.25:8")
	if err != nil || spec.Start != sim.Seconds(0.5) || spec.Duration != sim.Seconds(1.25) {
		t.Fatalf("fractional: %+v, %v", spec, err)
	}
	// OSTStall's 4-field form: a stall is total, no severity.
	spec, err = ParseSpec("ost-stall:ost1:10:5")
	if err != nil || spec.Kind != OSTStall || spec.Severity != 1 {
		t.Fatalf("4-field stall: %+v, %v", spec, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"too-few-fields", "disk-slow:ost0:10", "kind:target:start:duration"},
		{"too-many-fields", "disk-slow:ost0:10:5:4:9", "kind:target:start:duration"},
		{"unknown-kind", "melt:ost0:10:5:4", "unknown kind"},
		{"bad-start", "disk-slow:ost0:abc:5:4", "bad start"},
		{"bad-duration", "disk-slow:ost0:10:xyz:4", "bad duration"},
		{"bad-severity", "disk-slow:ost0:10:5:huge", "bad severity"},
		{"missing-severity", "disk-slow:ost0:10:5", "needs a severity"},
		{"negative-start", "disk-slow:ost0:-1:5:4", "negative start"},
		{"zero-duration", "disk-slow:ost0:10:0:4", "non-positive duration"},
		{"sub-one-severity", "disk-slow:ost0:10:5:0.5", "severity 0.5 < 1"},
		{"empty-target", "disk-slow::10:5:4", "needs a target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSpec(tc.in); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParseSpec(%q) err = %v, want substring %q", tc.in, err, tc.wantSub)
			}
		})
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("disk-slow:ost0:10:5:4, ost-stall:ost1:2:1")
	if err != nil || len(specs) != 2 {
		t.Fatalf("specs = %+v, %v", specs, err)
	}
	if specs, err := ParseSpecs("  "); err != nil || specs != nil {
		t.Fatalf("empty input: %+v, %v", specs, err)
	}
	if _, err := ParseSpecs("disk-slow:ost0:10:5:4,bogus"); err == nil {
		t.Fatal("bad item accepted")
	}
}

func TestValidateMDSStormDefaultsTarget(t *testing.T) {
	s := Spec{Kind: MDSStorm, Duration: sim.Second, Severity: 2}
	if err := s.Validate(); err != nil {
		t.Fatalf("empty target must be valid for mds-storm: %v", err)
	}
}

// fakes record every hook invocation with its engine timestamp.

type hookCall struct {
	at  sim.Time
	arg float64
}

type fakeDisk struct {
	eng   *sim.Engine
	calls []hookCall
}

func (f *fakeDisk) ScaleSlowdown(factor float64) {
	f.calls = append(f.calls, hookCall{f.eng.Now(), factor})
}

type fakeStaller struct {
	eng   *sim.Engine
	calls []hookCall
}

func (f *fakeStaller) StallUntil(t sim.Time) {
	f.calls = append(f.calls, hookCall{f.eng.Now(), float64(t)})
}

type fakeCache struct {
	eng   *sim.Engine
	calls []hookCall
}

func (f *fakeCache) SetCachePressure(factor float64) {
	f.calls = append(f.calls, hookCall{f.eng.Now(), factor})
}

type fakeCPU struct {
	eng   *sim.Engine
	calls []hookCall
}

func (f *fakeCPU) SetOpCPUFactor(factor float64) {
	f.calls = append(f.calls, hookCall{f.eng.Now(), factor})
}

type fakeNet struct {
	eng   *sim.Engine
	calls []map[string]float64
	times []sim.Time
}

func (f *fakeNet) SetBandwidthScale(node string, scale float64) error {
	f.calls = append(f.calls, map[string]float64{node: scale})
	f.times = append(f.times, f.eng.Now())
	return nil
}

func testEndpoints(eng *sim.Engine) (Endpoints, *fakeDisk, *fakeStaller, *fakeCache, *fakeCPU, *fakeNet) {
	d := &fakeDisk{eng: eng}
	st := &fakeStaller{eng: eng}
	ca := &fakeCache{eng: eng}
	cp := &fakeCPU{eng: eng}
	nw := &fakeNet{eng: eng}
	eps := Endpoints{
		Disks:    map[string]DiskSlower{"ost0": d},
		Stalls:   map[string]Staller{"ost0": st},
		Caches:   map[string]CachePressurer{"ost0": ca},
		CPUs:     map[string]CPUScaler{"mdt": cp},
		Net:      nw,
		NetNodes: map[string]bool{"oss0": true},
	}
	return eps, d, st, ca, cp, nw
}

func TestInjectorSchedulesApplyAndRevert(t *testing.T) {
	eng := sim.NewEngine()
	eps, d, st, ca, cp, nw := testEndpoints(eng)
	inj := NewInjector(eng, eps)
	sink := obs.New()
	inj.Instrument(sink)

	err := inj.Inject([]Spec{
		{Kind: DiskSlow, Target: "ost0", Start: 1 * sim.Second, Duration: 2 * sim.Second, Severity: 4},
		{Kind: OSTStall, Target: "ost0", Start: 2 * sim.Second, Duration: 1 * sim.Second, Severity: 1},
		{Kind: OSTCachePressure, Target: "ost0", Start: 0, Duration: 5 * sim.Second, Severity: 8},
		{Kind: MDSStorm, Target: "", Start: 1 * sim.Second, Duration: 1 * sim.Second, Severity: 3},
		{Kind: NetCollapse, Target: "oss0", Start: 3 * sim.Second, Duration: 1 * sim.Second, Severity: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	// Disk: x4 at t=1s, x1/4 at t=3s.
	if len(d.calls) != 2 || d.calls[0] != (hookCall{1 * sim.Second, 4}) ||
		d.calls[1].at != 3*sim.Second || d.calls[1].arg != 0.25 {
		t.Fatalf("disk calls %+v", d.calls)
	}
	// Stall: one self-reverting call at t=2s freezing until t=3s.
	if len(st.calls) != 1 || st.calls[0] != (hookCall{2 * sim.Second, float64(3 * sim.Second)}) {
		t.Fatalf("stall calls %+v", st.calls)
	}
	// Cache: squeeze /8 at t=0, restore 1 at t=5s.
	if len(ca.calls) != 2 || ca.calls[0] != (hookCall{0, 8}) || ca.calls[1] != (hookCall{5 * sim.Second, 1}) {
		t.Fatalf("cache calls %+v", ca.calls)
	}
	// MDS: x3 at t=1s, back to 1 at t=2s (empty target defaults to mdt).
	if len(cp.calls) != 2 || cp.calls[0] != (hookCall{1 * sim.Second, 3}) || cp.calls[1] != (hookCall{2 * sim.Second, 1}) {
		t.Fatalf("cpu calls %+v", cp.calls)
	}
	// Net: scale 0.1 at t=3s, 1 at t=4s.
	if len(nw.calls) != 2 || nw.calls[0]["oss0"] != 0.1 || nw.calls[1]["oss0"] != 1 ||
		nw.times[0] != 3*sim.Second || nw.times[1] != 4*sim.Second {
		t.Fatalf("net calls %+v at %v", nw.calls, nw.times)
	}

	snap := sink.Snapshot()
	if got := snap.CounterTotal("fault", "injected"); got != 5 {
		t.Fatalf("fault/injected = %d, want 5", got)
	}
}

func TestInjectorRejectsUnknownTargetsBeforeScheduling(t *testing.T) {
	eng := sim.NewEngine()
	eps, d, _, _, _, _ := testEndpoints(eng)
	inj := NewInjector(eng, eps)

	cases := []struct {
		name    string
		spec    Spec
		wantSub string
	}{
		{"disk", Spec{Kind: DiskSlow, Target: "ost9", Duration: sim.Second, Severity: 2}, `disk-slow target "ost9"`},
		{"stall", Spec{Kind: OSTStall, Target: "mdt", Duration: sim.Second, Severity: 1}, `ost-stall target "mdt"`},
		{"cache", Spec{Kind: OSTCachePressure, Target: "nope", Duration: sim.Second, Severity: 2}, `ost-cache target "nope"`},
		{"cpu", Spec{Kind: MDSStorm, Target: "ost0", Duration: sim.Second, Severity: 2}, `mds-storm target "ost0"`},
		{"net", Spec{Kind: NetCollapse, Target: "c9", Duration: sim.Second, Severity: 2}, `net-collapse target "c9"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A valid first spec must not be scheduled when a later one fails.
			err := inj.Inject([]Spec{
				{Kind: DiskSlow, Target: "ost0", Start: 0, Duration: sim.Second, Severity: 2},
				tc.spec,
			})
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
	eng.Run()
	if len(d.calls) != 0 {
		t.Fatalf("rejected batches still scheduled the valid spec: %+v", d.calls)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events left scheduled after rejected injections", eng.Pending())
	}
}

func TestInjectorWorksUninstrumented(t *testing.T) {
	eng := sim.NewEngine()
	eps, d, _, _, _, _ := testEndpoints(eng)
	inj := NewInjector(eng, eps) // no Instrument: obs handles stay nil
	err := inj.Inject([]Spec{
		{Kind: DiskSlow, Target: "ost0", Start: 0, Duration: sim.Second, Severity: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(d.calls) != 2 {
		t.Fatalf("uninstrumented injector made %d hook calls, want 2", len(d.calls))
	}
}
