// Integration tests exercising fault injection through the full stack: the
// core scenario runner, the lustre client retry path, and the shared
// observability sink. Lives in an external test package so it can import
// core (which imports fault) without a cycle.
package fault_test

import (
	"errors"
	"reflect"
	"testing"

	"quanterference/internal/core"
	"quanterference/internal/fault"
	"quanterference/internal/lustre"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

func faultedScenario(seed int64) core.Scenario {
	return core.Scenario{
		Target: core.TargetSpec{
			Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/tgt", Ranks: 2, EasyFileBytes: 64 << 20}),
			Nodes: []string{"c0"},
			Ranks: 2,
		},
		FSConfig: lustre.Config{
			Seed:       seed,
			RPCTimeout: 250 * sim.Millisecond,
		},
		Faults: []fault.Spec{
			{Kind: fault.DiskSlow, Target: "ost0", Start: sim.Second, Duration: 3 * sim.Second, Severity: 6},
			{Kind: fault.OSTStall, Target: "ost1", Start: 2 * sim.Second, Duration: 2 * sim.Second, Severity: 1},
			{Kind: fault.OSTCachePressure, Target: "ost2", Start: 0, Duration: 4 * sim.Second, Severity: 16},
			{Kind: fault.MDSStorm, Target: "mdt", Start: 0, Duration: 2 * sim.Second, Severity: 5},
			{Kind: fault.NetCollapse, Target: "oss0", Start: sim.Second, Duration: 2 * sim.Second, Severity: 20},
		},
	}
}

// TestFaultedRunDeterminism encodes the package's core contract: faults are
// part of the experiment definition, so two runs of the same seeded scenario
// — retries, backoff jitter, and all — are byte-identical.
func TestFaultedRunDeterminism(t *testing.T) {
	a, err := core.RunE(faultedScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.RunE(faultedScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Finished != b.Finished {
		t.Fatalf("runs diverged: %v/%v vs %v/%v", a.Duration, a.Finished, b.Duration, b.Finished)
	}
	if len(a.Records) == 0 {
		t.Fatal("faulted run produced no records")
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("same seed and fault specs produced different record streams")
	}
	if got := a.Stats.CounterTotal("fault", "injected"); got != 5 {
		t.Fatalf("fault/injected = %d, want 5", got)
	}
}

// TestFaultsActuallyDegrade guards against the injector silently becoming a
// no-op: the faulted run must be slower than the identical healthy run.
func TestFaultsActuallyDegrade(t *testing.T) {
	healthy := faultedScenario(42)
	healthy.Faults = nil
	healthy.FSConfig.RPCTimeout = 0
	h, err := core.RunE(healthy)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.RunE(faultedScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Finished || !f.Finished {
		t.Fatalf("finished: healthy=%v faulted=%v", h.Finished, f.Finished)
	}
	if f.Duration <= h.Duration {
		t.Fatalf("faults did not slow the run: healthy %v, faulted %v", h.Duration, f.Duration)
	}
}

// TestClientRetriesUnderFaults drives the degraded-mode client path: with a
// tight RPC timeout and a hard disk slowdown, clients must time out, back
// off, resend, and still finish — with the retry counters visible in obs.
func TestClientRetriesUnderFaults(t *testing.T) {
	s := faultedScenario(7)
	s.FSConfig.RPCTimeout = 50 * sim.Millisecond
	s.Faults = []fault.Spec{
		{Kind: fault.DiskSlow, Target: "ost0", Start: 0, Duration: 30 * sim.Second, Severity: 40},
		{Kind: fault.DiskSlow, Target: "ost1", Start: 0, Duration: 30 * sim.Second, Severity: 40},
	}
	res, err := core.RunE(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("run wedged: the final RPC attempt must ride to completion without a timeout")
	}
	timeouts := res.Stats.CounterTotal("client", "timeouts")
	retries := res.Stats.CounterTotal("client", "retries")
	degraded := res.Stats.CounterTotal("client", "degraded_ops")
	if timeouts == 0 || retries == 0 {
		t.Fatalf("no degraded-mode activity: timeouts=%d retries=%d", timeouts, retries)
	}
	if retries > timeouts {
		t.Fatalf("retries=%d > timeouts=%d: every resend needs a preceding timeout", retries, timeouts)
	}
	if degraded == 0 {
		t.Fatalf("degraded_ops=0 despite %d retries", retries)
	}
}

// TestCollectSkipsFaultedVariant is the acceptance scenario for graceful
// degradation: one variant's cluster is so degraded its target cannot finish
// within MaxTime, yet CollectDatasetE completes, reporting the skip.
func TestCollectSkipsFaultedVariant(t *testing.T) {
	base := core.Scenario{
		Target: core.TargetSpec{
			Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/tgt", Ranks: 2, EasyFileBytes: 64 << 20}),
			Nodes: []string{"c0"},
			Ranks: 2,
		},
		MaxTime: 20 * sim.Second,
	}
	interferes := func(dir string) []core.InterferenceSpec {
		return []core.InterferenceSpec{{
			Gen:   io500.New(io500.IorEasyRead, io500.Params{Dir: dir, Ranks: 2, EasyFileBytes: 16 << 20}),
			Nodes: []string{"c1"},
			Ranks: 2,
		}}
	}
	variants := []core.Variant{
		{Name: "healthy", Interference: interferes("/bg0")},
		{Name: "doomed", Interference: []core.InterferenceSpec{{
			// Invalid spec: fails validation inside the variant's RunE.
			Gen: nil, Nodes: []string{"c1"}, Ranks: 1,
		}}},
		{Name: "also-healthy", Interference: interferes("/bg1")},
	}
	var report core.CollectReport
	ds, err := core.CollectDatasetE(base, variants, core.CollectorConfig{},
		core.WithCollectReport(&report))
	if err != nil {
		t.Fatalf("collection aborted instead of skipping the doomed variant: %v", err)
	}
	if ds.Len() == 0 {
		t.Fatal("no samples from the healthy variants")
	}
	if report.Variants != 3 || report.Completed != 2 || len(report.Skipped) != 1 {
		t.Fatalf("report = %+v, want 2/3 completed with 1 skip", report)
	}
	sk := report.Skipped[0]
	if sk.Index != 1 || sk.Name != "doomed" {
		t.Fatalf("skipped = %+v, want the doomed variant at index 1", sk)
	}
	if !errors.Is(sk.Err, core.ErrInvalidScenario) {
		t.Fatalf("skip error = %v, want ErrInvalidScenario", sk.Err)
	}
	if report.VariantSamples != ds.Len() {
		t.Fatalf("report counts %d variant samples, dataset has %d", report.VariantSamples, ds.Len())
	}
}

// TestAllVariantsFailed: when every variant fails the collection must say so
// rather than return an interference-free dataset.
func TestAllVariantsFailed(t *testing.T) {
	base := core.Scenario{
		Target: core.TargetSpec{
			Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/tgt", Ranks: 1, EasyFileBytes: 16 << 20}),
			Nodes: []string{"c0"},
			Ranks: 1,
		},
	}
	bad := core.Variant{Interference: []core.InterferenceSpec{{Gen: nil}}}
	var report core.CollectReport
	ds, err := core.CollectDatasetE(base, []core.Variant{bad, bad}, core.CollectorConfig{},
		core.WithCollectReport(&report))
	if ds != nil || !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("CollectDatasetE = %v, %v; want nil, ErrAllVariantsFailed", ds, err)
	}
	if report.Completed != 0 || len(report.Skipped) != 2 {
		t.Fatalf("report = %+v", report)
	}
}

// TestSharedSinkUnderFaultedParallelRuns runs faulted variant collections on
// one shared sink; under -race this verifies the sink and the injector's
// counters stay race-free across the par.MapE fan-out.
func TestSharedSinkUnderFaultedParallelRuns(t *testing.T) {
	base := faultedScenario(3)
	base.MaxTime = 60 * sim.Second
	interferes := func(dir string) []core.InterferenceSpec {
		return []core.InterferenceSpec{{
			Gen:   io500.New(io500.IorEasyRead, io500.Params{Dir: dir, Ranks: 2, EasyFileBytes: 16 << 20}),
			Nodes: []string{"c1", "c2"},
			Ranks: 2,
		}}
	}
	variants := []core.Variant{
		{Name: "v0", Interference: interferes("/bg0")},
		{Name: "v1", Interference: interferes("/bg1")},
		{Name: "v2", Interference: interferes("/bg2")},
		{Name: "v3", Interference: interferes("/bg3")},
	}
	sink := obs.New()
	var report core.CollectReport
	_, err := core.CollectDatasetE(base, variants, core.CollectorConfig{},
		core.WithSink(sink), core.WithCollectReport(&report))
	if err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	// The baseline run and every completed variant run each injected the
	// scenario's full episode list.
	want := uint64((1 + report.Completed) * len(base.Faults))
	if got := snap.CounterTotal("fault", "injected"); got != want {
		t.Fatalf("fault/injected = %d across runs, want %d (%d completed variants)",
			got, want, report.Completed)
	}
}
