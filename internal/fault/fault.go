// Package fault is the deterministic, seed-free fault-injection subsystem:
// a declarative Spec describes one degraded-mode episode (which component,
// when, for how long, how severe), and the Injector schedules the apply and
// revert events on the simulation engine. Because episodes are ordinary
// engine events, two runs of the same scenario produce byte-identical
// results — faults are part of the experiment definition, not noise.
//
// The episode kinds map one-to-one onto the degraded regimes the paper's
// risk-metric lineage (LASSi, Lu et al.'s fail-slow taxonomy) observes on
// production Lustre systems:
//
//   - DiskSlow: a fail-slow device serving every request N times slower
//     (media errors, remapped sectors, a dying actuator);
//   - OSTStall: a brown-out window in which the OST's block layer stops
//     dispatching entirely (RAID rebuild, controller cache flush, firmware
//     hiccup) while requests pile up in the queue;
//   - OSTCachePressure: a write-back cache squeeze — the dirty-data limit
//     shrinks by a factor, so writers hit throttling far earlier;
//   - MDSStorm: a metadata latency storm multiplying per-op CPU cost
//     (lock-contention storms, dcache shrinking);
//   - NetCollapse: a transient bandwidth collapse on one node's NIC
//     (link renegotiation, a flapping switch port).
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"quanterference/internal/sim"
)

// Kind enumerates fault classes.
type Kind int

const (
	// DiskSlow multiplies one target disk's service time by Severity.
	DiskSlow Kind = iota
	// OSTStall freezes one OST's block-layer dispatch for the window.
	OSTStall
	// OSTCachePressure divides one OST's write-back dirty limit by Severity.
	OSTCachePressure
	// MDSStorm multiplies the MDS's per-op CPU cost by Severity.
	MDSStorm
	// NetCollapse divides one node's NIC bandwidth by Severity.
	NetCollapse
)

var kindNames = [...]string{
	"disk-slow", "ost-stall", "ost-cache", "mds-storm", "net-collapse",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind resolves a kind name ("disk-slow", "ost-stall", "ost-cache",
// "mds-storm", "net-collapse").
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want one of %s)",
		s, strings.Join(kindNames[:], ", "))
}

// Spec declares one fault episode. The zero Spec is invalid; every episode
// names its target explicitly so a scenario reads as a complete experiment
// description.
type Spec struct {
	Kind Kind
	// Target selects the component instance: a storage-target name
	// ("ost0".."ostN", "mdt") for DiskSlow/OSTStall/OSTCachePressure/
	// MDSStorm, or a network node name ("oss1", "mds", "c3") for
	// NetCollapse. OSTStall and OSTCachePressure accept OST names only;
	// MDSStorm accepts only "mdt" (the default when empty).
	Target string
	// Start is when the episode begins (simulated time, >= 0).
	Start sim.Time
	// Duration is how long the degraded window lasts (> 0).
	Duration sim.Time
	// Severity is the degradation factor, >= 1: the disk service-time
	// multiplier, the write-back-limit divisor, the MDS CPU multiplier, or
	// the bandwidth divisor. OSTStall ignores it (a stall is total).
	Severity float64
}

// Validate checks the spec's self-consistency (target existence is checked
// at injection time, against the actual cluster).
func (s Spec) Validate() error {
	if s.Kind < 0 || int(s.Kind) >= len(kindNames) {
		return fmt.Errorf("fault: unknown kind %d", int(s.Kind))
	}
	if s.Target == "" && s.Kind != MDSStorm {
		return fmt.Errorf("fault: %s episode needs a target", s.Kind)
	}
	if s.Start < 0 {
		return fmt.Errorf("fault: %s(%s) has negative start %d", s.Kind, s.Target, s.Start)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("fault: %s(%s) has non-positive duration %d", s.Kind, s.Target, s.Duration)
	}
	if s.Severity < 1 && s.Kind != OSTStall {
		return fmt.Errorf("fault: %s(%s) severity %g < 1 (1 = healthy)", s.Kind, s.Target, s.Severity)
	}
	return nil
}

// String renders the spec in the flag syntax ParseSpec accepts.
func (s Spec) String() string {
	return fmt.Sprintf("%s:%s:%g:%g:%g", s.Kind, s.Target,
		sim.ToSeconds(s.Start), sim.ToSeconds(s.Duration), s.Severity)
}

// ParseSpec parses "kind:target:start:duration:severity" with start and
// duration in (possibly fractional) seconds, e.g. "disk-slow:ost0:10:5:4" —
// OST 0's disk serves everything 4x slower from t=10 s to t=15 s. OSTStall
// accepts a 4-field form without severity ("ost-stall:ost1:10:5").
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) < 4 || len(parts) > 5 {
		return Spec{}, fmt.Errorf("fault: spec %q: want kind:target:start:duration[:severity]", s)
	}
	kind, err := ParseKind(parts[0])
	if err != nil {
		return Spec{}, err
	}
	num := func(field, v string) (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("fault: spec %q: bad %s %q", s, field, v)
		}
		return f, nil
	}
	start, err := num("start", parts[2])
	if err != nil {
		return Spec{}, err
	}
	dur, err := num("duration", parts[3])
	if err != nil {
		return Spec{}, err
	}
	sev := 1.0
	if len(parts) == 5 {
		if sev, err = num("severity", parts[4]); err != nil {
			return Spec{}, err
		}
	} else if kind != OSTStall {
		return Spec{}, fmt.Errorf("fault: spec %q: %s needs a severity", s, kind)
	}
	spec := Spec{
		Kind:     kind,
		Target:   parts[1],
		Start:    sim.Seconds(start),
		Duration: sim.Seconds(dur),
		Severity: sev,
	}
	return spec, spec.Validate()
}

// ParseSpecs parses a comma-separated spec list (empty input gives nil).
func ParseSpecs(s string) ([]Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Spec
	for _, item := range strings.Split(s, ",") {
		spec, err := ParseSpec(item)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}
