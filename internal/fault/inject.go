package fault

import (
	"fmt"
	"sort"

	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// The per-kind degradation hooks each simulator layer implements. The
// injector depends only on these, so fault stays below lustre/netsim in the
// import graph and new layers opt in by implementing the matching method.

// DiskSlower is a device whose service time can be scaled multiplicatively
// (internal/disk). Overlapping episodes stack; reverting scales by the
// reciprocal.
type DiskSlower interface {
	ScaleSlowdown(factor float64)
}

// Staller is a component whose request dispatch can be frozen until a
// simulated time (an OST's block queue).
type Staller interface {
	StallUntil(t sim.Time)
}

// CachePressurer is a component whose write-back cache limit can be squeezed
// by a divisor (an OST). Factor 1 restores the configured limit.
type CachePressurer interface {
	SetCachePressure(factor float64)
}

// CPUScaler is a component whose per-op CPU cost can be multiplied (the
// MDS). Factor 1 restores nominal cost.
type CPUScaler interface {
	SetOpCPUFactor(factor float64)
}

// BandwidthScaler is a fabric whose per-node NIC capacity can be scaled
// (internal/netsim). Scale 1 restores full bandwidth. A scale outside
// (0, 1] or an unknown node returns an error and leaves the fabric
// untouched; the injector validates both at Inject time, so the scheduled
// apply/revert calls cannot fail on a fabric with stable node membership.
type BandwidthScaler interface {
	SetBandwidthScale(node string, scale float64) error
}

// Endpoints names every degradable component instance of one cluster. The
// core layer fills it from the assembled file system and network.
type Endpoints struct {
	// Disks maps storage-target names ("ost0".."ostN", "mdt") to devices.
	Disks map[string]DiskSlower
	// Stalls maps OST names to their stallable block layers.
	Stalls map[string]Staller
	// Caches maps OST names to their write-back caches.
	Caches map[string]CachePressurer
	// CPUs maps "mdt" to the metadata server.
	CPUs map[string]CPUScaler
	// Net scales node NIC bandwidth; NetNodes lists valid node names.
	Net      BandwidthScaler
	NetNodes map[string]bool
}

// Injector schedules fault episodes on one engine. Create one per cluster.
type Injector struct {
	eng *sim.Engine
	eps Endpoints

	active int

	// Observability handles; nil unless Instrument attached a sink.
	sink      *obs.Sink
	cInjected *obs.Counter
	gActive   *obs.Gauge
}

// NewInjector binds an injector to a cluster's engine and endpoints.
func NewInjector(eng *sim.Engine, eps Endpoints) *Injector {
	return &Injector{eng: eng, eps: eps}
}

// Instrument registers fault metrics on the sink: episodes injected
// (fault/injected) and the peak number of concurrently active episodes.
// Each episode also becomes a trace span on the "fault" track, so degraded
// windows are visible next to the traffic they perturb.
func (in *Injector) Instrument(s *obs.Sink) {
	in.sink = s
	in.cInjected = s.Counter("fault", "", "injected")
	in.gActive = s.Gauge("fault", "", "max_active")
}

// Inject validates every spec against the endpoints and schedules all apply
// and revert events. It must be called before the run starts (episodes with
// Start in the past are a scheduling error). Returns the first resolution
// error without scheduling anything.
func (in *Injector) Inject(specs []Spec) error {
	type episode struct {
		spec   Spec
		apply  func()
		revert func() // nil when the apply is self-reverting (OSTStall)
	}
	episodes := make([]episode, 0, len(specs))
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
		ep := episode{spec: spec}
		switch spec.Kind {
		case DiskSlow:
			d, ok := in.eps.Disks[spec.Target]
			if !ok || d == nil {
				return fmt.Errorf("fault %d: disk-slow target %q: %s", i, spec.Target, known(in.eps.Disks))
			}
			sev := spec.Severity
			ep.apply = func() { d.ScaleSlowdown(sev) }
			ep.revert = func() { d.ScaleSlowdown(1 / sev) }
		case OSTStall:
			st, ok := in.eps.Stalls[spec.Target]
			if !ok || st == nil {
				return fmt.Errorf("fault %d: ost-stall target %q: %s", i, spec.Target, known(in.eps.Stalls))
			}
			until := spec.Start + spec.Duration
			ep.apply = func() { st.StallUntil(until) }
		case OSTCachePressure:
			cp, ok := in.eps.Caches[spec.Target]
			if !ok || cp == nil {
				return fmt.Errorf("fault %d: ost-cache target %q: %s", i, spec.Target, known(in.eps.Caches))
			}
			sev := spec.Severity
			ep.apply = func() { cp.SetCachePressure(sev) }
			ep.revert = func() { cp.SetCachePressure(1) }
		case MDSStorm:
			target := spec.Target
			if target == "" {
				target = "mdt"
			}
			cs, ok := in.eps.CPUs[target]
			if !ok || cs == nil {
				return fmt.Errorf("fault %d: mds-storm target %q: %s", i, target, known(in.eps.CPUs))
			}
			sev := spec.Severity
			ep.apply = func() { cs.SetOpCPUFactor(sev) }
			ep.revert = func() { cs.SetOpCPUFactor(1) }
		case NetCollapse:
			if in.eps.Net == nil || !in.eps.NetNodes[spec.Target] {
				return fmt.Errorf("fault %d: net-collapse target %q: %s", i, spec.Target, known(in.eps.NetNodes))
			}
			node, sev := spec.Target, spec.Severity
			if scale := 1 / sev; scale <= 0 || scale > 1 {
				return fmt.Errorf("fault %d: net-collapse severity %g yields bandwidth scale %g outside (0, 1]",
					i, sev, scale)
			}
			// Both calls are pre-validated above (scale in range, node known),
			// so the error return is structurally impossible here.
			ep.apply = func() { _ = in.eps.Net.SetBandwidthScale(node, 1/sev) }
			ep.revert = func() { _ = in.eps.Net.SetBandwidthScale(node, 1) }
		}
		episodes = append(episodes, ep)
	}
	for _, ep := range episodes {
		ep := ep
		in.eng.At(ep.spec.Start, func() {
			in.active++
			in.gActive.Max(float64(in.active))
			in.cInjected.Inc()
			in.sink.Span("fault", ep.spec.Target, ep.spec.Kind.String(),
				ep.spec.Start, ep.spec.Duration)
			ep.apply()
		})
		end := ep.spec.Start + ep.spec.Duration
		revert := ep.revert
		in.eng.At(end, func() {
			in.active--
			if revert != nil {
				revert()
			}
		})
	}
	return nil
}

// known renders the valid target set for error messages.
func known[V any](m map[string]V) string {
	if len(m) == 0 {
		return "no targets of this kind exist"
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return "want one of " + joinMax(names, 10)
}

func joinMax(names []string, max int) string {
	if len(names) <= max {
		return fmt.Sprintf("%v", names)
	}
	return fmt.Sprintf("%v…", names[:max])
}
