package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"quanterference/internal/fault"
	"quanterference/internal/label"
	"quanterference/internal/lustre"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// TestRunEInvalidScenario walks every rejection branch of validate() plus
// the injection-time fault target check, asserting both the sentinel and a
// distinctive fragment of the message — each branch must stay diagnosable.
func TestRunEInvalidScenario(t *testing.T) {
	cases := []struct {
		name    string
		s       Scenario
		want    error
		wantSub string
	}{
		{"empty", Scenario{}, ErrInvalidScenario, "target needs Gen"},
		{"no-ranks", Scenario{Target: TargetSpec{
			Gen: smallTarget().Gen, Nodes: []string{"c0"}}}, ErrInvalidScenario, "Ranks > 0"},
		{"unknown-node", Scenario{Target: TargetSpec{
			Gen: smallTarget().Gen, Nodes: []string{"nope"}, Ranks: 1}},
			ErrInvalidScenario, "not a topology client"},
		{"window-not-second-aligned", func() Scenario {
			s := Scenario{Target: smallTarget()}
			s.WindowSize = sim.Millisecond
			return s
		}(), ErrInvalidScenario, "whole multiple of one second"},
		{"negative-window", func() Scenario {
			s := Scenario{Target: smallTarget()}
			s.WindowSize = -sim.Second
			return s
		}(), ErrInvalidScenario, "non-positive window size"},
		{"negative-maxtime", Scenario{Target: smallTarget(), MaxTime: -1},
			ErrInvalidScenario, "non-positive MaxTime"},
		{"negative-skew", Scenario{Target: smallTarget(), OSTSkew: -2},
			ErrInvalidScenario, "negative OSTSkew"},
		{"bad-interference", Scenario{Target: smallTarget(),
			Interference: []InterferenceSpec{{}}}, ErrInvalidScenario, "interference 0 needs"},
		{"interference-negative-start", Scenario{Target: smallTarget(),
			Interference: []InterferenceSpec{{
				Gen: smallTarget().Gen, Nodes: []string{"c1"}, Ranks: 1, StartAt: -sim.Second,
			}}}, ErrInvalidScenario, "negative StartAt"},
		{"interference-unknown-node", Scenario{Target: smallTarget(),
			Interference: []InterferenceSpec{{
				Gen: smallTarget().Gen, Nodes: []string{"ghost"}, Ranks: 1,
			}}}, ErrInvalidScenario, "not a topology client"},
		{"bad-topology", Scenario{
			Topology: lustre.Topology{MDSNode: "m", Clients: []string{"c0"}},
			Target:   smallTarget()}, ErrInvalidTopology, "needs MDSNode, OSS, and Clients"},
		{"bad-oss", Scenario{
			Topology: lustre.Topology{MDSNode: "m", OSS: []lustre.OSSSpec{{Node: "oss0"}},
				Clients: []string{"c0"}},
			Target: TargetSpec{Gen: smallTarget().Gen, Nodes: []string{"c0"}, Ranks: 1}},
			ErrInvalidTopology, "OSTs > 0"},
		{"bad-fault-spec", Scenario{Target: smallTarget(),
			Faults: []fault.Spec{{Kind: fault.DiskSlow, Duration: sim.Second, Severity: 2}}},
			ErrInvalidScenario, "fault 0"},
		{"fault-unknown-target", Scenario{Target: smallTarget(),
			Faults: []fault.Spec{{Kind: fault.DiskSlow, Target: "ost99",
				Duration: sim.Second, Severity: 2}}},
			ErrInvalidScenario, `disk-slow target "ost99"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunE(tc.s)
			if res != nil || !errors.Is(err, tc.want) {
				t.Fatalf("RunE = %v, %v; want nil, %v", res, err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

// TestRunEStatsAlwaysPopulated covers the acceptance criterion that every
// run reports observability stats, with or without an explicit sink.
func TestRunEStatsAlwaysPopulated(t *testing.T) {
	res, err := RunE(Scenario{Target: smallTarget()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Empty() {
		t.Fatal("RunResult.Stats empty without WithSink")
	}
	// Every instrumented layer must have produced activity for a data write.
	for _, c := range []struct {
		component, name string
	}{
		{"engine", "events_executed"},
		{"disk", "requests"},
		{"blockqueue", "submits"},
		{"netsim", "flows"},
		{"ost", "writes_admitted"},
		{"mds", "journal_ops"},
	} {
		if v := res.Stats.CounterTotal(c.component, c.name); v == 0 {
			t.Errorf("%s/%s = 0, want > 0", c.component, c.name)
		}
	}
	// A pure write workload triggers no readahead, but the client metrics
	// must still be registered.
	if _, ok := res.Stats.Counter("client", "c0", "ra_misses"); !ok {
		t.Error("client/c0/ra_misses not registered")
	}
	if len(res.Stats.Histograms) == 0 {
		t.Error("no histograms in stats")
	}
}

func TestRunEWithSinkAggregates(t *testing.T) {
	sink := obs.New()
	first, err := RunE(Scenario{Target: smallTarget()}, WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunE(Scenario{Target: smallTarget()}, WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	a := first.Stats.CounterTotal("engine", "events_executed")
	b := second.Stats.CounterTotal("engine", "events_executed")
	// Identical deterministic runs on one shared sink: the second snapshot
	// holds both runs' events.
	if b != 2*a {
		t.Fatalf("shared sink: second snapshot %d events, first %d (want exactly double)", b, a)
	}
}

// TestTraceCoversAllLayers encodes the acceptance criterion that a traced
// run exports Chrome trace events from the disk, blockqueue, netsim, and
// lustre (ost + mds) layers.
func TestTraceCoversAllLayers(t *testing.T) {
	sink := obs.New()
	sink.EnableTrace(0)
	if _, err := RunE(Scenario{Target: smallTarget()}, WithSink(sink)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	cats := map[string]int{}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			cats[ev.Cat]++
		}
	}
	for _, want := range []string{"disk", "blockqueue", "netsim", "ost", "mds"} {
		if cats[want] == 0 {
			t.Errorf("no %q trace events; got %v", want, cats)
		}
	}
}

func TestCollectDatasetEBaselineUnfinished(t *testing.T) {
	big := TargetSpec{
		Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/big", Ranks: 2, EasyFileBytes: 1 << 30}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}
	ds, err := CollectDatasetE(Scenario{Target: big, MaxTime: 3 * sim.Second}, nil, CollectorConfig{})
	if ds != nil || !errors.Is(err, ErrBaselineUnfinished) {
		t.Fatalf("CollectDatasetE = %v, %v; want nil, ErrBaselineUnfinished", ds, err)
	}
	if !strings.Contains(err.Error(), "MaxTime") {
		t.Errorf("error %q does not mention MaxTime", err)
	}
}

func TestCollectDatasetEInvalidScenario(t *testing.T) {
	ds, err := CollectDatasetE(Scenario{}, nil, CollectorConfig{})
	if ds != nil || !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("CollectDatasetE = %v, %v; want ErrInvalidScenario", ds, err)
	}
}

func TestCollectDatasetEOptions(t *testing.T) {
	base := Scenario{Target: smallTarget()}
	variants := []Variant{{Interference: []InterferenceSpec{readInterference("/bgo", 6)}}}
	ds, err := CollectDatasetE(base, variants, CollectorConfig{},
		WithBins(label.SeverityBins()), WithBaselineSamples(true), WithMinOpsPerWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 3 {
		t.Fatalf("WithBins(SeverityBins) gave %d classes, want 3", ds.Classes)
	}
	sawBaseline := false
	for _, s := range ds.Samples {
		if s.Run == "baseline" {
			sawBaseline = true
		}
	}
	if !sawBaseline {
		t.Fatal("WithBaselineSamples(true) produced no baseline samples")
	}
}

func TestTrainFrameworkEErrors(t *testing.T) {
	if _, _, err := TrainFrameworkE(nil, FrameworkConfig{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("nil dataset: err = %v, want ErrEmptyDataset", err)
	}
	base := Scenario{Target: smallTarget()}
	ds, err := CollectDatasetE(base, []Variant{
		{Interference: readInstances(2, 6)},
	}, CollectorConfig{IncludeBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TrainFrameworkE(ds, FrameworkConfig{TestFrac: 1.5}); err == nil {
		t.Fatal("TestFrac 1.5 accepted")
	}
	fw, cm, err := TrainFrameworkE(ds, FrameworkConfig{Seed: 3, Train: TrainConfigQuick()})
	if err != nil || fw == nil || cm == nil {
		t.Fatalf("valid training failed: %v", err)
	}
}

func TestLoadFrameworkRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name, content, wantSub string
	}{
		{"garbage.json", "not json at all", ""},
		{"unrelated.json", `{"weights": [1, 2, 3]}`, "format"},
		{"future.json", `{"format": "quanterference.framework", "version": 99}`, "version 99"},
		{"preversion.json", `{"format": "quanterference.framework", "model": {}}`, "version 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadFramework(write(tc.name, tc.content))
			if !errors.Is(err, ErrBadFrameworkFile) {
				t.Fatalf("err = %v, want ErrBadFrameworkFile", err)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
	if _, err := LoadFramework(dir + "/missing.json"); errors.Is(err, ErrBadFrameworkFile) {
		t.Error("missing file should surface the os error, not ErrBadFrameworkFile")
	}
}

func TestSavedFrameworkCarriesVersionHeader(t *testing.T) {
	base := Scenario{Target: smallTarget()}
	ds, err := CollectDatasetE(base, []Variant{
		{Interference: readInstances(2, 6)},
	}, CollectorConfig{IncludeBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	fw, _, err := TrainFrameworkE(ds, FrameworkConfig{Seed: 3, Train: TrainConfigQuick()})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/fw.json"
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var head struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		t.Fatal(err)
	}
	if head.Format != FrameworkFormat || head.Version != FrameworkFormatVersion {
		t.Fatalf("header = %q v%d, want %q v%d",
			head.Format, head.Version, FrameworkFormat, FrameworkFormatVersion)
	}
	if _, err := LoadFramework(path); err != nil {
		t.Fatalf("round-trip load: %v", err)
	}
}
