package core

import (
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/lustre"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

// Run, CollectDataset, and TrainFramework are panic-on-error shims for test
// brevity: every scenario below is valid by construction, so an error is a
// test bug and a panic points straight at it.
func Run(s Scenario, opts ...Option) *RunResult {
	res, err := RunE(s, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

func CollectDataset(base Scenario, variants []Variant, cfg CollectorConfig) *dataset.Dataset {
	ds, err := CollectDatasetE(base, variants, cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

func TrainFramework(ds *dataset.Dataset, cfg FrameworkConfig) (*Framework, *ml.Confusion) {
	fw, cm, err := TrainFrameworkE(ds, cfg)
	if err != nil {
		panic(err)
	}
	return fw, cm
}

// smallTarget is a quick ior-easy-write target spec. It writes well past
// the per-OST write-back limit so the disks, not the caches, set its pace.
func smallTarget() TargetSpec {
	return TargetSpec{
		Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/tgt", Ranks: 2, EasyFileBytes: 64 << 20}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}
}

func readInterference(dir string, ranks int) InterferenceSpec {
	return InterferenceSpec{
		Gen:   io500.New(io500.IorEasyRead, io500.Params{Dir: dir, Ranks: ranks, EasyFileBytes: 16 << 20}),
		Nodes: []string{"c1", "c2"},
		Ranks: ranks,
	}
}

// readInstances mimics the paper's setup of several concurrent interference
// instances: n instances of ior-easy-read with enough ranks to cover every
// OST.
func readInstances(n, ranksEach int) []InterferenceSpec {
	var out []InterferenceSpec
	for i := 0; i < n; i++ {
		out = append(out, InterferenceSpec{
			Gen: io500.New(io500.IorEasyRead, io500.Params{
				Dir: "/bginst" + string(rune('0'+i)), Ranks: ranksEach, EasyFileBytes: 16 << 20}),
			Nodes: []string{"c1", "c2", "c3", "c4"},
			Ranks: ranksEach,
		})
	}
	return out
}

func TestRunBaselineFinishes(t *testing.T) {
	res := Run(Scenario{Target: smallTarget()})
	if !res.Finished {
		t.Fatal("baseline did not finish")
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	if len(res.Windows) == 0 {
		t.Fatal("no windows")
	}
	for idx, mat := range res.Windows {
		if len(mat) != res.NTargets {
			t.Fatalf("window %d has %d targets", idx, len(mat))
		}
	}
}

func TestInterferenceSlowsTarget(t *testing.T) {
	base := Run(Scenario{Target: smallTarget()})
	contended := Run(Scenario{
		Target:       smallTarget(),
		Interference: readInstances(3, 6),
	})
	if !contended.Finished {
		t.Fatal("contended run did not finish")
	}
	slow := float64(contended.Duration) / float64(base.Duration)
	t.Logf("write target slowdown under 3 read instances: %.2fx", slow)
	if slow < 1.5 {
		t.Fatalf("interference too weak: base=%v contended=%v",
			sim.ToSeconds(base.Duration), sim.ToSeconds(contended.Duration))
	}
}

func TestRunRespectsMaxTime(t *testing.T) {
	big := TargetSpec{
		Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/big", Ranks: 2, EasyFileBytes: 1 << 30}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}
	res := Run(Scenario{Target: big, MaxTime: 3 * sim.Second})
	if res.Finished {
		t.Fatal("1 GiB x2 cannot finish in 3 s")
	}
	if res.Duration < 3*sim.Second || res.Duration > 5*sim.Second {
		t.Fatalf("duration %v", sim.ToSeconds(res.Duration))
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Scenario{Target: smallTarget(), Interference: []InterferenceSpec{readInterference("/bg", 2)}})
	b := Run(Scenario{Target: smallTarget(), Interference: []InterferenceSpec{readInterference("/bg", 2)}})
	if a.Duration != b.Duration || len(a.Records) != len(b.Records) {
		t.Fatalf("replay diverged: %v/%d vs %v/%d",
			a.Duration, len(a.Records), b.Duration, len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].End != b.Records[i].End {
			t.Fatalf("record %d diverged", i)
		}
	}
}

func TestCollectDatasetShapesAndLabels(t *testing.T) {
	base := Scenario{Target: smallTarget()}
	variants := []Variant{
		{Name: "none-light", Interference: []InterferenceSpec{readInterference("/bgA", 1)}},
		{Name: "read-heavy", Interference: []InterferenceSpec{readInterference("/bgB", 6)}},
	}
	ds := CollectDataset(base, variants, CollectorConfig{IncludeBaseline: true})
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	if ds.Classes != 2 || ds.NTargets != 7 {
		t.Fatalf("schema %d classes %d targets", ds.Classes, ds.NTargets)
	}
	if len(ds.FeatureNames) != window.NumFeatures {
		t.Fatalf("features=%d", len(ds.FeatureNames))
	}
	// Baseline windows must be label 0 with degradation ~1.
	saw0, saw1 := false, false
	for _, s := range ds.Samples {
		if s.Run == "baseline" {
			if s.Label != 0 || s.Degradation < 0.99 || s.Degradation > 1.01 {
				t.Fatalf("baseline sample deg=%f label=%d", s.Degradation, s.Label)
			}
		}
		if s.Label == 0 {
			saw0 = true
		}
		if s.Label == 1 {
			saw1 = true
		}
	}
	if !saw0 || !saw1 {
		t.Fatalf("dataset lacks class diversity: %v", ds.ClassCounts())
	}
}

func TestTrainFrameworkOnCollectedData(t *testing.T) {
	// A longer-running target so each run yields several windows.
	base := Scenario{Target: TargetSpec{
		Gen: io500.New(io500.IorEasyWrite, io500.Params{
			Dir: "/tgt", Ranks: 2, EasyFileBytes: 48 << 20}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}}
	var variants []Variant
	// Metadata-only interference leaves a data writer untouched (class 0);
	// read instances of growing intensity produce class 1.
	for i := 0; i < 2; i++ {
		variants = append(variants, Variant{
			Name: "mdt" + string(rune('0'+i)),
			Interference: []InterferenceSpec{{
				Gen: io500.New(io500.MdtEasyWrite, io500.Params{
					Dir: "/mdtbg" + string(rune('0'+i)), Ranks: 2, MdtFiles: 200}),
				Nodes: []string{"c5", "c6"}, Ranks: 2,
			}},
		})
	}
	for i, instances := range []int{1, 2, 3} {
		variants = append(variants, Variant{
			Name:         "read" + string(rune('a'+i)),
			Interference: readInstances(instances, 6),
		})
	}
	ds := CollectDataset(base, variants, CollectorConfig{IncludeBaseline: true})
	counts := ds.ClassCounts()
	if counts[0] < 3 || counts[1] < 3 {
		t.Fatalf("not enough samples per class: %v (n=%d)", counts, ds.Len())
	}
	fw, cm := TrainFramework(ds, FrameworkConfig{Seed: 1, Train: TrainConfigQuick()})
	t.Logf("class counts %v; test confusion:\n%s", counts,
		cm.Render([]string{"<2x", ">=2x"}))
	if acc := cm.Accuracy(); acc < 0.6 {
		t.Fatalf("accuracy %.3f on tiny dataset", acc)
	}
	// Online prediction path: predict on one raw window.
	for _, s := range ds.Samples {
		class, probs := fw.Predict(s.Vectors)
		if class < 0 || class > 1 || len(probs) != 2 {
			t.Fatalf("bad prediction %d %v", class, probs)
		}
		break
	}
}

// TrainConfigQuick keeps unit tests fast.
func TrainConfigQuick() ml.TrainConfig {
	return ml.TrainConfig{Epochs: 25}
}

func TestLiveMonitorEmitsWindows(t *testing.T) {
	cl := NewCluster(lustre.PaperTopology(), lustre.Config{})
	var got []int
	lm := AttachLive(cl, sim.Second, func(idx int, mat window.Matrix) {
		got = append(got, idx)
		if len(mat) != cl.FS.NumTargets() {
			t.Fatalf("window %d bad shape", idx)
		}
	})
	g := io500.New(io500.IorEasyWrite, io500.Params{Dir: "/live", Ranks: 1, EasyFileBytes: 4 << 20})
	r := &workload.Runner{FS: cl.FS, Name: "live", Nodes: []string{"c0"}, Ranks: 1,
		Gen: g, OnRecord: lm.Record}
	r.Start()
	cl.Eng.RunUntil(sim.Seconds(3.5))
	lm.Stop()
	if len(got) != 3 {
		t.Fatalf("emitted windows %v, want 3", got)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("window order %v", got)
		}
	}
}

func TestMatchRate(t *testing.T) {
	recs := []workload.Record{
		{Rank: 0, Seq: 0, Op: workload.Op{Kind: workload.Read}, End: 5},
		{Rank: 0, Seq: 1, Op: workload.Op{Kind: workload.Read}, End: 5},
	}
	other := []workload.Record{
		{Rank: 0, Seq: 0, Op: workload.Op{Kind: workload.Read}, End: 9},
		{Rank: 9, Seq: 9, Op: workload.Op{Kind: workload.Read}, End: 9},
	}
	if r := MatchRate(recs, other); r != 0.5 {
		t.Fatalf("match rate %f", r)
	}
}

func TestBinsPlumbing(t *testing.T) {
	// Multi-class collection uses SeverityBins end to end.
	base := Scenario{Target: smallTarget()}
	ds := CollectDataset(base, []Variant{
		{Interference: []InterferenceSpec{readInterference("/bgx", 6)}},
	}, CollectorConfig{Bins: label.SeverityBins(), IncludeBaseline: true})
	if ds.Classes != 3 {
		t.Fatalf("classes=%d", ds.Classes)
	}
}

func TestFrameworkSaveLoadPredictIdentical(t *testing.T) {
	base := Scenario{Target: smallTarget()}
	ds := CollectDataset(base, []Variant{
		{Interference: readInstances(2, 6)},
	}, CollectorConfig{IncludeBaseline: true})
	fw, _ := TrainFramework(ds, FrameworkConfig{Seed: 3, Train: TrainConfigQuick()})
	path := t.TempDir() + "/fw.json"
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFramework(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Samples {
		wc, wp := fw.Predict(s.Vectors)
		gc, gp := got.Predict(s.Vectors)
		if wc != gc {
			t.Fatalf("class differs after reload: %d vs %d", wc, gc)
		}
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("probs differ after reload")
			}
		}
	}
	if got.Bins.Classes() != fw.Bins.Classes() {
		t.Fatal("bins lost")
	}
}

func TestOSTSkewRotatesPlacement(t *testing.T) {
	placement := func(skew int) int {
		res := Run(Scenario{Target: TargetSpec{
			Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/skew", Ranks: 1, EasyFileBytes: 4 << 20}),
			Nodes: []string{"c0"},
			Ranks: 1,
		}, OSTSkew: skew})
		// The target's first data record reveals the OST.
		for _, rec := range res.Records {
			if rec.Op.Kind == workload.Write {
				return rec.Targets[0]
			}
		}
		t.Fatal("no write records")
		return -1
	}
	a, b := placement(0), placement(3)
	if a == b {
		t.Fatalf("skew did not move the target: ost%d both times", a)
	}
}

func TestLiveMonitorMultiSecondWindows(t *testing.T) {
	// Regression guard for event ordering: with windows larger than the
	// 1 Hz sampling period, the emission must still observe the server
	// monitor's finalized window (not a zero-filled placeholder).
	cl := NewCluster(lustre.PaperTopology(), lustre.Config{})
	sawServerActivity := false
	lm := AttachLive(cl, 2*sim.Second, func(idx int, mat window.Matrix) {
		for _, vec := range mat {
			for _, x := range vec[10:] { // server half of the vector
				if x != 0 {
					sawServerActivity = true
				}
			}
		}
	})
	g := io500.New(io500.IorEasyWrite, io500.Params{Dir: "/lw", Ranks: 2, EasyFileBytes: 64 << 20})
	r := &workload.Runner{FS: cl.FS, Name: "lw", Nodes: []string{"c0"}, Ranks: 2,
		Gen: g, OnRecord: lm.Record}
	r.Start()
	cl.Eng.RunUntil(sim.Seconds(4) + sim.Millisecond)
	lm.Stop()
	if !sawServerActivity {
		t.Fatal("multi-second windows observed no finalized server metrics")
	}
}
