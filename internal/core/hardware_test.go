package core

import (
	"errors"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/hw"
	"quanterference/internal/lustre"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// TestApplyHardwareFillsOnlyZeroFields pins the precedence contract: profile
// values fill scenario fields left at zero, an explicit FSConfig entry wins,
// and Net.NICBps always overrides the topology's NIC speed.
func TestApplyHardwareFillsOnlyZeroFields(t *testing.T) {
	p := hw.Profile{
		Name: "test",
		Net:  hw.NetConfig{NICBps: 5e9},
		Server: hw.ServerConfig{
			MDSOpCPU:       400 * sim.Microsecond,
			WritebackLimit: 8 << 20,
		},
	}
	p.Disk.FlatAccess = 10 * sim.Microsecond

	s := Scenario{Target: smallTarget(), Hardware: p}
	s.FSConfig.MDSOpCPU = 100 * sim.Microsecond // explicit: must win
	s.applyDefaults()

	if s.FSConfig.MDSOpCPU != 100*sim.Microsecond {
		t.Errorf("explicit MDSOpCPU overridden: %v", s.FSConfig.MDSOpCPU)
	}
	if s.FSConfig.WritebackLimit != 8<<20 {
		t.Errorf("profile WritebackLimit not applied: %v", s.FSConfig.WritebackLimit)
	}
	if s.FSConfig.Disk.FlatAccess != 10*sim.Microsecond {
		t.Errorf("profile disk not applied: %+v", s.FSConfig.Disk)
	}
	if s.Topology.NICBps != 5e9 {
		t.Errorf("profile NICBps did not override topology: %v", s.Topology.NICBps)
	}
}

// TestExplicitDiskWinsOverProfile pins the other half of fill-if-zero: a
// scenario that sets FSConfig.Disk itself keeps it even under a disk-bearing
// profile.
func TestExplicitDiskWinsOverProfile(t *testing.T) {
	s := Scenario{Target: smallTarget(), Hardware: hw.NVMeProfile()}
	s.FSConfig.Disk.RPM = 15000
	s.applyDefaults()
	if s.FSConfig.Disk.RPM != 15000 || s.FSConfig.Disk.FlatAccess != 0 {
		t.Errorf("explicit disk config replaced by profile: %+v", s.FSConfig.Disk)
	}
}

// TestZeroScenarioGetsPaperProfile pins the default: applyDefaults resolves
// a zero Hardware field to the named paper profile (all-zero overrides).
func TestZeroScenarioGetsPaperProfile(t *testing.T) {
	s := Scenario{Target: smallTarget()}
	s.applyDefaults()
	if s.Hardware != hw.PaperProfile() {
		t.Fatalf("zero scenario resolved to %+v", s.Hardware)
	}
	if s.FSConfig.Disk != (lustre.Config{}).Disk {
		t.Fatalf("paper profile touched the disk config: %+v", s.FSConfig.Disk)
	}
	if s.Topology.NICBps != lustre.PaperNICBps {
		t.Fatalf("paper profile changed topology NIC: %v", s.Topology.NICBps)
	}
}

// TestWithHardwareOption checks the option fills only scenarios that carry no
// profile of their own.
func TestWithHardwareOption(t *testing.T) {
	o := applyOptions([]Option{WithHardware(hw.NVMeProfile())})
	if o.hardware == nil || o.hardware.Name != "nvme" {
		t.Fatalf("option did not capture the profile: %+v", o.hardware)
	}

	res, err := RunE(Scenario{Target: smallTarget()}, WithHardware(hw.FastNICProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("fastnic run truncated")
	}

	// Explicit Scenario.Hardware wins over the option: the run must behave
	// like the explicit profile, not the option's.
	explicit := func(opts ...Option) sim.Time {
		res, err := RunE(Scenario{Target: smallTarget(), Hardware: hw.PaperProfile()}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	if explicit() != explicit(WithHardware(hw.NVMeProfile())) {
		t.Fatal("WithHardware overrode an explicit Scenario.Hardware")
	}
}

// TestInvalidProfileRejected checks validation surfaces profile errors as
// ErrInvalidScenario instead of a mid-run panic.
func TestInvalidProfileRejected(t *testing.T) {
	s := Scenario{Target: smallTarget()}
	s.Hardware.Name = "broken"
	s.Hardware.Net.NICBps = -1
	if _, err := RunE(s); !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("invalid profile: err = %v, want ErrInvalidScenario", err)
	}
}

// TestBurstBufferProfileAbsorbsWrites checks the burst-buffer profile routes
// writes through a node-local buffer: the write-heavy target's client-side
// latency drops relative to the paper testbed under identical contention.
func TestBurstBufferProfileAbsorbsWrites(t *testing.T) {
	run := func(p hw.Profile) sim.Time {
		res, err := RunE(Scenario{Target: smallTarget(), Hardware: p})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finished {
			t.Fatal("run truncated")
		}
		return res.Duration
	}
	paper, buffered := run(hw.PaperProfile()), run(hw.BurstBufferProfile())
	t.Logf("paper %.2fs, burst buffer %.2fs", sim.ToSeconds(paper), sim.ToSeconds(buffered))
	if buffered >= paper {
		t.Fatalf("burst buffer did not speed up the writer: paper %v, bb %v", paper, buffered)
	}
}

// TestCollectDatasetRecordsProfile checks the dataset header carries the
// profile name through collection (option path) and defaults to paper.
func TestCollectDatasetRecordsProfile(t *testing.T) {
	base := Scenario{
		Target: TargetSpec{
			Gen:   io500.New(io500.IorEasyWrite, io500.Params{Dir: "/p", Ranks: 2, EasyFileBytes: 4 << 20}),
			Nodes: []string{"c0"},
			Ranks: 2,
		},
	}
	ds, err := CollectDatasetE(base, nil, CollectorConfig{IncludeBaseline: true},
		WithHardware(hw.NVMeProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Profile != "nvme" {
		t.Errorf("dataset profile = %q, want nvme", ds.Profile)
	}

	ds, err = CollectDatasetE(base, nil, CollectorConfig{IncludeBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Profile != "paper" {
		t.Errorf("default dataset profile = %q, want paper", ds.Profile)
	}
}

// TestDatasetProfileRoundTrip checks Save/Load and Merge semantics for the
// new header field.
func TestDatasetProfileRoundTrip(t *testing.T) {
	a := dataset.New([]string{"f"}, 1, 2)
	a.Profile = "nvme"
	path := t.TempDir() + "/ds.json"
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := dataset.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile != "nvme" {
		t.Errorf("loaded profile = %q, want nvme", got.Profile)
	}

	b := dataset.New([]string{"f"}, 1, 2)
	b.Profile = "nvme"
	a.Merge(b)
	if a.Profile != "nvme" {
		t.Errorf("same-profile merge changed profile to %q", a.Profile)
	}
	c := dataset.New([]string{"f"}, 1, 2)
	c.Profile = "paper"
	a.Merge(c)
	if a.Profile != "mixed" {
		t.Errorf("cross-profile merge: profile = %q, want mixed", a.Profile)
	}
}
