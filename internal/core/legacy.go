package core

import (
	"quanterference/internal/dataset"
	"quanterference/internal/ml"
)

// This file holds the original panic-on-error entry points, kept for
// backward compatibility. New code should use the error-returning forms
// (RunE, CollectDatasetE, TrainFrameworkE) or, when cancellation matters,
// the context-aware forms (RunCtx, CollectDatasetCtx, TrainFrameworkCtx).

// Run simulates a scenario and panics on any scenario or topology error.
//
// Deprecated: use RunE, which returns typed errors (ErrInvalidScenario,
// ErrInvalidTopology) instead of panicking, or RunCtx for cancellation.
func Run(s Scenario, opts ...Option) *RunResult {
	res, err := RunE(s, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// CollectDataset runs the scenario's target once without interference (the
// baseline), then once per variant, labels every window by the average
// per-op iotime ratio against the baseline, and assembles the dataset.
//
// Deprecated: use CollectDatasetE, which returns typed errors
// (ErrBaselineUnfinished, ErrInvalidScenario, ErrAllVariantsFailed) instead
// of panicking, or CollectDatasetCtx for cancellation.
func CollectDataset(base Scenario, variants []Variant, cfg CollectorConfig) *dataset.Dataset {
	ds, err := CollectDatasetE(base, variants, cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// TrainFramework trains the prediction framework and panics when the dataset
// is empty or the config is invalid.
//
// Deprecated: use TrainFrameworkE, which returns typed errors
// (ErrEmptyDataset) instead of panicking, or TrainFrameworkCtx for
// cancellation.
func TrainFramework(ds *dataset.Dataset, cfg FrameworkConfig) (*Framework, *ml.Confusion) {
	fw, conf, err := TrainFrameworkE(ds, cfg)
	if err != nil {
		panic(err)
	}
	return fw, conf
}
