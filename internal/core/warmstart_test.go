package core

import (
	"errors"
	"reflect"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
)

// warmDataset builds a small separable synthetic dataset: class 1 rows sit
// `shift` standard deviations above class 0 rows.
func warmDataset(n int, nTargets, nFeat int, seed int64, shift float64) *dataset.Dataset {
	names := make([]string, nFeat)
	for i := range names {
		names[i] = "f" + string(rune('0'+i))
	}
	ds := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		label := i % 2
		vecs := make([][]float64, nTargets)
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + float64(label)*shift
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{
			Workload: "synthetic", Run: "warm", Window: i,
			Degradation: 1 + float64(label)*2, Label: label, Vectors: vecs,
		})
	}
	return ds
}

func TestWarmStartReusesIncumbentState(t *testing.T) {
	ds := warmDataset(60, 3, 5, 7, 3)
	incumbent, _, err := TrainFrameworkE(ds, FrameworkConfig{
		Seed: 7, Train: ml.TrainConfig{Epochs: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := incumbent.ExportWeights()

	cand, conf, err := TrainFrameworkE(ds, FrameworkConfig{
		Seed: 99, Train: ml.TrainConfig{Epochs: 10},
	}, WithWarmStart(incumbent))
	if err != nil {
		t.Fatal(err)
	}
	if conf == nil {
		t.Fatal("no confusion matrix from warm retrain")
	}
	// Scaler and bins carry over, but as independent copies.
	if !reflect.DeepEqual(cand.Scaler.Mean, incumbent.Scaler.Mean) ||
		!reflect.DeepEqual(cand.Scaler.Std, incumbent.Scaler.Std) {
		t.Fatal("warm candidate did not reuse the incumbent scaler")
	}
	if &cand.Scaler.Mean[0] == &incumbent.Scaler.Mean[0] {
		t.Fatal("warm candidate shares the incumbent scaler backing array")
	}
	if !reflect.DeepEqual(cand.Bins, incumbent.Bins) {
		t.Fatal("warm candidate did not reuse the incumbent bins")
	}
	// The incumbent's weights must be untouched by the candidate's training.
	if !reflect.DeepEqual(incumbent.ExportWeights(), before) {
		t.Fatal("warm-start training mutated the incumbent weights")
	}
	// And the candidate must have actually trained (weights moved).
	if reflect.DeepEqual(cand.ExportWeights(), before) {
		t.Fatal("warm candidate weights identical to incumbent after 10 epochs")
	}
}

func TestWarmStartShapeMismatch(t *testing.T) {
	ds := warmDataset(40, 3, 5, 7, 3)
	incumbent, _, err := TrainFrameworkE(ds, FrameworkConfig{
		Seed: 7, Train: ml.TrainConfig{Epochs: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	for name, bad := range map[string]*dataset.Dataset{
		"feature width": warmDataset(40, 3, 6, 7, 3),
		"target count":  warmDataset(40, 4, 5, 7, 3),
	} {
		if _, _, err := TrainFrameworkE(bad, FrameworkConfig{
			Train: ml.TrainConfig{Epochs: 1},
		}, WithWarmStart(incumbent)); !errors.Is(err, ErrWarmStartMismatch) {
			t.Errorf("%s mismatch: got %v, want ErrWarmStartMismatch", name, err)
		}
	}
	if _, _, err := TrainFrameworkE(ds, FrameworkConfig{
		Train: ml.TrainConfig{Epochs: 1},
	}, WithWarmStart(&Framework{})); !errors.Is(err, ErrWarmStartMismatch) {
		t.Errorf("empty framework: got %v, want ErrWarmStartMismatch", err)
	}
}

func TestFrameworkCloneIndependent(t *testing.T) {
	ds := warmDataset(60, 3, 5, 11, 3)
	fw, _, err := TrainFrameworkE(ds, FrameworkConfig{
		Seed: 11, Train: ml.TrainConfig{Epochs: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	clone, err := fw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clone.ExportWeights(), fw.ExportWeights()) {
		t.Fatal("clone weights differ from original")
	}
	// Identical predictions on raw vectors.
	for _, s := range ds.Samples[:10] {
		c1, p1 := fw.Predict(window.Matrix(s.Vectors))
		c2, p2 := clone.Predict(window.Matrix(s.Vectors))
		if c1 != c2 || !reflect.DeepEqual(p1, p2) {
			t.Fatalf("clone prediction diverged: %d/%v vs %d/%v", c1, p1, c2, p2)
		}
	}
	// Retraining from the clone must leave the original untouched.
	before := fw.ExportWeights()
	if _, _, err := TrainFrameworkE(ds, FrameworkConfig{
		Train: ml.TrainConfig{Epochs: 5},
	}, WithWarmStart(clone)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fw.ExportWeights(), before) {
		t.Fatal("retraining from the clone mutated the original")
	}
}
