package core

import (
	"encoding/json"
	"os"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
)

// frameworkSpec is the on-disk form of a trained Framework.
type frameworkSpec struct {
	Model      *ml.ModelSpec   `json:"model"`
	Scaler     *dataset.Scaler `json:"scaler"`
	Thresholds []float64       `json:"thresholds"`
}

// Save persists the trained framework (model weights, scaler, bins) as JSON
// so prediction can run in a later process (cmd/quantpredict).
func (f *Framework) Save(path string) error {
	spec, err := ml.Snapshot(f.Model)
	if err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return json.NewEncoder(file).Encode(frameworkSpec{
		Model:      spec,
		Scaler:     f.Scaler,
		Thresholds: f.Bins.Thresholds,
	})
}

// LoadFramework restores a framework written by Save.
func LoadFramework(path string) (*Framework, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var spec frameworkSpec
	if err := json.NewDecoder(file).Decode(&spec); err != nil {
		return nil, err
	}
	model, err := ml.Restore(spec.Model)
	if err != nil {
		return nil, err
	}
	return &Framework{
		Bins:   label.Bins{Thresholds: spec.Thresholds},
		Model:  model,
		Scaler: spec.Scaler,
	}, nil
}
