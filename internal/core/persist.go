package core

import (
	"encoding/json"
	"fmt"
	"os"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
)

// FrameworkFormat tags framework files so unrelated JSON is rejected with a
// descriptive error instead of being decoded into garbage weights.
const FrameworkFormat = "quanterference.framework"

// FrameworkFormatVersion is bumped whenever the on-disk layout changes
// incompatibly. Version history:
//
//	1 — format/version header added; model spec, scaler, thresholds.
const FrameworkFormatVersion = 1

// frameworkSpec is the on-disk form of a trained Framework.
type frameworkSpec struct {
	Format     string          `json:"format"`
	Version    int             `json:"version"`
	Model      *ml.ModelSpec   `json:"model"`
	Scaler     *dataset.Scaler `json:"scaler"`
	Thresholds []float64       `json:"thresholds"`
}

// Save persists the trained framework (model weights, scaler, bins) as JSON
// so prediction can run in a later process (cmd/quantpredict).
func (f *Framework) Save(path string) error {
	spec, err := ml.Snapshot(f.Model)
	if err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return json.NewEncoder(file).Encode(frameworkSpec{
		Format:     FrameworkFormat,
		Version:    FrameworkFormatVersion,
		Model:      spec,
		Scaler:     f.Scaler,
		Thresholds: f.Bins.Thresholds,
	})
}

// LoadFramework restores a framework written by Save. Files without the
// format header (including pre-versioned ones) or with a version this build
// does not read return an error wrapping ErrBadFrameworkFile.
func LoadFramework(path string) (*Framework, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var spec frameworkSpec
	if err := json.NewDecoder(file).Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadFrameworkFile, path, err)
	}
	if spec.Format != FrameworkFormat {
		return nil, fmt.Errorf("%w: %s: format %q, want %q (re-save with this build's Framework.Save)",
			ErrBadFrameworkFile, path, spec.Format, FrameworkFormat)
	}
	if spec.Version != FrameworkFormatVersion {
		return nil, fmt.Errorf("%w: %s: format version %d, this build reads version %d",
			ErrBadFrameworkFile, path, spec.Version, FrameworkFormatVersion)
	}
	model, err := ml.Restore(spec.Model)
	if err != nil {
		return nil, err
	}
	return &Framework{
		Bins:   label.Bins{Thresholds: spec.Thresholds},
		Model:  model,
		Scaler: spec.Scaler,
	}, nil
}
