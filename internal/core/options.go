package core

import (
	"quanterference/internal/forecast"
	"quanterference/internal/hw"
	"quanterference/internal/label"
	"quanterference/internal/obs"
)

// Option tunes the error-returning entry points (RunE, CollectDatasetE,
// TrainFrameworkE). Options exist so a zero-valued config field ("use the
// default") can be distinguished from an explicit setting: CollectorConfig's
// MinOpsPerWindow == 0 silently means 3, whereas WithMinOpsPerWindow states
// intent.
type Option func(*options)

type options struct {
	sink     *obs.Sink
	bins     *label.Bins
	minOps   *int
	baseline *bool
	report   *CollectReport
	warm     *Framework
	warmFc   *forecast.Forecaster
	hardware *hw.Profile
}

func applyOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// WithSink attaches an observability sink: every cluster the call builds is
// instrumented on it, and RunResult.Stats snapshots it. When runs fan out
// in parallel (CollectDatasetE variants), the shared sink aggregates across
// them; all sink mutation is atomic, so this is race-free. Without this
// option each run gets a private sink, so Stats is still populated.
func WithSink(s *obs.Sink) Option {
	return func(o *options) { o.sink = s }
}

// WithBins selects the degradation bins (default: the paper's binary >=2x).
// Applies to CollectDatasetE and TrainFrameworkE.
func WithBins(b label.Bins) Option {
	return func(o *options) { bb := b; o.bins = &bb }
}

// WithMinOpsPerWindow sets the minimum matched operations a window needs to
// be labelled (default 3; values below 1 are clamped to 1, which keeps every
// window with at least one matched op). Applies to CollectDatasetE.
func WithMinOpsPerWindow(n int) Option {
	if n < 1 {
		n = 1
	}
	return func(o *options) { nn := n; o.minOps = &nn }
}

// WithBaselineSamples includes the baseline run's own windows as label-0
// samples (degradation 1.0), teaching the model what "no interference"
// looks like. Applies to CollectDatasetE.
func WithBaselineSamples(include bool) Option {
	return func(o *options) { b := include; o.baseline = &b }
}

// WithWarmStart makes TrainFrameworkE/TrainFrameworkCtx start from an
// incumbent framework instead of fresh random weights: the candidate model is
// an independent clone of fw's architecture and weights (the incumbent is
// never touched and may keep serving), and the incumbent's scaler and bins
// are reused so the warm weights keep reading the input space they were
// trained in. FrameworkConfig.Flat/NewModel/Bins are ignored under warm
// start; cfg.Train still controls the epochs, learning rate, and worker
// count of the incremental pass. A framework whose shape does not match the
// dataset returns an error wrapping ErrWarmStartMismatch. Applies to
// TrainFrameworkE and TrainFrameworkCtx.
func WithWarmStart(fw *Framework) Option {
	return func(o *options) { o.warm = fw }
}

// WithWarmForecaster is WithWarmStart for TrainForecasterCtx: every horizon
// head starts from an independent clone of the incumbent forecaster's
// weights and scaler, and the incumbent's bins are reused unless WithBins is
// also given. The incumbent must have been trained with the same history,
// horizon set, raw feature width, and class count as the requested training;
// a mismatch returns an error wrapping ErrWarmStartMismatch. Applies to
// TrainForecasterCtx only.
func WithWarmForecaster(f *forecast.Forecaster) Option {
	return func(o *options) { o.warmFc = f }
}

// WithHardware runs the scenario on the given hardware profile when the
// scenario itself leaves Scenario.Hardware zero — an explicit
// Scenario.Hardware wins over the option. Profile parameters merge into the
// scenario exactly as Scenario.Hardware documents (fill-if-zero, NICBps
// override). Applies to RunE, RunCtx, CollectDatasetE, and CollectDatasetCtx
// (where the profile covers the baseline and every variant run, and is
// recorded in the dataset header).
func WithHardware(p hw.Profile) Option {
	return func(o *options) { pp := p; o.hardware = &pp }
}

// WithCollectReport fills r with per-variant completion accounting after
// CollectDatasetE returns: how many variants completed, how many samples each
// contributed, and which variants were skipped (with the error that felled
// them). Applies to CollectDatasetE.
func WithCollectReport(r *CollectReport) Option {
	return func(o *options) { o.report = r }
}

// applyCollector overlays explicitly set options onto a CollectorConfig.
func (o *options) applyCollector(cfg *CollectorConfig) {
	if o.bins != nil {
		cfg.Bins = *o.bins
	}
	if o.minOps != nil {
		cfg.MinOpsPerWindow = *o.minOps
	}
	if o.baseline != nil {
		cfg.IncludeBaseline = *o.baseline
	}
}
