// Package core assembles the paper's framework (Figure 2): the client-side
// monitor tracing the target application, the server-side monitors sampling
// every storage target, and the training server that turns windows into
// per-server vectors, labels them against a baseline run, trains the
// kernel-based model, and serves online predictions.
//
// The substrate is the simulated cluster (internal/lustre and friends); the
// public entry points are Scenario/Run for single measurement runs,
// Collector for §III-D training-data generation, and Framework for
// train/evaluate/predict.
package core

import (
	"context"
	"fmt"

	"quanterference/internal/fault"
	"quanterference/internal/lustre"
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/monitor/servermon"
	"quanterference/internal/monitor/window"
	"quanterference/internal/netsim"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// Cluster is one simulated system instance.
type Cluster struct {
	Eng *sim.Engine
	Net *netsim.Network
	FS  *lustre.FS
	// Sink is the attached observability sink, nil until Instrument.
	Sink *obs.Sink
}

// NewCluster builds a fresh engine, network, and file system.
func NewCluster(topo lustre.Topology, cfg lustre.Config) *Cluster {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := lustre.New(eng, net, topo, cfg)
	return &Cluster{Eng: eng, Net: net, FS: fs}
}

// Instrument attaches an observability sink to every layer of the cluster:
// the event engine, the network fabric, and the file system (OSTs, MDS,
// clients). Returns the cluster for chaining.
func (cl *Cluster) Instrument(s *obs.Sink) *Cluster {
	cl.Sink = s
	cl.Eng.Instrument(s)
	cl.Net.Instrument(s)
	cl.FS.Instrument(s)
	return cl
}

// TargetSpec places the measured application.
type TargetSpec struct {
	Gen   workload.Generator
	Nodes []string
	Ranks int
}

// InterferenceSpec places one looping interference workload.
type InterferenceSpec struct {
	Gen   workload.Generator
	Nodes []string
	Ranks int
	// StartAt delays the interference (default: starts immediately).
	StartAt sim.Time
}

// Scenario is one measurement run: a target workload, optional interference,
// and the monitoring window size.
type Scenario struct {
	Topology     lustre.Topology
	FSConfig     lustre.Config
	Target       TargetSpec
	Interference []InterferenceSpec
	// WindowSize is the monitor aggregation window (default 1 s).
	WindowSize sim.Time
	// MaxTime caps the run (default 600 s); the run also ends when the
	// target finishes.
	MaxTime sim.Time
	// OSTSkew rotates the round-robin OST allocator before any file is
	// created, so repeated collections place the target on different
	// OSTs — the run-to-run layout variance §III-C motivates the kernel
	// model with.
	OSTSkew int
	// Faults are deterministic degraded-mode episodes injected into the
	// cluster (fail-slow disks, OST stalls, cache squeezes, MDS storms,
	// NIC collapses). Pair with FSConfig.RPCTimeout to exercise the
	// clients' retry/backoff path.
	Faults []fault.Spec
}

func (s *Scenario) applyDefaults() {
	if s.Topology.MDSNode == "" {
		s.Topology = lustre.PaperTopology()
	}
	if s.WindowSize == 0 {
		s.WindowSize = sim.Second
	}
	if s.MaxTime == 0 {
		s.MaxTime = 600 * sim.Second
	}
}

// validate checks a defaulted scenario, returning ErrInvalidScenario- or
// ErrInvalidTopology-wrapped errors for anything the simulator would
// otherwise panic on mid-run.
func (s *Scenario) validate() error {
	if s.Target.Gen == nil || s.Target.Ranks <= 0 || len(s.Target.Nodes) == 0 {
		return fmt.Errorf("%w: target needs Gen, Ranks > 0, and Nodes", ErrInvalidScenario)
	}
	if s.WindowSize <= 0 {
		return fmt.Errorf("%w: non-positive window size %d ns", ErrInvalidScenario, s.WindowSize)
	}
	if s.WindowSize%sim.Second != 0 {
		return fmt.Errorf("%w: window size %d ns (%.3f s) must be a whole multiple of one second "+
			"(%d ns) — the server-side monitor samples once per second, so windows that are not "+
			"second-aligned cannot be assembled", ErrInvalidScenario,
			s.WindowSize, sim.ToSeconds(s.WindowSize), sim.Second)
	}
	if s.MaxTime <= 0 {
		return fmt.Errorf("%w: non-positive MaxTime %d", ErrInvalidScenario, s.MaxTime)
	}
	if s.OSTSkew < 0 {
		return fmt.Errorf("%w: negative OSTSkew %d", ErrInvalidScenario, s.OSTSkew)
	}
	for i, spec := range s.Interference {
		if spec.Gen == nil || spec.Ranks <= 0 || len(spec.Nodes) == 0 {
			return fmt.Errorf("%w: interference %d needs Gen, Ranks > 0, and Nodes",
				ErrInvalidScenario, i)
		}
		if spec.StartAt < 0 {
			return fmt.Errorf("%w: interference %d has negative StartAt", ErrInvalidScenario, i)
		}
	}
	if s.Topology.MDSNode == "" || len(s.Topology.OSS) == 0 || len(s.Topology.Clients) == 0 {
		return fmt.Errorf("%w: needs MDSNode, OSS, and Clients", ErrInvalidTopology)
	}
	for i, oss := range s.Topology.OSS {
		if oss.Node == "" || oss.OSTs <= 0 {
			return fmt.Errorf("%w: OSS %d needs Node and OSTs > 0", ErrInvalidTopology, i)
		}
	}
	clients := make(map[string]bool, len(s.Topology.Clients))
	for _, cn := range s.Topology.Clients {
		clients[cn] = true
	}
	for _, node := range s.Target.Nodes {
		if !clients[node] {
			return fmt.Errorf("%w: target node %q is not a topology client", ErrInvalidScenario, node)
		}
	}
	for i, spec := range s.Interference {
		for _, node := range spec.Nodes {
			if !clients[node] {
				return fmt.Errorf("%w: interference %d node %q is not a topology client",
					ErrInvalidScenario, i, node)
			}
		}
	}
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("%w: fault %d: %v", ErrInvalidScenario, i, err)
		}
	}
	return nil
}

// faultEndpoints maps the assembled cluster's degradable components for the
// fault injector: every storage target's disk, every OST's block layer and
// write-back cache, the MDS, and the network fabric.
func faultEndpoints(cl *Cluster) fault.Endpoints {
	eps := fault.Endpoints{
		Disks:    make(map[string]fault.DiskSlower),
		Stalls:   make(map[string]fault.Staller),
		Caches:   make(map[string]fault.CachePressurer),
		CPUs:     map[string]fault.CPUScaler{"mdt": cl.FS.MDS()},
		Net:      cl.Net,
		NetNodes: make(map[string]bool),
	}
	for i := 0; i < cl.FS.NumOSTs(); i++ {
		name := cl.FS.TargetName(i)
		ost := cl.FS.OST(i)
		eps.Disks[name] = ost.Queue().Device()
		eps.Stalls[name] = ost
		eps.Caches[name] = ost
	}
	eps.Disks["mdt"] = cl.FS.MDS().Queue().Device()
	topo := cl.FS.Topology()
	eps.NetNodes[topo.MDSNode] = true
	for _, oss := range topo.OSS {
		eps.NetNodes[oss.Node] = true
	}
	for _, cn := range topo.Clients {
		eps.NetNodes[cn] = true
	}
	return eps
}

// RunResult is everything one scenario run produced.
type RunResult struct {
	// Records is the target workload's client-side trace.
	Records []workload.Record
	// Windows maps window index to the assembled per-server vectors.
	Windows map[int]window.Matrix
	// ServerWindows retains the raw server-side vectors per window.
	ServerWindows map[int][][]float64
	// Duration is when the target finished (or MaxTime).
	Duration sim.Time
	// Finished reports whether the target completed before MaxTime.
	Finished bool
	// NTargets is the storage-target count of the cluster.
	NTargets int
	// Stats is the end-of-run observability snapshot: engine, disk,
	// blockqueue, netsim, OST, MDS, and client metrics. Never empty — when
	// no WithSink option is given the run instruments a private sink.
	Stats *obs.Snapshot
}

// RunE executes a scenario on a fresh cluster. It validates the scenario up
// front, returning an error wrapping ErrInvalidScenario or
// ErrInvalidTopology instead of panicking mid-run. The cluster is
// instrumented on the WithSink option's sink, or on a private one, so
// RunResult.Stats is always populated.
func RunE(s Scenario, opts ...Option) (*RunResult, error) {
	return RunCtx(context.Background(), s, opts...)
}

// RunCtx is RunE with cancellation: the simulation loop checks ctx at every
// window boundary and, when the context is done, abandons the run and
// returns an error wrapping both ErrCanceled and ctx.Err(). Simulated time
// is unrelated to wall time — a context deadline bounds how long the caller
// waits, not how long the simulated scenario lasts. An uncancelled RunCtx is
// identical to RunE.
func RunCtx(ctx context.Context, s Scenario, opts ...Option) (*RunResult, error) {
	o := applyOptions(opts)
	s.applyDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	sink := o.sink
	if sink == nil {
		sink = obs.New()
	}
	cl := NewCluster(s.Topology, s.FSConfig).Instrument(sink)
	if len(s.Faults) > 0 {
		inj := fault.NewInjector(cl.Eng, faultEndpoints(cl))
		inj.Instrument(sink)
		if err := inj.Inject(s.Faults); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidScenario, err)
		}
	}
	for i := 0; i < s.OSTSkew; i++ {
		cl.FS.Populate(fmt.Sprintf("/.skew%d", i), 1, 1)
	}

	cm := clientmon.New(cl.FS.NumTargets(), s.WindowSize)
	sm := servermon.New(cl.FS, s.WindowSize)

	res := &RunResult{NTargets: cl.FS.NumTargets()}

	var interfRunners []*workload.Runner
	for i, spec := range s.Interference {
		spec := spec
		r := &workload.Runner{
			FS: cl.FS, Name: fmt.Sprintf("interference%d-%s", i, spec.Gen.Name()),
			Nodes: spec.Nodes, Ranks: spec.Ranks, Gen: spec.Gen, Loop: true,
		}
		interfRunners = append(interfRunners, r)
		if spec.StartAt > 0 {
			cl.Eng.Schedule(spec.StartAt, r.Start)
		} else {
			r.Start()
		}
	}

	target := &workload.Runner{
		FS: cl.FS, Name: s.Target.Gen.Name(),
		Nodes: s.Target.Nodes, Ranks: s.Target.Ranks, Gen: s.Target.Gen,
		OnRecord: func(rec workload.Record) {
			cm.Record(rec)
			res.Records = append(res.Records, rec)
		},
		OnDone: func() {
			res.Finished = true
			res.Duration = cl.Eng.Now()
			for _, r := range interfRunners {
				r.Stop()
			}
		},
	}
	target.Start()

	// Run to the window boundary after the target completes, so the last
	// window's server metrics are finalized.
	for cl.Eng.Now() < s.MaxTime {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w at simulated t=%v: %w", ErrCanceled, cl.Eng.Now(), err)
		}
		cl.Eng.RunUntil(cl.Eng.Now() + s.WindowSize)
		if res.Finished {
			// One more boundary to finalize the final window.
			cl.Eng.RunUntil(((cl.Eng.Now()/s.WindowSize)+1)*s.WindowSize + 1)
			break
		}
	}
	if !res.Finished {
		res.Duration = cl.Eng.Now()
		target.Stop()
		for _, r := range interfRunners {
			r.Stop()
		}
	}
	sm.Stop()

	res.Windows = window.Collect(cl.FS.NumTargets(), cm, sm)
	res.ServerWindows = make(map[int][][]float64)
	for _, idx := range sm.Windows() {
		v, _ := sm.Window(idx)
		res.ServerWindows[idx] = v
	}
	res.Stats = sink.Snapshot()
	return res, nil
}
