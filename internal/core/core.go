// Package core assembles the paper's framework (Figure 2): the client-side
// monitor tracing the target application, the server-side monitors sampling
// every storage target, and the training server that turns windows into
// per-server vectors, labels them against a baseline run, trains the
// kernel-based model, and serves online predictions.
//
// The substrate is the simulated cluster (internal/lustre and friends); the
// public entry points are Scenario/Run for single measurement runs,
// Collector for §III-D training-data generation, and Framework for
// train/evaluate/predict.
package core

import (
	"context"
	"fmt"

	"quanterference/internal/bb"
	"quanterference/internal/fault"
	"quanterference/internal/hw"
	"quanterference/internal/lustre"
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/monitor/servermon"
	"quanterference/internal/monitor/window"
	"quanterference/internal/netsim"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// Cluster is one simulated system instance.
type Cluster struct {
	Eng *sim.Engine
	Net *netsim.Network
	FS  *lustre.FS
	// Sink is the attached observability sink, nil until Instrument.
	Sink *obs.Sink
}

// NewCluster builds a fresh engine, network, and file system with the
// default (paper) fabric parameters.
func NewCluster(topo lustre.Topology, cfg lustre.Config) *Cluster {
	return NewClusterNet(topo, cfg, netsim.Config{})
}

// NewClusterNet is NewCluster with an explicit fabric configuration — the
// threading point for a hardware profile's NIC latency. The zero
// netsim.Config is exactly NewCluster.
func NewClusterNet(topo lustre.Topology, cfg lustre.Config, ncfg netsim.Config) *Cluster {
	eng := sim.NewEngine()
	net := netsim.New(eng, ncfg)
	fs := lustre.New(eng, net, topo, cfg)
	return &Cluster{Eng: eng, Net: net, FS: fs}
}

// Instrument attaches an observability sink to every layer of the cluster:
// the event engine, the network fabric, and the file system (OSTs, MDS,
// clients). Returns the cluster for chaining.
func (cl *Cluster) Instrument(s *obs.Sink) *Cluster {
	cl.Sink = s
	cl.Eng.Instrument(s)
	cl.Net.Instrument(s)
	cl.FS.Instrument(s)
	return cl
}

// TargetSpec places the measured application.
type TargetSpec struct {
	Gen   workload.Generator
	Nodes []string
	Ranks int
}

// InterferenceSpec places one looping interference workload.
type InterferenceSpec struct {
	Gen   workload.Generator
	Nodes []string
	Ranks int
	// StartAt delays the interference (default: starts immediately).
	StartAt sim.Time
}

// Scenario is one measurement run: a target workload, optional interference,
// and the monitoring window size.
type Scenario struct {
	Topology lustre.Topology
	FSConfig lustre.Config
	// Hardware selects the storage subsystem the scenario simulates: the
	// disk model behind every storage target, NIC bandwidth/latency,
	// optional client burst buffers, and server-side costs. The zero value
	// (or hw.PaperProfile()) is the paper's testbed, bit-identical to the
	// pre-profile behaviour. Profile values fill only scenario fields left
	// at their zero default — an explicit FSConfig entry wins — except
	// Topology.NICBps, which a profile with Net.NICBps > 0 always
	// overrides (PaperTopology pins 1 GB/s, so "unset" is not observable
	// there).
	Hardware     hw.Profile
	Target       TargetSpec
	Interference []InterferenceSpec
	// WindowSize is the monitor aggregation window (default 1 s).
	WindowSize sim.Time
	// MaxTime caps the run (default 600 s); the run also ends when the
	// target finishes.
	MaxTime sim.Time
	// OSTSkew rotates the round-robin OST allocator before any file is
	// created, so repeated collections place the target on different
	// OSTs — the run-to-run layout variance §III-C motivates the kernel
	// model with.
	OSTSkew int
	// Faults are deterministic degraded-mode episodes injected into the
	// cluster (fail-slow disks, OST stalls, cache squeezes, MDS storms,
	// NIC collapses). Pair with FSConfig.RPCTimeout to exercise the
	// clients' retry/backoff path.
	Faults []fault.Spec
}

func (s *Scenario) applyDefaults() {
	if s.Hardware.IsZero() {
		s.Hardware = hw.PaperProfile()
	}
	if s.Topology.MDSNode == "" {
		s.Topology = lustre.PaperTopology()
	}
	if s.WindowSize == 0 {
		s.WindowSize = sim.Second
	}
	if s.MaxTime == 0 {
		s.MaxTime = 600 * sim.Second
	}
	s.applyHardware()
}

// applyHardware overlays the resolved hardware profile onto the scenario's
// simulator configuration. Profile values fill only fields still at their
// zero default, so an explicit FSConfig setting wins over the profile;
// Net.NICBps > 0 overrides the topology's NIC speed outright (see
// Scenario.Hardware).
func (s *Scenario) applyHardware() {
	p := &s.Hardware
	if s.FSConfig.Disk == (lustre.Config{}).Disk {
		s.FSConfig.Disk = p.Disk
	}
	if s.FSConfig.MDSOpCPU == 0 {
		s.FSConfig.MDSOpCPU = p.Server.MDSOpCPU
	}
	if s.FSConfig.OSSOpCPU == 0 {
		s.FSConfig.OSSOpCPU = p.Server.OSSOpCPU
	}
	if s.FSConfig.WritebackLimit == 0 {
		s.FSConfig.WritebackLimit = p.Server.WritebackLimit
	}
	if s.FSConfig.InodeCacheEntries == 0 {
		s.FSConfig.InodeCacheEntries = p.Server.InodeCacheEntries
	}
	if p.Net.NICBps > 0 {
		s.Topology.NICBps = p.Net.NICBps
	}
}

// validate checks a defaulted scenario, returning ErrInvalidScenario- or
// ErrInvalidTopology-wrapped errors for anything the simulator would
// otherwise panic on mid-run.
func (s *Scenario) validate() error {
	if s.Target.Gen == nil || s.Target.Ranks <= 0 || len(s.Target.Nodes) == 0 {
		return fmt.Errorf("%w: target needs Gen, Ranks > 0, and Nodes", ErrInvalidScenario)
	}
	if err := s.Hardware.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidScenario, err)
	}
	if s.WindowSize <= 0 {
		return fmt.Errorf("%w: non-positive window size %d ns", ErrInvalidScenario, s.WindowSize)
	}
	if s.WindowSize%sim.Second != 0 {
		return fmt.Errorf("%w: window size %d ns (%.3f s) must be a whole multiple of one second "+
			"(%d ns) — the server-side monitor samples once per second, so windows that are not "+
			"second-aligned cannot be assembled", ErrInvalidScenario,
			s.WindowSize, sim.ToSeconds(s.WindowSize), sim.Second)
	}
	if s.MaxTime <= 0 {
		return fmt.Errorf("%w: non-positive MaxTime %d", ErrInvalidScenario, s.MaxTime)
	}
	if s.OSTSkew < 0 {
		return fmt.Errorf("%w: negative OSTSkew %d", ErrInvalidScenario, s.OSTSkew)
	}
	for i, spec := range s.Interference {
		if spec.Gen == nil || spec.Ranks <= 0 || len(spec.Nodes) == 0 {
			return fmt.Errorf("%w: interference %d needs Gen, Ranks > 0, and Nodes",
				ErrInvalidScenario, i)
		}
		if spec.StartAt < 0 {
			return fmt.Errorf("%w: interference %d has negative StartAt", ErrInvalidScenario, i)
		}
	}
	if s.Topology.MDSNode == "" || len(s.Topology.OSS) == 0 || len(s.Topology.Clients) == 0 {
		return fmt.Errorf("%w: needs MDSNode, OSS, and Clients", ErrInvalidTopology)
	}
	for i, oss := range s.Topology.OSS {
		if oss.Node == "" || oss.OSTs <= 0 {
			return fmt.Errorf("%w: OSS %d needs Node and OSTs > 0", ErrInvalidTopology, i)
		}
	}
	clients := make(map[string]bool, len(s.Topology.Clients))
	for _, cn := range s.Topology.Clients {
		clients[cn] = true
	}
	for _, node := range s.Target.Nodes {
		if !clients[node] {
			return fmt.Errorf("%w: target node %q is not a topology client", ErrInvalidScenario, node)
		}
	}
	for i, spec := range s.Interference {
		for _, node := range spec.Nodes {
			if !clients[node] {
				return fmt.Errorf("%w: interference %d node %q is not a topology client",
					ErrInvalidScenario, i, node)
			}
		}
	}
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("%w: fault %d: %v", ErrInvalidScenario, i, err)
		}
	}
	return nil
}

// faultEndpoints maps the assembled cluster's degradable components for the
// fault injector: every storage target's disk, every OST's block layer and
// write-back cache, the MDS, and the network fabric.
func faultEndpoints(cl *Cluster) fault.Endpoints {
	eps := fault.Endpoints{
		Disks:    make(map[string]fault.DiskSlower),
		Stalls:   make(map[string]fault.Staller),
		Caches:   make(map[string]fault.CachePressurer),
		CPUs:     map[string]fault.CPUScaler{"mdt": cl.FS.MDS()},
		Net:      cl.Net,
		NetNodes: make(map[string]bool),
	}
	for i := 0; i < cl.FS.NumOSTs(); i++ {
		name := cl.FS.TargetName(i)
		ost := cl.FS.OST(i)
		eps.Disks[name] = ost.Queue().Device()
		eps.Stalls[name] = ost
		eps.Caches[name] = ost
	}
	eps.Disks["mdt"] = cl.FS.MDS().Queue().Device()
	topo := cl.FS.Topology()
	eps.NetNodes[topo.MDSNode] = true
	for _, oss := range topo.OSS {
		eps.NetNodes[oss.Node] = true
	}
	for _, cn := range topo.Clients {
		eps.NetNodes[cn] = true
	}
	return eps
}

// InjectFaults schedules deterministic fault episodes on an already-built
// cluster — the manual-assembly counterpart of Scenario.Faults for callers
// that wire clusters by hand (experiments, mitigation studies). Specs are
// validated first; an invalid spec returns an error wrapping
// ErrInvalidScenario with nothing scheduled. The injector instruments itself
// on cl.Sink when the cluster was Instrument-ed, so fault/injected counters
// land beside the rest of the run's metrics. Call before cl.Eng runs past
// the first spec's start time.
func (cl *Cluster) InjectFaults(specs []fault.Spec) error {
	if len(specs) == 0 {
		return nil
	}
	inj := fault.NewInjector(cl.Eng, faultEndpoints(cl))
	if cl.Sink != nil {
		inj.Instrument(cl.Sink)
	}
	if err := inj.Inject(specs); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidScenario, err)
	}
	return nil
}

// RunResult is everything one scenario run produced.
type RunResult struct {
	// Records is the target workload's client-side trace.
	Records []workload.Record
	// Windows maps window index to the assembled per-server vectors.
	Windows map[int]window.Matrix
	// ServerWindows retains the raw server-side vectors per window.
	ServerWindows map[int][][]float64
	// Duration is when the target finished (or MaxTime).
	Duration sim.Time
	// Finished reports whether the target completed before MaxTime.
	Finished bool
	// NTargets is the storage-target count of the cluster.
	NTargets int
	// Stats is the end-of-run observability snapshot: engine, disk,
	// blockqueue, netsim, OST, MDS, and client metrics. Never empty — when
	// no WithSink option is given the run instruments a private sink.
	Stats *obs.Snapshot
}

// RunE executes a scenario on a fresh cluster. It validates the scenario up
// front, returning an error wrapping ErrInvalidScenario or
// ErrInvalidTopology instead of panicking mid-run. The cluster is
// instrumented on the WithSink option's sink, or on a private one, so
// RunResult.Stats is always populated.
func RunE(s Scenario, opts ...Option) (*RunResult, error) {
	return RunCtx(context.Background(), s, opts...)
}

// RunCtx is RunE with cancellation: the simulation loop checks ctx at every
// window boundary and, when the context is done, abandons the run and
// returns an error wrapping both ErrCanceled and ctx.Err(). Simulated time
// is unrelated to wall time — a context deadline bounds how long the caller
// waits, not how long the simulated scenario lasts. An uncancelled RunCtx is
// identical to RunE.
func RunCtx(ctx context.Context, s Scenario, opts ...Option) (*RunResult, error) {
	o := applyOptions(opts)
	if o.hardware != nil && s.Hardware.IsZero() {
		s.Hardware = *o.hardware
	}
	s.applyDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	sink := o.sink
	if sink == nil {
		sink = obs.New()
	}
	cl := NewClusterNet(s.Topology, s.FSConfig,
		netsim.Config{Latency: s.Hardware.Net.Latency}).Instrument(sink)
	if len(s.Faults) > 0 {
		inj := fault.NewInjector(cl.Eng, faultEndpoints(cl))
		inj.Instrument(sink)
		if err := inj.Inject(s.Faults); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidScenario, err)
		}
	}
	for i := 0; i < s.OSTSkew; i++ {
		cl.FS.Populate(fmt.Sprintf("/.skew%d", i), 1, 1)
	}

	cm := clientmon.New(cl.FS.NumTargets(), s.WindowSize)
	sm := servermon.New(cl.FS, s.WindowSize)

	res := &RunResult{NTargets: cl.FS.NumTargets()}

	// Under a burst-buffer profile every compute node writes through its own
	// node-local buffer. Buffers are created lazily per node (the sim is
	// single-threaded and deterministic, so lazy creation is order-stable)
	// and shared by all ranks — target or interference — on that node.
	var bbRoute func(node string) func(h *lustre.Handle, off, length int64, done func())
	if s.Hardware.BB.Enabled {
		bufs := make(map[string]*bb.Buffer)
		bbRoute = func(node string) func(h *lustre.Handle, off, length int64, done func()) {
			buf, ok := bufs[node]
			if !ok {
				buf = bb.Attach(cl.Eng, cl.FS.Client(node), bb.Config{
					Capacity:         s.Hardware.BB.CapacityBytes,
					IngestBps:        s.Hardware.BB.IngestBps,
					DrainConcurrency: s.Hardware.BB.DrainConcurrency,
				})
				bufs[node] = buf
			}
			return buf.Write
		}
	}

	var interfRunners []*workload.Runner
	for i, spec := range s.Interference {
		spec := spec
		r := &workload.Runner{
			FS: cl.FS, Name: fmt.Sprintf("interference%d-%s", i, spec.Gen.Name()),
			Nodes: spec.Nodes, Ranks: spec.Ranks, Gen: spec.Gen, Loop: true,
			WriteViaFor: bbRoute,
		}
		interfRunners = append(interfRunners, r)
		if spec.StartAt > 0 {
			cl.Eng.Schedule(spec.StartAt, r.Start)
		} else {
			r.Start()
		}
	}

	target := &workload.Runner{
		FS: cl.FS, Name: s.Target.Gen.Name(),
		Nodes: s.Target.Nodes, Ranks: s.Target.Ranks, Gen: s.Target.Gen,
		WriteViaFor: bbRoute,
		OnRecord: func(rec workload.Record) {
			cm.Record(rec)
			res.Records = append(res.Records, rec)
		},
		OnDone: func() {
			res.Finished = true
			res.Duration = cl.Eng.Now()
			for _, r := range interfRunners {
				r.Stop()
			}
		},
	}
	target.Start()

	// Run to the window boundary after the target completes, so the last
	// window's server metrics are finalized.
	for cl.Eng.Now() < s.MaxTime {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w at simulated t=%v: %w", ErrCanceled, cl.Eng.Now(), err)
		}
		cl.Eng.RunUntil(cl.Eng.Now() + s.WindowSize)
		if res.Finished {
			// One more boundary to finalize the final window.
			cl.Eng.RunUntil(((cl.Eng.Now()/s.WindowSize)+1)*s.WindowSize + 1)
			break
		}
	}
	if !res.Finished {
		res.Duration = cl.Eng.Now()
		target.Stop()
		for _, r := range interfRunners {
			r.Stop()
		}
	}
	sm.Stop()

	res.Windows = window.Collect(cl.FS.NumTargets(), cm, sm)
	res.ServerWindows = make(map[int][][]float64)
	for _, idx := range sm.Windows() {
		v, _ := sm.Window(idx)
		res.ServerWindows[idx] = v
	}
	res.Stats = sink.Snapshot()
	return res, nil
}
