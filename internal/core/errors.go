package core

import "errors"

// Sentinel errors returned by the error-returning API (RunE, CollectDatasetE,
// TrainFrameworkE). Match with errors.Is; the returned errors wrap these with
// detail about the offending field.
var (
	// ErrInvalidScenario reports a Scenario that cannot run: missing target
	// workload, malformed window size, or incomplete interference specs.
	ErrInvalidScenario = errors.New("core: invalid scenario")

	// ErrInvalidTopology reports a partially specified cluster layout (an
	// empty Topology is valid and defaults to PaperTopology).
	ErrInvalidTopology = errors.New("core: invalid topology")

	// ErrBaselineUnfinished reports that the interference-free baseline run
	// of CollectDatasetE hit MaxTime before the target completed, so no
	// degradation labels can be derived. Raise Scenario.MaxTime or shrink
	// the target workload.
	ErrBaselineUnfinished = errors.New("core: baseline run did not finish within MaxTime")

	// ErrEmptyDataset reports a training request on a nil or empty dataset.
	ErrEmptyDataset = errors.New("core: dataset has no samples")

	// ErrBadFrameworkFile reports a framework file that is not in this
	// build's persistence format (wrong format tag or version).
	ErrBadFrameworkFile = errors.New("core: unrecognized framework file")
)
