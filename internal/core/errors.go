package core

import "errors"

// Sentinel errors returned by the error-returning API (RunE, CollectDatasetE,
// TrainFrameworkE). Match with errors.Is; the returned errors wrap these with
// detail about the offending field.
var (
	// ErrInvalidScenario reports a Scenario that cannot run: missing target
	// workload, malformed window size, or incomplete interference specs.
	ErrInvalidScenario = errors.New("core: invalid scenario")

	// ErrInvalidTopology reports a partially specified cluster layout (an
	// empty Topology is valid and defaults to PaperTopology).
	ErrInvalidTopology = errors.New("core: invalid topology")

	// ErrBaselineUnfinished reports that the interference-free baseline run
	// of CollectDatasetE hit MaxTime before the target completed, so no
	// degradation labels can be derived. Raise Scenario.MaxTime or shrink
	// the target workload.
	ErrBaselineUnfinished = errors.New("core: baseline run did not finish within MaxTime")

	// ErrVariantUnfinished marks a variant run that hit MaxTime before the
	// target completed — typical when fault injection degrades the cluster
	// past what the time budget absorbs. CollectDatasetE skips such variants
	// (recording them in the CollectReport) rather than aborting.
	ErrVariantUnfinished = errors.New("core: variant run did not finish within MaxTime")

	// ErrAllVariantsFailed reports that every variant run of CollectDatasetE
	// failed or went unfinished, so the dataset would hold no
	// interference samples at all.
	ErrAllVariantsFailed = errors.New("core: all variant runs failed")

	// ErrEmptyDataset reports a training request on a nil or empty dataset.
	ErrEmptyDataset = errors.New("core: dataset has no samples")

	// ErrBadFrameworkFile reports a framework file that is not in this
	// build's persistence format (wrong format tag or version).
	ErrBadFrameworkFile = errors.New("core: unrecognized framework file")

	// ErrWarmStartMismatch reports a WithWarmStart framework whose model
	// shape (targets, features, classes) or scaler width does not match the
	// dataset being retrained on — warm starting only makes sense when the
	// candidate reads the same input space as the incumbent.
	ErrWarmStartMismatch = errors.New("core: warm-start framework does not match dataset shape")

	// ErrForecastHorizon reports a TrainForecasterCtx horizon no run in the
	// dataset can label: no window has History consecutive predecessors plus
	// a window Horizon ahead. Collect longer runs or shrink History/Horizons.
	ErrForecastHorizon = errors.New("core: no windows reach the forecast horizon")

	// ErrCanceled reports that a context-aware entry point (RunCtx,
	// CollectDatasetCtx, TrainFrameworkCtx) stopped because its context was
	// done. The returned error wraps both ErrCanceled and the context's own
	// error, so errors.Is matches either (including context.DeadlineExceeded).
	ErrCanceled = errors.New("core: operation canceled")
)
