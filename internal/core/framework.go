package core

import (
	"fmt"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/monitor/servermon"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// Framework is the trained prediction service: model + scaler + bins.
type Framework struct {
	Bins   label.Bins
	Model  ml.Model
	Scaler *dataset.Scaler
}

// FrameworkConfig controls training.
type FrameworkConfig struct {
	Bins     label.Bins // default binary
	TestFrac float64    // default 0.2, the paper's split
	Train    ml.TrainConfig
	// Flat selects the ablation baseline instead of the kernel model.
	Flat bool
	// NewModel, when set, overrides the architecture entirely (e.g. the
	// attention extension); it wins over Flat.
	NewModel func(nTargets, nFeat, classes int, seed int64) ml.Model
	Seed     int64
}

// TrainFramework splits the dataset 80/20, standardizes on the training
// portion, trains the model, and returns the framework plus the test-set
// confusion matrix (the paper's Figures 3-5).
//
// Deprecated for new code: TrainFramework panics on empty datasets and bad
// configs; prefer TrainFrameworkE, which returns typed errors.
func TrainFramework(ds *dataset.Dataset, cfg FrameworkConfig) (*Framework, *ml.Confusion) {
	fw, cm, err := TrainFrameworkE(ds, cfg)
	if err != nil {
		panic(err)
	}
	return fw, cm
}

// TrainFrameworkE validates its inputs — a nil or empty dataset returns
// ErrEmptyDataset (wrapped), a TestFrac outside [0, 1) is rejected — then
// trains exactly as TrainFramework. WithBins overrides cfg.Bins.
func TrainFrameworkE(ds *dataset.Dataset, cfg FrameworkConfig, opts ...Option) (*Framework, *ml.Confusion, error) {
	o := applyOptions(opts)
	if o.bins != nil {
		cfg.Bins = *o.bins
	}
	if ds == nil || ds.Len() == 0 {
		return nil, nil, ErrEmptyDataset
	}
	if cfg.TestFrac < 0 || cfg.TestFrac >= 1 {
		return nil, nil, fmt.Errorf("core: TestFrac %g outside [0, 1)", cfg.TestFrac)
	}
	if cfg.Bins.Thresholds == nil {
		cfg.Bins = label.BinaryBins()
	}
	if cfg.TestFrac == 0 {
		cfg.TestFrac = 0.2
	}
	if cfg.Train.Seed == 0 {
		cfg.Train.Seed = cfg.Seed
	}
	train, test := ds.Split(cfg.TestFrac, cfg.Seed^0x5717)
	// Standardize copies: the caller's dataset must stay in raw units so
	// Framework.Predict (which scales its own input) sees raw vectors.
	train, test = train.Copy(), test.Copy()
	scaler := dataset.FitScaler(train)
	scaler.Transform(train)
	scaler.Transform(test)

	var model ml.Model
	nFeat := len(ds.FeatureNames)
	switch {
	case cfg.NewModel != nil:
		model = cfg.NewModel(ds.NTargets, nFeat, ds.Classes, cfg.Seed)
	case cfg.Flat:
		model = ml.NewFlatModel(ds.NTargets, nFeat, ds.Classes, nil, cfg.Seed)
	default:
		model = ml.NewKernelModel(ml.KernelConfig{
			NTargets: ds.NTargets, NFeat: nFeat, Classes: ds.Classes, Seed: cfg.Seed,
		})
	}
	cfg.Train.BalanceClasses = true
	ml.Train(model, train, cfg.Train)

	fw := &Framework{Bins: cfg.Bins, Model: model, Scaler: scaler}
	return fw, ml.Evaluate(model, test), nil
}

// Predict classifies one raw (unscaled) window matrix.
func (f *Framework) Predict(mat window.Matrix) (class int, probs []float64) {
	scaled := make([][]float64, len(mat))
	for t, vec := range mat {
		v := append([]float64(nil), vec...)
		for i := range v {
			v[i] = (v[i] - f.Scaler.Mean[i]) / f.Scaler.Std[i]
		}
		scaled[t] = v
	}
	probs = f.Model.Probs(scaled)
	class = 0
	for i := range probs {
		if probs[i] > probs[class] {
			class = i
		}
	}
	return class, probs
}

// LiveMonitor attaches the two monitors to a running cluster and emits a
// per-server matrix at every window boundary — the runtime-prediction path
// of Figure 2.
type LiveMonitor struct {
	cm *clientmon.Monitor
	sm *servermon.Monitor

	nTargets int
	ticker   *sim.Ticker
}

// AttachLive starts live monitoring on the cluster. Wire Record into the
// target workload's Runner.OnRecord; onWindow fires right after each window
// finalizes with that window's matrix.
func AttachLive(cl *Cluster, windowSize sim.Time, onWindow func(idx int, mat window.Matrix)) *LiveMonitor {
	lm := &LiveMonitor{
		cm:       clientmon.New(cl.FS.NumTargets(), windowSize),
		sm:       servermon.New(cl.FS, windowSize),
		nTargets: cl.FS.NumTargets(),
	}
	lm.ticker = sim.NewTicker(cl.Eng, windowSize, func(now sim.Time) {
		// Defer with a zero-delay event so the server monitor's own tick
		// (same instant) finalizes the window first.
		idx := int(now/windowSize) - 1
		cl.Eng.Schedule(0, func() {
			cw, _ := lm.cm.Window(idx)
			sw, _ := lm.sm.Window(idx)
			onWindow(idx, window.Assemble(lm.nTargets, cw, sw))
		})
	})
	return lm
}

// Record is the client-monitor hook.
func (lm *LiveMonitor) Record(rec workload.Record) { lm.cm.Record(rec) }

// Stop halts sampling and window emission.
func (lm *LiveMonitor) Stop() {
	lm.ticker.Stop()
	lm.sm.Stop()
}
