package core

import (
	"context"
	"fmt"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/monitor/servermon"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// Framework is the trained prediction service: model + scaler + bins.
//
// Predict and PredictBatch reuse per-framework scratch, so a Framework must
// not serve predictions from multiple goroutines at once; the serving layer
// (internal/serve) funnels all inference through one batcher goroutine.
type Framework struct {
	Bins   label.Bins
	Model  ml.Model
	Scaler *dataset.Scaler

	batch batchScratch // PredictBatch's amortized buffers
}

// FrameworkConfig controls training.
type FrameworkConfig struct {
	Bins     label.Bins // default binary
	TestFrac float64    // default 0.2, the paper's split
	Train    ml.TrainConfig
	// Flat selects the ablation baseline instead of the kernel model.
	Flat bool
	// NewModel, when set, overrides the architecture entirely (e.g. the
	// attention extension); it wins over Flat.
	NewModel func(nTargets, nFeat, classes int, seed int64) ml.Model
	Seed     int64
}

// TrainFrameworkE splits the dataset 80/20, standardizes on the training
// portion, trains the model, and returns the framework plus the test-set
// confusion matrix (the paper's Figures 3-5). It validates its inputs — a
// nil or empty dataset returns ErrEmptyDataset (wrapped), a TestFrac outside
// [0, 1) is rejected. WithBins overrides cfg.Bins.
func TrainFrameworkE(ds *dataset.Dataset, cfg FrameworkConfig, opts ...Option) (*Framework, *ml.Confusion, error) {
	return trainFramework(context.Background(), ds, cfg, opts)
}

func trainFramework(ctx context.Context, ds *dataset.Dataset, cfg FrameworkConfig, opts []Option) (*Framework, *ml.Confusion, error) {
	o := applyOptions(opts)
	if o.bins != nil {
		cfg.Bins = *o.bins
	}
	if ds == nil || ds.Len() == 0 {
		return nil, nil, ErrEmptyDataset
	}
	if cfg.TestFrac < 0 || cfg.TestFrac >= 1 {
		return nil, nil, fmt.Errorf("core: TestFrac %g outside [0, 1)", cfg.TestFrac)
	}
	if cfg.Bins.Thresholds == nil {
		cfg.Bins = label.BinaryBins()
	}
	if cfg.TestFrac == 0 {
		cfg.TestFrac = 0.2
	}
	if cfg.Train.Seed == 0 {
		cfg.Train.Seed = cfg.Seed
	}
	nFeat := len(ds.FeatureNames)

	var model ml.Model
	var scaler *dataset.Scaler
	if o.warm != nil {
		// Warm start: clone the incumbent's architecture and weights, and
		// keep its scaler and bins — retrained weights only mean anything in
		// the input space they were trained in. The clone is independent, so
		// the incumbent may keep serving while the candidate trains.
		if err := o.warm.checkWarmShape(ds); err != nil {
			return nil, nil, err
		}
		m, err := ml.CloneModel(o.warm.Model)
		if err != nil {
			return nil, nil, err
		}
		model = m
		scaler = &dataset.Scaler{
			Mean: append([]float64(nil), o.warm.Scaler.Mean...),
			Std:  append([]float64(nil), o.warm.Scaler.Std...),
		}
		if o.bins == nil {
			cfg.Bins = o.warm.Bins
		}
	} else {
		switch {
		case cfg.NewModel != nil:
			model = cfg.NewModel(ds.NTargets, nFeat, ds.Classes, cfg.Seed)
		case cfg.Flat:
			model = ml.NewFlatModel(ds.NTargets, nFeat, ds.Classes, nil, cfg.Seed)
		default:
			model = ml.NewKernelModel(ml.KernelConfig{
				NTargets: ds.NTargets, NFeat: nFeat, Classes: ds.Classes, Seed: cfg.Seed,
			})
		}
	}

	train, test := ds.Split(cfg.TestFrac, cfg.Seed^0x5717)
	// Standardize copies: the caller's dataset must stay in raw units so
	// Framework.Predict (which scales its own input) sees raw vectors.
	train, test = train.Copy(), test.Copy()
	if scaler == nil {
		scaler = dataset.FitScaler(train)
	}
	scaler.Transform(train)
	scaler.Transform(test)

	cfg.Train.BalanceClasses = true
	if _, err := ml.TrainCtx(ctx, model, train, cfg.Train); err != nil {
		return nil, nil, fmt.Errorf("%w: training stopped: %w", ErrCanceled, err)
	}

	fw := &Framework{Bins: cfg.Bins, Model: model, Scaler: scaler}
	return fw, ml.Evaluate(model, test), nil
}

// checkWarmShape verifies the warm-start framework reads the dataset's input
// space: same target count, feature width, and class count.
func (f *Framework) checkWarmShape(ds *dataset.Dataset) error {
	if f == nil || f.Model == nil || f.Scaler == nil {
		return fmt.Errorf("%w: nil framework, model, or scaler", ErrWarmStartMismatch)
	}
	if len(f.Scaler.Mean) != len(ds.FeatureNames) {
		return fmt.Errorf("%w: scaler has %d features, dataset has %d",
			ErrWarmStartMismatch, len(f.Scaler.Mean), len(ds.FeatureNames))
	}
	if nT, nF, cls, ok := ml.Dims(f.Model); ok {
		if nT != ds.NTargets || nF != len(ds.FeatureNames) || cls != ds.Classes {
			return fmt.Errorf("%w: model is %dx%d/%d classes, dataset is %dx%d/%d classes",
				ErrWarmStartMismatch, nT, nF, cls, ds.NTargets, len(ds.FeatureNames), ds.Classes)
		}
	}
	return nil
}

// TrainFrameworkCtx is TrainFrameworkE with cancellation: the training epoch
// loop observes ctx and, when it is done, returns an error wrapping both
// ErrCanceled and ctx.Err(). An uncancelled TrainFrameworkCtx is bit-identical
// to TrainFrameworkE; the *E form delegates here with context.Background().
func TrainFrameworkCtx(ctx context.Context, ds *dataset.Dataset, cfg FrameworkConfig, opts ...Option) (*Framework, *ml.Confusion, error) {
	return trainFramework(ctx, ds, cfg, opts)
}

// Predict classifies one raw (unscaled) window matrix.
func (f *Framework) Predict(mat window.Matrix) (class int, probs []float64) {
	scaled := make([][]float64, len(mat))
	for t, vec := range mat {
		v := append([]float64(nil), vec...)
		for i := range v {
			v[i] = (v[i] - f.Scaler.Mean[i]) / f.Scaler.Std[i]
		}
		scaled[t] = v
	}
	probs = f.Model.Probs(scaled)
	class = 0
	for i := range probs {
		if probs[i] > probs[class] {
			class = i
		}
	}
	return class, probs
}

// batchScratch holds PredictBatch's reusable buffers: scaled input rows, the
// class slice, and the probability rows, all grown on demand and recycled
// across calls so steady-state batched inference allocates nothing.
type batchScratch struct {
	scaled [][]float64 // per-target scaled rows, reused in place
	cls    []int
	probs  [][]float64
	pback  []float64 // flat backing for probs rows
}

// PredictBatch classifies a batch of raw window matrices in one call,
// amortizing scaling and softmax scratch across the batch and using the
// model's cache-free inference path (ml.BatchPredictor) when available. Per
// input, the class and probability bits are identical to calling Predict in
// a loop — batching is purely a throughput optimization, so a server may
// group concurrent requests arbitrarily without changing any answer.
//
// The returned slices (and the probability rows) are owned by the Framework
// and valid until its next PredictBatch call; callers that retain results
// must copy them. Like Predict, PredictBatch must not be called from
// multiple goroutines concurrently.
func (f *Framework) PredictBatch(mats []window.Matrix) ([]int, [][]float64) {
	classes := f.Classes()
	b := &f.batch
	if cap(b.cls) < len(mats) {
		b.cls = make([]int, len(mats))
		b.probs = make([][]float64, len(mats))
		b.pback = make([]float64, len(mats)*classes)
	}
	cls := b.cls[:len(mats)]
	probs := b.probs[:len(mats)]
	bp, _ := f.Model.(ml.BatchPredictor)
	for m, mat := range mats {
		// Scale into reused rows with exactly Predict's arithmetic.
		if cap(b.scaled) < len(mat) {
			b.scaled = append(b.scaled, make([][]float64, len(mat)-cap(b.scaled))...)
		}
		scaled := b.scaled[:len(mat)]
		for t, vec := range mat {
			if cap(scaled[t]) < len(vec) {
				scaled[t] = make([]float64, len(vec))
			}
			v := scaled[t][:len(vec)]
			for i := range vec {
				v[i] = (vec[i] - f.Scaler.Mean[i]) / f.Scaler.Std[i]
			}
			scaled[t] = v
		}
		dst := b.pback[m*classes : (m+1)*classes]
		if bp != nil {
			bp.ProbsInto(dst, scaled)
		} else {
			copy(dst, f.Model.Probs(scaled))
		}
		probs[m] = dst
		// Same argmax tie-breaking as Predict.
		class := 0
		for i := range dst {
			if dst[i] > dst[class] {
				class = i
			}
		}
		cls[m] = class
	}
	return cls, probs
}

// Clone returns an independent deep copy of the framework: a weight-equal
// model with private scratch, plus copied scaler and bins. Predictions are
// bit-identical to the original's, but the two may be used (or trained) from
// different goroutines without sharing any mutable state — the primitive the
// continuous-learning loop uses to evaluate an incumbent that the serving
// layer owns.
func (f *Framework) Clone() (*Framework, error) {
	m, err := ml.CloneModel(f.Model)
	if err != nil {
		return nil, err
	}
	return &Framework{
		Bins:  label.Bins{Thresholds: append([]float64(nil), f.Bins.Thresholds...)},
		Model: m,
		Scaler: &dataset.Scaler{
			Mean: append([]float64(nil), f.Scaler.Mean...),
			Std:  append([]float64(nil), f.Scaler.Std...),
		},
	}, nil
}

// ExportWeights snapshots the model's weight tensors bit-exactly (ml
// ExportWeights order) — what the determinism tests compare across same-seed
// runs, and what a promotion audit trail can record.
func (f *Framework) ExportWeights() [][]float64 { return ml.ExportWeights(f.Model) }

// Classes returns the model's class count (falling back to the bins when the
// model type is unknown to ml.Dims).
func (f *Framework) Classes() int {
	if _, _, cls, ok := ml.Dims(f.Model); ok {
		return cls
	}
	return f.Bins.Classes()
}

// Dims reports the input shape Predict expects: nTargets per-server rows of
// nFeat features each. nTargets is 0 when the model type is unknown to
// ml.Dims (any row count is then accepted).
func (f *Framework) Dims() (nTargets, nFeat int) {
	if nT, nF, _, ok := ml.Dims(f.Model); ok {
		return nT, nF
	}
	return 0, len(f.Scaler.Mean)
}

// LiveMonitor attaches the two monitors to a running cluster and emits a
// per-server matrix at every window boundary — the runtime-prediction path
// of Figure 2.
type LiveMonitor struct {
	cm *clientmon.Monitor
	sm *servermon.Monitor

	nTargets int
	ticker   *sim.Ticker
}

// AttachLive starts live monitoring on the cluster. Wire Record into the
// target workload's Runner.OnRecord; onWindow fires right after each window
// finalizes with that window's matrix.
func AttachLive(cl *Cluster, windowSize sim.Time, onWindow func(idx int, mat window.Matrix)) *LiveMonitor {
	lm := &LiveMonitor{
		cm:       clientmon.New(cl.FS.NumTargets(), windowSize),
		sm:       servermon.New(cl.FS, windowSize),
		nTargets: cl.FS.NumTargets(),
	}
	lm.ticker = sim.NewTicker(cl.Eng, windowSize, func(now sim.Time) {
		// Defer with a zero-delay event so the server monitor's own tick
		// (same instant) finalizes the window first.
		idx := int(now/windowSize) - 1
		cl.Eng.Schedule(0, func() {
			cw, _ := lm.cm.Window(idx)
			sw, _ := lm.sm.Window(idx)
			onWindow(idx, window.Assemble(lm.nTargets, cw, sw))
		})
	})
	return lm
}

// Record is the client-monitor hook.
func (lm *LiveMonitor) Record(rec workload.Record) { lm.cm.Record(rec) }

// Stop halts sampling and window emission.
func (lm *LiveMonitor) Stop() {
	lm.ticker.Stop()
	lm.sm.Stop()
}
