package core

import (
	"context"
	"fmt"

	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/label"
	"quanterference/internal/ml"
)

// ForecasterConfig controls TrainForecasterCtx.
type ForecasterConfig struct {
	// Forecast fixes the temporal shape: history length, horizon set, and
	// degradation threshold (zero value = forecast package defaults).
	Forecast forecast.Config
	// Bins label the lead windows (default binary; warm starts reuse the
	// incumbent's bins). The dataset must already be labeled under them —
	// BuildLagged reads stored labels, it does not rebin.
	Bins label.Bins
	// TestFrac is each horizon's holdout fraction (default 0.2, split with
	// TrainFramework's seed so forecast and classifier accuracies are
	// comparable).
	TestFrac float64
	Train    ml.TrainConfig
	Seed     int64
}

// TrainForecasterCtx trains the forecast sequence head from the same
// window-labeled dataset CollectDatasetCtx produces: for every horizon it
// builds the lead-labeled lagged dataset (forecast.BuildLagged), splits it
// 80/20, standardizes on the training portion, and trains one kernel head,
// returning the forecaster plus each horizon's test-set confusion matrix
// (index-aligned with Forecaster.Horizons()).
//
// Validation mirrors TrainFrameworkCtx: nil/empty datasets return
// ErrEmptyDataset, a horizon whose lead-labeled dataset is empty (no run has
// History consecutive windows plus one Horizon ahead) returns
// ErrForecastHorizon, and cancellation wraps ErrCanceled. WithBins overrides
// cfg.Bins; WithWarmForecaster starts every head from an incumbent
// forecaster's weights and scalers.
func TrainForecasterCtx(ctx context.Context, ds *dataset.Dataset, cfg ForecasterConfig, opts ...Option) (*forecast.Forecaster, []*ml.Confusion, error) {
	o := applyOptions(opts)
	if o.bins != nil {
		cfg.Bins = *o.bins
	}
	if ds == nil || ds.Len() == 0 {
		return nil, nil, ErrEmptyDataset
	}
	if cfg.TestFrac < 0 || cfg.TestFrac >= 1 {
		return nil, nil, fmt.Errorf("core: TestFrac %g outside [0, 1)", cfg.TestFrac)
	}
	if cfg.TestFrac == 0 {
		cfg.TestFrac = 0.2
	}
	if cfg.Train.Seed == 0 {
		cfg.Train.Seed = cfg.Seed
	}
	fc := cfg.Forecast
	fc.ApplyDefaults()
	if err := fc.Validate(); err != nil {
		return nil, nil, err
	}
	if o.warmFc != nil {
		if err := checkWarmForecaster(o.warmFc, ds, fc); err != nil {
			return nil, nil, err
		}
		if o.bins == nil {
			cfg.Bins = o.warmFc.Bins
		}
	}
	if cfg.Bins.Thresholds == nil {
		cfg.Bins = label.BinaryBins()
	}

	f := &forecast.Forecaster{History: fc.History, Threshold: fc.Threshold, Bins: cfg.Bins}
	cms := make([]*ml.Confusion, len(fc.Horizons))
	for i, k := range fc.Horizons {
		lagged := forecast.BuildLagged(ds, fc.History, k)
		if lagged.Len() == 0 {
			return nil, nil, fmt.Errorf("%w: horizon %d over history %d leaves none of %d windows lead-labeled",
				ErrForecastHorizon, k, fc.History, ds.Len())
		}

		var model ml.Model
		var scaler *dataset.Scaler
		if o.warmFc != nil {
			head := o.warmFc.Heads[i]
			m, err := ml.CloneModel(head.Model)
			if err != nil {
				return nil, nil, err
			}
			model = m
			scaler = &dataset.Scaler{
				Mean: append([]float64(nil), head.Scaler.Mean...),
				Std:  append([]float64(nil), head.Scaler.Std...),
			}
		} else {
			model = ml.NewKernelModel(ml.KernelConfig{
				NTargets: fc.History,
				NFeat:    len(lagged.FeatureNames),
				Classes:  lagged.Classes,
				// A distinct seed per horizon keeps the heads independently
				// initialized while staying a pure function of (Seed, k).
				Seed: cfg.Seed ^ int64(k)*0x4643,
			})
		}

		// Same split seed as trainFramework, so a forecast head's holdout
		// accuracy is measured the same way the classifier's is.
		train, test := lagged.Split(cfg.TestFrac, cfg.Seed^0x5717)
		train, test = train.Copy(), test.Copy()
		if train.Len() == 0 {
			return nil, nil, fmt.Errorf("%w: horizon %d: %d lead-labeled samples leave an empty training split",
				ErrForecastHorizon, k, lagged.Len())
		}
		if scaler == nil {
			scaler = dataset.FitScaler(train)
		}
		scaler.Transform(train)
		scaler.Transform(test)

		tcfg := cfg.Train
		tcfg.Seed = cfg.Train.Seed ^ int64(k)*0x7161
		tcfg.BalanceClasses = true
		if _, err := ml.TrainCtx(ctx, model, train, tcfg); err != nil {
			return nil, nil, fmt.Errorf("%w: forecaster horizon %d stopped: %w", ErrCanceled, k, err)
		}
		f.Heads = append(f.Heads, &forecast.Head{Horizon: k, Model: model, Scaler: scaler})
		cms[i] = ml.Evaluate(model, test)
	}
	return f, cms, nil
}

// checkWarmForecaster verifies the incumbent forecaster reads the same
// sequence shape the requested training would produce: history length,
// horizon set, pooled feature width, and class count.
func checkWarmForecaster(inc *forecast.Forecaster, ds *dataset.Dataset, fc forecast.Config) error {
	if inc == nil || len(inc.Heads) == 0 {
		return fmt.Errorf("%w: nil or headless forecaster", ErrWarmStartMismatch)
	}
	if inc.History != fc.History {
		return fmt.Errorf("%w: forecaster history %d, training requests %d",
			ErrWarmStartMismatch, inc.History, fc.History)
	}
	got := inc.Horizons()
	if len(got) != len(fc.Horizons) {
		return fmt.Errorf("%w: forecaster has horizons %v, training requests %v",
			ErrWarmStartMismatch, got, fc.Horizons)
	}
	for i := range got {
		if got[i] != fc.Horizons[i] {
			return fmt.Errorf("%w: forecaster has horizons %v, training requests %v",
				ErrWarmStartMismatch, got, fc.Horizons)
		}
	}
	_, nFeat := inc.Dims()
	if nFeat != len(ds.FeatureNames) {
		return fmt.Errorf("%w: forecaster trained on %d raw features, dataset has %d",
			ErrWarmStartMismatch, nFeat, len(ds.FeatureNames))
	}
	if inc.Classes() != ds.Classes {
		return fmt.Errorf("%w: forecaster has %d classes, dataset has %d",
			ErrWarmStartMismatch, inc.Classes(), ds.Classes)
	}
	return nil
}
