package core

import (
	"context"
	"errors"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/ml"
	"quanterference/internal/sim"
)

// forecastDS synthesizes the window-labeled dataset shape CollectDatasetCtx
// produces: runs of consecutive windows where degradation drifts upward late
// in each run, so lead labels are learnable and both classes appear at every
// tested horizon.
func forecastDS(runs, windows int) *dataset.Dataset {
	d := dataset.New([]string{"f0", "f1", "f2"}, 2, 2)
	d.Profile = "paper"
	rng := sim.NewRNG(99)
	for r := 0; r < runs; r++ {
		for w := 0; w < windows; w++ {
			// Degraded in the back third of each run; features correlate.
			lbl, deg, lift := 0, 1.2, 0.0
			if w >= windows*2/3 {
				lbl, deg, lift = 1, 3.5, 4.0
			}
			vecs := make([][]float64, 2)
			for t := range vecs {
				vecs[t] = []float64{
					lift + rng.Float64(),
					float64(w)/float64(windows) + rng.Float64()*0.1,
					rng.Float64()*2 - 1,
				}
			}
			d.Add(&dataset.Sample{
				Workload: "ior", Run: string(rune('a' + r)), Window: w,
				Degradation: deg, Label: lbl, Vectors: vecs,
			})
		}
	}
	return d
}

func smallForecastCfg() ForecasterConfig {
	return ForecasterConfig{
		Forecast: forecast.Config{History: 3, Horizons: []int{1, 2}},
		Train:    ml.TrainConfig{Epochs: 8},
		Seed:     7,
	}
}

func TestTrainForecasterShapeAndAccuracy(t *testing.T) {
	ds := forecastDS(4, 12)
	f, cms, err := TrainForecasterCtx(context.Background(), ds, smallForecastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Horizons(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("horizons %v", got)
	}
	if h, nf := f.Dims(); h != 3 || nf != 3 {
		t.Fatalf("dims %d,%d", h, nf)
	}
	if len(cms) != 2 {
		t.Fatalf("%d confusions", len(cms))
	}
	for i, cm := range cms {
		if cm == nil || cm.Total() == 0 {
			t.Fatalf("horizon %d: empty confusion", i)
		}
	}
}

func TestTrainForecasterDeterministic(t *testing.T) {
	ds := forecastDS(3, 12)
	f1, _, err := TrainForecasterCtx(context.Background(), ds, smallForecastCfg())
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := TrainForecasterCtx(context.Background(), ds, smallForecastCfg())
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := f1.ExportWeights(), f2.ExportWeights()
	if len(w1) == 0 || len(w1) != len(w2) {
		t.Fatalf("weight tensor counts %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		for j := range w1[i] {
			if w1[i][j] != w2[i][j] {
				t.Fatal("same seed, different forecaster weights")
			}
		}
	}
}

func TestTrainForecasterValidation(t *testing.T) {
	if _, _, err := TrainForecasterCtx(context.Background(), nil, smallForecastCfg()); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("nil dataset: %v", err)
	}

	// A horizon no run can reach: 12-window runs cannot label lead 50.
	cfg := smallForecastCfg()
	cfg.Forecast.Horizons = []int{50}
	if _, _, err := TrainForecasterCtx(context.Background(), forecastDS(2, 12), cfg); !errors.Is(err, ErrForecastHorizon) {
		t.Fatalf("unreachable horizon: %v", err)
	}

	cfg = smallForecastCfg()
	cfg.Forecast.History = -1
	if _, _, err := TrainForecasterCtx(context.Background(), forecastDS(2, 12), cfg); !errors.Is(err, forecast.ErrBadConfig) {
		t.Fatalf("bad history: %v", err)
	}

	cfg = smallForecastCfg()
	cfg.TestFrac = 1.5
	if _, _, err := TrainForecasterCtx(context.Background(), forecastDS(2, 12), cfg); err == nil {
		t.Fatal("TestFrac 1.5 accepted")
	}
}

func TestTrainForecasterCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := TrainForecasterCtx(ctx, forecastDS(3, 12), smallForecastCfg())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ctx: %v", err)
	}
}

func TestTrainForecasterWarmStart(t *testing.T) {
	ds := forecastDS(4, 12)
	cfg := smallForecastCfg()
	inc, _, err := TrainForecasterCtx(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	incWeights := inc.ExportWeights()

	warmed, _, err := TrainForecasterCtx(context.Background(), ds, cfg, WithWarmForecaster(inc))
	if err != nil {
		t.Fatal(err)
	}
	// The incumbent must be untouched (warm start clones), and the warmed
	// candidate must have moved off the incumbent's weights.
	after := inc.ExportWeights()
	for i := range incWeights {
		for j := range incWeights[i] {
			if incWeights[i][j] != after[i][j] {
				t.Fatal("warm start mutated the incumbent")
			}
		}
	}
	moved := false
	ww := warmed.ExportWeights()
	for i := range ww {
		for j := range ww[i] {
			if ww[i][j] != incWeights[i][j] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("warmed forecaster identical to incumbent — no training happened")
	}

	// Shape mismatches are rejected.
	bad := cfg
	bad.Forecast.History = 5
	if _, _, err := TrainForecasterCtx(context.Background(), ds, bad, WithWarmForecaster(inc)); !errors.Is(err, ErrWarmStartMismatch) {
		t.Fatalf("history mismatch: %v", err)
	}
	bad = cfg
	bad.Forecast.Horizons = []int{1, 3}
	if _, _, err := TrainForecasterCtx(context.Background(), ds, bad, WithWarmForecaster(inc)); !errors.Is(err, ErrWarmStartMismatch) {
		t.Fatalf("horizon mismatch: %v", err)
	}
}
