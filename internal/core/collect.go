package core

import (
	"fmt"
	"sort"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/monitor/window"
	"quanterference/internal/par"
	"quanterference/internal/workload"
)

// Variant is one interference configuration used during training-data
// collection: the target workload is re-run against it and every labelled
// window becomes one sample.
type Variant struct {
	Name         string
	Interference []InterferenceSpec
}

// CollectorConfig controls §III-D data generation.
type CollectorConfig struct {
	// Bins discretize degradation into classes (default: binary >=2x).
	Bins label.Bins
	// MinOpsPerWindow drops windows with too few matched ops (default 3).
	MinOpsPerWindow int
	// IncludeBaseline adds the baseline run's own windows as label-0
	// samples (degradation 1.0), teaching the model what "no
	// interference" looks like.
	IncludeBaseline bool
}

func (c *CollectorConfig) applyDefaults() {
	if c.Bins.Thresholds == nil {
		c.Bins = label.BinaryBins()
	}
	if c.MinOpsPerWindow == 0 {
		c.MinOpsPerWindow = 3
	}
}

// CollectDataset runs the scenario's target once without interference (the
// baseline), then once per variant, labels every window by the average
// per-op iotime ratio against the baseline, and assembles the dataset.
//
// Deprecated for new code: CollectDataset panics when the baseline does not
// finish or the scenario is invalid; prefer CollectDatasetE, which returns
// typed errors (ErrBaselineUnfinished, ErrInvalidScenario).
func CollectDataset(base Scenario, variants []Variant, cfg CollectorConfig) *dataset.Dataset {
	ds, err := CollectDatasetE(base, variants, cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// CollectDatasetE implements §III-D data generation with error reporting:
// an unfinished baseline returns ErrBaselineUnfinished (wrapped), invalid
// scenarios return ErrInvalidScenario/ErrInvalidTopology. Options override
// the config's zero-ambiguous fields (WithBins, WithMinOpsPerWindow,
// WithBaselineSamples) and WithSink aggregates observability across the
// baseline and every variant run.
func CollectDatasetE(base Scenario, variants []Variant, cfg CollectorConfig, opts ...Option) (*dataset.Dataset, error) {
	o := applyOptions(opts)
	o.applyCollector(&cfg)
	cfg.applyDefaults()
	base.applyDefaults()
	base.Interference = nil

	baseRes, err := RunE(base, opts...)
	if err != nil {
		return nil, err
	}
	if !baseRes.Finished {
		return nil, fmt.Errorf("%w (MaxTime %v, target %s)",
			ErrBaselineUnfinished, base.MaxTime, base.Target.Gen.Name())
	}
	labeler := label.New(baseRes.Records, base.WindowSize, cfg.MinOpsPerWindow)

	ds := dataset.New(window.FeatureNames(), baseRes.NTargets, cfg.Bins.Classes())

	// samplesFor builds one run's samples in ascending window order, so the
	// dataset's sample order — and hence every seeded split — is
	// reproducible.
	samplesFor := func(runName string, res *RunResult, degs map[int]float64) []*dataset.Sample {
		idxs := make([]int, 0, len(degs))
		for idx := range degs {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		out := make([]*dataset.Sample, 0, len(idxs))
		for _, idx := range idxs {
			mat, ok := res.Windows[idx]
			if !ok {
				continue
			}
			out = append(out, &dataset.Sample{
				Workload:    base.Target.Gen.Name(),
				Run:         runName,
				Window:      idx,
				Degradation: degs[idx],
				Label:       cfg.Bins.Label(degs[idx]),
				Vectors:     mat,
			})
		}
		return out
	}

	if cfg.IncludeBaseline {
		for _, s := range samplesFor("baseline", baseRes, labeler.Degradations(baseRes.Records)) {
			ds.Add(s)
		}
	}
	// Variant runs are independent simulations: fan out across cores and
	// splice the results back in variant order.
	perVariant := make([][]*dataset.Sample, len(variants))
	errs := make([]error, len(variants))
	par.Map(len(variants), func(i int) {
		v := variants[i]
		run := base
		run.Interference = v.Interference
		res, err := RunE(run, opts...)
		if err != nil {
			errs[i] = fmt.Errorf("variant %d (%s): %w", i, v.Name, err)
			return
		}
		name := v.Name
		if name == "" {
			name = fmt.Sprintf("variant%d", i)
		}
		perVariant[i] = samplesFor(name, res, labeler.Degradations(res.Records))
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, samples := range perVariant {
		for _, s := range samples {
			ds.Add(s)
		}
	}
	return ds, nil
}

// MatchRate reports the fraction of a run's records that matched the
// baseline — a data-quality diagnostic.
func MatchRate(baseline, interf []workload.Record) float64 {
	if len(interf) == 0 {
		return 0
	}
	l := label.New(baseline, 1, 1)
	return float64(l.Matched(interf)) / float64(len(interf))
}
