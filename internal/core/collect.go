package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/monitor/window"
	"quanterference/internal/par"
	"quanterference/internal/workload"
)

// Variant is one interference configuration used during training-data
// collection: the target workload is re-run against it and every labelled
// window becomes one sample.
type Variant struct {
	Name         string
	Interference []InterferenceSpec
}

// CollectorConfig controls §III-D data generation.
type CollectorConfig struct {
	// Bins discretize degradation into classes (default: binary >=2x).
	Bins label.Bins
	// MinOpsPerWindow drops windows with too few matched ops (default 3).
	MinOpsPerWindow int
	// IncludeBaseline adds the baseline run's own windows as label-0
	// samples (degradation 1.0), teaching the model what "no
	// interference" looks like.
	IncludeBaseline bool
}

func (c *CollectorConfig) applyDefaults() {
	if c.Bins.Thresholds == nil {
		c.Bins = label.BinaryBins()
	}
	if c.MinOpsPerWindow == 0 {
		c.MinOpsPerWindow = 3
	}
}

// SkippedVariant records one variant run CollectDatasetE dropped instead of
// aborting the whole collection.
type SkippedVariant struct {
	// Index is the variant's position in the variants slice.
	Index int
	// Name is the variant's display name ("variantN" when unnamed).
	Name string
	// Err is what felled the run: an ErrVariantUnfinished wrap, a scenario
	// error from RunE, or a *par.PanicError from a crashed worker.
	Err error
}

// CollectReport is CollectDatasetE's per-variant accounting, filled through
// the WithCollectReport option. Under fault injection some variant runs may
// legitimately not finish; the report says which ones were dropped and why,
// so dataset consumers can tell "all healthy" from "degraded but usable".
type CollectReport struct {
	// Variants is how many variants were requested.
	Variants int
	// Completed is how many variant runs finished and contributed samples.
	Completed int
	// BaselineSamples and VariantSamples count the dataset's samples by
	// origin.
	BaselineSamples int
	VariantSamples  int
	// Skipped lists the dropped variants in index order.
	Skipped []SkippedVariant
}

// CollectDatasetE implements §III-D data generation with error reporting:
// an unfinished baseline returns ErrBaselineUnfinished (wrapped), invalid
// scenarios return ErrInvalidScenario/ErrInvalidTopology. Options override
// the config's zero-ambiguous fields (WithBins, WithMinOpsPerWindow,
// WithBaselineSamples) and WithSink aggregates observability across the
// baseline and every variant run.
//
// Variant runs degrade gracefully: a variant that fails — its scenario is
// invalid, its worker panics, or (typical under Scenario.Faults) the target
// does not finish within MaxTime — is skipped and recorded in the
// WithCollectReport report instead of aborting the collection. Only when
// every variant fails does CollectDatasetE return ErrAllVariantsFailed.
func CollectDatasetE(base Scenario, variants []Variant, cfg CollectorConfig, opts ...Option) (*dataset.Dataset, error) {
	return CollectDatasetCtx(context.Background(), base, variants, cfg, opts...)
}

// CollectDatasetCtx is CollectDatasetE with cancellation: the baseline run,
// and every variant run in the par.MapE fan-out, observe ctx at window
// boundaries. When the context is done the collection stops and returns an
// error wrapping both ErrCanceled and ctx.Err() — cancellation is reported
// as such, never disguised as ErrAllVariantsFailed. An uncancelled
// CollectDatasetCtx is identical to CollectDatasetE.
func CollectDatasetCtx(ctx context.Context, base Scenario, variants []Variant, cfg CollectorConfig, opts ...Option) (*dataset.Dataset, error) {
	o := applyOptions(opts)
	o.applyCollector(&cfg)
	cfg.applyDefaults()
	// Resolve the hardware option here (not just in RunCtx): applyDefaults
	// pins Hardware to the paper profile, which would mask the option on the
	// per-variant RunCtx calls below.
	if o.hardware != nil && base.Hardware.IsZero() {
		base.Hardware = *o.hardware
	}
	base.applyDefaults()
	base.Interference = nil

	baseRes, err := RunCtx(ctx, base, opts...)
	if err != nil {
		return nil, err
	}
	if !baseRes.Finished {
		return nil, fmt.Errorf("%w (MaxTime %v, target %s)",
			ErrBaselineUnfinished, base.MaxTime, base.Target.Gen.Name())
	}
	labeler := label.New(baseRes.Records, base.WindowSize, cfg.MinOpsPerWindow)

	ds := dataset.New(window.FeatureNames(), baseRes.NTargets, cfg.Bins.Classes())
	ds.Profile = base.Hardware.DisplayName()

	// samplesFor builds one run's samples in ascending window order, so the
	// dataset's sample order — and hence every seeded split — is
	// reproducible.
	samplesFor := func(runName string, res *RunResult, degs map[int]float64) []*dataset.Sample {
		idxs := make([]int, 0, len(degs))
		for idx := range degs {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		out := make([]*dataset.Sample, 0, len(idxs))
		for _, idx := range idxs {
			mat, ok := res.Windows[idx]
			if !ok {
				continue
			}
			out = append(out, &dataset.Sample{
				Workload:    base.Target.Gen.Name(),
				Run:         runName,
				Window:      idx,
				Degradation: degs[idx],
				Label:       cfg.Bins.Label(degs[idx]),
				Vectors:     mat,
			})
		}
		return out
	}

	report := CollectReport{Variants: len(variants)}
	if cfg.IncludeBaseline {
		for _, s := range samplesFor("baseline", baseRes, labeler.Degradations(baseRes.Records)) {
			ds.Add(s)
			report.BaselineSamples++
		}
	}
	variantName := func(i int) string {
		if variants[i].Name != "" {
			return variants[i].Name
		}
		return fmt.Sprintf("variant%d", i)
	}
	// Variant runs are independent simulations: fan out across cores and
	// splice the results back in variant order. MapE contains worker errors
	// and panics, so one bad variant cannot take down the rest of the sweep.
	perVariant := make([][]*dataset.Sample, len(variants))
	errs := make([]error, len(variants))
	joined := par.MapE(len(variants), func(i int) error {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return err
		}
		run := base
		run.Interference = variants[i].Interference
		res, err := RunCtx(ctx, run, opts...)
		if err != nil {
			errs[i] = err
			return err
		}
		if !res.Finished {
			errs[i] = fmt.Errorf("%w (MaxTime %v, target %s)",
				ErrVariantUnfinished, run.MaxTime, run.Target.Gen.Name())
			return errs[i]
		}
		perVariant[i] = samplesFor(variantName(i), res, labeler.Degradations(res.Records))
		return nil
	})
	// Panicking workers never stored into errs; map them back by index.
	for _, e := range par.Errors(joined) {
		var pe *par.PanicError
		if errors.As(e, &pe) && errs[pe.Index] == nil {
			errs[pe.Index] = pe
		}
	}
	for i, samples := range perVariant {
		if errs[i] != nil {
			report.Skipped = append(report.Skipped, SkippedVariant{
				Index: i, Name: variantName(i), Err: errs[i],
			})
			continue
		}
		report.Completed++
		for _, s := range samples {
			ds.Add(s)
			report.VariantSamples++
		}
	}
	if o.report != nil {
		*o.report = report
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w during variant collection: %w", ErrCanceled, err)
	}
	if len(variants) > 0 && report.Completed == 0 {
		return nil, fmt.Errorf("%w: %d/%d skipped; first: variant %d (%s): %v",
			ErrAllVariantsFailed, len(report.Skipped), len(variants),
			report.Skipped[0].Index, report.Skipped[0].Name, report.Skipped[0].Err)
	}
	return ds, nil
}

// MatchRate reports the fraction of a run's records that matched the
// baseline — a data-quality diagnostic.
func MatchRate(baseline, interf []workload.Record) float64 {
	if len(interf) == 0 {
		return 0
	}
	l := label.New(baseline, 1, 1)
	return float64(l.Matched(interf)) / float64(len(interf))
}
