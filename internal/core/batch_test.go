package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
)

// syntheticFramework trains a tiny framework on random data without running
// the simulator, keeping the batch and context tests fast.
func syntheticFramework(tb testing.TB, nTargets, nFeat, classes int) (*Framework, []window.Matrix) {
	tb.Helper()
	names := make([]string, nFeat)
	for i := range names {
		names[i] = "f"
	}
	ds := dataset.New(names, nTargets, classes)
	rng := sim.NewRNG(7)
	for i := 0; i < 64; i++ {
		vecs := make([][]float64, nTargets)
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + float64(i%classes)
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % classes, Degradation: 1, Vectors: vecs})
	}
	fw, _, err := TrainFrameworkE(ds, FrameworkConfig{Seed: 3, Train: ml.TrainConfig{Epochs: 5}})
	if err != nil {
		tb.Fatal(err)
	}
	rng2 := sim.NewRNG(8)
	mats := make([]window.Matrix, 48)
	for i := range mats {
		mat := make(window.Matrix, nTargets)
		for t := range mat {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng2.NormFloat64() * 2
			}
			mat[t] = v
		}
		mats[i] = mat
	}
	return fw, mats
}

// TestPredictBatchMatchesPredict pins the batching contract: for any batch
// composition, every input's class and probability bits equal a lone Predict
// call, and the steady state allocates nothing.
func TestPredictBatchMatchesPredict(t *testing.T) {
	fw, mats := syntheticFramework(t, 3, 5, 2)
	if c := fw.Classes(); c != 2 {
		t.Fatalf("Classes() = %d", c)
	}
	if nT, nF := fw.Dims(); nT != 3 || nF != 5 {
		t.Fatalf("Dims() = %d, %d", nT, nF)
	}
	for _, size := range []int{1, 5, 32, len(mats)} {
		batch := mats[:size]
		cls, probs := fw.PredictBatch(batch)
		if len(cls) != size || len(probs) != size {
			t.Fatalf("size %d: got %d classes, %d prob rows", size, len(cls), len(probs))
		}
		for m, mat := range batch {
			wantCls, wantProbs := fw.Predict(mat)
			// Re-run the batch: Predict and PredictBatch share no scratch,
			// but probs rows from the earlier call are now stale.
			cls, probs = fw.PredictBatch(batch)
			if cls[m] != wantCls {
				t.Fatalf("size %d input %d: batch class %d != Predict %d", size, m, cls[m], wantCls)
			}
			for i := range wantProbs {
				if math.Float64bits(probs[m][i]) != math.Float64bits(wantProbs[i]) {
					t.Fatalf("size %d input %d prob %d: %v != %v",
						size, m, i, probs[m][i], wantProbs[i])
				}
			}
		}
	}
	// Shrinking then regrowing the batch must reuse scratch: zero allocations.
	fw.PredictBatch(mats)
	if allocs := testing.AllocsPerRun(50, func() { fw.PredictBatch(mats) }); allocs != 0 {
		t.Fatalf("PredictBatch allocates %v per call at steady state, want 0", allocs)
	}
	if cls, probs := fw.PredictBatch(nil); len(cls) != 0 || len(probs) != 0 {
		t.Fatal("empty batch returned results")
	}
}

// TestRunCtxCanceled: a done context stops the simulation at the next window
// boundary with an error matching both ErrCanceled and the context's error.
func TestRunCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, Scenario{Target: smallTarget()})
	if res != nil || err == nil {
		t.Fatalf("RunCtx(canceled) = %v, %v", res, err)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not match ErrCanceled and context.Canceled", err)
	}
	// Uncancelled RunCtx behaves exactly like RunE.
	if _, err := RunCtx(context.Background(), Scenario{Target: smallTarget()}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectDatasetCtxCanceled: cancellation surfaces as ErrCanceled, never
// as ErrAllVariantsFailed.
func TestCollectDatasetCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := Scenario{Target: smallTarget()}
	variants := []Variant{{Interference: []InterferenceSpec{readInterference("/bg", 2)}}}
	_, err := CollectDatasetCtx(ctx, base, variants, CollectorConfig{})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not match ErrCanceled and context.Canceled", err)
	}
	if errors.Is(err, ErrAllVariantsFailed) {
		t.Fatalf("cancellation disguised as ErrAllVariantsFailed: %v", err)
	}
}

// TestTrainFrameworkCtxCanceled: cancelling mid-training stops the epoch loop
// and reports ErrCanceled.
func TestTrainFrameworkCtxCanceled(t *testing.T) {
	names := []string{"a", "b"}
	ds := dataset.New(names, 2, 2)
	rng := sim.NewRNG(2)
	for i := 0; i < 20; i++ {
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1, Vectors: [][]float64{
			{rng.NormFloat64(), rng.NormFloat64()},
			{rng.NormFloat64(), rng.NormFloat64()},
		}})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := FrameworkConfig{Seed: 1, Train: ml.TrainConfig{
		Epochs:  100,
		OnEpoch: func(epoch int, loss float64) { cancel() },
	}}
	_, _, err := TrainFrameworkCtx(ctx, ds, cfg)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not match ErrCanceled and context.Canceled", err)
	}
}
