// Package trace persists client-side operation traces in a compact,
// line-oriented format modelled on Darshan DXT logs: one record per
// completed I/O operation with rank, op type, offsets, timestamps, and the
// storage targets it touched. The paper's labelling pipeline matches
// operations "between large trace logs" offline; this package is that
// interchange format, letting cmd/simrun dump traces and the labeller
// consume them later.
//
// Format (tab-separated, one record per line, '#' comment header):
//
//	workload  rank  iter  seq  kind  path  offset  size  start_ns  end_ns  targets(comma)
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// Header is written at the top of every trace file.
const Header = "# quanterference DXT-style trace v1"

// Writer streams records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	_, err := fmt.Fprintln(bw, Header)
	return &Writer{w: bw, err: err}
}

// Write appends one record.
func (t *Writer) Write(rec workload.Record) {
	if t.err != nil {
		return
	}
	targets := make([]string, len(rec.Targets))
	for i, tg := range rec.Targets {
		targets[i] = strconv.Itoa(tg)
	}
	targetField := strings.Join(targets, ",")
	if targetField == "" {
		targetField = "-" // keep the line exactly 11 fields
	}
	_, t.err = fmt.Fprintf(t.w, "%s\t%d\t%d\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
		sanitize(rec.Workload), rec.Rank, rec.Iter, rec.Seq,
		rec.Op.Kind, sanitize(rec.Op.Path), rec.Op.Offset, rec.Op.Size,
		rec.Start, rec.End, targetField)
	if t.err == nil {
		t.n++
	}
}

// Count returns the number of records written so far.
func (t *Writer) Count() int { return t.n }

// Flush drains buffers and reports any accumulated error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// sanitize keeps the format line-oriented and tab-separated.
func sanitize(s string) string {
	if s == "" {
		return "-"
	}
	s = strings.ReplaceAll(s, "\t", "_")
	return strings.ReplaceAll(s, "\n", "_")
}

func unsanitize(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Read parses an entire trace stream.
func Read(r io.Reader) ([]workload.Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []workload.Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(text string) (workload.Record, error) {
	var rec workload.Record
	fields := strings.Split(text, "\t")
	if len(fields) != 11 {
		return rec, fmt.Errorf("want 11 fields, got %d", len(fields))
	}
	kind, err := parseKind(fields[4])
	if err != nil {
		return rec, err
	}
	ints := make([]int64, 0, 7)
	for _, idx := range []int{1, 2, 3, 6, 7, 8, 9} {
		v, err := strconv.ParseInt(fields[idx], 10, 64)
		if err != nil {
			return rec, fmt.Errorf("field %d: %w", idx, err)
		}
		ints = append(ints, v)
	}
	rec = workload.Record{
		Workload: unsanitize(fields[0]),
		Rank:     int(ints[0]),
		Iter:     int(ints[1]),
		Seq:      int(ints[2]),
		Op: workload.Op{
			Kind:   kind,
			Path:   unsanitize(fields[5]),
			Offset: ints[3],
			Size:   ints[4],
		},
		Start: sim.Time(ints[5]),
		End:   sim.Time(ints[6]),
	}
	if rec.End < rec.Start {
		return rec, fmt.Errorf("end %d before start %d", rec.End, rec.Start)
	}
	if fields[10] != "" && fields[10] != "-" {
		for _, t := range strings.Split(fields[10], ",") {
			v, err := strconv.Atoi(t)
			if err != nil {
				return rec, fmt.Errorf("target %q: %w", t, err)
			}
			rec.Targets = append(rec.Targets, v)
		}
	}
	return rec, nil
}

func parseKind(s string) (workload.Kind, error) {
	for k := workload.Read; k <= workload.Compute; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown op kind %q", s)
}
