package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func sampleRecords() []workload.Record {
	return []workload.Record{
		{
			Workload: "enzo", Rank: 0, Iter: 0, Seq: 3,
			Op:    workload.Op{Kind: workload.Write, Path: "/d/f0", Offset: 1 << 20, Size: 4096},
			Start: 100, End: 250, Targets: []int{2},
		},
		{
			Workload: "enzo", Rank: 1, Iter: 2, Seq: 0,
			Op:    workload.Op{Kind: workload.Stat, Path: "/d"},
			Start: 300, End: 400, Targets: []int{6},
		},
		{
			Workload: "enzo", Rank: 0, Iter: 0, Seq: 4,
			Op:    workload.Op{Kind: workload.Read, Path: "/d/striped", Offset: 0, Size: 2 << 20},
			Start: 500, End: 900, Targets: []int{0, 1},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	recs := sampleRecords()
	for _, r := range recs {
		w.Write(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count=%d", w.Count())
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		want, have := recs[i], got[i]
		if want.Workload != have.Workload || want.Rank != have.Rank ||
			want.Iter != have.Iter || want.Seq != have.Seq ||
			want.Op != have.Op || want.Start != have.Start || want.End != have.End {
			t.Fatalf("record %d: %+v != %+v", i, have, want)
		}
		if len(want.Targets) != len(have.Targets) {
			t.Fatalf("record %d targets %v != %v", i, have.Targets, want.Targets)
		}
		for j := range want.Targets {
			if want.Targets[j] != have.Targets[j] {
				t.Fatalf("record %d target %d", i, j)
			}
		}
	}
}

func TestHeaderAndCommentsSkipped(t *testing.T) {
	in := Header + "\n# a comment\n\nenzo\t0\t0\t0\tread\t/f\t0\t10\t1\t2\t0\n"
	recs, err := Read(strings.NewReader(in))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestRejectsMalformedLines(t *testing.T) {
	cases := []string{
		"too\tfew\tfields",
		"w\t0\t0\t0\tbogus-kind\t/f\t0\t10\t1\t2\t0",
		"w\tx\t0\t0\tread\t/f\t0\t10\t1\t2\t0",
		"w\t0\t0\t0\tread\t/f\t0\t10\t5\t2\t0", // end < start
		"w\t0\t0\t0\tread\t/f\t0\t10\t1\t2\tzz",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted malformed line %q", c)
		}
	}
}

func TestSanitizesSeparators(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Write(workload.Record{
		Workload: "w\tith\ttabs",
		Op:       workload.Op{Kind: workload.Open, Path: "/p\nnewline"},
		Targets:  []int{6},
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(strings.NewReader(b.String()))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if strings.ContainsAny(recs[0].Op.Path, "\t\n") {
		t.Fatalf("path not sanitized: %q", recs[0].Op.Path)
	}
}

func TestEmptyPathRoundTrips(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Write(workload.Record{Op: workload.Op{Kind: workload.Compute}})
	_ = w.Flush()
	recs, err := Read(strings.NewReader(b.String()))
	if err != nil || len(recs) != 1 || recs[0].Op.Path != "" {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

// Property: arbitrary records survive a round trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(rank, iter, seq uint8, kindRaw uint8, off, size uint32, start uint32, durRaw uint16, tgt uint8) bool {
		kind := workload.Kind(kindRaw % 9)
		rec := workload.Record{
			Workload: "w",
			Rank:     int(rank), Iter: int(iter), Seq: int(seq),
			Op: workload.Op{
				Kind: kind, Path: "/p", Offset: int64(off), Size: int64(size),
			},
			Start:   sim.Time(start),
			End:     sim.Time(start) + sim.Time(durRaw),
			Targets: []int{int(tgt % 7)},
		}
		var b strings.Builder
		w := NewWriter(&b)
		w.Write(rec)
		if w.Flush() != nil {
			return false
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.Op == rec.Op && g.Start == rec.Start && g.End == rec.End &&
			g.Rank == rec.Rank && g.Iter == rec.Iter && g.Seq == rec.Seq &&
			len(g.Targets) == 1 && g.Targets[0] == rec.Targets[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
