// Package report assembles the experiment outputs that cmd/figures writes
// (ASCII renderings, CSVs, SVGs) into one self-contained HTML page — the
// equivalent of flipping through the original artifact's eval_results
// folder.
package report

import (
	"fmt"
	"html/template"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// section is one experiment's material.
type section struct {
	ID    string
	Title string
	Text  string          // contents of <id>.txt
	SVGs  []template.HTML // inline <id>*.svg (trusted: produced by internal/plot)
	CSVs  []string        // csv filenames, listed as references
}

// order maps known experiment ids to their paper order and display titles.
var order = []struct{ id, title string }{
	{"table1", "Table I — IO500 slowdown matrix"},
	{"phases", "§II-A — multi-phase application under one interference type"},
	{"fig1a", "Figure 1(a) — Enzo op latency vs interference level"},
	{"fig1b", "Figure 1(b) — Enzo op latency vs interference type"},
	{"table2", "Table II — server-side metrics"},
	{"fig3a", "Figure 3(a) — IO500 binary prediction"},
	{"fig3b", "Figure 3(b) — DLIO binary prediction"},
	{"fig4", "Figure 4 — IO500 3-class prediction"},
	{"fig5", "Figure 5 — AMReX / Enzo / OpenPMD"},
	{"ablation_architecture", "Ablation — kernel vs flat model"},
	{"ablation_features", "Ablation — feature groups"},
	{"ablation_window", "Ablation — window size"},
	{"extension_architectures", "Extension — self-attention architecture"},
	{"extension_regression", "Extension — exact-slowdown regression"},
	{"casestudy", "Case study — prediction-driven mitigation"},
}

var pageTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Quanterference — experiment report</title>
<style>
body { font-family: sans-serif; max-width: 1080px; margin: 2em auto; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: 6px; }
h2 { margin-top: 2em; border-bottom: 1px solid #ccc; padding-bottom: 4px; }
pre { background: #f6f6f6; padding: 10px; overflow-x: auto; font-size: 12px; }
.csv { color: #666; font-size: 12px; }
svg { max-width: 100%; height: auto; }
</style></head><body>
<h1>Quanterference — experiment report</h1>
<p>Regenerated tables and figures of <em>"Understanding and Predicting
Cross-Application I/O Interference in HPC Storage Systems"</em> (SC 2024),
produced by <code>cmd/figures</code> on the simulated cluster.</p>
{{range .}}
<h2 id="{{.ID}}">{{.Title}}</h2>
{{range .SVGs}}{{.}}{{end}}
{{if .Text}}<pre>{{.Text}}</pre>{{end}}
{{if .CSVs}}<p class="csv">data: {{range .CSVs}}{{.}} {{end}}</p>{{end}}
{{end}}
</body></html>
`))

// Build renders the report for a directory of cmd/figures outputs.
func Build(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	byID := map[string]*section{}
	idOf := func(name string) string {
		base := strings.TrimSuffix(name, filepath.Ext(name))
		// fig5_0.svg -> fig5
		if i := strings.LastIndex(base, "_"); i > 0 {
			if suffix := base[i+1:]; len(suffix) == 1 && suffix[0] >= '0' && suffix[0] <= '9' {
				base = base[:i]
			}
		}
		return base
	}
	get := func(id string) *section {
		s, ok := byID[id]
		if !ok {
			s = &section{ID: id, Title: id}
			byID[id] = s
		}
		return s
	}
	var svgNames []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch filepath.Ext(name) {
		case ".txt":
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return "", err
			}
			get(idOf(name)).Text = string(raw)
		case ".csv":
			s := get(idOf(name))
			s.CSVs = append(s.CSVs, name)
		case ".svg":
			svgNames = append(svgNames, name)
		}
	}
	sort.Strings(svgNames)
	for _, name := range svgNames {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		s := get(idOf(name))
		s.SVGs = append(s.SVGs, template.HTML(raw)) //nolint:gosec // our own plot output
	}
	if len(byID) == 0 {
		return "", fmt.Errorf("report: no experiment outputs in %s (run cmd/figures first)", dir)
	}
	// Order: known sections first in paper order, then the rest sorted.
	var sections []*section
	seen := map[string]bool{}
	for _, o := range order {
		if s, ok := byID[o.id]; ok {
			s.Title = o.title
			sections = append(sections, s)
			seen[o.id] = true
		}
	}
	var rest []string
	for id := range byID {
		if !seen[id] {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	for _, id := range rest {
		sections = append(sections, byID[id])
	}
	var b strings.Builder
	if err := pageTmpl.Execute(&b, sections); err != nil {
		return "", err
	}
	return b.String(), nil
}
