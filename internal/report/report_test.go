package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeOut(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAssemblesSections(t *testing.T) {
	dir := t.TempDir()
	writeOut(t, dir, "table1.txt", "slowdown matrix <raw>")
	writeOut(t, dir, "table1.csv", "a,b\n1,2\n")
	writeOut(t, dir, "table1.svg", `<svg xmlns="http://www.w3.org/2000/svg"><rect/></svg>`)
	writeOut(t, dir, "fig3a.txt", "confusion")
	writeOut(t, dir, "fig5_0.svg", `<svg xmlns="http://www.w3.org/2000/svg"><circle/></svg>`)
	writeOut(t, dir, "fig5_1.svg", `<svg xmlns="http://www.w3.org/2000/svg"><circle/></svg>`)
	writeOut(t, dir, "custom_thing.txt", "extra output")

	html, err := Build(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table I — IO500 slowdown matrix", // known title applied
		"Figure 3(a)",
		"&lt;raw&gt;",  // txt escaped
		"<rect/>",      // svg inlined unescaped
		"table1.csv",   // csv referenced
		"custom_thing", // unknown section appended
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// fig5 section holds both panel SVGs.
	if strings.Count(html, "<circle/>") != 2 {
		t.Fatal("fig5 panels not both inlined")
	}
	// Known order: table1 before fig3a.
	if strings.Index(html, `id="table1"`) > strings.Index(html, `id="fig3a"`) {
		t.Fatal("paper order not preserved")
	}
}

func TestBuildEmptyDirErrors(t *testing.T) {
	if _, err := Build(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
}

func TestBuildMissingDirErrors(t *testing.T) {
	if _, err := Build(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}
