package netsim

import (
	"errors"
	"testing"
	"testing/quick"

	"quanterference/internal/sim"
)

func newNet(names ...string) (*sim.Engine, *Network) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	for _, name := range names {
		n.AddNode(name, 0)
	}
	return eng, n
}

func TestSingleTransferTime(t *testing.T) {
	eng, n := newNet("a", "b")
	done := sim.Time(0)
	n.Transfer("a", "b", 125_000_000, func() { done = eng.Now() }) // 1 s at 125 MB/s
	eng.Run()
	want := sim.Second + 100*sim.Microsecond
	if diff := done - want; diff < -sim.Millisecond || diff > sim.Millisecond {
		t.Fatalf("transfer finished at %d, want ~%d", done, want)
	}
}

func TestZeroByteTransferCostsLatency(t *testing.T) {
	eng, n := newNet("a", "b")
	done := sim.Time(0)
	n.Transfer("a", "b", 0, func() { done = eng.Now() })
	eng.Run()
	if done != 100*sim.Microsecond {
		t.Fatalf("control message at %d, want 100us", done)
	}
}

func TestTwoFlowsShareReceiverNIC(t *testing.T) {
	// Two senders to one receiver: each gets half the receiver's downlink,
	// so both take ~2x the solo time.
	eng, n := newNet("a", "b", "dst")
	var times []sim.Time
	n.Transfer("a", "dst", 125_000_000, func() { times = append(times, eng.Now()) })
	n.Transfer("b", "dst", 125_000_000, func() { times = append(times, eng.Now()) })
	eng.Run()
	for _, tt := range times {
		if tt < sim.Seconds(1.9) || tt > sim.Seconds(2.1) {
			t.Fatalf("shared transfer finished at %v, want ~2s", sim.ToSeconds(tt))
		}
	}
}

func TestIndependentPathsDontInterfere(t *testing.T) {
	eng, n := newNet("a", "b", "c", "d")
	var times []sim.Time
	n.Transfer("a", "b", 125_000_000, func() { times = append(times, eng.Now()) })
	n.Transfer("c", "d", 125_000_000, func() { times = append(times, eng.Now()) })
	eng.Run()
	for _, tt := range times {
		if tt > sim.Seconds(1.1) {
			t.Fatalf("independent transfer slowed: %v s", sim.ToSeconds(tt))
		}
	}
}

func TestShortFlowFinishesEarlyAndRatesRecover(t *testing.T) {
	// A long flow shares with a short one; after the short flow drains the
	// long one speeds back up, so total time < 2x solo.
	eng, n := newNet("a", "b", "dst")
	var longDone sim.Time
	n.Transfer("a", "dst", 125_000_000, func() { longDone = eng.Now() })
	n.Transfer("b", "dst", 12_500_000, func() {}) // 10% of the long flow
	eng.Run()
	// Long flow: shares for 0.2s (drains 12.5MB), then full rate for the
	// remaining 100MB: ~0.2 + 0.8 = 1.1s total.
	if longDone < sim.Seconds(1.05) || longDone > sim.Seconds(1.2) {
		t.Fatalf("long flow finished at %v, want ~1.1s", sim.ToSeconds(longDone))
	}
}

func TestHeterogeneousNICBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{})
	n.AddNode("fast", 250e6)
	n.AddNode("slow", 25e6)
	var done sim.Time
	n.Transfer("fast", "slow", 25_000_000, func() { done = eng.Now() })
	eng.Run()
	if done < sim.Seconds(0.95) || done > sim.Seconds(1.1) {
		t.Fatalf("bottleneck not respected: %v s", sim.ToSeconds(done))
	}
}

func TestManyToOneFairness(t *testing.T) {
	// 5 senders to one server: aggregate goodput equals the server NIC,
	// finishing ~5x solo time.
	eng, n := newNet("s1", "s2", "s3", "s4", "s5", "oss")
	finished := 0
	var last sim.Time
	for _, s := range []string{"s1", "s2", "s3", "s4", "s5"} {
		n.Transfer(s, "oss", 25_000_000, func() {
			finished++
			last = eng.Now()
		})
	}
	eng.Run()
	if finished != 5 {
		t.Fatalf("finished=%d", finished)
	}
	if last < sim.Seconds(0.95) || last > sim.Seconds(1.1) {
		t.Fatalf("5x25MB into 125MB/s NIC took %v s, want ~1s", sim.ToSeconds(last))
	}
}

func TestNodeStats(t *testing.T) {
	eng, n := newNet("a", "b")
	n.Transfer("a", "b", 1000, func() {})
	n.Transfer("a", "b", 500, func() {})
	eng.Run()
	if st := n.Stats("a"); st.BytesSent != 1500 || st.BytesRecv != 0 {
		t.Fatalf("a stats %+v", st)
	}
	if st := n.Stats("b"); st.BytesRecv != 1500 {
		t.Fatalf("b stats %+v", st)
	}
}

func TestUnknownNodePanics(t *testing.T) {
	_, n := newNet("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Transfer("a", "ghost", 10, func() {})
}

func TestDuplicateNodePanics(t *testing.T) {
	_, n := newNet("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddNode("a", 0)
}

// Property: all transfers complete, and total received bytes are conserved.
func TestPropertyAllTransfersComplete(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		eng, n := newNet("c1", "c2", "c3", "srv")
		rng := sim.NewRNG(42)
		clients := []string{"c1", "c2", "c3"}
		completed := 0
		for _, sz := range sizes {
			src := clients[rng.Intn(3)]
			bytes := int64(sz) * 100
			delay := sim.Time(rng.Intn(1000)) * sim.Microsecond
			eng.Schedule(delay, func() {
				n.Transfer(src, "srv", bytes, func() { completed++ })
			})
		}
		eng.Run()
		return completed == len(sizes) && n.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a transfer sharing with background flows never finishes sooner
// than it would alone.
func TestPropertyContentionNeverSpeedsUp(t *testing.T) {
	solo := func() sim.Time {
		eng, n := newNet("a", "b", "dst")
		var done sim.Time
		n.Transfer("a", "dst", 50_000_000, func() { done = eng.Now() })
		eng.Run()
		return done
	}()
	f := func(bgRaw uint8) bool {
		bg := int64(bgRaw)*100_000 + 1000
		eng, n := newNet("a", "b", "dst")
		var done sim.Time
		n.Transfer("a", "dst", 50_000_000, func() { done = eng.Now() })
		n.Transfer("b", "dst", bg, func() {})
		eng.Run()
		return done >= solo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() []sim.Time {
		eng, n := newNet("c1", "c2", "c3", "srv")
		var times []sim.Time
		for i := 0; i < 10; i++ {
			sz := int64(1_000_000 * (i + 1))
			src := []string{"c1", "c2", "c3"}[i%3]
			n.Transfer(src, "srv", sz, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		return times
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSetBandwidthScaleErrors(t *testing.T) {
	eng, n := newNet("a", "b")
	if err := n.SetBandwidthScale("a", 0); !errors.Is(err, ErrBadScale) {
		t.Errorf("scale 0: err = %v, want ErrBadScale", err)
	}
	if err := n.SetBandwidthScale("a", -0.5); !errors.Is(err, ErrBadScale) {
		t.Errorf("scale -0.5: err = %v, want ErrBadScale", err)
	}
	if err := n.SetBandwidthScale("a", 1.5); !errors.Is(err, ErrBadScale) {
		t.Errorf("scale 1.5: err = %v, want ErrBadScale", err)
	}
	if err := n.SetBandwidthScale("ghost", 0.5); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: err = %v, want ErrUnknownNode", err)
	}
	if err := n.SetBandwidthScale("a", 0.5); err != nil {
		t.Errorf("valid scale: err = %v", err)
	}
	// A degraded NIC slows an in-range transfer by the scale factor.
	done := sim.Time(0)
	n.Transfer("a", "b", 125_000_000, func() { done = eng.Now() }) // 1 s healthy
	eng.Run()
	if done < sim.Seconds(1.9) || done > sim.Seconds(2.1) {
		t.Fatalf("transfer on half-speed NIC finished at %v, want ~2s", sim.ToSeconds(done))
	}
}
