// Package netsim models a cluster network as a set of per-node duplex links
// joined by a non-blocking switch, with bandwidth shared max-min fairly among
// concurrent transfers (a fluid-flow model). This reproduces the network
// contention component of I/O interference: many clients pushing data at one
// storage server divide that server's ingress NIC bandwidth.
//
// Each transfer occupies the sender's uplink and the receiver's downlink; its
// instantaneous rate is its max-min fair share across both. Rates are
// recomputed whenever a flow starts or finishes (the classic progressive-
// filling algorithm), and the completion event is rescheduled accordingly.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// Typed errors returned by the fabric's mutation API; match with errors.Is.
var (
	// ErrBadScale marks a SetBandwidthScale factor outside (0, 1].
	ErrBadScale = errors.New("netsim: bandwidth scale outside (0, 1]")
	// ErrUnknownNode marks an operation on a node name never registered
	// with AddNode.
	ErrUnknownNode = errors.New("netsim: unknown node")
)

// Config describes the fabric.
type Config struct {
	// DefaultBps is the per-direction NIC bandwidth for nodes not
	// explicitly configured (default 1 Gb/s = 125 MB/s, the paper's NICs).
	DefaultBps float64
	// Latency is the fixed one-way message latency (default 100 µs).
	Latency sim.Time
}

func (c *Config) applyDefaults() {
	if c.DefaultBps == 0 {
		c.DefaultBps = 125e6
	}
	if c.Latency == 0 {
		c.Latency = 100 * sim.Microsecond
	}
}

// link is one direction of a node's NIC.
type link struct {
	name  string
	cap   float64
	scale float64 // fault-injected capacity multiplier in (0, 1]

	// Progressive-filling scratch, valid only while epoch matches the
	// network's current recompute epoch; storing it here keeps recompute
	// allocation-free.
	remCap   float64
	unfrozen int
	epoch    uint64
}

// effCap is the usable capacity under the current degradation scale.
func (l *link) effCap() float64 { return l.cap * l.scale }

type node struct {
	name string
	up   *link
	down *link
	// Counters for the monitors.
	bytesSent uint64
	bytesRecv uint64
}

type flow struct {
	id        uint64 // creation order, for deterministic completion order
	src, dst  *node
	remaining float64 // bytes
	rate      float64 // bytes/sec, recomputed on every change
	done      func()
	start     sim.Time // creation time, for observability
	bytes     int64    // original size, for observability
}

// NodeStats reports cumulative traffic through a node.
type NodeStats struct {
	BytesSent uint64
	BytesRecv uint64
}

// Network is the fabric.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	nodes map[string]*node
	// flows holds active transfers in creation (id) order: every loop over
	// it — draining, bottleneck search, completion — is deterministic by
	// construction, and removal compacts in place.
	flows []*flow

	lastAdvance sim.Time
	gen         uint64 // invalidates stale completion events
	nextFlowID  uint64

	// Reusable scratch and free lists for the recompute/finish hot path.
	epoch       uint64
	freeFlows   []*flow
	linksBuf    []*link
	unfrozenBuf []*flow
	finishedBuf []*flow

	// Observability handles; nil unless Instrument attached a sink.
	sink        *obs.Sink
	cFlows      *obs.Counter
	cBytes      *obs.Counter
	cRecomputes *obs.Counter
	gActiveMax  *obs.Gauge
	hFlowNS     *obs.Histogram
}

// New creates an empty network.
func New(eng *sim.Engine, cfg Config) *Network {
	cfg.applyDefaults()
	return &Network{
		eng:   eng,
		cfg:   cfg,
		nodes: make(map[string]*node),
	}
}

// Instrument registers fabric metrics on the sink: flow and byte counters,
// the number of max-min fair-share recomputations (each one is a throttling
// decision redistributing NIC bandwidth), the peak concurrent-flow count,
// and a flow-duration histogram. With tracing enabled, every completed flow
// becomes a span on its destination node's row — a saturated server ingress
// NIC shows up as a solid bar of overlapping flows.
func (n *Network) Instrument(s *obs.Sink) {
	n.sink = s
	n.cFlows = s.Counter("netsim", "", "flows")
	n.cBytes = s.Counter("netsim", "", "bytes")
	n.cRecomputes = s.Counter("netsim", "", "fair_share_recomputes")
	n.gActiveMax = s.Gauge("netsim", "", "max_active_flows")
	n.hFlowNS = s.Histogram("netsim", "", "flow_ns", obs.TimeBuckets())
}

// AddNode registers a node; bps == 0 uses the default NIC speed.
func (n *Network) AddNode(name string, bps float64) {
	if _, ok := n.nodes[name]; ok {
		panic("netsim: duplicate node " + name)
	}
	if bps == 0 {
		bps = n.cfg.DefaultBps
	}
	n.nodes[name] = &node{
		name: name,
		up:   &link{name: name + "/up", cap: bps, scale: 1},
		down: &link{name: name + "/down", cap: bps, scale: 1},
	}
}

// SetBandwidthScale degrades (or, with scale 1, heals) one node's NIC: both
// directions' capacity is multiplied by scale in (0, 1]. Active flows are
// drained at their old rates up to now, then re-shared max-min fairly at the
// new capacity — a transient bandwidth collapse (link renegotiation, a
// flapping switch port) as the fault layer injects it.
//
// An out-of-range scale returns an error wrapping ErrBadScale and an
// unregistered node one wrapping ErrUnknownNode; in both cases the fabric is
// left untouched. (This used to panic; the error return matches the typed
// error surface of the public API.)
func (n *Network) SetBandwidthScale(name string, scale float64) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("%w: %g for node %q", ErrBadScale, scale, name)
	}
	nd, ok := n.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	n.advance()
	nd.up.scale = scale
	nd.down.scale = scale
	n.reschedule()
	return nil
}

// HasNode reports whether the node exists.
func (n *Network) HasNode(name string) bool {
	_, ok := n.nodes[name]
	return ok
}

// Stats returns cumulative per-node traffic counters.
func (n *Network) Stats(name string) NodeStats {
	nd := n.node(name)
	return NodeStats{BytesSent: nd.bytesSent, BytesRecv: nd.bytesRecv}
}

// ActiveFlows returns the number of in-progress transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

func (n *Network) node(name string) *node {
	nd, ok := n.nodes[name]
	if !ok {
		panic("netsim: unknown node " + name)
	}
	return nd
}

// Transfer moves bytes from src to dst, invoking done after the last byte
// arrives (including the fixed latency). Zero-byte transfers model pure
// control messages and cost one latency.
func (n *Network) Transfer(src, dst string, bytes int64, done func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: negative transfer size %d", bytes))
	}
	if done == nil {
		panic("netsim: nil completion")
	}
	s, d := n.node(src), n.node(dst)
	if bytes == 0 || s == d {
		n.eng.Schedule(n.cfg.Latency, done)
		return
	}
	s.bytesSent += uint64(bytes)
	d.bytesRecv += uint64(bytes)
	n.nextFlowID++
	var f *flow
	if k := len(n.freeFlows); k > 0 {
		f = n.freeFlows[k-1]
		n.freeFlows = n.freeFlows[:k-1]
	} else {
		f = &flow{}
	}
	*f = flow{id: n.nextFlowID, src: s, dst: d, remaining: float64(bytes), done: done,
		start: n.eng.Now(), bytes: bytes}
	n.cFlows.Inc()
	n.cBytes.Add(uint64(bytes))
	n.advance()
	n.flows = append(n.flows, f) // ids increase, so the slice stays id-sorted
	n.gActiveMax.Max(float64(len(n.flows)))
	n.reschedule()
}

// advance drains remaining bytes at current rates up to now.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := sim.ToSeconds(now - n.lastAdvance)
	n.lastAdvance = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// recompute assigns max-min fair rates via progressive filling. Link state
// lives on the links themselves (epoch-stamped) and the worklists reuse the
// network's scratch slices, so the whole pass is allocation-free; every
// iteration runs in flow-id or first-touch order, so ties resolve the same
// way on every run.
func (n *Network) recompute() {
	if len(n.flows) == 0 {
		return
	}
	n.cRecomputes.Inc()
	n.epoch++
	links := n.linksBuf[:0]
	touch := func(l *link) {
		if l.epoch != n.epoch {
			l.epoch = n.epoch
			l.remCap = l.effCap()
			l.unfrozen = 0
			links = append(links, l)
		}
	}
	unfrozen := n.unfrozenBuf[:0]
	for _, f := range n.flows {
		unfrozen = append(unfrozen, f)
		touch(f.src.up)
		f.src.up.unfrozen++
		touch(f.dst.down)
		f.dst.down.unfrozen++
	}
	for len(unfrozen) > 0 {
		// Find the bottleneck link: minimum fair share.
		var bottleneck *link
		minShare := math.Inf(1)
		for _, l := range links {
			if l.unfrozen == 0 {
				continue
			}
			share := l.remCap / float64(l.unfrozen)
			if share < minShare {
				minShare = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at minShare,
		// compacting the survivors in place.
		keep := unfrozen[:0]
		for _, f := range unfrozen {
			if f.src.up != bottleneck && f.dst.down != bottleneck {
				keep = append(keep, f)
				continue
			}
			f.rate = minShare
			for _, l := range [2]*link{f.src.up, f.dst.down} {
				l.remCap -= minShare
				if l.remCap < 0 {
					l.remCap = 0
				}
				l.unfrozen--
			}
		}
		unfrozen = keep
	}
	n.linksBuf = links[:0]
	n.unfrozenBuf = unfrozen[:0]
}

// reschedule recomputes rates and arms the next completion event.
func (n *Network) reschedule() {
	n.recompute()
	if len(n.flows) == 0 {
		return
	}
	// Earliest completion among active flows.
	soonest := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		panic("netsim: active flows with zero aggregate rate")
	}
	delay := sim.Time(math.Ceil(soonest * float64(sim.Second)))
	if delay < 1 {
		delay = 1
	}
	n.gen++
	gen := n.gen
	n.eng.Schedule(delay, func() {
		if gen != n.gen {
			return // superseded by a later topology change
		}
		n.advance()
		n.finishDrained()
	})
}

// finishDrained completes flows whose bytes have drained and reschedules.
// n.flows is id-sorted, so splitting it preserves creation order — the
// stable completion order reproducibility requires — without sorting.
func (n *Network) finishDrained() {
	const eps = 1.0 // within one byte counts as done
	finished := n.finishedBuf[:0]
	active := n.flows[:0]
	for _, f := range n.flows {
		if f.remaining <= eps {
			finished = append(finished, f)
		} else {
			active = append(active, f)
		}
	}
	n.flows = active
	now := n.eng.Now()
	traceOn := n.sink.TraceEnabled()
	for _, f := range finished {
		n.hFlowNS.Observe(float64(now - f.start))
		if traceOn {
			n.sink.Span("netsim", f.dst.name, "flow:"+f.src.name, f.start, now-f.start)
		}
	}
	n.reschedule()
	for i, f := range finished {
		n.eng.Schedule(n.cfg.Latency, f.done)
		// The engine holds the done closure, not the flow: recycle it.
		f.done = nil
		finished[i] = nil
		n.freeFlows = append(n.freeFlows, f)
	}
	n.finishedBuf = finished[:0]
}
