package experiments

import (
	"context"
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/fault"
	"quanterference/internal/forecast"
	"quanterference/internal/lustre"
	"quanterference/internal/mitigate"
	"quanterference/internal/ml"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

// MitigationConfig tunes the policy × fault × workload scenario study: every
// mitigation policy is run against every fault episode and interference mix,
// and compared with a no-action baseline on the same cell.
type MitigationConfig struct {
	// Scale trims the interference workloads (default 1.0). The protected
	// target is time-sized and NOT scaled — see mitigationTarget.
	Scale Scale
	// Window is the monitor aggregation window (default 1 s).
	Window sim.Time
	// MaxTime caps each measured run (default 240 s).
	MaxTime sim.Time
	// Reps repeats the training sweep with rotated OST placement (default 2).
	Reps int
	// ThrottleBps is the per-client limit the throttle policies apply
	// (default 10 MB/s).
	ThrottleBps float64
	// Epochs trains the classifier and every forecast head (default 40).
	Epochs int
	Seed   int64
	// History and Horizons shape the forecaster feeding the proactive and
	// defer policies (defaults 4 and {1, 2, 4}).
	History  int
	Horizons []int
	// Lead is how many windows ahead a forecast alarm may engage the
	// proactive policies (default 4); ReleaseAfter the hysteresis release
	// (default 2 clean windows).
	Lead         int
	ReleaseAfter int
}

func (c *MitigationConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Window == 0 {
		c.Window = sim.Second
	}
	if c.MaxTime == 0 {
		c.MaxTime = 240 * sim.Second
	}
	if c.Reps == 0 {
		c.Reps = 2
	}
	if c.ThrottleBps == 0 {
		c.ThrottleBps = 10e6
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.History == 0 {
		c.History = 4
	}
	if len(c.Horizons) == 0 {
		c.Horizons = []int{1, 2, 4}
	}
	if c.Lead == 0 {
		c.Lead = 4
	}
	if c.ReleaseAfter == 0 {
		c.ReleaseAfter = 2
	}
}

// MitigationCell is one (fault, mix, policy) measurement. Slowdowns are
// against the target running alone under the SAME fault episode, so a cell
// charges the policy only for interference damage, not for the fault itself.
type MitigationCell struct {
	Fault  string
	Mix    string
	Policy string
	// AloneDuration is the fault-matched no-interference reference;
	// TargetDuration the protected app's completion in this cell.
	AloneDuration  sim.Time
	TargetDuration sim.Time
	// Slowdown is TargetDuration/AloneDuration; Avoided is the no-action
	// cell's slowdown minus this cell's — the end-to-end win (0 for the
	// "none" rows by construction).
	Slowdown float64
	Avoided  float64
	// InterferenceMB is the background workloads' goodput while the target
	// ran; CostPct how much of the no-action cell's volume the policy cost
	// them.
	InterferenceMB float64
	CostPct        float64
	// Engagements, ThrottledWindows, and DeferredMB summarize the
	// controller's actuation (zero on "none" rows).
	Engagements      int
	ThrottledWindows int
	DeferredMB       float64
}

// MitigationResult is the full scenario matrix, cells ordered fault-major,
// then mix, then policy ("none" first).
type MitigationResult struct {
	Faults   []string
	Mixes    []string
	Policies []string
	Cells    []MitigationCell
	// FrameworkDigest and ForecasterDigest pin the trained weights both
	// studies' decisions flow from — the determinism anchor of the golden
	// CSV (same seed, same digests, same cells, bit for bit).
	FrameworkDigest  string
	ForecasterDigest string
}

// Cell returns the (fault, mix, policy) measurement, or nil.
func (r *MitigationResult) Cell(fault, mix, policy string) *MitigationCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Fault == fault && c.Mix == mix && c.Policy == policy {
			return c
		}
	}
	return nil
}

// ProactiveMatchesReactive reports whether the forecast-driven proactive
// policy achieves at least the reactive policy's slowdown-avoided on at
// least one fault×mix cell — the study's acceptance bar (proactive engages
// no later than reactive by construction, so this holds unless forecasts
// are actively harmful).
func (r *MitigationResult) ProactiveMatchesReactive() bool {
	for _, f := range r.Faults {
		for _, m := range r.Mixes {
			pro, rea := r.Cell(f, m, "proactive"), r.Cell(f, m, "reactive")
			if pro != nil && rea != nil && pro.Avoided >= rea.Avoided {
				return true
			}
		}
	}
	return false
}

// mitigationTarget is the protected application: a time-sized sequential
// write spanning ~15-20 unimpeded windows. Like the lead-time study's
// targets it is deliberately NOT scaled by cfg.Scale — the simulator runs in
// virtual time, so a fixed-size target keeps smoke-scale runs long enough
// for the forecaster history to warm up and for mid-run interference
// arrivals to land while the target still runs.
func mitigationTarget() core.TargetSpec {
	return core.TargetSpec{
		Gen: io500.New(io500.IorEasyWrite, io500.Params{
			Dir: "/protected", Ranks: 4, EasyFileBytes: 2 << 30}),
		Nodes: targetNodes,
		Ranks: 4,
	}
}

// mitigationFaults are the fault episodes under study: none, a fail-slow
// disk under the protected app's stripes, and a metadata latency storm. All
// episodes open after the interference arrival so runs degrade in stages —
// the transition structure the forecaster was trained on.
func mitigationFaults() []struct {
	Name  string
	Specs []fault.Spec
} {
	return []struct {
		Name  string
		Specs []fault.Spec
	}{
		{"healthy", nil},
		{"disk-slow", []fault.Spec{{
			Kind: fault.DiskSlow, Target: "ost0",
			Start: 8 * sim.Second, Duration: 20 * sim.Second, Severity: 3,
		}}},
		{"mds-storm", []fault.Spec{{
			Kind: fault.MDSStorm, Target: "mdt",
			Start: 8 * sim.Second, Duration: 20 * sim.Second, Severity: 4,
		}}},
	}
}

// mitigationMix is one interference workload mix: n looping instances of an
// IO500 task across the interference nodes.
type mitigationMix struct {
	Name      string
	Task      io500.Task
	Instances int
	Ranks     int
}

func mitigationMixes() []mitigationMix {
	return []mitigationMix{
		{"read-burst", io500.IorEasyRead, 2, 6},
		{"write-burst", io500.IorEasyWrite, 2, 6},
		{"meta-storm", io500.MdtHardWrite, 2, 6},
	}
}

// mitigationArrival delays the interference start so every run opens clean:
// the forecaster sees the transition coming instead of starting mid-storm.
const mitigationArrival = 6 * sim.Second

// mitigationPolicies is the matrix's policy axis, "none" baseline first.
var mitigationPolicies = []string{"none", "reactive", "proactive", "defer"}

// newMitigationPolicy constructs the named policy from the study config.
func newMitigationPolicy(cfg MitigationConfig, name string) (mitigate.Policy, error) {
	common := []mitigate.PolicyOption{
		mitigate.WithReleaseAfter(cfg.ReleaseAfter),
		mitigate.WithLead(cfg.Lead),
	}
	switch name {
	case "reactive":
		return mitigate.NewReactiveThrottle(common...)
	case "proactive":
		return mitigate.NewProactiveThrottle(common...)
	case "defer":
		return mitigate.NewDeferBurst(common...)
	}
	return nil, fmt.Errorf("experiments: unknown mitigation policy %q", name)
}

// mitigationRun measures one cell: the protected target against one fault
// episode and (optionally) one interference mix, under one policy ("" or
// "none" runs unprotected). Everything — cluster assembly, delayed arrival,
// fault schedule, controller decisions — is deterministic, so the cell is a
// pure function of (cfg, trained weights).
func mitigationRun(cfg MitigationConfig, fw *core.Framework, fc *forecast.Forecaster,
	specs []fault.Spec, mix *mitigationMix, policyName string) MitigationCell {

	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	if err := cl.InjectFaults(specs); err != nil {
		panic(fmt.Sprintf("experiments: mitigation faults: %v", err))
	}

	interfBytes := new(int64)
	targetDone := new(sim.Time)
	var stops []func()

	var ctrl *mitigate.Controller
	spec := mitigationTarget()
	target := &workload.Runner{
		FS: cl.FS, Name: "protected", Nodes: spec.Nodes, Ranks: spec.Ranks, Gen: spec.Gen,
		OnRecord: func(rec workload.Record) {
			if ctrl != nil {
				ctrl.Record(rec)
			}
		},
		OnDone: func() {
			*targetDone = cl.Eng.Now()
			for _, s := range stops {
				s()
			}
			// The protection job is over: detach the controller so the
			// interfering workloads run free (and deferred work resumes)
			// once the target no longer needs shielding.
			if ctrl != nil {
				ctrl.Stop()
			}
		},
	}

	var interfRunners []*workload.Runner
	if mix != nil {
		p := interferenceParams(cfg.Scale)
		for i := 0; i < mix.Instances; i++ {
			pi := p
			pi.Dir = fmt.Sprintf("/mit-%s%d", mix.Name, i)
			pi.Ranks = mix.Ranks
			r := &workload.Runner{
				FS: cl.FS, Name: fmt.Sprintf("%s%d", mix.Name, i),
				Nodes: interferenceNodes, Ranks: mix.Ranks,
				Gen: io500.New(mix.Task, pi), Loop: true,
				OnRecord: func(rec workload.Record) {
					if *targetDone == 0 {
						*interfBytes += rec.Op.Size
					}
				},
			}
			interfRunners = append(interfRunners, r)
			stops = append(stops, r.Stop)
		}
	}

	if policyName != "" && policyName != "none" {
		policy, err := newMitigationPolicy(cfg, policyName)
		if err != nil {
			panic(err.Error())
		}
		var victims []mitigate.Victim
		if policyName == "defer" {
			for _, r := range interfRunners {
				victims = append(victims, mitigate.Victim{Runner: r})
			}
		} else {
			for _, node := range interferenceNodes {
				victims = append(victims, mitigate.Victim{Client: cl.FS.Client(node)})
			}
		}
		opts := []mitigate.ControllerOption{mitigate.WithThrottleBps(cfg.ThrottleBps)}
		if policyName != "reactive" && fc != nil {
			opts = append(opts, mitigate.WithForecaster(fc))
		}
		ctrl, err = mitigate.NewController(cl, fw, victims, cfg.Window, policy, opts...)
		if err != nil {
			panic(fmt.Sprintf("experiments: mitigation controller: %v", err))
		}
	}

	// Interference arrives mid-stream; the target starts immediately.
	for _, r := range interfRunners {
		r := r
		cl.Eng.Schedule(mitigationArrival, r.Start)
	}
	target.Start()
	cl.Eng.RunUntil(cfg.MaxTime)

	cell := MitigationCell{
		Policy:         policyName,
		TargetDuration: *targetDone,
		InterferenceMB: float64(*interfBytes) / 1e6,
	}
	if cell.TargetDuration == 0 {
		cell.TargetDuration = cfg.MaxTime // did not finish; charge the cap
	}
	if ctrl != nil {
		ctrl.Stop()
		cell.Engagements = ctrl.Engagements()
		cell.ThrottledWindows = ctrl.ThrottledWindows()
		cell.DeferredMB = float64(ctrl.BytesDeferred()) / 1e6
	}
	return cell
}

// mitigationTrain collects the protected workload's labelled window stream
// (the lead-time study's delayed-arrival sweep, so runs transition
// mid-stream) and trains the classifier plus the forecaster feeding the
// proactive policies.
func mitigationTrain(cfg MitigationConfig) (*core.Framework, *forecast.Forecaster) {
	dc := DatasetConfig{
		Scale:   cfg.Scale,
		Window:  cfg.Window,
		MaxTime: cfg.MaxTime,
		Reps:    cfg.Reps,
		Seed:    cfg.Seed,
	}
	dc.applyDefaults()
	ds := collectFor(dc, "protected", mitigationTarget(), leadtimeSweep(cfg.Scale))

	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{
		Seed:  cfg.Seed,
		Train: ml.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed},
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: mitigation classifier: %v", err))
	}
	fc, _, err := core.TrainForecasterCtx(context.Background(), ds, core.ForecasterConfig{
		Forecast: forecast.Config{History: cfg.History, Horizons: cfg.Horizons},
		Train:    ml.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed},
		Seed:     cfg.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: mitigation forecaster: %v", err))
	}
	return fw, fc
}

// MitigationStudy runs the actuation-loop experiment end to end: train the
// classifier and forecaster on the protected workload, then sweep the
// policy × fault × workload matrix, measuring each cell against the
// no-action baseline (slowdown avoided) and against the interfering
// workloads' free-running volume (throughput cost). Fully deterministic:
// same config, same CSV, bit for bit.
func MitigationStudy(cfg MitigationConfig) *MitigationResult {
	cfg.applyDefaults()
	fw, fc := mitigationTrain(cfg)

	faults := mitigationFaults()
	mixes := mitigationMixes()
	res := &MitigationResult{
		Policies:         mitigationPolicies,
		FrameworkDigest:  weightsDigest(fw.ExportWeights()),
		ForecasterDigest: weightsDigest(fc.ExportWeights()),
	}
	for _, m := range mixes {
		res.Mixes = append(res.Mixes, m.Name)
	}

	for _, f := range faults {
		res.Faults = append(res.Faults, f.Name)
		// Fault-matched reference: the target alone under this episode.
		alone := mitigationRun(cfg, fw, fc, f.Specs, nil, "")
		for _, m := range mixes {
			var none MitigationCell
			for _, policy := range mitigationPolicies {
				cell := mitigationRun(cfg, fw, fc, f.Specs, &m, policy)
				cell.Fault, cell.Mix = f.Name, m.Name
				cell.AloneDuration = alone.TargetDuration
				cell.Slowdown = float64(cell.TargetDuration) / float64(alone.TargetDuration)
				if policy == "none" {
					none = cell
				} else {
					cell.Avoided = none.Slowdown - cell.Slowdown
					if none.InterferenceMB > 0 {
						cell.CostPct = 100 * (none.InterferenceMB - cell.InterferenceMB) / none.InterferenceMB
					}
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// Render draws one block per fault×mix cell, the no-action row first.
func (r *MitigationResult) Render() string {
	var b strings.Builder
	b.WriteString("Mitigation policy × fault × workload study\n")
	fmt.Fprintf(&b, "(classifier %s, forecaster %s)\n", r.FrameworkDigest, r.ForecasterDigest)
	for _, f := range r.Faults {
		for _, m := range r.Mixes {
			first := r.Cell(f, m, "none")
			if first == nil {
				continue
			}
			fmt.Fprintf(&b, "\n%s × %s (target alone: %s)\n", f, m, fmtSeconds(first.AloneDuration))
			fmt.Fprintf(&b, "  %-12s%12s%10s%10s%12s%10s%8s%10s%12s\n",
				"policy", "target", "slowdown", "avoided", "interf MB", "cost %", "engage", "thr win", "defer MB")
			for _, p := range r.Policies {
				c := r.Cell(f, m, p)
				if c == nil {
					continue
				}
				fmt.Fprintf(&b, "  %-12s%12s%9.2fx%+10.2f%12.1f%10.1f%8d%10d%12.1f\n",
					c.Policy, fmtSeconds(c.TargetDuration), c.Slowdown, c.Avoided,
					c.InterferenceMB, c.CostPct, c.Engagements, c.ThrottledWindows, c.DeferredMB)
			}
		}
	}
	b.WriteString("\n(avoided: no-action slowdown minus this policy's; cost %: interference\n" +
		" volume the policy cost the background workloads vs running free)\n")
	return b.String()
}

// CSV emits one row per cell plus the weight-digest pins.
func (r *MitigationResult) CSV() string {
	var b strings.Builder
	b.WriteString("fault,mix,policy,alone_s,target_s,slowdown,avoided,interference_mb,cost_pct,engagements,windows_throttled,deferred_mb\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%s,%s,%.3f,%.3f,%.4f,%+.4f,%.1f,%.1f,%d,%d,%.1f\n",
			c.Fault, c.Mix, c.Policy, sim.ToSeconds(c.AloneDuration), sim.ToSeconds(c.TargetDuration),
			c.Slowdown, c.Avoided, c.InterferenceMB, c.CostPct,
			c.Engagements, c.ThrottledWindows, c.DeferredMB)
	}
	fmt.Fprintf(&b, "digest,framework,%s\n", r.FrameworkDigest)
	fmt.Fprintf(&b, "digest,forecaster,%s\n", r.ForecasterDigest)
	return b.String()
}
