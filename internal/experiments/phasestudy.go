package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

// PhaseStudyConfig controls the multi-phase slowdown study.
type PhaseStudyConfig struct {
	Scale Scale
	// Interference is the single background task every phase runs under
	// (default ior-hard-write, the paper's §II-A example).
	Interference io500.Task
	Instances    int // default 3
	Ranks        int // target ranks, default 2
	MaxTime      sim.Time
	interfSet    bool
}

func (c *PhaseStudyConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Instances == 0 {
		c.Instances = 3
	}
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.MaxTime == 0 {
		c.MaxTime = 600 * sim.Second
	}
}

// PhaseStudyResult reports per-phase slowdown of one multi-phase run.
type PhaseStudyResult struct {
	Interference string
	Phases       []string
	// BaselineTime and ContendedTime are per-phase I/O time sums.
	BaselineTime  []sim.Time
	ContendedTime []sim.Time
}

// Slowdown returns phase i's slowdown.
func (r *PhaseStudyResult) Slowdown(i int) float64 {
	if r.BaselineTime[i] == 0 {
		return 1
	}
	return float64(r.ContendedTime[i]) / float64(r.BaselineTime[i])
}

// Spread returns min and max per-phase slowdown — the paper's point is that
// they differ wildly under one interference type.
func (r *PhaseStudyResult) Spread() (lo, hi float64) {
	lo, hi = r.Slowdown(0), r.Slowdown(0)
	for i := range r.Phases {
		s := r.Slowdown(i)
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return lo, hi
}

// Render draws the per-phase table.
func (r *PhaseStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Phase study: IO500 task sequence under %s interference\n", r.Interference)
	fmt.Fprintf(&b, "  %-18s%14s%14s%12s\n", "phase", "alone", "contended", "slowdown")
	for i, p := range r.Phases {
		fmt.Fprintf(&b, "  %-18s%14s%14s%11.2fx\n",
			p, fmtSeconds(r.BaselineTime[i]), fmtSeconds(r.ContendedTime[i]), r.Slowdown(i))
	}
	lo, hi := r.Spread()
	fmt.Fprintf(&b, "  per-phase slowdown spans %.2fx .. %.2fx under one interference type\n", lo, hi)
	return b.String()
}

// CSV emits the rows.
func (r *PhaseStudyResult) CSV() string {
	var b strings.Builder
	b.WriteString("phase,alone_s,contended_s,slowdown\n")
	for i, p := range r.Phases {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f\n", p,
			sim.ToSeconds(r.BaselineTime[i]), sim.ToSeconds(r.ContendedTime[i]), r.Slowdown(i))
	}
	return b.String()
}

// PhaseStudy reproduces §II-A's closing observation: one application that
// chronologically runs the seven IO500 tasks experiences per-phase slowdowns
// spanning more than an order of magnitude under a single interference type
// (the paper quotes 1.0x to 40.9x under ior-hard-write).
func PhaseStudy(cfg PhaseStudyConfig) *PhaseStudyResult {
	cfg.applyDefaults()
	mk := func() *workload.Sequence {
		var gens []workload.Generator
		for _, task := range io500.AllTasks() {
			gens = append(gens, io500.New(task, io500.Params{
				Dir:           "/phase-" + task.String(),
				Ranks:         cfg.Ranks,
				EasyFileBytes: cfg.Scale.Bytes(32 << 20),
				HardOps:       cfg.Scale.Count(300),
				MdtFiles:      cfg.Scale.Count(200),
			}))
		}
		return workload.NewSequence("io500-sequence", gens...)
	}

	run := func(seq *workload.Sequence, interf []core.InterferenceSpec) []sim.Time {
		res := mustRun(core.Scenario{
			Target:       core.TargetSpec{Gen: seq, Nodes: targetNodes, Ranks: cfg.Ranks},
			Interference: interf,
			MaxTime:      cfg.MaxTime,
		})
		perPhase := make([]sim.Time, seq.Phases())
		for _, rec := range res.Records {
			perPhase[seq.PhaseOf(rec.Rank, rec.Seq)] += rec.Duration()
		}
		return perPhase
	}

	interfTask := cfg.Interference
	if !cfg.interfSet && interfTask == io500.IorEasyRead {
		// Default: the paper's ior-hard-write example. (IorEasyRead is the
		// zero Task value; an explicit IorEasyRead via WithInterference
		// keeps it.)
		interfTask = io500.IorHardWrite
	}
	baseSeq := mk()
	base := run(baseSeq, nil)
	contSeq := mk()
	specs := IO500Instances(interfTask, cfg.Instances, 6,
		interferenceParams(cfg.Scale), "/phasebg")
	contended := run(contSeq, specs)

	res := &PhaseStudyResult{
		Interference:  interfTask.String(),
		BaselineTime:  base,
		ContendedTime: contended,
	}
	for _, t := range io500.AllTasks() {
		res.Phases = append(res.Phases, t.String())
	}
	return res
}

// WithInterference fixes the interference task explicitly (including
// ior-easy-read, which is otherwise the ambiguous zero value).
func (c PhaseStudyConfig) WithInterference(t io500.Task) PhaseStudyConfig {
	c.Interference = t
	c.interfSet = true
	return c
}
