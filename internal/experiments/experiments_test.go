package experiments

import (
	"strings"
	"testing"

	"quanterference/internal/label"
	"quanterference/internal/sim"
	"quanterference/internal/workload/apps"
	"quanterference/internal/workload/io500"
)

// Small scale keeps the suite fast while preserving every mechanism.
const testScale = Scale(0.25)

func TestTableIShape(t *testing.T) {
	r := TableI(TableIConfig{Scale: testScale, Instances: 2, RanksPerInstance: 4, TargetRanks: 2})
	if len(r.Tasks) != 7 || len(r.Slowdown) != 7 {
		t.Fatalf("matrix shape %dx%d", len(r.Tasks), len(r.Slowdown))
	}
	idx := func(name string) int {
		for i, t := range r.Tasks {
			if t == name {
				return i
			}
		}
		return -1
	}
	er, ew, hw, mew := idx("ior-easy-read"), idx("ior-easy-write"), idx("ior-hard-write"), idx("mdt-easy-write")
	// Read-vs-read contention: the diagonal read cell must dominate mdt
	// interference on the same row (the paper's first key insight).
	if r.Slowdown[er][er] < 1.5 {
		t.Errorf("read-vs-read slowdown %.2f, want >1.5", r.Slowdown[er][er])
	}
	if r.Slowdown[er][er] <= r.Slowdown[er][mew] {
		t.Errorf("read row: read interference (%.2f) should exceed mdt-easy (%.2f)",
			r.Slowdown[er][er], r.Slowdown[er][mew])
	}
	// Writes suffer under write interference.
	if r.Slowdown[ew][hw] < 1.5 && r.Slowdown[ew][ew] < 1.5 {
		t.Errorf("write-vs-write too weak: %v", r.Slowdown[ew])
	}
	// mdt-easy-write interference barely affects data tasks (paper col 6).
	if r.Slowdown[er][mew] > 1.5 {
		t.Errorf("mdt-easy should not hurt reads: %.2f", r.Slowdown[er][mew])
	}
	// Renders carry all tasks.
	out := r.Render()
	for _, task := range r.Tasks {
		if !strings.Contains(out, task) {
			t.Fatalf("render missing %s", task)
		}
	}
	if !strings.Contains(r.CSV(), "standalone_s") {
		t.Fatal("csv missing header")
	}
	if _, _, v := r.MaxCell(); v <= 1 {
		t.Fatalf("max cell %.2f", v)
	}
}

// Figure 1 runs at full scale: the Enzo runs are cheap and the
// metadata-vs-data contrast needs realistic op volumes.
func fig1Cfg() Figure1Config {
	return Figure1Config{Scale: 1, Cycles: 5, Ranks: 2}
}

func TestFigure1aGradedImpact(t *testing.T) {
	r := Figure1a(fig1Cfg())
	if len(r.Labels) != 4 || len(r.Times) != 4 {
		t.Fatalf("labels %v", r.Labels)
	}
	base, one, three := r.MeanLatency(0), r.MeanLatency(1), r.MeanLatency(3)
	t.Logf("mean latency: base=%.3f 1x=%.3f 3x=%.3f ms", base, one, three)
	if one <= base {
		t.Fatal("1x interference should slow ops")
	}
	if three <= one {
		t.Fatal("3x interference should slow ops more than 1x")
	}
	// Mixed op kinds present (Figure 1's premise).
	kinds := map[string]bool{}
	for _, k := range r.Kinds {
		kinds[k] = true
	}
	for _, want := range []string{"read", "write", "open", "close", "stat"} {
		if !kinds[want] {
			t.Fatalf("baseline window missing %s ops: %v", want, kinds)
		}
	}
	if !strings.Contains(r.CSV(), "baseline_ms") {
		t.Fatal("csv missing series")
	}
}

func TestFigure1bTypeDependentImpact(t *testing.T) {
	// Smooth=1 keeps per-op latencies raw: smoothing blends the data-op
	// spikes into neighbouring metadata ops and hides the contrast.
	cfg := fig1Cfg()
	cfg.Smooth = 1
	r := Figure1b(cfg)
	if len(r.Labels) != 3 {
		t.Fatalf("labels %v", r.Labels)
	}
	// Both interference types must slow something, and there must exist
	// ops hit harder by the metadata workload than the data workload
	// (the paper's arrows).
	data, meta := r.Times[1], r.Times[2]
	base := r.Times[0]
	metaWins := 0
	for i := range base {
		if base[i] <= 0 {
			continue
		}
		if meta[i] > data[i] && meta[i] > 1.5*base[i] {
			metaWins++
		}
	}
	if metaWins == 0 {
		t.Fatal("no ops more affected by metadata-intensive interference")
	}
	t.Logf("%d ops hit harder by mdt-easy than ior-easy-write", metaWins)
}

func TestTableIIMetrics(t *testing.T) {
	r := TableII(testScale)
	if len(r.Names) != len(r.Groups) {
		t.Fatal("groups misaligned")
	}
	if len(r.Values) != 7 {
		t.Fatalf("targets %d", len(r.Values))
	}
	nonzero := 0
	for _, row := range r.Values {
		for _, v := range row {
			if v != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("no live metric values captured")
	}
	out := r.Render()
	for _, section := range []string{"I/O speed", "Device metrics", "Read/Write queue"} {
		if !strings.Contains(out, section) {
			t.Fatalf("render missing section %q", section)
		}
	}
}

func TestIO500DatasetAndBinaryModel(t *testing.T) {
	cfg := DatasetConfig{Scale: 0.5, Seed: 1}
	ds := IO500Dataset(cfg)
	t.Logf("IO500 dataset: %d samples, balance %v", ds.Len(), ds.ClassCounts())
	counts := ds.ClassCounts()
	if counts[0] < 10 || counts[1] < 10 {
		t.Fatalf("class starvation: %v", counts)
	}
	ev := TrainEval("io500", ds, cfg.Bins, 60, 1)
	t.Logf("\n%s", ev.Render())
	if acc := ev.Confusion.Accuracy(); acc < 0.7 {
		t.Fatalf("accuracy %.3f", acc)
	}
	// Figure 4 path: rebin to 3 classes without re-simulating.
	ev4 := Figure4From(ds, cfg, 40)
	if len(ev4.ClassNames) != 3 {
		t.Fatalf("rebin classes %v", ev4.ClassNames)
	}
	if ev4.Samples != ds.Len() {
		t.Fatal("rebin lost samples")
	}
}

func TestDLIODatasetNegativeHeavy(t *testing.T) {
	cfg := DatasetConfig{Scale: testScale, Seed: 4}
	ds := DLIODataset(cfg)
	counts := ds.ClassCounts()
	t.Logf("DLIO dataset: %d samples, balance %v", ds.Len(), counts)
	if ds.Len() < 20 {
		t.Fatalf("dataset too small: %d", ds.Len())
	}
	// The paper's DLIO dataset skews negative (compute gaps dilute
	// interference exposure): 14,724 negative vs 3,702 positive.
	if counts[0] <= counts[1] {
		t.Errorf("DLIO balance should skew negative: %v", counts)
	}
}

func TestAppDatasetsAndOpenPMDSmall(t *testing.T) {
	cfg := DatasetConfig{Scale: testScale, Seed: 5}
	enzo := AppDataset(apps.Enzo, cfg)
	pmd := AppDataset(apps.OpenPMD, cfg)
	t.Logf("enzo n=%d %v; openpmd n=%d %v", enzo.Len(), enzo.ClassCounts(), pmd.Len(), pmd.ClassCounts())
	if enzo.Len() == 0 || pmd.Len() == 0 {
		t.Fatal("empty app dataset")
	}
	// The paper attributes OpenPMD's weaker model to its small sample
	// count; our collection reproduces that imbalance.
	if pmd.Len() >= enzo.Len() {
		t.Fatalf("openpmd (%d) should have fewer samples than enzo (%d)", pmd.Len(), enzo.Len())
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := DatasetConfig{Scale: testScale, Seed: 6}
	ds := IO500Dataset(cfg)
	arch := AblationArchitecture(ds, cfg, 25)
	if len(arch.Evals) != 2 {
		t.Fatalf("arch evals %d", len(arch.Evals))
	}
	feats := AblationFeatures(ds, cfg, 25)
	if len(feats.Evals) != 3 {
		t.Fatalf("feature evals %d", len(feats.Evals))
	}
	t.Logf("\n%s", feats.CSV())
	// Feature widths must actually differ.
	if !strings.Contains(feats.Render(), "client-side only") {
		t.Fatal("render missing config")
	}
	for _, r := range []*AblationResult{arch, feats} {
		if !strings.Contains(r.CSV(), "accuracy") {
			t.Fatal("csv header missing")
		}
	}
}

func TestAblationWindowSweep(t *testing.T) {
	cfg := DatasetConfig{Scale: 0.1, Seed: 7}
	r := AblationWindow(cfg, 15, []sim.Time{sim.Second, 2 * sim.Second})
	if len(r.Evals) != 2 {
		t.Fatalf("window evals %d", len(r.Evals))
	}
}

func TestInterferenceSweepIsolation(t *testing.T) {
	sweep := InterferenceSweep(testScale)
	if len(sweep) < 6 {
		t.Fatalf("sweep size %d", len(sweep))
	}
	seen := map[string]bool{}
	for _, v := range sweep {
		if seen[v.Name] {
			t.Fatalf("duplicate variant %s", v.Name)
		}
		seen[v.Name] = true
		if len(v.Interference) == 0 {
			t.Fatalf("variant %s empty", v.Name)
		}
	}
}

func TestTrainEvalDefaultsBins(t *testing.T) {
	cfg := DatasetConfig{Scale: 0.1, Seed: 8}
	ds := IO500Dataset(cfg)
	ev := TrainEval("defaults", ds, label.Bins{}, 10, 8)
	if len(ev.ClassNames) != 2 {
		t.Fatalf("default bins gave %v", ev.ClassNames)
	}
}

func TestExtensionArchitectures(t *testing.T) {
	cfg := DatasetConfig{Scale: 0.25, Seed: 9}
	ds := IO500Dataset(cfg)
	r := ExtensionArchitectures(ds, cfg, 25)
	if len(r.Evals) != 3 {
		t.Fatalf("evals=%d", len(r.Evals))
	}
	for _, e := range r.Evals {
		if e.Confusion.Total() == 0 {
			t.Fatalf("%s produced no predictions", e.Name)
		}
	}
	if !strings.Contains(r.Render(), "self-attention") {
		t.Fatal("render missing attention row")
	}
}

func TestExtensionRegression(t *testing.T) {
	cfg := DatasetConfig{Scale: 0.25, Seed: 10}
	ds := IO500Dataset(cfg)
	r := ExtensionRegression(ds, cfg, 40)
	t.Logf("regressor MAE=%.3f doublings, binned acc=%.3f vs classifier %.3f",
		r.MAELog2, r.BinnedEval.Confusion.Accuracy(), r.ClassifierEval.Confusion.Accuracy())
	if r.MAELog2 <= 0 {
		t.Fatal("MAE not computed")
	}
	if r.BinnedEval.Confusion.Total() != r.ClassifierEval.Confusion.Total() {
		t.Fatal("regressor and classifier evaluated on different test sets")
	}
	if !strings.Contains(r.CSV(), "regressor_binned") {
		t.Fatal("csv missing rows")
	}
}

func TestCaseStudyMitigation(t *testing.T) {
	r := CaseStudyMitigation(CaseStudyConfig{Scale: 0.5, Seed: 5, Epochs: 30})
	if len(r.Modes) != 4 {
		t.Fatalf("modes=%d", len(r.Modes))
	}
	byName := map[string]CaseStudyMode{}
	for _, m := range r.Modes {
		byName[m.Name] = m
	}
	none := byName["no mitigation"]
	pred := byName["predictive throttle"]
	static := byName["static throttle"]
	t.Logf("\n%s", r.Render())
	// Prediction-driven throttling must recover target performance...
	if pred.TargetDuration >= none.TargetDuration {
		t.Fatalf("predictive throttling did not help: %v vs %v",
			pred.TargetDuration, none.TargetDuration)
	}
	// ...while costing the background workloads less than always-on
	// throttling does.
	if pred.InterferenceMB <= static.InterferenceMB {
		t.Fatalf("predictive (%0.1f MB) should preserve more interference work than static (%0.1f MB)",
			pred.InterferenceMB, static.InterferenceMB)
	}
	if pred.Engagements == 0 {
		t.Fatal("predictive mode never engaged")
	}
	// The burst buffer insulates the app entirely, and its drain point is
	// strictly after the app-visible completion.
	bbMode := byName["burst buffer"]
	if bbMode.TargetDuration >= none.TargetDuration {
		t.Fatal("burst buffer did not insulate the target")
	}
	if bbMode.DrainDuration <= bbMode.TargetDuration {
		t.Fatalf("drain (%v) must come after app completion (%v)",
			bbMode.DrainDuration, bbMode.TargetDuration)
	}
	if !strings.Contains(r.CSV(), "predictive") {
		t.Fatal("csv missing rows")
	}
}

func TestRobustnessAcrossSeeds(t *testing.T) {
	cfg := DatasetConfig{Scale: 0.25, Seed: 12}
	ds := IO500Dataset(cfg)
	r := Robustness(ds, label.BinaryBins(), 25, 3, 100)
	if len(r.Seeds) != 3 || len(r.Accuracies) != 3 {
		t.Fatalf("runs=%d", len(r.Seeds))
	}
	if r.MeanAccuracy() < 0.6 {
		t.Fatalf("mean accuracy %.3f", r.MeanAccuracy())
	}
	if r.StdAccuracy() < 0 {
		t.Fatal("negative std")
	}
	if !strings.Contains(r.CSV(), "mean") || !strings.Contains(r.Render(), "seeds") {
		t.Fatal("rendering broken")
	}
}

func TestPhaseStudySpread(t *testing.T) {
	r := PhaseStudy(PhaseStudyConfig{Scale: 0.5})
	if len(r.Phases) != 7 {
		t.Fatalf("phases=%d", len(r.Phases))
	}
	lo, hi := r.Spread()
	t.Logf("spread %.2fx .. %.2fx under %s", lo, hi, r.Interference)
	// The paper's §II-A point: an order of magnitude between the least
	// and most affected phase of one application.
	if hi < 5*lo {
		t.Fatalf("per-phase impact not spread enough: %.2f..%.2f", lo, hi)
	}
	if !strings.Contains(r.Render(), "ior-hard-write") {
		t.Fatal("render missing interference name")
	}
	if !strings.Contains(r.CSV(), "slowdown") {
		t.Fatal("csv missing header")
	}
	// Explicit interference selection, including the zero-valued task.
	r2 := PhaseStudy(PhaseStudyConfig{Scale: 0.25}.WithInterference(io500.IorEasyRead))
	if r2.Interference != "ior-easy-read" {
		t.Fatalf("explicit interference ignored: %s", r2.Interference)
	}
}
