package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// tinyMitigationConfig MUST stay in lockstep with the `make mitigate-smoke`
// flags (cmd/figures -only mitigation -scale 0.08 -epochs 6 -seed 3): the
// smoke target compares the figures CSV byte-for-byte against the same
// golden this test pins.
func tinyMitigationConfig() MitigationConfig {
	return MitigationConfig{
		Scale:  0.08,
		Reps:   1,
		Epochs: 6,
		Seed:   3,
	}
}

// tinyMitigationStudy caches one study run for the whole package: the shape
// and determinism tests both inspect it, and only the determinism test pays
// for a second, fresh run to compare against. A full study is ~40 simulated
// scenarios plus training, which matters under -race.
var tinyMitigationStudy = sync.OnceValue(func() *MitigationResult {
	return MitigationStudy(tinyMitigationConfig())
})

// TestMitigationStudyShape runs the matrix at smoke scale and checks its
// structure and the study's acceptance bar: every fault×mix cell has all
// four policy rows, the policies actually engage somewhere, and the
// forecast-driven proactive policy achieves at least the reactive policy's
// slowdown-avoided on at least one cell.
func TestMitigationStudyShape(t *testing.T) {
	r := tinyMitigationStudy()
	if len(r.Faults) != 3 || len(r.Mixes) != 3 || len(r.Policies) != 4 {
		t.Fatalf("matrix shape %v × %v × %v", r.Faults, r.Mixes, r.Policies)
	}
	if want := len(r.Faults) * len(r.Mixes) * len(r.Policies); len(r.Cells) != want {
		t.Fatalf("cells %d, want %d", len(r.Cells), want)
	}
	engagedSomewhere := false
	for _, f := range r.Faults {
		for _, m := range r.Mixes {
			for _, p := range r.Policies {
				c := r.Cell(f, m, p)
				if c == nil {
					t.Fatalf("missing cell %s×%s×%s", f, m, p)
				}
				if c.TargetDuration <= 0 {
					t.Fatalf("cell %s×%s×%s has no target duration", f, m, p)
				}
				if c.Slowdown < 0.99 {
					t.Fatalf("cell %s×%s×%s slowdown %.3f < 1 — alone reference suspect", f, m, p, c.Slowdown)
				}
				if p == "none" && (c.Engagements != 0 || c.Avoided != 0) {
					t.Fatalf("no-action cell %s×%s actuated: %+v", f, m, c)
				}
				if c.Engagements > 0 {
					engagedSomewhere = true
				}
			}
		}
	}
	if !engagedSomewhere {
		t.Fatal("no policy engaged on any cell — controller wiring dead")
	}
	if !r.ProactiveMatchesReactive() {
		t.Fatal("proactive policy never matched reactive slowdown-avoided on any cell")
	}

	out := r.Render()
	for _, want := range []string{"Mitigation policy", "none", "reactive", "proactive", "defer", "avoided"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestMitigationDeterministic pins bit-identical same-seed CSVs and the
// committed golden. Refresh with
// UPDATE_GOLDEN=1 go test ./internal/experiments -run TestMitigationDeterministic.
func TestMitigationDeterministic(t *testing.T) {
	r1 := tinyMitigationStudy()
	r2 := MitigationStudy(tinyMitigationConfig())
	csv1, csv2 := r1.CSV(), r2.CSV()
	if csv1 != csv2 {
		t.Fatalf("same-seed runs diverged:\n--- run 1\n%s\n--- run 2\n%s", csv1, csv2)
	}
	if !strings.HasPrefix(csv1, "fault,mix,policy,alone_s,target_s,slowdown,avoided,interference_mb,cost_pct,engagements,windows_throttled,deferred_mb\n") {
		t.Fatalf("csv header wrong:\n%s", csv1)
	}

	golden := filepath.Join("testdata", "mitigation_golden.csv")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(csv1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (refresh with UPDATE_GOLDEN=1): %v", err)
	}
	if string(want) != csv1 {
		t.Fatalf("mitigation matrix drifted from golden (refresh with UPDATE_GOLDEN=1 if intended):\n--- golden\n%s\n--- got\n%s", want, csv1)
	}
}
