package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/label"
	"quanterference/internal/par"
	"quanterference/internal/plot"
	"quanterference/internal/sim"
	"quanterference/internal/stats"
	"quanterference/internal/workload"
	"quanterference/internal/workload/apps"
	"quanterference/internal/workload/io500"
)

// Figure1Config controls the Enzo per-operation latency experiment.
type Figure1Config struct {
	Scale Scale
	// Cutoff keeps only ops starting within this span of the baseline
	// (the paper plots the first 50 s).
	Cutoff sim.Time
	// Smooth is the moving-average window over op index (default 9).
	Smooth int
	// Ranks sizes the Enzo run (default 2).
	Ranks int
	// Cycles is the number of Enzo output cycles (default 6).
	Cycles int
	// MaxTime caps each run.
	MaxTime sim.Time
}

func (c *Figure1Config) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Cutoff == 0 {
		c.Cutoff = 50 * sim.Second
	}
	if c.Smooth == 0 {
		c.Smooth = 9
	}
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.Cycles == 0 {
		c.Cycles = 6
	}
	if c.MaxTime == 0 {
		c.MaxTime = 300 * sim.Second
	}
}

// Figure1Result is one panel: per-op time series per run label.
type Figure1Result struct {
	// Panel is "a" (levels) or "b" (types).
	Panel string
	// Kinds is the op type at each index (read/write/open/...).
	Kinds []string
	// Labels name the runs (e.g. "baseline", "1x ior-easy-write").
	Labels []string
	// Times[label][op] is the smoothed op latency in milliseconds.
	Times [][]float64
}

func enzoTarget(cfg Figure1Config) core.TargetSpec {
	return core.TargetSpec{
		Gen: apps.New(apps.Enzo, apps.Params{
			Dir:             "/enzo",
			Ranks:           cfg.Ranks,
			Cycles:          cfg.Cycles,
			CheckpointBytes: cfg.Scale.Bytes(8 << 20),
		}),
		Nodes: targetNodes,
		Ranks: cfg.Ranks,
	}
}

// figure1Run measures one Enzo run and returns its records.
func figure1Run(cfg Figure1Config, interf []core.InterferenceSpec) []workload.Record {
	res := mustRun(core.Scenario{
		Target:       enzoTarget(cfg),
		Interference: interf,
		MaxTime:      cfg.MaxTime,
	})
	return res.Records
}

// Figure1a reproduces Figure 1(a): Enzo op latencies under 1, 2, and 3
// concurrent ior-easy-write instances versus baseline.
func Figure1a(cfg Figure1Config) *Figure1Result {
	cfg.applyDefaults()
	res := &Figure1Result{Panel: "a"}
	runs := make([][]workload.Record, 4)
	res.Labels = []string{"baseline", "1x ior-easy-write", "2x ior-easy-write", "3x ior-easy-write"}
	par.Map(4, func(n int) {
		var specs []core.InterferenceSpec
		if n > 0 {
			specs = IO500Instances(io500.IorEasyWrite, n, 6,
				interferenceParams(cfg.Scale), fmt.Sprintf("/bgw%d", n))
		}
		runs[n] = figure1Run(cfg, specs)
	})
	res.collate(runs[0], runs, cfg)
	return res
}

// Figure1b reproduces Figure 1(b): data-intensive vs metadata-intensive
// interference types.
func Figure1b(cfg Figure1Config) *Figure1Result {
	cfg.applyDefaults()
	res := &Figure1Result{Panel: "b"}
	base := figure1Run(cfg, nil)
	dataSpecs := IO500Instances(io500.IorEasyWrite, 2, 6,
		interferenceParams(cfg.Scale), "/bgdata")
	// Metadata pressure needs more concurrent streams to saturate the
	// MDS's few cores the way mdt-easy with many processes does.
	metaSpecs := IO500Instances(io500.MdtEasyWrite, 3, 8,
		interferenceParams(cfg.Scale), "/bgmeta")
	runs := [][]workload.Record{base, figure1Run(cfg, dataSpecs), figure1Run(cfg, metaSpecs)}
	res.Labels = []string{"baseline", "ior-easy-write", "mdt-easy-write"}
	res.collate(base, runs, cfg)
	return res
}

// collate matches each run's ops to the baseline op sequence (first Cutoff
// seconds) and produces smoothed latency series.
func (r *Figure1Result) collate(base []workload.Record, runs [][]workload.Record, cfg Figure1Config) {
	// Baseline op order within the cutoff.
	var keys []label.Key
	for _, rec := range base {
		if rec.Start <= cfg.Cutoff {
			keys = append(keys, label.KeyOf(rec))
			r.Kinds = append(r.Kinds, rec.Op.Kind.String())
		}
	}
	for _, recs := range runs {
		durs := make(map[label.Key]float64, len(recs))
		for _, rec := range recs {
			durs[label.KeyOf(rec)] = sim.ToSeconds(rec.Duration()) * 1e3
		}
		series := make([]float64, len(keys))
		for i, k := range keys {
			series[i] = durs[k] // 0 when the run never reached this op
		}
		r.Times = append(r.Times, stats.MovingAverage(series, cfg.Smooth))
	}
}

// CSV emits op index, kind, and one column per run.
func (r *Figure1Result) CSV() string {
	var b strings.Builder
	b.WriteString("op,kind")
	for _, l := range r.Labels {
		b.WriteString("," + strings.ReplaceAll(l, " ", "_") + "_ms")
	}
	b.WriteString("\n")
	for i, kind := range r.Kinds {
		fmt.Fprintf(&b, "%d,%s", i, kind)
		for s := range r.Times {
			fmt.Fprintf(&b, ",%.4f", r.Times[s][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Render summarizes each series: mean latency and the share of ops slowed
// at least 2x relative to baseline (non-uniform impact is the paper's
// point).
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1(%s): %d ops from the baseline window\n", r.Panel, len(r.Kinds))
	baseSeries := r.Times[0]
	for s, lbl := range r.Labels {
		series := r.Times[s]
		var mean float64
		slowed, unaffected := 0, 0
		for i := range series {
			mean += series[i]
			if baseSeries[i] > 0 {
				ratio := series[i] / baseSeries[i]
				if ratio >= 2 {
					slowed++
				} else if ratio < 1.2 {
					unaffected++
				}
			}
		}
		if len(series) > 0 {
			mean /= float64(len(series))
		}
		fmt.Fprintf(&b, "  %-22s mean %8.3f ms   ops>=2x: %4d   ops<1.2x: %4d\n",
			lbl, mean, slowed, unaffected)
	}
	return b.String()
}

// MeanLatency returns a series' mean op latency in ms (for tests/benches).
func (r *Figure1Result) MeanLatency(series int) float64 {
	return stats.Mean(r.Times[series])
}

// SVG renders the smoothed per-op latency series.
func (r *Figure1Result) SVG() string {
	series := make([]plot.Series, len(r.Labels))
	for i, l := range r.Labels {
		series[i] = plot.Series{Name: l, Ys: r.Times[i]}
	}
	return plot.LineChart(fmt.Sprintf("Figure 1(%s): Enzo per-operation I/O time", r.Panel),
		"operation index (baseline order)", "latency (ms, smoothed)", series, 860, 420)
}
