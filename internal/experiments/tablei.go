package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/hw"
	"quanterference/internal/par"
	"quanterference/internal/plot"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// TableIConfig controls the Table I reproduction.
type TableIConfig struct {
	// Scale shrinks workload volumes (default 1.0).
	Scale Scale
	// Instances is the number of concurrent interfering runs (the paper
	// keeps 3 active).
	Instances int
	// RanksPerInstance sizes each interfering run (default 4).
	RanksPerInstance int
	// TargetRanks sizes the measured task (default 4).
	TargetRanks int
	// MaxTime caps each run (default 300 s).
	MaxTime sim.Time
	// Profile selects the hardware profile every run simulates (a name from
	// hw.Names; default "" = the paper testbed). Unknown names panic, like
	// every other misconfiguration in this package.
	Profile string
	// Tasks restricts the matrix to a task subset (default all seven) — the
	// transfer study uses a trimmed matrix per profile.
	Tasks []io500.Task
}

func (c *TableIConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Instances == 0 {
		c.Instances = 3
	}
	if c.RanksPerInstance == 0 {
		c.RanksPerInstance = 6
	}
	if c.TargetRanks == 0 {
		c.TargetRanks = 4
	}
	if c.MaxTime == 0 {
		c.MaxTime = 300 * sim.Second
	}
}

// TableIResult is the slowdown matrix.
type TableIResult struct {
	Tasks      []string
	Standalone []sim.Time  // solo duration per task
	Slowdown   [][]float64 // [target task][interference task]
}

// TableI reproduces the paper's Table I: each of the seven IO500 tasks run
// standalone and against each task as looping background interference; every
// cell is duration(interfered) / duration(standalone).
func TableI(cfg TableIConfig) *TableIResult {
	cfg.applyDefaults()
	profile := resolveProfile(cfg.Profile)
	tasks := cfg.Tasks
	if len(tasks) == 0 {
		tasks = io500.AllTasks()
	}
	res := &TableIResult{
		Standalone: make([]sim.Time, len(tasks)),
		Slowdown:   make([][]float64, len(tasks)),
	}
	targetParams := io500.Params{
		Dir:           "/target",
		Ranks:         cfg.TargetRanks,
		EasyFileBytes: cfg.Scale.Bytes(32 << 20),
		HardOps:       cfg.Scale.Count(300),
		MdtFiles:      cfg.Scale.Count(200),
	}
	for _, t := range tasks {
		res.Tasks = append(res.Tasks, t.String())
	}
	// Every cell is an independent simulation: 7 standalone runs plus a
	// 7x7 grid, fanned out across cores.
	par.Map(len(tasks), func(i int) {
		base := mustRun(targetScenario(tasks[i], targetParams, nil, cfg.MaxTime, profile))
		if !base.Finished {
			panic(fmt.Sprintf("experiments: standalone %s exceeded MaxTime", tasks[i]))
		}
		res.Standalone[i] = base.Duration
		res.Slowdown[i] = make([]float64, len(tasks))
	})
	n := len(tasks)
	par.Map(n*n, func(k int) {
		i, j := k/n, k%n
		interf := tasks[j]
		specs := IO500Instances(interf, cfg.Instances, cfg.RanksPerInstance,
			interferenceParams(cfg.Scale), fmt.Sprintf("/bg-%s", interf))
		run := mustRun(targetScenario(tasks[i], targetParams, specs, cfg.MaxTime, profile))
		res.Slowdown[i][j] = float64(run.Duration) / float64(res.Standalone[i])
	})
	return res
}

func targetScenario(task io500.Task, p io500.Params, interf []core.InterferenceSpec, maxTime sim.Time, profile hw.Profile) core.Scenario {
	return core.Scenario{
		Hardware: profile,
		Target: core.TargetSpec{
			Gen:   io500.New(task, p),
			Nodes: targetNodes,
			Ranks: p.Ranks,
		},
		Interference: interf,
		MaxTime:      maxTime,
	}
}

// resolveProfile maps a profile name to its hw.Profile, panicking on unknown
// names ("" is the paper profile).
func resolveProfile(name string) hw.Profile {
	if name == "" {
		return hw.PaperProfile()
	}
	p, err := hw.ByName(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return p
}

// Render draws the matrix like the paper's Table I.
func (r *TableIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "task\\interference")
	for _, t := range r.Tasks {
		fmt.Fprintf(&b, "%16s", t)
	}
	fmt.Fprintf(&b, "%12s\n", "standalone")
	for i, t := range r.Tasks {
		fmt.Fprintf(&b, "%-16s", t)
		for j := range r.Tasks {
			fmt.Fprintf(&b, "%16.3f", r.Slowdown[i][j])
		}
		fmt.Fprintf(&b, "%12s\n", fmtSeconds(r.Standalone[i]))
	}
	return b.String()
}

// CSV emits the matrix for plotting.
func (r *TableIResult) CSV() string {
	var b strings.Builder
	b.WriteString("task")
	for _, t := range r.Tasks {
		b.WriteString("," + t)
	}
	b.WriteString(",standalone_s\n")
	for i, t := range r.Tasks {
		b.WriteString(t)
		for j := range r.Tasks {
			fmt.Fprintf(&b, ",%.4f", r.Slowdown[i][j])
		}
		fmt.Fprintf(&b, ",%.4f\n", sim.ToSeconds(r.Standalone[i]))
	}
	return b.String()
}

// MaxCell returns the most impacted (row, col, value) — the paper highlights
// these per row.
func (r *TableIResult) MaxCell() (task, interference string, slowdown float64) {
	bi, bj := 0, 0
	for i := range r.Slowdown {
		for j := range r.Slowdown[i] {
			if r.Slowdown[i][j] > r.Slowdown[bi][bj] {
				bi, bj = i, j
			}
		}
	}
	return r.Tasks[bi], r.Tasks[bj], r.Slowdown[bi][bj]
}

// SVG renders the matrix as a log-shaded heatmap.
func (r *TableIResult) SVG() string {
	return plot.Heatmap("Table I: slowdown under cross-task interference",
		r.Tasks, r.Tasks, r.Slowdown, 980, 420)
}
