package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/monitor/servermon"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// TableIIResult is the server-side metric catalogue (the paper's Table II)
// with live values from one sampled window of a busy run, demonstrating the
// collection path end to end.
type TableIIResult struct {
	// Names are the per-second series of §III-B.
	Names []string
	// Groups maps each series to its Table II section.
	Groups []string
	// Values[target][feature] is one finalized window's vector.
	Values [][]float64
	// TargetNames label the rows (ost0..ost5, mdt).
	TargetNames []string
	Window      int
}

// TableII runs a mixed workload and captures one window of every server-side
// metric from every target.
func TableII(scale Scale) *TableIIResult {
	if scale == 0 {
		scale = 1
	}
	p := io500.Params{Dir: "/t2", Ranks: 4,
		EasyFileBytes: scale.Bytes(32 << 20), MdtFiles: scale.Count(200)}
	res := mustRun(core.Scenario{
		Target: core.TargetSpec{
			Gen:   io500.New(io500.IorEasyWrite, p),
			Nodes: targetNodes,
			Ranks: 4,
		},
		Interference: IO500Instances(io500.MdtHardWrite, 1, 4, interferenceParams(scale), "/t2bg"),
		MaxTime:      60 * sim.Second,
	})
	// Pick the busiest finalized window (max total activity).
	best, bestSum := -1, -1.0
	for idx, vecs := range res.ServerWindows {
		sum := 0.0
		for _, v := range vecs {
			for _, x := range v {
				sum += x
			}
		}
		if sum > bestSum {
			best, bestSum = idx, sum
		}
	}
	out := &TableIIResult{
		Names:  servermon.FeatureNames(),
		Window: best,
	}
	groups := map[string]string{
		"srv_completed_ios":       "I/O speed",
		"srv_sectors_read":        "Device metrics",
		"srv_sectors_written":     "Device metrics",
		"srv_reads_merged":        "Read/Write queue",
		"srv_writes_merged":       "Read/Write queue",
		"srv_queued_reqs":         "Read/Write queue",
		"srv_queue_time":          "Read/Write queue",
		"srv_weighted_queue_time": "Read/Write queue",
	}
	for _, n := range out.Names {
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(n, "_sum"), "_mean"), "_std")
		out.Groups = append(out.Groups, groups[base])
	}
	for t := 0; t < res.NTargets; t++ {
		if t == res.NTargets-1 {
			out.TargetNames = append(out.TargetNames, "mdt")
		} else {
			out.TargetNames = append(out.TargetNames, fmt.Sprintf("ost%d", t))
		}
	}
	if best >= 0 {
		out.Values = res.ServerWindows[best]
	}
	return out
}

// Render draws the catalogue with one value column per target.
func (r *TableIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II server-side metrics (window %d)\n", r.Window)
	fmt.Fprintf(&b, "%-18s%-26s", "section", "metric")
	for _, t := range r.TargetNames {
		fmt.Fprintf(&b, "%12s", t)
	}
	b.WriteString("\n")
	for f, name := range r.Names {
		fmt.Fprintf(&b, "%-18s%-26s", r.Groups[f], name)
		for t := range r.TargetNames {
			fmt.Fprintf(&b, "%12.2f", r.Values[t][f])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV emits the same data for tooling.
func (r *TableIIResult) CSV() string {
	var b strings.Builder
	b.WriteString("section,metric")
	for _, t := range r.TargetNames {
		b.WriteString("," + t)
	}
	b.WriteString("\n")
	for f, name := range r.Names {
		fmt.Fprintf(&b, "%s,%s", r.Groups[f], name)
		for t := range r.TargetNames {
			fmt.Fprintf(&b, ",%.4f", r.Values[t][f])
		}
		b.WriteString("\n")
	}
	return b.String()
}
