package experiments

import (
	"context"
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/ml"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// LeadTimeConfig controls the forecasting study: how much accuracy a
// slowdown prediction loses as it moves from "this window" (the paper's
// classifier) to k windows ahead (the forecast sequence head), per hardware
// profile.
type LeadTimeConfig struct {
	// Profiles are the hardware profiles under study (default paper only;
	// the cross-profile sweep multiplies cost by its length).
	Profiles []string
	// Scale shrinks workload volumes (default 1.0).
	Scale Scale
	// Window is the monitor aggregation window (default 1 s).
	Window sim.Time
	// MaxTime caps each collection run (default 240 s).
	MaxTime sim.Time
	// Reps repeats the sweep with rotated OST placement (default 2).
	Reps int
	// Epochs trains the baseline classifier and every forecast head
	// (default 40).
	Epochs int
	Seed   int64
	// History is the forecaster's input length in windows (default 4).
	History int
	// Horizons are the forecast leads studied, in windows (default 1, 2, 4).
	Horizons []int
}

func (c *LeadTimeConfig) applyDefaults() {
	if len(c.Profiles) == 0 {
		c.Profiles = []string{"paper"}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Window == 0 {
		c.Window = sim.Second
	}
	if c.MaxTime == 0 {
		c.MaxTime = 240 * sim.Second
	}
	if c.Reps == 0 {
		c.Reps = 2
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.History == 0 {
		c.History = 4
	}
	if len(c.Horizons) == 0 {
		c.Horizons = []int{1, 2, 4}
	}
}

// LeadTimeResult holds the lead-time-vs-accuracy curves, one per profile.
// All per-horizon slices are indexed [profile][horizon] and parallel to
// Horizons.
type LeadTimeResult struct {
	Profiles []string
	History  int
	Horizons []int
	// Samples is each profile's window dataset size; LaggedSamples[i][j] is
	// how many of those windows are lead-labelable at Horizons[j] (runs
	// shorter than History+Horizon contribute nothing).
	Samples       []int
	LaggedSamples [][]int
	// Baseline is the current-window classifier's holdout accuracy — the
	// k=0 point every forecast horizon is measured against. Baseline and
	// forecast splits share a seed, so the comparison is like for like.
	Baseline []float64
	// Accuracy[i][j] is the forecast head's holdout accuracy predicting
	// Horizons[j] windows ahead on profile i.
	Accuracy [][]float64
	// AlarmPrecision and AlarmRecall score the degrading class (>=2x bin):
	// of the early warnings raised, how many were right, and of the
	// degradations coming, how many were warned about.
	AlarmPrecision [][]float64
	AlarmRecall    [][]float64
	// WeightsDigest is a sha256 over each profile's forecaster weights —
	// the determinism pin: same seed, same digest, bit for bit.
	WeightsDigest []string
}

// weightsDigest hashes weight tensors bit-exactly (float64 little-endian),
// so any single-ulp divergence between same-seed runs changes the digest.
// It is the same identity the serving layer stamps on replies
// (ml.WeightsDigest), so a study's pinned digest can be checked against a
// live /v1/healthz.
func weightsDigest(weights [][]float64) string {
	return ml.WeightsDigest(weights)
}

// leadtimeSweep is the interference schedule for forecasting runs. Unlike
// the transfer sweep, most variants hold their arrival back by several
// windows (StartAt), so every run opens with a clean stretch and then
// degrades mid-stream — the transition a forecaster is supposed to call
// ahead of time. Staggered delays also keep the two classes balanced enough
// that BalanceClasses oversampling stays sane.
func leadtimeSweep(s Scale) []core.Variant {
	p := interferenceParams(s)
	mk := func(task io500.Task, n, ranks int, dir string, startAt sim.Time) core.Variant {
		specs := IO500Instances(task, n, ranks, p, dir)
		for i := range specs {
			specs[i].StartAt = startAt
		}
		name := fmt.Sprintf("%s-x%dr%d", task, n, ranks)
		if startAt > 0 {
			name = fmt.Sprintf("%s-d%s", name, fmtSeconds(startAt))
		}
		return core.Variant{Name: name, Interference: specs}
	}
	return []core.Variant{
		mk(io500.IorEasyRead, 1, 4, "/lt0", 0),
		mk(io500.IorEasyRead, 2, 4, "/lt1", 4*sim.Second),
		mk(io500.IorEasyWrite, 1, 4, "/lt2", 7*sim.Second),
		mk(io500.IorHardWrite, 1, 4, "/lt3", 10*sim.Second),
		mk(io500.MdtHardWrite, 1, 4, "/lt4", 0),
	}
}

// leadtimeDataset collects one profile's labelled window stream for
// forecasting. Unlike the transfer study's trimmed targets (sized for cheap
// collection, often finishing inside one window), forecasting needs runs
// spanning at least History+Horizon consecutive windows — and longer than
// the sweep's arrival delays. The targets are therefore sized in time
// (roughly 15-20 unimpeded windows) and deliberately NOT scaled by
// cfg.Scale: the simulator runs in virtual time, so a fixed-size target
// costs the same wall clock at every scale, stays inside MaxTime at full
// scale, and keeps smoke runs long enough to lead-label. Scale still trims
// the interference workloads, which is what varies degradation.
func leadtimeDataset(cfg LeadTimeConfig, profile string) *dataset.Dataset {
	dc := DatasetConfig{
		Scale:   cfg.Scale,
		Window:  cfg.Window,
		MaxTime: cfg.MaxTime,
		Reps:    cfg.Reps,
		Seed:    cfg.Seed,
		Profile: profile,
	}
	dc.applyDefaults()
	variants := leadtimeSweep(cfg.Scale)
	var all *dataset.Dataset
	for _, task := range []io500.Task{io500.IorEasyWrite, io500.IorHardWrite} {
		p := io500.Params{
			Dir:           "/lt-" + task.String(),
			Ranks:         4,
			EasyFileBytes: 2 << 30,
			HardOps:       8000,
			MdtFiles:      1000,
		}
		target := core.TargetSpec{Gen: io500.New(task, p), Nodes: targetNodes, Ranks: 4}
		ds := collectFor(dc, task.String(), target, variants)
		if all == nil {
			all = ds
		} else {
			all.Merge(ds)
		}
	}
	all.Profile = profile
	return all
}

// LeadTimeStudy runs the forecasting experiment end to end, per profile:
// collect the labelled window stream (long-running targets against the
// trimmed interference sweep), train the current-window classifier as the
// k=0 baseline, train one forecast head per horizon
// (core.TrainForecasterCtx), and score each head's class accuracy and
// degradation-alarm precision/recall on its holdout.
func LeadTimeStudy(cfg LeadTimeConfig) *LeadTimeResult {
	cfg.applyDefaults()
	n, m := len(cfg.Profiles), len(cfg.Horizons)
	res := &LeadTimeResult{
		Profiles:       cfg.Profiles,
		History:        cfg.History,
		Horizons:       cfg.Horizons,
		Samples:        make([]int, n),
		LaggedSamples:  make([][]int, n),
		Baseline:       make([]float64, n),
		Accuracy:       make([][]float64, n),
		AlarmPrecision: make([][]float64, n),
		AlarmRecall:    make([][]float64, n),
		WeightsDigest:  make([]string, n),
	}

	for i, profile := range cfg.Profiles {
		ds := leadtimeDataset(cfg, profile)
		res.Samples[i] = ds.Len()

		_, cm, err := core.TrainFrameworkE(ds, core.FrameworkConfig{
			Seed:  cfg.Seed,
			Train: ml.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: leadtime baseline on %s: %v", profile, err))
		}
		res.Baseline[i] = cm.Accuracy()

		fc, cms, err := core.TrainForecasterCtx(context.Background(), ds, core.ForecasterConfig{
			Forecast: forecast.Config{History: cfg.History, Horizons: cfg.Horizons},
			Train:    ml.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed},
			Seed:     cfg.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: leadtime forecaster on %s: %v", profile, err))
		}
		res.LaggedSamples[i] = make([]int, m)
		res.Accuracy[i] = make([]float64, m)
		res.AlarmPrecision[i] = make([]float64, m)
		res.AlarmRecall[i] = make([]float64, m)
		for j, k := range cfg.Horizons {
			res.LaggedSamples[i][j] = forecast.BuildLagged(ds, cfg.History, k).Len()
			res.Accuracy[i][j] = cms[j].Accuracy()
			res.AlarmPrecision[i][j] = cms[j].Precision(1)
			res.AlarmRecall[i][j] = cms[j].Recall(1)
		}
		res.WeightsDigest[i] = weightsDigest(fc.ExportWeights())
	}
	return res
}

// Delta returns Accuracy[i][j] - Baseline[i]: what forecasting Horizons[j]
// windows ahead costs (negative) or gains over classifying the current
// window.
func (r *LeadTimeResult) Delta(i, j int) float64 {
	return r.Accuracy[i][j] - r.Baseline[i]
}

// Render draws one lead-time-vs-accuracy table per profile, k=0 baseline
// row first.
func (r *LeadTimeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Forecast lead time vs accuracy (history %d windows)\n", r.History)
	for i, p := range r.Profiles {
		fmt.Fprintf(&b, "\nProfile %s (%d windows, forecaster %s)\n", p, r.Samples[i], r.WeightsDigest[i])
		fmt.Fprintf(&b, "%-10s%10s%10s%10s%12s%12s\n",
			"lead", "samples", "accuracy", "delta", "alarm-prec", "alarm-rec")
		fmt.Fprintf(&b, "%-10s%10d%10.3f%10s%12s%12s\n",
			"now", r.Samples[i], r.Baseline[i], "-", "-", "-")
		for j, k := range r.Horizons {
			fmt.Fprintf(&b, "%-10s%10d%10.3f%+10.3f%12.3f%12.3f\n",
				fmt.Sprintf("+%dw", k), r.LaggedSamples[i][j], r.Accuracy[i][j],
				r.Delta(i, j), r.AlarmPrecision[i][j], r.AlarmRecall[i][j])
		}
	}
	return b.String()
}

// CSV emits one row per (profile, horizon) point — horizon 0 is the
// current-window baseline — plus one digest row per profile.
func (r *LeadTimeResult) CSV() string {
	var b strings.Builder
	b.WriteString("profile,horizon,samples,accuracy,delta_vs_now,alarm_precision,alarm_recall\n")
	for i, p := range r.Profiles {
		fmt.Fprintf(&b, "%s,0,%d,%.4f,0.0000,,\n", p, r.Samples[i], r.Baseline[i])
		for j, k := range r.Horizons {
			fmt.Fprintf(&b, "%s,%d,%d,%.4f,%+.4f,%.4f,%.4f\n",
				p, k, r.LaggedSamples[i][j], r.Accuracy[i][j], r.Delta(i, j),
				r.AlarmPrecision[i][j], r.AlarmRecall[i][j])
		}
	}
	for i, p := range r.Profiles {
		fmt.Fprintf(&b, "digest,%s,%s\n", p, r.WeightsDigest[i])
	}
	return b.String()
}
