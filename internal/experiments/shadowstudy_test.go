package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestShadowStudy runs the study at smoke scale and checks its shape: the
// convergence table covers every candidate at every snapshot, accuracies are
// cumulative live scores in [0,1], the deepest challenger is scored on the
// same sample count as the champion, and Render/CSV carry the verdict.
func TestShadowStudy(t *testing.T) {
	ds := IO500Dataset(DatasetConfig{Scale: 0.25, Seed: 31})
	cfg := ShadowStudyConfig{Seed: 31, MinSamples: 8, Snapshots: 3}
	r := ShadowStudy(ds, cfg)

	if len(r.Names) != 4 || r.Names[0] != "champion" {
		t.Fatalf("candidates %v", r.Names)
	}
	if r.TrainSamples+r.StreamSamples != ds.Len() || r.StreamSamples == 0 {
		t.Fatalf("split %d+%d of %d", r.TrainSamples, r.StreamSamples, ds.Len())
	}
	if len(r.SnapshotAt) == 0 || r.SnapshotAt[len(r.SnapshotAt)-1] != r.StreamSamples {
		t.Fatalf("snapshots %v never reach the stream end %d", r.SnapshotAt, r.StreamSamples)
	}
	for i, row := range r.Accuracy {
		if len(row) != len(r.Names) {
			t.Fatalf("snapshot %d has %d columns, want %d", i, len(row), len(r.Names))
		}
		for j, a := range row {
			if a < 0 || a > 1 {
				t.Fatalf("snapshot %d candidate %s accuracy %.3f", i, r.Names[j], a)
			}
		}
	}
	if r.Verdict.Promote && r.Winner == "" {
		t.Fatalf("promoting verdict without a winner: %+v", r.Verdict)
	}

	out := r.Render()
	for _, want := range []string{"Shadow evaluation", "champion", "c1", "labeled", "verdict:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "labeled,candidate,epochs,accuracy\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "digest,champion,") || !strings.Contains(csv, "verdict,") {
		t.Fatalf("csv missing digest/verdict rows:\n%s", csv)
	}
}

// TestShadowStudyDeterministic pins the whole result — digests, snapshot
// accuracies, verdict — across two same-seed runs.
func TestShadowStudyDeterministic(t *testing.T) {
	ds := IO500Dataset(DatasetConfig{Scale: 0.25, Seed: 32})
	cfg := ShadowStudyConfig{Seed: 32, MinSamples: 8}
	r1 := ShadowStudy(ds, cfg)
	r2 := ShadowStudy(ds, cfg)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed shadow studies diverged:\n%+v\n%+v", r1, r2)
	}
}
