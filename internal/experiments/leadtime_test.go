package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinyLeadTimeConfig() LeadTimeConfig {
	return LeadTimeConfig{
		Scale:    0.08,
		Reps:     1,
		Epochs:   6,
		Seed:     3,
		History:  3,
		Horizons: []int{1, 2, 4},
	}
}

// TestLeadTimeCurves runs the study at smoke scale and checks the curve's
// shape: every horizon produces lead-labeled samples and a real accuracy,
// and the near-term forecast (k=1) lands within 10 points of the
// current-window classifier — the acceptance bar for "forecasting is nearly
// as good as nowcasting one window out".
func TestLeadTimeCurves(t *testing.T) {
	r := LeadTimeStudy(tinyLeadTimeConfig())
	if len(r.Profiles) != 1 || r.Profiles[0] != "paper" {
		t.Fatalf("profiles %v", r.Profiles)
	}
	if len(r.Horizons) != 3 {
		t.Fatalf("horizons %v", r.Horizons)
	}
	if r.Baseline[0] <= 0.5 {
		t.Fatalf("baseline classifier accuracy %.3f — dataset degenerate", r.Baseline[0])
	}
	for j, k := range r.Horizons {
		if r.LaggedSamples[0][j] == 0 {
			t.Fatalf("horizon %d has no lead-labeled samples", k)
		}
		if a := r.Accuracy[0][j]; a <= 0 || a > 1 {
			t.Fatalf("horizon %d accuracy %.3f", k, a)
		}
	}
	if d := r.Delta(0, 0); d < -0.10 {
		t.Fatalf("k=1 forecast accuracy %.3f is %.3f below the %.3f baseline (>10 points)",
			r.Accuracy[0][0], -d, r.Baseline[0])
	}

	out := r.Render()
	for _, want := range []string{"Forecast lead time", "now", "+1w", "+4w", "alarm-prec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "profile,horizon,samples,accuracy,delta_vs_now,alarm_precision,alarm_recall\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "digest,paper,") {
		t.Fatalf("csv missing weights digest:\n%s", csv)
	}
}

// TestLeadTimeDeterministic is the determinism pin: two same-seed runs must
// agree bit for bit — identical CSV (every accuracy) and identical forecaster
// weight digests — and match the committed golden. Refresh with
// UPDATE_GOLDEN=1 go test ./internal/experiments -run TestLeadTimeDeterministic.
func TestLeadTimeDeterministic(t *testing.T) {
	r1 := LeadTimeStudy(tinyLeadTimeConfig())
	r2 := LeadTimeStudy(tinyLeadTimeConfig())
	csv1, csv2 := r1.CSV(), r2.CSV()
	if csv1 != csv2 {
		t.Fatalf("same-seed runs diverged:\n--- run 1\n%s\n--- run 2\n%s", csv1, csv2)
	}
	if r1.WeightsDigest[0] != r2.WeightsDigest[0] {
		t.Fatalf("forecaster weights diverged: %s vs %s", r1.WeightsDigest[0], r2.WeightsDigest[0])
	}

	golden := filepath.Join("testdata", "leadtime_golden.csv")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(csv1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (refresh with UPDATE_GOLDEN=1): %v", err)
	}
	if string(want) != csv1 {
		t.Fatalf("leadtime curves drifted from golden (refresh with UPDATE_GOLDEN=1 if intended):\n--- golden\n%s\n--- got\n%s", want, csv1)
	}
}
