package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/par"
	"quanterference/internal/plot"
	"quanterference/internal/workload/apps"
)

// ModelEval is one trained-model evaluation: the content of one confusion-
// matrix panel in Figures 3-5.
type ModelEval struct {
	Name       string
	ClassNames []string
	Confusion  *ml.Confusion
	// TrainCounts/TestCounts report the class balance, which the paper
	// quotes for each dataset.
	TrainCounts []int
	TestCounts  []int
	Samples     int
}

// F1 returns the positive-class F1 for binary panels, or macro-F1 otherwise.
func (e *ModelEval) F1() float64 {
	if len(e.ClassNames) == 2 {
		return e.Confusion.F1(1)
	}
	return e.Confusion.MacroF1()
}

// Render draws the panel.
func (e *ModelEval) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, train balance %v, test balance %v)\n",
		e.Name, e.Samples, e.TrainCounts, e.TestCounts)
	b.WriteString(e.Confusion.Render(e.ClassNames))
	return b.String()
}

// CSV emits the confusion matrix.
func (e *ModelEval) CSV() string {
	var b strings.Builder
	b.WriteString("true\\pred")
	for _, n := range e.ClassNames {
		b.WriteString("," + n)
	}
	b.WriteString("\n")
	for i, row := range e.Confusion.M {
		b.WriteString(e.ClassNames[i])
		for _, v := range row {
			fmt.Fprintf(&b, ",%d", v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "accuracy,%.4f\nmacro_f1,%.4f\n", e.Confusion.Accuracy(), e.Confusion.MacroF1())
	return b.String()
}

// TrainEval trains the paper's model on a dataset and evaluates it on the
// held-out 20%, producing one panel.
func TrainEval(name string, ds *dataset.Dataset, bins label.Bins, epochs int, seed int64) *ModelEval {
	return TrainEvalWith(name, ds, bins, epochs, seed, false)
}

// TrainEvalWith additionally selects the flat-MLP ablation baseline.
func TrainEvalWith(name string, ds *dataset.Dataset, bins label.Bins, epochs int, seed int64, flat bool) *ModelEval {
	if epochs == 0 {
		epochs = 60
	}
	if bins.Thresholds == nil {
		bins = label.BinaryBins()
	}
	classNames := make([]string, bins.Classes())
	for c := range classNames {
		classNames[c] = bins.Name(c)
	}
	train, test := ds.Split(0.2, seed^0x5717)
	// TrainFramework re-splits identically (same seed), so counts match.
	_, cm := mustTrain(ds, core.FrameworkConfig{
		Bins: bins, Seed: seed, Flat: flat,
		Train: ml.TrainConfig{Epochs: epochs, Seed: seed},
	})
	return &ModelEval{
		Name:        name,
		ClassNames:  classNames,
		Confusion:   cm,
		TrainCounts: train.ClassCounts(),
		TestCounts:  test.ClassCounts(),
		Samples:     ds.Len(),
	}
}

// Figure3a trains and tests the binary model on the IO500 dataset.
func Figure3a(cfg DatasetConfig, epochs int) *ModelEval {
	cfg.applyDefaults()
	ds := IO500Dataset(cfg)
	return TrainEval("Figure 3(a) IO500 binary", ds, cfg.Bins, epochs, cfg.Seed)
}

// Figure3b trains and tests the binary model on the DLIO dataset.
func Figure3b(cfg DatasetConfig, epochs int) *ModelEval {
	cfg.applyDefaults()
	ds := DLIODataset(cfg)
	return TrainEval("Figure 3(b) DLIO binary", ds, cfg.Bins, epochs, cfg.Seed)
}

// Figure4 rebins the IO500 dataset to the paper's 3-class severity setting
// (<2x, 2-5x, >=5x) and trains the multi-class model.
func Figure4(cfg DatasetConfig, epochs int) *ModelEval {
	cfg.applyDefaults()
	binary := IO500Dataset(cfg)
	return Figure4From(binary, cfg, epochs)
}

// Figure4From rebins an already collected IO500 dataset (saves the
// simulation cost when Figure 3(a) ran first).
func Figure4From(ds *dataset.Dataset, cfg DatasetConfig, epochs int) *ModelEval {
	cfg.applyDefaults()
	bins := label.SeverityBins()
	multi := ds.Rebin(bins.Classes(), bins.Label)
	return TrainEval("Figure 4 IO500 3-class", multi, bins, epochs, cfg.Seed)
}

// Figure5 trains and tests one binary model per real application: AMReX and
// Enzo (data-intensive) and OpenPMD (metadata-intensive, few samples).
func Figure5(cfg DatasetConfig, epochs int) []*ModelEval {
	cfg.applyDefaults()
	sel := []apps.App{apps.AMReX, apps.Enzo, apps.OpenPMD}
	out := make([]*ModelEval, len(sel))
	par.Map(len(sel), func(i int) {
		ds := AppDataset(sel[i], cfg)
		out[i] = TrainEval("Figure 5 "+sel[i].String(), ds, cfg.Bins, epochs, cfg.Seed)
	})
	return out
}

// SVG renders the confusion matrix panel.
func (e *ModelEval) SVG() string {
	return plot.Confusion(e.Name, e.ClassNames, e.Confusion.M)
}
