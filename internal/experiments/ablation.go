package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/dataset"
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
)

// AblationResult compares several model/feature/window configurations on
// held-out data — the design choices DESIGN.md calls out.
type AblationResult struct {
	Name  string
	Evals []*ModelEval
}

// Render draws one line per configuration plus each panel.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", r.Name)
	for _, e := range r.Evals {
		fmt.Fprintf(&b, "  %-34s accuracy %.3f  F1 %.3f\n", e.Name, e.Confusion.Accuracy(), e.F1())
	}
	for _, e := range r.Evals {
		b.WriteString("\n")
		b.WriteString(e.Render())
	}
	return b.String()
}

// CSV emits one row per configuration.
func (r *AblationResult) CSV() string {
	var b strings.Builder
	b.WriteString("config,accuracy,f1\n")
	for _, e := range r.Evals {
		fmt.Fprintf(&b, "%s,%.4f,%.4f\n",
			strings.ReplaceAll(e.Name, ",", ";"), e.Confusion.Accuracy(), e.F1())
	}
	return b.String()
}

// AblationArchitecture compares the paper's kernel-based model against a
// flat MLP over the concatenated per-server vectors (§III-C design choice).
func AblationArchitecture(ds *dataset.Dataset, cfg DatasetConfig, epochs int) *AblationResult {
	cfg.applyDefaults()
	return &AblationResult{
		Name: "kernel-based vs flat MLP",
		Evals: []*ModelEval{
			TrainEvalWith("kernel-based (paper)", ds, cfg.Bins, epochs, cfg.Seed, false),
			TrainEvalWith("flat MLP baseline", ds, cfg.Bins, epochs, cfg.Seed, true),
		},
	}
}

// AblationFeatures compares the full client+server vectors against each
// feature group alone (the paper's claim that the interaction of application
// behaviour and server state is what predicts impact).
func AblationFeatures(ds *dataset.Dataset, cfg DatasetConfig, epochs int) *AblationResult {
	cfg.applyDefaults()
	clientIdx := make([]int, clientmon.NumFeatures)
	for i := range clientIdx {
		clientIdx[i] = i
	}
	serverIdx := make([]int, window.NumFeatures-clientmon.NumFeatures)
	for i := range serverIdx {
		serverIdx[i] = clientmon.NumFeatures + i
	}
	return &AblationResult{
		Name: "feature groups",
		Evals: []*ModelEval{
			TrainEval("client + server (paper)", ds, cfg.Bins, epochs, cfg.Seed),
			TrainEval("client-side only", ds.SelectFeatures(clientIdx), cfg.Bins, epochs, cfg.Seed),
			TrainEval("server-side only", ds.SelectFeatures(serverIdx), cfg.Bins, epochs, cfg.Seed),
		},
	}
}

// AblationWindow sweeps the aggregation window size, re-collecting the IO500
// dataset per size (label quality and feature granularity both shift).
func AblationWindow(cfg DatasetConfig, epochs int, windows []sim.Time) *AblationResult {
	cfg.applyDefaults()
	if len(windows) == 0 {
		windows = []sim.Time{sim.Second, 2 * sim.Second, 4 * sim.Second}
	}
	res := &AblationResult{Name: "window size"}
	for _, w := range windows {
		c := cfg
		c.Window = w
		ds := IO500Dataset(c)
		name := fmt.Sprintf("window %ds (n=%d)", w/sim.Second, ds.Len())
		res.Evals = append(res.Evals, TrainEval(name, ds, c.Bins, epochs, c.Seed))
	}
	return res
}
