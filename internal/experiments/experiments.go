// Package experiments contains one driver per table and figure of the
// paper's evaluation, each running the full pipeline on the simulated
// cluster and rendering the same rows/series the paper reports:
//
//	Table I    — IO500 task slowdown matrix under cross-task interference.
//	Figure 1   — Enzo per-operation I/O times under varying interference
//	             levels (a) and types (b).
//	Table II   — the server-side metric catalogue, with live sampled values.
//	Figure 3   — binary interference prediction on IO500 (a) and DLIO (b).
//	Figure 4   — 3-class severity prediction on IO500.
//	Figure 5   — binary prediction on AMReX, Enzo, and OpenPMD.
//	Ablations  — kernel vs flat model, client/server feature groups, and
//	             window-size sensitivity (DESIGN.md design choices).
package experiments

import (
	"fmt"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/ml"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// mustRun executes a scenario, panicking on scenario or topology errors. The
// experiment drivers run inside par.Map workers where a panic is the
// established failure mode for impossible configurations — every scenario
// here is built from constants, so an error is a programming bug, not input.
func mustRun(s core.Scenario) *core.RunResult {
	res, err := core.RunE(s)
	if err != nil {
		panic(err)
	}
	return res
}

// mustTrain trains the framework, panicking on empty datasets or invalid
// configs for the same reason as mustRun.
func mustTrain(ds *dataset.Dataset, cfg core.FrameworkConfig) (*core.Framework, *ml.Confusion) {
	fw, cm, err := core.TrainFrameworkE(ds, cfg)
	if err != nil {
		panic(err)
	}
	return fw, cm
}

// Scale shrinks or grows every experiment's workload volume. 1.0 is the
// default used by cmd/figures; tests and benchmarks use smaller values.
type Scale float64

// bytes scales a byte volume, keeping at least one stripe unit.
func (s Scale) Bytes(b int64) int64 {
	v := int64(float64(b) * float64(s))
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

// count scales an op count, keeping at least a handful.
func (s Scale) Count(n int) int {
	v := int(float64(n) * float64(s))
	if v < 8 {
		v = 8
	}
	return v
}

// interferenceNodes are the compute nodes hosting interference instances;
// targets run on c0 and c1.
var interferenceNodes = []string{"c2", "c3", "c4", "c5", "c6"}

// targetNodes host the measured application.
var targetNodes = []string{"c0", "c1"}

// IO500Instances builds n looping instances of an IO500 task, each with the
// given rank count, placed on the interference nodes — the analogue of the
// paper keeping "3 concurrent runs active" per node.
func IO500Instances(task io500.Task, n, ranks int, p io500.Params, dirPrefix string) []core.InterferenceSpec {
	var out []core.InterferenceSpec
	for i := 0; i < n; i++ {
		pi := p
		pi.Dir = fmt.Sprintf("%s/inst%d", dirPrefix, i)
		pi.Ranks = ranks
		out = append(out, core.InterferenceSpec{
			Gen:   io500.New(task, pi),
			Nodes: interferenceNodes,
			Ranks: ranks,
		})
	}
	return out
}

// interferenceParams are the standard scaled IO500 parameters interference
// instances run with.
func interferenceParams(s Scale) io500.Params {
	return io500.Params{
		EasyFileBytes: s.Bytes(32 << 20),
		HardOps:       s.Count(300),
		MdtFiles:      s.Count(200),
	}
}

func fmtSeconds(t sim.Time) string {
	return fmt.Sprintf("%.2fs", sim.ToSeconds(t))
}
