package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/bb"
	"quanterference/internal/core"
	"quanterference/internal/lustre"
	"quanterference/internal/mitigate"
	"quanterference/internal/ml"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

// CaseStudyConfig tunes the mitigation case study.
type CaseStudyConfig struct {
	Scale Scale
	// ThrottleBps is the per-client limit applied to interfering nodes
	// (default 10 MB/s).
	ThrottleBps float64
	// Epochs trains the predictor (default 40).
	Epochs int
	Seed   int64
}

func (c *CaseStudyConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.ThrottleBps == 0 {
		c.ThrottleBps = 10e6
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
}

// CaseStudyMode is one policy under comparison.
type CaseStudyMode struct {
	Name string
	// TargetDuration is the protected application's completion time.
	TargetDuration sim.Time
	// InterferenceMB is how much data the background workloads moved
	// while the target ran (their cost of being throttled).
	InterferenceMB float64
	// Engagements counts throttle activations (predictive mode only).
	Engagements int
	// DrainDuration (burst-buffer mode) is when the absorbed burst had
	// fully drained to the PFS — the data-durability point, later than
	// the application-visible completion.
	DrainDuration sim.Time
}

// CaseStudyResult compares the three policies.
type CaseStudyResult struct {
	Baseline sim.Time // target alone
	Modes    []CaseStudyMode
}

// Render draws the comparison.
func (r *CaseStudyResult) Render() string {
	var b strings.Builder
	b.WriteString("Case study: prediction-driven interference mitigation\n")
	fmt.Fprintf(&b, "  target alone: %s\n", fmtSeconds(r.Baseline))
	fmt.Fprintf(&b, "  %-22s%14s%12s%18s%14s%14s\n",
		"policy", "target time", "slowdown", "interference MB/s", "engagements", "drain")
	for _, m := range r.Modes {
		rate := 0.0
		if m.TargetDuration > 0 {
			rate = m.InterferenceMB / sim.ToSeconds(m.TargetDuration)
		}
		drain := "-"
		if m.DrainDuration > 0 {
			drain = fmtSeconds(m.DrainDuration)
		}
		fmt.Fprintf(&b, "  %-22s%14s%11.2fx%18.1f%14d%14s\n",
			m.Name, fmtSeconds(m.TargetDuration),
			float64(m.TargetDuration)/float64(r.Baseline),
			rate, m.Engagements, drain)
	}
	b.WriteString("  (interference MB/s: background goodput while the target ran; drain:\n" +
		"   when the burst buffer finished writing the absorbed data to the PFS)\n")
	return b.String()
}

// CSV emits the comparison rows.
func (r *CaseStudyResult) CSV() string {
	var b strings.Builder
	b.WriteString("policy,target_s,slowdown,interference_mb,engagements,drain_s\n")
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.1f,%d,%.3f\n",
			m.Name, sim.ToSeconds(m.TargetDuration),
			float64(m.TargetDuration)/float64(r.Baseline),
			m.InterferenceMB, m.Engagements, sim.ToSeconds(m.DrainDuration))
	}
	return b.String()
}

// caseStudyTarget is the protected application.
func caseStudyTarget(s Scale) core.TargetSpec {
	return core.TargetSpec{
		Gen: io500.New(io500.IorEasyWrite, io500.Params{
			Dir: "/protected", Ranks: 2, EasyFileBytes: s.Bytes(64 << 20)}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}
}

// CaseStudyMitigation trains the predictor on the protected workload, then
// compares three policies under identical read interference: no mitigation,
// prediction-driven throttling (engage on predicted >=2x, release after two
// clean windows), and static always-on throttling. The headline: predictive
// throttling recovers most of the target's performance while letting the
// background workloads run free whenever they do no harm.
func CaseStudyMitigation(cfg CaseStudyConfig) *CaseStudyResult {
	cfg.applyDefaults()

	// Train the predictor the paper's way: the protected workload against
	// an interference sweep.
	ds := collectFor(DatasetConfig{Scale: cfg.Scale, Seed: cfg.Seed, Reps: 2},
		"protected", caseStudyTarget(cfg.Scale), InterferenceSweep(cfg.Scale))
	fw, _ := mustTrain(ds, core.FrameworkConfig{
		Seed: cfg.Seed, Train: ml.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed},
	})

	res := &CaseStudyResult{}
	res.Baseline, _, _ = caseStudyRun(cfg, nil, false)

	for _, mode := range []string{"no mitigation", "predictive throttle", "static throttle", "burst buffer"} {
		var dur sim.Time
		var interfMB float64
		var engagements int
		switch mode {
		case "no mitigation":
			dur, interfMB, _ = caseStudyRun(cfg, nil, true)
		case "predictive throttle":
			dur, interfMB, engagements = caseStudyRunPredictive(cfg, fw)
		case "static throttle":
			dur, interfMB, _ = caseStudyRunStatic(cfg)
		case "burst buffer":
			var drain sim.Time
			dur, interfMB, drain = caseStudyRunBB(cfg)
			res.Modes = append(res.Modes, CaseStudyMode{
				Name: mode, TargetDuration: dur,
				InterferenceMB: interfMB, DrainDuration: drain,
			})
			continue
		}
		res.Modes = append(res.Modes, CaseStudyMode{
			Name: mode, TargetDuration: dur,
			InterferenceMB: interfMB, Engagements: engagements,
		})
	}
	return res
}

// interferenceNodesCS hosts the background workloads in the case study.
var interferenceNodesCS = []string{"c2", "c3", "c4"}

// caseStudySetup assembles the cluster, target, and (optionally) the
// interference runners, returning hooks to start and measure. The returned
// runner may be customized (e.g. WriteVia) before start() is called.
func caseStudySetup(cfg CaseStudyConfig, withInterference bool, onRecord func(workload.Record)) (
	cl *core.Cluster, start func(), interfBytes *int64, targetDone *sim.Time, target *workload.Runner) {

	cl = core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	interfBytes = new(int64)
	targetDone = new(sim.Time)

	spec := caseStudyTarget(cfg.Scale)
	var stops []func()
	target = &workload.Runner{
		FS: cl.FS, Name: "protected", Nodes: spec.Nodes, Ranks: spec.Ranks, Gen: spec.Gen,
		OnRecord: onRecord,
		OnDone: func() {
			*targetDone = cl.Eng.Now()
			for _, s := range stops {
				s()
			}
		},
	}
	var interfRunners []*workload.Runner
	if withInterference {
		p := interferenceParams(cfg.Scale)
		for i := 0; i < 3; i++ {
			pi := p
			pi.Dir = fmt.Sprintf("/bg%d", i)
			pi.Ranks = 6
			r := &workload.Runner{
				FS: cl.FS, Name: fmt.Sprintf("bg%d", i),
				Nodes: interferenceNodesCS, Ranks: 6,
				Gen: io500.New(io500.IorEasyRead, pi), Loop: true,
				OnRecord: func(rec workload.Record) {
					if *targetDone == 0 && rec.Op.Kind == workload.Read {
						*interfBytes += rec.Op.Size
					}
				},
			}
			interfRunners = append(interfRunners, r)
			stops = append(stops, r.Stop)
		}
	}
	start = func() {
		for _, r := range interfRunners {
			r.Start()
		}
		target.Start()
	}
	return cl, start, interfBytes, targetDone, target
}

// caseStudyRun measures the target with optional unthrottled interference.
func caseStudyRun(cfg CaseStudyConfig, _ *core.Framework, withInterference bool) (sim.Time, float64, int) {
	cl, start, interfBytes, done, _ := caseStudySetup(cfg, withInterference, nil)
	start()
	cl.Eng.RunUntil(600 * sim.Second)
	return *done, float64(*interfBytes) / 1e6, 0
}

// caseStudyRunBB routes the protected workload's writes through a node-local
// burst buffer (references [11]/[12]'s mitigation class) — no throttling at
// all; the fast tier absorbs the burst.
func caseStudyRunBB(cfg CaseStudyConfig) (appDone sim.Time, interfMB float64, drainDone sim.Time) {
	cl, start, interfBytes, done, target := caseStudySetup(cfg, true, nil)
	buf := bb.Attach(cl.Eng, cl.FS.Client("c0"), bb.Config{
		Capacity: 2 * cfg.Scale.Bytes(64<<20),
	})
	target.WriteVia = buf.WriteFn()
	// Watch for the durability point: buffer idle after the app finished.
	var drained sim.Time
	var tick *sim.Ticker
	tick = sim.NewTicker(cl.Eng, 10*sim.Millisecond, func(now sim.Time) {
		if *done > 0 && buf.Idle() && drained == 0 {
			drained = now
			tick.Stop()
		}
	})
	start()
	cl.Eng.RunUntil(600 * sim.Second)
	tick.Stop()
	return *done, float64(*interfBytes) / 1e6, drained
}

// caseStudyRunStatic applies the throttle from t=0, unconditionally.
func caseStudyRunStatic(cfg CaseStudyConfig) (sim.Time, float64, int) {
	cl, start, interfBytes, done, _ := caseStudySetup(cfg, true, nil)
	for _, node := range interferenceNodesCS {
		cl.FS.Client(node).SetRateLimit(cfg.ThrottleBps)
	}
	start()
	cl.Eng.RunUntil(600 * sim.Second)
	return *done, float64(*interfBytes) / 1e6, 0
}

// caseStudyRunPredictive lets the controller decide per window.
func caseStudyRunPredictive(cfg CaseStudyConfig, fw *core.Framework) (sim.Time, float64, int) {
	var ctrl *mitigate.Controller
	cl, start, interfBytes, done, _ := caseStudySetup(cfg, true, func(rec workload.Record) {
		ctrl.Record(rec)
	})
	victims := make([]*lustre.Client, 0, len(interferenceNodesCS))
	for _, node := range interferenceNodesCS {
		victims = append(victims, cl.FS.Client(node))
	}
	ctrl, err := mitigate.New(cl, fw, victims, sim.Second, mitigate.Config{
		ThrottleBps: cfg.ThrottleBps,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: mitigation controller: %v", err))
	}
	start()
	cl.Eng.RunUntil(600 * sim.Second)
	ctrl.Stop()
	engagements := 0
	for _, a := range ctrl.Actions() {
		if a.Switched && a.Engaged {
			engagements++
		}
	}
	return *done, float64(*interfBytes) / 1e6, engagements
}
