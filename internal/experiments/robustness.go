package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/stats"
)

// RobustnessResult reports accuracy/F1 variation across random seeds (split
// and initialization), a check the paper's single-split numbers lack.
type RobustnessResult struct {
	Seeds      []int64
	Accuracies []float64
	F1s        []float64
}

// MeanAccuracy and friends summarize the runs.
func (r *RobustnessResult) MeanAccuracy() float64 { return stats.Mean(r.Accuracies) }
func (r *RobustnessResult) StdAccuracy() float64  { return stats.Std(r.Accuracies) }
func (r *RobustnessResult) MeanF1() float64       { return stats.Mean(r.F1s) }
func (r *RobustnessResult) StdF1() float64        { return stats.Std(r.F1s) }

// Render summarizes mean ± std.
func (r *RobustnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness over %d seeds:\n", len(r.Seeds))
	fmt.Fprintf(&b, "  accuracy %.3f ± %.3f\n", r.MeanAccuracy(), r.StdAccuracy())
	fmt.Fprintf(&b, "  F1       %.3f ± %.3f\n", r.MeanF1(), r.StdF1())
	for i, s := range r.Seeds {
		fmt.Fprintf(&b, "    seed %-6d accuracy %.3f  F1 %.3f\n", s, r.Accuracies[i], r.F1s[i])
	}
	return b.String()
}

// CSV emits one row per seed.
func (r *RobustnessResult) CSV() string {
	var b strings.Builder
	b.WriteString("seed,accuracy,f1\n")
	for i, s := range r.Seeds {
		fmt.Fprintf(&b, "%d,%.4f,%.4f\n", s, r.Accuracies[i], r.F1s[i])
	}
	fmt.Fprintf(&b, "mean,%.4f,%.4f\nstd,%.4f,%.4f\n",
		r.MeanAccuracy(), r.MeanF1(), r.StdAccuracy(), r.StdF1())
	return b.String()
}

// Robustness retrains the model on the same dataset with n different seeds
// (each reshuffling the 80/20 split and the weight init) and collects the
// held-out metrics.
func Robustness(ds *dataset.Dataset, bins label.Bins, epochs, n int, baseSeed int64) *RobustnessResult {
	if n <= 0 {
		n = 5
	}
	res := &RobustnessResult{}
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)*101
		ev := TrainEval(fmt.Sprintf("seed %d", seed), ds, bins, epochs, seed)
		res.Seeds = append(res.Seeds, seed)
		res.Accuracies = append(res.Accuracies, ev.Confusion.Accuracy())
		f1 := ev.F1()
		res.F1s = append(res.F1s, f1)
	}
	return res
}
