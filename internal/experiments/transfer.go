package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/ml"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

// TransferConfig controls the cross-profile model-transfer study: how well a
// model trained on one hardware profile predicts interference on another,
// zero-shot and after a warm-started fine-tune pass.
type TransferConfig struct {
	// Profiles are the hardware profiles under study, by hw.Names name
	// (default paper, nvme, fastnic). At least two are required for any
	// cross-profile pair to exist.
	Profiles []string
	// Scale shrinks workload volumes (default 1.0).
	Scale Scale
	// Window is the monitor aggregation window (default 1 s).
	Window sim.Time
	// MaxTime caps each collection run (default 240 s).
	MaxTime sim.Time
	// Reps repeats each profile's sweep with rotated OST placement
	// (default 2 — trimmed against DatasetConfig's 3 because the study
	// multiplies everything by the profile count).
	Reps int
	// Epochs trains each in-domain model (default 40).
	Epochs int
	// FineTuneEpochs is the warm-started adaptation pass on the target
	// profile's data (default 12, a fraction of Epochs — the point of
	// transfer is paying less than full retraining).
	FineTuneEpochs int
	Seed           int64
	// MatrixTasks is the per-profile mini interference matrix's task subset
	// (default ior-easy-write, ior-easy-read, mdt-hard-write: one bulk
	// writer, one bulk reader, one metadata row).
	MatrixTasks []io500.Task
}

func (c *TransferConfig) applyDefaults() {
	if len(c.Profiles) == 0 {
		c.Profiles = []string{"paper", "nvme", "fastnic"}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Window == 0 {
		c.Window = sim.Second
	}
	if c.MaxTime == 0 {
		c.MaxTime = 240 * sim.Second
	}
	if c.Reps == 0 {
		c.Reps = 2
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.FineTuneEpochs == 0 {
		c.FineTuneEpochs = 12
	}
	if len(c.MatrixTasks) == 0 {
		c.MatrixTasks = []io500.Task{
			io500.IorEasyWrite, io500.IorEasyRead, io500.MdtHardWrite,
		}
	}
}

// TransferResult holds the study's accuracy table and the per-profile
// interference matrices.
type TransferResult struct {
	Profiles []string
	// Samples and ClassCounts describe each profile's dataset.
	Samples     []int
	ClassCounts [][]int
	// InDomain is train-and-test accuracy on the same profile — the ceiling
	// a transferred model is measured against.
	InDomain []float64
	// ZeroShot[a][b] evaluates profile a's model, unchanged, on profile b's
	// held-out test set (diagonal = InDomain).
	ZeroShot [][]float64
	// FineTuned[a][b] warm-starts from profile a's model and retrains
	// briefly on profile b's data before evaluating on the same test set
	// (diagonal = InDomain).
	FineTuned [][]float64
	// Matrices are the per-profile mini interference matrices (MatrixTasks
	// subset of Table I), showing how the contention patterns themselves
	// shift across hardware.
	Matrices []*TableIResult
}

// Gap returns the zero-shot transfer gap InDomain[b] - ZeroShot[a][b]: how
// much accuracy moving a model from profile a to b costs before adaptation.
func (r *TransferResult) Gap(a, b int) float64 {
	return r.InDomain[b] - r.ZeroShot[a][b]
}

// transferSweep is a trimmed interference sweep — one intensity per
// contention class — keeping the per-profile collection cost proportionate to
// the number of profiles the study multiplies it by.
func transferSweep(s Scale) []core.Variant {
	type entry struct {
		task      io500.Task
		instances int
		ranks     int
	}
	entries := []entry{
		{io500.IorEasyRead, 1, 4},
		{io500.IorEasyRead, 2, 4},
		{io500.IorEasyWrite, 1, 4},
		{io500.IorHardWrite, 1, 4},
		{io500.MdtHardWrite, 1, 4},
	}
	var out []core.Variant
	for i, e := range entries {
		out = append(out, core.Variant{
			Name: fmt.Sprintf("%s-x%dr%d", e.task, e.instances, e.ranks),
			Interference: IO500Instances(e.task, e.instances, e.ranks,
				interferenceParams(s), fmt.Sprintf("/tsweep%d", i)),
		})
	}
	return out
}

// transferDataset collects one profile's labelled windows: three IO500
// targets (bulk write, bulk read, metadata) against the trimmed sweep.
func transferDataset(cfg TransferConfig, profile string) *dataset.Dataset {
	dc := DatasetConfig{
		Scale:   cfg.Scale,
		Window:  cfg.Window,
		MaxTime: cfg.MaxTime,
		Reps:    cfg.Reps,
		Seed:    cfg.Seed,
		Profile: profile,
	}
	dc.applyDefaults()
	variants := transferSweep(cfg.Scale)
	var all *dataset.Dataset
	for _, task := range []io500.Task{io500.IorEasyWrite, io500.IorEasyRead, io500.MdtHardWrite} {
		p := io500.Params{
			Dir:           "/tfr-" + task.String(),
			Ranks:         4,
			EasyFileBytes: cfg.Scale.Bytes(32 << 20),
			HardOps:       cfg.Scale.Count(300),
			MdtFiles:      cfg.Scale.Count(200),
		}
		target := core.TargetSpec{Gen: io500.New(task, p), Nodes: targetNodes, Ranks: 4}
		ds := collectFor(dc, task.String(), target, variants)
		if all == nil {
			all = ds
		} else {
			all.Merge(ds)
		}
	}
	all.Profile = profile
	return all
}

// TransferStudy runs the cross-profile experiment end to end: per-profile
// dataset collection and in-domain training, zero-shot evaluation of every
// ordered profile pair, a warm-started fine-tune for each pair, and a mini
// interference matrix per profile. Both transfer variants are scored on the
// same held-out split of the target profile's data (the split seed matches
// TrainFramework's internal one), so their accuracies are directly
// comparable.
func TransferStudy(cfg TransferConfig) *TransferResult {
	cfg.applyDefaults()
	n := len(cfg.Profiles)
	res := &TransferResult{
		Profiles:    cfg.Profiles,
		Samples:     make([]int, n),
		ClassCounts: make([][]int, n),
		InDomain:    make([]float64, n),
		ZeroShot:    make([][]float64, n),
		FineTuned:   make([][]float64, n),
		Matrices:    make([]*TableIResult, n),
	}

	ds := make([]*dataset.Dataset, n)
	fw := make([]*core.Framework, n)
	for i, name := range cfg.Profiles {
		ds[i] = transferDataset(cfg, name)
		res.Samples[i] = ds[i].Len()
		res.ClassCounts[i] = ds[i].ClassCounts()
		f, cm, err := core.TrainFrameworkE(ds[i], core.FrameworkConfig{
			Seed:  cfg.Seed,
			Train: ml.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: transfer training on %s: %v", name, err))
		}
		fw[i] = f
		res.InDomain[i] = cm.Accuracy()
		res.Matrices[i] = TableI(TableIConfig{
			Scale:            cfg.Scale,
			Instances:        1,
			RanksPerInstance: 4,
			MaxTime:          cfg.MaxTime,
			Profile:          name,
			Tasks:            cfg.MatrixTasks,
		})
	}

	for a := 0; a < n; a++ {
		res.ZeroShot[a] = make([]float64, n)
		res.FineTuned[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			if a == b {
				res.ZeroShot[a][b] = res.InDomain[b]
				res.FineTuned[a][b] = res.InDomain[b]
				continue
			}
			// Zero-shot: profile a's model reads profile b's test windows
			// through a's scaler — the model is moved verbatim. The split
			// seed matches TrainFramework's internal split, so this is the
			// same test set the in-domain and fine-tuned numbers use.
			_, test := ds[b].Split(0.2, cfg.Seed^0x5717)
			scaled := test.Copy()
			fw[a].Scaler.Transform(scaled)
			res.ZeroShot[a][b] = ml.Evaluate(fw[a].Model, scaled).Accuracy()

			_, cm, err := core.TrainFrameworkE(ds[b], core.FrameworkConfig{
				Seed:  cfg.Seed,
				Train: ml.TrainConfig{Epochs: cfg.FineTuneEpochs, Seed: cfg.Seed},
			}, core.WithWarmStart(fw[a]))
			if err != nil {
				panic(fmt.Sprintf("experiments: transfer fine-tune %s->%s: %v",
					cfg.Profiles[a], cfg.Profiles[b], err))
			}
			res.FineTuned[a][b] = cm.Accuracy()
		}
	}
	return res
}

func (r *TransferResult) renderMatrix(b *strings.Builder, title string, m [][]float64) {
	fmt.Fprintf(b, "%s\n%-14s", title, "train\\eval")
	for _, p := range r.Profiles {
		fmt.Fprintf(b, "%12s", p)
	}
	b.WriteString("\n")
	for a, p := range r.Profiles {
		fmt.Fprintf(b, "%-14s", p)
		for bb := range r.Profiles {
			fmt.Fprintf(b, "%12.3f", m[a][bb])
		}
		b.WriteString("\n")
	}
}

// Render draws the accuracy tables and the per-profile interference matrices.
func (r *TransferResult) Render() string {
	var b strings.Builder
	b.WriteString("Cross-profile model transfer\n\n")
	fmt.Fprintf(&b, "%-14s%10s%16s%12s\n", "profile", "samples", "balance", "in-domain")
	for i, p := range r.Profiles {
		fmt.Fprintf(&b, "%-14s%10d%16v%12.3f\n",
			p, r.Samples[i], r.ClassCounts[i], r.InDomain[i])
	}
	b.WriteString("\n")
	r.renderMatrix(&b, "Zero-shot accuracy (diagonal = in-domain)", r.ZeroShot)
	b.WriteString("\n")
	r.renderMatrix(&b, "Fine-tuned accuracy (diagonal = in-domain)", r.FineTuned)
	b.WriteString("\nZero-shot transfer gap (in-domain minus zero-shot)\n")
	fmt.Fprintf(&b, "%-14s", "train\\eval")
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "%12s", p)
	}
	b.WriteString("\n")
	for a, p := range r.Profiles {
		fmt.Fprintf(&b, "%-14s", p)
		for bb := range r.Profiles {
			fmt.Fprintf(&b, "%12.3f", r.Gap(a, bb))
		}
		b.WriteString("\n")
	}
	for i, p := range r.Profiles {
		fmt.Fprintf(&b, "\nInterference matrix on %s\n%s", p, r.Matrices[i].Render())
	}
	return b.String()
}

// CSV emits one row per (kind, train, eval) accuracy cell plus the
// per-profile matrices, for external plotting.
func (r *TransferResult) CSV() string {
	var b strings.Builder
	b.WriteString("kind,train_profile,eval_profile,accuracy\n")
	for i, p := range r.Profiles {
		fmt.Fprintf(&b, "in_domain,%s,%s,%.4f\n", p, p, r.InDomain[i])
	}
	for a, pa := range r.Profiles {
		for bb, pb := range r.Profiles {
			if a == bb {
				continue
			}
			fmt.Fprintf(&b, "zero_shot,%s,%s,%.4f\n", pa, pb, r.ZeroShot[a][bb])
			fmt.Fprintf(&b, "fine_tuned,%s,%s,%.4f\n", pa, pb, r.FineTuned[a][bb])
			fmt.Fprintf(&b, "gap,%s,%s,%.4f\n", pa, pb, r.Gap(a, bb))
		}
	}
	for i, p := range r.Profiles {
		fmt.Fprintf(&b, "\nmatrix,%s\n%s", p, r.Matrices[i].CSV())
	}
	return b.String()
}
