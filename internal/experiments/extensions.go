package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
)

// ExtensionArchitectures evaluates the paper's future-work direction: the
// self-attention model against the kernel-based model and the flat MLP, all
// on the same dataset and split.
func ExtensionArchitectures(ds *dataset.Dataset, cfg DatasetConfig, epochs int) *AblationResult {
	cfg.applyDefaults()
	res := &AblationResult{Name: "architectures (incl. attention extension)"}
	res.Evals = append(res.Evals,
		TrainEvalWith("kernel-based (paper)", ds, cfg.Bins, epochs, cfg.Seed, false),
		TrainEvalWith("flat MLP", ds, cfg.Bins, epochs, cfg.Seed, true),
		trainEvalAttention("self-attention (future work)", ds, cfg.Bins, epochs, cfg.Seed),
	)
	return res
}

func trainEvalAttention(name string, ds *dataset.Dataset, bins label.Bins, epochs int, seed int64) *ModelEval {
	if bins.Thresholds == nil {
		bins = label.BinaryBins()
	}
	classNames := make([]string, bins.Classes())
	for c := range classNames {
		classNames[c] = bins.Name(c)
	}
	train, test := ds.Split(0.2, seed^0x5717)
	_, cm := mustTrain(ds, core.FrameworkConfig{
		Bins: bins, Seed: seed,
		Train: ml.TrainConfig{Epochs: epochs, Seed: seed},
		NewModel: func(nTargets, nFeat, classes int, s int64) ml.Model {
			return ml.NewAttentionModel(ml.AttentionConfig{
				NTargets: nTargets, NFeat: nFeat, Classes: classes, Seed: s,
			})
		},
	})
	return &ModelEval{
		Name:        name,
		ClassNames:  classNames,
		Confusion:   cm,
		TrainCounts: train.ClassCounts(),
		TestCounts:  test.ClassCounts(),
		Samples:     ds.Len(),
	}
}

// RegressionResult compares the exact-slowdown regressor (an extension the
// paper set aside) with the binary classifier on the same data.
type RegressionResult struct {
	MAELog2        float64
	RMSELog2       float64
	BinnedEval     *ModelEval // regressor predictions pushed through the bins
	ClassifierEval *ModelEval // the paper's classifier for comparison
}

// Render summarizes the comparison.
func (r *RegressionResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: exact-slowdown regression vs classification\n")
	fmt.Fprintf(&b, "  regressor MAE %.3f doublings (RMSE %.3f)\n", r.MAELog2, r.RMSELog2)
	fmt.Fprintf(&b, "  %-34s accuracy %.3f  F1 %.3f\n", "regressor (binned)",
		r.BinnedEval.Confusion.Accuracy(), r.BinnedEval.F1())
	fmt.Fprintf(&b, "  %-34s accuracy %.3f  F1 %.3f\n", "classifier (paper)",
		r.ClassifierEval.Confusion.Accuracy(), r.ClassifierEval.F1())
	b.WriteString("\n" + r.BinnedEval.Render())
	b.WriteString("\n" + r.ClassifierEval.Render())
	return b.String()
}

// CSV emits the comparison rows.
func (r *RegressionResult) CSV() string {
	var b strings.Builder
	b.WriteString("config,accuracy,f1,mae_log2,rmse_log2\n")
	fmt.Fprintf(&b, "regressor_binned,%.4f,%.4f,%.4f,%.4f\n",
		r.BinnedEval.Confusion.Accuracy(), r.BinnedEval.F1(), r.MAELog2, r.RMSELog2)
	fmt.Fprintf(&b, "classifier,%.4f,%.4f,,\n",
		r.ClassifierEval.Confusion.Accuracy(), r.ClassifierEval.F1())
	return b.String()
}

// ExtensionRegression trains the kernel regressor on log2(degradation) and
// evaluates it both in log space and binned against the binary classifier.
func ExtensionRegression(ds *dataset.Dataset, cfg DatasetConfig, epochs int) *RegressionResult {
	cfg.applyDefaults()
	if epochs == 0 {
		epochs = 60
	}
	bins := cfg.Bins
	classNames := make([]string, bins.Classes())
	for c := range classNames {
		classNames[c] = bins.Name(c)
	}
	train, test := ds.Split(0.2, cfg.Seed^0x5717)
	train, test = train.Copy(), test.Copy()
	scaler := dataset.FitScaler(train)
	scaler.Transform(train)
	scaler.Transform(test)

	reg := ml.NewKernelRegressor(ds.NTargets, len(ds.FeatureNames), cfg.Seed)
	ml.TrainRegressor(reg, train, ml.TrainConfig{Epochs: epochs, Seed: cfg.Seed})
	ev := ml.EvaluateRegressor(reg, test, bins.Label, bins.Classes())

	binned := &ModelEval{
		Name:        "regressor (binned predictions)",
		ClassNames:  classNames,
		Confusion:   ev.Binned,
		TrainCounts: train.ClassCounts(),
		TestCounts:  test.ClassCounts(),
		Samples:     ds.Len(),
	}
	classifier := TrainEval("classifier (paper)", ds, bins, epochs, cfg.Seed)
	return &RegressionResult{
		MAELog2:        ev.MAELog2,
		RMSELog2:       ev.RMSELog2,
		BinnedEval:     binned,
		ClassifierEval: classifier,
	}
}
