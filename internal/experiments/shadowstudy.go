package experiments

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/online"
	"quanterference/internal/shadow"
)

// ShadowStudyConfig controls the shadow-evaluation study: how quickly the
// N-way champion/challenger gate (internal/shadow) separates candidates of
// different quality on a live labeled stream, and where the verdict lands.
type ShadowStudyConfig struct {
	// ChampionEpochs trains the serving champion (default 2 — deliberately
	// undertrained, the model a fleet would want to replace).
	ChampionEpochs int
	// ChallengerEpochs trains one challenger per entry (default 4, 16, 8);
	// challengers are named c0, c1, ... in this order.
	ChallengerEpochs []int
	// Snapshots is how many evenly spaced scoreboard snapshots to record
	// over the stream (default 4); the last snapshot is the final state.
	Snapshots int
	// Margin and MinSamples are the gate's promotion bar (defaults 0.01, 32).
	Margin     float64
	MinSamples int
	Seed       int64
}

func (c *ShadowStudyConfig) applyDefaults() {
	if c.ChampionEpochs == 0 {
		c.ChampionEpochs = 2
	}
	if len(c.ChallengerEpochs) == 0 {
		c.ChallengerEpochs = []int{4, 16, 8}
	}
	if c.Snapshots == 0 {
		c.Snapshots = 4
	}
	if c.Margin == 0 {
		c.Margin = 0.01
	}
	if c.MinSamples == 0 {
		c.MinSamples = 32
	}
}

// ShadowStudyResult holds the convergence table and the final verdict.
type ShadowStudyResult struct {
	// Names are the candidates in column order: "champion" first, then the
	// challengers; Epochs is each one's training depth and Digests its
	// bit-exact weight identity (checkable against a live /v1/healthz).
	Names   []string
	Epochs  []int
	Digests []string
	// TrainSamples and StreamSamples split the corpus: candidates train on
	// the former, the gate scores them on the latter.
	TrainSamples  int
	StreamSamples int
	// SnapshotAt[i] is the labeled-sample count of snapshot i;
	// Accuracy[i][j] is candidate j's cumulative live accuracy there.
	SnapshotAt []int
	Accuracy   [][]float64
	// FinalCE is each candidate's mean cross-entropy at stream end.
	FinalCE []float64
	// Verdict is the gate's final decision; Winner is "" when the champion
	// kept its seat.
	Verdict online.GateResult
	Winner  string
}

// ShadowStudy replays a labeled window stream through a shadow evaluator —
// the study stands in for the serving layer, predicting the champion's class
// for each window before mirroring it — and records how the scoreboard
// separates candidates as labels accumulate. The stream is the held-out
// quarter of the corpus (every 4th sample), so no candidate is scored on
// traffic it trained on.
func ShadowStudy(ds *dataset.Dataset, cfg ShadowStudyConfig) *ShadowStudyResult {
	cfg.applyDefaults()

	train := dataset.New(ds.FeatureNames, ds.NTargets, ds.Classes)
	stream := dataset.New(ds.FeatureNames, ds.NTargets, ds.Classes)
	for i, s := range ds.Samples {
		if i%4 == 3 {
			stream.Add(s)
		} else {
			train.Add(s)
		}
	}

	res := &ShadowStudyResult{
		Names:         []string{"champion"},
		Epochs:        []int{cfg.ChampionEpochs},
		TrainSamples:  train.Len(),
		StreamSamples: stream.Len(),
	}
	champion := trainCandidate(train, cfg.Seed, cfg.ChampionEpochs)
	res.Digests = []string{ml.WeightsDigest(champion.ExportWeights())}

	ev, err := shadow.New(champion, shadow.Config{
		Seed: cfg.Seed, QueueCap: stream.Len() + 1,
		Margin: cfg.Margin, MinSamples: cfg.MinSamples,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: shadow evaluator: %v", err))
	}
	for i, epochs := range cfg.ChallengerEpochs {
		name := fmt.Sprintf("c%d", i)
		cand := trainCandidate(train, cfg.Seed+int64(i)+1, epochs)
		if err := ev.AddChallenger(name, cand); err != nil {
			panic(fmt.Sprintf("experiments: shadow challenger %s: %v", name, err))
		}
		res.Names = append(res.Names, name)
		res.Epochs = append(res.Epochs, epochs)
		res.Digests = append(res.Digests, ml.WeightsDigest(cand.ExportWeights()))
	}

	// Stream the held-out windows: serve (predict), mirror, then join the
	// label — the same order the live tap sees. Snapshot the scoreboard at
	// evenly spaced labeled counts.
	snapEvery := stream.Len() / cfg.Snapshots
	if snapEvery == 0 {
		snapEvery = 1
	}
	for i, s := range stream.Samples {
		mat := window.Matrix(s.Vectors)
		cls, _ := champion.Predict(mat)
		ev.Mirror(mat, cls)
		if !ev.Label(mat, s.Degradation) {
			panic(fmt.Sprintf("experiments: stream sample %d not joinable", i))
		}
		if (i+1)%snapEvery == 0 || i == stream.Len()-1 {
			st := ev.Status()
			if n := len(res.SnapshotAt); n > 0 && res.SnapshotAt[n-1] == int(st.Labeled) {
				continue // final sample landed exactly on a snapshot boundary
			}
			res.SnapshotAt = append(res.SnapshotAt, int(st.Labeled))
			row := []float64{st.Champion.Accuracy}
			for _, c := range st.Challengers {
				row = append(row, c.Accuracy)
			}
			res.Accuracy = append(res.Accuracy, row)
		}
	}

	st := ev.Status()
	res.FinalCE = []float64{st.Champion.CE}
	for _, c := range st.Challengers {
		res.FinalCE = append(res.FinalCE, c.CE)
	}
	res.Verdict = ev.Verdict()
	res.Winner = res.Verdict.Winner
	return res
}

// trainCandidate trains one candidate at the given depth on the train split.
func trainCandidate(ds *dataset.Dataset, seed int64, epochs int) *core.Framework {
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{
		Seed:  seed,
		Train: ml.TrainConfig{Epochs: epochs, Seed: seed},
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: shadow candidate: %v", err))
	}
	return fw
}

// Render draws the convergence table — one row per snapshot, one column per
// candidate — and the final verdict.
func (r *ShadowStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shadow evaluation: %d candidates on %d live windows (%d train)\n",
		len(r.Names), r.StreamSamples, r.TrainSamples)
	for i, name := range r.Names {
		fmt.Fprintf(&b, "  %-9s epochs %-3d %s\n", name, r.Epochs[i], r.Digests[i])
	}
	fmt.Fprintf(&b, "%-10s", "labeled")
	for _, name := range r.Names {
		fmt.Fprintf(&b, "%10s", name)
	}
	b.WriteString("\n")
	for i, at := range r.SnapshotAt {
		fmt.Fprintf(&b, "%-10d", at)
		for _, a := range r.Accuracy[i] {
			fmt.Fprintf(&b, "%10.3f", a)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s", "final-ce")
	for _, ce := range r.FinalCE {
		fmt.Fprintf(&b, "%10.3f", ce)
	}
	b.WriteString("\n")
	if r.Verdict.Promote {
		fmt.Fprintf(&b, "verdict: promote %s (%.3f vs champion %.3f, margin %.3f, n %d)\n",
			r.Winner, r.Verdict.CandidateAccuracy, r.Verdict.IncumbentAccuracy,
			r.Verdict.Margin, r.Verdict.Holdout)
	} else {
		fmt.Fprintf(&b, "verdict: keep champion (best challenger %.3f vs %.3f, margin %.3f)\n",
			r.Verdict.CandidateAccuracy, r.Verdict.IncumbentAccuracy, r.Verdict.Margin)
	}
	return b.String()
}

// CSV emits one row per (snapshot, candidate) point, then one digest row per
// candidate and a final verdict row.
func (r *ShadowStudyResult) CSV() string {
	var b strings.Builder
	b.WriteString("labeled,candidate,epochs,accuracy\n")
	for i, at := range r.SnapshotAt {
		for j, name := range r.Names {
			fmt.Fprintf(&b, "%d,%s,%d,%.4f\n", at, name, r.Epochs[j], r.Accuracy[i][j])
		}
	}
	for j, name := range r.Names {
		fmt.Fprintf(&b, "digest,%s,%d,%s\n", name, r.Epochs[j], r.Digests[j])
	}
	winner := r.Winner
	if winner == "" {
		winner = "champion"
	}
	fmt.Fprintf(&b, "verdict,%s,%t,%.4f\n", winner, r.Verdict.Promote, r.Verdict.CandidateAccuracy)
	return b.String()
}
