package experiments

import (
	"fmt"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/fault"
	"quanterference/internal/label"
	"quanterference/internal/sim"
	"quanterference/internal/workload/apps"
	"quanterference/internal/workload/dlio"
	"quanterference/internal/workload/io500"
)

// DatasetConfig controls §III-D training-data generation for the model
// experiments (Figures 3-5).
type DatasetConfig struct {
	Scale Scale
	// Window is the monitor aggregation window (default 1 s).
	Window sim.Time
	// Bins default to the paper's binary >=2x split; Figure 4 rebins the
	// stored degradations to the 3-class setting afterwards.
	Bins label.Bins
	// MaxTime caps each collection run (default 240 s).
	MaxTime sim.Time
	// Reps repeats the whole sweep with rotated OST placement (default 3),
	// multiplying the dataset and exposing the layout variance the kernel
	// model is designed for.
	Reps int
	Seed int64
	// Faults injects the same degraded-mode episodes into every collection
	// run (baseline and variants alike), producing training data from a
	// cluster that is sick in a known, reproducible way. RPCTimeout arms the
	// clients' retry path alongside (0 keeps the healthy-cluster model).
	Faults     []fault.Spec
	RPCTimeout sim.Time
	// Report, when non-nil, accumulates per-variant completion accounting
	// across every collection of the dataset build: totals are summed and
	// skipped variants appended (their indices are per-collection).
	Report *core.CollectReport
	// Profile selects the hardware profile every collection run simulates
	// (a name from hw.Names; default "" = the paper testbed). The dataset
	// header records it. Unknown names panic.
	Profile string
}

func (c *DatasetConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Window == 0 {
		c.Window = sim.Second
	}
	if c.Bins.Thresholds == nil {
		c.Bins = label.BinaryBins()
	}
	if c.MaxTime == 0 {
		c.MaxTime = 240 * sim.Second
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
}

// InterferenceSweep is the standard set of interference configurations every
// target workload is re-run against: a spread of pattern types and
// intensities, covering the contention classes of Table I.
func InterferenceSweep(s Scale) []core.Variant {
	type entry struct {
		task      io500.Task
		instances int
		ranks     int
	}
	entries := []entry{
		{io500.IorEasyRead, 1, 2},
		{io500.IorEasyRead, 1, 4},
		{io500.IorEasyRead, 2, 4},
		{io500.IorEasyRead, 3, 6},
		{io500.IorEasyWrite, 1, 2},
		{io500.IorEasyWrite, 1, 4},
		{io500.IorEasyWrite, 3, 6},
		{io500.IorHardWrite, 1, 4},
		{io500.IorHardWrite, 2, 6},
		{io500.MdtEasyWrite, 2, 6},
		{io500.MdtHardWrite, 1, 4},
		{io500.MdtHardWrite, 2, 6},
		{io500.MdtHardRead, 2, 6},
	}
	var out []core.Variant
	for i, e := range entries {
		out = append(out, core.Variant{
			Name: fmt.Sprintf("%s-x%dr%d", e.task, e.instances, e.ranks),
			Interference: IO500Instances(e.task, e.instances, e.ranks,
				interferenceParams(s), fmt.Sprintf("/sweep%d", i)),
		})
	}
	return out
}

// collectFor runs the collection pipeline for one target generator,
// repeating the sweep Reps times with the OST allocator rotated so the
// target lands on different storage targets each repetition.
func collectFor(cfg DatasetConfig, name string, target core.TargetSpec, variants []core.Variant) *dataset.Dataset {
	profile := resolveProfile(cfg.Profile)
	var all *dataset.Dataset
	for rep := 0; rep < cfg.Reps; rep++ {
		base := core.Scenario{
			Hardware:   profile,
			Target:     target,
			WindowSize: cfg.Window,
			MaxTime:    cfg.MaxTime,
			OSTSkew:    rep,
			Faults:     cfg.Faults,
		}
		base.FSConfig.RPCTimeout = cfg.RPCTimeout
		var report core.CollectReport
		ds, err := core.CollectDatasetE(base, variants, core.CollectorConfig{
			Bins:            cfg.Bins,
			IncludeBaseline: rep == 0,
		}, core.WithCollectReport(&report))
		if err != nil {
			panic(err)
		}
		if cfg.Report != nil {
			cfg.Report.Variants += report.Variants
			cfg.Report.Completed += report.Completed
			cfg.Report.BaselineSamples += report.BaselineSamples
			cfg.Report.VariantSamples += report.VariantSamples
			cfg.Report.Skipped = append(cfg.Report.Skipped, report.Skipped...)
		}
		for _, s := range ds.Samples {
			s.Workload = name
			s.Run = fmt.Sprintf("%s#%d", s.Run, rep)
		}
		if all == nil {
			all = ds
		} else {
			all.Merge(ds)
		}
	}
	return all
}

// IO500Dataset collects labelled windows with each of the seven IO500 tasks
// as the target application, against the full interference sweep — the
// paper's first training dataset.
func IO500Dataset(cfg DatasetConfig) *dataset.Dataset {
	cfg.applyDefaults()
	var all *dataset.Dataset
	for _, task := range io500.AllTasks() {
		p := io500.Params{
			Dir:           "/tgt-" + task.String(),
			Ranks:         4,
			EasyFileBytes: cfg.Scale.Bytes(32 << 20),
			HardOps:       cfg.Scale.Count(300),
			MdtFiles:      cfg.Scale.Count(200),
		}
		target := core.TargetSpec{Gen: io500.New(task, p), Nodes: targetNodes, Ranks: 4}
		ds := collectFor(cfg, task.String(), target, InterferenceSweep(cfg.Scale))
		if all == nil {
			all = ds
		} else {
			all.Merge(ds)
		}
	}
	return all
}

// DLIODataset collects labelled windows with the Unet3D and BERT loader
// emulations as targets — the paper's second dataset. The loaders' compute
// gaps give it the negative-heavy class balance the paper reports.
func DLIODataset(cfg DatasetConfig) *dataset.Dataset {
	cfg.applyDefaults()
	var all *dataset.Dataset
	for _, model := range []dlio.Model{dlio.Unet3D, dlio.BERT} {
		p := dlio.Params{
			Dir:         "/dlio-" + model.String(),
			Ranks:       4,
			Samples:     cfg.Scale.Count(48),
			SampleBytes: cfg.Scale.Bytes(4 << 20),
			Epochs:      2,
			Steps:       cfg.Scale.Count(150),
			Seed:        cfg.Seed,
		}
		target := core.TargetSpec{Gen: dlio.New(model, p), Nodes: targetNodes, Ranks: 4}
		ds := collectFor(cfg, model.String(), target, InterferenceSweep(cfg.Scale))
		if all == nil {
			all = ds
		} else {
			all.Merge(ds)
		}
	}
	return all
}

// AppLevels mirrors the paper's real-application collection: one baseline
// plus runs with increasing amounts of concurrent IO500 instances. Two extra
// configurations supply honest no-interference windows: a single one-rank
// reader (usually on OSTs the application never touches), and a moderate mix
// that only arrives mid-run, leaving the pre-arrival windows unimpacted.
func AppLevels(s Scale) []core.Variant {
	delayed := IO500Instances(io500.IorEasyWrite, 2, 6, interferenceParams(s), "/lvl-delay")
	for i := range delayed {
		delayed[i].StartAt = 4 * sim.Second
	}
	out := []core.Variant{
		{
			Name: "io500-level0",
			Interference: IO500Instances(io500.IorEasyRead, 1, 1,
				interferenceParams(s), "/lvl0-r"),
		},
		{Name: "io500-delayed", Interference: delayed},
	}
	for level := 1; level <= 3; level++ {
		var specs []core.InterferenceSpec
		specs = append(specs, IO500Instances(io500.IorEasyWrite, level, 6,
			interferenceParams(s), fmt.Sprintf("/lvl%d-w", level))...)
		specs = append(specs, IO500Instances(io500.IorEasyRead, level, 6,
			interferenceParams(s), fmt.Sprintf("/lvl%d-r", level))...)
		specs = append(specs, IO500Instances(io500.MdtEasyWrite, level, 6,
			interferenceParams(s), fmt.Sprintf("/lvl%d-m", level))...)
		out = append(out, core.Variant{
			Name:         fmt.Sprintf("io500-level%d", level),
			Interference: specs,
		})
	}
	return out
}

// AppDataset collects labelled windows for one real application. OpenPMD
// deliberately runs short (few cycles), reproducing the paper's small-sample
// caveat for its Figure 5 model.
func AppDataset(app apps.App, cfg DatasetConfig) *dataset.Dataset {
	cfg.applyDefaults()
	p := apps.Params{
		Dir:   "/app-" + app.String(),
		Ranks: 4,
		// Long enough that the delayed-interference variant's arrival
		// (t=4s) lands mid-run.
		Cycles:          20,
		CheckpointBytes: cfg.Scale.Bytes(8 << 20),
		Seed:            cfg.Seed,
	}
	if app == OpenPMDApp {
		p.Cycles = 3
	}
	target := core.TargetSpec{Gen: apps.New(app, p), Nodes: targetNodes, Ranks: 4}
	return collectFor(cfg, app.String(), target, AppLevels(cfg.Scale))
}

// OpenPMDApp is re-exported for callers configuring the small-sample case.
const OpenPMDApp = apps.OpenPMD
