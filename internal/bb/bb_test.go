package bb

import (
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

func newFS() (*sim.Engine, *lustre.FS) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	return eng, lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
}

func TestAbsorbCompletesAtLocalSpeed(t *testing.T) {
	eng, fs := newFS()
	c := fs.Client("c0")
	b := Attach(eng, c, Config{IngestBps: 2e9})
	var acceptedAt sim.Time
	c.Create("/bb", 1, func(h *lustre.Handle) {
		remaining := 16
		for i := 0; i < 16; i++ {
			b.Write(h, int64(i)<<20, 1<<20, func() {
				remaining--
				if remaining == 0 {
					acceptedAt = eng.Now()
				}
			})
		}
	})
	eng.Run()
	// 16 MiB at 2 GB/s is ~8 ms; the PFS path alone would take ~100+ ms.
	if acceptedAt > 20*sim.Millisecond {
		t.Fatalf("burst accepted at %v, want NVMe-speed", acceptedAt)
	}
	if !b.Idle() {
		t.Fatal("buffer never drained")
	}
	st := b.Stats()
	if st.Absorbed != 16<<20 || st.Drained != 16<<20 {
		t.Fatalf("stats %+v", st)
	}
	// The data must actually have reached the PFS.
	if fs.MDS().Lookup("/bb").Size != 16<<20 {
		t.Fatal("drain did not write through")
	}
}

func TestBufferSaturationStallsWrites(t *testing.T) {
	eng, fs := newFS()
	c := fs.Client("c0")
	b := Attach(eng, c, Config{Capacity: 4 << 20})
	done := 0
	c.Create("/sat", 1, func(h *lustre.Handle) {
		for i := 0; i < 32; i++ {
			b.Write(h, int64(i)<<20, 1<<20, func() { done++ })
		}
	})
	eng.Run()
	if done != 32 {
		t.Fatalf("writes completed %d/32", done)
	}
	if b.Stats().Stalls == 0 {
		t.Fatal("expected stalls at 4 MiB capacity")
	}
	if b.Stats().PeakUsage > 4<<20 {
		t.Fatalf("capacity exceeded: peak %d", b.Stats().PeakUsage)
	}
}

func TestDrainOrderFIFOPerBuffer(t *testing.T) {
	eng, fs := newFS()
	c := fs.Client("c0")
	b := Attach(eng, c, Config{Capacity: 2 << 20, DrainConcurrency: 1})
	var order []int64
	c.Create("/fifo", 1, func(h *lustre.Handle) {
		for i := 0; i < 6; i++ {
			off := int64(i) << 20
			b.Write(h, off, 1<<20, func() { order = append(order, off) })
		}
	})
	eng.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("completion order not FIFO: %v", order)
		}
	}
}

func TestRunnerWriteViaRoutesThroughBuffer(t *testing.T) {
	eng, fs := newFS()
	b := Attach(eng, fs.Client("c0"), Config{})
	g := io500.New(io500.IorEasyWrite, io500.Params{Dir: "/w", Ranks: 1, EasyFileBytes: 8 << 20})
	finished := false
	r := &workload.Runner{
		FS: fs, Name: "bbrun", Nodes: []string{"c0"}, Ranks: 1, Gen: g,
		WriteVia: b.WriteFn(),
		OnDone:   func() { finished = true },
	}
	r.Start()
	eng.RunUntil(sim.Seconds(60))
	if !finished {
		t.Fatal("runner did not finish")
	}
	if b.Stats().Absorbed != 8<<20 {
		t.Fatalf("buffer absorbed %d, want all writes", b.Stats().Absorbed)
	}
}

// TestBurstBufferInsulatesFromInterference is the headline behaviour of the
// paper's references [11]/[12]: under heavy PFS write contention, an app
// writing through the burst buffer sees near-local latency while a direct
// writer crawls.
func TestBurstBufferInsulatesFromInterference(t *testing.T) {
	run := func(useBB bool) sim.Time {
		eng, fs := newFS()
		// Heavy background writers saturating the OST caches.
		stop := false
		for i := 0; i < 3; i++ {
			gi := io500.New(io500.IorEasyWrite, io500.Params{
				Dir: "/bg" + string(rune('0'+i)), Ranks: 6, EasyFileBytes: 32 << 20})
			bg := &workload.Runner{FS: fs, Name: "bg", Nodes: []string{"c2", "c3", "c4"},
				Ranks: 6, Gen: gi, Loop: true}
			bg.Start()
		}
		var doneAt sim.Time
		g := io500.New(io500.IorEasyWrite, io500.Params{Dir: "/app", Ranks: 1, EasyFileBytes: 32 << 20})
		r := &workload.Runner{
			FS: fs, Name: "app", Nodes: []string{"c0"}, Ranks: 1, Gen: g,
			OnDone: func() { doneAt = eng.Now(); stop = true },
		}
		if useBB {
			b := Attach(eng, fs.Client("c0"), Config{Capacity: 64 << 20})
			r.WriteVia = b.WriteFn()
		}
		r.Start()
		eng.RunUntil(sim.Seconds(300))
		_ = stop
		if doneAt == 0 {
			t.Fatal("app never finished")
		}
		return doneAt
	}
	direct := run(false)
	buffered := run(true)
	t.Logf("direct %.2fs vs burst-buffered %.2fs", sim.ToSeconds(direct), sim.ToSeconds(buffered))
	if float64(buffered) > 0.5*float64(direct) {
		t.Fatalf("burst buffer should insulate the burst: direct=%v buffered=%v",
			direct, buffered)
	}
}
