// Package bb models a node-local burst buffer: a fast tier (NVMe-class)
// that absorbs an application's write bursts at local speed and drains them
// to the parallel file system asynchronously. Burst buffers are the
// mitigation class of the paper's references [11] (TRIO) and [12]
// (coordinated burst buffers): the application's write latency decouples
// from PFS contention as long as the burst fits the buffer.
package bb

import (
	"quanterference/internal/lustre"
	"quanterference/internal/sim"
)

// Config sizes one node's burst buffer.
type Config struct {
	// Capacity is the buffer size in bytes (default 256 MiB).
	Capacity int64
	// IngestBps is the local absorb rate (default 2 GB/s, NVMe-class).
	IngestBps float64
	// DrainConcurrency is how many PFS write RPCs the drainer keeps in
	// flight (default 4).
	DrainConcurrency int
}

func (c *Config) applyDefaults() {
	if c.Capacity == 0 {
		c.Capacity = 256 << 20
	}
	if c.IngestBps == 0 {
		c.IngestBps = 2e9
	}
	if c.DrainConcurrency == 0 {
		c.DrainConcurrency = 4
	}
}

// Stats reports buffer behaviour.
type Stats struct {
	Absorbed  int64 // bytes accepted at local speed
	Drained   int64 // bytes flushed to the PFS
	Stalls    int   // writes that had to wait for buffer space
	PeakUsage int64
}

// segment is one absorbed write awaiting drain.
type segment struct {
	h      *lustre.Handle
	off    int64
	length int64
}

type waiter struct {
	seg  segment
	done func()
}

// Buffer is one client node's burst buffer.
type Buffer struct {
	eng *sim.Engine
	c   *lustre.Client
	cfg Config

	used     int64
	queue    []segment
	draining int
	waiters  []waiter
	stats    Stats
}

// Attach creates a burst buffer in front of the given client.
func Attach(eng *sim.Engine, c *lustre.Client, cfg Config) *Buffer {
	cfg.applyDefaults()
	return &Buffer{eng: eng, c: c, cfg: cfg}
}

// Stats returns a snapshot.
func (b *Buffer) Stats() Stats { return b.stats }

// Used returns current occupancy in bytes.
func (b *Buffer) Used() int64 { return b.used }

// Idle reports whether everything absorbed has drained.
func (b *Buffer) Idle() bool {
	return b.used == 0 && len(b.queue) == 0 && b.draining == 0 && len(b.waiters) == 0
}

// Write absorbs the range locally (completing at ingest speed) and schedules
// the drain; when the buffer is full the write waits for drained space —
// the burst-buffer saturation regime.
func (b *Buffer) Write(h *lustre.Handle, off, length int64, done func()) {
	seg := segment{h: h, off: off, length: length}
	if b.used+length > b.cfg.Capacity {
		b.stats.Stalls++
		b.waiters = append(b.waiters, waiter{seg: seg, done: done})
		return
	}
	b.absorb(seg, done)
}

func (b *Buffer) absorb(seg segment, done func()) {
	b.used += seg.length
	if b.used > b.stats.PeakUsage {
		b.stats.PeakUsage = b.used
	}
	b.stats.Absorbed += seg.length
	b.queue = append(b.queue, seg)
	ingest := sim.Time(float64(seg.length) / b.cfg.IngestBps * float64(sim.Second))
	b.eng.Schedule(ingest, func() {
		done()
		b.drainLoop()
	})
}

// drainLoop keeps up to DrainConcurrency PFS writes in flight.
func (b *Buffer) drainLoop() {
	for b.draining < b.cfg.DrainConcurrency && len(b.queue) > 0 {
		seg := b.queue[0]
		b.queue = b.queue[1:]
		b.draining++
		b.c.Write(seg.h, seg.off, seg.length, func() {
			b.draining--
			b.used -= seg.length
			b.stats.Drained += seg.length
			b.admitWaiters()
			b.drainLoop()
		})
	}
}

// admitWaiters releases stalled writes FIFO as space frees.
func (b *Buffer) admitWaiters() {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		if b.used+w.seg.length > b.cfg.Capacity {
			return
		}
		b.waiters = b.waiters[1:]
		b.absorb(w.seg, w.done)
	}
}

// WriteFn adapts the buffer to workload.Runner's write hook.
func (b *Buffer) WriteFn() func(h *lustre.Handle, off, length int64, done func()) {
	return func(h *lustre.Handle, off, length int64, done func()) {
		b.Write(h, off, length, done)
	}
}
