// Package label implements the ground-truth labelling of §III-D: operations
// from an interference run are matched with the same operations in a
// baseline (interference-free) run of the same workload, and each time
// window's degradation level is the mean of the per-operation I/O-time
// ratios:
//
//	Level_degrade = Avg_{i in IORequests} iotime_interference(i) / iotime_base(i)
//
// Degradation levels are then discretized into the paper's bins: >=2x for
// the binary model, and {<2, 2-5, >=5} ("mild", "moderate", "severe",
// after Lu et al.) for the multi-class model.
package label

import (
	"fmt"
	"sort"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// Key identifies one operation across runs of the same workload.
type Key struct {
	Rank int
	Iter int
	Seq  int
}

// KeyOf extracts the matching key from a record.
func KeyOf(rec workload.Record) Key {
	return Key{Rank: rec.Rank, Iter: rec.Iter, Seq: rec.Seq}
}

// Labeler matches interference-run operations against a baseline run.
type Labeler struct {
	base       map[Key]sim.Time
	windowSize sim.Time
	minOps     int
}

// New builds a labeler from the baseline run's records. minOps is the
// minimum number of matched operations a window needs to receive a label
// (sparser windows are discarded as too noisy).
func New(baseline []workload.Record, windowSize sim.Time, minOps int) *Labeler {
	if windowSize <= 0 {
		panic("label: non-positive window")
	}
	if minOps < 1 {
		minOps = 1
	}
	base := make(map[Key]sim.Time, len(baseline))
	for _, rec := range baseline {
		if !rec.Op.Kind.IsIO() {
			continue
		}
		base[KeyOf(rec)] = rec.Duration()
	}
	return &Labeler{base: base, windowSize: windowSize, minOps: minOps}
}

// Matched reports how many of the given records have a baseline counterpart.
func (l *Labeler) Matched(recs []workload.Record) int {
	n := 0
	for _, rec := range recs {
		if _, ok := l.base[KeyOf(rec)]; ok {
			n++
		}
	}
	return n
}

// Degradations returns, per window index (by op start time), the mean
// iotime ratio of the window's matched operations. Windows with fewer than
// minOps matched ops are omitted.
func (l *Labeler) Degradations(interf []workload.Record) map[int]float64 {
	type acc struct {
		sum float64
		n   int
	}
	accs := make(map[int]*acc)
	for _, rec := range interf {
		if !rec.Op.Kind.IsIO() {
			continue
		}
		baseDur, ok := l.base[KeyOf(rec)]
		if !ok || baseDur <= 0 {
			continue
		}
		idx := int(rec.Start / l.windowSize)
		a, ok := accs[idx]
		if !ok {
			a = &acc{}
			accs[idx] = a
		}
		a.sum += float64(rec.Duration()) / float64(baseDur)
		a.n++
	}
	out := make(map[int]float64, len(accs))
	for idx, a := range accs {
		if a.n >= l.minOps {
			out[idx] = a.sum / float64(a.n)
		}
	}
	return out
}

// Bins discretizes degradation levels into class labels.
type Bins struct {
	// Thresholds are ascending bin edges; a degradation d gets the label
	// equal to the number of thresholds <= d.
	Thresholds []float64
}

// BinaryBins is the paper's binary setting: class 1 iff slowdown >= 2x.
func BinaryBins() Bins { return Bins{Thresholds: []float64{2}} }

// SeverityBins is the paper's 3-class setting: <2 (mild), 2-5 (moderate),
// >=5 (severe).
func SeverityBins() Bins { return Bins{Thresholds: []float64{2, 5}} }

// Classes returns the number of classes.
func (b Bins) Classes() int { return len(b.Thresholds) + 1 }

// Label maps a degradation level to its class.
func (b Bins) Label(d float64) int {
	return sort.SearchFloat64s(b.Thresholds, d+1e-12)
}

// Name renders a class for reports, e.g. "<2x", "2-5x", ">=5x".
func (b Bins) Name(class int) string {
	switch {
	case class == 0:
		return fmt.Sprintf("<%gx", b.Thresholds[0])
	case class == len(b.Thresholds):
		return fmt.Sprintf(">=%gx", b.Thresholds[len(b.Thresholds)-1])
	default:
		return fmt.Sprintf("%g-%gx", b.Thresholds[class-1], b.Thresholds[class])
	}
}
