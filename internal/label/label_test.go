package label

import (
	"math"
	"testing"
	"testing/quick"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func mkRec(rank, iter, seq int, start, dur sim.Time) workload.Record {
	return workload.Record{
		Rank: rank, Iter: iter, Seq: seq,
		Op:    workload.Op{Kind: workload.Read, Size: 100},
		Start: start, End: start + dur,
	}
}

func TestDegradationAveraging(t *testing.T) {
	base := []workload.Record{
		mkRec(0, 0, 0, 0, 10*sim.Millisecond),
		mkRec(0, 0, 1, 0, 10*sim.Millisecond),
	}
	l := New(base, sim.Second, 1)
	interf := []workload.Record{
		mkRec(0, 0, 0, sim.Millisecond, 20*sim.Millisecond),   // 2x
		mkRec(0, 0, 1, 2*sim.Millisecond, 40*sim.Millisecond), // 4x
	}
	degs := l.Degradations(interf)
	if d := degs[0]; d != 3 {
		t.Fatalf("degradation=%f, want mean(2,4)=3", d)
	}
}

func TestWindowPartitioning(t *testing.T) {
	base := []workload.Record{
		mkRec(0, 0, 0, 0, 10*sim.Millisecond),
		mkRec(0, 0, 1, 0, 10*sim.Millisecond),
	}
	l := New(base, sim.Second, 1)
	interf := []workload.Record{
		mkRec(0, 0, 0, sim.Seconds(0.5), 10*sim.Millisecond), // window 0, 1x
		mkRec(0, 0, 1, sim.Seconds(1.5), 50*sim.Millisecond), // window 1, 5x
	}
	degs := l.Degradations(interf)
	if degs[0] != 1 || degs[1] != 5 {
		t.Fatalf("degs=%v", degs)
	}
}

func TestMinOpsFiltersSparseWindows(t *testing.T) {
	base := []workload.Record{mkRec(0, 0, 0, 0, sim.Millisecond)}
	l := New(base, sim.Second, 3)
	interf := []workload.Record{mkRec(0, 0, 0, 0, sim.Millisecond)}
	if degs := l.Degradations(interf); len(degs) != 0 {
		t.Fatalf("sparse window should be dropped: %v", degs)
	}
}

func TestUnmatchedOpsIgnored(t *testing.T) {
	base := []workload.Record{mkRec(0, 0, 0, 0, 10*sim.Millisecond)}
	l := New(base, sim.Second, 1)
	interf := []workload.Record{
		mkRec(0, 0, 0, 0, 20*sim.Millisecond), // matched, 2x
		mkRec(1, 0, 5, 0, 90*sim.Millisecond), // no baseline counterpart
	}
	if l.Matched(interf) != 1 {
		t.Fatalf("matched=%d", l.Matched(interf))
	}
	if d := l.Degradations(interf)[0]; d != 2 {
		t.Fatalf("unmatched op contaminated label: %f", d)
	}
}

// Regression: a baseline op that completed instantaneously (Start == End,
// possible for zero-byte ops or pure cache hits at coarse clock resolution)
// must not poison the window's mean with a division by zero — the op is
// skipped, not turned into +Inf/NaN.
func TestZeroDurationBaselineOpSkipped(t *testing.T) {
	base := []workload.Record{
		mkRec(0, 0, 0, 0, 0), // zero-duration baseline op
		mkRec(0, 0, 1, 0, 10*sim.Millisecond),
	}
	l := New(base, sim.Second, 1)
	interf := []workload.Record{
		mkRec(0, 0, 0, 0, 50*sim.Millisecond), // matches the zero-dur op
		mkRec(0, 0, 1, 0, 20*sim.Millisecond), // clean 2x
	}
	degs := l.Degradations(interf)
	d, ok := degs[0]
	if !ok {
		t.Fatal("window 0 dropped entirely; the healthy op should still label it")
	}
	if math.IsNaN(d) || math.IsInf(d, 0) {
		t.Fatalf("zero-duration baseline op produced %f", d)
	}
	if d != 2 {
		t.Fatalf("degradation=%f, want 2 (zero-dur op excluded from the mean)", d)
	}
}

func TestIterDistinguishesLoopIterations(t *testing.T) {
	base := []workload.Record{
		mkRec(0, 0, 0, 0, 10*sim.Millisecond),
		mkRec(0, 1, 0, sim.Second, 30*sim.Millisecond),
	}
	l := New(base, sim.Second, 1)
	interf := []workload.Record{mkRec(0, 1, 0, 0, 60*sim.Millisecond)}
	if d := l.Degradations(interf)[0]; d != 2 {
		t.Fatalf("iter matching broken: %f", d)
	}
}

func TestBinaryBins(t *testing.T) {
	b := BinaryBins()
	if b.Classes() != 2 {
		t.Fatalf("classes=%d", b.Classes())
	}
	cases := map[float64]int{0.5: 0, 1.0: 0, 1.99: 0, 2.0: 1, 5.0: 1, 40.9: 1}
	for d, want := range cases {
		if got := b.Label(d); got != want {
			t.Fatalf("Label(%f)=%d, want %d", d, got, want)
		}
	}
	if b.Name(0) != "<2x" || b.Name(1) != ">=2x" {
		t.Fatalf("names %q %q", b.Name(0), b.Name(1))
	}
}

func TestSeverityBins(t *testing.T) {
	b := SeverityBins()
	if b.Classes() != 3 {
		t.Fatalf("classes=%d", b.Classes())
	}
	cases := map[float64]int{1.0: 0, 2.0: 1, 4.99: 1, 5.0: 2, 26.2: 2}
	for d, want := range cases {
		if got := b.Label(d); got != want {
			t.Fatalf("Label(%f)=%d, want %d", d, got, want)
		}
	}
	if b.Name(1) != "2-5x" || b.Name(2) != ">=5x" {
		t.Fatalf("names %q %q", b.Name(1), b.Name(2))
	}
}

// Property: labels are monotone in degradation and always within range.
func TestPropertyBinsMonotone(t *testing.T) {
	b := SeverityBins()
	f := func(raw []uint16) bool {
		last, lastD := 0, 0.0
		for _, r := range raw {
			d := float64(r) / 100
			if d < lastD {
				continue
			}
			l := b.Label(d)
			if l < 0 || l >= b.Classes() {
				return false
			}
			if d >= lastD && l < last {
				return false
			}
			last, lastD = l, d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
