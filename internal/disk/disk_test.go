package disk

import (
	"testing"
	"testing/quick"

	"quanterference/internal/sim"
)

func newTestDisk(t *testing.T) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, Config{Seed: 1})
}

// run submits sequentially: each request is issued when the previous
// completes, and the total elapsed time is returned.
func run(eng *sim.Engine, d *Disk, reqs []Request) sim.Time {
	var issue func(i int)
	issue = func(i int) {
		if i >= len(reqs) {
			return
		}
		r := reqs[i]
		r.Done = func() { issue(i + 1) }
		d.Submit(&r)
	}
	issue(0)
	eng.Run()
	return eng.Now()
}

func TestSequentialFasterThanRandom(t *testing.T) {
	// 64 sequential 256 KiB reads vs 64 scattered 256 KiB reads.
	const chunk = 512 // sectors = 256 KiB
	seq := make([]Request, 64)
	for i := range seq {
		seq[i] = Request{Op: Read, Sector: int64(i) * chunk, Sectors: chunk}
	}
	engA, da := sim.NewEngine(), (*Disk)(nil)
	da = New(engA, Config{Seed: 1})
	tSeq := run(engA, da, seq)

	rng := sim.NewRNG(2)
	rnd := make([]Request, 64)
	for i := range rnd {
		rnd[i] = Request{Op: Read, Sector: rng.Int63n(1<<31 - chunk), Sectors: chunk}
	}
	engB := sim.NewEngine()
	db := New(engB, Config{Seed: 1})
	tRnd := run(engB, db, rnd)

	if tRnd < 3*tSeq {
		t.Fatalf("random (%d) should be >=3x slower than sequential (%d)", tRnd, tSeq)
	}
	if da.Stats().SeqRequests < 63 {
		t.Fatalf("sequential run detected only %d streaming requests", da.Stats().SeqRequests)
	}
}

func TestInterleavedStreamsSeekBound(t *testing.T) {
	// Two interleaved sequential streams at distant locations: every request
	// should incur a seek — the core interference mechanism of Table I row 1.
	const chunk = 2048
	var reqs []Request
	base2 := int64(1) << 30
	for i := 0; i < 32; i++ {
		reqs = append(reqs,
			Request{Op: Read, Sector: int64(i) * chunk, Sectors: chunk},
			Request{Op: Read, Sector: base2 + int64(i)*chunk, Sectors: chunk},
		)
	}
	eng := sim.NewEngine()
	d := New(eng, Config{Seed: 3})
	run(eng, d, reqs)
	st := d.Stats()
	if st.SeqRequests > 1 {
		t.Fatalf("interleaved streams should all seek, got %d sequential", st.SeqRequests)
	}
	if st.SeekTime < st.BusyTime/2 {
		t.Fatalf("expected seek-bound service: seek=%d busy=%d", st.SeekTime, st.BusyTime)
	}
}

func TestTransferTimeMatchesRate(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{Seed: 1, TransferBps: 100e6})
	// Sequential from head position 0: no positioning cost.
	done := false
	d.Submit(&Request{Op: Write, Sector: 0, Sectors: 2048, Done: func() { done = true }})
	eng.Run()
	if !done {
		t.Fatal("request never completed")
	}
	want := sim.Time(float64(2048*SectorSize) / 100e6 * float64(sim.Second))
	if eng.Now() != want {
		t.Fatalf("elapsed %d, want %d", eng.Now(), want)
	}
}

func TestHeadTracksLastRequest(t *testing.T) {
	eng, d := newTestDisk(t)
	d.Submit(&Request{Op: Read, Sector: 5000, Sectors: 100, Done: func() {}})
	eng.Run()
	if d.Head() != 5100 {
		t.Fatalf("head=%d, want 5100", d.Head())
	}
}

func TestStatsSectorCounters(t *testing.T) {
	eng, d := newTestDisk(t)
	reqs := []Request{
		{Op: Read, Sector: 0, Sectors: 64},
		{Op: Write, Sector: 64, Sectors: 128},
		{Op: Write, Sector: 192, Sectors: 8},
	}
	run(eng, d, reqs)
	st := d.Stats()
	if st.SectorsRead != 64 || st.SectorsWrite != 136 {
		t.Fatalf("sectors read=%d write=%d", st.SectorsRead, st.SectorsWrite)
	}
	if st.Requests != 3 {
		t.Fatalf("requests=%d", st.Requests)
	}
}

func TestSubmitWhileBusyPanics(t *testing.T) {
	eng, d := newTestDisk(t)
	d.Submit(&Request{Op: Read, Sector: 0, Sectors: 8, Done: func() {}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Submit(&Request{Op: Read, Sector: 8, Sectors: 8, Done: func() {}})
	eng.Run()
}

func TestOutOfRangePanics(t *testing.T) {
	eng, d := newTestDisk(t)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Submit(&Request{Op: Read, Sector: 1 << 31, Sectors: 1, Done: func() {}})
}

// Property: service time is positive and seek component never exceeds
// SeekMax + one revolution.
func TestPropertyServiceTimeBounds(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{Seed: 9})
	rpm := 7200.0
	revolution := sim.Time(60.0 / rpm * float64(sim.Second))
	f := func(sectorRaw uint32, countRaw uint16) bool {
		sector := int64(sectorRaw) % (1<<31 - 1024)
		count := int64(countRaw%512) + 1
		r := &Request{Op: Read, Sector: sector, Sectors: count}
		total, pos := d.serviceTime(r)
		if total <= 0 || pos < 0 {
			return false
		}
		return pos <= 14*sim.Millisecond+revolution
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: busy time accumulates monotonically and equals the elapsed time
// for back-to-back submissions.
func TestPropertyBusyTimeMatchesElapsed(t *testing.T) {
	f := func(seeds uint8) bool {
		eng := sim.NewEngine()
		d := New(eng, Config{Seed: int64(seeds)})
		rng := sim.NewRNG(int64(seeds) + 100)
		reqs := make([]Request, 20)
		for i := range reqs {
			reqs[i] = Request{Op: Op(rng.Intn(2)), Sector: rng.Int63n(1 << 28), Sectors: rng.Int63n(255) + 1}
		}
		elapsed := run(eng, d, reqs)
		return d.Stats().BusyTime == elapsed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	mk := func() sim.Time {
		eng := sim.NewEngine()
		d := New(eng, Config{Seed: 77})
		rng := sim.NewRNG(5)
		reqs := make([]Request, 50)
		for i := range reqs {
			reqs[i] = Request{Op: Op(rng.Intn(2)), Sector: rng.Int63n(1 << 29), Sectors: 64}
		}
		return run(eng, d, reqs)
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestFailSlowInjection(t *testing.T) {
	run4x := func(factor float64) sim.Time {
		eng := sim.NewEngine()
		d := New(eng, Config{Seed: 1, TransferBps: 100e6})
		d.SetSlowdown(factor)
		done := false
		d.Submit(&Request{Op: Read, Sector: 0, Sectors: 2048, Done: func() { done = true }})
		eng.Run()
		if !done {
			t.Fatal("request lost")
		}
		return eng.Now()
	}
	healthy := run4x(1)
	degraded := run4x(4)
	if degraded != 4*healthy {
		t.Fatalf("fail-slow 4x gave %d vs healthy %d", degraded, healthy)
	}
	// Factors below 1 clamp to healthy.
	if run4x(0.1) != healthy {
		t.Fatal("sub-1 factor must clamp to 1")
	}
}

func TestFailSlowMidRun(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{Seed: 2, TransferBps: 100e6})
	var times []sim.Time
	var issue func(i int)
	issue = func(i int) {
		if i >= 4 {
			return
		}
		start := eng.Now()
		d.Submit(&Request{Op: Read, Sector: int64(i) * 2048, Sectors: 2048, Done: func() {
			times = append(times, eng.Now()-start)
			if i == 1 {
				d.SetSlowdown(10) // degradation strikes mid-run
			}
			issue(i + 1)
		}})
	}
	issue(0)
	eng.Run()
	if times[3] < 5*times[1] {
		t.Fatalf("degradation not applied mid-run: %v", times)
	}
	if d.Slowdown() != 10 {
		t.Fatalf("slowdown=%f", d.Slowdown())
	}
}
