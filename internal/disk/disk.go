// Package disk models a rotational hard drive: seek time as a function of
// head travel distance, rotational latency, and media transfer time. The
// model matches the 7200 RPM SATA disks used in the paper's testbed closely
// enough to reproduce the dominant interference mechanism — competing
// sequential streams degenerating into seek-bound access.
//
// The disk is a single-server device: it services one request at a time.
// Reordering, merging, and queueing policy live one layer up, in
// internal/blockqueue.
package disk

import (
	"fmt"
	"math"

	"quanterference/internal/obs"
	"quanterference/internal/sim"
)

// SectorSize is the fixed logical sector size in bytes.
const SectorSize = 512

// Op distinguishes read from write requests.
type Op int

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Request is one device-level I/O.
type Request struct {
	Op      Op
	Sector  int64 // starting logical sector
	Sectors int64 // length in sectors
	// Done is invoked when the media operation completes.
	Done func()
}

// Config describes the drive geometry and performance envelope.
type Config struct {
	// TotalSectors is the addressable capacity (default: 1 TB).
	TotalSectors int64
	// RPM sets rotational latency (default 7200: full revolution 8.33 ms).
	RPM float64
	// SeekMin is the track-to-track seek time (default 0.5 ms).
	SeekMin sim.Time
	// SeekMax is the full-stroke seek time (default 14 ms).
	SeekMax sim.Time
	// TransferBps is the sustained media rate in bytes/second
	// (default 150 MB/s, typical for 7200 RPM SATA3).
	TransferBps float64
	// FlatAccess, when positive, switches the device to a flat-latency
	// (NVMe-class flash) model: every request costs FlatAccess + transfer
	// regardless of address, with no seek, no rotational delay, and no RNG
	// draw — competing streams no longer degenerate into seek-bound access.
	// RPM/SeekMin/SeekMax are ignored and SeqRequests stays zero (flash has
	// no head position to hit). 0 (the default) keeps the rotational model.
	FlatAccess sim.Time
	// Seed feeds the rotational-position RNG.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.TotalSectors == 0 {
		c.TotalSectors = 1 << 31 // 1 TiB at 512 B sectors
	}
	if c.RPM == 0 {
		c.RPM = 7200
	}
	if c.SeekMin == 0 {
		c.SeekMin = 500 * sim.Microsecond
	}
	if c.SeekMax == 0 {
		c.SeekMax = 14 * sim.Millisecond
	}
	if c.TransferBps == 0 {
		c.TransferBps = 150e6
	}
}

// Stats accumulates device-level counters.
type Stats struct {
	Requests     uint64
	SeqRequests  uint64 // serviced with no seek (head already in position)
	SectorsRead  uint64
	SectorsWrite uint64
	BusyTime     sim.Time // total time the device spent servicing requests
	SeekTime     sim.Time // portion of busy time spent seeking/rotating
}

// Disk is the device model.
type Disk struct {
	eng  *sim.Engine
	cfg  Config
	rng  *sim.RNG
	busy bool
	head int64 // sector the head will be over after the in-flight request
	// slow is a fail-slow degradation multiplier on service time (1 =
	// healthy). Fail-slow devices — the phenomenon behind the paper's
	// severity bins (Lu et al., Perseus) — serve requests correctly but
	// arbitrarily slower.
	slow  float64
	stats Stats
	// pending is the in-flight request; completeFn is the completion bound
	// once at construction so the steady-state Submit path allocates nothing.
	pending    *Request
	completeFn func()

	// Observability handles; nil unless Instrument attached a sink.
	sink         *obs.Sink
	instance     string
	cRequests    *obs.Counter
	cSeqRequests *obs.Counter
	cPosNS       *obs.Counter
	cBusyNS      *obs.Counter
	hServiceNS   *obs.Histogram
}

// New builds a disk. The zero Config gives the paper's 1 TB 7200 RPM drive.
func New(eng *sim.Engine, cfg Config) *Disk {
	cfg.applyDefaults()
	if cfg.TotalSectors <= 0 {
		panic("disk: non-positive capacity")
	}
	d := &Disk{
		eng:  eng,
		cfg:  cfg,
		rng:  sim.NewRNG(cfg.Seed ^ 0x6b15),
		slow: 1,
	}
	d.completeFn = d.complete
	return d
}

// Instrument registers device metrics on the sink under the given instance
// name ("ost3", "mdt"): request and sequential-hit counts, time split into
// positioning (seek+rotation) vs total busy time — the paper's dominant
// interference mechanism is exactly this split degrading — and a
// service-time histogram. Each serviced request also becomes a trace span.
func (d *Disk) Instrument(s *obs.Sink, instance string) {
	d.sink = s
	d.instance = instance
	d.cRequests = s.Counter("disk", instance, "requests")
	d.cSeqRequests = s.Counter("disk", instance, "seq_requests")
	d.cPosNS = s.Counter("disk", instance, "positioning_ns")
	d.cBusyNS = s.Counter("disk", instance, "busy_ns")
	d.hServiceNS = s.Histogram("disk", instance, "service_ns", obs.TimeBuckets())
}

// SetSlowdown injects (or clears, with factor 1) a fail-slow condition:
// every subsequent request's service time is multiplied by factor.
func (d *Disk) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.slow = factor
}

// ScaleSlowdown multiplies the current fail-slow factor by factor, clamping
// at 1 (healthy). Fault episodes stack multiplicatively: applying severity s
// and later scaling by 1/s restores the pre-episode factor even when
// episodes overlap.
func (d *Disk) ScaleSlowdown(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("disk: non-positive slowdown scale %g", factor))
	}
	d.slow *= factor
	if d.slow < 1 {
		d.slow = 1
	}
}

// Slowdown returns the current fail-slow factor (1 = healthy).
func (d *Disk) Slowdown() float64 { return d.slow }

// Busy reports whether a request is currently being serviced.
func (d *Disk) Busy() bool { return d.busy }

// Head returns the current head sector position.
func (d *Disk) Head() int64 { return d.head }

// Stats returns a copy of the accumulated counters.
func (d *Disk) Stats() Stats { return d.stats }

// Config returns the effective configuration after defaults.
func (d *Disk) Config() Config { return d.cfg }

// ServiceTime computes how long a request at the given starting sector would
// take with the head currently at head. Exposed for the block queue's
// elevator to estimate costs and for tests.
func (d *Disk) serviceTime(r *Request) (total, positioning sim.Time) {
	if r.Sector < 0 || r.Sectors <= 0 || r.Sector+r.Sectors > d.cfg.TotalSectors {
		panic(fmt.Sprintf("disk: request out of range: sector=%d count=%d cap=%d",
			r.Sector, r.Sectors, d.cfg.TotalSectors))
	}
	transfer := sim.Time(float64(r.Sectors*SectorSize) / d.cfg.TransferBps * float64(sim.Second))
	if d.cfg.FlatAccess > 0 {
		// Flat-latency device: address-independent access cost, no seek or
		// rotation. The positioning share is the fixed access time, so the
		// busy-vs-positioning split the monitors report stays meaningful.
		return sim.Time(float64(d.cfg.FlatAccess+transfer) * d.slow), d.cfg.FlatAccess
	}
	if r.Sector == d.head {
		// Head already positioned: pure streaming.
		return sim.Time(float64(transfer) * d.slow), 0
	}
	dist := r.Sector - d.head
	if dist < 0 {
		dist = -dist
	}
	// Seek time grows with the square root of travel distance, the standard
	// first-order model for voice-coil actuators.
	frac := math.Sqrt(float64(dist) / float64(d.cfg.TotalSectors))
	seek := d.cfg.SeekMin + sim.Time(frac*float64(d.cfg.SeekMax-d.cfg.SeekMin))
	// Rotational latency: uniform over one revolution.
	revolution := sim.Time(60.0 / d.cfg.RPM * float64(sim.Second))
	rot := sim.Time(d.rng.Float64() * float64(revolution))
	total = sim.Time(float64(seek+rot+transfer) * d.slow)
	return total, seek + rot
}

// Submit services the request. The disk must be idle: callers (the block
// queue) are responsible for serializing submissions.
func (d *Disk) Submit(r *Request) {
	if d.busy {
		panic("disk: submit while busy")
	}
	if r.Done == nil {
		panic("disk: request without completion callback")
	}
	d.busy = true
	total, positioning := d.serviceTime(r)
	d.stats.Requests++
	if positioning == 0 {
		d.stats.SeqRequests++
		d.cSeqRequests.Inc()
	}
	d.stats.SeekTime += positioning
	d.stats.BusyTime += total
	d.cRequests.Inc()
	d.cPosNS.Add(uint64(positioning))
	d.cBusyNS.Add(uint64(total))
	d.hServiceNS.Observe(float64(total))
	d.sink.Span("disk", d.instance, r.Op.String(), d.eng.Now(), total)
	if r.Op == Read {
		d.stats.SectorsRead += uint64(r.Sectors)
	} else {
		d.stats.SectorsWrite += uint64(r.Sectors)
	}
	d.pending = r
	d.eng.Schedule(total, d.completeFn)
}

// complete finishes the in-flight request. The head moves before Done runs
// so a completion callback that resubmits sees the post-request position.
func (d *Disk) complete() {
	r := d.pending
	d.pending = nil
	d.busy = false
	d.head = r.Sector + r.Sectors
	r.Done()
}
