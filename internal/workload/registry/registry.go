// Package registry resolves workload names ("ior-easy-write",
// "dlio-unet3d", "enzo", ...) into configured generators, giving the
// command-line tools and examples one tested resolution path.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"quanterference/internal/workload"
	"quanterference/internal/workload/apps"
	"quanterference/internal/workload/dlio"
	"quanterference/internal/workload/io500"
)

// Spec carries the common knobs every named workload understands. Zero
// values take each generator's defaults.
type Spec struct {
	// Dir is the namespace prefix (must be unique per concurrent instance).
	Dir string
	// Ranks must match the Runner rank count.
	Ranks int
	// Scale multiplies workload volume (0 = 1.0).
	Scale float64
}

func (s *Spec) applyDefaults() {
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Ranks == 0 {
		s.Ranks = 1
	}
}

func (s Spec) bytes(b int64) int64 {
	v := int64(float64(b) * s.Scale)
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

func (s Spec) count(n int) int {
	v := int(float64(n) * s.Scale)
	if v < 8 {
		v = 8
	}
	return v
}

// Names lists every resolvable workload, sorted.
func Names() []string {
	names := []string{"dlio-unet3d", "dlio-bert", "enzo", "amrex", "openpmd"}
	for _, t := range io500.ExtendedTasks() {
		names = append(names, t.String())
	}
	sort.Strings(names)
	return names
}

// Resolve builds a generator for the named workload.
func Resolve(name string, spec Spec) (workload.Generator, error) {
	spec.applyDefaults()
	if task, err := io500.ParseTask(name); err == nil {
		return io500.New(task, io500.Params{
			Dir:           spec.Dir,
			Ranks:         spec.Ranks,
			EasyFileBytes: spec.bytes(32 << 20),
			HardOps:       spec.count(300),
			MdtFiles:      spec.count(200),
		}), nil
	}
	switch name {
	case "dlio-unet3d":
		return dlio.New(dlio.Unet3D, dlio.Params{
			Dir: spec.Dir, Ranks: spec.Ranks,
			Samples: spec.count(48), SampleBytes: spec.bytes(4 << 20),
		}), nil
	case "dlio-bert":
		return dlio.New(dlio.BERT, dlio.Params{
			Dir: spec.Dir, Ranks: spec.Ranks, Steps: spec.count(150),
		}), nil
	}
	if app, err := apps.ParseApp(name); err == nil {
		return apps.New(app, apps.Params{
			Dir: spec.Dir, Ranks: spec.Ranks,
			Cycles: 8, CheckpointBytes: spec.bytes(8 << 20),
		}), nil
	}
	return nil, fmt.Errorf("registry: unknown workload %q (known: %s)",
		name, strings.Join(Names(), ", "))
}
