package registry

import (
	"strings"
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func TestResolveEveryName(t *testing.T) {
	for _, name := range Names() {
		gen, err := Resolve(name, Spec{Dir: "/w-" + name, Ranks: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gen.Name() != name {
			t.Fatalf("resolved %q, asked for %q", gen.Name(), name)
		}
		if len(gen.Ops(0)) == 0 {
			t.Fatalf("%s generates no ops", name)
		}
	}
}

func TestUnknownNameError(t *testing.T) {
	_, err := Resolve("nope", Spec{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "ior-easy-write") {
		t.Fatalf("error should list known names: %v", err)
	}
}

func TestScaleShrinksVolume(t *testing.T) {
	big, _ := Resolve("ior-easy-write", Spec{Dir: "/a", Ranks: 1, Scale: 1})
	small, _ := Resolve("ior-easy-write", Spec{Dir: "/b", Ranks: 1, Scale: 0.25})
	if len(small.Ops(0)) >= len(big.Ops(0)) {
		t.Fatalf("scale had no effect: %d vs %d ops", len(small.Ops(0)), len(big.Ops(0)))
	}
}

func TestResolvedGeneratorsRun(t *testing.T) {
	// Every named workload must run to completion on a fresh cluster.
	for _, name := range Names() {
		eng := sim.NewEngine()
		net := netsim.New(eng, netsim.Config{})
		fs := lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
		gen, err := Resolve(name, Spec{Dir: "/run-" + name, Ranks: 2, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		finished := false
		r := &workload.Runner{
			FS: fs, Name: name, Nodes: []string{"c0", "c1"}, Ranks: 2, Gen: gen,
			OnDone: func() { finished = true },
		}
		r.Start()
		eng.RunUntil(sim.Seconds(600))
		if !finished {
			t.Fatalf("%s did not finish", name)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 16 { // 11 io500 + 2 dlio + 3 apps
		t.Fatalf("names=%d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
