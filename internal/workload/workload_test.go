package workload

import (
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
)

func newFS() (*sim.Engine, *lustre.FS) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	return eng, lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
}

// scriptGen is a fixed op sequence for every rank.
type scriptGen struct {
	name string
	ops  func(rank int) []Op
	prep func(fs *lustre.FS)
}

func (s scriptGen) Name() string { return s.name }
func (s scriptGen) Ops(rank int) []Op {
	return s.ops(rank)
}
func (s scriptGen) Prepare(fs *lustre.FS) {
	if s.prep != nil {
		s.prep(fs)
	}
}

func basicScript(rank int) []Op {
	path := "/w/rank" + string(rune('0'+rank))
	return []Op{
		{Kind: Create, Path: path, StripeCount: 1},
		{Kind: Write, Path: path, Offset: 0, Size: 1 << 20},
		{Kind: Compute, Dur: 10 * sim.Millisecond},
		{Kind: Read, Path: path, Offset: 0, Size: 1 << 20},
		{Kind: Stat, Path: path},
		{Kind: Close, Path: path},
	}
}

func TestRunnerEmitsRecordsInOrder(t *testing.T) {
	eng, fs := newFS()
	var recs []Record
	done := false
	r := &Runner{
		FS: fs, Name: "basic", Nodes: []string{"c0"}, Ranks: 1,
		Gen:      scriptGen{name: "basic", ops: basicScript},
		OnRecord: func(rec Record) { recs = append(recs, rec) },
		OnDone:   func() { done = true },
	}
	r.Start()
	eng.Run()
	if !done {
		t.Fatal("OnDone never fired")
	}
	// Compute ops are not recorded: 5 I/O ops.
	if len(recs) != 5 {
		t.Fatalf("records=%d, want 5", len(recs))
	}
	wantKinds := []Kind{Create, Write, Read, Stat, Close}
	for i, rec := range recs {
		if rec.Op.Kind != wantKinds[i] {
			t.Fatalf("record %d kind %s, want %s", i, rec.Op.Kind, wantKinds[i])
		}
		if rec.Seq <= 0 && i > 0 {
			t.Fatalf("record %d missing seq", i)
		}
		if rec.End < rec.Start {
			t.Fatalf("record %d negative duration", i)
		}
	}
	// Metadata ops target the MDT; data ops target OSTs.
	if got := recs[0].Targets; len(got) != 1 || got[0] != fs.MDTIndex() {
		t.Fatalf("create targets %v", got)
	}
	if got := recs[1].Targets; len(got) != 1 || got[0] == fs.MDTIndex() {
		t.Fatalf("write targets %v", got)
	}
}

func TestRunnerMultiRankPlacement(t *testing.T) {
	eng, fs := newFS()
	counts := map[int]int{}
	r := &Runner{
		FS: fs, Name: "multi", Nodes: []string{"c0", "c1"}, Ranks: 4,
		Gen:      scriptGen{name: "multi", ops: basicScript},
		OnRecord: func(rec Record) { counts[rec.Rank]++ },
	}
	r.Start()
	eng.Run()
	for rank := 0; rank < 4; rank++ {
		if counts[rank] != 5 {
			t.Fatalf("rank %d records=%d, want 5", rank, counts[rank])
		}
	}
}

func TestRunnerLoopAndStop(t *testing.T) {
	eng, fs := newFS()
	maxIter := 0
	r := &Runner{
		FS: fs, Name: "loop", Nodes: []string{"c0"}, Ranks: 1, Loop: true,
		Gen: scriptGen{name: "loop", ops: basicScript},
		OnRecord: func(rec Record) {
			if rec.Iter > maxIter {
				maxIter = rec.Iter
			}
		},
	}
	r.Start()
	eng.Schedule(sim.Seconds(2), r.Stop)
	eng.RunUntil(sim.Seconds(10))
	if maxIter < 2 {
		t.Fatalf("loop reached iter %d, want >=2", maxIter)
	}
	if r.Running() {
		t.Fatal("runner still active after Stop")
	}
}

func TestRunnerComputeTakesTime(t *testing.T) {
	eng, fs := newFS()
	gen := scriptGen{name: "compute", ops: func(int) []Op {
		return []Op{{Kind: Compute, Dur: sim.Seconds(1)}}
	}}
	r := &Runner{FS: fs, Name: "c", Nodes: []string{"c0"}, Ranks: 1, Gen: gen}
	r.Start()
	eng.Run()
	if eng.Now() != sim.Seconds(1) {
		t.Fatalf("elapsed %d", eng.Now())
	}
}

func TestRunnerReadWithoutOpenPanics(t *testing.T) {
	eng, fs := newFS()
	gen := scriptGen{name: "bad", ops: func(int) []Op {
		return []Op{{Kind: Read, Path: "/nope", Size: 64}}
	}}
	r := &Runner{FS: fs, Name: "bad", Nodes: []string{"c0"}, Ranks: 1, Gen: gen}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Start()
	eng.Run()
}

func TestRecordDurationAndIterSeq(t *testing.T) {
	eng, fs := newFS()
	var recs []Record
	r := &Runner{
		FS: fs, Name: "iter", Nodes: []string{"c0"}, Ranks: 1, Loop: true,
		Gen:      scriptGen{name: "iter", ops: basicScript},
		OnRecord: func(rec Record) { recs = append(recs, rec) },
	}
	r.Start()
	eng.Schedule(sim.Seconds(1), r.Stop)
	eng.RunUntil(sim.Seconds(5))
	seen := map[[2]int]bool{}
	for _, rec := range recs {
		key := [2]int{rec.Iter, rec.Seq}
		if rec.Iter > 0 && seen[key] {
			t.Fatalf("duplicate (iter,seq) %v", key)
		}
		seen[key] = true
		if rec.Duration() < 0 {
			t.Fatal("negative duration")
		}
	}
	// Same seq across iterations is expected; verify iter 0 and 1 both
	// contain seq 1 (the write).
	if !seen[[2]int{0, 1}] || !seen[[2]int{1, 1}] {
		t.Fatalf("matching key (iter,seq) missing: %v", seen)
	}
}

func TestSequenceConcatenatesPhases(t *testing.T) {
	a := scriptGen{name: "a", ops: func(int) []Op {
		return []Op{{Kind: Create, Path: "/a", StripeCount: 1}, {Kind: Close, Path: "/a"}}
	}}
	b := scriptGen{name: "b", ops: func(int) []Op {
		return []Op{{Kind: Stat, Path: "/a"}}
	}}
	seq := NewSequence("", a, b)
	if seq.Name() != "a+b" {
		t.Fatalf("name %q", seq.Name())
	}
	ops := seq.Ops(0)
	if len(ops) != 3 {
		t.Fatalf("ops=%d", len(ops))
	}
	if seq.PhaseOf(0, 0) != 0 || seq.PhaseOf(0, 1) != 0 || seq.PhaseOf(0, 2) != 1 {
		t.Fatalf("phase mapping wrong: %d %d %d",
			seq.PhaseOf(0, 0), seq.PhaseOf(0, 1), seq.PhaseOf(0, 2))
	}
	if seq.Phases() != 2 || seq.PhaseName(1) != "b" {
		t.Fatal("phase metadata wrong")
	}
}

func TestSequencePhaseOfWithoutOpsCall(t *testing.T) {
	a := scriptGen{name: "a", ops: basicScript}
	seq := NewSequence("s", a, a)
	// PhaseOf must work even when Ops was generated in another process
	// (e.g. when analysing persisted traces).
	if seq.PhaseOf(0, len(basicScript(0))) != 1 {
		t.Fatal("lazy phase bounds wrong")
	}
}

func TestSequenceRunsEndToEnd(t *testing.T) {
	eng, fs := newFS()
	seq := NewSequence("two-phase",
		scriptGen{name: "p0", ops: basicScript},
		scriptGen{name: "p1", ops: func(rank int) []Op {
			path := "/w/rank" + string(rune('0'+rank))
			return []Op{
				{Kind: Open, Path: path},
				{Kind: Read, Path: path, Size: 1 << 20},
				{Kind: Close, Path: path},
			}
		}},
	)
	finished := false
	phases := map[int]int{}
	r := &Runner{
		FS: fs, Name: "seq", Nodes: []string{"c0"}, Ranks: 2, Gen: seq,
		OnRecord: func(rec Record) { phases[seq.PhaseOf(rec.Rank, rec.Seq)]++ },
		OnDone:   func() { finished = true },
	}
	r.Start()
	eng.Run()
	if !finished {
		t.Fatal("sequence did not finish")
	}
	if phases[0] == 0 || phases[1] == 0 {
		t.Fatalf("phase attribution: %v", phases)
	}
}

func TestRunnerPauseResume(t *testing.T) {
	eng, fs := newFS()
	var recs []Record
	r := &Runner{
		FS: fs, Name: "pause", Nodes: []string{"c0"}, Ranks: 2,
		Gen:      scriptGen{name: "pause", ops: basicScript},
		OnRecord: func(rec Record) { recs = append(recs, rec) },
	}
	r.Pause() // gate closed before Start: ranks hold at their first op
	r.Start()
	eng.Run()
	if len(recs) != 0 {
		t.Fatalf("paused runner emitted %d records", len(recs))
	}
	if !r.Paused() || !r.Running() {
		t.Fatalf("paused=%v running=%v, want both true", r.Paused(), r.Running())
	}
	// Both ranks hold their first op (Create, not I/O-sized): 0 held bytes.
	if r.HeldBytes() != 0 {
		t.Fatalf("HeldBytes=%d before any data op", r.HeldBytes())
	}
	r.Resume()
	eng.Run()
	if len(recs) != 10 {
		t.Fatalf("records=%d after resume, want 10", len(recs))
	}
	if r.Running() {
		t.Fatal("runner still active after completing")
	}
	if r.HeldBytes() != 0 {
		t.Fatalf("HeldBytes=%d after resume, want 0", r.HeldBytes())
	}
}

func TestRunnerPauseAccountsHeldBytes(t *testing.T) {
	eng, fs := newFS()
	r := &Runner{
		FS: fs, Name: "held", Nodes: []string{"c0"}, Ranks: 1,
		Gen: scriptGen{name: "held", ops: basicScript},
	}
	// Pause right after the create completes: the rank arrives at the
	// 1 MiB write and holds it at the gate.
	r.Start()
	eng.Schedule(sim.Microsecond, r.Pause)
	eng.Run()
	if !r.Paused() {
		t.Fatal("runner not paused")
	}
	if r.HeldBytes() != 1<<20 {
		t.Fatalf("HeldBytes=%d, want %d (the held write)", r.HeldBytes(), 1<<20)
	}
	r.Resume()
	eng.Run()
	if r.Running() {
		t.Fatal("runner did not finish after resume")
	}
}

func TestRunnerStopWhileHeld(t *testing.T) {
	eng, fs := newFS()
	var recs []Record
	r := &Runner{
		FS: fs, Name: "stop-held", Nodes: []string{"c0"}, Ranks: 1, Loop: true,
		Gen:      scriptGen{name: "stop-held", ops: basicScript},
		OnRecord: func(rec Record) { recs = append(recs, rec) },
	}
	r.Start()
	eng.Schedule(sim.Seconds(1), r.Pause)
	eng.RunUntil(sim.Seconds(2))
	if !r.Running() {
		t.Fatal("runner exited while held")
	}
	n := len(recs)
	r.Stop()
	r.Resume() // held rank re-enters exec, sees stopped, exits
	eng.RunUntil(sim.Seconds(3))
	if r.Running() {
		t.Fatal("runner still active after Stop+Resume")
	}
	if len(recs) != n {
		t.Fatalf("stopped rank executed %d more ops after Resume", len(recs)-n)
	}
}
