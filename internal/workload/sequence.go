package workload

import (
	"strings"
	"sync"

	"quanterference/internal/lustre"
)

// Sequence concatenates several generators into one multi-phase workload —
// the shape of §II-A's closing observation: an application that runs the
// IO500 tasks one after another experiences wildly different slowdown per
// phase under the same interference. PhaseOf recovers which phase an op
// index belongs to, so per-phase timing can be attributed.
type Sequence struct {
	name   string
	phases []Generator
	// bounds[rank] holds each phase's first op index for that rank,
	// computed lazily per rank. Guarded by mu: generators may be shared
	// across concurrently simulated runs (core.CollectDataset fans out).
	mu     sync.Mutex
	bounds map[int][]int
}

// NewSequence builds the composite. Phases run in order within every rank.
func NewSequence(name string, phases ...Generator) *Sequence {
	if len(phases) == 0 {
		panic("workload: empty sequence")
	}
	return &Sequence{name: name, phases: phases, bounds: make(map[int][]int)}
}

// Name implements Generator.
func (s *Sequence) Name() string {
	if s.name != "" {
		return s.name
	}
	names := make([]string, len(s.phases))
	for i, p := range s.phases {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// Phases returns the phase count.
func (s *Sequence) Phases() int { return len(s.phases) }

// PhaseName returns phase i's generator name.
func (s *Sequence) PhaseName(i int) string { return s.phases[i].Name() }

// Ops implements Generator: the concatenation of every phase's ops.
func (s *Sequence) Ops(rank int) []Op {
	var out []Op
	bounds := make([]int, 0, len(s.phases))
	for _, p := range s.phases {
		bounds = append(bounds, len(out))
		out = append(out, p.Ops(rank)...)
	}
	s.mu.Lock()
	s.bounds[rank] = bounds
	s.mu.Unlock()
	return out
}

// PhaseOf maps a rank's op sequence index to its phase index. Ops must have
// been generated for the rank first (the Runner does this).
func (s *Sequence) PhaseOf(rank, seq int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	bounds, ok := s.bounds[rank]
	if !ok {
		bounds = make([]int, 0, len(s.phases))
		n := 0
		for _, p := range s.phases {
			bounds = append(bounds, n)
			n += len(p.Ops(rank))
		}
		s.bounds[rank] = bounds
	}
	phase := 0
	for i, b := range bounds {
		if seq >= b {
			phase = i
		}
	}
	return phase
}

// Prepare implements Generator: every phase prepares its inputs.
func (s *Sequence) Prepare(fs *lustre.FS) {
	for _, p := range s.phases {
		p.Prepare(fs)
	}
}
