package io500

import (
	"strings"
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func newFS() (*sim.Engine, *lustre.FS) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	return eng, lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
}

func TestTaskNamesAndParsing(t *testing.T) {
	for _, task := range AllTasks() {
		parsed, err := ParseTask(task.String())
		if err != nil || parsed != task {
			t.Fatalf("round trip failed for %s", task)
		}
	}
	if _, err := ParseTask("bogus"); err == nil {
		t.Fatal("expected error")
	}
	if len(AllTasks()) != 7 {
		t.Fatalf("want the 7 Table I tasks, got %d", len(AllTasks()))
	}
}

func TestIorEasyWriteShape(t *testing.T) {
	g := New(IorEasyWrite, Params{Ranks: 2, EasyFileBytes: 4 << 20, EasyXfer: 1 << 20})
	ops := g.Ops(0)
	if ops[0].Kind != workload.Create || ops[len(ops)-1].Kind != workload.Close {
		t.Fatal("missing create/close bracket")
	}
	writes := 0
	var lastEnd int64
	for _, op := range ops {
		if op.Kind != workload.Write {
			continue
		}
		if op.Offset != lastEnd {
			t.Fatalf("non-sequential write at %d, want %d", op.Offset, lastEnd)
		}
		lastEnd = op.Offset + op.Size
		writes++
	}
	if writes != 4 || lastEnd != 4<<20 {
		t.Fatalf("writes=%d end=%d", writes, lastEnd)
	}
	// Ranks get distinct files.
	if g.Ops(0)[0].Path == g.Ops(1)[0].Path {
		t.Fatal("ranks share the easy file")
	}
}

func TestIorHardStriding(t *testing.T) {
	p := Params{Ranks: 4, HardOps: 8}
	g := New(IorHardWrite, p)
	// Rank r's segment s lands at (s*Ranks + r) * 47008.
	ops := g.Ops(2)
	var offs []int64
	for _, op := range ops {
		if op.Kind == workload.Write {
			offs = append(offs, op.Offset)
			if op.Size != 47008 {
				t.Fatalf("xfer=%d, want 47008", op.Size)
			}
		}
	}
	if offs[0] != 2*47008 || offs[1] != 6*47008 {
		t.Fatalf("stride wrong: %v", offs[:2])
	}
	// All ranks share one file.
	if g.Ops(0)[0].Path != g.Ops(3)[0].Path {
		t.Fatal("hard file must be shared")
	}
}

func TestMdtEasyIsMetadataOnly(t *testing.T) {
	g := New(MdtEasyWrite, Params{Ranks: 1, MdtFiles: 10})
	for _, op := range g.Ops(0) {
		if op.Kind == workload.Read || op.Kind == workload.Write {
			t.Fatalf("mdt-easy-write must not do data I/O, got %s", op.Kind)
		}
	}
}

func TestMdtHardWriteHasSmallPayload(t *testing.T) {
	g := New(MdtHardWrite, Params{Ranks: 1, MdtFiles: 5})
	writes := 0
	for _, op := range g.Ops(0) {
		if op.Kind == workload.Write {
			writes++
			if op.Size != 3901 {
				t.Fatalf("payload=%d, want 3901", op.Size)
			}
		}
	}
	if writes != 5 {
		t.Fatalf("writes=%d, want 5", writes)
	}
}

func TestDistinctDirsDontCollide(t *testing.T) {
	a := New(MdtHardWrite, Params{Dir: "/a", Ranks: 1})
	b := New(MdtHardWrite, Params{Dir: "/b", Ranks: 1})
	if a.Ops(0)[0].Path == b.Ops(0)[0].Path {
		t.Fatal("instances with distinct dirs collided")
	}
	if !strings.HasPrefix(a.Ops(0)[0].Path, "/a/") {
		t.Fatalf("dir prefix not applied: %s", a.Ops(0)[0].Path)
	}
}

// runTask executes a task end-to-end on a fresh FS and returns the records.
func runTask(t *testing.T, task Task, p Params) []workload.Record {
	t.Helper()
	eng, fs := newFS()
	g := New(task, p)
	var recs []workload.Record
	finished := false
	r := &workload.Runner{
		FS: fs, Name: g.Name(), Nodes: []string{"c0"}, Ranks: p.Ranks, Gen: g,
		OnRecord: func(rec workload.Record) { recs = append(recs, rec) },
		OnDone:   func() { finished = true },
	}
	r.Start()
	eng.RunUntil(sim.Seconds(600))
	if !finished {
		t.Fatalf("%s did not finish", g.Name())
	}
	return recs
}

func TestAllTasksRunToCompletion(t *testing.T) {
	p := Params{
		Ranks: 2, EasyFileBytes: 4 << 20, HardOps: 20, MdtFiles: 10,
	}
	for _, task := range AllTasks() {
		recs := runTask(t, task, p)
		if len(recs) == 0 {
			t.Fatalf("%s produced no records", task)
		}
		for _, rec := range recs {
			if rec.End <= rec.Start && rec.Op.Kind.IsIO() {
				t.Fatalf("%s op %s has zero duration", task, rec.Op.Kind)
			}
		}
	}
}

func TestReadTasksPrepareTheirInputs(t *testing.T) {
	// Read tasks run standalone (no prior write phase) thanks to Prepare.
	for _, task := range []Task{IorEasyRead, IorHardRead, MdtHardRead} {
		recs := runTask(t, task, Params{Ranks: 2, EasyFileBytes: 2 << 20, HardOps: 10, MdtFiles: 5})
		reads := 0
		for _, rec := range recs {
			if rec.Op.Kind == workload.Read {
				reads++
			}
		}
		if reads == 0 {
			t.Fatalf("%s performed no reads", task)
		}
	}
}

func TestHardFileStripesAcrossAllOSTs(t *testing.T) {
	eng, fs := newFS()
	g := New(IorHardWrite, Params{Ranks: 2, HardOps: 50})
	r := &workload.Runner{
		FS: fs, Name: g.Name(), Nodes: []string{"c0"}, Ranks: 2, Gen: g,
	}
	r.Start()
	eng.Run()
	ino := fs.MDS().Lookup(g.hardPath())
	if ino == nil || len(ino.OSTs) != fs.NumOSTs() {
		t.Fatalf("hard file stripes: %+v", ino)
	}
}

func TestExtendedTasksRunToCompletion(t *testing.T) {
	if len(ExtendedTasks()) != 11 {
		t.Fatalf("extended tasks=%d, want 11", len(ExtendedTasks()))
	}
	p := Params{Ranks: 2, MdtFiles: 10}
	for _, task := range []Task{MdtEasyStat, MdtHardStat, MdtEasyDelete, MdtHardDelete} {
		recs := runTask(t, task, p)
		if len(recs) == 0 {
			t.Fatalf("%s produced no records", task)
		}
		wantKind := workload.Stat
		if task == MdtEasyDelete || task == MdtHardDelete {
			wantKind = workload.Unlink
		}
		for _, rec := range recs {
			if rec.Op.Kind != wantKind {
				t.Fatalf("%s emitted %s op", task, rec.Op.Kind)
			}
		}
	}
}

func TestExtendedTaskNamesParse(t *testing.T) {
	for _, task := range ExtendedTasks() {
		got, err := ParseTask(task.String())
		if err != nil || got != task {
			t.Fatalf("round trip failed for %s: %v", task, err)
		}
	}
	if _, err := ParseTask(""); err == nil {
		t.Fatal("empty name must not resolve")
	}
}

func TestDeleteTasksEmptyTheNamespace(t *testing.T) {
	eng, fs := newFS()
	g := New(MdtHardDelete, Params{Ranks: 1, MdtFiles: 5})
	done := false
	r := &workload.Runner{FS: fs, Name: g.Name(), Nodes: []string{"c0"}, Ranks: 1, Gen: g,
		OnDone: func() { done = true }}
	r.Start()
	eng.Run()
	if !done {
		t.Fatal("did not finish")
	}
	for f := 0; f < 5; f++ {
		if fs.MDS().Lookup(g.mdtHardPath(0, f)) != nil {
			t.Fatalf("file %d survived delete", f)
		}
	}
}

func TestBadTaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(numTableITasks, Params{})
}
