// Package io500 implements generators for the seven IO500 benchmark tasks
// the paper uses in Table I and as interference workloads: the IOR "easy"
// (per-rank file, large sequential transfers) and "hard" (shared file, small
// strided 47008-byte transfers) data patterns, and the MDTest "easy" (empty
// per-rank-directory file creates) and "hard" (shared-directory files with
// 3901-byte payloads) metadata patterns.
package io500

import (
	"fmt"

	"quanterference/internal/lustre"
	"quanterference/internal/workload"
)

// Task selects one IO500 benchmark task. The first seven are the paper's
// Table I selection; the rest complete the IO500 metadata suite.
type Task int

const (
	IorEasyRead Task = iota
	IorHardRead
	MdtHardRead
	IorEasyWrite
	IorHardWrite
	MdtEasyWrite
	MdtHardWrite
	numTableITasks

	// The remaining IO500 mdtest phases, beyond the Table I selection.
	MdtEasyStat   = numTableITasks + iota - 7
	MdtHardStat   // stat files in the shared directory
	MdtEasyDelete // unlink the per-rank-directory files
	MdtHardDelete // unlink the shared-directory files
	numTasks
)

var taskNames = [...]string{
	"ior-easy-read", "ior-hard-read", "mdt-hard-read",
	"ior-easy-write", "ior-hard-write", "mdt-easy-write", "mdt-hard-write",
	"", // numTableITasks sentinel
	"mdt-easy-stat", "mdt-hard-stat", "mdt-easy-delete", "mdt-hard-delete",
}

func (t Task) String() string { return taskNames[t] }

// AllTasks returns the seven tasks in the row/column order of Table I.
func AllTasks() []Task {
	out := make([]Task, numTableITasks)
	for i := range out {
		out[i] = Task(i)
	}
	return out
}

// ExtendedTasks returns every implemented IO500 task: the Table I seven
// plus the stat and delete mdtest phases.
func ExtendedTasks() []Task {
	out := AllTasks()
	for t := MdtEasyStat; t < numTasks; t++ {
		out = append(out, t)
	}
	return out
}

// ParseTask resolves a task by its benchmark name.
func ParseTask(name string) (Task, error) {
	for i, n := range taskNames {
		if n != "" && n == name {
			return Task(i), nil
		}
	}
	return 0, fmt.Errorf("io500: unknown task %q", name)
}

// Params scales a task. Defaults give runs of a few simulated seconds per
// rank, preserving each pattern's character.
type Params struct {
	// Dir is the namespace prefix; every concurrent instance must use a
	// distinct Dir.
	Dir string
	// Ranks must match the Runner's rank count (shared-file offset math).
	Ranks int
	// EasyFileBytes is the per-rank ior-easy file size (default 32 MiB).
	EasyFileBytes int64
	// EasyXfer is the ior-easy transfer size (default 1 MiB).
	EasyXfer int64
	// HardOps is the per-rank segment count for ior-hard (default 200).
	HardOps int
	// HardXfer is the ior-hard transfer size (default 47008, the IO500
	// required value).
	HardXfer int64
	// MdtFiles is the per-rank file count for mdtest tasks (default 100).
	MdtFiles int
	// MdtHardBytes is the mdtest-hard payload (default 3901, the IO500
	// required value).
	MdtHardBytes int64
}

func (p *Params) applyDefaults() {
	if p.Dir == "" {
		p.Dir = "/io500"
	}
	if p.Ranks == 0 {
		p.Ranks = 1
	}
	if p.EasyFileBytes == 0 {
		p.EasyFileBytes = 32 << 20
	}
	if p.EasyXfer == 0 {
		p.EasyXfer = 1 << 20
	}
	if p.HardOps == 0 {
		p.HardOps = 200
	}
	if p.HardXfer == 0 {
		p.HardXfer = 47008
	}
	if p.MdtFiles == 0 {
		p.MdtFiles = 100
	}
	if p.MdtHardBytes == 0 {
		p.MdtHardBytes = 3901
	}
}

// Gen is an IO500 task generator.
type Gen struct {
	task Task
	p    Params
}

// New builds a generator for the task.
func New(task Task, p Params) *Gen {
	p.applyDefaults()
	if task < 0 || task >= numTasks || task == numTableITasks {
		panic("io500: bad task")
	}
	return &Gen{task: task, p: p}
}

// Name implements workload.Generator.
func (g *Gen) Name() string { return g.task.String() }

func (g *Gen) easyPath(rank int) string {
	return fmt.Sprintf("%s/ior-easy/rank%d", g.p.Dir, rank)
}

func (g *Gen) hardPath() string { return g.p.Dir + "/ior-hard/file" }

func (g *Gen) mdtEasyPath(rank, f int) string {
	return fmt.Sprintf("%s/mdt-easy/dir%d/f%d", g.p.Dir, rank, f)
}

func (g *Gen) mdtHardPath(rank, f int) string {
	return fmt.Sprintf("%s/mdt-hard/r%d.f%d", g.p.Dir, rank, f)
}

// Ops implements workload.Generator.
func (g *Gen) Ops(rank int) []workload.Op {
	p := g.p
	var ops []workload.Op
	switch g.task {
	case IorEasyWrite:
		path := g.easyPath(rank)
		ops = append(ops, workload.Op{Kind: workload.Create, Path: path, StripeCount: 1})
		for off := int64(0); off < p.EasyFileBytes; off += p.EasyXfer {
			n := min64(p.EasyXfer, p.EasyFileBytes-off)
			ops = append(ops, workload.Op{Kind: workload.Write, Path: path, Offset: off, Size: n})
		}
		ops = append(ops, workload.Op{Kind: workload.Close, Path: path})

	case IorEasyRead:
		path := g.easyPath(rank)
		ops = append(ops, workload.Op{Kind: workload.Open, Path: path})
		for off := int64(0); off < p.EasyFileBytes; off += p.EasyXfer {
			n := min64(p.EasyXfer, p.EasyFileBytes-off)
			ops = append(ops, workload.Op{Kind: workload.Read, Path: path, Offset: off, Size: n})
		}
		ops = append(ops, workload.Op{Kind: workload.Close, Path: path})

	case IorHardWrite, IorHardRead:
		path := g.hardPath()
		kind := workload.Write
		open := workload.Op{Kind: workload.Create, Path: path, StripeCount: 1 << 10}
		if g.task == IorHardRead {
			kind = workload.Read
			open = workload.Op{Kind: workload.Open, Path: path}
		}
		ops = append(ops, open)
		for seg := 0; seg < p.HardOps; seg++ {
			off := (int64(seg)*int64(p.Ranks) + int64(rank)) * p.HardXfer
			ops = append(ops, workload.Op{Kind: kind, Path: path, Offset: off, Size: p.HardXfer})
		}
		ops = append(ops, workload.Op{Kind: workload.Close, Path: path})

	case MdtEasyWrite:
		ops = append(ops, workload.Op{Kind: workload.Mkdir,
			Path: fmt.Sprintf("%s/mdt-easy/dir%d", p.Dir, rank)})
		for f := 0; f < p.MdtFiles; f++ {
			path := g.mdtEasyPath(rank, f)
			ops = append(ops,
				workload.Op{Kind: workload.Create, Path: path, StripeCount: 1},
				workload.Op{Kind: workload.Close, Path: path},
			)
		}

	case MdtHardWrite:
		for f := 0; f < p.MdtFiles; f++ {
			path := g.mdtHardPath(rank, f)
			ops = append(ops,
				workload.Op{Kind: workload.Create, Path: path, StripeCount: 1},
				workload.Op{Kind: workload.Write, Path: path, Size: p.MdtHardBytes},
				workload.Op{Kind: workload.Close, Path: path},
			)
		}

	case MdtHardRead:
		for f := 0; f < p.MdtFiles; f++ {
			path := g.mdtHardPath(rank, f)
			ops = append(ops,
				workload.Op{Kind: workload.Open, Path: path},
				workload.Op{Kind: workload.Read, Path: path, Size: p.MdtHardBytes},
				workload.Op{Kind: workload.Close, Path: path},
			)
		}

	case MdtEasyStat:
		for f := 0; f < p.MdtFiles; f++ {
			ops = append(ops, workload.Op{Kind: workload.Stat, Path: g.mdtEasyPath(rank, f)})
		}

	case MdtHardStat:
		for f := 0; f < p.MdtFiles; f++ {
			ops = append(ops, workload.Op{Kind: workload.Stat, Path: g.mdtHardPath(rank, f)})
		}

	// The delete phases unlink the files a prior phase created (Prepare
	// stands in for it); they are single-shot — not meaningful as looping
	// interference, since the namespace empties.
	case MdtEasyDelete:
		for f := 0; f < p.MdtFiles; f++ {
			ops = append(ops, workload.Op{Kind: workload.Unlink, Path: g.mdtEasyPath(rank, f)})
		}

	case MdtHardDelete:
		for f := 0; f < p.MdtFiles; f++ {
			ops = append(ops, workload.Op{Kind: workload.Unlink, Path: g.mdtHardPath(rank, f)})
		}
	}
	return ops
}

// Prepare implements workload.Generator: read tasks consume files written by
// a prior phase, which Populate stands in for.
func (g *Gen) Prepare(fs *lustre.FS) {
	p := g.p
	switch g.task {
	case IorEasyRead:
		for r := 0; r < p.Ranks; r++ {
			fs.Populate(g.easyPath(r), p.EasyFileBytes, 1)
		}
	case IorHardRead:
		total := int64(p.HardOps) * int64(p.Ranks) * p.HardXfer
		fs.Populate(g.hardPath(), total, 1<<10)
	case MdtHardRead, MdtHardStat, MdtHardDelete:
		for r := 0; r < p.Ranks; r++ {
			for f := 0; f < p.MdtFiles; f++ {
				fs.Populate(g.mdtHardPath(r, f), p.MdtHardBytes, 1)
			}
		}
	case MdtEasyStat, MdtEasyDelete:
		for r := 0; r < p.Ranks; r++ {
			for f := 0; f < p.MdtFiles; f++ {
				fs.Populate(g.mdtEasyPath(r, f), 0, 1)
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
