// Package dlio emulates the DLIO benchmark's deep-learning data-loader I/O,
// in the two configurations the paper trains on: Unet3D (large whole-sample
// files read in random order each epoch) and BERT (small random reads from
// large packed shards). Both interleave reads with compute, producing the
// bursty, read-dominant pattern the paper's second dataset covers.
package dlio

import (
	"fmt"

	"quanterference/internal/lustre"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// Model selects the emulated data loader.
type Model int

const (
	Unet3D Model = iota
	BERT
)

func (m Model) String() string {
	if m == Unet3D {
		return "dlio-unet3d"
	}
	return "dlio-bert"
}

// Params scales the emulation. Defaults are scaled-down but shape-preserving
// versions of the DLIO defaults (Unet3D samples are ~140 MB in reality).
type Params struct {
	Dir   string
	Ranks int
	// Unet3D: dataset of Samples files, SampleBytes each.
	Samples     int   // default 64
	SampleBytes int64 // default 4 MiB
	Epochs      int   // default 2
	// BERT: Shards packed files, ShardBytes each; Steps random reads of
	// ReadBytes per rank per epoch.
	Shards     int   // default 4
	ShardBytes int64 // default 32 MiB
	Steps      int   // default 100
	ReadBytes  int64 // default 128 KiB
	// Compute is the training-step time between reads (default 50 ms).
	Compute sim.Time
	// CheckpointEvery writes a model checkpoint after this many samples
	// or steps (0 disables; DLIO's checkpointing plugin). CheckpointBytes
	// sizes each dump (default 8 MiB).
	CheckpointEvery int
	CheckpointBytes int64
	// Xfer is the read transfer size for whole-sample reads (default 1 MiB).
	Xfer int64
	Seed int64
}

func (p *Params) applyDefaults() {
	if p.Dir == "" {
		p.Dir = "/dlio"
	}
	if p.Ranks == 0 {
		p.Ranks = 1
	}
	if p.Samples == 0 {
		p.Samples = 64
	}
	if p.SampleBytes == 0 {
		p.SampleBytes = 4 << 20
	}
	if p.Epochs == 0 {
		p.Epochs = 2
	}
	if p.Shards == 0 {
		p.Shards = 4
	}
	if p.ShardBytes == 0 {
		p.ShardBytes = 32 << 20
	}
	if p.Steps == 0 {
		p.Steps = 100
	}
	if p.ReadBytes == 0 {
		p.ReadBytes = 128 << 10
	}
	if p.Compute == 0 {
		p.Compute = 50 * sim.Millisecond
	}
	if p.Xfer == 0 {
		p.Xfer = 1 << 20
	}
	if p.CheckpointBytes == 0 {
		p.CheckpointBytes = 8 << 20
	}
}

// Gen generates the loader's op stream.
type Gen struct {
	model Model
	p     Params
}

// New builds a generator.
func New(model Model, p Params) *Gen {
	p.applyDefaults()
	return &Gen{model: model, p: p}
}

// Name implements workload.Generator.
func (g *Gen) Name() string { return g.model.String() }

func (g *Gen) samplePath(i int) string {
	return fmt.Sprintf("%s/unet3d/sample%04d.npz", g.p.Dir, i)
}

func (g *Gen) shardPath(i int) string {
	return fmt.Sprintf("%s/bert/shard%02d.tfrecord", g.p.Dir, i)
}

// checkpointOps emits one rank's model-checkpoint dump.
func (g *Gen) checkpointOps(rank, ckpt int) []workload.Op {
	path := fmt.Sprintf("%s/checkpoints/ckpt%04d.rank%d.pt", g.p.Dir, ckpt, rank)
	ops := []workload.Op{{Kind: workload.Create, Path: path, StripeCount: 1}}
	for off := int64(0); off < g.p.CheckpointBytes; off += g.p.Xfer {
		n := g.p.CheckpointBytes - off
		if n > g.p.Xfer {
			n = g.p.Xfer
		}
		ops = append(ops, workload.Op{Kind: workload.Write, Path: path, Offset: off, Size: n})
	}
	return append(ops, workload.Op{Kind: workload.Close, Path: path})
}

// Ops implements workload.Generator.
func (g *Gen) Ops(rank int) []workload.Op {
	p := g.p
	rng := sim.NewRNG(p.Seed ^ 0xd110).Derive(int64(rank))
	var ops []workload.Op
	switch g.model {
	case Unet3D:
		for epoch := 0; epoch < p.Epochs; epoch++ {
			// The permutation is a collective: all ranks derive the same
			// epoch order and read disjoint slices of it.
			perm := sim.NewRNG(p.Seed ^ 0xd110).Derive(int64(epoch)).Perm(p.Samples)
			// Each rank reads its shard of the permutation.
			samplesSeen := 0
			ckpt := epoch * 1000
			for i := rank; i < len(perm); i += p.Ranks {
				path := g.samplePath(perm[i])
				ops = append(ops, workload.Op{Kind: workload.Open, Path: path})
				for off := int64(0); off < p.SampleBytes; off += p.Xfer {
					n := p.SampleBytes - off
					if n > p.Xfer {
						n = p.Xfer
					}
					ops = append(ops, workload.Op{Kind: workload.Read, Path: path, Offset: off, Size: n})
				}
				ops = append(ops,
					workload.Op{Kind: workload.Close, Path: path},
					workload.Op{Kind: workload.Compute, Dur: p.Compute},
				)
				samplesSeen++
				if p.CheckpointEvery > 0 && samplesSeen%p.CheckpointEvery == 0 {
					ops = append(ops, g.checkpointOps(rank, ckpt)...)
					ckpt++
				}
			}
		}
	case BERT:
		// Open every shard once, then sample random records.
		for s := 0; s < p.Shards; s++ {
			ops = append(ops, workload.Op{Kind: workload.Open, Path: g.shardPath(s)})
		}
		ckpt := 0
		for step := 0; step < p.Steps; step++ {
			shard := rng.Intn(p.Shards)
			maxOff := p.ShardBytes - p.ReadBytes
			off := rng.Int63n(maxOff/4096) * 4096
			ops = append(ops,
				workload.Op{Kind: workload.Read, Path: g.shardPath(shard), Offset: off, Size: p.ReadBytes},
				workload.Op{Kind: workload.Compute, Dur: p.Compute / 5},
			)
			if p.CheckpointEvery > 0 && (step+1)%p.CheckpointEvery == 0 {
				ops = append(ops, g.checkpointOps(rank, ckpt)...)
				ckpt++
			}
		}
		for s := 0; s < p.Shards; s++ {
			ops = append(ops, workload.Op{Kind: workload.Close, Path: g.shardPath(s)})
		}
	}
	return ops
}

// Prepare implements workload.Generator: the training dataset exists before
// the loader runs.
func (g *Gen) Prepare(fs *lustre.FS) {
	p := g.p
	switch g.model {
	case Unet3D:
		for i := 0; i < p.Samples; i++ {
			fs.Populate(g.samplePath(i), p.SampleBytes, 1)
		}
	case BERT:
		for s := 0; s < p.Shards; s++ {
			fs.Populate(g.shardPath(s), p.ShardBytes, 2)
		}
	}
}
