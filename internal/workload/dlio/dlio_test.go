package dlio

import (
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func newFS() (*sim.Engine, *lustre.FS) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	return eng, lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
}

func TestUnet3DReadsWholeSamples(t *testing.T) {
	g := New(Unet3D, Params{Ranks: 1, Samples: 8, SampleBytes: 2 << 20, Epochs: 1})
	ops := g.Ops(0)
	opens, reads, closes, computes := 0, 0, 0, 0
	var bytes int64
	for _, op := range ops {
		switch op.Kind {
		case workload.Open:
			opens++
		case workload.Read:
			reads++
			bytes += op.Size
		case workload.Close:
			closes++
		case workload.Compute:
			computes++
		}
	}
	if opens != 8 || closes != 8 || computes != 8 {
		t.Fatalf("opens=%d closes=%d computes=%d, want 8 each", opens, closes, computes)
	}
	if bytes != 8*(2<<20) {
		t.Fatalf("bytes=%d, want full dataset", bytes)
	}
}

func TestUnet3DEpochOrderIsShuffled(t *testing.T) {
	g := New(Unet3D, Params{Ranks: 1, Samples: 16, Epochs: 2, Seed: 7})
	var epochPaths [2][]string
	epoch, opens := 0, 0
	for _, op := range g.Ops(0) {
		if op.Kind == workload.Open {
			if opens == 16 {
				epoch = 1
			}
			epochPaths[epoch] = append(epochPaths[epoch], op.Path)
			opens++
		}
	}
	same := true
	for i := range epochPaths[0] {
		if epochPaths[0][i] != epochPaths[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch order not reshuffled")
	}
	// But both epochs cover the same sample set.
	set := map[string]int{}
	for _, p := range epochPaths[0] {
		set[p]++
	}
	for _, p := range epochPaths[1] {
		set[p]--
	}
	for p, n := range set {
		if n != 0 {
			t.Fatalf("epoch coverage differs at %s", p)
		}
	}
}

func TestUnet3DRanksPartitionSamples(t *testing.T) {
	p := Params{Ranks: 4, Samples: 16, Epochs: 1, Seed: 3}
	seen := map[string]int{}
	for r := 0; r < 4; r++ {
		for _, op := range New(Unet3D, p).Ops(r) {
			if op.Kind == workload.Open {
				seen[op.Path]++
			}
		}
	}
	if len(seen) != 16 {
		t.Fatalf("ranks covered %d distinct samples, want 16", len(seen))
	}
}

func TestBERTReadsAreSmallAndAligned(t *testing.T) {
	g := New(BERT, Params{Ranks: 1, Steps: 50, Seed: 5})
	reads := 0
	for _, op := range g.Ops(0) {
		if op.Kind != workload.Read {
			continue
		}
		reads++
		if op.Size != 128<<10 {
			t.Fatalf("read size %d", op.Size)
		}
		if op.Offset%4096 != 0 {
			t.Fatalf("unaligned offset %d", op.Offset)
		}
		if op.Offset+op.Size > 32<<20 {
			t.Fatalf("read past shard end: %d", op.Offset)
		}
	}
	if reads != 50 {
		t.Fatalf("reads=%d, want 50", reads)
	}
}

func TestOpsDeterministicPerSeed(t *testing.T) {
	a := New(BERT, Params{Ranks: 2, Steps: 30, Seed: 11}).Ops(1)
	b := New(BERT, Params{Ranks: 2, Steps: 30, Seed: 11}).Ops(1)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	c := New(BERT, Params{Ranks: 2, Steps: 30, Seed: 12}).Ops(1)
	diff := false
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestBothModelsRunToCompletion(t *testing.T) {
	for _, m := range []Model{Unet3D, BERT} {
		eng, fs := newFS()
		g := New(m, Params{Ranks: 2, Samples: 8, SampleBytes: 1 << 20, Epochs: 1, Steps: 20})
		finished := false
		recs := 0
		r := &workload.Runner{
			FS: fs, Name: g.Name(), Nodes: []string{"c0", "c1"}, Ranks: 2, Gen: g,
			OnRecord: func(workload.Record) { recs++ },
			OnDone:   func() { finished = true },
		}
		r.Start()
		eng.RunUntil(sim.Seconds(300))
		if !finished {
			t.Fatalf("%s did not finish", m)
		}
		if recs == 0 {
			t.Fatalf("%s produced no records", m)
		}
	}
}

func TestCheckpointingEmitsWrites(t *testing.T) {
	g := New(Unet3D, Params{Ranks: 1, Samples: 8, Epochs: 1,
		CheckpointEvery: 4, CheckpointBytes: 2 << 20})
	writes, creates := 0, 0
	var bytes int64
	for _, op := range g.Ops(0) {
		switch op.Kind {
		case workload.Write:
			writes++
			bytes += op.Size
		case workload.Create:
			creates++
		}
	}
	// 8 samples / every 4 -> 2 checkpoints of 2 MiB each.
	if creates != 2 {
		t.Fatalf("checkpoints=%d, want 2", creates)
	}
	if bytes != 4<<20 {
		t.Fatalf("checkpoint bytes=%d", bytes)
	}
	if writes == 0 {
		t.Fatal("no checkpoint writes")
	}
}

func TestCheckpointingDisabledByDefault(t *testing.T) {
	g := New(Unet3D, Params{Ranks: 1, Samples: 8, Epochs: 1})
	for _, op := range g.Ops(0) {
		if op.Kind == workload.Write {
			t.Fatal("default loader must be read-only")
		}
	}
}

func TestBERTCheckpointing(t *testing.T) {
	g := New(BERT, Params{Ranks: 2, Steps: 10, CheckpointEvery: 5, Seed: 3})
	creates := 0
	for _, op := range g.Ops(1) {
		if op.Kind == workload.Create {
			creates++
		}
	}
	if creates != 2 {
		t.Fatalf("bert checkpoints=%d, want 2", creates)
	}
}
