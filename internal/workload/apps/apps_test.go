package apps

import (
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func newFS() (*sim.Engine, *lustre.FS) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	return eng, lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
}

func opMix(g *Gen, rank int) map[workload.Kind]int {
	mix := map[workload.Kind]int{}
	for _, op := range g.Ops(rank) {
		mix[op.Kind]++
	}
	return mix
}

func TestParseApp(t *testing.T) {
	for _, a := range []App{Enzo, AMReX, OpenPMD} {
		got, err := ParseApp(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip failed for %s", a)
		}
	}
	if _, err := ParseApp("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestEnzoHasMixedOpTypes(t *testing.T) {
	// Figure 1 relies on Enzo issuing reads, writes, opens, closes and
	// stats within its first seconds.
	mix := opMix(New(Enzo, Params{Ranks: 2}), 0)
	for _, k := range []workload.Kind{
		workload.Read, workload.Write, workload.Open,
		workload.Close, workload.Stat, workload.Create,
	} {
		if mix[k] == 0 {
			t.Fatalf("enzo stream missing %s ops: %v", k, mix)
		}
	}
}

func TestAMReXIsWriteDominant(t *testing.T) {
	mix := opMix(New(AMReX, Params{Ranks: 2}), 1)
	if mix[workload.Write] == 0 {
		t.Fatal("no writes")
	}
	if mix[workload.Read] != 0 {
		t.Fatal("amrex emulator should be write-only for data")
	}
	// Data volume dominates metadata count.
	if mix[workload.Write] < mix[workload.Create]+mix[workload.Stat] {
		t.Fatalf("not write dominant: %v", mix)
	}
}

func TestOpenPMDIsMetadataIntensive(t *testing.T) {
	mix := opMix(New(OpenPMD, Params{Ranks: 1}), 0)
	meta := mix[workload.Create] + mix[workload.Close] + mix[workload.Stat] + mix[workload.Mkdir]
	data := mix[workload.Read] + mix[workload.Write]
	if meta <= data {
		t.Fatalf("openpmd should be metadata-heavy: meta=%d data=%d", meta, data)
	}
	// And its writes are small.
	for _, op := range New(OpenPMD, Params{Ranks: 1}).Ops(0) {
		if op.Kind == workload.Write && op.Size > 64<<10 {
			t.Fatalf("openpmd write of %d bytes", op.Size)
		}
	}
}

func TestRankZeroOwnsSharedMetadata(t *testing.T) {
	// Only rank 0 creates plotfile directories/headers; others write data.
	g := New(AMReX, Params{Ranks: 4})
	if opMix(g, 0)[workload.Mkdir] == 0 {
		t.Fatal("rank 0 should mkdir")
	}
	if opMix(g, 3)[workload.Mkdir] != 0 {
		t.Fatal("non-zero rank should not mkdir")
	}
}

func TestAllAppsRunToCompletion(t *testing.T) {
	for _, a := range []App{Enzo, AMReX, OpenPMD} {
		eng, fs := newFS()
		g := New(a, Params{Ranks: 2, Cycles: 2, CheckpointBytes: 1 << 20})
		finished := false
		var recs []workload.Record
		r := &workload.Runner{
			FS: fs, Name: g.Name(), Nodes: []string{"c0", "c1"}, Ranks: 2, Gen: g,
			OnRecord: func(rec workload.Record) { recs = append(recs, rec) },
			OnDone:   func() { finished = true },
		}
		r.Start()
		eng.RunUntil(sim.Seconds(300))
		if !finished {
			t.Fatalf("%s did not finish", a)
		}
		if len(recs) == 0 {
			t.Fatalf("%s produced no records", a)
		}
		// All ops must have valid target attributions.
		for _, rec := range recs {
			if len(rec.Targets) == 0 {
				t.Fatalf("%s record %s without targets", a, rec.Op.Kind)
			}
		}
	}
}

func TestDistinctDirsIsolateInstances(t *testing.T) {
	a := New(Enzo, Params{Dir: "/inst0", Ranks: 1})
	b := New(Enzo, Params{Dir: "/inst1", Ranks: 1})
	pathsA := map[string]bool{}
	for _, op := range a.Ops(0) {
		if op.Path != "" {
			pathsA[op.Path] = true
		}
	}
	for _, op := range b.Ops(0) {
		if op.Path != "" && pathsA[op.Path] {
			t.Fatalf("instances share path %s", op.Path)
		}
	}
}
