// Package apps emulates the three real HPC applications in the paper's
// evaluation (§IV, Figures 1 and 5):
//
//   - Enzo: adaptive-mesh cosmology simulation — cycles of restart reads,
//     compute, hierarchy/metadata small writes, and multi-megabyte
//     checkpoint dumps. Its mixed read/write/open/close/stat stream in the
//     first tens of seconds is the substrate of Figure 1.
//   - AMReX: block-structured AMR — per-cycle plotfile dumps with a header
//     and large per-rank level data, write-dominant.
//   - OpenPMD: a metadata standard for particle/mesh series — many small
//     files, attribute writes, and stats per iteration; metadata-intensive.
//
// The emulators reproduce the op-type mix, sizes, and phase structure rather
// than the physics.
package apps

import (
	"fmt"

	"quanterference/internal/lustre"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// App selects the emulated application.
type App int

const (
	Enzo App = iota
	AMReX
	OpenPMD
)

var appNames = [...]string{"enzo", "amrex", "openpmd"}

func (a App) String() string { return appNames[a] }

// ParseApp resolves an application by name.
func ParseApp(name string) (App, error) {
	for i, n := range appNames {
		if n == name {
			return App(i), nil
		}
	}
	return 0, fmt.Errorf("apps: unknown application %q", name)
}

// Params scales the emulation.
type Params struct {
	Dir   string
	Ranks int
	// Cycles is the number of simulation cycles (default 5).
	Cycles int
	// Compute is the per-cycle compute time (default 200 ms).
	Compute sim.Time
	// CheckpointBytes is the per-rank data dump per cycle
	// (default 4 MiB for Enzo, 8 MiB for AMReX).
	CheckpointBytes int64
	// Files is the per-iteration small-file count for OpenPMD (default 24).
	Files int
	// SmallBytes is the OpenPMD per-file payload (default 16 KiB).
	SmallBytes int64
	Seed       int64
}

func (p *Params) applyDefaults(app App) {
	if p.Dir == "" {
		p.Dir = "/" + app.String()
	}
	if p.Ranks == 0 {
		p.Ranks = 1
	}
	if p.Cycles == 0 {
		p.Cycles = 5
	}
	if p.Compute == 0 {
		p.Compute = 200 * sim.Millisecond
	}
	if p.CheckpointBytes == 0 {
		if app == AMReX {
			p.CheckpointBytes = 8 << 20
		} else {
			p.CheckpointBytes = 4 << 20
		}
	}
	if p.Files == 0 {
		p.Files = 24
	}
	if p.SmallBytes == 0 {
		p.SmallBytes = 16 << 10
	}
}

// Gen generates an application's op stream.
type Gen struct {
	app App
	p   Params
}

// New builds a generator.
func New(app App, p Params) *Gen {
	p.applyDefaults(app)
	return &Gen{app: app, p: p}
}

// Name implements workload.Generator.
func (g *Gen) Name() string { return g.app.String() }

// Ops implements workload.Generator.
func (g *Gen) Ops(rank int) []workload.Op {
	switch g.app {
	case Enzo:
		return g.enzoOps(rank)
	case AMReX:
		return g.amrexOps(rank)
	default:
		return g.openpmdOps(rank)
	}
}

func (g *Gen) restartPath(rank int) string {
	return fmt.Sprintf("%s/restart/RedshiftOutput.cpu%04d", g.p.Dir, rank)
}

func (g *Gen) enzoOps(rank int) []workload.Op {
	p := g.p
	var ops []workload.Op
	restart := g.restartPath(rank)
	// Startup: read the restart dump and parameter hierarchy.
	ops = append(ops, workload.Op{Kind: workload.Open, Path: restart})
	for off := int64(0); off < p.CheckpointBytes/2; off += 1 << 20 {
		ops = append(ops, workload.Op{Kind: workload.Read, Path: restart, Offset: off, Size: 1 << 20})
	}
	ops = append(ops,
		workload.Op{Kind: workload.Stat, Path: restart},
		workload.Op{Kind: workload.Close, Path: restart},
	)
	for cycle := 0; cycle < p.Cycles; cycle++ {
		dump := fmt.Sprintf("%s/DD%04d", p.Dir, cycle)
		hier := fmt.Sprintf("%s/data%04d.hierarchy.cpu%04d", dump, cycle, rank)
		data := fmt.Sprintf("%s/data%04d.cpu%04d", dump, cycle, rank)
		ops = append(ops, workload.Op{Kind: workload.Compute, Dur: p.Compute})
		if rank == 0 {
			ops = append(ops, workload.Op{Kind: workload.Mkdir, Path: dump})
		}
		// Hierarchy metadata: small writes.
		ops = append(ops,
			workload.Op{Kind: workload.Create, Path: hier, StripeCount: 1},
			workload.Op{Kind: workload.Write, Path: hier, Size: 16 << 10},
			workload.Op{Kind: workload.Close, Path: hier},
		)
		// Grid data: the checkpoint proper.
		ops = append(ops, workload.Op{Kind: workload.Create, Path: data, StripeCount: 1})
		for off := int64(0); off < p.CheckpointBytes; off += 1 << 20 {
			n := p.CheckpointBytes - off
			if n > 1<<20 {
				n = 1 << 20
			}
			ops = append(ops, workload.Op{Kind: workload.Write, Path: data, Offset: off, Size: n})
		}
		ops = append(ops,
			workload.Op{Kind: workload.Stat, Path: data},
			workload.Op{Kind: workload.Close, Path: data},
		)
	}
	return ops
}

func (g *Gen) amrexOps(rank int) []workload.Op {
	p := g.p
	var ops []workload.Op
	for cycle := 0; cycle < p.Cycles; cycle++ {
		plt := fmt.Sprintf("%s/plt%05d", p.Dir, cycle)
		ops = append(ops, workload.Op{Kind: workload.Compute, Dur: p.Compute})
		if rank == 0 {
			hdr := plt + "/Header"
			ops = append(ops,
				workload.Op{Kind: workload.Mkdir, Path: plt},
				workload.Op{Kind: workload.Mkdir, Path: plt + "/Level_0"},
				workload.Op{Kind: workload.Create, Path: hdr, StripeCount: 1},
				workload.Op{Kind: workload.Write, Path: hdr, Size: 8 << 10},
				workload.Op{Kind: workload.Close, Path: hdr},
			)
		}
		cell := fmt.Sprintf("%s/Level_0/Cell_D_%05d", plt, rank)
		ops = append(ops, workload.Op{Kind: workload.Create, Path: cell, StripeCount: 1})
		for off := int64(0); off < p.CheckpointBytes; off += 1 << 20 {
			n := p.CheckpointBytes - off
			if n > 1<<20 {
				n = 1 << 20
			}
			ops = append(ops, workload.Op{Kind: workload.Write, Path: cell, Offset: off, Size: n})
		}
		ops = append(ops, workload.Op{Kind: workload.Close, Path: cell})
	}
	return ops
}

func (g *Gen) openpmdOps(rank int) []workload.Op {
	p := g.p
	var ops []workload.Op
	for cycle := 0; cycle < p.Cycles; cycle++ {
		iter := fmt.Sprintf("%s/data/%08d", p.Dir, cycle)
		ops = append(ops, workload.Op{Kind: workload.Compute, Dur: p.Compute / 4})
		if rank == 0 {
			ops = append(ops, workload.Op{Kind: workload.Mkdir, Path: iter})
		}
		// A mesh/particle record per file: create, small attribute write,
		// close — then re-stat the series so far (series scanning).
		for f := 0; f < p.Files; f++ {
			path := fmt.Sprintf("%s/meshes_r%d_f%d.h5", iter, rank, f)
			ops = append(ops,
				workload.Op{Kind: workload.Create, Path: path, StripeCount: 1},
				workload.Op{Kind: workload.Write, Path: path, Size: p.SmallBytes},
				workload.Op{Kind: workload.Close, Path: path},
			)
		}
		for f := 0; f < p.Files; f += 4 {
			path := fmt.Sprintf("%s/meshes_r%d_f%d.h5", iter, rank, f)
			ops = append(ops, workload.Op{Kind: workload.Stat, Path: path})
		}
	}
	return ops
}

// Prepare implements workload.Generator.
func (g *Gen) Prepare(fs *lustre.FS) {
	if g.app == Enzo {
		// The restart dump read at startup.
		for r := 0; r < g.p.Ranks; r++ {
			fs.Populate(g.restartPath(r), g.p.CheckpointBytes/2, 1)
		}
	}
}
