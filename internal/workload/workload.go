// Package workload defines the operation model and the runner that executes
// application I/O streams against the simulated file system.
//
// A workload is a set of ranks, each with a deterministic operation sequence
// produced by a Generator. The Runner plays every rank concurrently (ops
// within a rank are sequential, like a blocking POSIX I/O loop in an MPI
// rank), emits a trace Record per completed operation — the client-side
// monitor's raw input — and can loop forever to act as an interference
// workload.
package workload

import (
	"fmt"

	"quanterference/internal/lustre"
	"quanterference/internal/sim"
)

// Kind is an operation type.
type Kind int

const (
	Read Kind = iota
	Write
	Open
	Close
	Stat
	Create
	Unlink
	Mkdir
	Compute
)

var kindNames = [...]string{
	"read", "write", "open", "close", "stat", "create", "unlink", "mkdir", "compute",
}

func (k Kind) String() string { return kindNames[k] }

// IsMeta reports whether the op is a metadata operation.
func (k Kind) IsMeta() bool {
	switch k {
	case Open, Close, Stat, Create, Unlink, Mkdir:
		return true
	}
	return false
}

// IsIO reports whether the op reaches the file system at all.
func (k Kind) IsIO() bool { return k != Compute }

// Op is one operation in a rank's stream.
type Op struct {
	Kind   Kind
	Path   string
	Offset int64
	Size   int64
	// StripeCount applies to Create (0 = file system default).
	StripeCount int
	// Dur applies to Compute.
	Dur sim.Time
}

// Record is one completed I/O operation, the unit of client-side tracing
// (the analogue of a Darshan DXT entry).
type Record struct {
	Workload string
	Rank     int
	// Iter and Seq identify the op within the rank's stream across loop
	// iterations; (Rank, Iter, Seq) is the key used to match operations
	// between a baseline and an interference run.
	Iter int
	Seq  int
	Op   Op
	// Start and End are simulated timestamps.
	Start sim.Time
	End   sim.Time
	// Targets are the storage target indices the op touched
	// (OST ids, or the MDT index for metadata ops).
	Targets []int
}

// Duration returns the op's simulated latency.
func (r Record) Duration() sim.Time { return r.End - r.Start }

// Generator produces the op stream for one rank of a workload.
type Generator interface {
	// Name identifies the workload type (e.g. "ior-easy-write").
	Name() string
	// Ops returns rank r's full operation sequence for one iteration.
	Ops(rank int) []Op
	// Prepare pre-creates whatever on-disk state the ops consume (for
	// read-type workloads, the files written by an earlier phase). It
	// runs instantly before the workload starts.
	Prepare(fs *lustre.FS)
}

// Runner executes a Generator's ranks on the file system.
type Runner struct {
	FS   *lustre.FS
	Name string
	// Nodes carries the compute nodes; ranks are placed round-robin.
	Nodes []string
	Ranks int
	Gen   Generator
	// Loop restarts each rank's stream when it ends (interference mode).
	Loop bool
	// OnRecord observes every completed I/O op (may be nil).
	OnRecord func(Record)
	// OnDone fires when all ranks finish (never in Loop mode; may be nil).
	OnDone func()
	// WriteVia, when set, replaces direct client writes — e.g. routing
	// them through a burst buffer tier. It must eventually call done.
	WriteVia func(h *lustre.Handle, off, length int64, done func())
	// WriteViaFor, when set, supplies a per-node write route (e.g. that
	// node's own burst buffer, under a burst-buffer hardware profile). It
	// is resolved once per rank with the rank's compute node and wins over
	// WriteVia; returning nil falls back to direct client writes.
	WriteViaFor func(node string) func(h *lustre.Handle, off, length int64, done func())

	stopped  bool
	active   int
	started  bool
	prepared bool

	paused    bool
	held      []func()
	heldBytes int64
}

// Stop makes every rank halt after its in-flight operation.
func (r *Runner) Stop() { r.stopped = true }

// Pause holds every rank at its next operation boundary: in-flight
// operations complete, but no rank issues another op until Resume. Held
// continuations queue FIFO (deterministic release order), and the byte sizes
// of the I/O ops held at the gate accumulate into HeldBytes — the "bytes
// deferred" a defer/reschedule mitigation policy reports. Pausing an already
// paused runner is a no-op.
func (r *Runner) Pause() { r.paused = true }

// Resume lifts a Pause: held ranks re-enter their streams in the order they
// arrived at the gate, and HeldBytes resets to zero. Ranks stopped while
// held exit instead of executing. Resuming a runner that is not paused is a
// no-op.
func (r *Runner) Resume() {
	if !r.paused {
		return
	}
	r.paused = false
	r.heldBytes = 0
	held := r.held
	r.held = nil
	for _, cont := range held {
		cont()
	}
}

// Paused reports whether the pause gate is closed.
func (r *Runner) Paused() bool { return r.paused }

// HeldBytes is the total I/O volume (op sizes) of operations currently held
// at the pause gate. It resets on Resume.
func (r *Runner) HeldBytes() int64 { return r.heldBytes }

// Running reports whether any rank is still executing.
func (r *Runner) Running() bool { return r.active > 0 }

// Start prepares the generator and launches all ranks.
func (r *Runner) Start() {
	if r.started {
		panic("workload: runner started twice")
	}
	r.started = true
	if r.Ranks <= 0 || len(r.Nodes) == 0 {
		panic("workload: runner needs ranks and nodes")
	}
	r.Gen.Prepare(r.FS)
	r.active = r.Ranks
	for rank := 0; rank < r.Ranks; rank++ {
		node := r.Nodes[rank%len(r.Nodes)]
		r.runRank(rank, node)
	}
}

// rankState tracks a rank's open handles across its stream.
type rankState struct {
	handles map[string]*lustre.Handle
}

func (r *Runner) runRank(rank int, node string) {
	client := r.FS.Client(node)
	writeFn := client.Write
	if r.WriteViaFor != nil {
		if w := r.WriteViaFor(node); w != nil {
			writeFn = w
		}
	} else if r.WriteVia != nil {
		writeFn = r.WriteVia
	}
	st := &rankState{handles: make(map[string]*lustre.Handle)}
	iter := 0
	ops := r.Gen.Ops(rank)
	var exec func(i int)
	finishRank := func() {
		r.active--
		if r.active == 0 && r.OnDone != nil {
			r.OnDone()
		}
	}
	exec = func(i int) {
		if r.stopped {
			finishRank()
			return
		}
		if r.paused {
			// Hold the rank at the gate; Resume re-enters exec(i), which
			// rechecks stopped so a Stop while held still wins.
			if i < len(ops) && ops[i].Kind.IsIO() {
				r.heldBytes += ops[i].Size
			}
			r.held = append(r.held, func() { exec(i) })
			return
		}
		if i >= len(ops) {
			if !r.Loop {
				finishRank()
				return
			}
			iter++
			exec(0)
			return
		}
		op := ops[i]
		start := r.FS.Eng.Now()
		emit := func(targets []int) {
			if r.OnRecord != nil && op.Kind.IsIO() {
				r.OnRecord(Record{
					Workload: r.Name, Rank: rank, Iter: iter, Seq: i,
					Op: op, Start: start, End: r.FS.Eng.Now(),
					Targets: targets,
				})
			}
			exec(i + 1)
		}
		mdt := []int{r.FS.MDTIndex()}
		switch op.Kind {
		case Compute:
			r.FS.Eng.Schedule(op.Dur, func() { emit(nil) })
		case Create:
			client.Create(op.Path, op.StripeCount, func(h *lustre.Handle) {
				st.handles[op.Path] = h
				emit(mdt)
			})
		case Open:
			client.Open(op.Path, func(h *lustre.Handle) {
				st.handles[op.Path] = h
				emit(mdt)
			})
		case Close:
			h := st.handle(op)
			delete(st.handles, op.Path)
			client.Close(h, func() { emit(mdt) })
		case Stat:
			client.Stat(op.Path, func() { emit(mdt) })
		case Unlink:
			client.Unlink(op.Path, func() { emit(mdt) })
		case Mkdir:
			client.Mkdir(op.Path, func() { emit(mdt) })
		case Read:
			h := st.handle(op)
			client.Read(h, op.Offset, op.Size, func() {
				emit(h.Targets(op.Offset, op.Size))
			})
		case Write:
			h := st.handle(op)
			writeFn(h, op.Offset, op.Size, func() {
				emit(h.Targets(op.Offset, op.Size))
			})
		default:
			panic(fmt.Sprintf("workload: unknown op kind %d", op.Kind))
		}
	}
	exec(0)
}

func (s *rankState) handle(op Op) *lustre.Handle {
	h, ok := s.handles[op.Path]
	if !ok {
		panic(fmt.Sprintf("workload: %s of %q without open handle", op.Kind, op.Path))
	}
	return h
}
