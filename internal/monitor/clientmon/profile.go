package clientmon

import (
	"fmt"
	"sort"
	"strings"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// FileProfile accumulates Darshan-POSIX-style per-file counters over a whole
// run: cumulative op counts, bytes, time, and an access-size histogram —
// the complement to the windowed metrics that feed the model.
type FileProfile struct {
	Path string

	Reads, Writes, MetaOps int
	BytesRead, BytesWrite  int64
	IOTime                 sim.Time
	MaxOpTime              sim.Time
	FirstOp, LastOp        sim.Time

	// SizeHistogram buckets data accesses by power-of-two size:
	// bucket i counts accesses in [2^i, 2^(i+1)) bytes (i up to 30).
	SizeHistogram [31]int
}

// Profiler aggregates per-file profiles from trace records.
type Profiler struct {
	files map[string]*FileProfile
}

// NewProfiler returns an empty profiler; wire Record into Runner.OnRecord
// (it can share the hook with a windowed Monitor).
func NewProfiler() *Profiler {
	return &Profiler{files: make(map[string]*FileProfile)}
}

// Record ingests one operation.
func (p *Profiler) Record(rec workload.Record) {
	if !rec.Op.Kind.IsIO() || rec.Op.Path == "" {
		return
	}
	f, ok := p.files[rec.Op.Path]
	if !ok {
		f = &FileProfile{Path: rec.Op.Path, FirstOp: rec.Start}
		p.files[rec.Op.Path] = f
	}
	dur := rec.Duration()
	f.IOTime += dur
	if dur > f.MaxOpTime {
		f.MaxOpTime = dur
	}
	if rec.Start < f.FirstOp {
		f.FirstOp = rec.Start
	}
	if rec.End > f.LastOp {
		f.LastOp = rec.End
	}
	switch rec.Op.Kind {
	case workload.Read:
		f.Reads++
		f.BytesRead += rec.Op.Size
		f.SizeHistogram[sizeBucket(rec.Op.Size)]++
	case workload.Write:
		f.Writes++
		f.BytesWrite += rec.Op.Size
		f.SizeHistogram[sizeBucket(rec.Op.Size)]++
	default:
		f.MetaOps++
	}
}

// sizeBucket maps an access size to its power-of-two bucket.
func sizeBucket(size int64) int {
	b := 0
	for size > 1 && b < 30 {
		size >>= 1
		b++
	}
	return b
}

// Files returns all profiles sorted by descending I/O time.
func (p *Profiler) Files() []*FileProfile {
	out := make([]*FileProfile, 0, len(p.files))
	for _, f := range p.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IOTime != out[j].IOTime {
			return out[i].IOTime > out[j].IOTime
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// File returns one path's profile, or nil.
func (p *Profiler) File(path string) *FileProfile { return p.files[path] }

// Render draws the top-n files like a darshan-parser summary.
func (p *Profiler) Render(n int) string {
	files := p.Files()
	if n > 0 && len(files) > n {
		files = files[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s%8s%8s%8s%12s%12s%12s\n",
		"file", "reads", "writes", "meta", "MB read", "MB written", "io time")
	for _, f := range files {
		fmt.Fprintf(&b, "%-44s%8d%8d%8d%12.2f%12.2f%11.3fs\n",
			truncPath(f.Path, 43), f.Reads, f.Writes, f.MetaOps,
			float64(f.BytesRead)/1e6, float64(f.BytesWrite)/1e6,
			sim.ToSeconds(f.IOTime))
	}
	return b.String()
}

// CommonAccessSize returns the most frequent power-of-two access bucket's
// lower bound in bytes (0 if no data accesses).
func (f *FileProfile) CommonAccessSize() int64 {
	best, bestN := -1, 0
	for i, n := range f.SizeHistogram {
		if n > bestN {
			best, bestN = i, n
		}
	}
	if best < 0 {
		return 0
	}
	return 1 << best
}

func truncPath(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n+3:]
}
