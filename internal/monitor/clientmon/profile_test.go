package clientmon

import (
	"strings"
	"testing"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func profRec(kind workload.Kind, path string, size int64, start, dur sim.Time) workload.Record {
	return workload.Record{
		Op:    workload.Op{Kind: kind, Path: path, Size: size},
		Start: start, End: start + dur, Targets: []int{0},
	}
}

func TestProfilerAccumulates(t *testing.T) {
	p := NewProfiler()
	p.Record(profRec(workload.Open, "/f", 0, 0, sim.Millisecond))
	p.Record(profRec(workload.Write, "/f", 1<<20, sim.Millisecond, 8*sim.Millisecond))
	p.Record(profRec(workload.Write, "/f", 1<<20, 10*sim.Millisecond, 9*sim.Millisecond))
	p.Record(profRec(workload.Read, "/f", 4096, 20*sim.Millisecond, 2*sim.Millisecond))
	p.Record(profRec(workload.Close, "/f", 0, 23*sim.Millisecond, sim.Millisecond))
	f := p.File("/f")
	if f == nil {
		t.Fatal("no profile")
	}
	if f.Reads != 1 || f.Writes != 2 || f.MetaOps != 2 {
		t.Fatalf("counts %+v", f)
	}
	if f.BytesRead != 4096 || f.BytesWrite != 2<<20 {
		t.Fatalf("bytes %+v", f)
	}
	if f.IOTime != 21*sim.Millisecond {
		t.Fatalf("iotime %v", f.IOTime)
	}
	if f.MaxOpTime != 9*sim.Millisecond {
		t.Fatalf("max %v", f.MaxOpTime)
	}
	if f.FirstOp != 0 || f.LastOp != 24*sim.Millisecond {
		t.Fatalf("span %v..%v", f.FirstOp, f.LastOp)
	}
}

func TestSizeHistogramBuckets(t *testing.T) {
	p := NewProfiler()
	p.Record(profRec(workload.Write, "/f", 1<<20, 0, 1)) // bucket 20
	p.Record(profRec(workload.Write, "/f", 1<<20, 0, 1))
	p.Record(profRec(workload.Read, "/f", 4096, 0, 1)) // bucket 12
	f := p.File("/f")
	if f.SizeHistogram[20] != 2 || f.SizeHistogram[12] != 1 {
		t.Fatalf("histogram %v", f.SizeHistogram)
	}
	if f.CommonAccessSize() != 1<<20 {
		t.Fatalf("common size %d", f.CommonAccessSize())
	}
}

func TestSizeBucketEdges(t *testing.T) {
	cases := map[int64]int{1: 0, 2: 1, 3: 1, 4: 2, 4095: 11, 4096: 12, 1 << 30: 30, 1 << 40: 30}
	for size, want := range cases {
		if got := sizeBucket(size); got != want {
			t.Fatalf("sizeBucket(%d)=%d, want %d", size, got, want)
		}
	}
}

func TestFilesSortedByIOTime(t *testing.T) {
	p := NewProfiler()
	p.Record(profRec(workload.Write, "/cold", 1024, 0, sim.Millisecond))
	p.Record(profRec(workload.Write, "/hot", 1024, 0, 50*sim.Millisecond))
	files := p.Files()
	if files[0].Path != "/hot" {
		t.Fatalf("sort order: %s first", files[0].Path)
	}
}

func TestProfilerIgnoresComputeAndPathless(t *testing.T) {
	p := NewProfiler()
	p.Record(workload.Record{Op: workload.Op{Kind: workload.Compute}})
	p.Record(workload.Record{Op: workload.Op{Kind: workload.Read}}) // no path
	if len(p.Files()) != 0 {
		t.Fatal("profiled non-file ops")
	}
}

func TestRenderTruncatesAndLimits(t *testing.T) {
	p := NewProfiler()
	long := "/very/long/path/that/definitely/exceeds/the/column/width/file.dat"
	p.Record(profRec(workload.Write, long, 1024, 0, 2*sim.Millisecond))
	p.Record(profRec(workload.Write, "/b", 1024, 0, sim.Millisecond))
	out := p.Render(1)
	if strings.Count(out, "\n") != 2 { // header + 1 row
		t.Fatalf("render not limited:\n%s", out)
	}
	if strings.Contains(out, long) {
		t.Fatal("long path not truncated")
	}
	if !strings.Contains(out, "...") {
		t.Fatal("truncation marker missing")
	}
}
