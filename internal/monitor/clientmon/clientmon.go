// Package clientmon is the client-side monitor of §III-A: it consumes the
// per-operation trace records emitted by the workload runner (the analogue
// of the modified Darshan in the paper) and aggregates them into per-time-
// window, per-storage-target metrics:
//
//   - the individual and combined counts of read, write, and metadata
//     operations in the window;
//   - the individual and combined bytes moved by reads and writes;
//   - the actual time spent doing I/O, plus derived throughput and IOPS.
package clientmon

import (
	"sort"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// TargetMetrics are one window's client-side metrics toward one target.
type TargetMetrics struct {
	Reads    float64
	Writes   float64
	MetaOps  float64
	TotalOps float64

	ReadBytes  float64
	WriteBytes float64
	TotalBytes float64

	IOTime     float64 // seconds of op latency attributed to this target
	Throughput float64 // bytes per second of window
	IOPS       float64 // ops per second of window
}

// NumFeatures is the length of a client feature vector.
const NumFeatures = 10

// FeatureNames labels the vector entries, in order.
func FeatureNames() []string {
	return []string{
		"cli_reads", "cli_writes", "cli_meta_ops", "cli_total_ops",
		"cli_read_bytes", "cli_write_bytes", "cli_total_bytes",
		"cli_io_time", "cli_throughput", "cli_iops",
	}
}

// Vector flattens the metrics in FeatureNames order.
func (t *TargetMetrics) Vector() []float64 {
	return []float64{
		t.Reads, t.Writes, t.MetaOps, t.TotalOps,
		t.ReadBytes, t.WriteBytes, t.TotalBytes,
		t.IOTime, t.Throughput, t.IOPS,
	}
}

// Monitor aggregates one workload's records.
type Monitor struct {
	nTargets   int
	windowSize sim.Time
	windows    map[int][]TargetMetrics
}

// New creates a monitor for a system with nTargets storage targets.
func New(nTargets int, windowSize sim.Time) *Monitor {
	if nTargets <= 0 || windowSize <= 0 {
		panic("clientmon: bad configuration")
	}
	return &Monitor{
		nTargets:   nTargets,
		windowSize: windowSize,
		windows:    make(map[int][]TargetMetrics),
	}
}

// WindowSize returns the aggregation period.
func (m *Monitor) WindowSize() sim.Time { return m.windowSize }

// WindowIndex maps a timestamp to its window.
func (m *Monitor) WindowIndex(t sim.Time) int { return int(t / m.windowSize) }

// Record ingests one trace record; wire it to workload.Runner.OnRecord.
// An operation is attributed to the window containing its start time; ops
// touching k targets split their bytes evenly but count fully toward each.
func (m *Monitor) Record(rec workload.Record) {
	if !rec.Op.Kind.IsIO() || len(rec.Targets) == 0 {
		return
	}
	idx := m.WindowIndex(rec.Start)
	w, ok := m.windows[idx]
	if !ok {
		w = make([]TargetMetrics, m.nTargets)
		m.windows[idx] = w
	}
	k := float64(len(rec.Targets))
	dur := sim.ToSeconds(rec.Duration())
	bytes := float64(rec.Op.Size) / k
	for _, target := range rec.Targets {
		tm := &w[target]
		tm.TotalOps++
		tm.IOTime += dur
		switch rec.Op.Kind {
		case workload.Read:
			tm.Reads++
			tm.ReadBytes += bytes
			tm.TotalBytes += bytes
		case workload.Write:
			tm.Writes++
			tm.WriteBytes += bytes
			tm.TotalBytes += bytes
		default:
			tm.MetaOps++
		}
	}
}

// Window returns the finalized metrics (with derived rates) for a window,
// or ok=false if no I/O was recorded in it.
func (m *Monitor) Window(idx int) ([]TargetMetrics, bool) {
	w, ok := m.windows[idx]
	if !ok {
		return nil, false
	}
	out := make([]TargetMetrics, len(w))
	secs := sim.ToSeconds(m.windowSize)
	for i, tm := range w {
		tm.Throughput = tm.TotalBytes / secs
		tm.IOPS = tm.TotalOps / secs
		out[i] = tm
	}
	return out, true
}

// Windows lists the indices with recorded I/O, ascending.
func (m *Monitor) Windows() []int {
	out := make([]int, 0, len(m.windows))
	for idx := range m.windows {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Reset drops all aggregated windows (between runs).
func (m *Monitor) Reset() { m.windows = make(map[int][]TargetMetrics) }
