package clientmon

import (
	"testing"

	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

func rec(kind workload.Kind, start sim.Time, dur sim.Time, size int64, targets ...int) workload.Record {
	return workload.Record{
		Workload: "t", Op: workload.Op{Kind: kind, Size: size},
		Start: start, End: start + dur, Targets: targets,
	}
}

func TestAggregationByKind(t *testing.T) {
	m := New(3, sim.Second)
	m.Record(rec(workload.Read, 0, sim.Millisecond, 1024, 0))
	m.Record(rec(workload.Write, sim.Millisecond, sim.Millisecond, 2048, 0))
	m.Record(rec(workload.Stat, 2*sim.Millisecond, sim.Millisecond, 0, 2))
	w, ok := m.Window(0)
	if !ok {
		t.Fatal("window missing")
	}
	if w[0].Reads != 1 || w[0].Writes != 1 || w[0].MetaOps != 0 {
		t.Fatalf("target0 %+v", w[0])
	}
	if w[0].ReadBytes != 1024 || w[0].WriteBytes != 2048 || w[0].TotalBytes != 3072 {
		t.Fatalf("bytes %+v", w[0])
	}
	if w[2].MetaOps != 1 || w[2].TotalOps != 1 {
		t.Fatalf("target2 %+v", w[2])
	}
	if w[1].TotalOps != 0 {
		t.Fatalf("target1 should be empty: %+v", w[1])
	}
}

func TestWindowAssignmentByStartTime(t *testing.T) {
	m := New(1, sim.Second)
	m.Record(rec(workload.Read, sim.Seconds(0.9), sim.Seconds(0.5), 100, 0))
	if _, ok := m.Window(0); !ok {
		t.Fatal("op starting in window 0 not attributed there")
	}
	if _, ok := m.Window(1); ok {
		t.Fatal("op should not appear in window 1")
	}
}

func TestMultiTargetSplitsBytesNotCounts(t *testing.T) {
	m := New(4, sim.Second)
	m.Record(rec(workload.Write, 0, sim.Millisecond, 4000, 0, 1))
	w, _ := m.Window(0)
	if w[0].Writes != 1 || w[1].Writes != 1 {
		t.Fatal("counts should apply fully to each target")
	}
	if w[0].WriteBytes != 2000 || w[1].WriteBytes != 2000 {
		t.Fatalf("bytes not split: %v %v", w[0].WriteBytes, w[1].WriteBytes)
	}
}

func TestDerivedRates(t *testing.T) {
	m := New(1, 2*sim.Second)
	m.Record(rec(workload.Read, 0, sim.Second, 4<<20, 0))
	w, _ := m.Window(0)
	if w[0].Throughput != float64(4<<20)/2 {
		t.Fatalf("throughput=%f", w[0].Throughput)
	}
	if w[0].IOPS != 0.5 {
		t.Fatalf("iops=%f", w[0].IOPS)
	}
	if w[0].IOTime != 1.0 {
		t.Fatalf("iotime=%f", w[0].IOTime)
	}
}

func TestComputeOpsIgnored(t *testing.T) {
	m := New(1, sim.Second)
	m.Record(workload.Record{Op: workload.Op{Kind: workload.Compute}, Targets: nil})
	if len(m.Windows()) != 0 {
		t.Fatal("compute op created a window")
	}
}

func TestWindowsSortedAndReset(t *testing.T) {
	m := New(1, sim.Second)
	m.Record(rec(workload.Read, sim.Seconds(5), sim.Millisecond, 10, 0))
	m.Record(rec(workload.Read, sim.Seconds(1), sim.Millisecond, 10, 0))
	m.Record(rec(workload.Read, sim.Seconds(3), sim.Millisecond, 10, 0))
	got := m.Windows()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("windows %v", got)
		}
	}
	m.Reset()
	if len(m.Windows()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestVectorMatchesFeatureNames(t *testing.T) {
	if len(FeatureNames()) != NumFeatures {
		t.Fatalf("feature names %d != %d", len(FeatureNames()), NumFeatures)
	}
	tm := TargetMetrics{Reads: 1, Writes: 2, MetaOps: 3, TotalOps: 6,
		ReadBytes: 10, WriteBytes: 20, TotalBytes: 30, IOTime: 0.5,
		Throughput: 30, IOPS: 6}
	v := tm.Vector()
	if len(v) != NumFeatures {
		t.Fatalf("vector len %d", len(v))
	}
	if v[0] != 1 || v[3] != 6 || v[6] != 30 || v[9] != 6 {
		t.Fatalf("vector order wrong: %v", v)
	}
}
