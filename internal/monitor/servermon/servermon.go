// Package servermon is the server-side monitor of §III-B: an independent
// sampler on each storage server that reads the block-layer counters once
// per second (the analogue of scraping /proc/diskstats on a Lustre OSS/MDS)
// and aggregates, per time window, the sum, mean, and standard deviation of
// every per-second series in Table II:
//
//	I/O speed        — completed I/O requests;
//	device metrics   — disk sectors read and written;
//	read/write queue — requests queued, requests merged, total time requests
//	                   have spent queued, and the queue-occupancy integral.
package servermon

import (
	"sort"

	"quanterference/internal/blockqueue"
	"quanterference/internal/lustre"
	"quanterference/internal/sim"
	"quanterference/internal/stats"
)

// SeriesNames are the per-second series sampled for each target, in vector
// order. Each contributes sum/mean/std to the feature vector.
var SeriesNames = []string{
	"srv_completed_ios",
	"srv_sectors_read",
	"srv_sectors_written",
	"srv_reads_merged",
	"srv_writes_merged",
	"srv_queued_reqs",
	"srv_queue_time",
	"srv_weighted_queue_time",
}

// NumSeries is the number of per-second series per target.
var NumSeries = len(SeriesNames)

// NumFeatures is the length of one target's server feature vector
// (sum, mean, std per series).
var NumFeatures = 3 * NumSeries

// FeatureNames labels the vector entries, in order.
func FeatureNames() []string {
	out := make([]string, 0, NumFeatures)
	for _, s := range SeriesNames {
		out = append(out, s+"_sum", s+"_mean", s+"_std")
	}
	return out
}

// sample is one second's deltas for one target.
type sample [8]float64

// Monitor samples all storage targets of a file system.
type Monitor struct {
	fs         *lustre.FS
	windowSize sim.Time
	period     sim.Time

	prev    []blockqueue.Counters
	current map[int][][]float64 // window -> per-target series matrix [target][sample index*series]
	series  [][]sample          // per target, samples of the in-progress window
	window  int

	ticker *sim.Ticker
}

// New starts a monitor sampling every second (the paper's rate) and
// aggregating into windows of windowSize (a multiple of one second).
func New(fs *lustre.FS, windowSize sim.Time) *Monitor {
	if windowSize < sim.Second || windowSize%sim.Second != 0 {
		panic("servermon: window must be a positive multiple of 1s")
	}
	m := &Monitor{
		fs:         fs,
		windowSize: windowSize,
		period:     sim.Second,
		prev:       make([]blockqueue.Counters, fs.NumTargets()),
		current:    make(map[int][][]float64),
		series:     make([][]sample, fs.NumTargets()),
	}
	for t := range m.prev {
		m.prev[t] = m.queue(t).Counters()
	}
	m.ticker = sim.NewTicker(fs.Eng, m.period, m.tick)
	return m
}

// Stop halts sampling.
func (m *Monitor) Stop() { m.ticker.Stop() }

// WindowSize returns the aggregation period.
func (m *Monitor) WindowSize() sim.Time { return m.windowSize }

func (m *Monitor) queue(target int) *blockqueue.Queue {
	if target == m.fs.MDTIndex() {
		return m.fs.MDS().Queue()
	}
	return m.fs.OST(target).Queue()
}

func (m *Monitor) tick(now sim.Time) {
	for t := range m.series {
		c := m.queue(t).Counters()
		p := m.prev[t]
		m.prev[t] = c
		m.series[t] = append(m.series[t], sample{
			float64(c.ReadsCompleted - p.ReadsCompleted + c.WritesCompleted - p.WritesCompleted),
			float64(c.SectorsRead - p.SectorsRead),
			float64(c.SectorsWritten - p.SectorsWritten),
			float64(c.ReadsMerged - p.ReadsMerged),
			float64(c.WritesMerged - p.WritesMerged),
			float64(c.InFlight),
			sim.ToSeconds(c.ReadTime - p.ReadTime + c.WriteTime - p.WriteTime),
			sim.ToSeconds(c.WeightedIOTime - p.WeightedIOTime),
		})
	}
	// Window boundary?
	if now%m.windowSize == 0 {
		m.finalize()
	}
}

// finalize folds the in-progress per-second samples into window vectors.
func (m *Monitor) finalize() {
	vectors := make([][]float64, len(m.series))
	for t, samples := range m.series {
		vec := make([]float64, 0, NumFeatures)
		col := make([]float64, len(samples))
		for s := 0; s < NumSeries; s++ {
			for i, smp := range samples {
				col[i] = smp[s]
			}
			vec = append(vec, stats.Sum(col), stats.Mean(col), stats.Std(col))
		}
		vectors[t] = vec
		m.series[t] = m.series[t][:0]
	}
	m.current[m.window] = vectors
	m.window++
}

// Window returns the per-target server feature vectors for the window, or
// ok=false if the window has not been finalized.
func (m *Monitor) Window(idx int) ([][]float64, bool) {
	v, ok := m.current[idx]
	return v, ok
}

// Windows lists finalized window indices, ascending.
func (m *Monitor) Windows() []int {
	out := make([]int, 0, len(m.current))
	for idx := range m.current {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}
