package servermon

import (
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

func newFS() (*sim.Engine, *lustre.FS) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	return eng, lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
}

func TestFeatureNamesShape(t *testing.T) {
	if NumFeatures != 3*NumSeries {
		t.Fatalf("NumFeatures=%d", NumFeatures)
	}
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("names=%d", len(names))
	}
	if names[0] != "srv_completed_ios_sum" || names[2] != "srv_completed_ios_std" {
		t.Fatalf("name order: %v", names[:3])
	}
}

func TestBadWindowPanics(t *testing.T) {
	_, fs := newFS()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(fs, sim.Seconds(1.5))
}

func TestIdleSystemProducesZeroVectors(t *testing.T) {
	eng, fs := newFS()
	m := New(fs, 2*sim.Second)
	eng.RunUntil(sim.Seconds(6.5))
	wins := m.Windows()
	if len(wins) != 3 {
		t.Fatalf("windows=%v, want 3 finalized", wins)
	}
	v, ok := m.Window(0)
	if !ok || len(v) != fs.NumTargets() {
		t.Fatalf("window 0 shape: %d targets", len(v))
	}
	for tgt, vec := range v {
		if len(vec) != NumFeatures {
			t.Fatalf("target %d vector len %d", tgt, len(vec))
		}
		for i, x := range vec {
			if x != 0 {
				t.Fatalf("idle system nonzero feature %d on target %d: %f", i, tgt, x)
			}
		}
	}
}

func TestBusyOSTShowsActivity(t *testing.T) {
	eng, fs := newFS()
	m := New(fs, 2*sim.Second)
	g := io500.New(io500.IorEasyWrite, io500.Params{Ranks: 2, EasyFileBytes: 16 << 20})
	r := &workload.Runner{FS: fs, Name: "w", Nodes: []string{"c0"}, Ranks: 2, Gen: g}
	r.Start()
	eng.RunUntil(sim.Seconds(4.5))
	v, ok := m.Window(0)
	if !ok {
		t.Fatal("window 0 missing")
	}
	// Some OST must show sectors written; the MDT must show completed IOs
	// (create journal commits).
	sawWrite := false
	for tgt := 0; tgt < fs.NumOSTs(); tgt++ {
		if v[tgt][6] > 0 { // srv_sectors_written_sum (series 2, stat 0 -> index 2*3+0)
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Fatalf("no OST sector writes visible: %v", v)
	}
	mdt := v[fs.MDTIndex()]
	if mdt[0] == 0 { // srv_completed_ios_sum
		t.Fatal("MDT shows no completed I/O despite creates")
	}
}

func TestQueueMetricsGrowUnderBacklog(t *testing.T) {
	// Two heavy write workloads on one OST should produce visibly larger
	// queue-time features than a single light one.
	runCase := func(heavy bool) float64 {
		eng, fs := newFS()
		m := New(fs, 2*sim.Second)
		ranks := 1
		if heavy {
			ranks = 6
		}
		g := io500.New(io500.IorHardWrite, io500.Params{Ranks: ranks, HardOps: 400})
		r := &workload.Runner{FS: fs, Name: "w", Nodes: []string{"c0", "c1"}, Ranks: ranks, Gen: g}
		r.Start()
		eng.RunUntil(sim.Seconds(4.5))
		var maxQT float64
		for tgt := 0; tgt < fs.NumOSTs(); tgt++ {
			if v, ok := m.Window(0); ok {
				qt := v[tgt][18] // srv_queue_time_sum (series 6 -> 6*3)
				if qt > maxQT {
					maxQT = qt
				}
			}
		}
		return maxQT
	}
	light := runCase(false)
	heavy := runCase(true)
	if heavy <= light {
		t.Fatalf("queue time should grow with backlog: light=%f heavy=%f", light, heavy)
	}
}

func TestStopHaltsSampling(t *testing.T) {
	eng, fs := newFS()
	m := New(fs, sim.Second)
	eng.RunUntil(sim.Seconds(2.5))
	m.Stop()
	nBefore := len(m.Windows())
	eng.RunUntil(sim.Seconds(10))
	if len(m.Windows()) != nBefore {
		t.Fatal("sampling continued after Stop")
	}
}
